(** An embedded SQL-style database (B+tree + WAL journal mode) running a
    TPC-C transaction mix — the paper's SQLite experiment in miniature.

    Run with: [dune exec examples/database.exe] *)

let run_on spec =
  let stack = Harness.Fs_config.make spec in
  let env = stack.Harness.Fs_config.env in
  let db = Apps.Waldb.open_ stack.Harness.Fs_config.fs "/tpcc.db" () in
  let cfg =
    {
      Workloads.Tpcc.default_config with
      Workloads.Tpcc.transactions = 400;
      customers_per_district = 30;
      items = 200;
    }
  in
  Workloads.Tpcc.load db cfg;
  let t0 = Pmem.Env.now env in
  let r = Workloads.Tpcc.run db cfg in
  let t1 = Pmem.Env.now env in
  let total = Workloads.Tpcc.total r in
  Printf.printf
    "%-15s %6.1f tx/ms  (new-order %d, payment %d, order-status %d, delivery %d, stock-level %d)\n"
    (Harness.Fs_config.name spec)
    (float_of_int total /. ((t1 -. t0) /. 1e6))
    r.Workloads.Tpcc.new_orders r.Workloads.Tpcc.payments
    r.Workloads.Tpcc.order_statuses r.Workloads.Tpcc.deliveries
    r.Workloads.Tpcc.stock_levels;
  Apps.Waldb.close db

let () =
  print_endline "TPC-C mix on a B+tree database in WAL mode (simulated PM):";
  List.iter run_on
    [
      Harness.Fs_config.Ext4_dax;
      Harness.Fs_config.Pmfs;
      Harness.Fs_config.Splitfs_sync;
    ];
  print_endline "\nEvery transaction commit appends WAL frames and fsyncs;";
  print_endline "SplitFS turns those appends into user-space staged writes and";
  print_endline "the fsync into a relink (paper Figure 6, TPCC)."
