(** Crash and recover: demonstrate strict mode's synchronous, atomic data
    operations surviving a power failure without a single fsync — the
    operation log in action (paper §3.3, §5.3).

    Run with: [dune exec examples/crash_recovery.exe] *)

let compact mode =
  { (Splitfs.Config.with_mode mode) with
    Splitfs.Config.staging_files = 2;
    staging_size = 4 * 1024 * 1024;
    oplog_size = 1024 * 1024 }

let () =
  let env = Pmem.Env.create ~capacity:(64 * 1024 * 1024) () in
  let kfs = Kernelfs.Ext4.mkfs env in
  let sys = Kernelfs.Syscall.make kfs in
  let u =
    Splitfs.Usplit.mount ~cfg:(compact Splitfs.Config.Strict) ~sys ~env ~instance:0 ()
  in
  let fs = Splitfs.Usplit.as_fsapi u in

  (* a database-style append-only commit log; note: NO fsync anywhere *)
  let fd = fs.open_ "/commit.log" Fsapi.Flags.create_rw in
  for i = 1 to 500 do
    Fsapi.Fs.write_string fs fd (Printf.sprintf "txn %05d committed\n" i)
  done;
  Printf.printf "wrote 500 log records, no fsync issued\n";
  Printf.printf "kernel-visible size before crash: %d bytes (all staged)\n"
    (Kernelfs.Syscall.stat sys "/commit.log").Fsapi.Fs.st_size;

  (* power failure: every unflushed cache line is gone, all U-Split DRAM
     state (fd tables, mmap collections, log tail) is gone *)
  Pmem.Device.crash env.Pmem.Env.dev;
  print_endline "-- crash --";

  (* mount-time recovery: ext4 journal recovery + operation-log replay *)
  let report = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  Printf.printf
    "recovery: scanned %d entries, replayed %d, torn %d, files %d (%.2f ms simulated)\n"
    report.Splitfs.Recovery.entries_scanned
    report.Splitfs.Recovery.entries_replayed
    report.Splitfs.Recovery.torn_entries
    report.Splitfs.Recovery.files_recovered
    (report.Splitfs.Recovery.replay_ns /. 1e6);

  (* a fresh mount sees every committed record *)
  let u2 =
    Splitfs.Usplit.mount ~cfg:(compact Splitfs.Config.Strict) ~sys ~env ~instance:1 ()
  in
  let fs2 = Splitfs.Usplit.as_fsapi u2 in
  let recovered = Fsapi.Fs.read_file fs2 "/commit.log" in
  let lines = List.length (String.split_on_char '\n' recovered) - 1 in
  Printf.printf "after recovery: %d bytes, %d records intact\n"
    (String.length recovered) lines;
  assert (lines = 500);
  print_endline "strict mode: every completed write survived the crash."
