examples/database.mli:
