examples/quickstart.ml: Fmt Fsapi Kernelfs Pmem Printf Splitfs
