examples/database.ml: Apps Harness List Pmem Printf Workloads
