examples/multi_tenant.ml: Fsapi Kernelfs List Pmem Printf Splitfs String
