examples/kvstore.mli:
