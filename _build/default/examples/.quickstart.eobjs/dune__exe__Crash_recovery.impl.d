examples/crash_recovery.ml: Fsapi Kernelfs List Pmem Printf Splitfs String
