examples/kvstore.ml: Apps Harness List Pmem Printf Workloads
