examples/quickstart.mli:
