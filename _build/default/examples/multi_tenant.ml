(** Two applications with different consistency needs sharing one kernel
    file system — the flexible-guarantees feature the paper calls out in
    §3.2: "Concurrent applications can use different modes at the same
    time as they run on SplitFS."

    Run with: [dune exec examples/multi_tenant.exe] *)

let compact mode =
  { (Splitfs.Config.with_mode mode) with
    Splitfs.Config.staging_files = 2;
    staging_size = 4 * 1024 * 1024;
    oplog_size = 1024 * 1024 }

let () =
  let env = Pmem.Env.create ~capacity:(64 * 1024 * 1024) () in
  let kfs = Kernelfs.Ext4.mkfs env in
  let sys = Kernelfs.Syscall.make kfs in

  (* tenant A: an editor-like app that wants atomic saves (strict mode) *)
  let editor =
    Splitfs.Usplit.as_fsapi
      (Splitfs.Usplit.mount ~cfg:(compact Splitfs.Config.Strict) ~sys ~env ~instance:0 ())
  in
  (* tenant B: a scratch-data app that only needs POSIX semantics *)
  let scratch =
    Splitfs.Usplit.as_fsapi
      (Splitfs.Usplit.mount ~cfg:(compact Splitfs.Config.Posix) ~sys ~env ~instance:1 ())
  in

  (* tenant A saves a document atomically: overwrite + fsync *)
  Fsapi.Fs.write_file editor "/document.txt" (String.make 8192 'v');
  let fd = editor.open_ "/document.txt" Fsapi.Flags.rdwr in
  editor.fsync fd;
  Fsapi.Fs.pwrite_string editor fd "EDITED SECTION" ~at:4000;
  editor.fsync fd;
  editor.close fd;

  (* tenant B churns scratch files cheaply *)
  for i = 0 to 49 do
    Fsapi.Fs.write_file scratch (Printf.sprintf "/scratch-%02d" i)
      (String.make 2048 's')
  done;

  (* both see the same namespace through the shared kernel file system *)
  let doc = Fsapi.Fs.read_file scratch "/document.txt" in
  Printf.printf "tenant B reads tenant A's save: %S...\n"
    (String.sub doc 4000 14);
  Printf.printf "files visible to tenant A: %d\n"
    (List.length (editor.readdir "/"));
  Printf.printf "modes differ, guarantees differ, namespace is shared.\n";
  Printf.printf "simulated time: %.1f us\n" (Pmem.Env.now env /. 1000.)
