(** Quickstart: mount SplitFS on a simulated PM device, do some file IO,
    and inspect what it cost.

    Run with: [dune exec examples/quickstart.exe] *)

let () =
  (* 1. a simulated persistent-memory device (64 MB) with the paper's
        Optane timing model *)
  let env = Pmem.Env.create ~capacity:(64 * 1024 * 1024) () in

  (* 2. the kernel file system (ext4 DAX) on the device *)
  let kfs = Kernelfs.Ext4.mkfs env in
  let sys = Kernelfs.Syscall.make kfs in

  (* 3. mount SplitFS over it: U-Split in strict mode (synchronous + atomic
        data operations) *)
  let u =
    Splitfs.Usplit.mount ~cfg:Splitfs.Config.strict ~sys ~env ~instance:0 ()
  in
  let fs = Splitfs.Usplit.as_fsapi u in

  (* 4. plain POSIX-style usage *)
  fs.mkdir "/data";
  Fsapi.Fs.write_file fs "/data/greeting.txt" "hello, persistent memory!";
  let fd = fs.open_ "/data/log" Fsapi.Flags.create_rw in
  for i = 1 to 100 do
    Fsapi.Fs.write_string fs fd (Printf.sprintf "record %03d\n" i)
  done;
  fs.fsync fd;
  (* the fsync relinked the staged appends into the file: zero copies *)
  fs.close fd;

  Printf.printf "greeting: %s\n" (Fsapi.Fs.read_file fs "/data/greeting.txt");
  Printf.printf "log size: %d bytes\n" (Fsapi.Fs.file_size fs "/data/log");

  (* 5. what did it cost? (simulated nanoseconds + PM traffic) *)
  Printf.printf "simulated time: %.1f us\n" (Pmem.Env.now env /. 1000.);
  Printf.printf "stats: %s\n" (Fmt.str "%a" Pmem.Stats.pp env.Pmem.Env.stats);
  Printf.printf "relinks performed: %d\n" env.Pmem.Env.stats.Pmem.Stats.relinks;
  Printf.printf "U-Split DRAM footprint: %d bytes\n"
    (Splitfs.Usplit.memory_usage u)
