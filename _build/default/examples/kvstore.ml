(** A LevelDB-style key-value store running a small YCSB mix on SplitFS,
    with ext4 DAX alongside for comparison — the paper's headline
    application experiment in miniature.

    Run with: [dune exec examples/kvstore.exe] *)

let run_on spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  let lsm = Apps.Lsm.open_ fs "/db" in
  let cfg =
    {
      Workloads.Ycsb.default_config with
      Workloads.Ycsb.records = 2000;
      operations = 2000;
      value_size = 512;
    }
  in
  let t0 = Pmem.Env.now stack.Harness.Fs_config.env in
  ignore (Workloads.Ycsb.run lsm Workloads.Ycsb.Load cfg);
  let t1 = Pmem.Env.now stack.Harness.Fs_config.env in
  let result = Workloads.Ycsb.run lsm Workloads.Ycsb.A cfg in
  let t2 = Pmem.Env.now stack.Harness.Fs_config.env in
  let flushes, compactions, l0, l1 = Apps.Lsm.stats lsm in
  Printf.printf
    "%-15s load: %6.1f kops/s   runA: %6.1f kops/s   (flushes %d, compactions %d, L0 %d, L1 %d)\n"
    (Harness.Fs_config.name spec)
    (float_of_int cfg.Workloads.Ycsb.records /. ((t1 -. t0) /. 1e6))
    (float_of_int result.Workloads.Ycsb.ops_done /. ((t2 -. t1) /. 1e6))
    flushes compactions l0 l1;
  Apps.Lsm.close lsm

let () =
  print_endline "YCSB Load + Run A on an LSM key-value store (simulated PM):";
  List.iter run_on
    [
      Harness.Fs_config.Ext4_dax;
      Harness.Fs_config.Nova_strict;
      Harness.Fs_config.Splitfs_strict;
    ];
  print_endline "\nSplitFS serves the WAL appends in user space and relinks on";
  print_endline "fsync, which is where the speedup over the kernel file systems";
  print_endline "comes from (paper Figure 6)."
