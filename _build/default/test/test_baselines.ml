(** Baseline PM file systems (NOVA, PMFS, Strata): functional correctness
    (equivalence with the reference model) plus the protocol properties the
    paper's comparisons rest on — NOVA's two-fence logging, Strata's 2×
    write amplification on appends, digest visibility. *)

let tc = Alcotest.test_case

let make_nova ?(mode = Baselines.Nova.Strict) () =
  let env = Util.make_env () in
  (env, Baselines.Nova.as_fsapi (Baselines.Nova.mkfs env ~mode))

let make_pmfs () =
  let env = Util.make_env () in
  (env, Baselines.Pmfs.as_fsapi (Baselines.Pmfs.mkfs env))

let make_strata ?log_len () =
  let env = Util.make_env () in
  let s = Baselines.Strata.mkfs ?log_len env in
  (env, s, Baselines.Strata.as_fsapi s)

let all_baselines () =
  [
    snd (make_nova ~mode:Baselines.Nova.Strict ());
    snd (make_nova ~mode:Baselines.Nova.Relaxed ());
    snd (make_pmfs ());
    (fun (_, _, fs) -> fs) (make_strata ());
  ]

let test_roundtrips () =
  List.iter
    (fun (fs : Fsapi.Fs.t) ->
      let content = Util.pattern ~seed:3 20000 in
      let got = Util.fs_write_read_roundtrip fs "/x" content in
      Util.check_str (fs.fs_name ^ ": roundtrip") content got)
    (all_baselines ())

let test_namespace_ops () =
  List.iter
    (fun (fs : Fsapi.Fs.t) ->
      fs.mkdir "/d";
      Fsapi.Fs.write_file fs "/d/a" "one";
      fs.rename "/d/a" "/d/b";
      Util.check_str (fs.fs_name ^ ": rename") "one" (Fsapi.Fs.read_file fs "/d/b");
      fs.unlink "/d/b";
      Alcotest.(check (list string)) (fs.fs_name ^ ": empty") [] (fs.readdir "/d"))
    (all_baselines ())

let test_nova_strict_cow_reuses_space () =
  let env, fs = make_nova ~mode:Baselines.Nova.Strict () in
  Fsapi.Fs.write_file fs "/c" (String.make 16384 'a');
  let fd = fs.open_ "/c" Fsapi.Flags.rdwr in
  (* overwrite the same block many times; COW must free old blocks, so
     space consumption stays bounded *)
  let buf = Bytes.make 4096 'b' in
  for _ = 1 to 50 do
    ignore (fs.pwrite fd ~buf ~boff:0 ~len:4096 ~at:0)
  done;
  fs.close fd;
  Util.check_str "content correct"
    (String.make 4096 'b' ^ String.make 12288 'a')
    (Fsapi.Fs.read_file fs "/c");
  ignore env

let test_nova_two_fences_per_write () =
  let env, fs = make_nova ~mode:Baselines.Nova.Strict () in
  Fsapi.Fs.write_file fs "/f" (String.make 4096 'x');
  let fd = fs.open_ "/f" Fsapi.Flags.rdwr in
  let f0 = env.Pmem.Env.stats.Pmem.Stats.fences in
  let buf = Bytes.make 4096 'y' in
  ignore (fs.pwrite fd ~buf ~boff:0 ~len:4096 ~at:0);
  let f1 = env.Pmem.Env.stats.Pmem.Stats.fences in
  (* the paper: NOVA issues two fences per logged operation (§3.3) *)
  Util.check_int "two fences" 2 (f1 - f0);
  fs.close fd

let test_strata_write_amplification () =
  (* append-heavy workload: Strata must write the data about twice (log +
     digest), SplitFS about once (staging + relink) — Table 7's point *)
  let payload = 512 * 1024 in
  (* measure only the workload: setup (log zeroing, staging pre-allocation)
     is excluded, as the paper measures steady-state write IO *)
  let run env (fs : Fsapi.Fs.t) =
    let fd = fs.open_ "/app" Fsapi.Flags.create_rw in
    let w0 = env.Pmem.Env.stats.Pmem.Stats.pm_write_bytes in
    let buf = Bytes.make 4096 'a' in
    for _ = 1 to payload / 4096 do
      ignore (fs.write fd ~buf ~boff:0 ~len:4096)
    done;
    fs.fsync fd;
    fs.close fd;
    env.Pmem.Env.stats.Pmem.Stats.pm_write_bytes - w0
  in
  let strata_writes =
    let env, s, fs = make_strata ~log_len:(256 * 1024) () in
    let fd = fs.open_ "/warm" Fsapi.Flags.create_rw in
    let w0 = env.Pmem.Env.stats.Pmem.Stats.pm_write_bytes in
    let buf = Bytes.make 4096 'a' in
    for _ = 1 to payload / 4096 do
      ignore (fs.write fd ~buf ~boff:0 ~len:4096)
    done;
    fs.fsync fd;
    (* the tail of the log is eventually digested too *)
    Baselines.Strata.digest_now s;
    fs.close fd;
    env.Pmem.Env.stats.Pmem.Stats.pm_write_bytes - w0
  in
  let splitfs_writes =
    let env, _, _, _, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
    run env fs
  in
  Alcotest.(check bool)
    (Printf.sprintf "strata(%d) writes ~2x splitfs(%d)" strata_writes
       splitfs_writes)
    true
    (float_of_int strata_writes > 1.5 *. float_of_int splitfs_writes)

let test_strata_digest_correctness () =
  (* log far smaller than the data: many digests, data must survive *)
  let env, s, fs = make_strata ~log_len:(128 * 1024) () in
  let content = Util.pattern ~seed:17 (400 * 1024) in
  let got = Util.fs_write_read_roundtrip fs "/big" content in
  Util.check_str "content survives digests" content got;
  Alcotest.(check bool) "digests happened" true (Baselines.Strata.digests s > 0);
  ignore env

let test_strata_no_trap_on_write () =
  let env, _s, fs = make_strata () in
  let fd = fs.open_ "/t" Fsapi.Flags.create_rw in
  let t0 = env.Pmem.Env.stats.Pmem.Stats.syscalls in
  let buf = Bytes.make 4096 'z' in
  ignore (fs.write fd ~buf ~boff:0 ~len:4096);
  Util.check_int "no kernel traps on the data path" t0
    env.Pmem.Env.stats.Pmem.Stats.syscalls;
  fs.close fd

let test_pmfs_sync_no_fsync_needed () =
  let env, fs = make_pmfs () in
  let fd = fs.open_ "/s" Fsapi.Flags.create_rw in
  let buf = Bytes.make 1000 's' in
  ignore (fs.write fd ~buf ~boff:0 ~len:1000);
  (* synchronous: after the write returns, nothing volatile remains *)
  Util.check_int "no dirty lines" 0 (Pmem.Device.dirty_lines env.Pmem.Env.dev);
  fs.close fd

let prop_baseline_matches_reference make name =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s matches reference FS" name)
    ~count:40 Test_ext4.arb_ops
    (fun ops ->
      let fs = make () in
      let reference = Fsapi.Ref_fs.make () in
      let ok = ref true in
      List.iter
        (fun op ->
          let a = Test_ext4.apply_op fs op in
          let b = Test_ext4.apply_op reference op in
          if a <> b then ok := false)
        ops;
      !ok && Test_ext4.final_states_agree fs reference)

let suite =
  [
    tc "roundtrips on every baseline" `Quick test_roundtrips;
    tc "namespace ops on every baseline" `Quick test_namespace_ops;
    tc "NOVA strict COW bounds space" `Quick test_nova_strict_cow_reuses_space;
    tc "NOVA: two fences per op" `Quick test_nova_two_fences_per_write;
    tc "Strata: ~2x write amplification on appends" `Quick
      test_strata_write_amplification;
    tc "Strata: digest preserves data" `Quick test_strata_digest_correctness;
    tc "Strata: user-space data path" `Quick test_strata_no_trap_on_write;
    tc "PMFS: synchronous writes" `Quick test_pmfs_sync_no_fsync_needed;
    QCheck_alcotest.to_alcotest
      (prop_baseline_matches_reference
         (fun () -> snd (make_nova ~mode:Baselines.Nova.Strict ()))
         "nova-strict");
    QCheck_alcotest.to_alcotest
      (prop_baseline_matches_reference
         (fun () -> snd (make_nova ~mode:Baselines.Nova.Relaxed ()))
         "nova-relaxed");
    QCheck_alcotest.to_alcotest
      (prop_baseline_matches_reference (fun () -> snd (make_pmfs ())) "pmfs");
    QCheck_alcotest.to_alcotest
      (prop_baseline_matches_reference
         (fun () ->
           let _, _, fs = make_strata () in
           fs)
         "strata");
  ]
