(** Reproduction-shape tests: run (scaled-down) experiments and assert the
    paper's qualitative results — orderings, who wins, rough factors — plus
    the Table 1 / Table 2 calibration bands. These are the repository's
    executable claims about fidelity to the paper. *)

let tc = Alcotest.test_case

let within pct ~target x =
  abs_float (x -. target) /. target <= pct /. 100.

(* --- Table 1: calibrated within 15% and correctly ordered --- *)

let test_table1_calibration () =
  let rows = Harness.Experiments.table1 ~total_mb:4 ~print:false () in
  let get name =
    (List.find (fun r -> r.Harness.Experiments.t1_fs = name) rows)
      .Harness.Experiments.t1_append_ns
  in
  let ext4 = get "ext4-dax" in
  let pmfs = get "pmfs" in
  let nova = get "nova-strict" in
  let strict = get "splitfs-strict" in
  let posix = get "splitfs-posix" in
  Alcotest.(check bool) "ordering matches the paper" true
    (ext4 > pmfs && pmfs > nova && nova > strict && strict >= posix);
  List.iter
    (fun (label, measured, paper) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within 15%% of paper (%.0f vs %.0f)" label measured paper)
        true
        (within 15. ~target:paper measured))
    [
      ("ext4-dax", ext4, 9002.);
      ("pmfs", pmfs, 4150.);
      ("nova-strict", nova, 3021.);
      ("splitfs-strict", strict, 1251.);
      ("splitfs-posix", posix, 1160.);
    ]

(* --- Table 2: media model matches the characterisation --- *)

let test_table2_media_model () =
  let rows = Harness.Experiments.table2 ~print:false () in
  List.iter
    (fun (prop, measured, target) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ~ %.1f (got %.1f)" prop target measured)
        true
        (within 15. ~target measured))
    rows

(* --- Table 6: syscall cost shape --- *)

let test_table6_shape () =
  let rows = Harness.Experiments.table6 ~iterations:50 ~print:false () in
  let get fs = List.assoc fs rows in
  let split = get "splitfs-strict" and ext4 = get "ext4-dax" in
  (* data ops much faster on SplitFS, metadata ops somewhat slower *)
  Alcotest.(check bool) "append 3-4x faster" true
    (ext4.Workloads.Varmail.append_ns > 3. *. split.Workloads.Varmail.append_ns);
  Alcotest.(check bool) "fsync much faster" true
    (ext4.Workloads.Varmail.fsync_ns > 2. *. split.Workloads.Varmail.fsync_ns);
  Alcotest.(check bool) "open slower on splitfs" true
    (split.Workloads.Varmail.open_ns > ext4.Workloads.Varmail.open_ns);
  Alcotest.(check bool) "close slower on splitfs" true
    (split.Workloads.Varmail.close_ns > ext4.Workloads.Varmail.close_ns);
  Alcotest.(check bool) "unlink slower on splitfs" true
    (split.Workloads.Varmail.unlink_ns > ext4.Workloads.Varmail.unlink_ns);
  (* stronger modes cost more *)
  let posix = get "splitfs-posix" in
  Alcotest.(check bool) "strict >= posix on appends" true
    (split.Workloads.Varmail.append_ns >= posix.Workloads.Varmail.append_ns)

(* --- Figure 3: each technique helps appends --- *)

let test_fig3_monotonic () =
  let rows = Harness.Experiments.fig3 ~total_mb:4 ~print:false () in
  match rows with
  | [ (_, ow_ext4, ap_ext4); (_, ow_split, ap_split); (_, _, ap_staging); (_, _, ap_relink) ] ->
      Alcotest.(check bool) "user-space overwrites beat ext4" true (ow_split > ow_ext4);
      Alcotest.(check bool) "staging roughly doubles appends" true
        (ap_staging > 1.5 *. ap_ext4);
      Alcotest.(check bool) "relink is the big append win (paper ~5x over staging)" true
        (ap_relink > 2.5 *. ap_staging);
      Alcotest.(check bool) "full splitfs appends 5x+ over ext4" true
        (ap_relink > 5. *. ap_ext4);
      Alcotest.(check bool) "split alone does not speed appends" true
        (ap_split < 1.5 *. ap_ext4)
  | _ -> Alcotest.fail "unexpected fig3 rows"

(* --- Figure 4: SplitFS wins within each guarantee group --- *)

let test_fig4_winners () =
  let groups = Harness.Experiments.fig4 ~total_mb:4 ~print:false () in
  List.iter
    (fun (group, (_bspec, bruns), cruns) ->
      (* the splitfs entry is the last challenger in each group *)
      let _, sruns = List.nth cruns (List.length cruns - 1) in
      List.iter
        (fun (p, bm) ->
          let sm = List.assoc p sruns in
          let ratio = Harness.Runner.kops sm /. Harness.Runner.kops bm in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: splitfs >= baseline (%.2fx)" group
               (Workloads.Iopattern.pattern_name p) ratio)
            true (ratio >= 0.95))
        bruns)
    groups

(* --- §5.3: recovery time grows linearly with log entries --- *)

let test_recovery_scaling () =
  let rows = Harness.Experiments.recovery ~print:false () in
  let times =
    List.map (fun (n, r) -> (n, r.Splitfs.Recovery.replay_ns)) rows
  in
  let t1 = List.assoc 1_000 times and t18 = List.assoc 18_000 times in
  Alcotest.(check bool) "more entries, more time" true (t18 > t1);
  (* roughly linear: 18x entries within 10x-30x time *)
  Alcotest.(check bool)
    (Printf.sprintf "roughly linear (%.1fx)" (t18 /. t1))
    true
    (t18 /. t1 > 8. && t18 /. t1 < 40.);
  List.iter
    (fun (n, r) ->
      Util.check_int
        (Printf.sprintf "all %d entries replayed" n)
        n r.Splitfs.Recovery.entries_replayed)
    rows

(* --- §5.10: resource consumption is bounded and background work exists --- *)

let test_resources () =
  let rows = Harness.Experiments.resources ~files:100 ~print:false () in
  List.iter
    (fun (n, mem, bg) ->
      Alcotest.(check bool) (n ^ ": memory bounded") true (mem > 0 && mem < 10_000_000);
      Alcotest.(check bool) (n ^ ": background thread did work") true (bg > 0.))
    rows

(* --- ablations: the section-4 design discussions --- *)

let test_ablations () =
  let rows = Harness.Experiments.ablations ~total_mb:4 ~print:false () in
  let kops name variant =
    (List.find
       (fun r ->
         r.Harness.Experiments.ab_name = name
         && r.Harness.Experiments.ab_variant = variant)
       rows)
      .Harness.Experiments.ab_kops
  in
  let staging = "staging medium (append+fsync/10)" in
  Alcotest.(check bool) "PM staging beats DRAM staging (copy on fsync)" true
    (kops staging "PM staging (relink)"
    > 1.5 *. kops staging "DRAM staging (copy on fsync)");
  let huge = "huge pages (seq-read, cold mmaps)" in
  Alcotest.(check bool) "reads drop ~50% without huge pages" true
    (kops huge "4K pages only" < 0.7 *. kops huge "huge pages")

let suite =
  [
    tc "table1: append calibration within 15%" `Slow test_table1_calibration;
    tc "table2: media model" `Quick test_table2_media_model;
    tc "table6: syscall latency shape" `Slow test_table6_shape;
    tc "fig3: technique contributions monotonic" `Slow test_fig3_monotonic;
    tc "fig4: splitfs wins in-mode" `Slow test_fig4_winners;
    tc "recovery scales linearly" `Slow test_recovery_scaling;
    tc "resources bounded" `Slow test_resources;
    tc "ablations: DRAM staging loses, huge pages matter" `Slow test_ablations;
  ]
