(** Extent tree: unit tests plus a model-based property test against a
    per-block reference map. *)

open Kernelfs

let tc = Alcotest.test_case

let test_insert_find () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:10 ~physical:100 ~len:5;
  (match Extent_tree.find t 12 with
  | Some (phys, run) ->
      Util.check_int "physical" 102 phys;
      Util.check_int "run" 3 run
  | None -> Alcotest.fail "expected mapping");
  Alcotest.(check (option (pair int int))) "hole" None (Extent_tree.find t 15);
  Alcotest.(check (option (pair int int))) "hole below" None (Extent_tree.find t 9)

let test_merge_adjacent () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:0 ~physical:50 ~len:4;
  Extent_tree.insert t ~logical:4 ~physical:54 ~len:4;
  Util.check_int "merged into one extent" 1 (Extent_tree.count t);
  Util.check_int "blocks" 8 (Extent_tree.blocks t)

let test_no_merge_when_phys_disjoint () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:0 ~physical:50 ~len:4;
  Extent_tree.insert t ~logical:4 ~physical:90 ~len:4;
  Util.check_int "two extents" 2 (Extent_tree.count t)

let test_merge_before () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:4 ~physical:54 ~len:4;
  Extent_tree.insert t ~logical:0 ~physical:50 ~len:4;
  Util.check_int "merged backward" 1 (Extent_tree.count t)

let test_overlap_rejected () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:0 ~physical:10 ~len:10;
  Alcotest.check_raises "overlap" (Invalid_argument "Extent_tree.insert: overlap")
    (fun () -> Extent_tree.insert t ~logical:5 ~physical:99 ~len:2)

let test_remove_middle_splits () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:0 ~physical:100 ~len:10;
  let removed = Extent_tree.remove_range t ~logical:3 ~len:4 in
  Util.check_int "one removed extent" 1 (List.length removed);
  let r = List.hd removed in
  Util.check_int "removed physical" 103 r.Extent_tree.physical;
  Util.check_int "removed len" 4 r.Extent_tree.len;
  (* left and right remainders survive *)
  (match Extent_tree.find t 0 with
  | Some (p, run) ->
      Util.check_int "left phys" 100 p;
      Util.check_int "left run" 3 run
  | None -> Alcotest.fail "left");
  (match Extent_tree.find t 7 with
  | Some (p, run) ->
      Util.check_int "right phys" 107 p;
      Util.check_int "right run" 3 run
  | None -> Alcotest.fail "right");
  Alcotest.(check (option (pair int int))) "hole" None (Extent_tree.find t 4);
  Alcotest.(check bool) "invariants" true (Extent_tree.check_invariants t)

let test_remove_across_extents () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:0 ~physical:100 ~len:4;
  Extent_tree.insert t ~logical:8 ~physical:200 ~len:4;
  let removed = Extent_tree.remove_range t ~logical:2 ~len:8 in
  Util.check_int "two pieces" 2 (List.length removed);
  Util.check_int "remaining" 4 (Extent_tree.blocks t)

let test_next_mapped () =
  let t = Extent_tree.create () in
  Extent_tree.insert t ~logical:10 ~physical:0 ~len:2;
  Alcotest.(check (option int)) "before" (Some 10) (Extent_tree.next_mapped t 5);
  Alcotest.(check (option int)) "inside" (Some 11) (Extent_tree.next_mapped t 11);
  Alcotest.(check (option int)) "beyond" None (Extent_tree.next_mapped t 12)

(* model-based property: compare against a per-block Hashtbl *)
let prop_model =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (3, map2 (fun l n -> `Insert (l, n)) (int_bound 60) (int_range 1 8));
          (2, map2 (fun l n -> `Remove (l, n)) (int_bound 60) (int_range 1 12));
        ])
  in
  Test.make ~name:"extent tree matches per-block model" ~count:300
    (make Gen.(list_size (int_range 1 40) op_gen))
    (fun ops ->
      let t = Kernelfs.Extent_tree.create () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let next_phys = ref 1000 in
      List.iter
        (function
          | `Insert (l, n) ->
              let clash = ref false in
              for i = l to l + n - 1 do
                if Hashtbl.mem model i then clash := true
              done;
              if not !clash then begin
                Extent_tree.insert t ~logical:l ~physical:!next_phys ~len:n;
                for i = 0 to n - 1 do
                  Hashtbl.replace model (l + i) (!next_phys + i)
                done;
                next_phys := !next_phys + n + 3 (* avoid accidental merges *)
              end
          | `Remove (l, n) ->
              ignore (Extent_tree.remove_range t ~logical:l ~len:n);
              for i = l to l + n - 1 do
                Hashtbl.remove model i
              done)
        ops;
      (* compare every block *)
      let ok = ref (Extent_tree.check_invariants t) in
      for b = 0 to 80 do
        let tree = Option.map fst (Extent_tree.find t b) in
        let reference = Hashtbl.find_opt model b in
        if tree <> reference then ok := false
      done;
      if Extent_tree.blocks t <> Hashtbl.length model then ok := false;
      !ok)

let suite =
  [
    tc "insert and find" `Quick test_insert_find;
    tc "merge adjacent" `Quick test_merge_adjacent;
    tc "no merge when physically disjoint" `Quick test_no_merge_when_phys_disjoint;
    tc "merge backward" `Quick test_merge_before;
    tc "overlap rejected" `Quick test_overlap_rejected;
    tc "remove middle splits" `Quick test_remove_middle_splits;
    tc "remove across extents" `Quick test_remove_across_extents;
    tc "next_mapped" `Quick test_next_mapped;
    QCheck_alcotest.to_alcotest prop_model;
  ]
