test/test_splitfs.ml: Alcotest Bytes Fsapi Kernelfs List Pmem Printf QCheck QCheck_alcotest Splitfs String Test_ext4 Util
