test/test_baselines.ml: Alcotest Baselines Bytes Fsapi List Pmem Printf QCheck QCheck_alcotest Splitfs String Test_ext4 Util
