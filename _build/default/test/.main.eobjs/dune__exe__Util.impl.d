test/util.ml: Alcotest Char Fsapi Kernelfs Pmem Splitfs String
