test/test_process.ml: Alcotest Bytes Fsapi Kernelfs List Splitfs Util
