test/test_experiments.ml: Alcotest Harness List Printf Splitfs Util Workloads
