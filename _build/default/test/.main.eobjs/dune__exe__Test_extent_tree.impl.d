test/test_extent_tree.ml: Alcotest Extent_tree Gen Hashtbl Kernelfs List Option QCheck QCheck_alcotest Test Util
