test/test_oplog.ml: Alcotest Bytes Char Fsapi Kernelfs List Oplog Pmem QCheck QCheck_alcotest Splitfs Util
