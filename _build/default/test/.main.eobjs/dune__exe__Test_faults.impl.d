test/test_faults.ml: Alcotest Baselines Bytes Fsapi Kernelfs List Pmem Printf Splitfs String Util
