test/test_crash.ml: Alcotest Bytes Fsapi Kernelfs List Pmem QCheck QCheck_alcotest Splitfs String Test_ext4 Util
