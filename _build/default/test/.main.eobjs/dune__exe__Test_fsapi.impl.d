test/test_fsapi.ml: Alcotest Apps Fsapi Kernelfs List Pmem Printexc Splitfs Util Workloads
