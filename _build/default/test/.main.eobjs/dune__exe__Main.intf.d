test/main.mli:
