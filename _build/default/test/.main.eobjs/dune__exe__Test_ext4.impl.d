test/test_ext4.ml: Alcotest Bytes Fsapi Kernelfs List Pmem Printf QCheck QCheck_alcotest String Util
