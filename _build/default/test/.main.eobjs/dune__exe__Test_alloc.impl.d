test/test_alloc.ml: Alcotest Alloc Fsapi Gen Hashtbl Kernelfs List QCheck QCheck_alcotest Util
