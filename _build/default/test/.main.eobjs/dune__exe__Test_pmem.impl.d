test/test_pmem.ml: Alcotest Bytes Device Env Gen Pmem QCheck QCheck_alcotest Stats String Util
