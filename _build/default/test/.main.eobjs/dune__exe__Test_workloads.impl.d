test/test_workloads.ml: Alcotest Apps Array Fsapi Hashtbl List Option Pmem Printf String Util Workloads
