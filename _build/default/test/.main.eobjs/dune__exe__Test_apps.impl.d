test/test_apps.ml: Alcotest Apps Bytes Fsapi Gen Hashtbl Int32 List Pmem Printf QCheck QCheck_alcotest Splitfs String Util
