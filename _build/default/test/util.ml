(** Shared helpers for the test suites. *)

let make_env ?(capacity = 32 * 1024 * 1024) () = Pmem.Env.create ~capacity ()

let make_kernel ?capacity () =
  let env = make_env ?capacity () in
  let kfs = Kernelfs.Ext4.mkfs ~journal_len:(2 * 1024 * 1024) env in
  let sys = Kernelfs.Syscall.make kfs in
  (env, kfs, sys)

let small_splitfs_cfg mode =
  {
    Splitfs.Config.default with
    Splitfs.Config.mode;
    staging_files = 2;
    staging_size = 1024 * 1024;
    oplog_size = 64 * 1024;
  }

let make_splitfs ?capacity ?(mode = Splitfs.Config.Posix) ?cfg () =
  let env, kfs, sys = make_kernel ?capacity () in
  let cfg = match cfg with Some c -> c | None -> small_splitfs_cfg mode in
  let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
  (env, kfs, sys, u, Splitfs.Usplit.as_fsapi u)

let string_of_len n c = String.make n c

(** Deterministic pseudo-random bytes for content checks. *)
let pattern ~seed len =
  String.init len (fun i ->
      Char.chr ((seed * 131 + i * 7 + (i * i mod 251)) mod 256))

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fs_write_read_roundtrip (fs : Fsapi.Fs.t) path content =
  Fsapi.Fs.write_file fs path content;
  Fsapi.Fs.read_file fs path
