(** Operation log: 64-byte entry codec, checksum-based torn-entry
    detection, single-fence append behaviour, scan semantics. *)

open Splitfs

let tc = Alcotest.test_case

let sample_ops =
  [
    Oplog.Append
      { target_ino = 12; file_off = 4096; staging_ino = 99; staging_off = 8192; len = 4096 };
    Oplog.Overwrite
      { target_ino = 3; file_off = 0; staging_ino = 99; staging_off = 0; len = 100 };
    Oplog.Relinked { target_ino = 12 };
    Oplog.Create { ino = 44 };
    Oplog.Unlink { ino = 45 };
    Oplog.Rename { ino = 46 };
    Oplog.Truncate { ino = 47; size = 123456 };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun entry ->
      let b = Oplog.encode entry in
      Util.check_int "entry size" 64 (Bytes.length b);
      match Oplog.decode b ~off:0 with
      | Oplog.Valid e -> Alcotest.(check bool) "roundtrip" true (e = entry)
      | Oplog.Torn -> Alcotest.fail "torn"
      | Oplog.Empty -> Alcotest.fail "empty")
    sample_ops

let test_empty_slot () =
  let b = Bytes.make 64 '\000' in
  match Oplog.decode b ~off:0 with
  | Oplog.Empty -> ()
  | _ -> Alcotest.fail "expected Empty"

let prop_corruption_detected =
  QCheck.Test.make ~name:"any single-byte corruption is detected" ~count:200
    QCheck.(pair (int_bound 63) (int_range 1 255))
    (fun (pos, delta) ->
      let entry =
        Oplog.Append
          { target_ino = 7; file_off = 12288; staging_ino = 9; staging_off = 0; len = 512 }
      in
      let b = Oplog.encode entry in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xFF));
      match Oplog.decode b ~off:0 with
      | Oplog.Valid e -> e <> entry  (* must never decode to the original *)
      | Oplog.Torn | Oplog.Empty -> true)

let with_log f =
  let env, _kfs, sys = Util.make_kernel () in
  let log = Oplog.create ~sys ~env ~path:"/oplog" ~size:(64 * 1024) in
  f env sys log

let test_append_one_nt_store_no_fence () =
  with_log (fun env _sys log ->
      let stats = env.Pmem.Env.stats in
      let nt0 = stats.Pmem.Stats.nt_stores and f0 = stats.Pmem.Stats.fences in
      Oplog.append log (Oplog.Create { ino = 1 });
      (* one 64B NT store, zero fences: the caller's single sfence covers
         data + log entry together (§3.3) *)
      Util.check_int "one NT store" 1 (stats.Pmem.Stats.nt_stores - nt0);
      Util.check_int "no fence from the log itself" 0 (stats.Pmem.Stats.fences - f0);
      Util.check_int "tail" 1 (Oplog.entries_written log))

let test_scan_finds_entries () =
  with_log (fun _env sys log ->
      List.iter (Oplog.append log) sample_ops;
      Pmem.Device.fence _env.Pmem.Env.dev;
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "scanned" (List.length sample_ops) scan.Oplog.scanned;
      Util.check_int "torn" 0 scan.Oplog.torn;
      Alcotest.(check bool) "entries match" true (scan.Oplog.valid = sample_ops))

let test_scan_skips_torn_entry () =
  with_log (fun env sys log ->
      Oplog.append log (Oplog.Create { ino = 1 });
      Oplog.append log (Oplog.Create { ino = 2 });
      Oplog.append log (Oplog.Create { ino = 3 });
      (* tear the middle entry by overwriting half of it on the device *)
      let kfd = Kernelfs.Syscall.open_ sys "/oplog" Fsapi.Flags.rdwr in
      let junk = Bytes.make 32 '\xAB' in
      ignore (Kernelfs.Syscall.pwrite sys kfd ~buf:junk ~boff:0 ~len:32 ~at:64);
      Kernelfs.Syscall.close sys kfd;
      ignore env;
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "one torn" 1 scan.Oplog.torn;
      Util.check_int "two valid" 2 (List.length scan.Oplog.valid))

let test_clear_resets () =
  with_log (fun _env sys log ->
      List.iter (Oplog.append log) sample_ops;
      Oplog.clear log;
      Util.check_int "tail reset" 0 (Oplog.entries_written log);
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "nothing scanned" 0 scan.Oplog.scanned;
      (* the log is reusable after clear *)
      Oplog.append log (Oplog.Create { ino = 9 });
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "one entry" 1 scan.Oplog.scanned)

let test_full_log_raises () =
  let env, _kfs, sys = Util.make_kernel () in
  let log = Oplog.create ~sys ~env ~path:"/tiny" ~size:(4 * 64) in
  for i = 1 to 4 do
    Oplog.append log (Oplog.Create { ino = i })
  done;
  Alcotest.check_raises "full" (Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, "oplog full"))
    (fun () -> Oplog.append log (Oplog.Create { ino = 5 }))

let suite =
  [
    tc "codec roundtrip (all kinds)" `Quick test_codec_roundtrip;
    tc "all-zero slot is Empty" `Quick test_empty_slot;
    tc "append = one NT store, no fence" `Quick test_append_one_nt_store_no_fence;
    tc "scan finds appended entries" `Quick test_scan_finds_entries;
    tc "scan skips torn entries" `Quick test_scan_skips_torn_entry;
    tc "clear resets and allows reuse" `Quick test_clear_resets;
    tc "full log raises ENOSPC" `Quick test_full_log_raises;
    QCheck_alcotest.to_alcotest prop_corruption_detected;
  ]
