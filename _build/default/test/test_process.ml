(** Process-lifecycle handling (paper §3.5: fork, execve, dup) and the
    visibility semantics of §3.2 across U-Split instances. *)

let tc = Alcotest.test_case

let make () =
  let env, kfs, sys = Util.make_kernel ~capacity:(64 * 1024 * 1024) () in
  let u =
    Splitfs.Usplit.mount
      ~cfg:(Util.small_splitfs_cfg Splitfs.Config.Strict)
      ~sys ~env ~instance:0 ()
  in
  (env, kfs, sys, u, Splitfs.Usplit.as_fsapi u)

let test_fork_inherits_fds () =
  let _env, _kfs, _sys, u, fs = make () in
  let fd = fs.open_ "/shared" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "parent wrote this";
  let child, fd_map = Splitfs.Usplit.fork u ~instance:1 in
  let cfs = Splitfs.Usplit.as_fsapi child in
  let cfd = List.assoc fd fd_map in
  (* the child reads through its inherited descriptor *)
  let s = Fsapi.Fs.pread_exact cfs cfd ~len:17 ~at:0 in
  Util.check_str "child sees parent's data" "parent wrote this" s;
  (* both keep writing; the file is shared through the kernel *)
  Fsapi.Fs.write_string cfs cfd " +child";
  cfs.fsync cfd;
  fs.fsync fd;
  Util.check_str "both writes landed" "parent wrote this +child"
    (Fsapi.Fs.read_file fs "/shared")

let test_fork_independent_offsets () =
  let _env, _kfs, _sys, u, fs = make () in
  Fsapi.Fs.write_file fs "/off" "abcdefgh";
  let fd = fs.open_ "/off" Fsapi.Flags.rdonly in
  let b = Bytes.create 2 in
  ignore (fs.read fd ~buf:b ~boff:0 ~len:2);
  let child, fd_map = Splitfs.Usplit.fork u ~instance:1 in
  let cfs = Splitfs.Usplit.as_fsapi child in
  let cfd = List.assoc fd fd_map in
  (* after fork, offsets advance independently (separate struct-file copies
     in this model, like fork'ing after independent opens) *)
  ignore (cfs.read cfd ~buf:b ~boff:0 ~len:2);
  Util.check_str "child continues at the fork point" "cd" (Bytes.to_string b);
  ignore (fs.read fd ~buf:b ~boff:0 ~len:2);
  Util.check_str "parent also at its own offset" "cd" (Bytes.to_string b)

let test_execve_preserves_open_files () =
  let _env, _kfs, _sys, u, fs = make () in
  let fd = fs.open_ "/exec" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "before exec";
  let dup_fd = fs.dup fd in
  let fresh, fd_map = Splitfs.Usplit.execve u in
  let ffs = Splitfs.Usplit.as_fsapi fresh in
  let fd' = List.assoc fd fd_map and dup_fd' = List.assoc dup_fd fd_map in
  (* data is there, the offset survived, and dup'ed fds still share it *)
  Util.check_str "content survives exec" "before exec"
    (Fsapi.Fs.pread_exact ffs fd' ~len:11 ~at:0);
  Fsapi.Fs.write_string ffs fd' "+more";
  Fsapi.Fs.write_string ffs dup_fd' "+again";
  ffs.fsync fd';
  Util.check_str "offsets shared across the exec" "before exec+more+again"
    (Fsapi.Fs.read_file ffs "/exec")

let test_execve_preserves_unlinked_open_file () =
  let _env, _kfs, _sys, u, fs = make () in
  let fd = fs.open_ "/ghost" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "unlinked but open";
  fs.fsync fd;
  fs.unlink "/ghost";
  let fresh, fd_map = Splitfs.Usplit.execve u in
  let ffs = Splitfs.Usplit.as_fsapi fresh in
  let fd' = List.assoc fd fd_map in
  (* kernel fds survive exec, so even a name-less file stays readable *)
  Util.check_str "unlinked file readable after exec" "unlinked but open"
    (Fsapi.Fs.pread_exact ffs fd' ~len:17 ~at:0)

(* --- §3.2 visibility across instances --- *)

let make_two_instances () =
  let env, _kfs, sys = Util.make_kernel ~capacity:(64 * 1024 * 1024) () in
  let mk i mode =
    Splitfs.Usplit.as_fsapi
      (Splitfs.Usplit.mount ~cfg:(Util.small_splitfs_cfg mode) ~sys ~env
         ~instance:i ())
  in
  (env, sys, mk 0 Splitfs.Config.Posix, mk 1 Splitfs.Config.Posix)

let test_metadata_immediately_visible () =
  let _env, _sys, a, b = make_two_instances () in
  a.mkdir "/teamdir";
  Fsapi.Fs.write_file a "/teamdir/file" "x";
  (* §3.2: "Apart from appends, all SplitFS operations become immediately
     visible to all other processes" — write_file closes, which relinks *)
  Alcotest.(check (list string)) "dir visible to the other instance"
    [ "file" ] (b.readdir "/teamdir");
  a.unlink "/teamdir/file";
  Alcotest.(check bool) "unlink visible" false (Fsapi.Fs.exists b "/teamdir/file")

let test_appends_private_until_fsync () =
  let _env, _sys, a, b = make_two_instances () in
  Fsapi.Fs.write_file a "/pub" "";
  let fda = a.open_ "/pub" Fsapi.Flags.rdwr in
  Fsapi.Fs.write_string a fda "staged appends";
  (* instance B opens the file fresh: appends are not yet visible *)
  Util.check_int "appends private before fsync" 0 (b.stat "/pub").Fsapi.Fs.st_size;
  a.fsync fda;
  (* now B sees them (B re-opens; its attribute cache was for size 0) *)
  let fdb = b.open_ "/pub" Fsapi.Flags.rdonly in
  ignore fdb;
  Util.check_int "appends visible after fsync" 14
    (Kernelfs.Syscall.stat _sys "/pub").Fsapi.Fs.st_size;
  a.close fda

let suite =
  [
    tc "fork: child inherits descriptors" `Quick test_fork_inherits_fds;
    tc "fork: offsets independent afterwards" `Quick test_fork_independent_offsets;
    tc "execve: open files survive" `Quick test_execve_preserves_open_files;
    tc "execve: unlinked open file survives" `Quick
      test_execve_preserves_unlinked_open_file;
    tc "visibility: metadata ops immediate" `Quick test_metadata_immediately_visible;
    tc "visibility: appends private until fsync" `Quick
      test_appends_private_until_fsync;
  ]
