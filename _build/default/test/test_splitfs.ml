(** SplitFS (U-Split) behaviour: staging, relink on fsync/close, shadow
    reads, modes, visibility, and equivalence with ext4 DAX final states
    (the paper's §5.3 correctness methodology). *)

let tc = Alcotest.test_case

let modes = [ Splitfs.Config.Posix; Splitfs.Config.Sync; Splitfs.Config.Strict ]

let for_each_mode f () =
  List.iter
    (fun mode ->
      let _env, _kfs, _sys, u, fs = Util.make_splitfs ~mode () in
      f mode u fs)
    modes

let test_roundtrip =
  for_each_mode (fun mode _u fs ->
      let content = Util.pattern ~seed:11 10000 in
      let got = Util.fs_write_read_roundtrip fs "/r.txt" content in
      Util.check_str
        (Printf.sprintf "roundtrip (%s)" (Splitfs.Config.mode_to_string mode))
        content got)

let test_append_read_before_fsync =
  for_each_mode (fun _mode _u fs ->
      let fd = fs.open_ "/a" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "staged append";
      (* no fsync yet: data must still be readable (read-your-writes via the
         collection of mmaps + staging) *)
      Util.check_int "size visible" 13 (fs.fstat fd).Fsapi.Fs.st_size;
      let s = Fsapi.Fs.pread_exact fs fd ~len:13 ~at:0 in
      Util.check_str "read staged" "staged append" s;
      fs.close fd)

let test_append_not_in_kernel_until_fsync () =
  let _env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  let fd = fs.open_ "/k" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "invisible yet";
  (* through the kernel, the file is still empty: appends are staged *)
  Util.check_int "kernel size 0" 0 (Kernelfs.Syscall.stat sys "/k").Fsapi.Fs.st_size;
  fs.fsync fd;
  Util.check_int "kernel size after fsync" 13
    (Kernelfs.Syscall.stat sys "/k").Fsapi.Fs.st_size;
  let via_kernel =
    let kfd = Kernelfs.Syscall.open_ sys "/k" Fsapi.Flags.rdonly in
    let buf = Bytes.create 13 in
    ignore (Kernelfs.Syscall.pread sys kfd ~buf ~boff:0 ~len:13 ~at:0);
    Kernelfs.Syscall.close sys kfd;
    Bytes.to_string buf
  in
  Util.check_str "kernel sees relinked data" "invisible yet" via_kernel;
  fs.close fd

let test_relink_on_close () =
  let _env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  let fd = fs.open_ "/c" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "close relinks";
  fs.close fd;
  Util.check_int "kernel size after close" 13
    (Kernelfs.Syscall.stat sys "/c").Fsapi.Fs.st_size

let test_block_aligned_append_no_copy () =
  let env, _kfs, _sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  let fd = fs.open_ "/big" Fsapi.Flags.create_rw in
  let block = Bytes.of_string (Util.pattern ~seed:5 4096) in
  let stats = env.Pmem.Env.stats in
  for _ = 1 to 16 do
    ignore (fs.write fd ~buf:block ~boff:0 ~len:4096)
  done;
  let copied0 = stats.Pmem.Stats.relink_copied_bytes in
  fs.fsync fd;
  let copied1 = stats.Pmem.Stats.relink_copied_bytes in
  Util.check_int "block-aligned appends relink without copying" copied0 copied1;
  Alcotest.(check bool) "relinks happened" true (stats.Pmem.Stats.relinks > 0);
  fs.close fd

let test_unaligned_append_tail_zero_copy () =
  let env, _kfs, _sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  let fd = fs.open_ "/u" Fsapi.Flags.create_rw in
  (* appends ending at EOF relink their partial tail block wholesale: the
     file size caps the slack, so no bytes are copied at all *)
  Fsapi.Fs.write_string fs fd (String.make 100 'h');
  Fsapi.Fs.write_string fs fd (Util.pattern ~seed:8 8192);
  fs.fsync fd;
  Util.check_int "no copy for EOF-tail appends" 0
    env.Pmem.Env.stats.Pmem.Stats.relink_copied_bytes;
  let s = Fsapi.Fs.pread_exact fs fd ~len:8292 ~at:0 in
  Util.check_str "content intact" (String.make 100 'h' ^ Util.pattern ~seed:8 8192) s;
  fs.close fd

let test_unaligned_append_copies_only_head () =
  let env, _kfs, _sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  let fd = fs.open_ "/u2" Fsapi.Flags.create_rw in
  (* settle an unaligned kernel size first, then append across it: only the
     head bytes into the existing partial block are copied *)
  Fsapi.Fs.write_string fs fd (String.make 100 'h');
  fs.fsync fd;
  Fsapi.Fs.write_string fs fd (Util.pattern ~seed:8 8192);
  fs.fsync fd;
  let copied = env.Pmem.Env.stats.Pmem.Stats.relink_copied_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "copied only the head boundary (%d)" copied)
    true
    (copied > 0 && copied <= 4096 - 100);
  let s = Fsapi.Fs.pread_exact fs fd ~len:8292 ~at:0 in
  Util.check_str "content intact" (String.make 100 'h' ^ Util.pattern ~seed:8 8192) s;
  fs.close fd

let test_overwrite_in_place_posix () =
  let _env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  Fsapi.Fs.write_file fs "/o" (String.make 8192 'a');
  let fd = fs.open_ "/o" Fsapi.Flags.rdwr in
  let s0 = Kernelfs.Syscall.stat sys "/o" in
  Fsapi.Fs.pwrite_string fs fd "XYZ" ~at:1000;
  (* POSIX-mode overwrites are in place: immediately visible via kernel *)
  let kfd = Kernelfs.Syscall.open_ sys "/o" Fsapi.Flags.rdonly in
  let buf = Bytes.create 3 in
  ignore (Kernelfs.Syscall.pread sys kfd ~buf ~boff:0 ~len:3 ~at:1000);
  Util.check_str "in-place overwrite visible" "XYZ" (Bytes.to_string buf);
  Kernelfs.Syscall.close sys kfd;
  Util.check_int "size unchanged" s0.Fsapi.Fs.st_size (fs.fstat fd).Fsapi.Fs.st_size;
  fs.close fd

let test_strict_overwrite_staged_then_relinked () =
  let _env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  Fsapi.Fs.write_file fs "/so" (String.make 8192 'a');
  let fd = fs.open_ "/so" Fsapi.Flags.rdwr in
  fs.fsync fd;
  Fsapi.Fs.pwrite_string fs fd "NEW" ~at:4096;
  (* before fsync, the kernel file still holds the old bytes *)
  let kfd = Kernelfs.Syscall.open_ sys "/so" Fsapi.Flags.rdonly in
  let buf = Bytes.create 3 in
  ignore (Kernelfs.Syscall.pread sys kfd ~buf ~boff:0 ~len:3 ~at:4096);
  Util.check_str "kernel still old" "aaa" (Bytes.to_string buf);
  (* but U-Split reads its own staged data *)
  let s = Fsapi.Fs.pread_exact fs fd ~len:3 ~at:4096 in
  Util.check_str "read-your-writes" "NEW" s;
  fs.fsync fd;
  ignore (Kernelfs.Syscall.pread sys kfd ~buf ~boff:0 ~len:3 ~at:4096);
  Util.check_str "kernel new after fsync" "NEW" (Bytes.to_string buf);
  Kernelfs.Syscall.close sys kfd;
  fs.close fd

let test_mixed_append_overwrite =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      let fd = fs.open_ "/mix" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "0123456789";
      Fsapi.Fs.pwrite_string fs fd "AB" ~at:3;
      Fsapi.Fs.write_string fs fd "XYZ";
      let s = Fsapi.Fs.pread_exact fs fd ~len:13 ~at:0 in
      Util.check_str (name ^ ": mixed content") "012AB56789XYZ" s;
      fs.fsync fd;
      let s = Fsapi.Fs.pread_exact fs fd ~len:13 ~at:0 in
      Util.check_str (name ^ ": after fsync") "012AB56789XYZ" s;
      fs.close fd;
      fs.unlink "/mix")

let test_ftruncate_drops_staged =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      let fd = fs.open_ "/tr" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd (String.make 6000 't');
      fs.ftruncate fd 100;
      Util.check_int (name ^ ": truncated size") 100 (fs.fstat fd).Fsapi.Fs.st_size;
      let s = Fsapi.Fs.pread_exact fs fd ~len:100 ~at:0 in
      Util.check_str (name ^ ": kept prefix") (String.make 100 't') s;
      fs.fsync fd;
      Util.check_int (name ^ ": size stable") 100 (fs.fstat fd).Fsapi.Fs.st_size;
      fs.close fd;
      fs.unlink "/tr")

let test_ftruncate_grow_sparse =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      let fd = fs.open_ "/gr" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "data";
      fs.ftruncate fd 9000;
      Util.check_int (name ^ ": grown") 9000 (fs.fstat fd).Fsapi.Fs.st_size;
      let s = Fsapi.Fs.pread_exact fs fd ~len:9000 ~at:0 in
      Util.check_str (name ^ ": tail zeros") ("data" ^ String.make 8996 '\000') s;
      fs.close fd;
      fs.unlink "/gr")

let test_staging_exhaustion_midstream () =
  (* staging file of 256 KB, appends of 64 KB: forces relink-to-make-room *)
  let cfg =
    {
      (Util.small_splitfs_cfg Splitfs.Config.Posix) with
      Splitfs.Config.staging_size = 256 * 1024;
      staging_files = 1;
    }
  in
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~cfg () in
  let fd = fs.open_ "/spill" Fsapi.Flags.create_rw in
  let chunk = Bytes.of_string (Util.pattern ~seed:21 65536) in
  for _ = 1 to 8 do
    ignore (fs.write fd ~buf:chunk ~boff:0 ~len:65536)
  done;
  Util.check_int "size" (8 * 65536) (fs.fstat fd).Fsapi.Fs.st_size;
  fs.fsync fd;
  let s = Fsapi.Fs.pread_exact fs fd ~len:65536 ~at:(7 * 65536) in
  Util.check_str "last chunk intact" (Bytes.to_string chunk) s;
  fs.close fd

let test_unlink_cleans_up =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      let fd = fs.open_ "/ul" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "bye";
      fs.close fd;
      fs.unlink "/ul";
      Alcotest.(check bool) (name ^ ": gone") false (Fsapi.Fs.exists fs "/ul"))

let test_unlink_while_open_keeps_data =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      let fd = fs.open_ "/ho" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "keep me";
      fs.unlink "/ho";
      let s = Fsapi.Fs.pread_exact fs fd ~len:7 ~at:0 in
      Util.check_str (name ^ ": fd still reads") "keep me" s;
      fs.close fd;
      Alcotest.(check bool) (name ^ ": gone") false (Fsapi.Fs.exists fs "/ho"))

let test_rename_updates_cache =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      Fsapi.Fs.write_file fs "/r1" "payload";
      fs.rename "/r1" "/r2";
      Util.check_str (name ^ ": via new name") "payload" (Fsapi.Fs.read_file fs "/r2");
      Alcotest.(check bool) (name ^ ": old gone") false (Fsapi.Fs.exists fs "/r1"))

let test_open_trunc_resets =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      Fsapi.Fs.write_file fs "/ot" "old content";
      let fd = fs.open_ "/ot" Fsapi.Flags.create_trunc in
      Util.check_int (name ^ ": size 0") 0 (fs.fstat fd).Fsapi.Fs.st_size;
      Fsapi.Fs.write_string fs fd "new";
      fs.close fd;
      Util.check_str (name ^ ": new content") "new" (Fsapi.Fs.read_file fs "/ot"))

let test_dup_shares_offset =
  for_each_mode (fun mode _u fs ->
      let name = Splitfs.Config.mode_to_string mode in
      Fsapi.Fs.write_file fs "/dp" "abcdef";
      let fd = fs.open_ "/dp" Fsapi.Flags.rdonly in
      let fd2 = fs.dup fd in
      let b = Bytes.create 2 in
      ignore (fs.read fd ~buf:b ~boff:0 ~len:2);
      ignore (fs.read fd2 ~buf:b ~boff:0 ~len:2);
      Util.check_str (name ^ ": dup shares offset") "cd" (Bytes.to_string b);
      fs.close fd;
      fs.close fd2)

let test_oplog_checkpoint_on_full () =
  (* tiny log: 64 entries; write more ops than that *)
  let cfg =
    {
      (Util.small_splitfs_cfg Splitfs.Config.Strict) with
      Splitfs.Config.oplog_size = 64 * 64;
    }
  in
  let _env, _kfs, _sys, u, fs = Util.make_splitfs ~cfg () in
  let fd = fs.open_ "/ckpt" Fsapi.Flags.create_rw in
  let chunk = Bytes.make 100 'c' in
  for _ = 1 to 200 do
    ignore (fs.write fd ~buf:chunk ~boff:0 ~len:100)
  done;
  Util.check_int "all appends applied" 20000 (fs.fstat fd).Fsapi.Fs.st_size;
  let s = Fsapi.Fs.pread_exact fs fd ~len:20000 ~at:0 in
  Alcotest.(check bool) "content" true (String.for_all (fun c -> c = 'c') s);
  (match Splitfs.Usplit.oplog u with
  | Some log ->
      Alcotest.(check bool) "log was checkpointed" true
        (Splitfs.Oplog.entries_written log < 200)
  | None -> Alcotest.fail "strict mode has a log");
  fs.close fd

let test_dram_staging_functional () =
  (* the section-4 DRAM-staging design must still be functionally correct:
     staged data readable, fsync copies it into the file *)
  let cfg =
    {
      (Util.small_splitfs_cfg Splitfs.Config.Posix) with
      Splitfs.Config.staging_in_dram = true;
    }
  in
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~cfg () in
  let fd = fs.open_ "/dram" Fsapi.Flags.create_rw in
  let content = Util.pattern ~seed:33 20000 in
  Fsapi.Fs.write_string fs fd content;
  Util.check_str "read staged from DRAM" content
    (Fsapi.Fs.pread_exact fs fd ~len:20000 ~at:0);
  let copied0 = env.Pmem.Env.stats.Pmem.Stats.relink_copied_bytes in
  fs.fsync fd;
  (* no relink possible: everything is copied *)
  Util.check_int "fsync copied all staged bytes" (copied0 + 20000)
    env.Pmem.Env.stats.Pmem.Stats.relink_copied_bytes;
  Util.check_str "durable via kernel" content
    (let kfd = Kernelfs.Syscall.open_ sys "/dram" Fsapi.Flags.rdonly in
     let buf = Bytes.create 20000 in
     ignore (Kernelfs.Syscall.pread sys kfd ~buf ~boff:0 ~len:20000 ~at:0);
     Kernelfs.Syscall.close sys kfd;
     Bytes.to_string buf);
  fs.close fd

let test_memory_usage_reported () =
  let _env, _kfs, _sys, u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  for i = 0 to 9 do
    Fsapi.Fs.write_file fs (Printf.sprintf "/m%d" i) (String.make 5000 'm')
  done;
  Alcotest.(check bool) "nonzero memory usage" true
    (Splitfs.Usplit.memory_usage u > 0)

(* --- §5.3 equivalence: same random ops on SplitFS and on raw ext4 --- *)

let prop_equiv_with_ext4 mode =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "splitfs-%s final state equals ext4 DAX"
         (Splitfs.Config.mode_to_string mode))
    ~count:40
    Test_ext4.arb_ops
    (fun ops ->
      let _e1, _k1, _s1, _u, split_fs = Util.make_splitfs ~mode () in
      let _e2, _k2, sys2 = Util.make_kernel () in
      let ext4_fs = Kernelfs.Syscall.as_fsapi sys2 in
      let ok = ref true in
      List.iter
        (fun op ->
          let a = Test_ext4.apply_op split_fs op in
          let b = Test_ext4.apply_op ext4_fs op in
          if a <> b then ok := false)
        ops;
      !ok && Test_ext4.final_states_agree split_fs ext4_fs)

let suite =
  [
    tc "roundtrip in all modes" `Quick test_roundtrip;
    tc "read staged appends before fsync" `Quick test_append_read_before_fsync;
    tc "appends invisible to kernel until fsync" `Quick
      test_append_not_in_kernel_until_fsync;
    tc "relink on close" `Quick test_relink_on_close;
    tc "block-aligned appends: zero-copy relink" `Quick
      test_block_aligned_append_no_copy;
    tc "EOF-tail appends relink with zero copy" `Quick
      test_unaligned_append_tail_zero_copy;
    tc "appends over an unaligned size copy only the head" `Quick
      test_unaligned_append_copies_only_head;
    tc "POSIX overwrites are in-place" `Quick test_overwrite_in_place_posix;
    tc "strict overwrites staged then relinked" `Quick
      test_strict_overwrite_staged_then_relinked;
    tc "mixed appends and overwrites" `Quick test_mixed_append_overwrite;
    tc "ftruncate drops staged tail" `Quick test_ftruncate_drops_staged;
    tc "ftruncate grows sparsely" `Quick test_ftruncate_grow_sparse;
    tc "staging exhaustion forces early relink" `Quick
      test_staging_exhaustion_midstream;
    tc "unlink cleans up" `Quick test_unlink_cleans_up;
    tc "unlink while open keeps data" `Quick test_unlink_while_open_keeps_data;
    tc "rename updates attribute cache" `Quick test_rename_updates_cache;
    tc "O_TRUNC resets state" `Quick test_open_trunc_resets;
    tc "dup shares offset" `Quick test_dup_shares_offset;
    tc "oplog checkpoint when full" `Quick test_oplog_checkpoint_on_full;
    tc "DRAM staging ablation functional" `Quick test_dram_staging_functional;
    tc "memory usage reported" `Quick test_memory_usage_reported;
    QCheck_alcotest.to_alcotest (prop_equiv_with_ext4 Splitfs.Config.Posix);
    QCheck_alcotest.to_alcotest (prop_equiv_with_ext4 Splitfs.Config.Sync);
    QCheck_alcotest.to_alcotest (prop_equiv_with_ext4 Splitfs.Config.Strict);
  ]
