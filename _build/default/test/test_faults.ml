(** Failure injection and adversarial scenarios: ENOSPC behaviour, wear
    accounting, multi-instance isolation, fragmentation-induced huge-page
    failure (§4), and multi-file recovery interleavings. *)

let tc = Alcotest.test_case

let test_enospc_is_clean () =
  (* a tiny device: filling it must raise ENOSPC without corrupting what
     was already written *)
  let env, _kfs, sys = Util.make_kernel ~capacity:(8 * 1024 * 1024) () in
  let cfg =
    {
      (Util.small_splitfs_cfg Splitfs.Config.Posix) with
      Splitfs.Config.staging_files = 1;
      staging_size = 512 * 1024;
      oplog_size = 16 * 1024;
    }
  in
  let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
  let fs = Splitfs.Usplit.as_fsapi u in
  Fsapi.Fs.write_file fs "/precious" "must survive";
  let fd = fs.open_ "/filler" Fsapi.Flags.create_rw in
  let chunk = Bytes.make 65536 'f' in
  let filled = ref 0 in
  (try
     for _ = 1 to 1000 do
       ignore (fs.write fd ~buf:chunk ~boff:0 ~len:65536);
       fs.fsync fd;
       incr filled
     done;
     Alcotest.fail "expected ENOSPC on a full device"
   with Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) -> ());
  Alcotest.(check bool) "wrote something before filling" true (!filled > 10);
  Util.check_str "earlier data intact" "must survive"
    (Fsapi.Fs.read_file fs "/precious")

let test_wear_splitfs_vs_strata () =
  (* PM endurance (§2.1/§2.3): an append workload wears Strata's PM about
     twice as much as SplitFS because of the digest copy *)
  let payload = 256 * 1024 in
  let run_splitfs () =
    let env, _kfs, _sys, _u, fs =
      Util.make_splitfs ~mode:Splitfs.Config.Strict ()
    in
    let fd = fs.open_ "/w" Fsapi.Flags.create_rw in
    let buf = Bytes.make 4096 'w' in
    let w0 = Pmem.Device.total_wear env.Pmem.Env.dev in
    for _ = 1 to payload / 4096 do
      ignore (fs.write fd ~buf ~boff:0 ~len:4096)
    done;
    fs.fsync fd;
    fs.close fd;
    Pmem.Device.total_wear env.Pmem.Env.dev - w0
  in
  let run_strata () =
    let env = Util.make_env () in
    let s = Baselines.Strata.mkfs ~log_len:(128 * 1024) env in
    let fs = Baselines.Strata.as_fsapi s in
    let fd = fs.open_ "/w" Fsapi.Flags.create_rw in
    let buf = Bytes.make 4096 'w' in
    let w0 = Pmem.Device.total_wear env.Pmem.Env.dev in
    for _ = 1 to payload / 4096 do
      ignore (fs.write fd ~buf ~boff:0 ~len:4096)
    done;
    fs.fsync fd;
    Baselines.Strata.digest_now s;
    fs.close fd;
    Pmem.Device.total_wear env.Pmem.Env.dev - w0
  in
  let split_wear = run_splitfs () and strata_wear = run_strata () in
  Alcotest.(check bool)
    (Printf.sprintf "strata wear (%d) ~2x splitfs wear (%d)" strata_wear split_wear)
    true
    (float_of_int strata_wear > 1.5 *. float_of_int split_wear)

let test_two_strict_instances_isolated () =
  (* §3.7: U-Split instances are isolated; each has its own staging files
     and log, and staged data never leaks across instances *)
  let env, _kfs, sys = Util.make_kernel ~capacity:(64 * 1024 * 1024) () in
  let mk i =
    Splitfs.Usplit.mount
      ~cfg:(Util.small_splitfs_cfg Splitfs.Config.Strict)
      ~sys ~env ~instance:i ()
  in
  let ua = mk 0 and ub = mk 1 in
  let a = Splitfs.Usplit.as_fsapi ua and b = Splitfs.Usplit.as_fsapi ub in
  let fda = a.open_ "/a-file" Fsapi.Flags.create_rw in
  let fdb = b.open_ "/b-file" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string a fda (Util.pattern ~seed:1 5000);
  Fsapi.Fs.write_string b fdb (Util.pattern ~seed:2 5000);
  a.fsync fda;
  b.fsync fdb;
  Util.check_str "A's file" (Util.pattern ~seed:1 5000) (Fsapi.Fs.read_file a "/a-file");
  Util.check_str "B's file" (Util.pattern ~seed:2 5000) (Fsapi.Fs.read_file b "/b-file");
  (* separate logs: A's entries never land in B's log *)
  (match (Splitfs.Usplit.oplog ua, Splitfs.Usplit.oplog ub) with
  | Some la, Some lb ->
      Alcotest.(check bool) "distinct log files" true
        (Splitfs.Oplog.path la <> Splitfs.Oplog.path lb)
  | _ -> Alcotest.fail "both strict instances must have logs")

let test_crash_recovers_both_instances () =
  (* two strict instances with pending staged data; crash; each instance's
     log is replayed independently *)
  let env, _kfs, sys = Util.make_kernel ~capacity:(64 * 1024 * 1024) () in
  let mk i =
    Splitfs.Usplit.mount
      ~cfg:(Util.small_splitfs_cfg Splitfs.Config.Strict)
      ~sys ~env ~instance:i ()
  in
  let a = Splitfs.Usplit.as_fsapi (mk 0) and b = Splitfs.Usplit.as_fsapi (mk 1) in
  let fda = a.open_ "/xa" Fsapi.Flags.create_rw in
  let fdb = b.open_ "/xb" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string a fda "alpha instance data";
  Fsapi.Fs.write_string b fdb "beta instance data";
  Pmem.Device.crash env.Pmem.Env.dev;
  let ra = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  let rb = Splitfs.Recovery.recover ~sys ~env ~instance:1 in
  Alcotest.(check bool) "both replayed" true
    (ra.Splitfs.Recovery.entries_replayed > 0
    && rb.Splitfs.Recovery.entries_replayed > 0);
  let k = Kernelfs.Syscall.as_fsapi sys in
  Util.check_str "A recovered" "alpha instance data" (Fsapi.Fs.read_file k "/xa");
  Util.check_str "B recovered" "beta instance data" (Fsapi.Fs.read_file k "/xb")

let test_multi_file_interleaved_recovery () =
  (* interleave staged appends across three files, crash, recover: each
     file must contain exactly its own records in order *)
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  let fds =
    List.init 3 (fun i -> fs.open_ (Printf.sprintf "/il-%d" i) Fsapi.Flags.create_rw)
  in
  for round = 0 to 19 do
    List.iteri
      (fun i fd ->
        Fsapi.Fs.write_string fs fd (Printf.sprintf "f%d-r%02d;" i round))
      fds
  done;
  Pmem.Device.crash env.Pmem.Env.dev;
  ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0);
  let k = Kernelfs.Syscall.as_fsapi sys in
  List.iteri
    (fun i _ ->
      let expect =
        String.concat "" (List.init 20 (fun r -> Printf.sprintf "f%d-r%02d;" i r))
      in
      Util.check_str
        (Printf.sprintf "file %d interleaving preserved" i)
        expect
        (Fsapi.Fs.read_file k (Printf.sprintf "/il-%d" i)))
    fds

let test_read_only_fd_rejections () =
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs () in
  Fsapi.Fs.write_file fs "/ro" "data";
  let fd = fs.open_ "/ro" Fsapi.Flags.rdonly in
  let buf = Bytes.make 4 'x' in
  Alcotest.check_raises "pwrite on rdonly"
    (Fsapi.Errno.Error (Fsapi.Errno.EBADF, "pwrite"))
    (fun () -> ignore (fs.pwrite fd ~buf ~boff:0 ~len:4 ~at:0));
  let wfd = fs.open_ "/ro" Fsapi.Flags.wronly in
  Alcotest.check_raises "pread on wronly"
    (Fsapi.Errno.Error (Fsapi.Errno.EBADF, "pread"))
    (fun () -> ignore (fs.pread wfd ~buf ~boff:0 ~len:4 ~at:0));
  fs.close fd;
  fs.close wfd

let test_fragmentation_defeats_huge_pages () =
  (* §4: after create/delete churn fragments the device, fresh large
     allocations can no longer be 2 MB-aligned, so new mappings fall back
     to 4 KB faults — while the pre-allocated staging region keeps its
     huge mapping *)
  let env, kfs, sys = Util.make_kernel ~capacity:(32 * 1024 * 1024) () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  (* early, unfragmented: a 2 MB fallocate maps huge *)
  let early = fs.open_ "/early" Fsapi.Flags.create_rw in
  ignore (Kernelfs.Syscall.fallocate sys early ~off:0 ~len:(2 * 1024 * 1024));
  let m_early = Kernelfs.Syscall.mmap sys early ~off:0 ~len:(2 * 1024 * 1024) in
  Alcotest.(check bool) "early mapping is huge" true m_early.Kernelfs.Ext4.m_huge;
  (* churn: fill the device with small files, then delete every other one
     so all free space is in isolated 4K holes *)
  let created = ref 0 in
  (try
     for i = 0 to 9999 do
       Fsapi.Fs.write_file fs (Printf.sprintf "/churn-%04d" i)
         (String.make 4096 'c');
       created := i + 1
     done
   with Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) -> ());
  Alcotest.(check bool) "device was filled" true (!created > 1000);
  for i = 0 to !created - 2 do
    if i mod 2 = 0 then fs.unlink (Printf.sprintf "/churn-%04d" i)
  done;
  Alcotest.(check bool) "free space is fragmented" true
    (Kernelfs.Alloc.fragmentation (Kernelfs.Ext4.allocator kfs) ~run:512 > 0.9);
  let late = fs.open_ "/late" Fsapi.Flags.create_rw in
  ignore (Kernelfs.Syscall.fallocate sys late ~off:0 ~len:(2 * 1024 * 1024));
  let m_late = Kernelfs.Syscall.mmap sys late ~off:0 ~len:(2 * 1024 * 1024) in
  Alcotest.(check bool) "late mapping cannot be huge" false
    m_late.Kernelfs.Ext4.m_huge;
  ignore env;
  fs.close early;
  fs.close late

let suite =
  [
    tc "ENOSPC is clean" `Quick test_enospc_is_clean;
    tc "wear: strata ~2x splitfs on appends" `Quick test_wear_splitfs_vs_strata;
    tc "two strict instances isolated" `Quick test_two_strict_instances_isolated;
    tc "crash recovers both instances" `Quick test_crash_recovers_both_instances;
    tc "multi-file interleaved recovery" `Quick test_multi_file_interleaved_recovery;
    tc "access-mode rejections" `Quick test_read_only_fd_rejections;
    tc "fragmentation defeats huge pages" `Quick test_fragmentation_defeats_huge_pages;
  ]
