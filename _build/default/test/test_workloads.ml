(** Workload generators: determinism, distribution sanity, op-mix ratios,
    and end-to-end smoke runs of YCSB / TPC-C / varmail / utilities. *)

let tc = Alcotest.test_case

let test_rng_deterministic () =
  let a = Workloads.Rng.create 42 and b = Workloads.Rng.create 42 in
  for _ = 1 to 100 do
    Util.check_int "same stream" (Workloads.Rng.int a 1000) (Workloads.Rng.int b 1000)
  done;
  let c = Workloads.Rng.create 43 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Workloads.Rng.int a 1000 <> Workloads.Rng.int c 1000 then diff := true
  done;
  Alcotest.(check bool) "different seeds differ" true !diff

let test_rng_uniformity () =
  let rng = Workloads.Rng.create 7 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10000 do
    let v = Workloads.Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) (Printf.sprintf "bucket ~1000 (%d)" c) true (c > 700 && c < 1300))
    buckets

let test_zipf_skew () =
  let rng = Workloads.Rng.create 3 in
  let z = Workloads.Zipf.create 1000 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 20000 do
    let v = Workloads.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000);
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let count k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  (* rank 0 must be far hotter than the mid ranks; top-10 should take a
     large share, as zipfian(0.99) implies *)
  Alcotest.(check bool) "head is hot" true (count 0 > 20000 / 20);
  let top10 = List.fold_left (fun acc k -> acc + count k) 0 [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  Alcotest.(check bool)
    (Printf.sprintf "top-10 share > 25%% (%d)" top10)
    true
    (top10 > 20000 / 4)

let test_ycsb_mixes () =
  (* verify the read/write mix of each workload statistically *)
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) () in
  let lsm = Apps.Lsm.open_ fs "/mix" in
  let cfg =
    { Workloads.Ycsb.default_config with Workloads.Ycsb.records = 200; operations = 1000; value_size = 64 }
  in
  ignore (Workloads.Ycsb.run lsm Workloads.Ycsb.Load cfg);
  let check_mix w ~reads_pct ~tolerance =
    let r = Workloads.Ycsb.run lsm w cfg in
    let total = float_of_int r.Workloads.Ycsb.ops_done in
    let reads = float_of_int r.Workloads.Ycsb.reads /. total *. 100. in
    Alcotest.(check bool)
      (Printf.sprintf "%s reads ~%d%% (got %.0f%%)" (Workloads.Ycsb.workload_name w) reads_pct reads)
      true
      (abs_float (reads -. float_of_int reads_pct) < tolerance)
  in
  check_mix Workloads.Ycsb.A ~reads_pct:50 ~tolerance:6.;
  check_mix Workloads.Ycsb.B ~reads_pct:95 ~tolerance:3.;
  check_mix Workloads.Ycsb.C ~reads_pct:100 ~tolerance:0.1;
  (* F does a read per op and a write for half of them *)
  let f = Workloads.Ycsb.run lsm Workloads.Ycsb.F cfg in
  Alcotest.(check bool) "F writes ~50%" true
    (abs_float (float_of_int f.Workloads.Ycsb.writes /. 1000. -. 0.5) < 0.06);
  let e = Workloads.Ycsb.run lsm Workloads.Ycsb.E cfg in
  Alcotest.(check bool) "E scans ~95%" true (e.Workloads.Ycsb.scans > 900);
  Apps.Lsm.close lsm

let test_ycsb_no_missing_keys () =
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) () in
  let lsm = Apps.Lsm.open_ fs "/complete" in
  let cfg =
    { Workloads.Ycsb.default_config with Workloads.Ycsb.records = 300; operations = 600; value_size = 64 }
  in
  ignore (Workloads.Ycsb.run lsm Workloads.Ycsb.Load cfg);
  let r = Workloads.Ycsb.run lsm Workloads.Ycsb.A cfg in
  Util.check_int "every read found its key" 0 r.Workloads.Ycsb.not_found;
  Apps.Lsm.close lsm

let test_tpcc_mix () =
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) () in
  let db = Apps.Waldb.open_ fs "/t.db" () in
  let cfg =
    {
      Workloads.Tpcc.default_config with
      Workloads.Tpcc.transactions = 400;
      customers_per_district = 20;
      items = 100;
    }
  in
  Workloads.Tpcc.load db cfg;
  let r = Workloads.Tpcc.run db cfg in
  Util.check_int "all transactions ran" 400 (Workloads.Tpcc.total r);
  (* the standard mix: ~45% new-order, ~43% payment *)
  Alcotest.(check bool)
    (Printf.sprintf "new-order ~45%% (%d)" r.Workloads.Tpcc.new_orders)
    true
    (r.Workloads.Tpcc.new_orders > 140 && r.Workloads.Tpcc.new_orders < 220);
  Alcotest.(check bool)
    (Printf.sprintf "payment ~43%% (%d)" r.Workloads.Tpcc.payments)
    true
    (r.Workloads.Tpcc.payments > 130 && r.Workloads.Tpcc.payments < 215);
  Alcotest.(check bool) "some deliveries" true (r.Workloads.Tpcc.deliveries > 0);
  Apps.Waldb.close db

let test_varmail_measures () =
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) () in
  let env = _env in
  let lat = Workloads.Varmail.run fs ~now:(fun () -> Pmem.Env.now env) ~iterations:20 in
  Alcotest.(check bool) "open > 0" true (lat.Workloads.Varmail.open_ns > 0.);
  Alcotest.(check bool) "append > 0" true (lat.Workloads.Varmail.append_ns > 0.);
  Alcotest.(check bool) "fsync > append" true
    (lat.Workloads.Varmail.fsync_ns > lat.Workloads.Varmail.append_ns);
  (* all the varmail files were unlinked *)
  let _env2, _k, sys = Util.make_kernel () in
  ignore sys;
  Alcotest.(check bool) "cleanup" true (not (Fsapi.Fs.exists fs "/varmail-0"))

let test_utilities_run () =
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) () in
  let paths = Workloads.Utility.make_tree fs ~root:"/src" ~files:50 ~seed:1 in
  Util.check_int "tree size" 50 (List.length paths);
  let g = Workloads.Utility.git fs ~root:"/src" ~paths ~commits:3 ~seed:2 in
  Alcotest.(check bool) "git wrote objects" true (g.Workloads.Utility.files > 0);
  let t = Workloads.Utility.tar fs ~paths ~archive:"/b.tar" in
  Util.check_int "tar covered all files" 50 t.Workloads.Utility.files;
  Alcotest.(check bool) "archive exists" true
    (Fsapi.Fs.file_size fs "/b.tar" > t.Workloads.Utility.bytes - 200);
  let r = Workloads.Utility.rsync fs ~paths ~src_root:"/src" ~dst_root:"/dst" in
  Util.check_int "rsync copied all" 50 r.Workloads.Utility.files;
  (* spot-check one copied file *)
  let p = List.nth paths 17 in
  let rel = String.sub p 4 (String.length p - 4) in
  Util.check_str "copy identical" (Fsapi.Fs.read_file fs p)
    (Fsapi.Fs.read_file fs ("/dst" ^ rel))

let test_iopattern_ops_counted () =
  let _env, _kfs, _sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) () in
  let cfg =
    { Workloads.Iopattern.default_config with Workloads.Iopattern.file_size = 1024 * 1024 }
  in
  Workloads.Iopattern.prepare fs cfg;
  List.iter
    (fun p ->
      Util.check_int
        (Workloads.Iopattern.pattern_name p)
        256
        (Workloads.Iopattern.run fs cfg p))
    Workloads.Iopattern.[ Seq_read; Rand_read; Seq_write; Rand_write; Append ]

let suite =
  [
    tc "rng determinism" `Quick test_rng_deterministic;
    tc "rng uniformity" `Quick test_rng_uniformity;
    tc "zipfian skew" `Quick test_zipf_skew;
    tc "ycsb op mixes" `Quick test_ycsb_mixes;
    tc "ycsb finds every key" `Quick test_ycsb_no_missing_keys;
    tc "tpcc transaction mix" `Quick test_tpcc_mix;
    tc "varmail measures latencies" `Quick test_varmail_measures;
    tc "utility workloads" `Quick test_utilities_run;
    tc "iopattern op counts" `Quick test_iopattern_ops_counted;
  ]
