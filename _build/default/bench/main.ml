(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (printed as paper-style tables from the simulated clock),
    and registers one Bechamel [Test.make] per table/figure measuring the
    wall-clock cost of the simulator itself on that experiment's kernel
    operation.

    Usage: [dune exec bench/main.exe] (paper tables + bechamel)
           [dune exec bench/main.exe -- --fast] (paper tables only) *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel micro-closures: one per table/figure. Each closure performs *)
(* a small self-contained batch on a persistent stack so it can run     *)
(* repeatedly; what Bechamel measures is the real-time cost of the      *)
(* simulation, complementing the simulated-time tables.                 *)
(* ------------------------------------------------------------------ *)

let append_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  let fd = fs.Fsapi.Fs.open_ "/bench-append" Fsapi.Flags.create_rw in
  let buf = Bytes.make 4096 'b' in
  let count = ref 0 in
  fun () ->
    ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:4096);
    incr count;
    if !count mod 256 = 0 then begin
      fs.Fsapi.Fs.fsync fd;
      fs.Fsapi.Fs.ftruncate fd 0
    end

let overwrite_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  Fsapi.Fs.write_file fs "/bench-ow" (String.make 65536 'o');
  let fd = fs.Fsapi.Fs.open_ "/bench-ow" Fsapi.Flags.rdwr in
  let buf = Bytes.make 4096 'w' in
  let i = ref 0 in
  fun () ->
    ignore (fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len:4096 ~at:(!i mod 16 * 4096));
    incr i

let read_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  Fsapi.Fs.write_file fs "/bench-rd" (String.make 65536 'r');
  let fd = fs.Fsapi.Fs.open_ "/bench-rd" Fsapi.Flags.rdonly in
  let buf = Bytes.make 4096 '\000' in
  let i = ref 0 in
  fun () ->
    ignore (fs.Fsapi.Fs.pread fd ~buf ~boff:0 ~len:4096 ~at:(!i mod 16 * 4096));
    incr i

let varmail_closure spec =
  let stack = Harness.Fs_config.make spec in
  let fs = stack.Harness.Fs_config.fs in
  let buf = Bytes.make 4096 'v' in
  let i = ref 0 in
  fun () ->
    let path = Printf.sprintf "/vm-%d" (!i mod 64) in
    incr i;
    let fd = fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw in
    ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:4096);
    fs.Fsapi.Fs.fsync fd;
    fs.Fsapi.Fs.close fd;
    fs.Fsapi.Fs.unlink path

let kv_closure spec =
  let stack = Harness.Fs_config.make spec in
  let lsm = Apps.Lsm.open_ stack.Harness.Fs_config.fs "/bench-lsm" in
  let rng = Workloads.Rng.create 1 in
  fun () ->
    let k = Printf.sprintf "key%06d" (Workloads.Rng.int rng 4096) in
    Apps.Lsm.put lsm k (Workloads.Rng.payload rng 256);
    ignore (Apps.Lsm.get lsm k)

let db_closure spec =
  let stack = Harness.Fs_config.make spec in
  let db = Apps.Waldb.open_ stack.Harness.Fs_config.fs "/bench-db" () in
  let rng = Workloads.Rng.create 2 in
  fun () ->
    Apps.Waldb.transaction db (fun () ->
        let k = Printf.sprintf "%06d" (Workloads.Rng.int rng 4096) in
        Apps.Waldb.put db ~table:"t" k (Workloads.Rng.payload rng 128))

let recovery_closure () =
  fun () ->
    let env, kfs, sys =
      let env = Pmem.Env.create ~capacity:(8 * 1024 * 1024) () in
      let kfs = Kernelfs.Ext4.mkfs ~journal_len:(2 * 1024 * 1024) env in
      (env, kfs, Kernelfs.Syscall.make kfs)
    in
    ignore kfs;
    let cfg =
      {
        Splitfs.Config.strict with
        Splitfs.Config.staging_files = 1;
        staging_size = 512 * 1024;
        oplog_size = 64 * 1024;
      }
    in
    let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
    let fs = Splitfs.Usplit.as_fsapi u in
    let fd = fs.Fsapi.Fs.open_ "/f" Fsapi.Flags.create_rw in
    let buf = Bytes.make 64 'x' in
    for _ = 1 to 100 do
      ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:64)
    done;
    Pmem.Device.crash env.Pmem.Env.dev;
    ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0)

let bechamel_tests =
  [
    (* Table 1: the 4K append on the two headline systems *)
    Test.make ~name:"table1/append-ext4-dax"
      (Staged.stage (append_closure Harness.Fs_config.Ext4_dax));
    Test.make ~name:"table1/append-splitfs-posix"
      (Staged.stage (append_closure Harness.Fs_config.Splitfs_posix));
    (* Table 2: raw device op *)
    Test.make ~name:"table2/device-4k-write"
      (let env = Pmem.Env.create ~capacity:(1024 * 1024) () in
       let buf = Bytes.make 4096 'd' in
       Staged.stage (fun () ->
           Pmem.Device.store_nt env.Pmem.Env.dev ~addr:0 buf ~off:0 ~len:4096));
    (* Table 6: the varmail create/append/fsync/unlink sequence *)
    Test.make ~name:"table6/varmail-splitfs-strict"
      (Staged.stage (varmail_closure Harness.Fs_config.Splitfs_strict));
    (* Table 7: the LSM KV op mix on SplitFS-strict *)
    Test.make ~name:"table7/lsm-splitfs-strict"
      (Staged.stage (kv_closure Harness.Fs_config.Splitfs_strict));
    (* Figure 3: staged append with periodic fsync (relink path) *)
    Test.make ~name:"fig3/append-relink"
      (Staged.stage (append_closure Harness.Fs_config.Splitfs_posix));
    (* Figure 4: overwrite and read patterns *)
    Test.make ~name:"fig4/overwrite-splitfs"
      (Staged.stage (overwrite_closure Harness.Fs_config.Splitfs_posix));
    Test.make ~name:"fig4/read-splitfs"
      (Staged.stage (read_closure Harness.Fs_config.Splitfs_posix));
    (* Figure 5/6: the embedded database transaction *)
    Test.make ~name:"fig5/tpcc-tx-splitfs-sync"
      (Staged.stage (db_closure Harness.Fs_config.Splitfs_sync));
    Test.make ~name:"fig6/kv-nova-strict"
      (Staged.stage (kv_closure Harness.Fs_config.Nova_strict));
    (* §5.3 recovery *)
    Test.make ~name:"recovery/crash-replay" (Staged.stage (recovery_closure ()));
  ]

let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw =
    List.map
      (fun test -> Benchmark.all cfg instances test)
      (List.map (fun t -> Test.make_grouped ~name:(Test.name t) [ t ]) bechamel_tests)
  in
  ignore raw;
  (* analyse and print one line per test *)
  Printf.printf "\n== Bechamel: wall-clock cost of the simulator per operation ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-34s %10.0f ns/op (host)\n" name est
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        ols)
    bechamel_tests

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  ignore (Harness.Experiments.table1 ());
  ignore (Harness.Experiments.table2 ());
  ignore (Harness.Experiments.table6 ());
  ignore (Harness.Experiments.fig3 ());
  ignore (Harness.Experiments.fig4 ());
  ignore (Harness.Experiments.fig5 ());
  ignore (Harness.Experiments.fig6 ());
  ignore (Harness.Experiments.table7 ());
  ignore (Harness.Experiments.recovery ());
  ignore (Harness.Experiments.resources ());
  ignore (Harness.Experiments.ablations ());
  if not fast then run_bechamel ();
  print_endline "\nAll experiments completed."
