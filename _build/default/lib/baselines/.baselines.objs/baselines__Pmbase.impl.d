lib/baselines/pmbase.ml: Bytes Device Env Fsapi Hashtbl Kernelfs List Pmem String
