lib/baselines/strata.ml: Bytes Device Env Fsapi Hashtbl Kernelfs List Pmbase Pmem Stats Timing
