lib/baselines/nova.ml: Bytes Device Env Fsapi Pmbase Pmem Printf Stats Timing
