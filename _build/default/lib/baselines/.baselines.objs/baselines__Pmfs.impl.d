lib/baselines/pmfs.ml: Bytes Device Env Fsapi Pmbase Pmem Stats Timing
