(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Used as the 4-byte transactional checksum embedded in each 64-byte
    operation-log entry (paper §3.3), which lets recovery distinguish valid
    entries from torn ones with a single fence per logged operation. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc buf ~off ~len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  update 0 buf ~off ~len

let string s = bytes (Bytes.unsafe_of_string s)
