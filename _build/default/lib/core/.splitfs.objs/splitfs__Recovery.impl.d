lib/core/recovery.ml: Bytes Env Fsapi Fun Hashtbl Kernelfs List Oplog Pmem Printf
