lib/core/usplit.mli: Config Fsapi Kernelfs Oplog Pmem
