lib/core/config.mli:
