lib/core/recovery.mli: Kernelfs Pmem
