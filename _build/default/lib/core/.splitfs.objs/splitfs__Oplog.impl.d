lib/core/oplog.ml: Atomic Bytes Crc32 Device Env Fsapi Fun Int32 Int64 Kernelfs List Pmem Stats Timing
