lib/core/usplit.ml: Array Bytes Config Device Env Fsapi Fun Hashtbl Kernelfs List Oplog Pmem Printf Staging Stats String Timing
