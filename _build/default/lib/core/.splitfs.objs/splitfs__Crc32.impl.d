lib/core/crc32.ml: Array Bytes Char Lazy
