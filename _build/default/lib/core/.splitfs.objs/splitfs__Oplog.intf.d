lib/core/oplog.mli: Bytes Kernelfs Pmem
