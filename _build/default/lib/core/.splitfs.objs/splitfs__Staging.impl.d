lib/core/staging.ml: Bytes Device Env Fsapi Kernelfs Pmem Printf Queue Stats Timing
