lib/core/config.ml:
