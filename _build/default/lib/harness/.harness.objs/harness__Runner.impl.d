lib/harness/runner.ml: Fs_config List Pmem Printf String
