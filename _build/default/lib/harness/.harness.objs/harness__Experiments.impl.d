lib/harness/experiments.ml: Apps Bytes Fs_config Fsapi Kernelfs List Option Pmem Printf Runner Splitfs String Workloads
