lib/harness/fs_config.ml: Baselines Fsapi Kernelfs List Pmem Printf Splitfs
