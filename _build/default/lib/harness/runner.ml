(** Measurement and table-formatting helpers shared by the benchmark
    executable, the CLI and the examples. All times are simulated
    nanoseconds from the stack's clock. *)

type measurement = {
  label : string;
  ops : int;
  sim_ns : float;  (** total simulated time *)
  media_ns : float;  (** portion spent on the PM media *)
  stats : Pmem.Stats.t;  (** counter deltas for the measured section *)
}

let ns_per_op m = m.sim_ns /. float_of_int (max 1 m.ops)

(** Software overhead per op: everything that is not media time (§5.7). *)
let overhead_ns m = (m.sim_ns -. m.media_ns) /. float_of_int (max 1 m.ops)

let kops m = float_of_int m.ops /. (m.sim_ns /. 1e6)

(** [measure stack label f] runs [f ()] (which returns an op count) and
    captures simulated time and counters around it. *)
let measure (stack : Fs_config.stack) label f =
  let env = stack.Fs_config.env in
  let s0 = Pmem.Stats.copy env.Pmem.Env.stats in
  let t0 = Pmem.Env.now env in
  let ops = f () in
  let t1 = Pmem.Env.now env in
  let stats = Pmem.Stats.diff env.Pmem.Env.stats s0 in
  {
    label;
    ops;
    sim_ns = t1 -. t0;
    media_ns = stats.Pmem.Stats.media_ns;
    stats;
  }

(* --- plain-text tables --- *)

let hline widths =
  "+"
  ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
  ^ "+"

let render_row widths cells =
  "| "
  ^ String.concat " | "
      (List.map2
         (fun w c ->
           if String.length c >= w then c else c ^ String.make (w - String.length c) ' ')
         widths cells)
  ^ " |"

(** Print a table: header row + data rows, auto-sized columns. *)
let print_table ~title header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (hline widths);
  print_endline (render_row widths header);
  print_endline (hline widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hline widths)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f0 x = Printf.sprintf "%.0f" x
