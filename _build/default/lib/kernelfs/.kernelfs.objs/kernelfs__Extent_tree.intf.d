lib/kernelfs/extent_tree.mli:
