lib/kernelfs/syscall.ml: Env Ext4 Fsapi Hashtbl Pmem Stats Timing
