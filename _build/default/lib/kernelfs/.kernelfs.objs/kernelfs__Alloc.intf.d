lib/kernelfs/alloc.mli:
