lib/kernelfs/journal.ml: Bytes Pmem
