lib/kernelfs/ext4.ml: Alloc Array Bytes Device Env Extent_tree Fsapi Hashtbl Journal List Pmem Printf Stats String Timing
