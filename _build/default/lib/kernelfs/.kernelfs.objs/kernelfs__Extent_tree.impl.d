lib/kernelfs/extent_tree.ml: Int List Map
