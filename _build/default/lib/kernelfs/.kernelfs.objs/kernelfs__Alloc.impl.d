lib/kernelfs/alloc.ml: Bytes Fsapi List
