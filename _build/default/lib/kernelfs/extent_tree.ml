module Imap = Map.Make (Int)

type extent = { logical : int; physical : int; len : int }

type t = { mutable map : extent Imap.t }  (** keyed by [logical] *)

let create () = { map = Imap.empty }
let is_empty t = Imap.is_empty t.map
let count t = Imap.cardinal t.map
let blocks t = Imap.fold (fun _ e acc -> acc + e.len) t.map 0

(** Extent covering [lblk], if any. *)
let covering t lblk =
  match Imap.find_last_opt (fun l -> l <= lblk) t.map with
  | Some (_, e) when lblk < e.logical + e.len -> Some e
  | _ -> None

let find t lblk =
  match covering t lblk with
  | Some e ->
      let off = lblk - e.logical in
      Some (e.physical + off, e.len - off)
  | None -> None

let overlaps t ~logical ~len =
  match covering t logical with
  | Some _ -> true
  | None -> (
      match Imap.find_first_opt (fun l -> l > logical) t.map with
      | Some (l, _) -> l < logical + len
      | None -> false)

let insert t ~logical ~physical ~len =
  if len <= 0 then invalid_arg "Extent_tree.insert: len";
  if overlaps t ~logical ~len then invalid_arg "Extent_tree.insert: overlap";
  (* Merge with physically-adjacent neighbours. *)
  let logical, physical, len =
    match Imap.find_last_opt (fun l -> l < logical) t.map with
    | Some (_, p)
      when p.logical + p.len = logical && p.physical + p.len = physical ->
        t.map <- Imap.remove p.logical t.map;
        (p.logical, p.physical, p.len + len)
    | _ -> (logical, physical, len)
  in
  let len =
    match Imap.find_first_opt (fun l -> l >= logical + len) t.map with
    | Some (l, n)
      when l = logical + len && n.physical = physical + len ->
        t.map <- Imap.remove l t.map;
        len + n.len
    | _ -> len
  in
  t.map <- Imap.add logical { logical; physical; len } t.map

let remove_range t ~logical ~len =
  if len <= 0 then invalid_arg "Extent_tree.remove_range: len";
  let last = logical + len in
  let removed = ref [] in
  let relevant =
    Imap.filter
      (fun _ e -> e.logical < last && e.logical + e.len > logical)
      t.map
  in
  Imap.iter
    (fun _ e ->
      t.map <- Imap.remove e.logical t.map;
      (* Left remainder stays mapped. *)
      if e.logical < logical then begin
        let keep = logical - e.logical in
        t.map <-
          Imap.add e.logical { e with len = keep } t.map
      end;
      (* Right remainder stays mapped. *)
      if e.logical + e.len > last then begin
        let keep = e.logical + e.len - last in
        t.map <-
          Imap.add last
            { logical = last; physical = e.physical + (last - e.logical); len = keep }
            t.map
      end;
      let cut_lo = max e.logical logical and cut_hi = min (e.logical + e.len) last in
      removed :=
        {
          logical = cut_lo;
          physical = e.physical + (cut_lo - e.logical);
          len = cut_hi - cut_lo;
        }
        :: !removed)
    relevant;
  List.sort (fun a b -> compare a.logical b.logical) !removed

let next_mapped t lblk =
  match covering t lblk with
  | Some _ -> Some lblk
  | None -> (
      match Imap.find_first_opt (fun l -> l >= lblk) t.map with
      | Some (l, _) -> Some l
      | None -> None)

let clear t = t.map <- Imap.empty

let to_list t = List.map snd (Imap.bindings t.map)
let iter f t = Imap.iter (fun _ e -> f e) t.map

let check_invariants t =
  let rec ok = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
        a.len > 0
        && a.logical + a.len <= b.logical
        (* adjacent extents must not be mergeable *)
        && not (a.logical + a.len = b.logical && a.physical + a.len = b.physical)
        && ok rest
  in
  List.for_all (fun e -> e.len > 0) (to_list t) && ok (to_list t)
