(** Logical-to-physical extent map of one inode.

    Mirrors the role of the ext4 extent tree: it maps runs of logical file
    blocks to runs of physical blocks. Extents never overlap; adjacent
    extents that are also physically adjacent are merged. This structure is
    what the relink primitive manipulates. *)

type t

type extent = { logical : int; physical : int; len : int }

val create : unit -> t
val is_empty : t -> bool

(** Number of extents (tree size). *)
val count : t -> int

(** Total mapped blocks. *)
val blocks : t -> int

(** [find t lblk] returns [(physical_block, run)] where [run] is the number
    of blocks mapped contiguously starting at [lblk], or [None] for a hole. *)
val find : t -> int -> (int * int) option

(** [insert t ~logical ~physical ~len] maps a fresh range. Raises
    [Invalid_argument] if any block in the range is already mapped. *)
val insert : t -> logical:int -> physical:int -> len:int -> unit

(** [remove_range t ~logical ~len] unmaps the range and returns the removed
    extents (possibly split at the boundaries). Holes inside the range are
    skipped. *)
val remove_range : t -> logical:int -> len:int -> extent list

(** [next_mapped t lblk] is the smallest mapped logical block [>= lblk], or
    [None]. Used to bound runs of unmapped blocks. *)
val next_mapped : t -> int -> int option

(** Remove every extent. *)
val clear : t -> unit

(** All extents, sorted by logical block. *)
val to_list : t -> extent list

val iter : (extent -> unit) -> t -> unit

(** Internal invariant check for tests: sorted, non-overlapping, merged. *)
val check_invariants : t -> bool
