(** An experiment environment: one PM device plus the clock, timing model and
    statistics shared by every layer of the stack. *)

type t = {
  clock : Simclock.t;
  timing : Timing.t;
  stats : Stats.t;
  dev : Device.t;
}

let create ?(capacity = 64 * 1024 * 1024) ?(timing = Timing.default) () =
  let clock = Simclock.create () in
  let stats = Stats.create () in
  let dev = Device.create ~capacity ~clock ~timing ~stats () in
  { clock; timing; stats; dev }

let now t = Simclock.now t.clock
let advance t ns = Simclock.advance t.clock ns

(** Charge pure CPU time (no PM traffic). *)
let cpu t ns = Simclock.advance t.clock ns

let snapshot_stats t = Stats.copy t.stats

(** [in_background t f] runs [f] on behalf of a background thread: the
    simulated time it consumes is moved off the foreground clock and
    accumulated in [stats.background_ns] (the paper keeps staging-file
    pre-allocation and similar work off the critical path, §4). *)
let in_background t f =
  let t0 = Simclock.now t.clock in
  let x = f () in
  let t1 = Simclock.now t.clock in
  t.clock.Simclock.now_ns <- t0;
  t.stats.Stats.background_ns <- t.stats.Stats.background_ns +. (t1 -. t0);
  x

(** [measure t f] returns [f ()] along with elapsed simulated time and the
    statistics delta. *)
let measure t f =
  let s0 = Stats.copy t.stats in
  let t0 = Simclock.now t.clock in
  let x = f () in
  let t1 = Simclock.now t.clock in
  (x, t1 -. t0, Stats.diff t.stats s0)
