(** Simulated byte-addressable persistent-memory device.

    The device models the persistence behaviour of Intel Optane DC PMM under
    ADR: non-temporal stores are durable once they reach the memory
    controller, temporal stores live in the (volatile) CPU cache until the
    line is flushed. A crash discards every dirty cache line.

    [persistent] holds the durable image; [dirty] holds cache lines that
    have been written with temporal stores but not yet flushed. All accesses
    charge simulated time on the shared clock and update the shared
    statistics. *)

let line_size = 64
let block_size = 4096

type t = {
  capacity : int;
  persistent : Bytes.t;
  dirty : (int, Bytes.t) Hashtbl.t;  (** line index -> line content *)
  wear : int array;  (** write count per 4 KB block *)
  clock : Simclock.t;
  timing : Timing.t;
  stats : Stats.t;
  mutable last_read_end : int;  (** to classify sequential vs random reads *)
}

let create ?(capacity = 64 * 1024 * 1024) ~clock ~timing ~stats () =
  assert (capacity mod block_size = 0);
  {
    capacity;
    persistent = Bytes.make capacity '\000';
    dirty = Hashtbl.create 4096;
    wear = Array.make (capacity / block_size) 0;
    clock;
    timing;
    stats;
    last_read_end = -1;
  }

let capacity t = t.capacity
let check_range t addr len = addr >= 0 && len >= 0 && addr + len <= t.capacity

let charge_media t ns =
  Simclock.advance t.clock ns;
  t.stats.Stats.media_ns <- t.stats.Stats.media_ns +. ns

let add_wear t addr len =
  let first = addr / block_size and last = (addr + len - 1) / block_size in
  for b = first to last do
    t.wear.(b) <- t.wear.(b) + 1
  done

(** Temporal store: data lands in the CPU cache and is lost on crash unless
    flushed. *)
let store t ~addr src ~off ~len =
  assert (check_range t addr len);
  if len > 0 then begin
    Simclock.advance t.clock
      (float_of_int len *. t.timing.Timing.cache_store_per_byte);
    let pos = ref addr and soff = ref off and remaining = ref len in
    while !remaining > 0 do
      let line = !pos / line_size in
      let in_line = !pos mod line_size in
      let n = min !remaining (line_size - in_line) in
      let content =
        match Hashtbl.find_opt t.dirty line with
        | Some c -> c
        | None ->
            let c = Bytes.create line_size in
            Bytes.blit t.persistent (line * line_size) c 0 line_size;
            Hashtbl.replace t.dirty line c;
            c
      in
      Bytes.blit src !soff content in_line n;
      pos := !pos + n;
      soff := !soff + n;
      remaining := !remaining - n
    done
  end

let persist_line t line =
  match Hashtbl.find_opt t.dirty line with
  | None -> ()
  | Some content ->
      Bytes.blit content 0 t.persistent (line * line_size) line_size;
      Hashtbl.remove t.dirty line

(** Non-temporal store: bypasses the cache; durable once a subsequent fence
    orders it (ADR makes it durable on arrival, the fence is ordering). *)
let store_nt t ~addr src ~off ~len =
  assert (check_range t addr len);
  if len > 0 then begin
    (* A line may hold older cached data; the NT store must invalidate it. *)
    let first = addr / line_size and last = (addr + len - 1) / line_size in
    for line = first to last do
      persist_line t line
    done;
    Bytes.blit src off t.persistent addr len;
    charge_media t (Timing.nt_write_cost t.timing len);
    t.stats.Stats.nt_stores <- t.stats.Stats.nt_stores + 1;
    t.stats.Stats.pm_write_bytes <- t.stats.Stats.pm_write_bytes + len;
    add_wear t addr len
  end

(** Flush (clwb) every dirty line intersecting [addr, addr+len). *)
let flush t ~addr ~len =
  assert (check_range t addr len);
  if len > 0 then begin
    let first = addr / line_size and last = (addr + len - 1) / line_size in
    for line = first to last do
      if Hashtbl.mem t.dirty line then begin
        persist_line t line;
        Simclock.advance t.clock t.timing.Timing.clwb;
        charge_media t (Timing.nt_write_cost t.timing line_size);
        t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
        t.stats.Stats.pm_write_bytes <- t.stats.Stats.pm_write_bytes + line_size;
        add_wear t (line * line_size) line_size
      end
    done
  end

let fence t =
  Simclock.advance t.clock t.timing.Timing.sfence;
  t.stats.Stats.fences <- t.stats.Stats.fences + 1

(** Load [len] bytes at [addr] into [dst]. Dirty (cached) lines are served
    from the cache at cache speed; the rest is charged PM media cost, with
    the first-access latency picked by read adjacency. *)
let load t ~addr dst ~off ~len =
  assert (check_range t addr len);
  if len > 0 then begin
    let random = addr <> t.last_read_end in
    t.last_read_end <- addr + len;
    let pos = ref addr and doff = ref off and remaining = ref len in
    let cached = ref 0 and uncached = ref 0 in
    while !remaining > 0 do
      let line = !pos / line_size in
      let in_line = !pos mod line_size in
      let n = min !remaining (line_size - in_line) in
      (match Hashtbl.find_opt t.dirty line with
      | Some content ->
          Bytes.blit content in_line dst !doff n;
          cached := !cached + n
      | None ->
          Bytes.blit t.persistent !pos dst !doff n;
          uncached := !uncached + n);
      pos := !pos + n;
      doff := !doff + n;
      remaining := !remaining - n
    done;
    if !cached > 0 then
      Simclock.advance t.clock
        (float_of_int !cached *. t.timing.Timing.cache_read_per_byte);
    if !uncached > 0 then begin
      charge_media t (Timing.pm_read_cost t.timing ~random !uncached);
      t.stats.Stats.pm_read_bytes <- t.stats.Stats.pm_read_bytes + !uncached
    end
  end

(** Convenience wrappers over whole buffers. *)
let load_bytes t ~addr ~len =
  let b = Bytes.create len in
  load t ~addr b ~off:0 ~len;
  b

let store_nt_bytes t ~addr b = store_nt t ~addr b ~off:0 ~len:(Bytes.length b)
let store_bytes t ~addr b = store t ~addr b ~off:0 ~len:(Bytes.length b)

(** Write zeros with non-temporal stores (used to initialise log files). *)
let zero_nt t ~addr ~len =
  let z = Bytes.make (min len 65536) '\000' in
  let pos = ref addr and remaining = ref len in
  while !remaining > 0 do
    let n = min !remaining (Bytes.length z) in
    store_nt t ~addr:!pos z ~off:0 ~len:n;
    pos := !pos + n;
    remaining := !remaining - n
  done

(** Crash: all cache lines not yet flushed (and not written with NT stores)
    are lost. The durable image is untouched. *)
let crash t =
  Hashtbl.reset t.dirty;
  t.last_read_end <- -1

(** Number of dirty (would-be-lost) cache lines; exposed for tests. *)
let dirty_lines t = Hashtbl.length t.dirty

let wear_of_block t b = t.wear.(b)
let max_wear t = Array.fold_left max 0 t.wear

let total_wear t = Array.fold_left ( + ) 0 t.wear

(** Peek at the durable image without charging time (test/debug only). *)
let peek_persistent t ~addr ~len = Bytes.sub t.persistent addr len
