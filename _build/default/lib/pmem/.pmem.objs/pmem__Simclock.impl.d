lib/pmem/simclock.ml:
