lib/pmem/device.ml: Array Bytes Hashtbl Simclock Stats Timing
