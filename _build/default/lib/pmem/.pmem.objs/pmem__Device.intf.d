lib/pmem/device.mli: Bytes Simclock Stats Timing
