lib/pmem/timing.ml:
