lib/pmem/stats.ml: Fmt
