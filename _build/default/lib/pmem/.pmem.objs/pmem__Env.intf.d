lib/pmem/env.mli: Device Simclock Stats Timing
