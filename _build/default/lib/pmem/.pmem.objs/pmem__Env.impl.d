lib/pmem/env.ml: Device Simclock Stats Timing
