(** Simulated clock, in nanoseconds.

    Every component of the simulation charges time here instead of measuring
    wall-clock time, which makes experiments deterministic and independent of
    the host machine. *)

type t = { mutable now_ns : float }

let create () = { now_ns = 0. }

let now t = t.now_ns

(** [advance t ns] charges [ns] nanoseconds of simulated time. *)
let advance t ns =
  assert (ns >= 0.);
  t.now_ns <- t.now_ns +. ns

let reset t = t.now_ns <- 0.

(** [timed t f] runs [f ()] and returns its result together with the
    simulated time it consumed. *)
let timed t f =
  let start = t.now_ns in
  let x = f () in
  (x, t.now_ns -. start)
