(** Small Bloom filter used by SSTables to skip files that cannot contain a
    key (LevelDB uses the same trick with ~10 bits per key). *)

type t = { bits : Bytes.t; nbits : int; hashes : int }

let create ~expected ?(bits_per_key = 10) () =
  let nbits = max 64 (expected * bits_per_key) in
  let nbytes = (nbits + 7) / 8 in
  { bits = Bytes.make nbytes '\000'; nbits; hashes = 7 }

let hash i key = Hashtbl.hash (i * 0x9E3779B9, key)

let set_bit t b =
  let b = b mod t.nbits in
  let byte = b / 8 and bit = b mod 8 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t b =
  let b = b mod t.nbits in
  let byte = b / 8 and bit = b mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let add t key =
  for i = 1 to t.hashes do
    set_bit t (hash i key)
  done

let may_contain t key =
  let rec go i = i > t.hashes || (get_bit t (hash i key) && go (i + 1)) in
  go 1

(* --- serialization --- *)

let to_string t =
  let b = Buffer.create (Bytes.length t.bits + 12) in
  Buffer.add_int32_le b (Int32.of_int t.nbits);
  Buffer.add_int32_le b (Int32.of_int t.hashes);
  Buffer.add_bytes b t.bits;
  Buffer.contents b

let of_string s =
  let nbits = Int32.to_int (String.get_int32_le s 0) in
  let hashes = Int32.to_int (String.get_int32_le s 4) in
  let bits = Bytes.of_string (String.sub s 8 (String.length s - 8)) in
  { bits; nbits; hashes }
