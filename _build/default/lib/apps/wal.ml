(** Write-ahead log for the LSM store: length-prefixed, checksummed records
    appended to a log file. Fsync policy is the caller's (LevelDB syncs
    only when the application asks). Recovery replays the valid prefix and
    stops at the first torn record. *)

type op = Put of string * string | Delete of string

type t = { path : string; fd : Fsapi.Fs.fd; mutable bytes : int }

let crc s =
  (* same CRC32 as the SplitFS log, reimplemented cheaply over strings *)
  let table =
    let t = Array.make 256 0 in
    for n = 0 to 255 do
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
      done;
      t.(n) <- !c
    done;
    t
  in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let encode op =
  let payload =
    let b = Buffer.create 64 in
    (match op with
    | Put (k, v) ->
        Buffer.add_char b 'P';
        Buffer.add_int32_le b (Int32.of_int (String.length k));
        Buffer.add_int32_le b (Int32.of_int (String.length v));
        Buffer.add_string b k;
        Buffer.add_string b v
    | Delete k ->
        Buffer.add_char b 'D';
        Buffer.add_int32_le b (Int32.of_int (String.length k));
        Buffer.add_string b k);
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (crc payload));
  Buffer.add_string b payload;
  Buffer.contents b

let open_ (fs : Fsapi.Fs.t) path =
  let fd = fs.open_ path Fsapi.Flags.(append (creat wronly)) in
  { path; fd; bytes = (fs.fstat fd).Fsapi.Fs.st_size }

let append (fs : Fsapi.Fs.t) t op ~sync =
  let s = encode op in
  Fsapi.Fs.write_string fs t.fd s;
  t.bytes <- t.bytes + String.length s;
  if sync then fs.fsync t.fd

let close (fs : Fsapi.Fs.t) t = fs.close t.fd

(** Replay a log file; invalid/torn suffix is ignored. *)
let replay (fs : Fsapi.Fs.t) path f =
  match fs.open_ path Fsapi.Flags.rdonly with
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> 0
  | fd ->
      Fun.protect
        ~finally:(fun () -> fs.close fd)
        (fun () ->
          let size = (fs.fstat fd).Fsapi.Fs.st_size in
          let data = if size = 0 then "" else Fsapi.Fs.pread_exact fs fd ~len:size ~at:0 in
          let pos = ref 0 and replayed = ref 0 in
          (try
             while !pos + 8 <= size do
               let plen = Int32.to_int (String.get_int32_le data !pos) in
               let stored = Int32.to_int (String.get_int32_le data (!pos + 4)) land 0xFFFFFFFF in
               if plen <= 0 || !pos + 8 + plen > size then raise Exit;
               let payload = String.sub data (!pos + 8) plen in
               if crc payload <> stored then raise Exit;
               (match payload.[0] with
               | 'P' ->
                   let klen = Int32.to_int (String.get_int32_le payload 1) in
                   let vlen = Int32.to_int (String.get_int32_le payload 5) in
                   f (Put (String.sub payload 9 klen, String.sub payload (9 + klen) vlen))
               | 'D' ->
                   let klen = Int32.to_int (String.get_int32_le payload 1) in
                   f (Delete (String.sub payload 5 klen))
               | _ -> raise Exit);
               incr replayed;
               pos := !pos + 8 + plen
             done
           with Exit -> ());
          !replayed)
