lib/apps/lsm.ml: Filename Fsapi List Map Printf Scanf Sstable String Wal
