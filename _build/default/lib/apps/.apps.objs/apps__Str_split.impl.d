lib/apps/str_split.ml: List String
