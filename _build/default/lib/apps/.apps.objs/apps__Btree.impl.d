lib/apps/btree.ml: Buffer Bytes Fsapi Hashtbl Int32 List Pager String
