lib/apps/wal.ml: Array Buffer Char Fsapi Fun Int32 String
