lib/apps/pager.ml: Bytes Fsapi Hashtbl Int32 List String
