lib/apps/waldb.ml: Btree Fsapi List String
