lib/apps/bloom.ml: Buffer Bytes Char Hashtbl Int32 String
