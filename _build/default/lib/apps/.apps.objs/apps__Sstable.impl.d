lib/apps/sstable.ml: Array Bloom Buffer Fsapi Int32 List String
