lib/apps/aof.ml: Fsapi Hashtbl List Printf Str_split String
