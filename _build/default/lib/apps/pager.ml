(** Page store with write-ahead logging, in the style of SQLite's WAL
    journal mode — the configuration the paper benchmarks TPC-C under
    (§5.2).

    Commits append page images to the [-wal] file (one frame per dirty
    page, a commit frame, one fsync); a checkpoint copies the accumulated
    pages back into the main database file and truncates the WAL. Reads are
    served from the page cache, which always holds the newest committed
    image. *)

let page_size = 4096

type t = {
  fs : Fsapi.Fs.t;
  db_path : string;
  wal_path : string;
  db_fd : Fsapi.Fs.fd;
  wal_fd : Fsapi.Fs.fd;
  cache : (int, Bytes.t) Hashtbl.t;
  mutable npages : int;  (** pages in the database (logical) *)
  wal_pages : (int, unit) Hashtbl.t;  (** page ids present in the WAL *)
  mutable wal_frames : int;
  checkpoint_frames : int;  (** checkpoint when the WAL holds this many *)
  mutable commits : int;
  mutable checkpoints : int;
}

let frame_size = 8 + page_size

(** Apply committed WAL frames found on disk (crash recovery). *)
let recover_wal (fs : Fsapi.Fs.t) wal_fd apply =
  let size = (fs.fstat wal_fd).Fsapi.Fs.st_size in
  let nframes = size / frame_size in
  let pending = ref [] in
  for i = 0 to nframes - 1 do
    let frame = Fsapi.Fs.pread_exact fs wal_fd ~len:frame_size ~at:(i * frame_size) in
    let page_id = Int32.to_int (String.get_int32_le frame 0) in
    let commit = Int32.to_int (String.get_int32_le frame 4) in
    pending := (page_id, String.sub frame 8 page_size) :: !pending;
    if commit = 1 then begin
      (* a commit frame seals everything accumulated so far *)
      List.iter (fun (p, img) -> apply p img) (List.rev !pending);
      pending := []
    end
  done
(* frames after the last commit frame are an uncommitted transaction and
   are dropped, giving transaction atomicity *)

let open_ (fs : Fsapi.Fs.t) path ~checkpoint_frames =
  let db_fd = fs.open_ path Fsapi.Flags.create_rw in
  let wal_fd = fs.open_ (path ^ "-wal") Fsapi.Flags.create_rw in
  let t =
    {
      fs;
      db_path = path;
      wal_path = path ^ "-wal";
      db_fd;
      wal_fd;
      cache = Hashtbl.create 1024;
      npages = (fs.fstat db_fd).Fsapi.Fs.st_size / page_size;
      wal_pages = Hashtbl.create 64;
      wal_frames = 0;
      checkpoint_frames;
      commits = 0;
      checkpoints = 0;
    }
  in
  recover_wal fs wal_fd (fun page_id img ->
      Hashtbl.replace t.cache page_id (Bytes.of_string img);
      Hashtbl.replace t.wal_pages page_id ();
      if page_id >= t.npages then t.npages <- page_id + 1);
  (* a clean start: settle recovered pages into the database file *)
  if Hashtbl.length t.wal_pages > 0 then begin
    Hashtbl.iter
      (fun page_id () ->
        match Hashtbl.find_opt t.cache page_id with
        | Some img ->
            ignore
              (fs.pwrite db_fd ~buf:img ~boff:0 ~len:page_size
                 ~at:(page_id * page_size))
        | None -> ())
      t.wal_pages;
    fs.fsync db_fd;
    fs.ftruncate wal_fd 0;
    fs.fsync wal_fd;
    Hashtbl.reset t.wal_pages
  end;
  t

let npages t = t.npages

let allocate_page t =
  let id = t.npages in
  t.npages <- t.npages + 1;
  id

let read_page t page_id =
  match Hashtbl.find_opt t.cache page_id with
  | Some img -> img
  | None ->
      let img = Bytes.make page_size '\000' in
      if page_id * page_size < (t.fs.fstat t.db_fd).Fsapi.Fs.st_size then
        ignore
          (t.fs.pread t.db_fd ~buf:img ~boff:0 ~len:page_size
             ~at:(page_id * page_size));
      Hashtbl.replace t.cache page_id img;
      img

let checkpoint t =
  t.checkpoints <- t.checkpoints + 1;
  Hashtbl.iter
    (fun page_id () ->
      match Hashtbl.find_opt t.cache page_id with
      | Some img ->
          ignore
            (t.fs.pwrite t.db_fd ~buf:img ~boff:0 ~len:page_size
               ~at:(page_id * page_size))
      | None -> ())
    t.wal_pages;
  t.fs.fsync t.db_fd;
  t.fs.ftruncate t.wal_fd 0;
  t.fs.fsync t.wal_fd;
  Hashtbl.reset t.wal_pages;
  t.wal_frames <- 0

(** Commit a set of dirty pages: append each as a WAL frame, mark the last
    one as the commit frame, fsync once. *)
let commit t dirty =
  match dirty with
  | [] -> ()
  | _ ->
      let n = List.length dirty in
      List.iteri
        (fun i (page_id, img) ->
          Hashtbl.replace t.cache page_id (Bytes.copy img);
          Hashtbl.replace t.wal_pages page_id ();
          let frame = Bytes.create frame_size in
          Bytes.set_int32_le frame 0 (Int32.of_int page_id);
          Bytes.set_int32_le frame 4 (if i = n - 1 then 1l else 0l);
          Bytes.blit img 0 frame 8 page_size;
          ignore
            (t.fs.pwrite t.wal_fd ~buf:frame ~boff:0 ~len:frame_size
               ~at:(t.wal_frames * frame_size));
          t.wal_frames <- t.wal_frames + 1)
        dirty;
      t.fs.fsync t.wal_fd;
      t.commits <- t.commits + 1;
      if t.wal_frames >= t.checkpoint_frames then checkpoint t

let close t =
  checkpoint t;
  t.fs.close t.db_fd;
  t.fs.close t.wal_fd

let stats t = (t.commits, t.checkpoints)
