(** Append-only-file key-value store in the style of Redis's AOF
    persistence (paper §5.2: "Redis in the Append-Only-File mode, where it
    logs updates to a file and performs fsync() on the file every
    second").

    Values live in a DRAM hash table; every SET/DEL appends a textual
    record to the AOF. The fsync cadence is driven by the *simulated*
    clock via the [now] callback. *)

type fsync_policy = Always | Every_ns of float | Never

type t = {
  fs : Fsapi.Fs.t;
  path : string;
  fd : Fsapi.Fs.fd;
  table : (string, string) Hashtbl.t;
  policy : fsync_policy;
  now : unit -> float;
  mutable last_fsync : float;
  mutable appended_bytes : int;
}

let esc s = String.concat "\\n" (String.split_on_char '\n' s)

let unesc s =
  let parts = Str_split.split_on_string ~sep:"\\n" s in
  String.concat "\n" parts

let replay fs path table =
  match Fsapi.Fs.read_file fs path with
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> 0
  | data ->
      let count = ref 0 in
      String.split_on_char '\n' data
      |> List.iter (fun line ->
             match String.index_opt line ' ' with
             | Some i -> (
                 let cmd = String.sub line 0 i in
                 let rest = String.sub line (i + 1) (String.length line - i - 1) in
                 match cmd with
                 | "SET" -> (
                     match String.index_opt rest ' ' with
                     | Some j ->
                         let k = String.sub rest 0 j in
                         let v = String.sub rest (j + 1) (String.length rest - j - 1) in
                         Hashtbl.replace table (unesc k) (unesc v);
                         incr count
                     | None -> ())
                 | "DEL" ->
                     Hashtbl.remove table (unesc rest);
                     incr count
                 | _ -> ())
             | None -> ());
      !count

let open_ (fs : Fsapi.Fs.t) ~path ~now ?(policy = Every_ns 1e9) () =
  let table = Hashtbl.create 4096 in
  ignore (replay fs path table);
  let fd = fs.open_ path Fsapi.Flags.(append (creat wronly)) in
  { fs; path; fd; table; policy; now; last_fsync = now (); appended_bytes = 0 }

let maybe_fsync t =
  match t.policy with
  | Always -> t.fs.fsync t.fd
  | Never -> ()
  | Every_ns interval ->
      let now = t.now () in
      if now -. t.last_fsync >= interval then begin
        t.fs.fsync t.fd;
        t.last_fsync <- now
      end

let set t key value =
  let line = Printf.sprintf "SET %s %s\n" (esc key) (esc value) in
  Fsapi.Fs.write_string t.fs t.fd line;
  t.appended_bytes <- t.appended_bytes + String.length line;
  Hashtbl.replace t.table key value;
  maybe_fsync t

let del t key =
  let line = Printf.sprintf "DEL %s\n" (esc key) in
  Fsapi.Fs.write_string t.fs t.fd line;
  t.appended_bytes <- t.appended_bytes + String.length line;
  Hashtbl.remove t.table key;
  maybe_fsync t

let get t key = Hashtbl.find_opt t.table key
let size t = Hashtbl.length t.table

let close t =
  t.fs.fsync t.fd;
  t.fs.close t.fd
