(** Minimal embedded relational-ish database over {!Btree} — the SQLite
    stand-in for the TPC-C experiments.

    Tables are name-spaced key ranges inside one B+tree ("table/key"),
    like SQLite keeps every table in one file. A transaction accumulates
    B+tree changes and commits them as one WAL append + fsync. *)

type t = { bt : Btree.t; mutable txs : int }

let open_ (fs : Fsapi.Fs.t) path ?(checkpoint_frames = 512) () =
  { bt = Btree.open_ fs path ~checkpoint_frames; txs = 0 }

let key ~table k = table ^ "/" ^ k

let put t ~table k row = Btree.put t.bt (key ~table k) row
let get t ~table k = Btree.get t.bt (key ~table k)
let delete t ~table k = ignore (Btree.delete t.bt (key ~table k))

(** Scan up to [count] rows of [table] starting at key [start]. *)
let scan t ~table ~start ~count =
  Btree.scan t.bt ~start:(key ~table start) ~count
  |> List.filter_map (fun (k, v) ->
         let prefix = table ^ "/" in
         if String.length k > String.length prefix
            && String.sub k 0 (String.length prefix) = prefix
         then Some (String.sub k (String.length prefix) (String.length k - String.length prefix), v)
         else None)

(** Run [f] as one transaction; its B+tree updates become durable
    atomically on return. *)
let transaction t f =
  let x = f () in
  Btree.commit t.bt;
  t.txs <- t.txs + 1;
  x

let entries t = Btree.entries t.bt
let close t = Btree.close t.bt
