(** Sorted string table: the immutable on-disk file format of the LSM
    key-value store.

    Layout: data records, sparse index, Bloom filter, fixed-size footer.
    Records are (klen, vlen, key, value); vlen = -1 encodes a tombstone.
    The sparse index holds every [index_interval]-th key with its file
    offset, so a lookup reads the footer + index once (cached at open) and
    then a single bounded data scan — the same shape as LevelDB's block
    index. *)

type record = { key : string; value : string option }

type t = {
  path : string;
  fd : Fsapi.Fs.fd;
  index : (string * int) array;  (** sparse: key -> record offset *)
  bloom : Bloom.t;
  data_len : int;
  mutable smallest : string;
  mutable largest : string;
}

let index_interval = 16
let tombstone_len = -1

let add_record buf r =
  Buffer.add_int32_le buf (Int32.of_int (String.length r.key));
  (match r.value with
  | Some v -> Buffer.add_int32_le buf (Int32.of_int (String.length v))
  | None -> Buffer.add_int32_le buf (Int32.of_int tombstone_len));
  Buffer.add_string buf r.key;
  match r.value with Some v -> Buffer.add_string buf v | None -> ()

(** Write a new SSTable from records sorted by key. The file is written
    sequentially (appends) and fsynced before use. *)
let write (fs : Fsapi.Fs.t) path records =
  assert (records <> []);
  let data = Buffer.create 65536 in
  let index = ref [] in
  let bloom = Bloom.create ~expected:(List.length records) () in
  List.iteri
    (fun i r ->
      if i mod index_interval = 0 then index := (r.key, Buffer.length data) :: !index;
      Bloom.add bloom r.key;
      add_record data r)
    records;
  let data_len = Buffer.length data in
  let index_buf = Buffer.create 4096 in
  let index_list = List.rev !index in
  Buffer.add_int32_le index_buf (Int32.of_int (List.length index_list));
  List.iter
    (fun (k, off) ->
      Buffer.add_int32_le index_buf (Int32.of_int (String.length k));
      Buffer.add_int32_le index_buf (Int32.of_int off);
      Buffer.add_string index_buf k)
    index_list;
  let bloom_s = Bloom.to_string bloom in
  let footer = Buffer.create 16 in
  Buffer.add_int32_le footer (Int32.of_int data_len);
  Buffer.add_int32_le footer (Int32.of_int (Buffer.length index_buf));
  Buffer.add_int32_le footer (Int32.of_int (String.length bloom_s));
  Buffer.add_int32_le footer 0xFEEDl;
  let fd = fs.open_ path Fsapi.Flags.create_trunc in
  Fsapi.Fs.write_string fs fd (Buffer.contents data);
  Fsapi.Fs.write_string fs fd (Buffer.contents index_buf);
  Fsapi.Fs.write_string fs fd bloom_s;
  Fsapi.Fs.write_string fs fd (Buffer.contents footer);
  fs.fsync fd;
  fs.close fd

let parse_record s pos =
  let klen = Int32.to_int (String.get_int32_le s pos) in
  let vlen = Int32.to_int (String.get_int32_le s (pos + 4)) in
  let key = String.sub s (pos + 8) klen in
  if vlen = tombstone_len then ({ key; value = None }, pos + 8 + klen)
  else ({ key; value = Some (String.sub s (pos + 8 + klen) vlen) }, pos + 8 + klen + vlen)

(** Open an SSTable: reads footer, index and Bloom filter; data stays on
    the file system and is read per lookup. *)
let open_ (fs : Fsapi.Fs.t) path =
  let fd = fs.open_ path Fsapi.Flags.rdonly in
  let size = (fs.fstat fd).Fsapi.Fs.st_size in
  let footer = Fsapi.Fs.pread_exact fs fd ~len:16 ~at:(size - 16) in
  let data_len = Int32.to_int (String.get_int32_le footer 0) in
  let index_len = Int32.to_int (String.get_int32_le footer 4) in
  let bloom_len = Int32.to_int (String.get_int32_le footer 8) in
  if Int32.to_int (String.get_int32_le footer 12) <> 0xFEED then
    Fsapi.Errno.(error EINVAL (path ^ ": bad sstable footer"));
  let index_s = Fsapi.Fs.pread_exact fs fd ~len:index_len ~at:data_len in
  let nindex = Int32.to_int (String.get_int32_le index_s 0) in
  let index = Array.make nindex ("", 0) in
  let pos = ref 4 in
  for i = 0 to nindex - 1 do
    let klen = Int32.to_int (String.get_int32_le index_s !pos) in
    let off = Int32.to_int (String.get_int32_le index_s (!pos + 4)) in
    index.(i) <- (String.sub index_s (!pos + 8) klen, off);
    pos := !pos + 8 + klen
  done;
  let bloom_s = Fsapi.Fs.pread_exact fs fd ~len:bloom_len ~at:(data_len + index_len) in
  let t =
    {
      path;
      fd;
      index;
      bloom = Bloom.of_string bloom_s;
      data_len;
      smallest = (if nindex > 0 then fst index.(0) else "");
      largest = "";
    }
  in
  (* the largest key: scan the last index segment *)
  (if nindex > 0 then
     let start = snd index.(nindex - 1) in
     let seg = Fsapi.Fs.pread_exact fs fd ~len:(data_len - start) ~at:start in
     let pos = ref 0 in
     while !pos < String.length seg do
       let r, next = parse_record seg !pos in
       t.largest <- r.key;
       pos := next
     done);
  t

let close (fs : Fsapi.Fs.t) t = fs.close t.fd

(** Binary search the sparse index for the segment that may hold [key]. *)
let segment_for t key =
  let n = Array.length t.index in
  if n = 0 || key < fst t.index.(0) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst t.index.(mid) <= key then lo := mid else hi := mid - 1
    done;
    let start = snd t.index.(!lo) in
    let stop = if !lo + 1 < n then snd t.index.(!lo + 1) else t.data_len in
    Some (start, stop)
  end

(** [find fs t key] returns [Some (Some v)] for a live record, [Some None]
    for a tombstone, [None] when the table does not contain the key. *)
let find (fs : Fsapi.Fs.t) t key =
  if not (Bloom.may_contain t.bloom key) then None
  else
    match segment_for t key with
    | None -> None
    | Some (start, stop) ->
        let seg = Fsapi.Fs.pread_exact fs t.fd ~len:(stop - start) ~at:start in
        let pos = ref 0 and result = ref None in
        (try
           while !pos < String.length seg do
             let r, next = parse_record seg !pos in
             if r.key = key then begin
               result := Some r.value;
               raise Exit
             end
             else if r.key > key then raise Exit;
             pos := next
           done
         with Exit -> ());
        !result

(** All records, in key order (used by compaction). *)
let records (fs : Fsapi.Fs.t) t =
  let data = Fsapi.Fs.pread_exact fs t.fd ~len:t.data_len ~at:0 in
  let acc = ref [] and pos = ref 0 in
  while !pos < t.data_len do
    let r, next = parse_record data !pos in
    acc := r :: !acc;
    pos := next
  done;
  List.rev !acc

let overlaps t ~smallest ~largest = not (t.largest < smallest || largest < t.smallest)

(** Bounded range read: up to [limit] records with key >= [start], reading
    only the data segments that can contain them. *)
let records_from (fs : Fsapi.Fs.t) t ~start ~limit =
  let n = Array.length t.index in
  if n = 0 || limit <= 0 then []
  else begin
    (* first index segment whose successor starts after [start] *)
    let seg = ref 0 in
    while !seg + 1 < n && fst t.index.(!seg + 1) <= start do
      incr seg
    done;
    let acc = ref [] and count = ref 0 in
    (try
       while !seg < n do
         let seg_start = snd t.index.(!seg) in
         let seg_stop = if !seg + 1 < n then snd t.index.(!seg + 1) else t.data_len in
         let data = Fsapi.Fs.pread_exact fs t.fd ~len:(seg_stop - seg_start) ~at:seg_start in
         let pos = ref 0 in
         while !pos < String.length data do
           let r, next = parse_record data !pos in
           if r.key >= start then begin
             if !count >= limit then raise Exit;
             acc := r :: !acc;
             incr count
           end;
           pos := next
         done;
         incr seg
       done
     with Exit -> ());
    List.rev !acc
  end
