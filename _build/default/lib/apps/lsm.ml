(** LSM-tree key-value store in the style of LevelDB — the application the
    paper uses for its YCSB experiments (§5.2).

    Structure: a DRAM memtable backed by a write-ahead log; when the
    memtable exceeds its budget it is flushed as a level-0 SSTable. When
    level 0 collects enough tables they are merge-compacted with the
    overlapping part of level 1 into fresh level-1 tables. A MANIFEST file,
    replaced atomically via rename, records the live tables.

    The file-system traffic is therefore exactly the mix the paper cares
    about: small WAL appends with optional fsync, large sequential SSTable
    writes, point reads, renames and unlinks. *)

module Smap = Map.Make (String)

type config = {
  memtable_budget : int;  (** bytes of memtable before flush *)
  l0_limit : int;  (** level-0 tables before compaction *)
  sync_writes : bool;  (** fsync the WAL on every write *)
}

let default_config =
  { memtable_budget = 256 * 1024; l0_limit = 4; sync_writes = false }

type t = {
  fs : Fsapi.Fs.t;
  dir : string;
  cfg : config;
  mutable memtable : string option Smap.t;  (** None = tombstone *)
  mutable mem_bytes : int;
  mutable wal : Wal.t;
  mutable l0 : Sstable.t list;  (** newest first *)
  mutable l1 : Sstable.t list;  (** sorted by smallest key, disjoint *)
  mutable next_file : int;
  mutable compactions : int;
  mutable flushes : int;
}

let wal_path t = t.dir ^ "/wal.log"
let manifest_path t = t.dir ^ "/MANIFEST"

let table_path t n = Printf.sprintf "%s/sst-%06d.ldb" t.dir n

let write_manifest t =
  let listing =
    String.concat "\n"
      (List.map (fun (s : Sstable.t) -> "0 " ^ s.Sstable.path) t.l0
      @ List.map (fun (s : Sstable.t) -> "1 " ^ s.Sstable.path) t.l1)
  in
  let tmp = t.dir ^ "/MANIFEST.tmp" in
  let fd = t.fs.open_ tmp Fsapi.Flags.create_trunc in
  Fsapi.Fs.write_string t.fs fd listing;
  t.fs.fsync fd;
  t.fs.close fd;
  t.fs.rename tmp (manifest_path t)

let load_manifest t =
  match Fsapi.Fs.read_file t.fs (manifest_path t) with
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> ()
  | listing ->
      String.split_on_char '\n' listing
      |> List.iter (fun line ->
             if line <> "" then begin
               let level = line.[0] in
               let path = String.sub line 2 (String.length line - 2) in
               let table = Sstable.open_ t.fs path in
               match level with
               | '0' -> t.l0 <- t.l0 @ [ table ]
               | _ -> t.l1 <- t.l1 @ [ table ]
             end)

(** Open (or recover) a store rooted at [dir]. *)
let open_ (fs : Fsapi.Fs.t) ?(cfg = default_config) dir =
  Fsapi.Fs.mkdir_p fs dir;
  let t =
    {
      fs;
      dir;
      cfg;
      memtable = Smap.empty;
      mem_bytes = 0;
      wal = Wal.open_ fs (dir ^ "/wal.log");
      l0 = [];
      l1 = [];
      next_file = 0;
      compactions = 0;
      flushes = 0;
    }
  in
  load_manifest t;
  (* pick the next file number above everything the manifest mentions *)
  List.iter
    (fun (s : Sstable.t) ->
      Scanf.sscanf (Filename.basename s.Sstable.path) "sst-%d.ldb" (fun n ->
          if n >= t.next_file then t.next_file <- n + 1))
    (t.l0 @ t.l1);
  (* WAL recovery: replay into the memtable (the WAL fd was opened in
     append mode, so replaying the same file first is safe) *)
  let replayed =
    Wal.replay fs (wal_path t) (function
      | Wal.Put (k, v) ->
          t.memtable <- Smap.add k (Some v) t.memtable;
          t.mem_bytes <- t.mem_bytes + String.length k + String.length v
      | Wal.Delete k ->
          t.memtable <- Smap.add k None t.memtable;
          t.mem_bytes <- t.mem_bytes + String.length k)
  in
  ignore replayed;
  t

(* --- flush & compaction --- *)

let records_of_memtable mem =
  Smap.fold
    (fun key value acc -> { Sstable.key; value } :: acc)
    mem []
  |> List.rev

let fresh_table_path t =
  let p = table_path t t.next_file in
  t.next_file <- t.next_file + 1;
  p

let flush_memtable t =
  if not (Smap.is_empty t.memtable) then begin
    let path = fresh_table_path t in
    Sstable.write t.fs path (records_of_memtable t.memtable);
    t.l0 <- Sstable.open_ t.fs path :: t.l0;
    t.memtable <- Smap.empty;
    t.mem_bytes <- 0;
    write_manifest t;
    (* the WAL is fully covered by the flushed table: start a fresh one *)
    Wal.close t.fs t.wal;
    t.fs.unlink (wal_path t);
    t.wal <- Wal.open_ t.fs (wal_path t);
    t.flushes <- t.flushes + 1
  end

(** Merge level 0 (newest wins) and overlapping level-1 tables into fresh
    level-1 tables of bounded size. *)
let compact t =
  t.compactions <- t.compactions + 1;
  let l0 = t.l0 in
  let smallest =
    List.fold_left (fun acc (s : Sstable.t) -> min acc s.Sstable.smallest)
      (match l0 with s :: _ -> s.Sstable.smallest | [] -> "") l0
  in
  let largest =
    List.fold_left (fun acc (s : Sstable.t) -> max acc s.Sstable.largest) "" l0
  in
  let overlapping, disjoint =
    List.partition (fun s -> Sstable.overlaps s ~smallest ~largest) t.l1
  in
  (* newest-first merge: L0 tables (already newest first), then L1 *)
  let merged =
    List.fold_left
      (fun acc table ->
        List.fold_left
          (fun acc (r : Sstable.record) ->
            if Smap.mem r.Sstable.key acc then acc
            else Smap.add r.Sstable.key r.Sstable.value acc)
          acc
          (Sstable.records t.fs table))
      Smap.empty (l0 @ overlapping)
  in
  (* write out in bounded chunks, dropping tombstones (bottom level) *)
  let live =
    Smap.fold
      (fun key value acc ->
        match value with Some _ -> { Sstable.key; value } :: acc | None -> acc)
      merged []
    |> List.rev
  in
  let rec chunk acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | r :: rest ->
        if n >= 2048 then chunk (List.rev current :: acc) [ r ] 1 rest
        else chunk acc (r :: current) (n + 1) rest
  in
  let new_tables =
    List.filter_map
      (fun records ->
        if records = [] then None
        else begin
          let path = fresh_table_path t in
          Sstable.write t.fs path records;
          Some (Sstable.open_ t.fs path)
        end)
      (chunk [] [] 0 live)
  in
  let dead = l0 @ overlapping in
  t.l0 <- [];
  t.l1 <-
    List.sort
      (fun (a : Sstable.t) b -> compare a.Sstable.smallest b.Sstable.smallest)
      (new_tables @ disjoint);
  write_manifest t;
  List.iter
    (fun (s : Sstable.t) ->
      Sstable.close t.fs s;
      t.fs.unlink s.Sstable.path)
    dead

let maybe_roll t =
  if t.mem_bytes >= t.cfg.memtable_budget then begin
    flush_memtable t;
    if List.length t.l0 >= t.cfg.l0_limit then compact t
  end

(* --- public API --- *)

let put t key value =
  Wal.append t.fs t.wal (Wal.Put (key, value)) ~sync:t.cfg.sync_writes;
  t.memtable <- Smap.add key (Some value) t.memtable;
  t.mem_bytes <- t.mem_bytes + String.length key + String.length value;
  maybe_roll t

let delete t key =
  Wal.append t.fs t.wal (Wal.Delete key) ~sync:t.cfg.sync_writes;
  t.memtable <- Smap.add key None t.memtable;
  t.mem_bytes <- t.mem_bytes + String.length key;
  maybe_roll t

let rec find_l0 t key = function
  | [] -> None
  | table :: rest -> (
      match Sstable.find t.fs table key with
      | Some hit -> Some hit
      | None -> find_l0 t key rest)

let get t key =
  match Smap.find_opt key t.memtable with
  | Some v -> v
  | None -> (
      match find_l0 t key t.l0 with
      | Some v -> v
      | None ->
          let rec in_l1 = function
            | [] -> None
            | (table : Sstable.t) :: rest ->
                if key < table.Sstable.smallest then None
                else if key > table.Sstable.largest then in_l1 rest
                else (
                  match Sstable.find t.fs table key with
                  | Some hit -> hit
                  | None -> None)
          in
          (match in_l1 t.l1 with Some v -> Some v | None -> None))

(** Range scan: collect up to [count] live records with key >= [start].
    Used by YCSB workload E. *)
let rec scan ?(fetch = 0) t ~start ~count =
  (* bounded merge: each source contributes at most [fetch] candidates
     (newest source wins on duplicates). Tombstones can eat window slots,
     so if the merged live set comes up short while some source was
     truncated, re-fetch with a doubled window. *)
  let fetch = if fetch <= 0 then count else fetch in
  (* smallest "last contributed key" among truncated sources: results at or
     beyond it might be wrong, because that source may hide smaller keys *)
  let horizon = ref None in
  let truncate_at k =
    match !horizon with
    | Some h when h <= k -> ()
    | _ -> horizon := Some k
  in
  let add map (r : Sstable.record) =
    if not (Smap.mem r.Sstable.key map) then
      Smap.add r.Sstable.key r.Sstable.value map
    else map
  in
  let map = ref Smap.empty in
  let taken = ref 0 in
  (try
     Smap.iter
       (fun k v ->
         if k >= start then begin
           if !taken >= fetch then begin
             truncate_at k;
             raise Exit
           end;
           map := Smap.add k v !map;
           incr taken
         end)
       t.memtable
   with Exit -> ());
  let map =
    List.fold_left
      (fun acc table ->
        let records = Sstable.records_from t.fs table ~start ~limit:fetch in
        (match (List.length records = fetch, List.rev records) with
        | true, last :: _ -> truncate_at last.Sstable.key
        | _ -> ());
        List.fold_left add acc records)
      !map (t.l0 @ t.l1)
  in
  let results = ref [] and n = ref 0 in
  (try
     Smap.iter
       (fun k v ->
         match v with
         | Some value ->
             if !n >= count then raise Exit;
             results := (k, value) :: !results;
             incr n
         | None -> ())
       map
   with Exit -> ());
  let unreliable =
    match !horizon with
    | None -> false
    | Some h -> (
        (* short results, or results reaching past a truncated source *)
        !n < count
        || match !results with last :: _ -> fst last >= h | [] -> false)
  in
  if unreliable && fetch < count * 64 then scan ~fetch:(fetch * 2) t ~start ~count
  else List.rev !results

(** Persist everything: flush the memtable and fsync. *)
let flush t = flush_memtable t

let close t =
  flush_memtable t;
  Wal.close t.fs t.wal;
  List.iter (Sstable.close t.fs) (t.l0 @ t.l1)

let stats t = (t.flushes, t.compactions, List.length t.l0, List.length t.l1)
