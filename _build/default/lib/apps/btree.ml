(** B+tree over the WAL pager: the storage engine of the SQLite-like
    embedded database used for TPC-C.

    Nodes occupy one 4 KB page each. Page 0 is the header (magic + root
    page id). Mutations run inside a transaction that tracks dirty nodes;
    commit serialises them and hands the page images to {!Pager.commit} —
    one WAL append + fsync per transaction, exactly the IO pattern of
    SQLite in WAL mode. *)

let page_size = Pager.page_size
let max_payload = page_size - 64

type node =
  | Leaf of (string * string) list  (** sorted (key, value) *)
  | Internal of int * (string * int) list
      (** leftmost child, then (separator key, child): the child holds
          keys >= separator *)

type t = {
  pager : Pager.t;
  nodes : (int, node) Hashtbl.t;  (** decoded working set *)
  mutable root : int;
  mutable dirty : (int, unit) Hashtbl.t;
  mutable entries : int;
}

(* --- node codec --- *)

let encode_node node =
  let b = Buffer.create 256 in
  (match node with
  | Leaf records ->
      Buffer.add_char b 'L';
      Buffer.add_uint16_le b (List.length records);
      List.iter
        (fun (k, v) ->
          Buffer.add_uint16_le b (String.length k);
          Buffer.add_uint16_le b (String.length v);
          Buffer.add_string b k;
          Buffer.add_string b v)
        records
  | Internal (leftmost, entries) ->
      Buffer.add_char b 'I';
      Buffer.add_uint16_le b (List.length entries);
      Buffer.add_int32_le b (Int32.of_int leftmost);
      List.iter
        (fun (k, child) ->
          Buffer.add_uint16_le b (String.length k);
          Buffer.add_int32_le b (Int32.of_int child);
          Buffer.add_string b k)
        entries);
  let s = Buffer.contents b in
  assert (String.length s <= page_size);
  let page = Bytes.make page_size '\000' in
  Bytes.blit_string s 0 page 0 (String.length s);
  page

let decode_node page =
  match Bytes.get page 0 with
  | 'L' ->
      let count = Bytes.get_uint16_le page 1 in
      let pos = ref 3 in
      let records = ref [] in
      for _ = 1 to count do
        let klen = Bytes.get_uint16_le page !pos in
        let vlen = Bytes.get_uint16_le page (!pos + 2) in
        let k = Bytes.sub_string page (!pos + 4) klen in
        let v = Bytes.sub_string page (!pos + 4 + klen) vlen in
        records := (k, v) :: !records;
        pos := !pos + 4 + klen + vlen
      done;
      Leaf (List.rev !records)
  | 'I' ->
      let count = Bytes.get_uint16_le page 1 in
      let leftmost = Int32.to_int (Bytes.get_int32_le page 3) in
      let pos = ref 7 in
      let entries = ref [] in
      for _ = 1 to count do
        let klen = Bytes.get_uint16_le page !pos in
        let child = Int32.to_int (Bytes.get_int32_le page (!pos + 2)) in
        let k = Bytes.sub_string page (!pos + 6) klen in
        entries := (k, child) :: !entries;
        pos := !pos + 6 + klen
      done;
      Internal (leftmost, List.rev !entries)
  | _ -> Leaf []

let node_bytes = function
  | Leaf records ->
      List.fold_left (fun acc (k, v) -> acc + 4 + String.length k + String.length v) 3 records
  | Internal (_, entries) ->
      List.fold_left (fun acc (k, _) -> acc + 6 + String.length k) 7 entries

(* --- tree plumbing --- *)

let load_node t page_id =
  match Hashtbl.find_opt t.nodes page_id with
  | Some n -> n
  | None ->
      let n = decode_node (Pager.read_page t.pager page_id) in
      Hashtbl.replace t.nodes page_id n;
      n

let store_node t page_id node =
  Hashtbl.replace t.nodes page_id node;
  Hashtbl.replace t.dirty page_id ()

let write_header t =
  let page = Bytes.make page_size '\000' in
  Bytes.blit_string "SQLB" 0 page 0 4;
  Bytes.set_int32_le page 4 (Int32.of_int t.root);
  Bytes.set_int32_le page 8 (Int32.of_int (Pager.npages t.pager));
  Bytes.set_int32_le page 12 (Int32.of_int t.entries);
  page

let open_ (fs : Fsapi.Fs.t) path ~checkpoint_frames =
  let pager = Pager.open_ fs path ~checkpoint_frames in
  let t = { pager; nodes = Hashtbl.create 1024; root = 1; dirty = Hashtbl.create 64; entries = 0 } in
  if Pager.npages pager = 0 then begin
    (* fresh database: header page + empty root leaf *)
    let hdr = Pager.allocate_page pager in
    let root = Pager.allocate_page pager in
    assert (hdr = 0 && root = 1);
    t.root <- root;
    store_node t root (Leaf []);
    Pager.commit pager [ (0, write_header t); (root, encode_node (Leaf [])) ];
    Hashtbl.reset t.dirty
  end
  else begin
    let hdr = Pager.read_page pager 0 in
    if Bytes.sub_string hdr 0 4 = "SQLB" then begin
      t.root <- Int32.to_int (Bytes.get_int32_le hdr 4);
      t.entries <- Int32.to_int (Bytes.get_int32_le hdr 12)
    end
  end;
  t

(* --- search --- *)

let rec find_leaf t page_id key path =
  match load_node t page_id with
  | Leaf _ -> (page_id, path)
  | Internal (leftmost, entries) ->
      let child =
        List.fold_left
          (fun acc (sep, c) -> if key >= sep then c else acc)
          leftmost entries
      in
      find_leaf t child key ((page_id, ()) :: path)

let get t key =
  let leaf_id, _ = find_leaf t t.root key [] in
  match load_node t leaf_id with
  | Leaf records -> List.assoc_opt key records
  | Internal _ -> None

(* --- insertion with splits --- *)

(** Split an oversized node, returning (left, separator, right). *)
let split_node = function
  | Leaf records ->
      let n = List.length records in
      let left = List.filteri (fun i _ -> i < n / 2) records in
      let right = List.filteri (fun i _ -> i >= n / 2) records in
      let sep = fst (List.hd right) in
      (Leaf left, sep, Leaf right)
  | Internal (leftmost, entries) ->
      let n = List.length entries in
      let left = List.filteri (fun i _ -> i < n / 2) entries in
      (match List.filteri (fun i _ -> i >= n / 2) entries with
      | (sep, mid_child) :: right ->
          (Internal (leftmost, left), sep, Internal (mid_child, right))
      | [] -> assert false)

(** Insert/replace [key]; splits propagate up the recorded path. *)
let put t key value =
  if 4 + String.length key + String.length value > max_payload then
    Fsapi.Errno.(error EFBIG "btree: record too large");
  let leaf_id, path = find_leaf t t.root key [] in
  (match load_node t leaf_id with
  | Leaf records ->
      let existed = List.mem_assoc key records in
      let records =
        List.merge
          (fun (a, _) (b, _) -> compare a b)
          [ (key, value) ]
          (List.remove_assoc key records)
      in
      if not existed then t.entries <- t.entries + 1;
      store_node t leaf_id (Leaf records)
  | Internal _ -> assert false);
  (* propagate splits bottom-up *)
  let rec fix page_id path =
    let node = load_node t page_id in
    if node_bytes node > max_payload then begin
      let left, sep, right = split_node node in
      let right_id = Pager.allocate_page t.pager in
      store_node t right_id right;
      store_node t page_id left;
      match path with
      | (parent_id, ()) :: rest ->
          (match load_node t parent_id with
          | Internal (leftmost, entries) ->
              let entries =
                List.merge
                  (fun (a, _) (b, _) -> compare a b)
                  [ (sep, right_id) ] entries
              in
              store_node t parent_id (Internal (leftmost, entries))
          | Leaf _ -> assert false);
          fix parent_id rest
      | [] ->
          (* the root split: grow the tree *)
          let new_root = Pager.allocate_page t.pager in
          store_node t new_root (Internal (page_id, [ (sep, right_id) ]));
          t.root <- new_root
    end
  in
  fix leaf_id path

let delete t key =
  let leaf_id, _ = find_leaf t t.root key [] in
  match load_node t leaf_id with
  | Leaf records ->
      if List.mem_assoc key records then begin
        t.entries <- t.entries - 1;
        store_node t leaf_id (Leaf (List.remove_assoc key records));
        true
      end
      else false
  | Internal _ -> false

(** Range scan: up to [count] records with key >= [start]. *)
let scan t ~start ~count =
  let results = ref [] and n = ref 0 in
  let rec walk page_id =
    if !n < count then
      match load_node t page_id with
      | Leaf records ->
          List.iter
            (fun (k, v) ->
              if k >= start && !n < count then begin
                results := (k, v) :: !results;
                incr n
              end)
            records
      | Internal (leftmost, entries) ->
          let relevant =
            leftmost
            :: List.filter_map
                 (fun (sep, c) ->
                   (* skip subtrees that end before [start] *)
                   ignore sep;
                   Some c)
                 entries
          in
          List.iter walk relevant
  in
  walk t.root;
  List.rev !results

(** Commit the running transaction: one WAL append + fsync. *)
let commit t =
  if Hashtbl.length t.dirty > 0 then begin
    let pages =
      Hashtbl.fold
        (fun page_id () acc ->
          if page_id = 0 then acc
          else (page_id, encode_node (load_node t page_id)) :: acc)
        t.dirty []
    in
    let header = write_header t in
    Pager.commit t.pager ((0, header) :: pages);
    Hashtbl.reset t.dirty
  end

let entries t = t.entries

let close t =
  commit t;
  Pager.close t.pager
