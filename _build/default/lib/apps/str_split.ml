(** Tiny string helper: split on a multi-character separator. *)

let split_on_string ~sep s =
  let seplen = String.length sep in
  if seplen = 0 then invalid_arg "split_on_string";
  let rec go start acc =
    match
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []
