(** open(2) flags and lseek whence values. *)

type access = Rdonly | Wronly | Rdwr

type t = {
  access : access;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

let rdonly = { access = Rdonly; creat = false; excl = false; trunc = false; append = false }
let wronly = { rdonly with access = Wronly }
let rdwr = { rdonly with access = Rdwr }
let creat t = { t with creat = true }
let excl t = { t with excl = true }
let trunc t = { t with trunc = true }
let append t = { t with append = true }

(** The common [O_CREAT|O_RDWR] combination. *)
let create_rw = creat rdwr

(** [O_CREAT|O_TRUNC|O_WRONLY], what most applications use for fresh files. *)
let create_trunc = trunc (creat wronly)

let readable t = t.access <> Wronly
let writable t = t.access <> Rdonly

type whence = Set | Cur | End
