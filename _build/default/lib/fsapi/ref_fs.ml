(** In-memory reference implementation of {!Fs.t}.

    This is the oracle for model-based testing: random operation sequences
    are applied both to a real file system (ext4 sim, SplitFS, NOVA, ...)
    and to this model, and the observable states must agree — the same
    methodology the paper uses to validate SplitFS against ext4 DAX (§5.3).
    It charges no simulated time. *)

type file = {
  ino : int;
  mutable data : Bytes.t;  (** capacity; only [size] bytes are valid *)
  mutable size : int;
  mutable nlink : int;
}

type node = File of file | Dir of (string, node) Hashtbl.t

type open_file = { file : file; pos : int ref; flags : Flags.t }

type t = {
  root : (string, node) Hashtbl.t;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable next_ino : int;
}

let split_path path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let create () =
  { root = Hashtbl.create 64; fds = Hashtbl.create 16; next_fd = 3; next_ino = 2 }

let rec lookup_dir dir = function
  | [] -> dir
  | part :: rest -> (
      match Hashtbl.find_opt dir part with
      | Some (Dir d) -> lookup_dir d rest
      | Some (File _) -> Errno.error Errno.ENOTDIR part
      | None -> Errno.error Errno.ENOENT part)

(** Resolve a path to its parent directory table and final component. *)
let resolve_parent t path =
  match List.rev (split_path path) with
  | [] -> Errno.error Errno.EINVAL path
  | name :: rev_parents -> (lookup_dir t.root (List.rev rev_parents), name)

let find_node t path =
  match split_path path with
  | [] -> Some (Dir t.root)
  | parts -> (
      match List.rev parts with
      | [] -> assert false
      | name :: rev_parents -> (
          match lookup_dir t.root (List.rev rev_parents) with
          | dir -> Hashtbl.find_opt dir name
          | exception Errno.Error _ -> None))

let fd_entry t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some e -> e
  | None -> Errno.error Errno.EBADF (string_of_int fd)

let grow file needed =
  if Bytes.length file.data < needed then begin
    let cap = max needed (max 256 (2 * Bytes.length file.data)) in
    let fresh = Bytes.make cap '\000' in
    Bytes.blit file.data 0 fresh 0 file.size;
    file.data <- fresh
  end

let do_pwrite file ~buf ~boff ~len ~at =
  if len < 0 || at < 0 then Errno.error Errno.EINVAL "pwrite";
  grow file (at + len);
  if at > file.size then Bytes.fill file.data file.size (at - file.size) '\000';
  Bytes.blit buf boff file.data at len;
  if at + len > file.size then file.size <- at + len;
  len

let do_pread file ~buf ~boff ~len ~at =
  if len < 0 || at < 0 then Errno.error Errno.EINVAL "pread";
  if at >= file.size then 0
  else begin
    let n = min len (file.size - at) in
    Bytes.blit file.data at buf boff n;
    n
  end

let make ?(name = "reffs") () : Fs.t =
  let t = create () in
  let open_ path (flags : Flags.t) =
    let parent, fname = resolve_parent t path in
    let file =
      match Hashtbl.find_opt parent fname with
      | Some (Dir _) -> Errno.error Errno.EISDIR path
      | Some (File f) ->
          if flags.creat && flags.excl then Errno.error Errno.EEXIST path;
          if flags.trunc && Flags.writable flags then f.size <- 0;
          f
      | None ->
          if not flags.creat then Errno.error Errno.ENOENT path;
          let f =
            { ino = t.next_ino; data = Bytes.create 0; size = 0; nlink = 1 }
          in
          t.next_ino <- t.next_ino + 1;
          Hashtbl.replace parent fname (File f);
          f
    in
    let fd = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    Hashtbl.replace t.fds fd { file; pos = ref 0; flags };
    fd
  in
  let close fd =
    let _ = fd_entry t fd in
    Hashtbl.remove t.fds fd
  in
  let dup fd =
    let e = fd_entry t fd in
    let nfd = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    Hashtbl.replace t.fds nfd e;
    nfd
  in
  let pwrite fd ~buf ~boff ~len ~at =
    let e = fd_entry t fd in
    if not (Flags.writable e.flags) then Errno.error Errno.EBADF "not writable";
    do_pwrite e.file ~buf ~boff ~len ~at
  in
  let pread fd ~buf ~boff ~len ~at =
    let e = fd_entry t fd in
    if not (Flags.readable e.flags) then Errno.error Errno.EBADF "not readable";
    do_pread e.file ~buf ~boff ~len ~at
  in
  let write fd ~buf ~boff ~len =
    let e = fd_entry t fd in
    if not (Flags.writable e.flags) then Errno.error Errno.EBADF "not writable";
    let at = if e.flags.append then e.file.size else !(e.pos) in
    let n = do_pwrite e.file ~buf ~boff ~len ~at in
    e.pos := at + n;
    n
  in
  let read fd ~buf ~boff ~len =
    let e = fd_entry t fd in
    if not (Flags.readable e.flags) then Errno.error Errno.EBADF "not readable";
    let n = do_pread e.file ~buf ~boff ~len ~at:!(e.pos) in
    e.pos := !(e.pos) + n;
    n
  in
  let lseek fd off whence =
    let e = fd_entry t fd in
    let base =
      match whence with
      | Flags.Set -> 0
      | Flags.Cur -> !(e.pos)
      | Flags.End -> e.file.size
    in
    let npos = base + off in
    if npos < 0 then Errno.error Errno.EINVAL "lseek";
    e.pos := npos;
    npos
  in
  let fsync fd = ignore (fd_entry t fd) in
  let ftruncate fd size =
    let e = fd_entry t fd in
    if size < 0 then Errno.error Errno.EINVAL "ftruncate";
    grow e.file size;
    if size > e.file.size then
      Bytes.fill e.file.data e.file.size (size - e.file.size) '\000';
    e.file.size <- size
  in
  let stat_of_node = function
    | File f -> { Fs.st_ino = f.ino; st_kind = Fs.Regular; st_size = f.size; st_nlink = f.nlink }
    | Dir d -> { Fs.st_ino = 1; st_kind = Fs.Directory; st_size = Hashtbl.length d; st_nlink = 2 }
  in
  let stat path =
    match find_node t path with
    | Some n -> stat_of_node n
    | None -> Errno.error Errno.ENOENT path
  in
  let fstat fd =
    let e = fd_entry t fd in
    { Fs.st_ino = e.file.ino; st_kind = Fs.Regular; st_size = e.file.size; st_nlink = e.file.nlink }
  in
  let unlink path =
    let parent, name = resolve_parent t path in
    match Hashtbl.find_opt parent name with
    | Some (File f) ->
        f.nlink <- f.nlink - 1;
        Hashtbl.remove parent name
    | Some (Dir _) -> Errno.error Errno.EISDIR path
    | None -> Errno.error Errno.ENOENT path
  in
  let rename src dst =
    let sparent, sname = resolve_parent t src in
    match Hashtbl.find_opt sparent sname with
    | None -> Errno.error Errno.ENOENT src
    | Some node ->
        let dparent, dname = resolve_parent t dst in
        (match Hashtbl.find_opt dparent dname with
        | Some (Dir d) when Hashtbl.length d > 0 ->
            Errno.error Errno.ENOTEMPTY dst
        | _ -> ());
        Hashtbl.remove sparent sname;
        Hashtbl.replace dparent dname node
  in
  let mkdir path =
    let parent, name = resolve_parent t path in
    if Hashtbl.mem parent name then Errno.error Errno.EEXIST path;
    Hashtbl.replace parent name (Dir (Hashtbl.create 8))
  in
  let rmdir path =
    let parent, name = resolve_parent t path in
    match Hashtbl.find_opt parent name with
    | Some (Dir d) ->
        if Hashtbl.length d > 0 then Errno.error Errno.ENOTEMPTY path;
        Hashtbl.remove parent name
    | Some (File _) -> Errno.error Errno.ENOTDIR path
    | None -> Errno.error Errno.ENOENT path
  in
  let readdir path =
    match find_node t path with
    | Some (Dir d) ->
        List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) d [])
    | Some (File _) -> Errno.error Errno.ENOTDIR path
    | None -> Errno.error Errno.ENOENT path
  in
  {
    Fs.fs_name = name;
    open_;
    close;
    dup;
    pread;
    pwrite;
    read;
    write;
    lseek;
    fsync;
    ftruncate;
    fstat;
    stat;
    unlink;
    rename;
    mkdir;
    rmdir;
    readdir;
  }
