(** The POSIX-like surface shared by every file system in this repository.

    Applications and workload generators are written against this record of
    operations, so the same application code runs unmodified on ext4 DAX,
    SplitFS (any mode), NOVA, PMFS and Strata — mirroring how the paper runs
    unmodified POSIX applications on each file system. *)

type fd = int

type file_kind = Regular | Directory

type stat = { st_ino : int; st_kind : file_kind; st_size : int; st_nlink : int }

type t = {
  fs_name : string;
  open_ : string -> Flags.t -> fd;
  close : fd -> unit;
  dup : fd -> fd;
  pread : fd -> buf:Bytes.t -> boff:int -> len:int -> at:int -> int;
  pwrite : fd -> buf:Bytes.t -> boff:int -> len:int -> at:int -> int;
  read : fd -> buf:Bytes.t -> boff:int -> len:int -> int;
  write : fd -> buf:Bytes.t -> boff:int -> len:int -> int;
  lseek : fd -> int -> Flags.whence -> int;
  fsync : fd -> unit;
  ftruncate : fd -> int -> unit;
  fstat : fd -> stat;
  stat : string -> stat;
  unlink : string -> unit;
  rename : string -> string -> unit;
  mkdir : string -> unit;
  rmdir : string -> unit;
  readdir : string -> string list;
}

(* ------------------------------------------------------------------ *)
(* Convenience helpers layered on the record.                          *)
(* ------------------------------------------------------------------ *)

let exists fs path =
  match fs.stat path with
  | (_ : stat) -> true
  | exception Errno.Error (Errno.ENOENT, _) -> false

let file_size fs path = (fs.stat path).st_size

(** Write the whole string at the fd's current offset. *)
let write_string fs fd s =
  let buf = Bytes.unsafe_of_string s in
  let len = Bytes.length buf in
  let written = ref 0 in
  while !written < len do
    let n = fs.write fd ~buf ~boff:!written ~len:(len - !written) in
    if n <= 0 then Errno.error Errno.EINVAL "write_string: short write";
    written := !written + n
  done

let pwrite_string fs fd s ~at =
  let buf = Bytes.unsafe_of_string s in
  let n = fs.pwrite fd ~buf ~boff:0 ~len:(Bytes.length buf) ~at in
  if n <> Bytes.length buf then Errno.error Errno.EINVAL "pwrite_string: short"

(** Read exactly [len] bytes at [at]; raises if the file is shorter. *)
let pread_exact fs fd ~len ~at =
  let buf = Bytes.create len in
  let got = ref 0 in
  while !got < len do
    let n = fs.pread fd ~buf ~boff:!got ~len:(len - !got) ~at:(at + !got) in
    if n = 0 then Errno.error Errno.EINVAL "pread_exact: eof";
    got := !got + n
  done;
  Bytes.unsafe_to_string buf

(** Read a whole file as a string. *)
let read_file fs path =
  let fd = fs.open_ path Flags.rdonly in
  Fun.protect
    ~finally:(fun () -> fs.close fd)
    (fun () ->
      let size = (fs.fstat fd).st_size in
      if size = 0 then "" else pread_exact fs fd ~len:size ~at:0)

(** Create/overwrite a whole file from a string (no fsync). *)
let write_file fs path s =
  let fd = fs.open_ path Flags.create_trunc in
  Fun.protect
    ~finally:(fun () -> fs.close fd)
    (fun () -> write_string fs fd s)

(** Ensure a directory exists (no error if it already does). *)
let mkdir_p fs path =
  let parts = String.split_on_char '/' path in
  let _ =
    List.fold_left
      (fun prefix part ->
        if part = "" then prefix
        else
          let p = prefix ^ "/" ^ part in
          (match fs.mkdir p with
          | () -> ()
          | exception Errno.Error (Errno.EEXIST, _) -> ());
          p)
      "" parts
  in
  ()
