(** POSIX-style error codes raised by every file system in this repository. *)

type t =
  | ENOENT
  | EEXIST
  | EBADF
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | EINVAL
  | ENOSPC
  | EACCES
  | EFBIG
  | EROFS

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EBADF -> "EBADF"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | EACCES -> "EACCES"
  | EFBIG -> "EFBIG"
  | EROFS -> "EROFS"

exception Error of t * string

let error e ctx = raise (Error (e, ctx))

let () =
  Printexc.register_printer (function
    | Error (e, ctx) -> Some (Printf.sprintf "Errno.Error(%s, %S)" (to_string e) ctx)
    | _ -> None)
