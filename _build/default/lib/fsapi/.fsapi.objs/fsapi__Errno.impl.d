lib/fsapi/errno.ml: Printexc Printf
