lib/fsapi/flags.ml:
