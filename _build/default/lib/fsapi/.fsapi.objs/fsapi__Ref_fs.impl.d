lib/fsapi/ref_fs.ml: Bytes Errno Flags Fs Hashtbl List String
