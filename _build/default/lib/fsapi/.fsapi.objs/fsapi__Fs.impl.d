lib/fsapi/fs.ml: Bytes Errno Flags Fun List String
