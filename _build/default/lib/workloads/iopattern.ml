(** The five file-IO micro-benchmark patterns of Figure 4 (and the append
    pattern of Table 1 / Figure 3): read or write a whole file in 4 KB
    operations, sequentially or at random offsets, with an fsync every
    [fsync_every] writes. *)

type pattern = Seq_read | Rand_read | Seq_write | Rand_write | Append

let pattern_name = function
  | Seq_read -> "seq-read"
  | Rand_read -> "rand-read"
  | Seq_write -> "seq-write"
  | Rand_write -> "rand-write"
  | Append -> "append"

type config = { file_size : int; op_size : int; fsync_every : int; seed : int }

let default_config =
  { file_size = 16 * 1024 * 1024; op_size = 4096; fsync_every = 10; seed = 3 }

let path = "/iopattern-file"

(** Create the input file for the read/overwrite patterns. *)
let prepare (fs : Fsapi.Fs.t) cfg =
  let fd = fs.open_ path Fsapi.Flags.create_trunc in
  let chunk = Bytes.make 65536 'i' in
  let written = ref 0 in
  while !written < cfg.file_size do
    let n = min 65536 (cfg.file_size - !written) in
    ignore (fs.write fd ~buf:chunk ~boff:0 ~len:n);
    written := !written + n
  done;
  fs.fsync fd;
  fs.close fd

(** The op loop alone, on an already open fd — this is the section the
    paper's microbenchmarks time (final fsync/close are outside). Returns
    the number of operations. *)
let run_ops (fs : Fsapi.Fs.t) fd cfg pattern =
  let nops = cfg.file_size / cfg.op_size in
  let rng = Rng.create cfg.seed in
  let buf = Bytes.make cfg.op_size 'w' in
  (match pattern with
  | Append ->
      for i = 1 to nops do
        ignore (fs.write fd ~buf ~boff:0 ~len:cfg.op_size);
        if i mod cfg.fsync_every = 0 then fs.fsync fd
      done
  | Seq_write | Rand_write ->
      for i = 0 to nops - 1 do
        let at =
          match pattern with
          | Seq_write -> i * cfg.op_size
          | _ -> Rng.int rng nops * cfg.op_size
        in
        ignore (fs.pwrite fd ~buf ~boff:0 ~len:cfg.op_size ~at);
        if (i + 1) mod cfg.fsync_every = 0 then fs.fsync fd
      done
  | Seq_read | Rand_read ->
      for i = 0 to nops - 1 do
        let at =
          match pattern with
          | Seq_read -> i * cfg.op_size
          | _ -> Rng.int rng nops * cfg.op_size
        in
        ignore (fs.pread fd ~buf ~boff:0 ~len:cfg.op_size ~at)
      done);
  nops

(** Open the right file for [pattern]. *)
let open_for (fs : Fsapi.Fs.t) pattern =
  match pattern with
  | Append -> fs.open_ "/iopattern-append" Fsapi.Flags.create_trunc
  | Seq_write | Rand_write -> fs.open_ path Fsapi.Flags.rdwr
  | Seq_read | Rand_read -> fs.open_ path Fsapi.Flags.rdonly

let finish (fs : Fsapi.Fs.t) fd pattern =
  (match pattern with
  | Append | Seq_write | Rand_write -> fs.fsync fd
  | Seq_read | Rand_read -> ());
  fs.close fd;
  match pattern with Append -> fs.unlink "/iopattern-append" | _ -> ()

(** Whole-benchmark convenience: open, run, fsync, close. *)
let run (fs : Fsapi.Fs.t) cfg pattern =
  let fd = open_for fs pattern in
  let nops = run_ops fs fd cfg pattern in
  finish fs fd pattern;
  nops
