lib/workloads/tpcc.ml: Apps List Printf Rng
