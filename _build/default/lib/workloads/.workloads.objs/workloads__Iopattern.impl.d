lib/workloads/iopattern.ml: Bytes Fsapi Rng
