lib/workloads/utility.ml: Fsapi Hashtbl List Printf Rng String
