lib/workloads/zipf.ml: Float Rng
