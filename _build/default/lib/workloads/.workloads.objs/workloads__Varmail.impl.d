lib/workloads/varmail.ml: Bytes Fsapi Printf
