lib/workloads/ycsb.ml: Apps Printf Rng Zipf
