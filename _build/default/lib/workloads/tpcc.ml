(** TPC-C online-transaction-processing mix over the {!Apps.Waldb} embedded
    database — the paper's "TPC-C on SQLite" experiment (§5.2).

    The five transaction types run at the standard mix (new-order 45%,
    payment 43%, order-status 4%, delivery 4%, stock-level 4%) against the
    standard tables, with row payloads sized like the spec's (hundreds of
    bytes) but without the full column semantics: what matters to a file
    system is the transaction's read/write page footprint and its
    commit+fsync, which this preserves. *)

type config = {
  warehouses : int;
  districts_per_wh : int;
  customers_per_district : int;
  items : int;
  transactions : int;
  seed : int;
}

let default_config =
  {
    warehouses = 1;
    districts_per_wh = 10;
    customers_per_district = 100;
    items = 1000;
    transactions = 1000;
    seed = 11;
  }

type result = {
  new_orders : int;
  payments : int;
  order_statuses : int;
  deliveries : int;
  stock_levels : int;
}

let total r =
  r.new_orders + r.payments + r.order_statuses + r.deliveries + r.stock_levels

let wkey w = Printf.sprintf "%03d" w
let dkey w d = Printf.sprintf "%03d-%02d" w d
let ckey w d c = Printf.sprintf "%03d-%02d-%04d" w d c
let ikey i = Printf.sprintf "%06d" i
let skey w i = Printf.sprintf "%03d-%06d" w i
let okey w d o = Printf.sprintf "%03d-%02d-%08d" w d o

let row rng n = Rng.payload rng n

(** Populate the standard tables. *)
let load db cfg =
  let rng = Rng.create cfg.seed in
  Apps.Waldb.transaction db (fun () ->
      for i = 0 to cfg.items - 1 do
        Apps.Waldb.put db ~table:"item" (ikey i) (row rng 80)
      done);
  for w = 0 to cfg.warehouses - 1 do
    Apps.Waldb.transaction db (fun () ->
        Apps.Waldb.put db ~table:"warehouse" (wkey w) (row rng 90);
        for d = 0 to cfg.districts_per_wh - 1 do
          Apps.Waldb.put db ~table:"district" (dkey w d) (row rng 95)
        done);
    Apps.Waldb.transaction db (fun () ->
        for d = 0 to cfg.districts_per_wh - 1 do
          for c = 0 to cfg.customers_per_district - 1 do
            Apps.Waldb.put db ~table:"customer" (ckey w d c) (row rng 250)
          done
        done);
    Apps.Waldb.transaction db (fun () ->
        for i = 0 to cfg.items - 1 do
          Apps.Waldb.put db ~table:"stock" (skey w i) (row rng 150)
        done)
  done

let new_order db cfg rng next_oid =
  let w = Rng.int rng cfg.warehouses in
  let d = Rng.int rng cfg.districts_per_wh in
  let c = Rng.int rng cfg.customers_per_district in
  Apps.Waldb.transaction db (fun () ->
      ignore (Apps.Waldb.get db ~table:"warehouse" (wkey w));
      ignore (Apps.Waldb.get db ~table:"district" (dkey w d));
      ignore (Apps.Waldb.get db ~table:"customer" (ckey w d c));
      (* district next-order-id update *)
      Apps.Waldb.put db ~table:"district" (dkey w d) (row rng 95);
      let oid = !next_oid in
      next_oid := oid + 1;
      Apps.Waldb.put db ~table:"orders" (okey w d oid) (row rng 30);
      Apps.Waldb.put db ~table:"new_order" (okey w d oid) "1";
      let lines = 5 + Rng.int rng 11 in
      for l = 0 to lines - 1 do
        let item = Rng.int rng cfg.items in
        ignore (Apps.Waldb.get db ~table:"item" (ikey item));
        ignore (Apps.Waldb.get db ~table:"stock" (skey w item));
        Apps.Waldb.put db ~table:"stock" (skey w item) (row rng 150);
        Apps.Waldb.put db ~table:"order_line"
          (okey w d oid ^ Printf.sprintf "-%02d" l)
          (row rng 55)
      done)

let payment db cfg rng =
  let w = Rng.int rng cfg.warehouses in
  let d = Rng.int rng cfg.districts_per_wh in
  let c = Rng.int rng cfg.customers_per_district in
  Apps.Waldb.transaction db (fun () ->
      Apps.Waldb.put db ~table:"warehouse" (wkey w) (row rng 90);
      Apps.Waldb.put db ~table:"district" (dkey w d) (row rng 95);
      ignore (Apps.Waldb.get db ~table:"customer" (ckey w d c));
      Apps.Waldb.put db ~table:"customer" (ckey w d c) (row rng 250);
      Apps.Waldb.put db ~table:"history"
        (Printf.sprintf "%s-%d" (ckey w d c) (Rng.int rng 1_000_000))
        (row rng 46))

let order_status db cfg rng =
  let w = Rng.int rng cfg.warehouses in
  let d = Rng.int rng cfg.districts_per_wh in
  let c = Rng.int rng cfg.customers_per_district in
  Apps.Waldb.transaction db (fun () ->
      ignore (Apps.Waldb.get db ~table:"customer" (ckey w d c));
      ignore (Apps.Waldb.scan db ~table:"orders" ~start:(okey w d 0) ~count:5))

let delivery db cfg rng next_delivered =
  let w = Rng.int rng cfg.warehouses in
  Apps.Waldb.transaction db (fun () ->
      for d = 0 to cfg.districts_per_wh - 1 do
        let pending =
          Apps.Waldb.scan db ~table:"new_order" ~start:(okey w d !next_delivered)
            ~count:1
        in
        List.iter
          (fun (k, _) ->
            Apps.Waldb.delete db ~table:"new_order" k;
            Apps.Waldb.put db ~table:"orders" k (row rng 30))
          pending
      done;
      incr next_delivered)

let stock_level db cfg rng =
  let w = Rng.int rng cfg.warehouses in
  Apps.Waldb.transaction db (fun () ->
      ignore (Apps.Waldb.get db ~table:"district" (dkey w (Rng.int rng cfg.districts_per_wh)));
      ignore (Apps.Waldb.scan db ~table:"stock" ~start:(skey w 0) ~count:20))

(** Run the standard transaction mix. *)
let run ?(think = fun () -> ()) db cfg =
  let rng = Rng.create (cfg.seed + 1) in
  let next_oid = ref 1 and next_delivered = ref 1 in
  let r =
    ref
      {
        new_orders = 0;
        payments = 0;
        order_statuses = 0;
        deliveries = 0;
        stock_levels = 0;
      }
  in
  for _ = 1 to cfg.transactions do
    (* SQL parsing, query planning, row (de)serialisation *)
    think ();
    let die = Rng.int rng 100 in
    if die < 45 then begin
      new_order db cfg rng next_oid;
      r := { !r with new_orders = !r.new_orders + 1 }
    end
    else if die < 88 then begin
      payment db cfg rng;
      r := { !r with payments = !r.payments + 1 }
    end
    else if die < 92 then begin
      order_status db cfg rng;
      r := { !r with order_statuses = !r.order_statuses + 1 }
    end
    else if die < 96 then begin
      delivery db cfg rng next_delivered;
      r := { !r with deliveries = !r.deliveries + 1 }
    end
    else begin
      stock_level db cfg rng;
      r := { !r with stock_levels = !r.stock_levels + 1 }
    end
  done;
  !r
