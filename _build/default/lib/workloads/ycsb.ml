(** Yahoo Cloud Serving Benchmark (Cooper et al., SoCC '10) workloads A–F,
    driven against the LSM key-value store — the paper's LevelDB
    experiments (§5.2, Figure 6, Table 7).

    Standard mixes:
    - A: 50% read / 50% update (zipfian)
    - B: 95% read / 5% update (zipfian)
    - C: 100% read (zipfian)
    - D: 95% read / 5% insert (latest)
    - E: 95% scan / 5% insert (zipfian)
    - F: 50% read / 50% read-modify-write (zipfian) *)

type workload = Load | A | B | C | D | E | F

let workload_name = function
  | Load -> "LoadA"
  | A -> "RunA"
  | B -> "RunB"
  | C -> "RunC"
  | D -> "RunD"
  | E -> "RunE"
  | F -> "RunF"

type op = Read of int | Update of int | Insert | Scan of int * int | Rmw of int

type config = {
  records : int;
  operations : int;
  value_size : int;
  scan_max : int;
  seed : int;
}

let default_config =
  { records = 10_000; operations = 10_000; value_size = 1024; scan_max = 100; seed = 7 }

let key_of i = Printf.sprintf "user%012d" i

(** Generate the operation for one step of the given workload. *)
let next_op workload cfg rng zipf ~inserted =
  let zip () = Zipf.sample zipf rng in
  let latest () = max 0 (!inserted - 1 - Zipf.sample zipf rng) in
  match workload with
  | Load -> Insert
  | A -> if Rng.float rng < 0.5 then Read (zip ()) else Update (zip ())
  | B -> if Rng.float rng < 0.95 then Read (zip ()) else Update (zip ())
  | C -> Read (zip ())
  | D ->
      if Rng.float rng < 0.95 then Read (latest ())
      else Insert
  | E ->
      if Rng.float rng < 0.95 then Scan (zip (), 1 + Rng.int rng cfg.scan_max)
      else Insert
  | F -> if Rng.float rng < 0.5 then Read (zip ()) else Rmw (zip ())

type result = {
  ops_done : int;
  reads : int;
  writes : int;
  scans : int;
  not_found : int;
}

(** Run a workload against an open LSM store. [Load] inserts
    [cfg.records]; the others execute [cfg.operations] ops over an
    existing store. *)
let run ?(think = fun () -> ()) (lsm : Apps.Lsm.t) workload cfg =
  let rng = Rng.create cfg.seed in
  let zipf = Zipf.create (max 1 cfg.records) in
  let inserted = ref cfg.records in
  let reads = ref 0 and writes = ref 0 and scans = ref 0 and not_found = ref 0 in
  let value () = Rng.payload rng cfg.value_size in
  let steps = match workload with Load -> cfg.records | _ -> cfg.operations in
  (if workload = Load then inserted := 0);
  for _ = 1 to steps do
    (* application-side work (request parsing, memtable walk, comparisons):
       the paper observes LevelDB spends 20-50% of its time outside POSIX
       calls (section 4) *)
    think ();
    match next_op workload cfg rng zipf ~inserted with
    | Insert ->
        Apps.Lsm.put lsm (key_of !inserted) (value ());
        incr inserted;
        incr writes
    | Update k ->
        Apps.Lsm.put lsm (key_of k) (value ());
        incr writes
    | Read k ->
        (match Apps.Lsm.get lsm (key_of k) with
        | Some _ -> ()
        | None -> incr not_found);
        incr reads
    | Scan (k, n) ->
        ignore (Apps.Lsm.scan lsm ~start:(key_of k) ~count:n);
        incr scans
    | Rmw k ->
        (match Apps.Lsm.get lsm (key_of k) with
        | Some _ -> ()
        | None -> incr not_found);
        Apps.Lsm.put lsm (key_of k) (value ());
        incr reads;
        incr writes
  done;
  {
    ops_done = steps;
    reads = !reads;
    writes = !writes;
    scans = !scans;
    not_found = !not_found;
  }
