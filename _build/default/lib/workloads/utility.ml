(** Metadata-heavy utility workloads standing in for git, tar and rsync
    (paper §5.2, §5.9). Each issues the dominant system-call mix of its
    namesake:

    - git:   many small-file creates, content-addressed object writes,
             renames into place (git add/commit over a source tree);
    - tar:   read every file of a tree, append everything to one archive;
    - rsync: read every file of a tree, recreate it (create + write +
             fsync) under a destination directory. *)

type result = { files : int; bytes : int }

let file_body rng =
  (* small, source-code-like files: 256 B – 16 KB *)
  Rng.payload rng (256 + Rng.int rng 16128)

(** Build a synthetic source tree with [files] files spread over
    subdirectories; returns the file paths. *)
let make_tree (fs : Fsapi.Fs.t) ~root ~files ~seed =
  let rng = Rng.create seed in
  Fsapi.Fs.mkdir_p fs root;
  let paths = ref [] in
  for i = 0 to files - 1 do
    let dir = Printf.sprintf "%s/d%02d" root (i mod 16) in
    if i < 16 then Fsapi.Fs.mkdir_p fs dir;
    let path = Printf.sprintf "%s/f%04d.src" dir i in
    Fsapi.Fs.write_file fs path (file_body rng);
    paths := path :: !paths
  done;
  List.rev !paths

(** git-like: hash every file's content, write it as an object under a
    temporary name, fsync, rename into the content-addressed location;
    finish with tree + commit objects. Repeated [commits] times with small
    modifications in between. *)
let git ?(think_bytes = fun (_ : int) -> ()) (fs : Fsapi.Fs.t) ~root ~paths ~commits ~seed =
  let rng = Rng.create (seed + 1) in
  let objects = root ^ "/.git/objects" in
  Fsapi.Fs.mkdir_p fs objects;
  let bytes = ref 0 and files = ref 0 in
  for c = 0 to commits - 1 do
    (* modify a handful of files *)
    List.iteri
      (fun i p ->
        if i mod 7 = c mod 7 then begin
          let body = file_body rng in
          Fsapi.Fs.write_file fs p body
        end)
      paths;
    (* add: write an object per (modified) file *)
    List.iteri
      (fun i p ->
        if i mod 7 = c mod 7 then begin
          let body = Fsapi.Fs.read_file fs p in
          (* SHA-1 + zlib deflate of the object body *)
          think_bytes (String.length body);
          let hash = Printf.sprintf "%08x%04d%02d" (Hashtbl.hash body) i c in
          let tmp = Printf.sprintf "%s/tmp-%d-%d" objects c i in
          let fd = fs.open_ tmp Fsapi.Flags.create_trunc in
          Fsapi.Fs.write_string fs fd body;
          (* loose objects are not fsynced (git's default of the era) *)
          fs.close fd;
          fs.rename tmp (objects ^ "/" ^ hash);
          bytes := !bytes + String.length body;
          incr files
        end)
      paths;
    (* commit: tree object + commit object + ref update *)
    let tree = Printf.sprintf "%s/tree-%08d" objects c in
    Fsapi.Fs.write_file fs tree (Rng.payload rng 2048);
    let commit = Printf.sprintf "%s/commit-%08d" objects c in
    Fsapi.Fs.write_file fs commit (Rng.payload rng 256);
    let head = root ^ "/.git/HEAD.tmp" in
    Fsapi.Fs.write_file fs head (Printf.sprintf "ref: %d" c);
    fs.rename head (root ^ "/.git/HEAD")
  done;
  { files = !files; bytes = !bytes }

(** tar-like: read every file and append name + content to one archive. *)
let tar ?(think_bytes = fun (_ : int) -> ()) (fs : Fsapi.Fs.t) ~paths ~archive =
  let fd = fs.open_ archive Fsapi.Flags.create_trunc in
  let bytes = ref 0 in
  List.iter
    (fun p ->
      let body = Fsapi.Fs.read_file fs p in
      think_bytes (String.length body);
      let header = Printf.sprintf "%-100s%012d" p (String.length body) in
      Fsapi.Fs.write_string fs fd header;
      Fsapi.Fs.write_string fs fd body;
      bytes := !bytes + String.length body + 112)
    paths;
  fs.fsync fd;
  fs.close fd;
  { files = List.length paths; bytes = !bytes }

(** rsync-like: copy the tree file by file (read, create, write, fsync). *)
let rsync ?(think_bytes = fun (_ : int) -> ()) (fs : Fsapi.Fs.t) ~paths ~src_root ~dst_root =
  Fsapi.Fs.mkdir_p fs dst_root;
  let bytes = ref 0 in
  List.iter
    (fun p ->
      let body = Fsapi.Fs.read_file fs p in
      (* rolling + strong checksums *)
      think_bytes (String.length body);
      let rel = String.sub p (String.length src_root) (String.length p - String.length src_root) in
      (* ensure the destination subdirectory exists *)
      (match String.rindex_opt rel '/' with
      | Some i -> Fsapi.Fs.mkdir_p fs (dst_root ^ String.sub rel 0 i)
      | None -> ());
      let dst = dst_root ^ rel in
      let fd = fs.open_ dst Fsapi.Flags.create_trunc in
      Fsapi.Fs.write_string fs fd body;
      (* rsync does not fsync destination files by default *)
      fs.close fd;
      bytes := !bytes + String.length body)
    paths;
  { files = List.length paths; bytes = !bytes }
