(** Zipfian distribution over [0, n) using the Gray et al. rejection-free
    method YCSB itself uses (constant-time sampling after O(1) setup). *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !s

let create ?(theta = 0.99) n =
  assert (n > 0);
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  {
    n;
    theta;
    alpha = 1. /. (1. -. theta);
    zetan;
    eta =
      (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
      /. (1. -. (zeta2 /. zetan));
    zeta2;
  }

(** Sample a rank in [0, n); rank 0 is the most popular item. *)
let sample t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1. then 0
  else if uz < 1. +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha
    in
    min (t.n - 1) (int_of_float v)
