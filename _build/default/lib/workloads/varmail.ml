(** The Table 6 micro-benchmark: a FileBench-Varmail-like sequence that
    exercises every system call the paper reports latencies for.

    Per iteration (paper §5.4): create a file and append 16 KB as four 4 KB
    appends each followed by fsync; close; open; read the whole file in
    one call; close; open and close once more; finally unlink. Latencies
    are measured on the simulated clock and averaged per call type. *)

type latencies = {
  open_ns : float;
  close_ns : float;
  append_ns : float;
  fsync_ns : float;
  read_ns : float;
  unlink_ns : float;
}

let run (fs : Fsapi.Fs.t) ~(now : unit -> float) ~iterations =
  let opens = ref 0. and nopen = ref 0 in
  let closes = ref 0. and nclose = ref 0 in
  let appends = ref 0. and nappend = ref 0 in
  let fsyncs = ref 0. and nfsync = ref 0 in
  let reads = ref 0. and nread = ref 0 in
  let unlinks = ref 0. and nunlink = ref 0 in
  let timed acc n f =
    let t0 = now () in
    let x = f () in
    acc := !acc +. (now () -. t0);
    incr n;
    x
  in
  let block = Bytes.make 4096 'v' in
  for i = 0 to iterations - 1 do
    let path = Printf.sprintf "/varmail-%d" i in
    let fd =
      timed opens nopen (fun () -> fs.open_ path Fsapi.Flags.create_rw)
    in
    for _ = 1 to 4 do
      ignore
        (timed appends nappend (fun () -> fs.write fd ~buf:block ~boff:0 ~len:4096));
      timed fsyncs nfsync (fun () -> fs.fsync fd)
    done;
    timed closes nclose (fun () -> fs.close fd);
    let fd = timed opens nopen (fun () -> fs.open_ path Fsapi.Flags.rdonly) in
    let buf = Bytes.create 16384 in
    ignore (timed reads nread (fun () -> fs.pread fd ~buf ~boff:0 ~len:16384 ~at:0));
    timed closes nclose (fun () -> fs.close fd);
    let fd = timed opens nopen (fun () -> fs.open_ path Fsapi.Flags.rdonly) in
    timed closes nclose (fun () -> fs.close fd);
    timed unlinks nunlink (fun () -> fs.unlink path)
  done;
  let avg acc n = !acc /. float_of_int (max 1 !n) in
  {
    open_ns = avg opens nopen;
    close_ns = avg closes nclose;
    append_ns = avg appends nappend;
    fsync_ns = avg fsyncs nfsync;
    read_ns = avg reads nread;
    unlink_ns = avg unlinks nunlink;
  }
