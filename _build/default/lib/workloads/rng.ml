(** Deterministic splitmix64 PRNG so every workload is reproducible
    independent of global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.logand (next t) 0xFFFFFFFFFFFFFL) /. 4503599627370496.0

let bool t = Int64.logand (next t) 1L = 1L

(** Deterministic printable payload of [len] bytes. *)
let payload t len = String.init len (fun _ -> Char.chr (33 + int t 94))
