(** Tests for the perf-regression sentinel (PR 9): trajectory-file
    parsing, per-key-class tolerances (sim exact, host within a relative
    band), direction awareness (SLO/speedup higher-better, exact counts
    both ways), schema refusal, legacy files and subset comparisons. *)

let tc = Alcotest.test_case

let write_file body =
  let path = Filename.temp_file "benchdiff" ".json" in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let trajectory ?meta tests =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  (match meta with
  | Some m -> Buffer.add_string b (Printf.sprintf "  \"meta\": %s,\n" m)
  | None -> ());
  Buffer.add_string b "  \"tests\": {\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": {\"ns_per_op\": %.1f}%s\n" k v
           (if i = List.length tests - 1 then "" else ",")))
    tests;
  Buffer.add_string b "  },\n  \"date\": \"2026-08-09\"\n}\n";
  write_file (Buffer.contents b)

let meta2 = {|{"schema": 2, "mode": "full", "seed": 20973, "jobs": 4}|}

let base_tests =
  [
    ("table1/sim/ext4-dax", 9000.);
    ("scaling/splitfs-posix/c8", 1234.5);
    ("scale10k/splitfs-posix/n10000/slo", 0.9);
    ("litmus/create-rename/states", 96.);
    ("faults/splitfs-strict/injected", 41.);
    ("faults/degraded-lat/splitfs-strict/p999", 5000.);
    ("monolithic/4k-append/splitfs-strict", 800.);
    ("par/litmus/walltime-j4", 2e9);
    ("par/litmus/speedup-j4", 2.5);
    ("scale10k/dispatch/heap-ns", 150.);
  ]

let diff_tests ?(host_tol = 0.5) ?(subset = false) old_t new_t =
  let old_f = Harness.Benchdiff.load (trajectory ~meta:meta2 old_t) in
  let new_f = Harness.Benchdiff.load (trajectory ~meta:meta2 new_t) in
  match Harness.Benchdiff.diff ~host_tol ~subset old_f new_f with
  | Ok r -> r
  | Error msg -> Alcotest.failf "unexpected schema refusal: %s" msg

let keys_of entries = List.map (fun e -> e.Harness.Benchdiff.e_key) entries

let test_identical_ok () =
  let r = diff_tests base_tests base_tests in
  Alcotest.(check bool) "ok" true (Harness.Benchdiff.ok r);
  Alcotest.(check int) "all unchanged"
    (List.length base_tests)
    (Harness.Benchdiff.unchanged_count r);
  Alcotest.(check (list string)) "nothing regressed" []
    (keys_of (Harness.Benchdiff.regressed r))

(* Simulated-ns keys are exact: any increase, however small, regresses;
   any decrease is an improvement — never noise. *)
let test_sim_exact () =
  let bump k delta =
    List.map (fun (k', v) -> if k' = k then (k', v +. delta) else (k', v)) base_tests
  in
  let r = diff_tests base_tests (bump "table1/sim/ext4-dax" 0.1) in
  Alcotest.(check (list string)) "tiny sim increase regresses"
    [ "table1/sim/ext4-dax" ]
    (keys_of (Harness.Benchdiff.regressed r));
  Alcotest.(check bool) "gate fails" false (Harness.Benchdiff.ok r);
  let r = diff_tests base_tests (bump "scaling/splitfs-posix/c8" (-100.)) in
  Alcotest.(check (list string)) "sim decrease improves"
    [ "scaling/splitfs-posix/c8" ]
    (keys_of (Harness.Benchdiff.improved r));
  Alcotest.(check bool) "gate passes on improvement" true (Harness.Benchdiff.ok r)

(* Host-clock keys get the relative band: drift inside it is unchanged,
   beyond it is judged. *)
let test_host_tolerance () =
  let set k v =
    List.map (fun (k', v') -> if k' = k then (k', v) else (k', v')) base_tests
  in
  let r = diff_tests base_tests (set "par/litmus/walltime-j4" 2.8e9) in
  Alcotest.(check int) "+40%% host drift inside the band" 0
    (List.length (Harness.Benchdiff.regressed r)
    + List.length (Harness.Benchdiff.improved r));
  let r = diff_tests base_tests (set "par/litmus/walltime-j4" 3.2e9) in
  Alcotest.(check (list string)) "+60%% host drift regresses"
    [ "par/litmus/walltime-j4" ]
    (keys_of (Harness.Benchdiff.regressed r));
  let r =
    diff_tests ~host_tol:0.1 base_tests (set "scale10k/dispatch/heap-ns" 180.)
  in
  Alcotest.(check (list string)) "--host-tol narrows the band"
    [ "scale10k/dispatch/heap-ns" ]
    (keys_of (Harness.Benchdiff.regressed r))

(* Direction: SLO attainment and speedups are better when higher. *)
let test_higher_is_better () =
  let set k v =
    List.map (fun (k', v') -> if k' = k then (k', v) else (k', v')) base_tests
  in
  let r = diff_tests base_tests (set "scale10k/splitfs-posix/n10000/slo" 0.8) in
  Alcotest.(check (list string)) "SLO drop regresses"
    [ "scale10k/splitfs-posix/n10000/slo" ]
    (keys_of (Harness.Benchdiff.regressed r));
  (* the trajectory writer renders %.1f, so pick a rise that survives it *)
  let r = diff_tests base_tests (set "scale10k/splitfs-posix/n10000/slo" 1.0) in
  Alcotest.(check (list string)) "SLO rise improves"
    [ "scale10k/splitfs-posix/n10000/slo" ]
    (keys_of (Harness.Benchdiff.improved r));
  let r = diff_tests base_tests (set "par/litmus/speedup-j4" 1.1) in
  Alcotest.(check (list string)) "speedup collapse regresses (host band)"
    [ "par/litmus/speedup-j4" ]
    (keys_of (Harness.Benchdiff.regressed r))

(* Deterministic enumerations: a changed litmus state count or fault
   outcome count is a behaviour drift in either direction. *)
let test_exact_counts_both_ways () =
  let set k v =
    List.map (fun (k', v') -> if k' = k then (k', v) else (k', v')) base_tests
  in
  List.iter
    (fun (k, v) ->
      let r = diff_tests base_tests (set k v) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s -> %g regresses" k v)
        [ k ]
        (keys_of (Harness.Benchdiff.regressed r)))
    [
      ("litmus/create-rename/states", 95.);
      ("litmus/create-rename/states", 97.);
      ("faults/splitfs-strict/injected", 40.);
      ("faults/splitfs-strict/injected", 42.);
    ];
  (* ...but the degraded-latency percentiles are sim latencies, not
     counts: a decrease is an improvement *)
  let r = diff_tests base_tests (set "faults/degraded-lat/splitfs-strict/p999" 4000.) in
  Alcotest.(check (list string)) "degraded-lat decrease improves"
    [ "faults/degraded-lat/splitfs-strict/p999" ]
    (keys_of (Harness.Benchdiff.improved r))

let test_schema_refusal () =
  let old_f =
    Harness.Benchdiff.load
      (trajectory ~meta:{|{"schema": 1, "mode": "full"}|} base_tests)
  in
  let new_f = Harness.Benchdiff.load (trajectory ~meta:meta2 base_tests) in
  (match Harness.Benchdiff.diff old_f new_f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-schema diff was not refused");
  (* legacy file without meta: accepted with a note, so the CI gate can
     compare against pre-PR-9 snapshots *)
  let legacy = Harness.Benchdiff.load (trajectory base_tests) in
  match Harness.Benchdiff.diff legacy new_f with
  | Ok r ->
      Alcotest.(check bool) "legacy diff ok" true (Harness.Benchdiff.ok r);
      Alcotest.(check bool) "legacy noted" true (r.Harness.Benchdiff.r_notes <> [])
  | Error msg -> Alcotest.failf "legacy file refused: %s" msg

(* --strict-meta upgrades the legacy-snapshot warning to a refusal (the
   CLI exits 2 on it) naming the file without the meta block; two
   meta-bearing files still diff normally under the flag. *)
let test_strict_meta () =
  let with_meta = Harness.Benchdiff.load (trajectory ~meta:meta2 base_tests) in
  let legacy = Harness.Benchdiff.load (trajectory base_tests) in
  (match Harness.Benchdiff.diff ~strict_meta:true legacy with_meta with
  | Error msg ->
      Alcotest.(check bool) "refusal names the legacy file" true
        (Harness.Benchdiff.contains legacy.Harness.Benchdiff.f_path msg);
      Alcotest.(check bool) "refusal names the missing meta block" true
        (Harness.Benchdiff.contains "meta" msg)
  | Ok _ -> Alcotest.fail "--strict-meta accepted a file without meta");
  (match Harness.Benchdiff.diff ~strict_meta:true with_meta legacy with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "--strict-meta accepted a new file without meta");
  match Harness.Benchdiff.diff ~strict_meta:true with_meta with_meta with
  | Ok r ->
      Alcotest.(check bool) "meta-bearing files still diff" true
        (Harness.Benchdiff.ok r)
  | Error msg -> Alcotest.failf "meta-bearing files refused: %s" msg

(* A fast-mode run carries no host entries: without --subset the missing
   keys fail the gate, with it they are accepted. Keys only in the new
   file are never a failure. *)
let test_subset () =
  let sim_only =
    List.filter
      (fun (k, _) ->
        not (Harness.Benchdiff.is_host k))
      base_tests
  in
  let r = diff_tests base_tests sim_only in
  Alcotest.(check bool) "missing keys fail without --subset" false
    (Harness.Benchdiff.ok r);
  let r = diff_tests ~subset:true base_tests sim_only in
  Alcotest.(check bool) "--subset accepts them" true (Harness.Benchdiff.ok r);
  Alcotest.(check int) "missing still reported"
    (List.length base_tests - List.length sim_only)
    (List.length r.Harness.Benchdiff.r_missing);
  let r =
    diff_tests ~subset:true base_tests
      (base_tests @ [ ("brand/new/key", 1.) ])
  in
  Alcotest.(check bool) "added keys never fail" true (Harness.Benchdiff.ok r);
  Alcotest.(check (list string)) "added reported" [ "brand/new/key" ]
    r.Harness.Benchdiff.r_added

let test_load_errors () =
  (match Harness.Benchdiff.load (write_file "{ not json") with
  | (_ : Harness.Benchdiff.file) -> Alcotest.fail "garbage parsed"
  | exception Failure _ -> ());
  (match Harness.Benchdiff.load (write_file "{\"date\": \"x\"}") with
  | (_ : Harness.Benchdiff.file) -> Alcotest.fail "missing tests accepted"
  | exception Failure _ -> ());
  (* the real thing parses: the committed PR 8 snapshot (tests run from
     the _build sandbox, so walk up towards the workspace copy) *)
  match
    List.find_opt Sys.file_exists
      [
        "BENCH_PR8.json"; "../BENCH_PR8.json"; "../../BENCH_PR8.json";
        "../../../BENCH_PR8.json";
      ]
  with
  | None -> ()
  | Some path ->
      let f = Harness.Benchdiff.load path in
      Alcotest.(check bool) "BENCH_PR8.json loads" true
        (List.length f.Harness.Benchdiff.f_tests > 100);
      Alcotest.(check bool) "PR 8 snapshot is legacy (no meta)" true
        (f.Harness.Benchdiff.f_meta = None)

let suite =
  [
    tc "identical files pass" `Quick test_identical_ok;
    tc "sim keys are exact" `Quick test_sim_exact;
    tc "host keys get the tolerance band" `Quick test_host_tolerance;
    tc "slo and speedup are higher-better" `Quick test_higher_is_better;
    tc "exact counts regress both ways" `Quick test_exact_counts_both_ways;
    tc "schema mismatch refused, legacy accepted" `Quick test_schema_refusal;
    tc "--strict-meta refuses legacy files" `Quick test_strict_meta;
    tc "subset semantics" `Quick test_subset;
    tc "load errors and the committed snapshot" `Quick test_load_errors;
  ]
