(** Crashcheck: the crash-state exploration engine itself (exhaustive
    enumeration on a hand-built device trace), the relink-atomicity
    window, the sampled differential run against the ref_fs oracle, and
    the injected-bug canary (op-log checksum verification disabled must
    be caught by the sampler). *)

open Crashcheck

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration on a hand-built ≤10-store trace               *)
(* ------------------------------------------------------------------ *)

(** Three cache lines A (addr 0), B (64), C (128):

    - store A='a' (temporal, never flushed)
    - store B='b' (temporal), flush B
    - store_nt C='c'
    - fence                 — crash point 0: A, B, C each base-or-new: 8 states
    - store_nt C='d'
    - store_nt C='e'        — end of trace: A in {base,'a'}, C in
                              {'c','d','e'} (B committed): 6 states

    14 legal crash states in total; enumeration must visit every one
    exactly once. *)
let line c = Bytes.make 64 c

let run_trace dev =
  Pmem.Device.store dev ~addr:0 (line 'a') ~off:0 ~len:64;
  Pmem.Device.store dev ~addr:64 (line 'b') ~off:0 ~len:64;
  Pmem.Device.flush dev ~addr:64 ~len:64;
  Pmem.Device.store_nt dev ~addr:128 (line 'c') ~off:0 ~len:64;
  Pmem.Device.fence dev;
  Pmem.Device.store_nt dev ~addr:128 (line 'd') ~off:0 ~len:64;
  Pmem.Device.store_nt dev ~addr:128 (line 'e') ~off:0 ~len:64

(** Re-run the trace on a fresh device, crash into [survivors] at fence
    [fence] ([-1] = end of trace), and return the resulting (A, B, C)
    line contents. *)
let crash_state ~fence ~survivors =
  let env = Pmem.Env.create ~capacity:(64 * 1024) () in
  let dev = env.Pmem.Env.dev in
  Pmem.Device.journal_begin dev;
  if fence >= 0 then Pmem.Device.arm_crash dev ~fence ~survivors;
  (try run_trace dev with Pmem.Device.Crashed -> ());
  if fence < 0 then Pmem.Device.crash_partial dev ~survivors;
  let peek addr = Bytes.get (Pmem.Device.peek_persistent dev ~addr ~len:64) 0 in
  (peek 0, peek 64, peek 128)

let test_exhaustive_trace () =
  (* profile once to collect the crash points *)
  let env = Pmem.Env.create ~capacity:(64 * 1024) () in
  let dev = env.Pmem.Env.dev in
  Pmem.Device.journal_begin dev;
  run_trace dev;
  Util.check_int "one fence in the trace" 1 (Pmem.Device.fence_count dev);
  let p_fence = Pmem.Device.fence_pending dev 0 in
  let p_end = Pmem.Device.pending_now dev in
  Util.check_int "states at the fence" 8 (Explore.state_count p_fence);
  Util.check_int "states at end of trace" 6 (Explore.state_count p_end);
  Util.check_int "total legal crash states" 14
    (Explore.state_count p_fence + Explore.state_count p_end);
  (* enumerate both points; every state visited exactly once *)
  let states_of ~fence pending =
    List.map (fun survivors -> crash_state ~fence ~survivors)
      (Explore.enumerate pending)
  in
  let distinct l = List.sort_uniq compare l in
  let at_fence = states_of ~fence:0 p_fence in
  Util.check_int "fence: no state visited twice" 8
    (List.length (distinct at_fence));
  Util.check_int "fence: every state visited" 8 (List.length at_fence);
  (* the 8 states are exactly base-or-new per line *)
  let expect =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> List.map (fun c -> (a, b, c)) [ '\000'; 'c' ])
          [ '\000'; 'b' ])
      [ '\000'; 'a' ]
  in
  Alcotest.(check bool)
    "fence: states are exactly {base,new}^3" true
    (distinct at_fence = List.sort compare expect);
  let at_end = states_of ~fence:(-1) p_end in
  Util.check_int "end: no state visited twice" 6
    (List.length (distinct at_end));
  Util.check_int "end: every state visited" 6 (List.length at_end);
  (* B committed at the fence; A still at risk; C one of its 3 versions *)
  List.iter
    (fun (a, b, c) ->
      Alcotest.(check char) "end: B durable" 'b' b;
      Alcotest.(check bool) "end: A base or new" true (a = '\000' || a = 'a');
      Alcotest.(check bool)
        "end: C one version" true
        (List.mem c [ 'c'; 'd'; 'e' ]))
    at_end

(* ------------------------------------------------------------------ *)
(* Satellite: Device.crash resets the PR-1 path-hit counters            *)
(* ------------------------------------------------------------------ *)

let test_crash_resets_path_counters () =
  let env = Pmem.Env.create ~capacity:(64 * 1024) () in
  let dev = env.Pmem.Env.dev in
  let stats = env.Pmem.Env.stats in
  let buf = Bytes.create 64 in
  Pmem.Device.store dev ~addr:0 (line 'x') ~off:0 ~len:64;
  Pmem.Device.load dev ~addr:0 buf ~off:0 ~len:64;
  Pmem.Device.load dev ~addr:4096 buf ~off:0 ~len:64;
  Alcotest.(check bool)
    "counters moved" true
    (stats.Pmem.Stats.fast_path_hits + stats.Pmem.Stats.slow_path_hits > 0);
  Pmem.Device.crash dev;
  Util.check_int "fast-path hits reset" 0 stats.Pmem.Stats.fast_path_hits;
  Util.check_int "slow-path hits reset" 0 stats.Pmem.Stats.slow_path_hits;
  (* and the partial-crash path resets them too *)
  Pmem.Device.journal_begin dev;
  Pmem.Device.store dev ~addr:0 (line 'y') ~off:0 ~len:64;
  Pmem.Device.load dev ~addr:0 buf ~off:0 ~len:64;
  Pmem.Device.crash_partial dev ~survivors:[];
  Util.check_int "fast-path hits reset (partial)" 0
    stats.Pmem.Stats.fast_path_hits;
  Util.check_int "slow-path hits reset (partial)" 0
    stats.Pmem.Stats.slow_path_hits

(* ------------------------------------------------------------------ *)
(* Satellite: relink atomicity window                                   *)
(* ------------------------------------------------------------------ *)

(** Strict mode, one staged full-block append, then fsync. The fsync's
    fences bracket the relink journal commit and the op-log Relinked
    append: a crash anywhere must recover to the pre-relink (empty) or
    post-relink (4096 B) file — never a mix — and both outcomes must
    actually be reachable. The empty outcome appears at the write's own
    fence (op-log entry line dropped, or entry kept with torn staged
    data); once the relink transaction commits, only the full file is
    legal. *)
let test_relink_atomicity_window () =
  let w =
    {
      Workload.mode = Splitfs.Config.Strict;
      nfiles = 1;
      initial = [| 0 |];
      ops =
        [
          Workload.Write { file = 0; at = 0; len = 4096; seed = 11 };
          Workload.Fsync { file = 0 };
        ];
    }
  in
  let points = Runner.profile w in
  (* fence 0 is the write's own fence; everything after belongs to the
     fsync — the relink window proper *)
  Alcotest.(check bool) "fsync emits fences" true
    (List.length (List.filter (fun (p : Explore.point) -> p.fence >= 1) points)
    >= 2);
  let sizes_seen = ref [] in
  let rng = Workloads.Rng.create 0xAB1E in
  List.iter
    (fun (p : Explore.point) ->
      let states =
        if Explore.state_count p.pending <= 256 then
          Explore.enumerate p.pending
        else List.init 64 (fun _ -> Explore.sample rng p.pending)
      in
      List.iter
        (fun survivors ->
          let t = Runner.run_trial w ~point:p ~survivors in
          (match t.Runner.violations with
          | [] -> ()
          | (_, reason) :: _ ->
              Alcotest.failf "fence %d: relink window violation: %s" p.fence
                reason);
          let size = Bytes.length t.Runner.recovered.(0) in
          Alcotest.(check bool)
            "recovered file is pre- or post-relink, never a mix" true
            (size = 0 || size = 4096);
          if not (List.mem size !sizes_seen) then
            sizes_seen := size :: !sizes_seen)
        states)
    points;
  Alcotest.(check bool)
    "both pre- and post-relink outcomes reachable" true
    (List.mem 0 !sizes_seen && List.mem 4096 !sizes_seen)

(* ------------------------------------------------------------------ *)
(* Satellite: sampled differential run, committed seed                  *)
(* ------------------------------------------------------------------ *)

let committed_seed = 0x51ED

let test_differential mode () =
  let r = check_mode ~samples:200 ~seed:committed_seed ~nops:24 mode in
  Alcotest.(check bool) "space too large to enumerate" false r.r_exhaustive;
  Util.check_int "explored exactly the sample budget" 200 r.r_explored;
  Alcotest.(check bool)
    "every crash point got pending-line summaries" true (r.r_points > 0);
  match r.r_violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "differential violation: %a" pp_violation v

(* ------------------------------------------------------------------ *)
(* Injected bug: skipping checksum verification must be caught          *)
(* ------------------------------------------------------------------ *)

let test_injected_bug_caught () =
  (* per-env toggle: the broken configuration is confined to the trials
     that opt into it — nothing to restore, no cross-trial leakage *)
  let checks =
    { (Pmem.Env.default_checks ()) with Pmem.Env.verify_checksums = false }
  in
  let r =
    check_mode ~samples:200 ~seed:committed_seed ~nops:24 ~checks
      Splitfs.Config.Strict
  in
  Alcotest.(check bool)
    "disabled checksum verification is caught by the sampler" true
    (r.r_violations <> [])

let suite =
  [
    tc "exhaustive enumeration visits all 14 states once" `Quick
      test_exhaustive_trace;
    tc "crash resets fast/slow path counters" `Quick
      test_crash_resets_path_counters;
    tc "relink window: never a pre/post mix" `Quick
      test_relink_atomicity_window;
    tc "differential vs ref_fs oracle, posix (200 sampled states)" `Quick
      (test_differential Splitfs.Config.Posix);
    tc "differential vs ref_fs oracle, sync (200 sampled states)" `Quick
      (test_differential Splitfs.Config.Sync);
    tc "differential vs ref_fs oracle, strict (200 sampled states)" `Quick
      (test_differential Splitfs.Config.Strict);
    tc "differential vs ref_fs oracle, fams (200 sampled states)" `Quick
      (test_differential Splitfs.Config.Fams);
    tc "injected bug: unverified op-log checksums are caught" `Quick
      test_injected_bug_caught;
  ]
