(** Tests for the per-actor clock, the deterministic scheduler, the
    contention model, and the multi-client scaling experiment (PR 3). *)

let tc = Alcotest.test_case

(* --- Simclock actors ------------------------------------------------ *)

let test_actor_clocks () =
  let clock = Pmem.Simclock.create () in
  Alcotest.(check bool) "single actor: not multi" false (Pmem.Simclock.multi clock);
  Pmem.Simclock.advance clock 100.;
  let a = Pmem.Simclock.new_actor clock ~name:"a" in
  Alcotest.(check bool) "two actors: multi" true (Pmem.Simclock.multi clock);
  Alcotest.(check (float 0.)) "spawned at current time" 100. a.Pmem.Simclock.a_now;
  Pmem.Simclock.set_current clock a;
  Pmem.Simclock.advance clock 50.;
  Alcotest.(check (float 0.)) "charge lands on current actor" 150.
    a.Pmem.Simclock.a_now;
  Alcotest.(check (float 0.)) "other actor unaffected" 100.
    (List.hd (Pmem.Simclock.actors clock)).Pmem.Simclock.a_now

(* --- Lock contention model ------------------------------------------ *)

let test_lock_charges_wait () =
  let env = Util.make_env ~capacity:(1024 * 1024) () in
  let l = Pmem.Lock.create "l" in
  let a = Pmem.Env.new_actor env ~name:"a" in
  let b = Pmem.Env.new_actor env ~name:"b" in
  (* actor a holds the lock over [0, 500) *)
  Pmem.Env.run_as env a (fun () ->
      Pmem.Env.with_lock env l (fun () -> Pmem.Env.cpu env 500.));
  (* actor b, dispatched at 0, must wait until 500 *)
  Pmem.Env.run_as env b (fun () ->
      Pmem.Env.with_lock env l (fun () -> Pmem.Env.cpu env 100.));
  Alcotest.(check (float 0.)) "b waited for a's critical section" 600.
    b.Pmem.Simclock.a_now;
  Alcotest.(check (float 0.)) "wait accounted" 500.
    env.Pmem.Env.stats.Pmem.Stats.lock_wait_ns;
  Alcotest.(check (float 0.)) "wait charged to b" 500.
    b.Pmem.Simclock.a_lock_wait_ns

let test_lock_inert_single_actor () =
  let env = Util.make_env ~capacity:(1024 * 1024) () in
  let l = Pmem.Lock.create "l" in
  Pmem.Env.with_lock env l (fun () -> Pmem.Env.cpu env 500.);
  (* a single-actor clock is monotone, but even a rewound clock (as
     [in_background] produces) must charge nothing without a second actor *)
  Pmem.Simclock.set_now env.Pmem.Env.clock 0.;
  Pmem.Env.with_lock env l (fun () -> ());
  Alcotest.(check (float 0.)) "no contention charge" 0.
    env.Pmem.Env.stats.Pmem.Stats.lock_wait_ns

(* --- Scheduler ------------------------------------------------------ *)

let test_min_clock_dispatch () =
  let env = Util.make_env ~capacity:(1024 * 1024) () in
  let s = Sched.create env in
  let order = ref [] in
  let mk name cost nops =
    Sched.spawn s ~name ~step:(fun c i ->
        if i >= nops then false
        else begin
          order := (c.Sched.c_name, i) :: !order;
          Pmem.Env.cpu env cost;
          true
        end)
  in
  let _a = mk "a" 10. 3 in
  let _b = mk "b" 25. 2 in
  Sched.run s;
  (* a@0 (tie, lower id), b@0, a@10, a@20, b@25, then exhaustion probes *)
  Alcotest.(check (list (pair string int)))
    "min-clock order, ties by id"
    [ ("a", 0); ("b", 0); ("a", 1); ("a", 2); ("b", 1) ]
    (List.rev !order);
  Alcotest.(check int) "total ops" 5 (Sched.total_ops s);
  Alcotest.(check (float 0.)) "makespan = slowest client" 50. (Sched.makespan s)

(* The event heap must be a pure drop-in for the reference min-scan: same
   dispatch trace, same makespan, same per-client op counts. Two workload
   shapes — heterogeneous costs, and tie-heavy bursts that stress the
   client-id tiebreak — across seeds and fleet sizes. *)
let test_heap_matches_reference () =
  let build_staircase seed env s n =
    for i = 0 to n - 1 do
      let rng = Workloads.Rng.create (seed + (i * 7919)) in
      let nops = 3 + (i mod 5) in
      ignore
        (Sched.spawn s
           ~name:(Printf.sprintf "c%d" i)
           ~step:(fun _ j ->
             if j >= nops then false
             else begin
               Pmem.Env.cpu env (50. +. float_of_int (Workloads.Rng.int rng 200));
               true
             end))
    done
  in
  let build_bursty seed env s n =
    for i = 0 to n - 1 do
      let rng = Workloads.Rng.create (seed + (i * 104729)) in
      ignore
        (Sched.spawn s
           ~name:(Printf.sprintf "c%d" i)
           ~step:(fun _ j ->
             if j >= 6 then false
             else begin
               (* zero-cost steps leave many clients tied on one clock *)
               if Workloads.Rng.bool rng then Pmem.Env.cpu env 1000.;
               true
             end))
    done
  in
  let fingerprint runner build seed n =
    let env = Util.make_env ~capacity:(1024 * 1024) () in
    let s = Sched.create env in
    build seed env s n;
    runner s;
    ( Sched.trace_hash s,
      Sched.makespan s,
      List.map (fun c -> c.Sched.ops_done) (Sched.clients s) )
  in
  List.iter
    (fun (wname, build) ->
      List.iter
        (fun seed ->
          List.iter
            (fun n ->
              let h1, m1, o1 = fingerprint Sched.run build seed n in
              let h2, m2, o2 = fingerprint Sched.run_reference build seed n in
              let label fmt =
                Printf.sprintf "%s seed=%d n=%d %s" wname seed n fmt
              in
              Alcotest.(check int) (label "trace hash") h2 h1;
              Alcotest.(check (float 0.)) (label "makespan") m2 m1;
              Alcotest.(check (list int)) (label "per-client ops") o2 o1)
            [ 1; 2; 4; 8; 16 ])
        [ 1; 0xBEEF ])
    [ ("staircase", build_staircase); ("bursty", build_bursty) ]

let test_spawn_many_clients () =
  let env = Util.make_env ~capacity:(1024 * 1024) () in
  let s = Sched.create env in
  let n = 2048 in
  for i = 0 to n - 1 do
    ignore
      (Sched.spawn s
         ~name:(Printf.sprintf "c%d" i)
         ~step:(fun _ j ->
           if j >= 1 then false
           else begin
             Pmem.Env.cpu env 10.;
             true
           end))
  done;
  Sched.run s;
  Alcotest.(check int) "all clients dispatched" n (Sched.total_ops s);
  Alcotest.(check int) "client list intact" n (List.length (Sched.clients s))

let test_scheduler_deterministic () =
  let go () =
    let r =
      Harness.Multiclient.run Harness.Fs_config.Splitfs_posix ~nclients:4
    in
    (r.Harness.Multiclient.makespan_ns, r.Harness.Multiclient.trace_hash,
     r.Harness.Multiclient.total_ops)
  in
  let m1, h1, o1 = go () in
  let m2, h2, o2 = go () in
  Alcotest.(check (float 0.)) "identical simulated makespan" m1 m2;
  Alcotest.(check int) "identical interleaving (trace hash)" h1 h2;
  Alcotest.(check int) "identical op count" o1 o2

(* --- Contention end to end ------------------------------------------ *)

let test_single_client_no_contention () =
  let r = Harness.Multiclient.run Harness.Fs_config.Ext4_dax ~nclients:1 in
  Alcotest.(check (float 0.)) "one client: no lock waits" 0.
    r.Harness.Multiclient.lock_wait_ns;
  Alcotest.(check (float 0.)) "one client: no bandwidth waits" 0.
    r.Harness.Multiclient.bw_wait_ns

let test_contention_appears () =
  let r = Harness.Multiclient.run Harness.Fs_config.Ext4_dax ~nclients:8 in
  Alcotest.(check bool) "8 ext4 clients contend on the journal lock" true
    (r.Harness.Multiclient.lock_wait_ns > 0.);
  Alcotest.(check bool) "8 ext4 clients contend on PM bandwidth" true
    (r.Harness.Multiclient.bw_wait_ns > 0.)

let test_splitfs_scales_over_ext4 () =
  let split =
    Harness.Multiclient.run Harness.Fs_config.Splitfs_posix ~nclients:8
  in
  let ext4 = Harness.Multiclient.run Harness.Fs_config.Ext4_dax ~nclients:8 in
  let ratio =
    split.Harness.Multiclient.kops_per_s /. ext4.Harness.Multiclient.kops_per_s
  in
  if ratio < 2. then
    Alcotest.failf
      "SplitFS(posix) aggregate at 8 clients is only %.2fx ext4 DAX (need >= 2x)"
      ratio

let test_scaling_improves_with_clients () =
  let run n =
    (Harness.Multiclient.run Harness.Fs_config.Splitfs_posix ~nclients:n)
      .Harness.Multiclient.kops_per_s
  in
  let t1 = run 1 and t8 = run 8 in
  if not (t8 > t1 *. 1.5) then
    Alcotest.failf "aggregate throughput barely scales: 1 client %.1f, 8 clients %.1f"
      t1 t8

(* --- Multi-tenant scale runs ---------------------------------------- *)

let test_scale_run_deterministic () =
  let go () =
    let r =
      Harness.Multiclient.run_scale
        ~cfg:
          {
            Workloads.Multitenant.default_cfg with
            Workloads.Multitenant.ops_per_actor = 12;
          }
        Harness.Fs_config.Splitfs_posix ~nactors:64
    in
    ( r.Harness.Multiclient.sr_trace_hash,
      r.Harness.Multiclient.sr_makespan_ns,
      r.Harness.Multiclient.sr_total_ops )
  in
  let h1, m1, o1 = go () in
  let h2, m2, o2 = go () in
  Alcotest.(check int) "identical interleaving" h1 h2;
  Alcotest.(check (float 0.)) "identical makespan" m1 m2;
  Alcotest.(check int) "identical op count" o1 o2;
  Alcotest.(check bool) "fleet did work" true (o1 > 64 * 12)

(* --- Crashcheck under concurrency ----------------------------------- *)

let test_concurrent_crashcheck () =
  List.iter
    (fun mode ->
      let r =
        Crashcheck.Concurrent.check_mode ~samples:60 ~seed:0x51ED ~nops:12 mode
      in
      List.iter
        (fun (c, f, reason) ->
          Alcotest.failf "mode %s client %d file %d: %s"
            (Splitfs.Config.mode_to_string mode)
            c f reason)
        r.Crashcheck.Concurrent.c_violations)
    [ Splitfs.Config.Posix; Splitfs.Config.Sync; Splitfs.Config.Strict ]

let suite =
  [
    tc "actor clocks independent" `Quick test_actor_clocks;
    tc "lock charges deterministic wait" `Quick test_lock_charges_wait;
    tc "lock inert without second actor" `Quick test_lock_inert_single_actor;
    tc "scheduler dispatches min clock first" `Quick test_min_clock_dispatch;
    tc "event heap matches reference min-scan" `Quick test_heap_matches_reference;
    tc "spawn scales to thousands of clients" `Quick test_spawn_many_clients;
    tc "multi-client run is deterministic" `Quick test_scheduler_deterministic;
    tc "multi-tenant scale run is deterministic" `Quick test_scale_run_deterministic;
    tc "single client sees no contention" `Quick test_single_client_no_contention;
    tc "contention appears at 8 clients" `Quick test_contention_appears;
    tc "splitfs >= 2x ext4 at 8 clients" `Quick test_splitfs_scales_over_ext4;
    tc "aggregate throughput scales" `Quick test_scaling_improves_with_clients;
    tc "2-client interleaved crashcheck" `Slow test_concurrent_crashcheck;
  ]
