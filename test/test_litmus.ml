(** The litmus corpus (DESIGN.md §5i): Ferrite-style crash patterns run
    exhaustively on every stack, with exact crash-state counts pinned;
    fence-site coverage; and the fence minimizer's verdicts, including a
    pinned REQUIRED counterexample and a pinned REDUNDANT exhaustive
    proof. *)

let tc = Alcotest.test_case

module L = Crashcheck.Litmus
module M = Crashcheck.Minimize

(* ---- exhaustive state counts, pinned per (pattern, stack) ----------- *)

(* Counts in [all_stacks] order: ext4-dax, pmfs, nova-relaxed,
   splitfs-posix, splitfs-sync, splitfs-strict, splitfs-fams. These are
   the *entire* crash spaces — any change to fence placement, journal
   traffic or the persist-order model drifts a count here before it
   manifests as a consistency bug. The SplitFS counts reflect the fences
   removed after the minimizer's REDUNDANT proofs (EXPERIMENTS.md,
   PR 7); the six pre-fams columns are unchanged since then — the fams
   mode and the CoW machinery must not perturb the other stacks. *)
let pinned_states =
  [
    ("create-rename", [ 6; 42; 23; 6; 23; 23; 25 ]);
    ("two-appends", [ 5; 11; 13; 4; 9; 9; 16 ]);
    ("chrome", [ 5; 42; 23; 4; 18; 18; 32 ]);
    ("replace-truncate", [ 8; 22; 15; 8; 24; 18; 20 ]);
    ("wal-commit", [ 4; 14; 11; 6; 271; 271; 2065 ]);
    ("relink-publish", [ 8; 16; 19; 22; 156; 156; 1064 ]);
    ("msync-publish", [ 15; 29; 33; 46; 44; 42; 77 ]);
    ("snapshot-cow", [ 19; 60; 43; 18; 26; 42; 46 ]);
  ]

let check_pattern name () =
  let p =
    match L.find_pattern name with
    | Some p -> p
    | None -> Alcotest.fail ("no litmus pattern " ^ name)
  in
  List.iter2
    (fun stack expected ->
      let r = L.run_pattern p stack in
      let where = name ^ "/" ^ L.stack_name stack in
      Alcotest.(check (list string))
        (where ^ ": no violations") []
        (List.map (Fmt.str "%a" L.pp_violation) r.L.r_violations);
      Alcotest.(check int) (where ^ ": crash states") expected r.L.r_states)
    L.all_stacks (List.assoc name pinned_states)

let test_aux_configs () =
  let runs = L.run_aux () in
  Alcotest.(check int) "aux configs" 2 (List.length runs);
  List.iter
    (fun (r : L.run) ->
      Alcotest.(check (list string))
        (r.L.r_config ^ ": no violations") []
        (List.map (Fmt.str "%a" L.pp_violation) r.L.r_violations);
      Alcotest.(check int)
        (r.L.r_config ^ ": crash states")
        (match r.L.r_config with
        | "splitfs-sync-degraded" -> 9
        | _ -> 7)
        r.L.r_states;
      (* kernel-path writes: DRAM metadata survives, data tails may
         zero — the aux configs are held to the DAX contract, not the
         staged-append Sync one *)
      Alcotest.(check string)
        (r.L.r_config ^ ": contract") "sync-dax"
        (L.contract_name r.L.r_contract))
    runs

(* ---- fence-site coverage -------------------------------------------- *)

(* Every registered fence site must fire somewhere in the corpus (or at
   the mounts the corpus performs — oplog:init is mount-time only):
   a site no workload reaches is a site the minimizer cannot vouch
   for. *)
let test_fence_site_coverage () =
  Alcotest.(check int) "registered sites" 17
    (List.length (Pmem.Device.fence_sites ()));
  let coverage = L.site_coverage () in
  Alcotest.(check int) "coverage rows" 17 (List.length coverage);
  List.iter
    (fun (_site, name, hits) ->
      Alcotest.(check bool) (name ^ " exercised") true (hits > 0))
    coverage

(* ---- minimizer verdicts, pinned ------------------------------------- *)

let combo name =
  match List.find_opt (fun (c : M.combo) -> c.M.c_name = name) (M.all_combos ())
  with
  | Some c -> c
  | None -> Alcotest.fail ("no litmus combo " ^ name)

let site name =
  match
    List.find_opt (fun (_, n) -> n = name) (Pmem.Device.fence_sites ())
  with
  | Some (s, _) -> s
  | None -> Alcotest.fail ("no fence site " ^ name)

(* Eliding the per-append persist barrier in strict mode must break the
   two-appends pattern: with the fence gone, the second append's oplog
   commit can persist while the first append's staged data line is
   still lost — B-without-A, exactly the prefix-append guarantee the
   Atomic contract pins. The counterexample shrinks to a minimal set of
   lost lines. *)
let test_strict_write_required () =
  match
    M.classify ~combos:[ combo "two-appends/splitfs-strict" ]
      (site "usplit:strict-write")
  with
  | M.Required { q_combo; q_violation } ->
      Alcotest.(check string) "combo" "two-appends/splitfs-strict" q_combo;
      Alcotest.(check bool) "shrunk to a nonempty minimal core" true
        (q_violation.L.vl_survivors <> []);
      Alcotest.(check bool) "counterexample names the file" true
        (q_violation.L.vl_path = Some "/log")
  | v ->
      Alcotest.fail ("expected REQUIRED for usplit:strict-write, got "
                     ^ M.verdict_name v)

(* The strict-truncate fence is double-covered on this corpus (the
   following fsync fences commit the same oplog lines), so eliding it
   and exhaustively re-exploring every crash state of the one combo it
   fires in finds no violation — a proof, relative to the corpus, with
   its size pinned. *)
let test_strict_truncate_redundant () =
  match
    M.classify ~combos:[ combo "replace-truncate/splitfs-strict" ]
      (site "usplit:strict-truncate")
  with
  | M.Redundant { q_combos; q_states } ->
      Alcotest.(check int) "firing combos" 1 q_combos;
      Alcotest.(check int) "states exhaustively re-checked" 24 q_states
  | v ->
      Alcotest.fail ("expected REDUNDANT for usplit:strict-truncate, got "
                     ^ M.verdict_name v)

(* The fence before the msync commit record orders staged-data lines
   ahead of the record itself. Elide it and even create-rename on the
   fams stack breaks: the commit record can persist while a staged line
   for the data it promotes is still lost — recovery then publishes a
   torn image, violating the pre-or-post-msync contract. *)
let test_msync_pre_required () =
  match
    M.classify ~combos:[ combo "create-rename/splitfs-fams" ]
      (site "usplit:msync-pre")
  with
  | M.Required { q_combo; q_violation } ->
      Alcotest.(check string) "combo" "create-rename/splitfs-fams" q_combo;
      Alcotest.(check bool) "shrunk to a nonempty minimal core" true
        (q_violation.L.vl_survivors <> [])
  | v ->
      Alcotest.fail ("expected REQUIRED for usplit:msync-pre, got "
                     ^ M.verdict_name v)

(* The CoW unshare fence orders the copied block's lines ahead of the
   extent-tree switch. The extent tree is DRAM metadata that survives a
   simulated crash, so without the fence the switch takes effect while
   the copy's lines can still be lost — the snapshot-cow pattern then
   reads back zeros in the unwritten region. The snapshot-cow pattern
   was what surfaced this site in the first place. *)
let test_cow_unshare_required () =
  match
    M.classify ~combos:[ combo "snapshot-cow/splitfs-posix" ]
      (site "ext4:cow-unshare")
  with
  | M.Required { q_combo; _ } ->
      Alcotest.(check string) "combo" "snapshot-cow/splitfs-posix" q_combo
  | v ->
      Alcotest.fail ("expected REQUIRED for ext4:cow-unshare, got "
                     ^ M.verdict_name v)

(* Harness self-test: with the msync commit record disabled the same
   exhaustive exploration MUST flag a torn msync. A harness that stays
   green with the publish protocol broken is vouching for nothing. *)
let test_catches_torn_msync () =
  Alcotest.(check bool) "torn-msync bug caught" true (L.catches_torn_msync ())

(* A site that only fires during mount initialisation is outside every
   crash window: no verdict, the fence stays. *)
let test_oplog_init_unexercised () =
  match M.classify ~combos:[ combo "two-appends/splitfs-strict" ]
          (site "oplog:init")
  with
  | M.Unexercised -> ()
  | v -> Alcotest.fail ("expected unexercised, got " ^ M.verdict_name v)

let suite =
  [
    tc "create-rename: exhaustive, pinned" `Quick
      (check_pattern "create-rename");
    tc "two-appends: exhaustive, pinned" `Quick (check_pattern "two-appends");
    tc "chrome append-rename: exhaustive, pinned" `Quick
      (check_pattern "chrome");
    tc "replace-via-truncate: exhaustive, pinned" `Quick
      (check_pattern "replace-truncate");
    tc "wal-commit: exhaustive, pinned" `Quick (check_pattern "wal-commit");
    tc "relink-publish: exhaustive, pinned" `Quick
      (check_pattern "relink-publish");
    tc "msync-publish: exhaustive, pinned" `Quick
      (check_pattern "msync-publish");
    tc "snapshot-cow: exhaustive, pinned" `Quick (check_pattern "snapshot-cow");
    tc "aux configs: degraded and no-staging" `Quick test_aux_configs;
    tc "every fence site exercised" `Quick test_fence_site_coverage;
    tc "strict-write fence REQUIRED (pinned counterexample)" `Quick
      test_strict_write_required;
    tc "strict-truncate fence REDUNDANT (exhaustive proof)" `Quick
      test_strict_truncate_redundant;
    tc "msync-pre fence REQUIRED (pinned counterexample)" `Quick
      test_msync_pre_required;
    tc "cow-unshare fence REQUIRED (pinned counterexample)" `Quick
      test_cow_unshare_required;
    tc "torn-msync canary: broken protocol is caught" `Quick
      test_catches_torn_msync;
    tc "mount-time site unexercised" `Quick test_oplog_init_unexercised;
  ]
