(** Block allocator: unit tests and allocation-invariant properties. *)

open Kernelfs

let tc = Alcotest.test_case

let test_basic_alloc_free () =
  let a = Alloc.create ~nblocks:100 () in
  let start, n = Alloc.alloc_extent a ~goal:(-1) ~len:10 in
  Util.check_int "got 10 contiguous" 10 n;
  Util.check_int "free count" 90 (Alloc.free_blocks a);
  Alloc.free_extent a ~start ~len:n;
  Util.check_int "freed" 100 (Alloc.free_blocks a)

let test_goal_preference () =
  let a = Alloc.create ~nblocks:100 () in
  let s1, _ = Alloc.alloc_extent a ~goal:(-1) ~len:5 in
  (* goal right after the previous extent should be honoured *)
  let s2, _ = Alloc.alloc_extent a ~goal:(s1 + 5) ~len:5 in
  Util.check_int "contiguous with goal" (s1 + 5) s2

let test_enospc () =
  let a = Alloc.create ~nblocks:8 () in
  let _ = Alloc.alloc_extent a ~goal:(-1) ~len:8 in
  Alcotest.check_raises "full device"
    (Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, "alloc_extent"))
    (fun () -> ignore (Alloc.alloc_extent a ~goal:(-1) ~len:1))

let test_partial_extent () =
  let a = Alloc.create ~nblocks:16 () in
  let _ = Alloc.alloc_extent a ~goal:0 ~len:8 in
  (* only 8 contiguous remain; asking for 12 yields a shorter run *)
  let _, n = Alloc.alloc_extent a ~goal:(-1) ~len:12 in
  Util.check_int "short run" 8 n

let test_alloc_many () =
  let a = Alloc.create ~nblocks:64 () in
  (* fragment: allocate alternating blocks *)
  let held = ref [] in
  for i = 0 to 15 do
    let s, n = Alloc.alloc_extent a ~goal:(i * 2) ~len:1 in
    held := (s, n) :: !held
  done;
  let extents = Alloc.alloc_many a ~goal:(-1) ~len:20 in
  Util.check_int "total blocks" 20
    (List.fold_left (fun acc (_, n) -> acc + n) 0 extents)

let test_aligned () =
  let a = Alloc.create ~nblocks:2048 () in
  let _ = Alloc.alloc_extent a ~goal:(-1) ~len:3 in
  match Alloc.alloc_aligned a ~align:512 ~len:512 with
  | Some start ->
      Util.check_int "aligned" 0 (start mod 512);
      Alcotest.(check bool) "allocated" true (Alloc.is_allocated a start)
  | None -> Alcotest.fail "expected an aligned region"

let test_aligned_fragmentation () =
  let a = Alloc.create ~nblocks:1024 () in
  (* poison every 512-aligned block so no aligned 512-run exists *)
  let s0, _ = Alloc.alloc_extent a ~goal:0 ~len:1 in
  let s1, _ = Alloc.alloc_extent a ~goal:512 ~len:1 in
  Util.check_int "s0" 0 s0;
  Util.check_int "s1" 512 s1;
  Alcotest.(check (option int)) "no aligned run" None
    (Alloc.alloc_aligned a ~align:512 ~len:512)

let test_double_free_detected () =
  let a = Alloc.create ~nblocks:16 () in
  let s, n = Alloc.alloc_extent a ~goal:(-1) ~len:4 in
  Alloc.free_extent a ~start:s ~len:n;
  Alcotest.check_raises "double free"
    (Invalid_argument "Alloc.free_extent: double free") (fun () ->
      Alloc.free_extent a ~start:s ~len:n)

let test_fragmentation_metric () =
  let a = Alloc.create ~nblocks:64 () in
  Alcotest.(check (float 0.001)) "fresh device unfragmented" 0.
    (Alloc.fragmentation a ~run:16);
  (* carve holes of size 1 *)
  for i = 0 to 31 do
    ignore (Alloc.alloc_extent a ~goal:(i * 2) ~len:1)
  done;
  Alcotest.(check bool) "fully fragmented for runs of 2" true
    (Alloc.fragmentation a ~run:2 = 1.0)

(* --- Sharded allocation groups -------------------------------------- *)

let test_default_is_single_shard () =
  let a = Alloc.create ~nblocks:100 () in
  Util.check_int "one shard by default" 1 (Alloc.nshards a);
  Util.check_int "no steals" 0 (Alloc.steals a)

let test_cross_shard_steal () =
  (* 4 shards of 16 blocks; without an env every allocation homes at
     shard 0, so filling it forces the ring to steal from shard 1 *)
  let a = Alloc.create ~shards:4 ~nblocks:64 () in
  Util.check_int "four shards" 4 (Alloc.nshards a);
  let s0, n0 = Alloc.alloc_extent a ~goal:(-1) ~len:16 in
  Util.check_int "home shard fills from its base" 0 s0;
  Util.check_int "whole group" 16 n0;
  let s1, _ = Alloc.alloc_extent a ~goal:(-1) ~len:4 in
  Alcotest.(check bool) "stolen from the next group" true (s1 >= 16 && s1 < 32);
  Util.check_int "steal counted" 1 (Alloc.steals a)

let test_goal_overrides_affinity () =
  let a = Alloc.create ~shards:4 ~nblocks:64 () in
  (* a goal inside shard 2 routes there directly: contiguity with the
     file's previous extent beats group affinity, and is not a steal *)
  let s, _ = Alloc.alloc_extent a ~goal:40 ~len:4 in
  Util.check_int "placed at the goal" 40 s;
  Util.check_int "not a steal" 0 (Alloc.steals a)

let test_extents_never_cross_shards () =
  let a = Alloc.create ~shards:4 ~nblocks:64 () in
  let _ = Alloc.alloc_extent a ~goal:12 ~len:4 in
  (* 12 contiguous free blocks remain below the boundary at 16; a larger
     request must be clipped there rather than spill into shard 1 *)
  let s, n = Alloc.alloc_extent a ~goal:0 ~len:16 in
  Util.check_int "starts at base" 0 s;
  Util.check_int "clipped at the group boundary" 12 n

let test_free_and_retire_route_to_owning_shard () =
  let a = Alloc.create ~shards:4 ~nblocks:64 () in
  let s, n = Alloc.alloc_extent a ~goal:20 ~len:4 in
  Alloc.free_extent a ~start:s ~len:n;
  Util.check_int "all free again" 64 (Alloc.free_blocks a);
  (* the shard's first-free hint must roll back so the block is findable *)
  let s2, _ = Alloc.alloc_extent a ~goal:20 ~len:4 in
  Util.check_int "freed block reallocated" s s2;
  Alloc.retire a ~start:48 ~len:8;
  Util.check_int "retired blocks leave the free pool" (64 - 4 - 8)
    (Alloc.free_blocks a);
  (* shard 3 has 8 free blocks left; a full-group request gets the rest *)
  let s3, n3 = Alloc.alloc_extent a ~goal:56 ~len:16 in
  Util.check_int "skips the retired run" 56 s3;
  Util.check_int "only the surviving blocks" 8 n3

let test_no_double_alloc_across_shards_1k_actors () =
  (* 1000 concurrent actors with per-actor group affinity hammering one
     16-shard allocator: every handed-out block must be unique, and the
     books must balance at the end *)
  let env = Util.make_env ~capacity:(64 * 1024 * 1024) () in
  let a = Alloc.create ~env ~shards:16 ~nblocks:8192 () in
  let s = Sched.create env in
  let owned = Hashtbl.create 4096 in
  let ok = ref true in
  for i = 0 to 999 do
    ignore
      (Sched.spawn s
         ~name:(Printf.sprintf "alloc%d" i)
         ~step:(fun _ j ->
           if j >= 2 then false
           else begin
             Pmem.Env.cpu env (float_of_int (1 + (i mod 7)) *. 10.);
             let st, n = Alloc.alloc_extent a ~goal:(-1) ~len:3 in
             for b = st to st + n - 1 do
               if Hashtbl.mem owned b then ok := false;
               Hashtbl.replace owned b ()
             done;
             true
           end))
  done;
  Sched.run s;
  Alcotest.(check bool) "no block handed out twice" true !ok;
  Util.check_int "books balance" (Hashtbl.length owned) (Alloc.used_blocks a)

let prop_sharded_matches_single_shard_counts =
  QCheck.Test.make
    ~name:"sharded allocator conserves blocks like the single shard" ~count:60
    QCheck.(make Gen.(list_size (int_range 1 40) (int_range 1 10)))
    (fun sizes ->
      let run shards =
        let a = Alloc.create ~shards ~nblocks:256 () in
        (try
           List.iter (fun len -> ignore (Alloc.alloc_many a ~goal:(-1) ~len)) sizes
         with Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) -> ());
        Alloc.used_blocks a
      in
      (* placement differs across groups, but the total account must not *)
      run 1 = run 4)

let prop_no_double_allocation =
  QCheck.Test.make ~name:"allocator never hands out a block twice" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 60) (int_range 1 12)))
    (fun sizes ->
      let a = Alloc.create ~nblocks:256 () in
      let owned = Hashtbl.create 64 in
      let ok = ref true in
      let enospc = ref false in
      (try
         List.iter
           (fun len ->
             let extents = Alloc.alloc_many a ~goal:(-1) ~len in
             List.iter
               (fun (s, n) ->
                 for b = s to s + n - 1 do
                   if Hashtbl.mem owned b then ok := false;
                   Hashtbl.replace owned b ()
                 done)
               extents)
           sizes
       with Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) ->
         (* a failing alloc_many may have grabbed some extents before
            running out, so the used-count check no longer applies *)
         enospc := true);
      !ok
      && (!enospc || Alloc.used_blocks a = Hashtbl.length owned))

let prop_free_then_alloc_reuses =
  QCheck.Test.make ~name:"freed blocks are reusable" ~count:50
    QCheck.(int_range 1 64)
    (fun len ->
      let a = Alloc.create ~nblocks:64 () in
      let extents = Alloc.alloc_many a ~goal:(-1) ~len in
      List.iter (fun (s, n) -> Alloc.free_extent a ~start:s ~len:n) extents;
      Alloc.free_blocks a = 64)

let suite =
  [
    tc "alloc and free" `Quick test_basic_alloc_free;
    tc "goal preference" `Quick test_goal_preference;
    tc "ENOSPC" `Quick test_enospc;
    tc "partial extent on fragmentation" `Quick test_partial_extent;
    tc "alloc_many over fragmentation" `Quick test_alloc_many;
    tc "aligned allocation" `Quick test_aligned;
    tc "aligned allocation fails when fragmented" `Quick test_aligned_fragmentation;
    tc "double free detected" `Quick test_double_free_detected;
    tc "fragmentation metric" `Quick test_fragmentation_metric;
    tc "default is a single shard" `Quick test_default_is_single_shard;
    tc "cross-shard steal on group ENOSPC" `Quick test_cross_shard_steal;
    tc "goal overrides group affinity" `Quick test_goal_overrides_affinity;
    tc "extents never cross shard boundaries" `Quick test_extents_never_cross_shards;
    tc "free and retire route to the owning shard" `Quick
      test_free_and_retire_route_to_owning_shard;
    tc "no double allocation under 1k actors" `Quick
      test_no_double_alloc_across_shards_1k_actors;
    QCheck_alcotest.to_alcotest prop_sharded_matches_single_shard_counts;
    QCheck_alcotest.to_alcotest prop_no_double_allocation;
    QCheck_alcotest.to_alcotest prop_free_then_alloc_reuses;
  ]
