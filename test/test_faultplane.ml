(** PR 5 fault plane: deterministic fault injection, graceful
    degradation, the scrubber patrol, bit-rot recovery, and the
    faultcheck campaign with its differential oracle. *)

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Fault-plane unit semantics                                           *)
(* ------------------------------------------------------------------ *)

let test_transient_vs_sticky () =
  let f = Faults.create () in
  Faults.inject f (Faults.rfault Faults.Journal ~from:1 (Faults.Transient 2));
  Util.check_bool "call 0 below from" false (Faults.check f Faults.Journal);
  Util.check_bool "call 1 fires" true (Faults.check f Faults.Journal);
  Faults.new_epoch f;
  Util.check_bool "still within 2 epochs" true (Faults.check f Faults.Journal);
  Faults.new_epoch f;
  Util.check_bool "healed after 2 epochs" false (Faults.check f Faults.Journal);
  Faults.reset f;
  Faults.inject f (Faults.rfault Faults.Journal ~from:0 Faults.Sticky);
  for _ = 1 to 5 do
    Util.check_bool "sticky always fires" true (Faults.check f Faults.Journal);
    Faults.new_epoch f
  done;
  Util.check_int "firings counted since reset" 5 (Faults.counts f).Faults.injected

let test_origin_scoping () =
  let f = Faults.create () in
  Faults.inject f
    (Faults.rfault ~origin:Faults.Staging_prealloc Faults.Alloc ~from:0
       Faults.Sticky);
  Util.check_bool "foreground alloc unaffected" false (Faults.check f Faults.Alloc);
  Util.check_bool "staging prealloc hit" true
    (Faults.with_origin f Faults.Staging_prealloc (fun () ->
         Faults.check f Faults.Alloc));
  Util.check_bool "scope is dynamic extent only" false
    (Faults.check f Faults.Alloc)

let test_backoff_schedule () =
  Alcotest.(check (list (float 0.)))
    "capped exponential"
    [ 1000.; 2000.; 4000.; 8000.; 16000.; 16000. ]
    (List.map (fun a -> Faults.backoff_ns ~attempt:a) [ 1; 2; 3; 4; 5; 6 ])

let test_errno_printer () =
  Util.check_str "printer names layer" "EIO \"k-split: swap_extents injected EIO\""
    (Fmt.str "%a" Fsapi.Errno.pp
       (Fsapi.Errno.EIO, "k-split: swap_extents injected EIO"));
  Util.check_str "enospc rendering" "ENOSPC \"k-split alloc: injected fault\""
    (Fmt.str "%a" Fsapi.Errno.pp
       (Fsapi.Errno.ENOSPC, "k-split alloc: injected fault"))

(* ------------------------------------------------------------------ *)
(* Media faults on the device                                           *)
(* ------------------------------------------------------------------ *)

let test_poison_load_store_quarantine () =
  let env = Util.make_env () in
  let dev = env.Pmem.Env.dev in
  let addr = 4096 in
  let data = Bytes.make 64 'p' in
  Pmem.Device.store_nt dev ~addr data ~off:0 ~len:64;
  Pmem.Device.fence dev;
  Pmem.Device.poison_line dev ~addr;
  let buf = Bytes.create 64 in
  (match Pmem.Device.load dev ~addr buf ~off:0 ~len:64 with
  | () -> Alcotest.fail "expected Poisoned on load from media"
  | exception Faults.Poisoned a -> Util.check_int "poison addr" addr a);
  Util.check_int "last_poison points at the line" addr
    (Pmem.Device.last_poison dev);
  (* a full-line NT store heals the poison (new data, fresh ECC) *)
  Pmem.Device.store_nt dev ~addr data ~off:0 ~len:64;
  Pmem.Device.load dev ~addr buf ~off:0 ~len:64;
  Util.check_bool "store healed the line" false (Pmem.Device.is_poisoned dev ~addr);
  (* quarantine zeroes and marks the line instead *)
  Pmem.Device.poison_line dev ~addr;
  Pmem.Device.quarantine dev ~addr ~len:1;
  Pmem.Device.load dev ~addr buf ~off:0 ~len:64;
  Util.check_str "quarantined line reads zeros" (String.make 64 '\000')
    (Bytes.to_string buf);
  Util.check_bool "marked quarantined" true (Pmem.Device.is_quarantined dev ~addr)

let test_crash_keeps_media_state_reset_clears () =
  (* satellite: media damage survives power cycles; reset_faults is the
     explicit factory-fresh escape hatch *)
  let env = Util.make_env () in
  let dev = env.Pmem.Env.dev in
  let data = Bytes.make 4096 'w' in
  for _ = 1 to 5 do
    Pmem.Device.store_nt dev ~addr:8192 data ~off:0 ~len:4096
  done;
  Pmem.Device.fence dev;
  Pmem.Device.poison_line dev ~addr:8192;
  Pmem.Device.quarantine dev ~addr:(8192 + 64) ~len:1;
  let wear = Pmem.Device.total_wear dev in
  Util.check_bool "wear accrued" true (wear > 0);
  Pmem.Device.crash dev;
  Util.check_int "crash keeps wear" wear (Pmem.Device.total_wear dev);
  Util.check_bool "crash keeps poison" true
    (Pmem.Device.is_poisoned dev ~addr:8192);
  Util.check_bool "crash keeps quarantine" true
    (Pmem.Device.is_quarantined dev ~addr:(8192 + 64));
  Pmem.Device.reset_faults dev;
  Util.check_int "reset clears wear" 0 (Pmem.Device.total_wear dev);
  Util.check_bool "reset clears poison" false
    (Pmem.Device.is_poisoned dev ~addr:8192);
  Util.check_int "reset clears quarantine" 0 (Pmem.Device.quarantined_count dev)

(* ------------------------------------------------------------------ *)
(* Degradation paths                                                    *)
(* ------------------------------------------------------------------ *)

let test_journal_transient_retried () =
  let env, _kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  Fsapi.Fs.write_file fs "/j" "before";
  let f = env.Pmem.Env.faults in
  Faults.inject f (Faults.rfault Faults.Journal ~from:0 (Faults.Transient 2));
  let fd = fs.Fsapi.Fs.open_ "/j2" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "after the transient";
  fs.Fsapi.Fs.fsync fd;
  Util.check_str "write survived the transient" "after the transient"
    (Fsapi.Fs.read_file fs "/j2");
  let c = Faults.counts f in
  Util.check_bool "commit retried" true (c.Faults.journal_retries > 0);
  Util.check_int "no errno surfaced" 0 c.Faults.errno

let test_journal_sticky_errno () =
  let env, _kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let fd = fs.Fsapi.Fs.open_ "/s" Fsapi.Flags.create_rw in
  Faults.inject env.Pmem.Env.faults
    (Faults.rfault Faults.Journal ~from:0 Faults.Sticky);
  (match fs.Fsapi.Fs.fsync fd with
  | () -> Alcotest.fail "sticky journal fault must surface"
  | exception Fsapi.Errno.Error (Fsapi.Errno.EIO, ctx) ->
      Util.check_bool "context names jbd2" true
        (String.length ctx >= 4 && String.sub ctx 0 4 = "jbd2"));
  Util.check_bool "errno counted" true
    ((Faults.counts env.Pmem.Env.faults).Faults.errno > 0)

let test_staging_enospc_degrades () =
  (* origin-scoped sticky Alloc fault: staging pre-allocation fails, the
     write degrades to the kernel path instead of surfacing ENOSPC *)
  let cfg =
    {
      (Util.small_splitfs_cfg Splitfs.Config.Sync) with
      Splitfs.Config.staging_files = 1;
      staging_size = 4096;
    }
  in
  let env, _kfs, _sys, _u, fs = Util.make_splitfs ~cfg () in
  Faults.inject env.Pmem.Env.faults
    (Faults.rfault ~origin:Faults.Staging_prealloc Faults.Alloc ~from:0
       Faults.Sticky);
  let content = Util.pattern ~seed:7 20000 in
  Fsapi.Fs.write_file fs "/degraded" content;
  Util.check_str "degraded writes land correctly" content
    (Fsapi.Fs.read_file fs "/degraded");
  let c = Faults.counts env.Pmem.Env.faults in
  Util.check_bool "degraded-write fallback used" true (c.Faults.degraded_writes > 0);
  Util.check_int "no errno surfaced" 0 c.Faults.errno

let test_relink_transient_retried_sticky_masked () =
  let run duration =
    let env, _kfs, _sys, _u, fs =
      Util.make_splitfs ~mode:Splitfs.Config.Sync ()
    in
    let content = Util.pattern ~seed:9 20000 in
    Faults.inject env.Pmem.Env.faults
      (Faults.rfault Faults.Swap ~from:0 duration);
    Fsapi.Fs.write_file fs "/relinked" content;
    Util.check_str "content correct despite relink faults" content
      (Fsapi.Fs.read_file fs "/relinked");
    Faults.counts env.Pmem.Env.faults
  in
  let c = run (Faults.Transient 1) in
  Util.check_bool "transient: relink retried" true (c.Faults.relink_retries > 0);
  Util.check_bool "transient: success recorded" true (c.Faults.retried > 0);
  let c = run Faults.Sticky in
  Util.check_bool "sticky: copy fallback masked the fault" true
    (c.Faults.masked > 0);
  Util.check_int "sticky: no errno surfaced" 0 c.Faults.errno

let test_scrubber_migrates_and_remaps () =
  let env, kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let content = Util.pattern ~seed:11 (3 * 4096) in
  Fsapi.Fs.write_file fs "/scrubbed" content;
  let inode = Kernelfs.Ext4.namei kfs "/scrubbed" in
  (* poison one line of the middle block: patrol must move the data off *)
  let addr = Option.get (Kernelfs.Ext4.device_addr kfs inode ~off:4096) in
  let victim = Option.get (Kernelfs.Ext4.device_addr kfs inode ~off:8192) in
  Pmem.Device.poison_line env.Pmem.Env.dev ~addr:victim;
  let migrated = Kernelfs.Ext4.scrub kfs ~wear_limit:max_int in
  Util.check_bool "patrol migrated the poisoned block" true (migrated >= 1);
  Util.check_bool "block moved to a fresh address" true
    (Option.get (Kernelfs.Ext4.device_addr kfs inode ~off:8192) <> victim);
  Util.check_bool "untouched block stayed" true
    (Option.get (Kernelfs.Ext4.device_addr kfs inode ~off:4096) = addr);
  (* the poisoned line's 64 bytes are quarantined zeros at the new home;
     every other byte of the file must read back intact *)
  let got = Fsapi.Fs.read_file fs "/scrubbed" in
  Util.check_int "size preserved" (String.length content) (String.length got);
  let mismatches = ref [] in
  String.iteri
    (fun i c -> if c <> content.[i] then mismatches := i :: !mismatches)
    got;
  Util.check_bool "only the quarantined line differs (as zeros)" true
    (List.for_all
       (fun i -> i >= 8192 && i < 8192 + 64 && got.[i] = '\000')
       !mismatches);
  Util.check_bool "loss was surfaced as quarantine" true
    (Pmem.Device.quarantined_count env.Pmem.Env.dev > 0)

let test_usplit_scrub_under_live_mappings () =
  (* the U-Split stack keeps long-lived mmaps; a patrol migrating blocks
     under them must fix the cached translations (page-table analogue) *)
  let env, _kfs, _sys, u, fs = Util.make_splitfs ~mode:Splitfs.Config.Sync () in
  let content = Util.pattern ~seed:13 (4 * 4096) in
  Fsapi.Fs.write_file fs "/mapped" content;
  (* wear the file's current blocks by rewriting in place a few times *)
  let fd = fs.Fsapi.Fs.open_ "/mapped" Fsapi.Flags.rdwr in
  let buf = Bytes.of_string content in
  for _ = 1 to 3 do
    ignore (fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len:(Bytes.length buf) ~at:0);
    fs.Fsapi.Fs.fsync fd
  done;
  let migrated = Splitfs.Usplit.scrub u ~wear_limit:3 in
  Util.check_bool "patrol migrated worn blocks" true (migrated >= 1);
  Util.check_str "reads through retained mappings stay correct" content
    (Fsapi.Fs.read_file fs "/mapped");
  (* writes through the fixed-up mappings must not land on retired blocks *)
  let update = Util.pattern ~seed:14 (4 * 4096) in
  ignore
    (fs.Fsapi.Fs.pwrite fd ~buf:(Bytes.of_string update) ~boff:0
       ~len:(String.length update) ~at:0);
  fs.Fsapi.Fs.fsync fd;
  Util.check_str "post-migration writes visible" update
    (Fsapi.Fs.read_file fs "/mapped");
  ignore env

(* ------------------------------------------------------------------ *)
(* Bit-rot in the operation log                                         *)
(* ------------------------------------------------------------------ *)

(** Flip one bit of byte [byte_in_slot] of log slot [slot] directly on
    the PM device (bit-rot / undetected media corruption), then recover.
    Replay must apply exactly the entries before the corrupted slot. *)
let bitrot_case mode ~slot ~byte_in_slot () =
  let env, kfs, sys, u, fs = Util.make_splitfs ~mode () in
  let fd = fs.Fsapi.Fs.open_ "/rot" Fsapi.Flags.create_rw in
  let record i = Util.pattern ~seed:(100 + i) 300 in
  for i = 0 to 9 do
    Fsapi.Fs.write_string fs fd (record i)
  done;
  let log = Option.get (Splitfs.Usplit.oplog u) in
  let log_inode = Kernelfs.Ext4.namei kfs (Splitfs.Oplog.path log) in
  Pmem.Device.crash env.Pmem.Env.dev;
  let off = slot * Splitfs.Oplog.entry_size in
  let addr =
    Option.get (Kernelfs.Ext4.device_addr kfs log_inode ~off) + byte_in_slot
  in
  let b = Bytes.create 1 in
  Pmem.Device.load env.Pmem.Env.dev ~addr b ~off:0 ~len:1;
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  Pmem.Device.poke_persistent env.Pmem.Env.dev ~addr b ~off:0 ~len:1;
  let r = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  Util.check_bool "corruption detected as torn" true
    (r.Splitfs.Recovery.torn_entries > 0);
  (* slot 0 is the Create entry (not a replayed data op); slots 1.. are
     the appends. Exactly the appends strictly before the flipped slot
     replay. *)
  let expected_appends = max 0 (slot - 1) in
  Util.check_int "replay stops exactly at the corrupted slot" expected_appends
    r.Splitfs.Recovery.entries_replayed;
  let k = Kernelfs.Syscall.as_fsapi sys in
  let expect =
    String.concat "" (List.init expected_appends (fun i -> record i))
  in
  Util.check_str "file holds exactly the surviving prefix" expect
    (Fsapi.Fs.read_file k "/rot")

let test_bitrot_corpus () =
  (* single-bit flips across different entry fields (ino/offset words,
     length, CRC) and log positions, in both logging modes *)
  List.iter
    (fun mode ->
      List.iter
        (fun (slot, byte_in_slot) -> bitrot_case mode ~slot ~byte_in_slot ())
        [ (1, 1); (3, 8); (5, 16); (8, 24); (10, 60); (2, 33) ])
    [ Splitfs.Config.Sync; Splitfs.Config.Strict ]

let test_bitrot_posix_noop () =
  (* POSIX mode has no log to rot: recovery after corruption anywhere in
     the staging area is a clean no-op *)
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Posix () in
  Fsapi.Fs.write_file fs "/p" "posix data";
  Pmem.Device.crash env.Pmem.Env.dev;
  let r = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  Util.check_int "nothing scanned" 0 r.Splitfs.Recovery.entries_scanned;
  Util.check_int "nothing replayed" 0 r.Splitfs.Recovery.entries_replayed

let test_recovery_skips_poisoned_staging () =
  (* poison the staged source bytes of one logged append: recovery must
     quarantine the line, skip that op, and still complete *)
  let env, kfs, sys, u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  let fd = fs.Fsapi.Fs.open_ "/skip" Fsapi.Flags.create_rw in
  for i = 0 to 4 do
    Fsapi.Fs.write_string fs fd (Util.pattern ~seed:(50 + i) 256)
  done;
  Pmem.Device.crash env.Pmem.Env.dev;
  (* poison via the log's own pointer: scan it, take a data entry, and
     resolve its staging inode to a device address *)
  let log = Option.get (Splitfs.Usplit.oplog u) in
  let scan = Splitfs.Oplog.scan sys (Splitfs.Oplog.path log) in
  let poison_from_entry e =
    match e with
    | Splitfs.Oplog.Append op | Splitfs.Oplog.Overwrite op ->
        let sfile =
          (* resolve the staging inode number to its path via /proc-style
             search over the instance staging dir *)
          let dir = "/.splitfs-0" in
          let d = Kernelfs.Ext4.namei kfs dir in
          let names =
            match d.Kernelfs.Ext4.dir with
            | Some tbl -> Hashtbl.fold (fun n _ acc -> n :: acc) tbl []
            | None -> []
          in
          List.find_map
            (fun n ->
              let p = dir ^ "/" ^ n in
              match Kernelfs.Ext4.namei kfs p with
              | i when i.Kernelfs.Ext4.ino = op.Splitfs.Oplog.staging_ino ->
                  Some i
              | _ -> None
              | exception Fsapi.Errno.Error _ -> None)
            names
        in
        (match sfile with
        | Some inode ->
            let addr =
              Option.get
                (Kernelfs.Ext4.device_addr kfs inode
                   ~off:op.Splitfs.Oplog.staging_off)
            in
            Pmem.Device.poison_line env.Pmem.Env.dev ~addr;
            true
        | None -> false)
    | _ -> false
  in
  let data_entries = List.filter_map
      (fun e -> if poison_from_entry e then Some e else None)
      [ List.nth scan.Splitfs.Oplog.valid 3 ]
  in
  Util.check_int "poisoned one staged op" 1 (List.length data_entries);
  let r = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  Util.check_bool "recovery completed, skipping the poisoned op" true
    (r.Splitfs.Recovery.replay_skipped >= 1);
  Util.check_bool "other ops replayed" true
    (r.Splitfs.Recovery.entries_replayed >= 3);
  Util.check_bool "line quarantined for the skip" true
    (Pmem.Device.quarantined_count env.Pmem.Env.dev > 0)

(* ------------------------------------------------------------------ *)
(* Determinism and the campaign                                         *)
(* ------------------------------------------------------------------ *)

let zero_fault_workload fs =
  let fd = fs.Fsapi.Fs.open_ "/probe" Fsapi.Flags.create_rw in
  for i = 0 to 49 do
    let buf = Bytes.make 300 (Char.chr (i land 0xff)) in
    ignore (fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len:300 ~at:(i * 300));
    if i mod 10 = 9 then fs.Fsapi.Fs.fsync fd
  done

let test_zero_faults_bit_identical () =
  (* satellite: an armed-but-empty fault plane must not move a single
     simulated nanosecond on any stack *)
  List.iter
    (fun spec ->
      let run ~armed =
        let stack = Harness.Fs_config.make spec in
        let env = stack.Harness.Fs_config.env in
        if armed then Faults.arm env.Pmem.Env.faults;
        zero_fault_workload stack.Harness.Fs_config.fs;
        Pmem.Env.now env
      in
      let unarmed = run ~armed:false and armed = run ~armed:true in
      Alcotest.(check (float 0.))
        (Harness.Fs_config.name spec ^ ": armed plane is free")
        unarmed armed)
    Harness.Fs_config.all

let test_campaign_clean () =
  (* the full campaign at its pinned seed: every fault lands in an
     allowed outcome on every stack, zero oracle violations *)
  let reports = Faultcheck.run () in
  List.iter
    (fun (r : Faultcheck.stack_report) ->
      Util.check_int
        (r.Faultcheck.s_stack ^ ": no oracle violations")
        0
        (List.length r.Faultcheck.s_violations);
      Util.check_int (r.Faultcheck.s_stack ^ ": no trial wasted") 1
        (min 1 r.Faultcheck.s_trials))
    reports;
  Util.check_bool "campaign clean" true (Faultcheck.clean reports);
  (* the campaign must actually exercise the degradation machinery *)
  let splitfs =
    List.find
      (fun r -> r.Faultcheck.s_stack = "splitfs-sync")
      reports
  in
  let c = splitfs.Faultcheck.s_counts in
  Util.check_bool "relink retries exercised" true (c.Faults.relink_retries > 0);
  Util.check_bool "journal retries exercised" true (c.Faults.journal_retries > 0);
  Util.check_bool "degraded writes exercised" true (c.Faults.degraded_writes > 0);
  Util.check_bool "scrub migrations exercised" true (c.Faults.scrub_migrations > 0);
  Util.check_bool "media faults exercised" true (c.Faults.media > 0)

let test_oracle_catches_injected_bug () =
  (* regression for the oracle itself: a deliberately dishonest degraded
     write path (data dropped, success returned) must be flagged *)
  Util.check_bool "oracle flags dropped writes" true
    (Faultcheck.oracle_catches_dropped_writes ());
  (* the dishonest configuration is per-env now: a fresh default env must
     come up with the honest path on (leakage is impossible by
     construction, so this pins the default rather than a restore) *)
  Util.check_bool "default env is honest" true
    (Pmem.Env.default_checks ()).Pmem.Env.honest_degraded_writes

let suite =
  [
    tc "transient heals, sticky persists" `Quick test_transient_vs_sticky;
    tc "origin-scoped faults" `Quick test_origin_scoping;
    tc "backoff schedule capped" `Quick test_backoff_schedule;
    tc "errno printer names layer" `Quick test_errno_printer;
    tc "poison: load raises, store heals, quarantine zeros" `Quick
      test_poison_load_store_quarantine;
    tc "crash keeps media faults; reset clears" `Quick
      test_crash_keeps_media_state_reset_clears;
    tc "journal transient retried" `Quick test_journal_transient_retried;
    tc "journal sticky surfaces EIO" `Quick test_journal_sticky_errno;
    tc "staging ENOSPC degrades to kernel writes" `Quick
      test_staging_enospc_degrades;
    tc "relink: transient retried, sticky masked by copy" `Quick
      test_relink_transient_retried_sticky_masked;
    tc "scrubber migrates and preserves data" `Quick
      test_scrubber_migrates_and_remaps;
    tc "scrub under live U-Split mappings" `Quick
      test_usplit_scrub_under_live_mappings;
    tc "bit-rot corpus: replay drops exactly the rotten suffix" `Quick
      test_bitrot_corpus;
    tc "bit-rot: posix recovery no-op" `Quick test_bitrot_posix_noop;
    tc "recovery skips poisoned staged ops" `Quick
      test_recovery_skips_poisoned_staging;
    tc "zero faults: armed plane bit-identical" `Quick
      test_zero_faults_bit_identical;
    tc "faultcheck campaign clean at pinned seed" `Quick test_campaign_clean;
    tc "oracle catches injected degradation bug" `Quick
      test_oracle_catches_injected_bug;
  ]
