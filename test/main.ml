let () =
  Alcotest.run "splitfs-repro"
    [
      ("pmem", Test_pmem.suite);
      ("device-diff", Test_device_diff.suite);
      ("fsapi", Test_fsapi.suite);
      ("alloc", Test_alloc.suite);
      ("extent-tree", Test_extent_tree.suite);
      ("ext4", Test_ext4.suite);
      ("splitfs", Test_splitfs.suite);
      ("baselines", Test_baselines.suite);
      ("oplog", Test_oplog.suite);
      ("crash", Test_crash.suite);
      ("crashcheck", Test_crashcheck.suite);
      ("litmus", Test_litmus.suite);
      ("apps", Test_apps.suite);
      ("workloads", Test_workloads.suite);
      ("faults", Test_faults.suite);
      ("faultplane", Test_faultplane.suite);
      ("process", Test_process.suite);
      ("experiments", Test_experiments.suite);
      ("par", Test_par.suite);
      ("sched", Test_sched.suite);
      ("obs", Test_obs.suite);
      ("benchdiff", Test_benchdiff.suite);
    ]
