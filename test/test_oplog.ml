(** Operation log: 64-byte entry codec, checksum-based torn-entry
    detection, single-fence append behaviour, scan semantics. *)

open Splitfs

let tc = Alcotest.test_case

let sample_ops =
  [
    Oplog.Append
      { target_ino = 12; file_off = 4096; staging_ino = 99; staging_off = 8192;
        len = 4096; data_crc = 0x1234ABCD };
    Oplog.Overwrite
      { target_ino = 3; file_off = 0; staging_ino = 99; staging_off = 0;
        len = 100; data_crc = 0 };
    Oplog.Relinked { target_ino = 12 };
    Oplog.Create { ino = 44 };
    Oplog.Unlink { ino = 45 };
    Oplog.Rename { ino = 46 };
    Oplog.Truncate { ino = 47; size = 123456 };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun entry ->
      let b = Oplog.encode entry in
      Util.check_int "entry size" 64 (Bytes.length b);
      match Oplog.decode b ~off:0 with
      | Oplog.Valid e -> Alcotest.(check bool) "roundtrip" true (e = entry)
      | Oplog.Torn -> Alcotest.fail "torn"
      | Oplog.Empty -> Alcotest.fail "empty")
    sample_ops

let test_empty_slot () =
  let b = Bytes.make 64 '\000' in
  match Oplog.decode b ~off:0 with
  | Oplog.Empty -> ()
  | _ -> Alcotest.fail "expected Empty"

let prop_corruption_detected =
  QCheck.Test.make ~name:"any single-byte corruption is detected" ~count:200
    QCheck.(pair (int_bound 63) (int_range 1 255))
    (fun (pos, delta) ->
      let entry =
        Oplog.Append
          { target_ino = 7; file_off = 12288; staging_ino = 9; staging_off = 0;
            len = 512; data_crc = 42 }
      in
      let b = Oplog.encode entry in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xFF));
      match Oplog.decode b ~off:0 with
      | Oplog.Valid e -> e <> entry  (* must never decode to the original *)
      | Oplog.Torn | Oplog.Empty -> true)

let with_log f =
  let env, _kfs, sys = Util.make_kernel () in
  let log = Oplog.create ~sys ~env ~path:"/oplog" ~size:(64 * 1024) in
  f env sys log

let test_append_one_nt_store_no_fence () =
  with_log (fun env _sys log ->
      let stats = env.Pmem.Env.stats in
      let nt0 = stats.Pmem.Stats.nt_stores and f0 = stats.Pmem.Stats.fences in
      Oplog.append log (Oplog.Create { ino = 1 });
      (* one 64B NT store, zero fences: the caller's single sfence covers
         data + log entry together (§3.3) *)
      Util.check_int "one NT store" 1 (stats.Pmem.Stats.nt_stores - nt0);
      Util.check_int "no fence from the log itself" 0 (stats.Pmem.Stats.fences - f0);
      Util.check_int "tail" 1 (Oplog.entries_written log))

let test_scan_finds_entries () =
  with_log (fun _env sys log ->
      List.iter (Oplog.append log) sample_ops;
      Pmem.Device.fence _env.Pmem.Env.dev;
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "scanned" (List.length sample_ops) scan.Oplog.scanned;
      Util.check_int "torn" 0 scan.Oplog.torn;
      Alcotest.(check bool) "entries match" true (scan.Oplog.valid = sample_ops))

let test_scan_stops_at_torn_entry () =
  with_log (fun env sys log ->
      Oplog.append log (Oplog.Create { ino = 1 });
      Oplog.append log (Oplog.Create { ino = 2 });
      Oplog.append log (Oplog.Create { ino = 3 });
      (* tear the middle entry by overwriting half of it on the device *)
      let kfd = Kernelfs.Syscall.open_ sys "/oplog" Fsapi.Flags.rdwr in
      let junk = Bytes.make 32 '\xAB' in
      ignore (Kernelfs.Syscall.pwrite sys kfd ~buf:junk ~boff:0 ~len:32 ~at:64);
      Kernelfs.Syscall.close sys kfd;
      ignore env;
      let scan = Oplog.scan sys "/oplog" in
      (* collection stops at the tear: the entry beyond it postdates the
         tear and cannot be trusted, so it counts as torn too *)
      Util.check_int "torn (tear + untrusted successor)" 2 scan.Oplog.torn;
      Util.check_int "whole non-zero prefix scanned" 3 scan.Oplog.scanned;
      Alcotest.(check bool) "only the prefix before the tear is valid" true
        (scan.Oplog.valid = [ Oplog.Create { ino = 1 } ]))

(** Satellite: torn-entry corpus. Three hand-built entries; for every slot
    and every non-empty subset of its eight 8-byte chunks, drop (zero) that
    subset — the granularity at which an NT-stored line can tear — and
    assert replay stops at the first bad slot, never skipping over it. *)
let test_torn_corpus () =
  let mk i =
    Oplog.Append
      { target_ino = 100 + i; file_off = (i + 1) * 4096; staging_ino = 50 + i;
        staging_off = (i + 1) * 8192; len = 4096; data_crc = 0xC0FFEE + i }
  in
  let entries = [| mk 0; mk 1; mk 2 |] in
  (* which 8-byte chunks of an encoded entry actually hold non-zero bytes
     (dropping an all-zero chunk is unobservable) *)
  let nonzero_chunks e =
    let b = Oplog.encode e in
    let m = ref 0 in
    for c = 0 to 7 do
      for i = c * 8 to (c * 8) + 7 do
        if Bytes.get b i <> '\000' then m := !m lor (1 lsl c)
      done
    done;
    !m
  in
  let env, _kfs, sys = Util.make_kernel () in
  let path = "/.splitfs-oplog-7" in
  let zeros = Bytes.make 8 '\000' in
  for slot = 0 to 2 do
    let live = nonzero_chunks entries.(slot) in
    for mask = 1 to 255 do
      (* rewrite all three slots (the previous iteration's recovery zeroed
         the prefix; appends overwrite the rest), then drop [mask]'s
         chunks of [slot] — the granularity at which an NT line tears *)
      let log = Oplog.create ~sys ~env ~path ~size:(16 * 64) in
      Array.iter (Oplog.append log) entries;
      Pmem.Device.fence env.Pmem.Env.dev;
      let kfd = Kernelfs.Syscall.open_ sys path Fsapi.Flags.rdwr in
      for c = 0 to 7 do
        if mask land (1 lsl c) <> 0 then
          ignore
            (Kernelfs.Syscall.pwrite sys kfd ~buf:zeros ~boff:0 ~len:8
               ~at:((slot * 64) + (c * 8)))
      done;
      Kernelfs.Syscall.close sys kfd;
      let scan = Oplog.scan sys path in
      let changed = mask land live <> 0 in
      let now_empty = live land lnot mask = 0 in
      let expect =
        if not changed then Array.to_list entries
        else Array.to_list (Array.sub entries 0 slot)
      in
      if not (scan.Oplog.valid = expect) then
        Alcotest.failf "slot %d mask %#x: replay did not stop at the tear"
          slot mask;
      if changed && not now_empty then begin
        (* a detectable tear: reported as torn by scan and by recovery *)
        Alcotest.(check bool)
          (Printf.sprintf "slot %d mask %#x counted torn" slot mask)
          true (scan.Oplog.torn >= 1);
        let report = Splitfs.Recovery.recover ~sys ~env ~instance:7 in
        Alcotest.(check bool)
          (Printf.sprintf "slot %d mask %#x recovery reports torn" slot mask)
          true
          (report.Splitfs.Recovery.torn_entries >= 1)
      end
      else
        (* leave the log zeroed for the next iteration *)
        ignore (Splitfs.Recovery.recover ~sys ~env ~instance:7)
    done
  done

let test_clear_resets () =
  with_log (fun _env sys log ->
      List.iter (Oplog.append log) sample_ops;
      Oplog.clear log;
      Util.check_int "tail reset" 0 (Oplog.entries_written log);
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "nothing scanned" 0 scan.Oplog.scanned;
      (* the log is reusable after clear *)
      Oplog.append log (Oplog.Create { ino = 9 });
      let scan = Oplog.scan sys "/oplog" in
      Util.check_int "one entry" 1 scan.Oplog.scanned)

let test_full_log_raises () =
  let env, _kfs, sys = Util.make_kernel () in
  let log = Oplog.create ~sys ~env ~path:"/tiny" ~size:(4 * 64) in
  for i = 1 to 4 do
    Oplog.append log (Oplog.Create { ino = i })
  done;
  Alcotest.check_raises "full" (Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, "oplog full"))
    (fun () -> Oplog.append log (Oplog.Create { ino = 5 }))

let suite =
  [
    tc "codec roundtrip (all kinds)" `Quick test_codec_roundtrip;
    tc "all-zero slot is Empty" `Quick test_empty_slot;
    tc "append = one NT store, no fence" `Quick test_append_one_nt_store_no_fence;
    tc "scan finds appended entries" `Quick test_scan_finds_entries;
    tc "scan stops at the first torn entry" `Quick test_scan_stops_at_torn_entry;
    tc "torn-entry corpus: replay never skips a tear" `Quick test_torn_corpus;
    tc "clear resets and allows reuse" `Quick test_clear_resets;
    tc "full log raises ENOSPC" `Quick test_full_log_raises;
    QCheck_alcotest.to_alcotest prop_corruption_detected;
  ]
