(** Randomized differential test for the PM device simulator.

    [Naive] is a line-at-a-time reference model — the Hashtbl-of-64-byte-
    lines implementation the device shipped with before the dirty-line
    bitmap index — kept oracle-simple on purpose. Thousands of mixed
    store/store_nt/flush/fence/crash/load operations are driven against
    both the oracle and the fast-path device, asserting after every
    operation that the simulated clocks agree bit-for-bit, that dirty-line
    counts and PM-traffic counters match, that loads return identical
    bytes, and (at crash points and at the end) that the durable images are
    identical. Host-side fast paths must never change simulated results. *)

open Pmem

let tc = Alcotest.test_case
let line_size = 64

(* ------------------------------------------------------------------ *)
(* Naive reference model (pre-bitmap semantics, oracle-simple)          *)
(* ------------------------------------------------------------------ *)

module Naive = struct
  type t = {
    capacity : int;
    persistent : Bytes.t;
    dirty : (int, Bytes.t) Hashtbl.t;  (* line index -> line content *)
    clock : Simclock.t;
    timing : Timing.t;
    stats : Stats.t;
    mutable last_read_start : int;
    mutable last_read_end : int;
  }

  let create ~capacity ~timing () =
    {
      capacity;
      persistent = Bytes.make capacity '\000';
      dirty = Hashtbl.create 4096;
      clock = Simclock.create ();
      timing;
      stats = Stats.create ();
      last_read_start = -1;
      last_read_end = -1;
    }

  let charge_media t ns =
    Simclock.advance t.clock ns;
    t.stats.Stats.media_ns <- t.stats.Stats.media_ns +. ns

  let store t ~addr src ~off ~len =
    if len > 0 then begin
      Simclock.advance t.clock
        (float_of_int len *. t.timing.Timing.cache_store_per_byte);
      let pos = ref addr and soff = ref off and remaining = ref len in
      while !remaining > 0 do
        let line = !pos / line_size in
        let in_line = !pos mod line_size in
        let n = min !remaining (line_size - in_line) in
        let content =
          match Hashtbl.find_opt t.dirty line with
          | Some c -> c
          | None ->
              let c = Bytes.create line_size in
              Bytes.blit t.persistent (line * line_size) c 0 line_size;
              Hashtbl.replace t.dirty line c;
              c
        in
        Bytes.blit src !soff content in_line n;
        pos := !pos + n;
        soff := !soff + n;
        remaining := !remaining - n
      done
    end

  let persist_line t line =
    match Hashtbl.find_opt t.dirty line with
    | None -> ()
    | Some content ->
        Bytes.blit content 0 t.persistent (line * line_size) line_size;
        Hashtbl.remove t.dirty line

  let store_nt t ~addr src ~off ~len =
    if len > 0 then begin
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        persist_line t line
      done;
      Bytes.blit src off t.persistent addr len;
      charge_media t (Timing.nt_write_cost t.timing len);
      t.stats.Stats.nt_stores <- t.stats.Stats.nt_stores + 1;
      t.stats.Stats.pm_write_bytes <- t.stats.Stats.pm_write_bytes + len
    end

  let flush t ~addr ~len =
    if len > 0 then begin
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        if Hashtbl.mem t.dirty line then begin
          persist_line t line;
          Simclock.advance t.clock t.timing.Timing.clwb;
          charge_media t (Timing.nt_write_cost t.timing line_size);
          t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
          t.stats.Stats.pm_write_bytes <-
            t.stats.Stats.pm_write_bytes + line_size
        end
      done
    end

  let fence t =
    Simclock.advance t.clock t.timing.Timing.sfence;
    t.stats.Stats.fences <- t.stats.Stats.fences + 1

  (* The read-adjacency rule matches the device: continuing where the last
     load ended, or exactly repeating it, is sequential. *)
  let load t ~addr dst ~off ~len =
    if len > 0 then begin
      let random =
        not
          (addr = t.last_read_end
          || (addr = t.last_read_start && addr + len = t.last_read_end))
      in
      t.last_read_start <- addr;
      t.last_read_end <- addr + len;
      let pos = ref addr and doff = ref off and remaining = ref len in
      let cached = ref 0 and uncached = ref 0 in
      while !remaining > 0 do
        let line = !pos / line_size in
        let in_line = !pos mod line_size in
        let n = min !remaining (line_size - in_line) in
        (match Hashtbl.find_opt t.dirty line with
        | Some content ->
            Bytes.blit content in_line dst !doff n;
            cached := !cached + n
        | None ->
            Bytes.blit t.persistent !pos dst !doff n;
            uncached := !uncached + n);
        pos := !pos + n;
        doff := !doff + n;
        remaining := !remaining - n
      done;
      if !cached > 0 then
        Simclock.advance t.clock
          (float_of_int !cached *. t.timing.Timing.cache_read_per_byte);
      if !uncached > 0 then begin
        charge_media t (Timing.pm_read_cost t.timing ~random !uncached);
        t.stats.Stats.pm_read_bytes <- t.stats.Stats.pm_read_bytes + !uncached
      end
    end

  let crash t =
    Hashtbl.reset t.dirty;
    t.last_read_start <- -1;
    t.last_read_end <- -1

  let dirty_lines t = Hashtbl.length t.dirty
end

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let capacity = 256 * 1024

let check_float msg a b =
  if a <> b then
    Alcotest.failf "%s: oracle %.17g vs device %.17g" msg a b

let check_agreement ~op_no naive env dev =
  let tag msg = Printf.sprintf "op %d: %s" op_no msg in
  check_float (tag "simulated clock") (Simclock.now naive.Naive.clock)
    (Env.now env);
  check_float (tag "media_ns") naive.Naive.stats.Stats.media_ns
    env.Env.stats.Stats.media_ns;
  Util.check_int (tag "dirty lines") (Naive.dirty_lines naive)
    (Device.dirty_lines dev);
  Util.check_int (tag "pm_read_bytes") naive.Naive.stats.Stats.pm_read_bytes
    env.Env.stats.Stats.pm_read_bytes;
  Util.check_int (tag "pm_write_bytes") naive.Naive.stats.Stats.pm_write_bytes
    env.Env.stats.Stats.pm_write_bytes;
  Util.check_int (tag "flushes") naive.Naive.stats.Stats.flushes
    env.Env.stats.Stats.flushes;
  Util.check_int (tag "fences") naive.Naive.stats.Stats.fences
    env.Env.stats.Stats.fences;
  Util.check_int (tag "nt_stores") naive.Naive.stats.Stats.nt_stores
    env.Env.stats.Stats.nt_stores

let check_durable_images ~op_no naive dev =
  let img = Device.peek_persistent dev ~addr:0 ~len:capacity in
  if not (Bytes.equal naive.Naive.persistent img) then
    Alcotest.failf "op %d: durable images differ" op_no

let run_ops ~seed ~ops () =
  let rng = Workloads.Rng.create seed in
  let env = Pmem.Env.create ~capacity () in
  let dev = env.Env.dev in
  let naive = Naive.create ~capacity ~timing:env.Env.timing () in
  let payload = Bytes.create 16384 in
  for i = 0 to Bytes.length payload - 1 do
    Bytes.set payload i (Char.chr (Workloads.Rng.int rng 256))
  done;
  let buf_n = Bytes.create 16384 and buf_d = Bytes.create 16384 in
  for op_no = 1 to ops do
    (* addresses biased to a small window so lines collide across ops;
       lengths span sub-line writes up to multi-block transfers *)
    let len = 1 + Workloads.Rng.int rng 8192 in
    let addr = Workloads.Rng.int rng (capacity - len) in
    let off = Workloads.Rng.int rng (Bytes.length payload - len) in
    (match Workloads.Rng.int rng 100 with
    | r when r < 30 ->
        Naive.store naive ~addr payload ~off ~len;
        Device.store dev ~addr payload ~off ~len
    | r when r < 50 ->
        Naive.store_nt naive ~addr payload ~off ~len;
        Device.store_nt dev ~addr payload ~off ~len
    | r when r < 70 ->
        Naive.flush naive ~addr ~len;
        Device.flush dev ~addr ~len
    | r when r < 75 ->
        Naive.fence naive;
        Device.fence dev
    | r when r < 95 ->
        Naive.load naive ~addr buf_n ~off:0 ~len;
        Device.load dev ~addr buf_d ~off:0 ~len;
        if not (Bytes.equal (Bytes.sub buf_n 0 len) (Bytes.sub buf_d 0 len))
        then Alcotest.failf "op %d: loaded bytes differ" op_no
    | _ ->
        Naive.crash naive;
        Device.crash dev;
        check_durable_images ~op_no naive dev);
    check_agreement ~op_no naive env dev
  done;
  (* settle everything and compare the final durable image *)
  Naive.flush naive ~addr:0 ~len:capacity;
  Device.flush dev ~addr:0 ~len:capacity;
  Naive.fence naive;
  Device.fence dev;
  check_agreement ~op_no:(ops + 1) naive env dev;
  check_durable_images ~op_no:(ops + 1) naive dev;
  Util.check_int "no dirty lines after full flush" 0 (Device.dirty_lines dev)

let test_differential_seed1 () = run_ops ~seed:1 ~ops:2500 ()
let test_differential_seed2 () = run_ops ~seed:42 ~ops:2500 ()

(* Narrow window: nearly every op hits the same few blocks, maximising
   dirty/clean span alternation inside single bitmap words. *)
let test_differential_hot_window () =
  let rng = Workloads.Rng.create 7 in
  let env = Pmem.Env.create ~capacity () in
  let dev = env.Env.dev in
  let naive = Naive.create ~capacity ~timing:env.Env.timing () in
  let payload = Bytes.make 512 'h' in
  let buf_n = Bytes.create 512 and buf_d = Bytes.create 512 in
  for op_no = 1 to 3000 do
    let len = 1 + Workloads.Rng.int rng 256 in
    let addr = 8192 + Workloads.Rng.int rng 4096 in
    (match Workloads.Rng.int rng 4 with
    | 0 ->
        Naive.store naive ~addr payload ~off:0 ~len;
        Device.store dev ~addr payload ~off:0 ~len
    | 1 ->
        Naive.store_nt naive ~addr payload ~off:0 ~len;
        Device.store_nt dev ~addr payload ~off:0 ~len
    | 2 ->
        Naive.flush naive ~addr ~len;
        Device.flush dev ~addr ~len
    | _ ->
        Naive.load naive ~addr buf_n ~off:0 ~len;
        Device.load dev ~addr buf_d ~off:0 ~len;
        if not (Bytes.equal (Bytes.sub buf_n 0 len) (Bytes.sub buf_d 0 len))
        then Alcotest.failf "op %d: loaded bytes differ" op_no);
    check_agreement ~op_no naive env dev
  done;
  Naive.crash naive;
  Device.crash dev;
  check_durable_images ~op_no:3001 naive dev

let suite =
  [
    tc "differential vs naive model (seed 1)" `Quick test_differential_seed1;
    tc "differential vs naive model (seed 42)" `Quick test_differential_seed2;
    tc "differential, hot 4K window" `Quick test_differential_hot_window;
  ]
