(** Tests for the observability layer (PR 4): the attribution identity on
    every stack, zero simulated-time perturbation from tracing, Chrome
    trace JSON shape, strace-style syscall lines, histograms and the
    stats pretty-printers. *)

let tc = Alcotest.test_case

(* --- a tiny JSON reader, enough to validate a Chrome trace ---------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let json_parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "json_parse: %s at %d" msg !pos in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          match next () with
          | '"' -> Buffer.add_char b '"'; go ()
          | '\\' -> Buffer.add_char b '\\'; go ()
          | '/' -> Buffer.add_char b '/'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'u' ->
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
              go ()
          | c -> fail (Printf.sprintf "bad escape %c" c))
      | '\000' -> fail "eof in string"
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then (incr pos; Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then (incr pos; Jarr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Jarr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | '"' -> Jstr (parse_string ())
    | 't' ->
        pos := !pos + 4;
        Jbool true
    | 'f' ->
        pos := !pos + 5;
        Jbool false
    | 'n' ->
        pos := !pos + 4;
        Jnull
    | _ ->
        let start = !pos in
        let isnum c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
          || c = 'E'
        in
        while isnum (peek ()) do incr pos done;
        if !pos = start then fail "unexpected character";
        Jnum (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let jfield k = function
  | Jobj kvs -> List.assoc_opt k kvs
  | _ -> None

(* --- the accounting identity on every stack ------------------------- *)

(** Every simulated nanosecond on every stack must land in exactly one
    category: [check_identity] raises if attribution and the per-actor
    clocks disagree beyond float-summation rounding (the documented
    tolerance: 1e-8 relative + 1e-6 ns absolute). *)
let test_identity_all_stacks () =
  List.iter
    (fun spec ->
      let stack = Harness.Fs_config.make spec in
      let (_ : int) = Harness.Experiments.profile_workload stack.Harness.Fs_config.fs in
      let att, acc = Pmem.Env.check_identity stack.Harness.Fs_config.env in
      Alcotest.(check bool)
        (Printf.sprintf "%s: identity positive" (Harness.Fs_config.name spec))
        true
        (att > 0. && acc > 0.);
      (* no category may go negative *)
      List.iter
        (fun (c, v) ->
          if v < 0. then
            Alcotest.failf "%s: negative attribution for %s: %f"
              (Harness.Fs_config.name spec) (Obs.cat_name c) v)
        (Obs.breakdown stack.Harness.Fs_config.env.Pmem.Env.obs))
    Harness.Fs_config.all

(** The identity also holds under concurrency: shared locks, bandwidth
    queueing and per-actor clocks, with instrumentation on. *)
let test_identity_multiclient () =
  List.iter
    (fun spec ->
      let env_ref = ref None in
      let (_ : Harness.Multiclient.result) =
        Harness.Multiclient.run ~instrument:true
          ~on_env:(fun e -> env_ref := Some e)
          spec ~nclients:4
      in
      let env = Option.get !env_ref in
      let (_ : float * float) = Pmem.Env.check_identity env in
      ())
    [ Harness.Fs_config.Ext4_dax; Harness.Fs_config.Splitfs_posix;
      Harness.Fs_config.Splitfs_strict ]

(** Background work is its own category, and it must agree exactly with
    the stats counter the environment already keeps. *)
let test_background_attribution () =
  let env = Util.make_env () in
  Pmem.Env.in_background env (fun () -> Pmem.Env.cpu env 1234.);
  Alcotest.(check (float 0.)) "background category = background_ns"
    env.Pmem.Env.stats.Pmem.Stats.background_ns
    (Obs.attributed env.Pmem.Env.obs Obs.Background);
  let (_ : float * float) = Pmem.Env.check_identity env in
  ()

(* --- tracing must not move the simulated clock ---------------------- *)

let test_tracing_bit_identical () =
  let run ~traced spec =
    let stack = Harness.Fs_config.make spec in
    if traced then
      Obs.set_tracing ~sample:1 ~ring:4096 stack.Harness.Fs_config.env.Pmem.Env.obs true;
    let (_ : int) = Harness.Experiments.profile_workload stack.Harness.Fs_config.fs in
    (Pmem.Env.now stack.Harness.Fs_config.env, stack)
  in
  List.iter
    (fun spec ->
      let t_off, _ = run ~traced:false spec in
      let t_on, stack = run ~traced:true spec in
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s: simulated ns identical with tracing on"
           (Harness.Fs_config.name spec))
        t_off t_on;
      Alcotest.(check bool) "spans were actually recorded" true
        (Obs.span_count stack.Harness.Fs_config.env.Pmem.Env.obs > 0))
    [ Harness.Fs_config.Ext4_dax; Harness.Fs_config.Splitfs_posix;
      Harness.Fs_config.Splitfs_strict; Harness.Fs_config.Nova_relaxed ];
  (* and under the deterministic scheduler: same makespan, same
     interleaving fingerprint *)
  let plain = Harness.Multiclient.run Harness.Fs_config.Splitfs_posix ~nclients:4 in
  let traced =
    Harness.Multiclient.run ~instrument:true
      ~on_env:(fun e -> Obs.set_tracing e.Pmem.Env.obs true)
      Harness.Fs_config.Splitfs_posix ~nclients:4
  in
  Alcotest.(check (float 0.)) "multiclient makespan identical"
    plain.Harness.Multiclient.makespan_ns traced.Harness.Multiclient.makespan_ns;
  Alcotest.(check int) "multiclient interleaving identical"
    plain.Harness.Multiclient.trace_hash traced.Harness.Multiclient.trace_hash

(* --- Chrome trace JSON ---------------------------------------------- *)

let test_chrome_json () =
  let env_ref = ref None in
  let (_ : Harness.Multiclient.result) =
    Harness.Multiclient.run ~instrument:true
      ~on_env:(fun e ->
        env_ref := Some e;
        Obs.set_tracing e.Pmem.Env.obs true)
      Harness.Fs_config.Splitfs_posix ~nclients:3
  in
  let env = Option.get !env_ref in
  let actors =
    List.map
      (fun a -> (a.Pmem.Simclock.aid, a.Pmem.Simclock.a_name))
      (Pmem.Simclock.actors env.Pmem.Env.clock)
  in
  let doc = json_parse (Obs.chrome_json ~actors env.Pmem.Env.obs) in
  let events =
    match jfield "traceEvents" doc with
    | Some (Jarr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let complete =
    List.filter (fun e -> jfield "ph" e = Some (Jstr "X")) events
  in
  Alcotest.(check bool) "has complete spans" true (List.length complete > 0);
  let distinct f =
    List.sort_uniq compare (List.filter_map f complete)
  in
  let cats =
    distinct (fun e ->
        match jfield "cat" e with Some (Jstr c) -> Some c | _ -> None)
  in
  let tids =
    distinct (fun e ->
        match jfield "tid" e with Some (Jnum t) -> Some t | _ -> None)
  in
  Alcotest.(check bool)
    (Printf.sprintf "spans from >= 4 layers (got %s)" (String.concat "," cats))
    true
    (List.length cats >= 4);
  Alcotest.(check bool) "spans on >= 2 actor tracks" true (List.length tids >= 2);
  (* every complete event is well-formed: name, non-negative ts/dur *)
  List.iter
    (fun e ->
      (match jfield "name" e with
      | Some (Jstr _) -> ()
      | _ -> Alcotest.fail "span without name");
      match (jfield "ts" e, jfield "dur" e) with
      | Some (Jnum ts), Some (Jnum dur) ->
          if ts < 0. || dur < 0. then Alcotest.fail "negative ts/dur"
      | _ -> Alcotest.fail "span without ts/dur")
    complete;
  (* thread-name metadata names every actor track *)
  let named_tids =
    List.filter_map
      (fun e ->
        if jfield "ph" e = Some (Jstr "M") && jfield "name" e = Some (Jstr "thread_name")
        then match jfield "tid" e with Some (Jnum t) -> Some t | _ -> None
        else None)
      events
  in
  List.iter
    (fun tid ->
      Alcotest.(check bool) "span tid has thread_name metadata" true
        (List.mem tid named_tids))
    tids

(* --- strace-style syscall lines ------------------------------------- *)

let test_syscall_trace_lines () =
  let env, _kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let obs = env.Pmem.Env.obs in
  Obs.set_tracing obs true;
  let lines = ref [] in
  Obs.set_on_event obs
    (Some
       (fun s ->
         match s.Obs.e_arg with
         | Some l -> lines := l :: !lines
         | None -> ()));
  Fsapi.Fs.write_file fs "/traced.txt" "hello";
  (match fs.Fsapi.Fs.stat "/missing" with
  | (_ : Fsapi.Fs.stat) -> Alcotest.fail "stat of missing path succeeded"
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> ());
  let all = String.concat "\n" (List.rev !lines) in
  let has sub =
    let nl = String.length all and ns = String.length sub in
    let rec go i = i + ns <= nl && (String.sub all i ns = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "open line rendered" true (has "open(\"/traced.txt\")");
  Alcotest.(check bool) "write result rendered" true (has "= 5");
  Alcotest.(check bool) "failed stat rendered as errno" true
    (has "stat(\"/missing\") = ENOENT")

(* --- histograms ------------------------------------------------------ *)

let test_hist_percentiles () =
  let h = Obs.Hist.create () in
  for i = 1 to 1000 do
    Obs.Hist.record h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Obs.Hist.n h);
  let p50 = Obs.Hist.percentile h 50. in
  let p99 = Obs.Hist.percentile h 99. in
  let p999 = Obs.Hist.percentile h 99.9 in
  (* log-bucketed: quarter-log2 buckets give ~19% worst-case error *)
  Alcotest.(check bool) "p50 in bucket range" true (p50 > 350. && p50 < 700.);
  Alcotest.(check bool) "p99 above p50" true (p99 >= p50);
  Alcotest.(check bool) "p999 above p99, below max" true
    (p999 >= p99 && p999 <= 1000.);
  (* a constant distribution reports the constant exactly *)
  let c = Obs.Hist.create () in
  for _ = 1 to 100 do Obs.Hist.record c 42. done;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.)) "constant percentile exact" 42.
        (Obs.Hist.percentile c p))
    [ 50.; 90.; 99.; 99.9 ]

(* Edge cases for the SLO-attainment arithmetic: empty histogram (no op
   violated any objective), single sample (every percentile clamps to
   the one observed value), and a threshold exactly equal to the sample
   (whole buckets count as below when their upper edge does). *)
let test_hist_edge_cases () =
  let e = Obs.Hist.create () in
  Alcotest.(check (float 0.)) "empty frac_below" 1. (Obs.Hist.frac_below e 100.);
  Alcotest.(check (float 0.)) "empty percentile" 0. (Obs.Hist.percentile e 99.);
  Alcotest.(check (float 0.)) "empty mean" 0. (Obs.Hist.mean e);
  let s = Obs.Hist.create () in
  Obs.Hist.record s 1000.;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "single-sample p%g" p)
        1000. (Obs.Hist.percentile s p))
    [ 0.; 50.; 100. ];
  Alcotest.(check (float 0.)) "boundary-equal counts as below" 1.
    (Obs.Hist.frac_below s 1000.);
  Alcotest.(check (float 0.)) "threshold above" 1. (Obs.Hist.frac_below s 2000.);
  Alcotest.(check (float 0.)) "threshold below" 0. (Obs.Hist.frac_below s 500.)

(* --- stats printers (satellite: lock/bw wait in the dump) ------------ *)

let test_stats_printers () =
  let s = Pmem.Stats.create () in
  s.Pmem.Stats.lock_wait_ns <- 123.;
  s.Pmem.Stats.bw_wait_ns <- 456.;
  let table = Fmt.str "%a" Pmem.Stats.pp_table s in
  let has sub str =
    let nl = String.length str and ns = String.length sub in
    let rec go i = i + ns <= nl && (String.sub str i ns = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table has lock wait" true (has "lock wait" table);
  Alcotest.(check bool) "table has bandwidth wait" true
    (has "bandwidth wait" table);
  let s0 = Pmem.Stats.copy s in
  s.Pmem.Stats.syscalls <- s.Pmem.Stats.syscalls + 7;
  s.Pmem.Stats.lock_wait_ns <- s.Pmem.Stats.lock_wait_ns +. 100.;
  let delta = Fmt.str "%a" Pmem.Stats.pp_delta (s, s0) in
  Alcotest.(check bool) "delta shows syscalls" true (has "+7" delta);
  Alcotest.(check bool) "delta shows lock wait" true (has "+100 ns" delta);
  Alcotest.(check bool) "delta hides unchanged rows" false
    (has "pm read bytes" delta);
  let none = Fmt.str "%a" Pmem.Stats.pp_delta (s, Pmem.Stats.copy s) in
  Alcotest.(check bool) "empty delta says so" true (has "no change" none)

(* --- the profile experiment ------------------------------------------ *)

let test_profile_experiment () =
  let rows = Harness.Experiments.profile ~print:false () in
  let find spec =
    List.find
      (fun r -> r.Harness.Experiments.pr_spec = spec)
      rows
  in
  let total r =
    List.fold_left (fun a (_, v) -> a +. v) 0. r.Harness.Experiments.pr_breakdown
  in
  let cat r c = List.assoc c r.Harness.Experiments.pr_breakdown in
  let ext4 = find Harness.Fs_config.Ext4_dax in
  let posix = find Harness.Fs_config.Splitfs_posix in
  (* the paper's Figure 2 shape: ext4 DAX spends most of its time in
     software (traps, kernel CPU, jbd2); SplitFS-POSIX is mostly media *)
  Alcotest.(check bool) "ext4 software overhead > 50%" true
    (total ext4 -. cat ext4 Obs.Media > 0.5 *. total ext4);
  Alcotest.(check bool) "splitfs-posix media >= 50%" true
    (cat posix Obs.Media >= 0.5 *. total posix);
  Alcotest.(check bool) "splitfs usplit-cpu present" true
    (cat posix Obs.Usplit > 0.);
  Alcotest.(check bool) "ext4 journal present" true (cat ext4 Obs.Journal > 0.);
  Alcotest.(check bool) "ext4 has no usplit time" true (cat ext4 Obs.Usplit = 0.)

let test_latency_experiment () =
  let rows = Harness.Experiments.latency ~print:false () in
  let find spec op =
    List.find
      (fun r ->
        r.Harness.Experiments.lat_spec = spec
        && r.Harness.Experiments.lat_op = op)
      rows
  in
  let e = find Harness.Fs_config.Ext4_dax "pwrite" in
  let p = find Harness.Fs_config.Splitfs_posix "pwrite" in
  Alcotest.(check int) "all writes measured" 512 e.Harness.Experiments.lat_n;
  Alcotest.(check bool) "splitfs p50 write below ext4" true
    (p.Harness.Experiments.lat_p50 < e.Harness.Experiments.lat_p50);
  List.iter
    (fun (r : Harness.Experiments.latency_row) ->
      if
        not
          (r.Harness.Experiments.lat_p50 <= r.Harness.Experiments.lat_p90
          && r.Harness.Experiments.lat_p90 <= r.Harness.Experiments.lat_p99
          && r.Harness.Experiments.lat_p99 <= r.Harness.Experiments.lat_p999)
      then
        Alcotest.failf "percentiles not monotone for %s/%s"
          (Harness.Fs_config.name r.Harness.Experiments.lat_spec)
          r.Harness.Experiments.lat_op)
    rows

(* --- virtual-time timeline (PR 9) ------------------------------------ *)

(** The timeline leg of the accounting identity: with a timeline attached,
    every stack's sampled per-series deltas must sum to the final
    cumulative counters ([Timeline.check], invoked by [check_identity]
    after a flush). *)
let test_timeline_identity_all_stacks () =
  List.iter
    (fun spec ->
      let stack = Harness.Fs_config.make spec in
      let tl = Pmem.Env.enable_timeline stack.Harness.Fs_config.env in
      let (_ : int) =
        Harness.Experiments.profile_workload stack.Harness.Fs_config.fs
      in
      let (_ : float * float) =
        Pmem.Env.check_identity stack.Harness.Fs_config.env
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: timeline sampled" (Harness.Fs_config.name spec))
        true
        (Obs.Timeline.samples_taken tl > 0
        && List.length (Obs.Timeline.series_names tl) >= Obs.ncats))
    Harness.Fs_config.all

(** Newest-window mode: a series longer than capacity keeps exactly the
    newest [capacity] samples, and the evicted deltas stay in the
    identity. *)
let test_timeline_ring_wraparound () =
  let tl = Obs.Timeline.create ~capacity:8 ~period_ns:10. ~widen:false () in
  let counter = ref 0. in
  Obs.Timeline.add_source tl ~name:"c" (fun () -> !counter);
  let nsamples = 30 in
  for i = 1 to nsamples do
    counter := !counter +. float_of_int i;
    (* monotone sample times; values 1, 1+2, ... cumulative *)
    Obs.Timeline.sample tl ~now:(10. *. float_of_int i)
  done;
  Alcotest.(check int) "retained = capacity" 8 (Obs.Timeline.length tl);
  Alcotest.(check int) "taken counts evicted too" nsamples
    (Obs.Timeline.samples_taken tl);
  let samples = Obs.Timeline.samples tl "c" in
  (* newest window: samples 23..30, oldest first *)
  Array.iteri
    (fun i (time, delta, _cum) ->
      let j = nsamples - 8 + 1 + i in
      Alcotest.(check (float 0.))
        (Printf.sprintf "sample %d time" i)
        (10. *. float_of_int j)
        time;
      Alcotest.(check (float 0.))
        (Printf.sprintf "sample %d delta" i)
        (float_of_int j) delta)
    samples;
  let (_, _, newest_cum) = samples.(7) in
  Alcotest.(check (float 0.)) "newest cumulative = counter" !counter newest_cum;
  (* evicted + retained = final - cum0, verified by check *)
  Alcotest.(check int) "identity holds across the wrap" 1 (Obs.Timeline.check tl)

(** Widen mode: when the buffer fills, adjacent samples pair-merge and the
    period doubles — and because compaction depends only on the sample
    count, the whole history is reproducible byte-for-byte. *)
let test_timeline_widen_determinism () =
  let run () =
    let tl = Obs.Timeline.create ~capacity:8 ~period_ns:10. ~widen:true () in
    let counter = ref 0. in
    Obs.Timeline.add_source tl ~name:"c" (fun () -> !counter);
    for i = 1 to 100 do
      counter := !counter +. float_of_int (i mod 7);
      Obs.Timeline.sample tl ~now:(10. *. float_of_int i)
    done;
    (tl, !counter)
  in
  let tl, final = run () in
  Alcotest.(check bool) "compaction happened" true (Obs.Timeline.doublings tl > 0);
  Alcotest.(check bool) "retained below capacity" true
    (Obs.Timeline.length tl <= 8);
  Alcotest.(check bool) "period doubled" true (Obs.Timeline.period_ns tl > 10.);
  (* no evicted bucket in widen mode: retained deltas alone cover the run *)
  let retained =
    Array.fold_left (fun acc (_, d, _) -> acc +. d) 0.
      (Obs.Timeline.samples tl "c")
  in
  Alcotest.(check (float 1e-9)) "retained deltas = final - cum0" final retained;
  Alcotest.(check int) "identity" 1 (Obs.Timeline.check tl);
  let tl2, _ = run () in
  Alcotest.(check string) "two identical runs export identical bytes"
    (Obs.Timeline.openmetrics tl)
    (Obs.Timeline.openmetrics tl2)

(** Zero perturbation, end to end: a serving-tier run with the timeline
    sampler and tail forensics on must produce bit-identical simulated
    results (makespan, interleaving fingerprint) to the same run with
    both off. *)
let test_timeline_bit_identical () =
  let cfg =
    { Workloads.Multitenant.default_cfg with
      Workloads.Multitenant.ops_per_actor = 40 }
  in
  List.iter
    (fun spec ->
      let plain =
        Harness.Multiclient.run_scale ~cfg spec ~nactors:32
      in
      let observed =
        Harness.Multiclient.run_scale ~cfg ~timeline:true ~forensics:true spec
          ~nactors:32
      in
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s: makespan identical with telemetry on"
           (Harness.Fs_config.name spec))
        plain.Harness.Multiclient.sr_makespan_ns
        observed.Harness.Multiclient.sr_makespan_ns;
      Alcotest.(check int)
        (Printf.sprintf "%s: interleaving identical with telemetry on"
           (Harness.Fs_config.name spec))
        plain.Harness.Multiclient.sr_trace_hash
        observed.Harness.Multiclient.sr_trace_hash;
      (* and the telemetry actually observed something *)
      (match observed.Harness.Multiclient.sr_timeline with
      | Some tl ->
          Alcotest.(check bool) "samples taken" true
            (Obs.Timeline.samples_taken tl > 0)
      | None -> Alcotest.fail "no timeline attached");
      match observed.Harness.Multiclient.sr_forensics with
      | Some fo ->
          Alcotest.(check bool) "exemplars captured" true
            (Obs.Forensics.keys fo <> [])
      | None -> Alcotest.fail "no forensics attached")
    [ Harness.Fs_config.Ext4_dax; Harness.Fs_config.Splitfs_posix ]

(** The obs-disabled fast path in the clock funnel must stay
    allocation-free apart from the boxed float store on the actor clock:
    no closures, tuples or options per advance. Native-only — bytecode
    does not unbox float compares. *)
let test_advance_alloc_free () =
  match Sys.backend_type with
  | Sys.Native ->
      let env = Util.make_env () in
      let clock = env.Pmem.Env.clock in
      for _ = 1 to 1000 do Pmem.Simclock.advance clock 1. done;
      let iters = 100_000 in
      let w0 = Gc.minor_words () in
      for _ = 1 to iters do Pmem.Simclock.advance clock 1. done;
      let per_iter = (Gc.minor_words () -. w0) /. float_of_int iters in
      if per_iter > 4. then
        Alcotest.failf
          "Simclock.advance allocates %.2f words/iter with obs disabled \
           (budget: 4 — the one boxed a_now store plus rounding)"
          per_iter
  | _ -> ()

(* --- tail forensics --------------------------------------------------- *)

let test_forensics_topk () =
  let fo = Obs.Forensics.create ~k:2 ~ncats:3 () in
  let op ~lat ~media =
    Obs.Forensics.op_begin fo ~key:"fs/pwrite" ~actor:0 ~t0:0.
      ~cats:[| 0.; 0.; 0. |];
    Obs.Forensics.op_end fo ~t1:lat ~cats:[| media; lat -. media; 0. |]
  in
  List.iter (fun l -> op ~lat:l ~media:(l /. 2.)) [ 50.; 300.; 100.; 200.; 300. ];
  Alcotest.(check (list string)) "keys" [ "fs/pwrite" ] (Obs.Forensics.keys fo);
  Alcotest.(check int) "population counted" 5
    (Obs.Forensics.total_ops fo "fs/pwrite");
  let exs = Obs.Forensics.exemplars fo "fs/pwrite" in
  Alcotest.(check int) "capped at k" 2 (List.length exs);
  (match exs with
  | [ a; b ] ->
      Alcotest.(check (float 0.)) "slowest first" 300. a.Obs.Forensics.ex_lat_ns;
      Alcotest.(check (float 0.)) "runner-up" 300. b.Obs.Forensics.ex_lat_ns;
      Alcotest.(check (list int)) "provenance: both 300s retained" [ 1; 4 ]
        (List.sort compare [ a.Obs.Forensics.ex_seq; b.Obs.Forensics.ex_seq ]);
      (* category decomposition is the snapshot delta *)
      Alcotest.(check (float 0.)) "cats sum to latency" 300.
        (Array.fold_left ( +. ) 0. a.Obs.Forensics.ex_cats)
  | _ -> Alcotest.fail "expected exactly two exemplars");
  (* a tie against a full list loses: the incumbent keeps its slot *)
  op ~lat:300. ~media:10.;
  Alcotest.(check (list int)) "tie rejected, incumbents stay" [ 1; 4 ]
    (List.sort compare
       (List.map
          (fun e -> e.Obs.Forensics.ex_seq)
          (Obs.Forensics.exemplars fo "fs/pwrite")));
  (* nested instrumented ops fold into the outermost capture *)
  Obs.Forensics.op_begin fo ~key:"fs/outer" ~actor:1 ~t0:0. ~cats:[| 0.; 0.; 0. |];
  Obs.Forensics.op_begin fo ~key:"fs/inner" ~actor:1 ~t0:1. ~cats:[| 0.; 0.; 0. |];
  Obs.Forensics.op_end fo ~t1:5. ~cats:[| 1.; 0.; 0. |];
  Obs.Forensics.op_end fo ~t1:10. ~cats:[| 2.; 0.; 0. |];
  Alcotest.(check (list string)) "inner op folded into outer"
    [ "fs/outer" ]
    (List.filter
       (fun k -> k = "fs/outer" || k = "fs/inner")
       (Obs.Forensics.keys fo))

(** Through the real capture hook: exemplars carry the op's inner spans,
    with the op's own span last — without the trace ring being on. *)
let test_forensics_span_capture () =
  let cfg =
    { Workloads.Multitenant.default_cfg with
      Workloads.Multitenant.ops_per_actor = 20 }
  in
  let r =
    Harness.Multiclient.run_scale ~cfg ~forensics:true
      Harness.Fs_config.Splitfs_posix ~nactors:8
  in
  let fo = Option.get r.Harness.Multiclient.sr_forensics in
  let checked = ref 0 in
  List.iter
    (fun key ->
      List.iter
        (fun ex ->
          match List.rev ex.Obs.Forensics.ex_spans with
          | last :: _ ->
              incr checked;
              let n = last.Obs.e_name in
              if not (String.length n > 3 && String.sub n 0 3 = "op:") then
                Alcotest.failf "%s: exemplar's last span is %S, not the op span"
                  key n
          | [] -> Alcotest.failf "%s: exemplar without spans" key)
        (Obs.Forensics.exemplars fo key))
    (Obs.Forensics.keys fo);
  Alcotest.(check bool) "some exemplars checked" true (!checked > 0)

(* --- exporters -------------------------------------------------------- *)

let test_openmetrics_export () =
  let tl = Obs.Timeline.create ~capacity:8 ~period_ns:10. () in
  let c = ref 0. in
  Obs.Timeline.add_source tl ~name:"cat/media" (fun () -> !c);
  c := 42.;
  Obs.Timeline.sample tl ~now:10.;
  let text = Obs.Timeline.openmetrics tl in
  let has sub =
    let nl = String.length text and ns = String.length sub in
    let rec go i = i + ns <= nl && (String.sub text i ns = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "metric name sanitized" true
    (has "splitfs_cat_media{series=\"cat/media\"} 42");
  Alcotest.(check bool) "HELP and TYPE rendered" true
    (has "# TYPE splitfs_cat_media gauge");
  Alcotest.(check bool) "ends with the OpenMetrics EOF marker" true
    (has "# EOF\n"
    && String.sub text (String.length text - 6) 6 = "# EOF\n")

(** Counter tracks ride along in the Chrome trace: with a timeline
    attached, [chrome_json] emits ["ph":"C"] events carrying the sampled
    values next to the spans. *)
let test_chrome_counter_tracks () =
  let env_ref = ref None in
  let (_ : Harness.Multiclient.scale_result) =
    Harness.Multiclient.run_scale
      ~cfg:
        { Workloads.Multitenant.default_cfg with
          Workloads.Multitenant.ops_per_actor = 20 }
      ~timeline:true
      ~on_env:(fun e ->
        env_ref := Some e;
        Obs.set_tracing e.Pmem.Env.obs true)
      Harness.Fs_config.Splitfs_posix ~nactors:8
  in
  let env = Option.get !env_ref in
  let doc = json_parse (Obs.chrome_json env.Pmem.Env.obs) in
  let events =
    match jfield "traceEvents" doc with
    | Some (Jarr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let counters =
    List.filter (fun e -> jfield "ph" e = Some (Jstr "C")) events
  in
  Alcotest.(check bool) "counter events present" true (List.length counters > 0);
  List.iter
    (fun e ->
      (match jfield "name" e with
      | Some (Jstr _) -> ()
      | _ -> Alcotest.fail "counter without name");
      match jfield "args" e with
      | Some (Jobj kvs) when List.mem_assoc "value" kvs -> ()
      | _ -> Alcotest.fail "counter without args.value")
    counters;
  Alcotest.(check bool) "span events still present" true
    (List.exists (fun e -> jfield "ph" e = Some (Jstr "X")) events)

(* --- histogram merge -------------------------------------------------- *)

let test_hist_merge () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  for i = 1 to 500 do Obs.Hist.record a (float_of_int i) done;
  for i = 501 to 1000 do Obs.Hist.record b (float_of_int i) done;
  let whole = Obs.Hist.create () in
  for i = 1 to 1000 do Obs.Hist.record whole (float_of_int i) done;
  Obs.Hist.merge ~into:a b;
  Alcotest.(check int) "merged count" (Obs.Hist.n whole) (Obs.Hist.n a);
  Alcotest.(check (float 0.)) "merged sum" (Obs.Hist.sum whole) (Obs.Hist.sum a);
  Alcotest.(check (float 0.)) "merged min" (Obs.Hist.min_v whole) (Obs.Hist.min_v a);
  Alcotest.(check (float 0.)) "merged max" (Obs.Hist.max_v whole) (Obs.Hist.max_v a);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "merged p%g = whole-population p%g" p p)
        (Obs.Hist.percentile whole p)
        (Obs.Hist.percentile a p))
    [ 50.; 90.; 99.; 99.9 ];
  (* merging an empty histogram is the identity *)
  let before = Obs.Hist.percentile a 50. in
  Obs.Hist.merge ~into:a (Obs.Hist.create ());
  Alcotest.(check (float 0.)) "merge with empty is identity" before
    (Obs.Hist.percentile a 50.)

let suite =
  [
    tc "identity: every stack" `Quick test_identity_all_stacks;
    tc "identity: multiclient" `Quick test_identity_multiclient;
    tc "identity: background category" `Quick test_background_attribution;
    tc "tracing leaves simulated ns bit-identical" `Quick
      test_tracing_bit_identical;
    tc "chrome trace json" `Quick test_chrome_json;
    tc "strace-style syscall lines" `Quick test_syscall_trace_lines;
    tc "histogram percentiles" `Quick test_hist_percentiles;
    tc "histogram edge cases" `Quick test_hist_edge_cases;
    tc "stats table and delta printers" `Quick test_stats_printers;
    tc "profile experiment shape" `Quick test_profile_experiment;
    tc "latency experiment shape" `Quick test_latency_experiment;
    tc "timeline identity: every stack" `Quick test_timeline_identity_all_stacks;
    tc "timeline ring wraparound" `Quick test_timeline_ring_wraparound;
    tc "timeline widen determinism" `Quick test_timeline_widen_determinism;
    tc "telemetry leaves simulated ns bit-identical" `Quick
      test_timeline_bit_identical;
    tc "clock funnel alloc-free with obs off" `Quick test_advance_alloc_free;
    tc "forensics top-k" `Quick test_forensics_topk;
    tc "forensics span capture" `Quick test_forensics_span_capture;
    tc "openmetrics export" `Quick test_openmetrics_export;
    tc "chrome counter tracks" `Quick test_chrome_counter_tracks;
    tc "histogram merge" `Quick test_hist_merge;
  ]
