(** Kernel file system (simulated ext4 DAX): POSIX behaviour, extents,
    relink/swap_extents, DAX mmap, and a model-based equivalence test
    against the in-memory reference file system. *)

let tc = Alcotest.test_case

let with_fs f =
  let _env, _kfs, sys = Util.make_kernel () in
  f (Kernelfs.Syscall.as_fsapi sys)

let test_create_write_read () =
  with_fs (fun fs ->
      let got = Util.fs_write_read_roundtrip fs "/a.txt" "hello ext4" in
      Util.check_str "roundtrip" "hello ext4" got)

let test_big_file () =
  with_fs (fun fs ->
      let content = Util.pattern ~seed:7 (300 * 1024) in
      let got = Util.fs_write_read_roundtrip fs "/big" content in
      Util.check_str "300K roundtrip" content got)

let test_sparse_read_zeroes () =
  with_fs (fun fs ->
      let fd = fs.open_ "/sparse" Fsapi.Flags.create_rw in
      Fsapi.Fs.pwrite_string fs fd "end" ~at:10000;
      let s = Fsapi.Fs.pread_exact fs fd ~len:10003 ~at:0 in
      Util.check_str "hole is zeros" (String.make 10000 '\000' ^ "end") s;
      fs.close fd)

let test_overwrite () =
  with_fs (fun fs ->
      Fsapi.Fs.write_file fs "/f" "aaaaaaaaaa";
      let fd = fs.open_ "/f" Fsapi.Flags.rdwr in
      Fsapi.Fs.pwrite_string fs fd "BB" ~at:4;
      fs.close fd;
      Util.check_str "overwritten" "aaaaBBaaaa" (Fsapi.Fs.read_file fs "/f"))

let test_unlink () =
  with_fs (fun fs ->
      Fsapi.Fs.write_file fs "/doomed" "x";
      fs.unlink "/doomed";
      Alcotest.(check bool) "gone" false (Fsapi.Fs.exists fs "/doomed"))

let test_unlink_frees_blocks () =
  let _env, kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let free0 = Kernelfs.Alloc.free_blocks (Kernelfs.Ext4.allocator kfs) in
  Fsapi.Fs.write_file fs "/blob" (String.make 65536 'b');
  Alcotest.(check bool) "blocks consumed" true
    (Kernelfs.Alloc.free_blocks (Kernelfs.Ext4.allocator kfs) < free0);
  fs.unlink "/blob";
  Util.check_int "blocks back" free0
    (Kernelfs.Alloc.free_blocks (Kernelfs.Ext4.allocator kfs))

let test_unlink_while_open () =
  with_fs (fun fs ->
      Fsapi.Fs.write_file fs "/held" "still here";
      let fd = fs.open_ "/held" Fsapi.Flags.rdonly in
      fs.unlink "/held";
      let s = Fsapi.Fs.pread_exact fs fd ~len:10 ~at:0 in
      Util.check_str "readable after unlink" "still here" s;
      fs.close fd)

let test_rename () =
  with_fs (fun fs ->
      Fsapi.Fs.write_file fs "/old" "content";
      fs.rename "/old" "/new";
      Alcotest.(check bool) "old gone" false (Fsapi.Fs.exists fs "/old");
      Util.check_str "moved" "content" (Fsapi.Fs.read_file fs "/new"))

let test_rename_overwrites () =
  with_fs (fun fs ->
      Fsapi.Fs.write_file fs "/src" "SRC";
      Fsapi.Fs.write_file fs "/dst" "DST";
      fs.rename "/src" "/dst";
      Util.check_str "replaced" "SRC" (Fsapi.Fs.read_file fs "/dst"))

let test_directories () =
  with_fs (fun fs ->
      fs.mkdir "/d";
      fs.mkdir "/d/e";
      Fsapi.Fs.write_file fs "/d/e/f.txt" "deep";
      Alcotest.(check (list string)) "listing" [ "e" ] (fs.readdir "/d");
      Util.check_str "deep read" "deep" (Fsapi.Fs.read_file fs "/d/e/f.txt");
      Alcotest.check_raises "rmdir nonempty"
        (Fsapi.Errno.Error (Fsapi.Errno.ENOTEMPTY, "/d/e"))
        (fun () -> fs.rmdir "/d/e");
      fs.unlink "/d/e/f.txt";
      fs.rmdir "/d/e";
      Alcotest.(check (list string)) "empty" [] (fs.readdir "/d"))

let test_errors () =
  with_fs (fun fs ->
      Alcotest.check_raises "ENOENT"
        (Fsapi.Errno.Error (Fsapi.Errno.ENOENT, "missing"))
        (fun () -> ignore (fs.open_ "/missing" Fsapi.Flags.rdonly));
      Fsapi.Fs.write_file fs "/f" "x";
      Alcotest.check_raises "EEXIST"
        (Fsapi.Errno.Error (Fsapi.Errno.EEXIST, "/f"))
        (fun () ->
          ignore (fs.open_ "/f" Fsapi.Flags.(excl (creat rdwr)))))

let test_ftruncate () =
  with_fs (fun fs ->
      let fd = fs.open_ "/t" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "0123456789";
      fs.ftruncate fd 4;
      Util.check_int "shrunk" 4 (fs.fstat fd).Fsapi.Fs.st_size;
      fs.ftruncate fd 8;
      let s = Fsapi.Fs.pread_exact fs fd ~len:8 ~at:0 in
      Util.check_str "zero extended" "0123\000\000\000\000" s;
      fs.close fd)

let test_append_mode () =
  with_fs (fun fs ->
      let fd = fs.open_ "/log" Fsapi.Flags.(append (creat wronly)) in
      Fsapi.Fs.write_string fs fd "one ";
      Fsapi.Fs.write_string fs fd "two";
      fs.close fd;
      Util.check_str "appended" "one two" (Fsapi.Fs.read_file fs "/log"))

let test_dup_shares_offset () =
  with_fs (fun fs ->
      Fsapi.Fs.write_file fs "/d" "abcdef";
      let fd = fs.open_ "/d" Fsapi.Flags.rdonly in
      let fd2 = fs.dup fd in
      let b = Bytes.create 2 in
      ignore (fs.read fd ~buf:b ~boff:0 ~len:2);
      ignore (fs.read fd2 ~buf:b ~boff:0 ~len:2);
      Util.check_str "dup offset shared" "cd" (Bytes.to_string b);
      fs.close fd;
      fs.close fd2)

(* --- relink / swap_extents --- *)

let test_swap_extents () =
  let _env, kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let a = Util.pattern ~seed:1 8192 and b = Util.pattern ~seed:2 8192 in
  Fsapi.Fs.write_file fs "/a" a;
  Fsapi.Fs.write_file fs "/b" b;
  let fa = fs.open_ "/a" Fsapi.Flags.rdwr and fb = fs.open_ "/b" Fsapi.Flags.rdwr in
  Kernelfs.Syscall.ioctl_swap_extents sys ~src_fd:fa ~src_blk:0 ~dst_fd:fb
    ~dst_blk:0 ~nblks:2;
  Util.check_str "a has b's data" b (Fsapi.Fs.read_file fs "/a");
  Util.check_str "b has a's data" a (Fsapi.Fs.read_file fs "/b");
  ignore kfs;
  fs.close fa;
  fs.close fb

let test_relink_moves_data () =
  let env, kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let staged = Util.pattern ~seed:3 16384 in
  Fsapi.Fs.write_file fs "/staging" staged;
  Fsapi.Fs.write_file fs "/target" "";
  let sfd = fs.open_ "/staging" Fsapi.Flags.rdwr in
  let tfd = fs.open_ "/target" Fsapi.Flags.rdwr in
  let wrote0 = env.Pmem.Env.stats.Pmem.Stats.pm_write_bytes in
  let journal0 = env.Pmem.Env.stats.Pmem.Stats.journal_bytes in
  Kernelfs.Syscall.relink sys ~src_fd:sfd ~src_blk:0 ~dst_fd:tfd ~dst_blk:0
    ~nblks:4 ~dst_size:(Some 16384);
  let wrote1 = env.Pmem.Env.stats.Pmem.Stats.pm_write_bytes in
  let journal1 = env.Pmem.Env.stats.Pmem.Stats.journal_bytes in
  Util.check_str "target holds staged data" staged (Fsapi.Fs.read_file fs "/target");
  Util.check_int "staging now sparse" 0
    (Kernelfs.Extent_tree.blocks
       (Kernelfs.Syscall.inode_of_fd sys sfd).Kernelfs.Ext4.extents);
  (* metadata-only: all PM writes of the relink are journal traffic, none of
     the 16 KB of file data is copied *)
  Util.check_int "only journal writes" (journal1 - journal0) (wrote1 - wrote0);
  Util.check_int "relink counted" 1 env.Pmem.Env.stats.Pmem.Stats.relinks;
  ignore kfs;
  fs.close sfd;
  fs.close tfd

let test_relink_replaces_blocks () =
  let _env, kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let old_data = String.make 8192 'o' and new_data = Util.pattern ~seed:9 8192 in
  Fsapi.Fs.write_file fs "/t" old_data;
  Fsapi.Fs.write_file fs "/s" new_data;
  let free0 = Kernelfs.Alloc.free_blocks (Kernelfs.Ext4.allocator kfs) in
  let sfd = fs.open_ "/s" Fsapi.Flags.rdwr and tfd = fs.open_ "/t" Fsapi.Flags.rdwr in
  Kernelfs.Syscall.relink sys ~src_fd:sfd ~src_blk:0 ~dst_fd:tfd ~dst_blk:0
    ~nblks:2 ~dst_size:None;
  Util.check_str "replaced" new_data (Fsapi.Fs.read_file fs "/t");
  (* the replaced blocks of /t must have been freed *)
  Util.check_int "replaced blocks freed" (free0 + 2)
    (Kernelfs.Alloc.free_blocks (Kernelfs.Ext4.allocator kfs));
  fs.close sfd;
  fs.close tfd

(* --- fallocate and mmap --- *)

let test_fallocate_and_mmap () =
  let env, kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  let fd = fs.open_ "/m" Fsapi.Flags.create_rw in
  let allocated = Kernelfs.Syscall.fallocate sys fd ~off:0 ~len:(2 * 1024 * 1024) in
  Util.check_int "512 blocks allocated" 512 allocated;
  let m = Kernelfs.Syscall.mmap sys fd ~off:0 ~len:(2 * 1024 * 1024) in
  Alcotest.(check bool) "huge mapping" true m.Kernelfs.Ext4.m_huge;
  Util.check_int "one huge fault" 1 env.Pmem.Env.stats.Pmem.Stats.page_faults_huge;
  (* store through the mapping, read back through the kernel *)
  (match Kernelfs.Ext4.translate kfs m ~max:4096 ~file_off:4096 with
  | Some (addr, run) ->
      Alcotest.(check bool) "long run" true (run >= 4096);
      let data = Bytes.of_string "via-mmap" in
      Pmem.Device.store_nt env.Pmem.Env.dev ~addr data ~off:0 ~len:8
  | None -> Alcotest.fail "expected translation");
  Kernelfs.Syscall.set_size sys fd 8192;
  let s = Fsapi.Fs.pread_exact fs fd ~len:8 ~at:4096 in
  Util.check_str "store visible through kernel read" "via-mmap" s;
  fs.close fd

let test_mmap_small_file_not_huge () =
  let env, _kfs, sys = Util.make_kernel () in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  Fsapi.Fs.write_file fs "/small" (String.make 8192 's');
  let fd = fs.open_ "/small" Fsapi.Flags.rdwr in
  let m = Kernelfs.Syscall.mmap sys fd ~off:0 ~len:8192 in
  Alcotest.(check bool) "not huge" false m.Kernelfs.Ext4.m_huge;
  Util.check_int "two 4K faults" 2 env.Pmem.Env.stats.Pmem.Stats.page_faults;
  fs.close fd

(* --- model-based equivalence with the reference FS --- *)

type op =
  | Write of int * int * int  (* file idx, offset, length *)
  | Read of int * int * int
  | Trunc of int * int
  | Unlink of int
  | Renam of int * int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun f o l -> Write (f, o, l)) (int_bound 3) (int_bound 20000) (int_range 1 5000));
        (3, map3 (fun f o l -> Read (f, o, l)) (int_bound 3) (int_bound 25000) (int_range 1 5000));
        (1, map2 (fun f s -> Trunc (f, s)) (int_bound 3) (int_bound 20000));
        (1, map (fun f -> Unlink f) (int_bound 3));
        (1, map2 (fun a b -> Renam (a, b)) (int_bound 3) (int_bound 3));
      ])

let show_op = function
  | Write (f, o, l) -> Printf.sprintf "Write(%d,%d,%d)" f o l
  | Read (f, o, l) -> Printf.sprintf "Read(%d,%d,%d)" f o l
  | Trunc (f, s) -> Printf.sprintf "Trunc(%d,%d)" f s
  | Unlink f -> Printf.sprintf "Unlink(%d)" f
  | Renam (a, b) -> Printf.sprintf "Renam(%d,%d)" a b

let show_ops ops = String.concat "; " (List.map show_op ops)

let arb_ops =
  QCheck.make ~print:show_ops QCheck.Gen.(list_size (int_range 1 40) op_gen)

let path_of i = Printf.sprintf "/f%d" i

let apply_op (fs : Fsapi.Fs.t) op =
  let open_rw i = fs.open_ (path_of i) Fsapi.Flags.create_rw in
  match op with
  | Write (f, off, len) ->
      let fd = open_rw f in
      let buf = Bytes.of_string (Util.pattern ~seed:(f + off + len) len) in
      ignore (fs.pwrite fd ~buf ~boff:0 ~len ~at:off);
      fs.close fd;
      None
  | Read (f, off, len) ->
      let fd = open_rw f in
      let buf = Bytes.make len '\255' in
      let n = fs.pread fd ~buf ~boff:0 ~len ~at:off in
      fs.close fd;
      Some (n, Bytes.sub_string buf 0 n)
  | Trunc (f, size) ->
      let fd = open_rw f in
      fs.ftruncate fd size;
      fs.close fd;
      None
  | Unlink f -> (
      match fs.unlink (path_of f) with
      | () -> None
      | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> None)
  | Renam (a, b) when a <> b -> (
      match fs.rename (path_of a) (path_of b) with
      | () -> None
      | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> None)
  | Renam _ -> None

let final_states_agree fs_a fs_b =
  List.for_all
    (fun i ->
      let read fs =
        match Fsapi.Fs.read_file fs (path_of i) with
        | s -> Some s
        | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> None
      in
      read fs_a = read fs_b)
    [ 0; 1; 2; 3 ]

let prop_matches_reference =
  QCheck.Test.make ~name:"ext4 sim matches reference FS on random ops"
    ~count:60
    arb_ops
    (fun ops ->
      let _env, _kfs, sys = Util.make_kernel () in
      let fs = Kernelfs.Syscall.as_fsapi sys in
      let reference = Fsapi.Ref_fs.make () in
      let ok = ref true in
      List.iter
        (fun op ->
          let a = apply_op fs op and b = apply_op reference op in
          if a <> b then ok := false)
        ops;
      !ok && final_states_agree fs reference)

let suite =
  [
    tc "create, write, read" `Quick test_create_write_read;
    tc "large file" `Quick test_big_file;
    tc "sparse file reads zeros" `Quick test_sparse_read_zeroes;
    tc "overwrite" `Quick test_overwrite;
    tc "unlink" `Quick test_unlink;
    tc "unlink frees blocks" `Quick test_unlink_frees_blocks;
    tc "unlink while open" `Quick test_unlink_while_open;
    tc "rename" `Quick test_rename;
    tc "rename overwrites" `Quick test_rename_overwrites;
    tc "directories" `Quick test_directories;
    tc "error codes" `Quick test_errors;
    tc "ftruncate" `Quick test_ftruncate;
    tc "O_APPEND" `Quick test_append_mode;
    tc "dup shares offset" `Quick test_dup_shares_offset;
    tc "swap_extents ioctl" `Quick test_swap_extents;
    tc "relink moves data without copy" `Quick test_relink_moves_data;
    tc "relink frees replaced blocks" `Quick test_relink_replaces_blocks;
    tc "fallocate gives huge-page mmap" `Quick test_fallocate_and_mmap;
    tc "small mmap uses 4K faults" `Quick test_mmap_small_file_not_huge;
    QCheck_alcotest.to_alcotest prop_matches_reference;
  ]
