(** The shared POSIX surface: helper functions, flag semantics, the
    reference file system itself, and the jbd2-like journal accounting. *)

let tc = Alcotest.test_case

let test_flags () =
  let f = Fsapi.Flags.create_trunc in
  Alcotest.(check bool) "writable" true (Fsapi.Flags.writable f);
  Alcotest.(check bool) "not readable" false (Fsapi.Flags.readable f);
  Alcotest.(check bool) "creat" true f.Fsapi.Flags.creat;
  Alcotest.(check bool) "trunc" true f.Fsapi.Flags.trunc;
  let a = Fsapi.Flags.(append rdwr) in
  Alcotest.(check bool) "rdwr readable+writable" true
    (Fsapi.Flags.readable a && Fsapi.Flags.writable a && a.Fsapi.Flags.append)

let with_ref f = f (Fsapi.Ref_fs.make ())

let test_helpers_roundtrip () =
  with_ref (fun fs ->
      Fsapi.Fs.mkdir_p fs "/a/b/c";
      Fsapi.Fs.write_file fs "/a/b/c/x" "deep content";
      Util.check_str "read_file" "deep content" (Fsapi.Fs.read_file fs "/a/b/c/x");
      Util.check_int "file_size" 12 (Fsapi.Fs.file_size fs "/a/b/c/x");
      Alcotest.(check bool) "exists" true (Fsapi.Fs.exists fs "/a/b/c/x");
      Alcotest.(check bool) "not exists" false (Fsapi.Fs.exists fs "/a/b/nope");
      (* mkdir_p is idempotent *)
      Fsapi.Fs.mkdir_p fs "/a/b/c")

let test_pread_exact_raises_at_eof () =
  with_ref (fun fs ->
      Fsapi.Fs.write_file fs "/short" "abc";
      let fd = fs.Fsapi.Fs.open_ "/short" Fsapi.Flags.rdonly in
      Alcotest.check_raises "eof"
        (Fsapi.Errno.Error (Fsapi.Errno.EINVAL, "pread_exact: eof"))
        (fun () -> ignore (Fsapi.Fs.pread_exact fs fd ~len:10 ~at:0)))

let test_ref_fs_is_posixish () =
  with_ref (fun fs ->
      (* a quick sanity pass over the model itself, since every other file
         system is judged against it *)
      let fd = fs.Fsapi.Fs.open_ "/f" Fsapi.Flags.create_rw in
      Fsapi.Fs.pwrite_string fs fd "xyz" ~at:5;
      Util.check_int "sparse size" 8 (fs.Fsapi.Fs.fstat fd).Fsapi.Fs.st_size;
      let s = Fsapi.Fs.pread_exact fs fd ~len:8 ~at:0 in
      Util.check_str "hole zeros" "\000\000\000\000\000xyz" s;
      fs.Fsapi.Fs.ftruncate fd 6;
      Util.check_int "truncated" 6 (fs.Fsapi.Fs.fstat fd).Fsapi.Fs.st_size;
      fs.Fsapi.Fs.close fd;
      Alcotest.check_raises "EBADF after close"
        (Fsapi.Errno.Error (Fsapi.Errno.EBADF, string_of_int fd))
        (fun () -> fs.Fsapi.Fs.fsync fd))

let test_errno_printer () =
  Util.check_str "printer registered" "ENOENT \"/x\""
    (Printexc.to_string (Fsapi.Errno.Error (Fsapi.Errno.ENOENT, "/x")))

let test_crc32_known_vector () =
  (* standard CRC-32 of "123456789" is 0xCBF43926 *)
  Util.check_int "check vector" 0xCBF43926 (Splitfs.Crc32.string "123456789");
  Util.check_int "empty" 0 (Splitfs.Crc32.string "")

let test_journal_accounting () =
  let env = Util.make_env () in
  let j =
    Kernelfs.Journal.create ~env ~region_start:0 ~region_len:(1024 * 1024)
      ~block_size:4096 ()
  in
  let s = env.Pmem.Env.stats in
  Kernelfs.Journal.commit j ~meta_blocks:3;
  Util.check_int "one commit" 1 s.Pmem.Stats.journal_commits;
  (* descriptor + 3 metadata copies + commit record = 5 blocks *)
  Util.check_int "journal bytes" (5 * 4096) s.Pmem.Stats.journal_bytes;
  (* one fence per commit since the blocks-before-record fence was
     proven redundant and removed (PR 7 fence minimization) *)
  Util.check_int "one fence" 1 s.Pmem.Stats.fences;
  (* empty transactions are free *)
  Kernelfs.Journal.commit j ~meta_blocks:0;
  Util.check_int "still one commit" 1 s.Pmem.Stats.journal_commits;
  (* the journal region wraps rather than overflowing *)
  for _ = 1 to 200 do
    Kernelfs.Journal.commit j ~meta_blocks:4
  done;
  Util.check_int "commits counted" 201 (Kernelfs.Journal.commits j)

let test_zipf_deterministic () =
  let sample seed =
    let rng = Workloads.Rng.create seed in
    let z = Workloads.Zipf.create 100 in
    List.init 50 (fun _ -> Workloads.Zipf.sample z rng)
  in
  Alcotest.(check (list int)) "same seed, same stream" (sample 5) (sample 5)

let test_str_split () =
  Alcotest.(check (list string)) "basic" [ "a"; "b"; "c" ]
    (Apps.Str_split.split_on_string ~sep:"--" "a--b--c");
  Alcotest.(check (list string)) "no sep" [ "abc" ]
    (Apps.Str_split.split_on_string ~sep:"--" "abc");
  Alcotest.(check (list string)) "trailing" [ "a"; "" ]
    (Apps.Str_split.split_on_string ~sep:"--" "a--")

let suite =
  [
    tc "flag combinators" `Quick test_flags;
    tc "fs helpers" `Quick test_helpers_roundtrip;
    tc "pread_exact raises at EOF" `Quick test_pread_exact_raises_at_eof;
    tc "reference FS POSIX semantics" `Quick test_ref_fs_is_posixish;
    tc "errno printer" `Quick test_errno_printer;
    tc "crc32 check vector" `Quick test_crc32_known_vector;
    tc "journal accounting" `Quick test_journal_accounting;
    tc "zipf deterministic" `Quick test_zipf_deterministic;
    tc "split_on_string" `Quick test_str_split;
  ]
