(** Application substrates: LSM store (WAL, SSTables, compaction,
    recovery), AOF store, B+tree/pager database — unit, property and
    crash-recovery tests, run over the SplitFS stack. *)

let tc = Alcotest.test_case

let with_stack ?(mode = Splitfs.Config.Posix) f =
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~capacity:(64 * 1024 * 1024) ~mode () in
  f env sys fs

(* --- bloom --- *)

let test_bloom () =
  let b = Apps.Bloom.create ~expected:1000 () in
  for i = 0 to 999 do
    Apps.Bloom.add b (Printf.sprintf "key%d" i)
  done;
  for i = 0 to 999 do
    Alcotest.(check bool) "present" true
      (Apps.Bloom.may_contain b (Printf.sprintf "key%d" i))
  done;
  (* false-positive rate should be low *)
  let fp = ref 0 in
  for i = 1000 to 1999 do
    if Apps.Bloom.may_contain b (Printf.sprintf "key%d" i) then incr fp
  done;
  Alcotest.(check bool) (Printf.sprintf "few false positives (%d)" !fp) true (!fp < 100);
  (* serialization roundtrip *)
  let b2 = Apps.Bloom.of_string (Apps.Bloom.to_string b) in
  Alcotest.(check bool) "roundtrip" true (Apps.Bloom.may_contain b2 "key1")

(* --- sstable --- *)

let test_sstable_roundtrip () =
  with_stack (fun _env _sys fs ->
      let records =
        List.init 500 (fun i ->
            {
              Apps.Sstable.key = Printf.sprintf "k%05d" (i * 3);
              value = (if i mod 7 = 0 then None else Some (Util.pattern ~seed:i 100));
            })
      in
      Apps.Sstable.write fs "/table.sst" records;
      let t = Apps.Sstable.open_ fs "/table.sst" in
      List.iter
        (fun (r : Apps.Sstable.record) ->
          match Apps.Sstable.find fs t r.Apps.Sstable.key with
          | Some v -> Alcotest.(check bool) "value matches" true (v = r.Apps.Sstable.value)
          | None -> Alcotest.fail ("missing " ^ r.Apps.Sstable.key))
        records;
      Alcotest.(check (option (option string))) "absent key" None
        (Apps.Sstable.find fs t "k00001");
      Util.check_str "smallest" "k00000" t.Apps.Sstable.smallest;
      Util.check_str "largest" (Printf.sprintf "k%05d" (499 * 3)) t.Apps.Sstable.largest;
      Apps.Sstable.close fs t)

let test_sstable_records_from () =
  with_stack (fun _env _sys fs ->
      let records =
        List.init 200 (fun i ->
            { Apps.Sstable.key = Printf.sprintf "k%04d" i; value = Some "v" })
      in
      Apps.Sstable.write fs "/t2.sst" records;
      let t = Apps.Sstable.open_ fs "/t2.sst" in
      let got = Apps.Sstable.records_from fs t ~start:"k0150" ~limit:10 in
      Util.check_int "bounded" 10 (List.length got);
      Util.check_str "first" "k0150" (List.hd got).Apps.Sstable.key;
      Apps.Sstable.close fs t)

(* --- wal --- *)

let test_wal_replay () =
  with_stack (fun _env _sys fs ->
      let w = Apps.Wal.open_ fs "/test.wal" in
      Apps.Wal.append fs w (Apps.Wal.Put ("a", "1")) ~sync:false;
      Apps.Wal.append fs w (Apps.Wal.Put ("b", "2")) ~sync:true;
      Apps.Wal.append fs w (Apps.Wal.Delete "a") ~sync:true;
      Apps.Wal.close fs w;
      let ops = ref [] in
      let n = Apps.Wal.replay fs "/test.wal" (fun op -> ops := op :: !ops) in
      Util.check_int "three records" 3 n;
      Alcotest.(check bool) "order and content" true
        (List.rev !ops
        = [ Apps.Wal.Put ("a", "1"); Apps.Wal.Put ("b", "2"); Apps.Wal.Delete "a" ]))

let test_wal_torn_tail_ignored () =
  with_stack (fun _env _sys fs ->
      let w = Apps.Wal.open_ fs "/torn.wal" in
      Apps.Wal.append fs w (Apps.Wal.Put ("good", "record")) ~sync:true;
      Apps.Wal.close fs w;
      (* append garbage that looks like a truncated record *)
      let fd = fs.open_ "/torn.wal" Fsapi.Flags.(append wronly) in
      Fsapi.Fs.write_string fs fd "\x40\x00\x00\x00garbage";
      fs.close fd;
      let n = Apps.Wal.replay fs "/torn.wal" (fun _ -> ()) in
      Util.check_int "only the valid prefix" 1 n)

(* --- lsm --- *)

let small_lsm_cfg =
  { Apps.Lsm.default_config with Apps.Lsm.memtable_budget = 2 * 1024; l0_limit = 3 }

let test_lsm_basic () =
  with_stack (fun _env _sys fs ->
      let db = Apps.Lsm.open_ fs ~cfg:small_lsm_cfg "/lsm" in
      for i = 0 to 499 do
        Apps.Lsm.put db (Printf.sprintf "key%04d" i) (Printf.sprintf "val%d" i)
      done;
      let flushes, compactions, _, _ = Apps.Lsm.stats db in
      Alcotest.(check bool) "flushed" true (flushes > 0);
      Alcotest.(check bool) "compacted" true (compactions > 0);
      for i = 0 to 499 do
        match Apps.Lsm.get db (Printf.sprintf "key%04d" i) with
        | Some v -> Util.check_str "value" (Printf.sprintf "val%d" i) v
        | None -> Alcotest.fail (Printf.sprintf "missing key%04d" i)
      done;
      Apps.Lsm.close db)

let test_lsm_overwrite_and_delete () =
  with_stack (fun _env _sys fs ->
      let db = Apps.Lsm.open_ fs ~cfg:small_lsm_cfg "/lsm" in
      Apps.Lsm.put db "k" "first";
      Apps.Lsm.put db "k" "second";
      Alcotest.(check (option string)) "newest wins" (Some "second") (Apps.Lsm.get db "k");
      Apps.Lsm.delete db "k";
      Alcotest.(check (option string)) "deleted" None (Apps.Lsm.get db "k");
      (* deletion survives flush + compaction *)
      for i = 0 to 300 do
        Apps.Lsm.put db (Printf.sprintf "fill%04d" i) (String.make 64 'f')
      done;
      Alcotest.(check (option string)) "still deleted" None (Apps.Lsm.get db "k");
      Apps.Lsm.close db)

let test_lsm_scan () =
  with_stack (fun _env _sys fs ->
      let db = Apps.Lsm.open_ fs ~cfg:small_lsm_cfg "/lsm" in
      for i = 0 to 299 do
        Apps.Lsm.put db (Printf.sprintf "key%04d" i) (string_of_int i)
      done;
      Apps.Lsm.delete db "key0101";
      let results = Apps.Lsm.scan db ~start:"key0100" ~count:5 in
      Alcotest.(check (list (pair string string)))
        "scan skips tombstones"
        [ ("key0100", "100"); ("key0102", "102"); ("key0103", "103");
          ("key0104", "104"); ("key0105", "105") ]
        results;
      Apps.Lsm.close db)

let test_lsm_reopen_recovers () =
  with_stack (fun _env _sys fs ->
      let db = Apps.Lsm.open_ fs ~cfg:small_lsm_cfg "/lsm" in
      for i = 0 to 199 do
        Apps.Lsm.put db (Printf.sprintf "key%04d" i) (string_of_int i)
      done;
      (* no clean close: simulate process death (WAL + manifest recovery) *)
      let db2 = Apps.Lsm.open_ fs ~cfg:small_lsm_cfg "/lsm" in
      let missing = ref 0 in
      for i = 0 to 199 do
        if Apps.Lsm.get db2 (Printf.sprintf "key%04d" i) <> Some (string_of_int i)
        then incr missing
      done;
      Util.check_int "all recovered" 0 !missing;
      Apps.Lsm.close db2;
      ignore db)

let prop_lsm_matches_map =
  QCheck.Test.make ~name:"LSM store matches a Map model" ~count:30
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 300)
            (frequency
               [
                 (4, map2 (fun k v -> `Put (k, v)) (int_bound 50) (int_bound 1000));
                 (1, map (fun k -> `Del k) (int_bound 50));
                 (2, map (fun k -> `Get k) (int_bound 50));
               ])))
    (fun ops ->
      let _env, _kfs, _sys, _u, fs =
        Util.make_splitfs ~capacity:(64 * 1024 * 1024) ~mode:Splitfs.Config.Posix ()
      in
      let db = Apps.Lsm.open_ fs ~cfg:small_lsm_cfg "/prop" in
      let model = Hashtbl.create 64 in
      let key i = Printf.sprintf "key%03d" i in
      let ok = ref true in
      List.iter
        (function
          | `Put (k, v) ->
              Apps.Lsm.put db (key k) (string_of_int v);
              Hashtbl.replace model (key k) (string_of_int v)
          | `Del k ->
              Apps.Lsm.delete db (key k);
              Hashtbl.remove model (key k)
          | `Get k ->
              if Apps.Lsm.get db (key k) <> Hashtbl.find_opt model (key k) then
                ok := false)
        ops;
      (* final check of every key *)
      for i = 0 to 50 do
        if Apps.Lsm.get db (key i) <> Hashtbl.find_opt model (key i) then ok := false
      done;
      Apps.Lsm.close db;
      !ok)

(* --- aof --- *)

let test_aof () =
  with_stack (fun env _sys fs ->
      let now () = Pmem.Env.now env in
      let kv = Apps.Aof.open_ fs ~path:"/a.aof" ~now ~policy:Apps.Aof.Always () in
      Apps.Aof.set kv "user:1" "alice";
      Apps.Aof.set kv "user:2" "bob\nwith newline";
      Apps.Aof.del kv "user:1";
      Apps.Aof.set kv "user:3" "carol";
      Apps.Aof.close kv;
      (* recover from the AOF alone *)
      let kv2 = Apps.Aof.open_ fs ~path:"/a.aof" ~now () in
      Alcotest.(check (option string)) "deleted" None (Apps.Aof.get kv2 "user:1");
      Alcotest.(check (option string)) "escaped value" (Some "bob\nwith newline")
        (Apps.Aof.get kv2 "user:2");
      Alcotest.(check (option string)) "live" (Some "carol") (Apps.Aof.get kv2 "user:3");
      Util.check_int "size" 2 (Apps.Aof.size kv2);
      Apps.Aof.close kv2)

let test_aof_everysec_batches_fsync () =
  with_stack (fun env _sys fs ->
      let now () = Pmem.Env.now env in
      let kv = Apps.Aof.open_ fs ~path:"/b.aof" ~now ~policy:(Apps.Aof.Every_ns 1e9) () in
      let f0 = env.Pmem.Env.stats.Pmem.Stats.syscalls in
      for i = 0 to 99 do
        Apps.Aof.set kv (string_of_int i) "v"
      done;
      let traps = env.Pmem.Env.stats.Pmem.Stats.syscalls - f0 in
      (* 100 sets in well under a simulated second: no fsync-triggered traps
         beyond the appends' own staging behaviour *)
      Alcotest.(check bool)
        (Printf.sprintf "no per-op fsync (%d traps)" traps)
        true (traps < 50);
      Apps.Aof.close kv)

(* --- pager + btree --- *)

let test_pager_commit_checkpoint () =
  with_stack (fun _env _sys fs ->
      let p = Apps.Pager.open_ fs "/pg.db" ~checkpoint_frames:4 in
      let page n c = Bytes.make Apps.Pager.page_size c |> fun b -> (n, b) in
      let id0 = Apps.Pager.allocate_page p in
      let id1 = Apps.Pager.allocate_page p in
      Apps.Pager.commit p [ page id0 'a'; page id1 'b' ];
      Apps.Pager.commit p [ page id0 'c' ];
      (* exceeded checkpoint_frames: WAL was folded into the db file *)
      let _, checkpoints = Apps.Pager.stats p in
      Alcotest.(check bool) "checkpointed" true (checkpoints >= 0);
      Util.check_str "latest content" (String.make 64 'c')
        (Bytes.sub_string (Apps.Pager.read_page p id0) 0 64);
      Apps.Pager.close p)

let test_pager_recovery_drops_uncommitted () =
  with_stack (fun _env _sys fs ->
      (* hand-craft a WAL with one committed and one uncommitted frame *)
      let p = Apps.Pager.open_ fs "/r.db" ~checkpoint_frames:1000 in
      let id = Apps.Pager.allocate_page p in
      Apps.Pager.commit p [ (id, Bytes.make Apps.Pager.page_size 'x') ];
      (* mimic a crash mid-commit: a frame without a commit marker *)
      let wal_fd = fs.open_ "/r.db-wal" Fsapi.Flags.rdwr in
      let size = (fs.fstat wal_fd).Fsapi.Fs.st_size in
      let frame = Bytes.make (8 + Apps.Pager.page_size) '\000' in
      Bytes.set_int32_le frame 0 (Int32.of_int id);
      Bytes.set_int32_le frame 4 0l (* not a commit frame *);
      Bytes.fill frame 8 Apps.Pager.page_size 'y';
      ignore (fs.pwrite wal_fd ~buf:frame ~boff:0 ~len:(Bytes.length frame) ~at:size);
      fs.close wal_fd;
      (* reopen: the 'y' frame must be dropped, 'x' preserved *)
      let p2 = Apps.Pager.open_ fs "/r.db" ~checkpoint_frames:1000 in
      Util.check_str "committed page survives, uncommitted dropped"
        (String.make 32 'x')
        (Bytes.sub_string (Apps.Pager.read_page p2 id) 0 32);
      Apps.Pager.close p2)

let test_btree_basic () =
  with_stack (fun _env _sys fs ->
      let bt = Apps.Btree.open_ fs "/bt.db" ~checkpoint_frames:64 in
      for i = 0 to 999 do
        Apps.Btree.put bt (Printf.sprintf "key%06d" i) (Printf.sprintf "value-%d" i)
      done;
      Apps.Btree.commit bt;
      Util.check_int "entries" 1000 (Apps.Btree.entries bt);
      for i = 0 to 999 do
        Alcotest.(check (option string)) "lookup"
          (Some (Printf.sprintf "value-%d" i))
          (Apps.Btree.get bt (Printf.sprintf "key%06d" i))
      done;
      Alcotest.(check (option string)) "absent" None (Apps.Btree.get bt "nope");
      Apps.Btree.close bt)

let test_btree_persistence () =
  with_stack (fun _env _sys fs ->
      let bt = Apps.Btree.open_ fs "/persist.db" ~checkpoint_frames:64 in
      for i = 0 to 499 do
        Apps.Btree.put bt (Printf.sprintf "k%05d" i) (Util.pattern ~seed:i 80)
      done;
      Apps.Btree.close bt;
      let bt2 = Apps.Btree.open_ fs "/persist.db" ~checkpoint_frames:64 in
      Util.check_int "entries survive" 500 (Apps.Btree.entries bt2);
      for i = 0 to 499 do
        Alcotest.(check (option string)) "value survives"
          (Some (Util.pattern ~seed:i 80))
          (Apps.Btree.get bt2 (Printf.sprintf "k%05d" i))
      done;
      Apps.Btree.close bt2)

let test_btree_scan_delete () =
  with_stack (fun _env _sys fs ->
      let bt = Apps.Btree.open_ fs "/sd.db" ~checkpoint_frames:64 in
      for i = 0 to 99 do
        Apps.Btree.put bt (Printf.sprintf "k%03d" i) (string_of_int i)
      done;
      Alcotest.(check bool) "delete hits" true (Apps.Btree.delete bt "k050");
      Alcotest.(check bool) "delete misses" false (Apps.Btree.delete bt "k050");
      let scanned = Apps.Btree.scan bt ~start:"k049" ~count:3 in
      Alcotest.(check (list (pair string string))) "scan skips deleted"
        [ ("k049", "49"); ("k051", "51"); ("k052", "52") ]
        scanned;
      Apps.Btree.close bt)

let prop_btree_matches_map =
  QCheck.Test.make ~name:"B+tree matches a Map model" ~count:25
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 400)
            (map2 (fun k v -> (k, v)) (int_bound 120) (int_bound 10000))))
    (fun ops ->
      let _env, _kfs, _sys, _u, fs =
        Util.make_splitfs ~capacity:(64 * 1024 * 1024) ()
      in
      let bt = Apps.Btree.open_ fs "/pm.db" ~checkpoint_frames:64 in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let key = Printf.sprintf "key%04d" k in
          Apps.Btree.put bt key (string_of_int v);
          Hashtbl.replace model key (string_of_int v))
        ops;
      Apps.Btree.commit bt;
      let ok = ref (Apps.Btree.entries bt = Hashtbl.length model) in
      Hashtbl.iter
        (fun k v -> if Apps.Btree.get bt k <> Some v then ok := false)
        model;
      Apps.Btree.close bt;
      !ok)

(* --- waldb transactions --- *)

let test_waldb_transaction_atomicity () =
  with_stack (fun _env _sys fs ->
      let db = Apps.Waldb.open_ fs "/tx.db" ~checkpoint_frames:1000 () in
      Apps.Waldb.transaction db (fun () ->
          Apps.Waldb.put db ~table:"acct" "alice" "100";
          Apps.Waldb.put db ~table:"acct" "bob" "200");
      Apps.Waldb.close db;
      let db2 = Apps.Waldb.open_ fs "/tx.db" () in
      Alcotest.(check (option string)) "alice" (Some "100")
        (Apps.Waldb.get db2 ~table:"acct" "alice");
      Alcotest.(check (option string)) "bob" (Some "200")
        (Apps.Waldb.get db2 ~table:"acct" "bob");
      Apps.Waldb.close db2)

(* --- mmapdb (the mmap-native store failure-atomic msync targets) --- *)

let test_mmapdb_basic () =
  with_stack ~mode:Splitfs.Config.Fams (fun _env _sys fs ->
      let db = Apps.Mmapdb.open_ fs "/mdb" in
      Apps.Mmapdb.preallocate db 8;
      Alcotest.(check int) "preallocated" 8 (Apps.Mmapdb.npages db);
      let page c = Bytes.make Apps.Mmapdb.page_size c in
      Apps.Mmapdb.write_page db 3 (page 'x');
      Apps.Mmapdb.write_page db 5 (page 'y');
      Apps.Mmapdb.commit db;
      Apps.Mmapdb.write_page db 3 (page 'z');
      Apps.Mmapdb.commit db;
      Alcotest.(check int) "commits counted" 2 (Apps.Mmapdb.commits db);
      Alcotest.(check char) "page 3 overwritten in place" 'z'
        (Bytes.get (Apps.Mmapdb.read_page db 3) 0);
      Apps.Mmapdb.close db;
      (* a fresh open is the whole recovery protocol: no log to scan *)
      let db2 = Apps.Mmapdb.open_ fs "/mdb" in
      Alcotest.(check int) "size recovered from fstat" 8
        (Apps.Mmapdb.npages db2);
      Alcotest.(check char) "page 5 durable" 'y'
        (Bytes.get (Apps.Mmapdb.read_page db2 5) 0);
      Alcotest.(check char) "page 0 still zero" '\000'
        (Bytes.get (Apps.Mmapdb.read_page db2 0) 0))

(* On the fams stack an uncommitted in-place page store is invisible to
   recovery: a crash recovers the last msync image, never a torn mix. *)
let test_mmapdb_crash_recovers_last_commit () =
  with_stack ~mode:Splitfs.Config.Fams (fun env sys fs ->
      let db = Apps.Mmapdb.open_ fs "/mdb" in
      Apps.Mmapdb.preallocate db 4;
      let page c = Bytes.make Apps.Mmapdb.page_size c in
      Apps.Mmapdb.write_page db 1 (page 'a');
      Apps.Mmapdb.commit db;
      Apps.Mmapdb.write_page db 1 (page 'b');
      (* no commit: crash *)
      Pmem.Device.crash env.Pmem.Env.dev;
      ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0);
      let db2 = Apps.Mmapdb.open_ (Kernelfs.Syscall.as_fsapi sys) "/mdb" in
      Alcotest.(check char) "uncommitted store rolled back to msync image"
        'a'
        (Bytes.get (Apps.Mmapdb.read_page db2 1) 0))

let suite =
  [
    tc "bloom filter" `Quick test_bloom;
    tc "sstable roundtrip" `Quick test_sstable_roundtrip;
    tc "sstable bounded range read" `Quick test_sstable_records_from;
    tc "wal append/replay" `Quick test_wal_replay;
    tc "wal torn tail ignored" `Quick test_wal_torn_tail_ignored;
    tc "lsm put/get through compaction" `Quick test_lsm_basic;
    tc "lsm overwrite and delete" `Quick test_lsm_overwrite_and_delete;
    tc "lsm scan" `Quick test_lsm_scan;
    tc "lsm reopen recovers from WAL" `Quick test_lsm_reopen_recovers;
    tc "aof set/del/recover" `Quick test_aof;
    tc "aof everysec batches fsync" `Quick test_aof_everysec_batches_fsync;
    tc "pager commit and checkpoint" `Quick test_pager_commit_checkpoint;
    tc "pager recovery drops uncommitted tx" `Quick test_pager_recovery_drops_uncommitted;
    tc "btree basic" `Quick test_btree_basic;
    tc "btree persistence" `Quick test_btree_persistence;
    tc "btree scan and delete" `Quick test_btree_scan_delete;
    tc "waldb transaction atomicity" `Quick test_waldb_transaction_atomicity;
    tc "mmapdb basic: in-place pages, one-fsync commit" `Quick
      test_mmapdb_basic;
    tc "mmapdb on fams: crash recovers the last msync image" `Quick
      test_mmapdb_crash_recovers_last_commit;
    QCheck_alcotest.to_alcotest prop_lsm_matches_map;
    QCheck_alcotest.to_alcotest prop_btree_matches_map;
  ]
