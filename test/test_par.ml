(* Domain-parallel campaign runner (DESIGN.md §5j): the pool itself,
   deterministic seed partitioning, and job-count invariance of every
   campaign's report. *)

let tc = Alcotest.test_case

module Par = Par
module Rng = Workloads.Rng
module Explore = Crashcheck.Explore

(* ---- the pool ------------------------------------------------------- *)

let test_map_order () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map = List.map at %d job(s)" jobs)
        (List.map (fun x -> (x * x) + 1) items)
        (Par.map ~jobs (fun _ x -> (x * x) + 1) items))
    [ 1; 2; 4; 8 ]

let test_map_index () =
  let items = [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check (list string))
    "callback sees the item's index" [ "0a"; "1b"; "2c"; "3d"; "4e" ]
    (Par.map ~jobs:4 (fun i x -> string_of_int i ^ x) items)

exception Boom of int

let test_map_exception () =
  (* every odd item fails; the re-raised exception must be the
     lowest-index one no matter which domain hit it first *)
  match
    Par.map ~jobs:4
      (fun i x -> if i mod 2 = 1 then raise (Boom i) else x)
      (List.init 32 Fun.id)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom i -> Util.check_int "lowest-index failure wins" 1 i

let test_resolve_jobs () =
  Util.check_int "explicit wins" 3 (Par.resolve_jobs ~jobs:3 ());
  Util.check_int "clamped below" 1 (Par.resolve_jobs ~jobs:0 ());
  Util.check_int "clamped above" 64 (Par.resolve_jobs ~jobs:1000 ())

(* ---- seed derivation ------------------------------------------------ *)

let test_derive_stable () =
  List.iter
    (fun (seed, index) ->
      Util.check_int
        (Printf.sprintf "derive %#x %d is a pure function" seed index)
        (Rng.derive seed index) (Rng.derive seed index);
      Alcotest.(check bool) "non-negative" true (Rng.derive seed index >= 0))
    [ (0, 0); (0x51ED, 0); (0x51ED, 1); (0xFA17, 999); (max_int, 123) ]

let test_derive_distinct () =
  (* no collisions across 10k trial indices of one campaign, and the
     same index under different campaign seeds diverges too *)
  let tbl = Hashtbl.create 1024 in
  for index = 0 to 9_999 do
    let d = Rng.derive 0x51ED index in
    (match Hashtbl.find_opt tbl d with
    | Some prev ->
        Alcotest.failf "derive collision: indices %d and %d" prev index
    | None -> ());
    Hashtbl.add tbl d index
  done;
  Alcotest.(check bool) "campaign seeds diverge" true
    (Rng.derive 0x51ED 7 <> Rng.derive 0xFA17 7)

let test_derived_streams_independent () =
  (* a derived stream depends only on (seed, index) — drawing from one
     stream must not perturb another, unlike a shared RNG *)
  let draws seed index n =
    let rng = Rng.create_derived seed index in
    List.init n (fun _ -> Rng.int rng 1000)
  in
  let alone = draws 0x51ED 5 32 in
  let interleaved =
    let r3 = Rng.create_derived 0x51ED 3 in
    let r5 = Rng.create_derived 0x51ED 5 in
    List.init 32 (fun _ ->
        ignore (Rng.int r3 1000);
        Rng.int r5 1000)
  in
  Alcotest.(check (list int)) "stream 5 unaffected by stream 3" alone
    interleaved

(* ---- partition-independent sampling --------------------------------- *)

let synthetic_pending =
  [|
    { Pmem.Device.p_line = 4; p_versions = 3; p_nt_mask = 0b101 };
    { Pmem.Device.p_line = 17; p_versions = 1; p_nt_mask = 0b1 };
    { Pmem.Device.p_line = 99; p_versions = 5; p_nt_mask = 0 };
  |]

let survivor_key (s : Pmem.Device.survivor) =
  Printf.sprintf "%d/%d/%d" s.s_line s.s_keep s.s_tear

let vector_key svs = String.concat ";" (List.map survivor_key svs)

let test_sample_indexed_partition_free () =
  (* a budget of 64 samples drawn sequentially vs split over 4 "domains"
     (each claiming every 4th index, worst-case interleaving) must visit
     the same multiset of crash states *)
  let budget = 64 in
  let sequential =
    List.init budget (fun index ->
        vector_key (Explore.sample_indexed ~seed:0x51ED ~index synthetic_pending))
  in
  let partitioned =
    List.concat_map
      (fun domain ->
        List.filter_map
          (fun index ->
            if index mod 4 = domain then
              Some
                (vector_key
                   (Explore.sample_indexed ~seed:0x51ED ~index
                      synthetic_pending))
            else None)
          (List.init budget Fun.id))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list string))
    "partitioning does not change the sampled multiset"
    (List.sort compare sequential)
    (List.sort compare partitioned);
  (* and the space is actually being explored: the 64 draws are not all
     the same vector *)
  Alcotest.(check bool) "draws vary across indices" true
    (List.length (List.sort_uniq compare sequential) > 10)

(* ---- job-count invariance of the campaign reports ------------------- *)

let report_fingerprint jobs =
  let r =
    Crashcheck.check_mode ~samples:60 ~seed:0x51ED ~nops:12 ~jobs
      Splitfs.Config.Strict
  in
  Fmt.str "%a" Crashcheck.pp_mode_report r

let test_crashcheck_invariant () =
  let base = report_fingerprint 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "crashcheck report identical at %d jobs" jobs)
        base (report_fingerprint jobs))
    [ 2; 4; 8 ]

let faultcheck_fingerprint jobs =
  let rs = Faultcheck.run ~seed:0xFA17 ~nops:12 ~max_per_site:1 ~jobs () in
  Fmt.str "%a" (Fmt.list Faultcheck.pp_stack_report) rs

let test_faultcheck_invariant () =
  let base = faultcheck_fingerprint 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "faultcheck report identical at %d jobs" jobs)
        base (faultcheck_fingerprint jobs))
    [ 4 ]

let litmus_fingerprint jobs =
  let runs =
    Crashcheck.Litmus.run_corpus ~jobs () @ Crashcheck.Litmus.run_aux ~jobs ()
  in
  String.concat "\n"
    (List.map
       (fun (r : Crashcheck.Litmus.run) ->
         Printf.sprintf "%s/%s: %d points %d states %d violations"
           r.Crashcheck.Litmus.r_pattern r.Crashcheck.Litmus.r_config
           r.Crashcheck.Litmus.r_points r.Crashcheck.Litmus.r_states
           (List.length r.Crashcheck.Litmus.r_violations))
       runs)

let test_litmus_invariant () =
  let base = litmus_fingerprint 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "litmus corpus identical at %d jobs" jobs)
        base (litmus_fingerprint jobs))
    [ 4 ]

let suite =
  [
    tc "par map preserves order at 1/2/4/8 jobs" `Quick test_map_order;
    tc "par map passes the item index" `Quick test_map_index;
    tc "par map re-raises the lowest-index failure" `Quick test_map_exception;
    tc "job resolution clamps" `Quick test_resolve_jobs;
    tc "seed derivation is pure" `Quick test_derive_stable;
    tc "seed derivation is collision-free over 10k trials" `Quick
      test_derive_distinct;
    tc "derived streams are independent" `Quick
      test_derived_streams_independent;
    tc "partitioned sampling = sequential multiset" `Quick
      test_sample_indexed_partition_free;
    tc "crashcheck report invariant at 1/2/4/8 jobs" `Slow
      test_crashcheck_invariant;
    tc "faultcheck report invariant across jobs" `Slow
      test_faultcheck_invariant;
    tc "litmus corpus invariant across jobs" `Slow test_litmus_invariant;
  ]
