(** Crash consistency and recovery (paper §3.2 Table 3, §5.3).

    Crash = drop all unflushed cache lines (the device's dirty lines) and
    discard all U-Split volatile state; kernel metadata survives because
    every kernel operation commits its journal transaction before
    returning. Recovery = ext4 journal recovery (implicit) + operation-log
    replay ({!Splitfs.Recovery}). *)

let tc = Alcotest.test_case

(** Build a splitfs stack, run [work] against it, crash, recover, and hand
    a fresh post-crash kernel view to [check]. *)
let crash_scenario ~mode work check =
  let env, kfs, sys, u, fs = Util.make_splitfs ~mode () in
  work u fs;
  Pmem.Device.crash env.Pmem.Env.dev;
  (* all U-Split DRAM state (fd table, shadows, tails) dies with the crash;
     only [sys]'s durable kernel state and the device remain *)
  let report = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  check report (Kernelfs.Syscall.as_fsapi sys);
  ignore kfs

let kread fs path = Fsapi.Fs.read_file fs path

let test_strict_appends_survive_crash_without_fsync () =
  crash_scenario ~mode:Splitfs.Config.Strict
    (fun _u fs ->
      let fd = fs.open_ "/wal" Fsapi.Flags.create_rw in
      for i = 0 to 9 do
        Fsapi.Fs.write_string fs fd (Util.pattern ~seed:i 1000)
      done
      (* no fsync, no close: strict mode still makes each append atomic,
         synchronous and durable *))
    (fun report fs ->
      Alcotest.(check bool) "entries replayed" true (report.Splitfs.Recovery.entries_replayed > 0);
      let expect =
        String.concat "" (List.init 10 (fun i -> Util.pattern ~seed:i 1000))
      in
      Util.check_str "all appends recovered" expect (kread fs "/wal"))

let test_sync_appends_survive_crash () =
  crash_scenario ~mode:Splitfs.Config.Sync
    (fun _u fs ->
      let fd = fs.open_ "/s" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd (String.make 5000 'q'))
    (fun _report fs ->
      Util.check_str "synchronous appends durable" (String.make 5000 'q')
        (kread fs "/s"))

let test_posix_unsynced_appends_lost () =
  crash_scenario ~mode:Splitfs.Config.Posix
    (fun _u fs ->
      let fd = fs.open_ "/p" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "vanishes")
    (fun report fs ->
      (* POSIX appends need an fsync; without one the file exists (create
         was a kernel op) but is empty after recovery *)
      Util.check_int "nothing to replay" 0 report.Splitfs.Recovery.entries_replayed;
      Util.check_str "no data" "" (kread fs "/p"))

let test_posix_fsynced_appends_survive () =
  crash_scenario ~mode:Splitfs.Config.Posix
    (fun _u fs ->
      let fd = fs.open_ "/pf" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "persisted";
      fs.fsync fd)
    (fun _report fs -> Util.check_str "survived" "persisted" (kread fs "/pf"))

let test_strict_overwrite_survives () =
  crash_scenario ~mode:Splitfs.Config.Strict
    (fun _u fs ->
      Fsapi.Fs.write_file fs "/ow" (String.make 8192 'o');
      let fd = fs.open_ "/ow" Fsapi.Flags.rdwr in
      fs.fsync fd;
      Fsapi.Fs.pwrite_string fs fd "MID" ~at:4000
      (* no fsync: strict overwrites are synchronous + atomic *))
    (fun _report fs ->
      let s = kread fs "/ow" in
      Util.check_str "overwrite present" "MID" (String.sub s 4000 3);
      Util.check_str "neighbours intact" "oo" (String.sub s 3998 2))

let test_relinked_entries_not_replayed () =
  crash_scenario ~mode:Splitfs.Config.Strict
    (fun _u fs ->
      let fd = fs.open_ "/done" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "settled";
      fs.fsync fd)
    (fun report fs ->
      Util.check_int "nothing pending" 0 report.Splitfs.Recovery.entries_replayed;
      Util.check_str "data present" "settled" (kread fs "/done"))

let test_truncate_bounds_replay () =
  crash_scenario ~mode:Splitfs.Config.Strict
    (fun _u fs ->
      let fd = fs.open_ "/tb" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd (String.make 6000 'a');
      fs.ftruncate fd 2000)
    (fun _report fs ->
      let s = kread fs "/tb" in
      Util.check_int "truncated length" 2000 (String.length s);
      Alcotest.(check bool) "content" true (String.for_all (fun c -> c = 'a') s))

let test_unlink_cancels_replay () =
  crash_scenario ~mode:Splitfs.Config.Strict
    (fun _u fs ->
      let fd = fs.open_ "/gone" Fsapi.Flags.create_rw in
      Fsapi.Fs.write_string fs fd "dead data";
      fs.close fd |> ignore;
      fs.unlink "/gone")
    (fun _report fs ->
      Alcotest.(check bool) "file stays deleted" false (Fsapi.Fs.exists fs "/gone"))

let test_replay_is_idempotent () =
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  let fd = fs.open_ "/idem" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd (Util.pattern ~seed:42 9000);
  Pmem.Device.crash env.Pmem.Env.dev;
  let r1 = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  let kfs_view = Kernelfs.Syscall.as_fsapi sys in
  let after1 = kread kfs_view "/idem" in
  (* crash again during/after recovery and recover once more *)
  Pmem.Device.crash env.Pmem.Env.dev;
  let r2 = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  let after2 = kread kfs_view "/idem" in
  Util.check_str "same state after double recovery" after1 after2;
  Alcotest.(check bool) "first replayed" true (r1.Splitfs.Recovery.entries_replayed > 0);
  Util.check_int "second recovery found clean log" 0 r2.Splitfs.Recovery.entries_scanned

(* Satellite: recovery idempotence at EVERY crash state of a publish
   window. The recovery process can itself die and re-run, so a double
   replay of the surviving op-log must land on the same bytes as a
   single replay — including the states where the crash hits mid-publish
   (fams: commit record persisted, relink not). Each state runs the
   workload on a fresh stack, crashes into it, recovers, crashes the
   recovered-but-idle device again, recovers once more and compares. *)
let test_double_replay_idempotent mode () =
  let module R = Crashcheck.Runner in
  let module E = Crashcheck.Explore in
  let w =
    {
      Crashcheck.Workload.mode;
      nfiles = 1;
      initial = [| 64 |];
      ops =
        [
          Crashcheck.Workload.Write { file = 0; at = 0; len = 256; seed = 7 };
          Crashcheck.Workload.Fsync { file = 0 };
          Crashcheck.Workload.Write { file = 0; at = 64; len = 128; seed = 8 };
        ];
    }
  in
  let trial ~(point : E.point) ~survivors =
    let st = R.build mode in
    let fds = R.setup w st.R.fs in
    let dev = st.R.env.Pmem.Env.dev in
    Pmem.Device.journal_begin dev;
    Pmem.Device.arm_crash dev ~fence:point.E.fence ~survivors;
    let cp () = Splitfs.Usplit.relink_all st.R.u in
    (try
       List.iter (R.apply ~checkpoint:cp st.R.fs fds) w.Crashcheck.Workload.ops;
       (* armed fence past the last one: crash at end of trace *)
       Pmem.Device.crash_partial dev ~survivors
     with Pmem.Device.Crashed -> ());
    Pmem.Device.resume dev;
    Pmem.Device.journal_stop dev;
    ignore (Splitfs.Recovery.recover ~sys:st.R.sys ~env:st.R.env ~instance:0);
    let after1 = R.read_back st.R.sys 0 in
    Pmem.Device.crash dev;
    let r2 = Splitfs.Recovery.recover ~sys:st.R.sys ~env:st.R.env ~instance:0 in
    let after2 = R.read_back st.R.sys 0 in
    (after1, r2, after2)
  in
  let rng = Workloads.Rng.create 0x1DE8 in
  List.iter
    (fun (p : E.point) ->
      let states =
        if E.state_count p.E.pending <= 512 then E.enumerate p.E.pending
        else List.init 64 (fun _ -> E.sample rng p.E.pending)
      in
      List.iter
        (fun survivors ->
          let after1, r2, after2 = trial ~point:p ~survivors in
          Alcotest.(check bool)
            (Printf.sprintf "fence %d: double replay = single replay" p.E.fence)
            true (after1 = after2);
          Util.check_int
            (Printf.sprintf "fence %d: second recovery finds a settled log"
               p.E.fence)
            0 r2.Splitfs.Recovery.entries_replayed)
        states)
    (R.profile w)

let test_torn_tail_entry_skipped () =
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  let fd = fs.open_ "/torn" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "good data!";
  (* simulate a torn final entry: garbage bytes after the valid entries *)
  (match Splitfs.Usplit.oplog _u with
  | Some log ->
      let used = Splitfs.Oplog.entries_written log * 64 in
      let kfd = Kernelfs.Syscall.open_ sys (Splitfs.Oplog.path log) Fsapi.Flags.rdwr in
      let junk = Bytes.make 17 '\xCD' in
      ignore (Kernelfs.Syscall.pwrite sys kfd ~buf:junk ~boff:0 ~len:17 ~at:used);
      Kernelfs.Syscall.close sys kfd
  | None -> Alcotest.fail "no oplog");
  Pmem.Device.crash env.Pmem.Env.dev;
  let report = Splitfs.Recovery.recover ~sys ~env ~instance:0 in
  Util.check_int "torn entry detected" 1 report.Splitfs.Recovery.torn_entries;
  Util.check_str "valid prefix replayed" "good data!"
    (kread (Kernelfs.Syscall.as_fsapi sys) "/torn")

let test_remount_after_recovery () =
  (* after crash + recovery, a fresh U-Split instance must serve the data *)
  let env, _kfs, sys, _u, fs = Util.make_splitfs ~mode:Splitfs.Config.Strict () in
  let fd = fs.open_ "/rm" Fsapi.Flags.create_rw in
  Fsapi.Fs.write_string fs fd "before crash";
  Pmem.Device.crash env.Pmem.Env.dev;
  ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0);
  let u2 =
    Splitfs.Usplit.mount
      ~cfg:(Util.small_splitfs_cfg Splitfs.Config.Strict)
      ~sys ~env ~instance:1 ()
  in
  let fs2 = Splitfs.Usplit.as_fsapi u2 in
  Util.check_str "fresh mount reads recovered data" "before crash"
    (Fsapi.Fs.read_file fs2 "/rm")

(* property: random op sequence + crash at a random point, recovered state
   must equal the state of a reference run that stops at the same point *)
let prop_strict_crash_recovers_everything =
  QCheck.Test.make
    ~name:"strict: crash at any point loses nothing (synchronous + atomic)"
    ~count:25
    QCheck.(pair Test_ext4.arb_ops (int_bound 100))
    (fun (ops, cut_pct) ->
      let cut = List.length ops * cut_pct / 100 in
      let prefix = List.filteri (fun i _ -> i < cut) ops in
      let env, _kfs, sys, _u, fs =
        Util.make_splitfs ~mode:Splitfs.Config.Strict ()
      in
      let reference = Fsapi.Ref_fs.make () in
      List.iter
        (fun op ->
          ignore (Test_ext4.apply_op fs op);
          ignore (Test_ext4.apply_op reference op))
        prefix;
      Pmem.Device.crash env.Pmem.Env.dev;
      ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0);
      Test_ext4.final_states_agree (Kernelfs.Syscall.as_fsapi sys) reference)

let suite =
  [
    tc "strict: appends survive crash without fsync" `Quick
      test_strict_appends_survive_crash_without_fsync;
    tc "sync: appends survive crash" `Quick test_sync_appends_survive_crash;
    tc "posix: unsynced appends are lost" `Quick test_posix_unsynced_appends_lost;
    tc "posix: fsynced appends survive" `Quick test_posix_fsynced_appends_survive;
    tc "strict: overwrites survive crash" `Quick test_strict_overwrite_survives;
    tc "relinked entries are not replayed" `Quick test_relinked_entries_not_replayed;
    tc "truncate bounds replay" `Quick test_truncate_bounds_replay;
    tc "unlink cancels replay" `Quick test_unlink_cancels_replay;
    tc "replay is idempotent" `Quick test_replay_is_idempotent;
    tc "strict: double replay = single, every crash state" `Quick
      (test_double_replay_idempotent Splitfs.Config.Strict);
    tc "fams: double replay = single, incl. mid-publish states" `Quick
      (test_double_replay_idempotent Splitfs.Config.Fams);
    tc "torn tail entry skipped" `Quick test_torn_tail_entry_skipped;
    tc "fresh mount after recovery" `Quick test_remount_after_recovery;
    QCheck_alcotest.to_alcotest prop_strict_crash_recovers_everything;
  ]
