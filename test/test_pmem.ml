(** Unit and property tests for the PM device simulator: persistence
    semantics, crash behaviour, cost accounting, wear tracking. *)

open Pmem

let tc = Alcotest.test_case

let with_dev f =
  let env = Util.make_env ~capacity:(4 * 1024 * 1024) () in
  f env env.Env.dev

let test_store_nt_durable () =
  with_dev (fun env dev ->
      let data = Bytes.of_string "hello persistent world" in
      Device.store_nt dev ~addr:4096 data ~off:0 ~len:(Bytes.length data);
      Device.fence dev;
      Device.crash dev;
      let back = Device.load_bytes dev ~addr:4096 ~len:(Bytes.length data) in
      Util.check_str "NT store survives crash" "hello persistent world"
        (Bytes.to_string back);
      ignore env)

let test_temporal_store_lost_on_crash () =
  with_dev (fun _ dev ->
      let data = Bytes.of_string "volatile" in
      Device.store dev ~addr:0 data ~off:0 ~len:8;
      Device.crash dev;
      let back = Device.load_bytes dev ~addr:0 ~len:8 in
      Util.check_str "unflushed store lost" (String.make 8 '\000')
        (Bytes.to_string back))

let test_flush_persists () =
  with_dev (fun _ dev ->
      let data = Bytes.of_string "flushed!" in
      Device.store dev ~addr:128 data ~off:0 ~len:8;
      Device.flush dev ~addr:128 ~len:8;
      Device.fence dev;
      Device.crash dev;
      let back = Device.load_bytes dev ~addr:128 ~len:8 in
      Util.check_str "flushed store survives" "flushed!" (Bytes.to_string back))

let test_read_sees_cache () =
  with_dev (fun _ dev ->
      let data = Bytes.of_string "cached data" in
      Device.store dev ~addr:256 data ~off:0 ~len:(Bytes.length data);
      (* before any flush, loads must see the cached lines *)
      let back = Device.load_bytes dev ~addr:256 ~len:(Bytes.length data) in
      Util.check_str "load sees dirty cache" "cached data" (Bytes.to_string back))

let test_partial_line_flush () =
  with_dev (fun _ dev ->
      (* write two lines, flush only the first *)
      let data = Bytes.make 128 'x' in
      Device.store dev ~addr:0 data ~off:0 ~len:128;
      Device.flush dev ~addr:0 ~len:64;
      Device.fence dev;
      Device.crash dev;
      let first = Device.load_bytes dev ~addr:0 ~len:64 in
      let second = Device.load_bytes dev ~addr:64 ~len:64 in
      Util.check_str "flushed line kept" (String.make 64 'x')
        (Bytes.to_string first);
      Util.check_str "unflushed line dropped" (String.make 64 '\000')
        (Bytes.to_string second))

let test_nt_overrides_cached () =
  with_dev (fun _ dev ->
      let a = Bytes.of_string (String.make 64 'a') in
      let b = Bytes.of_string (String.make 64 'b') in
      Device.store dev ~addr:0 a ~off:0 ~len:64;
      (* NT store to the same line must invalidate the stale cached copy *)
      Device.store_nt dev ~addr:0 b ~off:0 ~len:64;
      Device.crash dev;
      let back = Device.load_bytes dev ~addr:0 ~len:64 in
      Util.check_str "NT store wins" (String.make 64 'b') (Bytes.to_string back))

let test_time_advances () =
  with_dev (fun env dev ->
      let t0 = Env.now env in
      let data = Bytes.make 4096 'z' in
      Device.store_nt dev ~addr:0 data ~off:0 ~len:4096;
      let t1 = Env.now env in
      Alcotest.(check bool)
        "4K NT write costs ~671ns"
        true
        (t1 -. t0 > 600. && t1 -. t0 < 750.))

let test_stats_counters () =
  with_dev (fun env dev ->
      let s = env.Env.stats in
      let data = Bytes.make 4096 'q' in
      Device.store_nt dev ~addr:0 data ~off:0 ~len:4096;
      Device.fence dev;
      Util.check_int "pm_write_bytes" 4096 s.Stats.pm_write_bytes;
      Util.check_int "fences" 1 s.Stats.fences;
      Util.check_int "nt_stores" 1 s.Stats.nt_stores)

let test_wear_tracking () =
  with_dev (fun _ dev ->
      let data = Bytes.make 4096 'w' in
      for _ = 1 to 5 do
        Device.store_nt dev ~addr:(2 * 4096) data ~off:0 ~len:4096
      done;
      Util.check_int "wear counted" 5 (Device.wear_of_block dev 2);
      Alcotest.(check bool) "max wear >= 5" true (Device.max_wear dev >= 5))

let test_dirty_lines_counted () =
  with_dev (fun _ dev ->
      let data = Bytes.make 256 'd' in
      Device.store dev ~addr:0 data ~off:0 ~len:256;
      Util.check_int "4 dirty lines" 4 (Device.dirty_lines dev);
      Device.flush dev ~addr:0 ~len:256;
      Util.check_int "flushed" 0 (Device.dirty_lines dev))

let test_zero_nt () =
  with_dev (fun _ dev ->
      let data = Bytes.make 8192 'f' in
      Device.store_nt dev ~addr:0 data ~off:0 ~len:8192;
      Device.zero_nt dev ~addr:0 ~len:8192;
      let back = Device.load_bytes dev ~addr:0 ~len:8192 in
      Alcotest.(check bool)
        "all zero" true
        (Bytes.for_all (fun c -> c = '\000') back))

let test_reread_is_sequential () =
  with_dev (fun env dev ->
      let buf = Bytes.create 256 in
      (* first touch: no adjacency, charged the random first-access latency *)
      Device.load dev ~addr:4096 buf ~off:0 ~len:256;
      let seq_cost = Timing.pm_read_cost env.Env.timing ~random:false 256 in
      (* exact re-read of the last-loaded range: the data is in the CPU's
         prefetch window, not a random access *)
      let t0 = Env.now env in
      Device.load dev ~addr:4096 buf ~off:0 ~len:256;
      Alcotest.(check (float 0.0001))
        "exact re-read charged as sequential" seq_cost (Env.now env -. t0);
      (* a read continuing at the end still counts as sequential *)
      let t0 = Env.now env in
      Device.load dev ~addr:(4096 + 256) buf ~off:0 ~len:256;
      Alcotest.(check (float 0.0001))
        "continuation stays sequential" seq_cost (Env.now env -. t0);
      (* same start but different length is not the same range: random *)
      let t0 = Env.now env in
      Device.load dev ~addr:(4096 + 256) buf ~off:0 ~len:128;
      Alcotest.(check (float 0.0001))
        "partial overlap is random"
        (Timing.pm_read_cost env.Env.timing ~random:true 128)
        (Env.now env -. t0))

let test_background_accounting () =
  let env = Util.make_env () in
  let t0 = Env.now env in
  Env.in_background env (fun () -> Env.cpu env 5000.);
  Alcotest.(check (float 0.001)) "foreground clock unchanged" t0 (Env.now env);
  Alcotest.(check bool)
    "background recorded" true
    (env.Env.stats.Stats.background_ns >= 5000.)

(* --- property tests --- *)

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"device store_nt/load roundtrip" ~count:100
    QCheck.(pair (int_bound 1000) (string_of_size (Gen.int_range 1 300)))
    (fun (addr, s) ->
      QCheck.assume (String.length s > 0);
      let env = Util.make_env ~capacity:(1024 * 1024) () in
      let dev = env.Env.dev in
      let b = Bytes.of_string s in
      Device.store_nt dev ~addr b ~off:0 ~len:(Bytes.length b);
      let back = Device.load_bytes dev ~addr ~len:(Bytes.length b) in
      Bytes.equal b back)

let prop_crash_respects_flush_boundary =
  QCheck.Test.make ~name:"crash keeps exactly the flushed prefix" ~count:50
    QCheck.(int_range 1 20)
    (fun nlines ->
      let env = Util.make_env ~capacity:(1024 * 1024) () in
      let dev = env.Env.dev in
      let total = 32 in
      let data = Bytes.make (total * 64) 'y' in
      Device.store dev ~addr:0 data ~off:0 ~len:(total * 64);
      Device.flush dev ~addr:0 ~len:(min nlines total * 64);
      Device.fence dev;
      Device.crash dev;
      let back = Device.load_bytes dev ~addr:0 ~len:(total * 64) in
      let kept = min nlines total * 64 in
      let ok = ref true in
      Bytes.iteri
        (fun i c ->
          let expect = if i < kept then 'y' else '\000' in
          if c <> expect then ok := false)
        back;
      !ok)

let suite =
  [
    tc "nt store durable across crash" `Quick test_store_nt_durable;
    tc "temporal store lost on crash" `Quick test_temporal_store_lost_on_crash;
    tc "flush persists" `Quick test_flush_persists;
    tc "read sees cached lines" `Quick test_read_sees_cache;
    tc "partial line flush" `Quick test_partial_line_flush;
    tc "nt store invalidates cache" `Quick test_nt_overrides_cached;
    tc "simulated time advances" `Quick test_time_advances;
    tc "exact re-read is sequential" `Quick test_reread_is_sequential;
    tc "stats counters" `Quick test_stats_counters;
    tc "wear tracking" `Quick test_wear_tracking;
    tc "dirty line accounting" `Quick test_dirty_lines_counted;
    tc "zero_nt" `Quick test_zero_nt;
    tc "background time accounting" `Quick test_background_accounting;
    QCheck_alcotest.to_alcotest prop_store_load_roundtrip;
    QCheck_alcotest.to_alcotest prop_crash_respects_flush_boundary;
  ]
