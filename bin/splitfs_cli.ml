(** Command-line driver: run any experiment of the evaluation
    individually, or poke at a file system interactively via subcommands.

    [dune exec bin/splitfs_cli.exe -- <experiment> [options]] *)

open Cmdliner

let run_table1 total_mb = ignore (Harness.Experiments.table1 ~total_mb ())
let run_table2 () = ignore (Harness.Experiments.table2 ())
let run_table6 iterations = ignore (Harness.Experiments.table6 ~iterations ())

let run_table7 records operations =
  ignore (Harness.Experiments.table7 ~records ~operations ())

let run_fig3 total_mb = ignore (Harness.Experiments.fig3 ~total_mb ())
let run_fig4 total_mb = ignore (Harness.Experiments.fig4 ~total_mb ())

let run_fig5 records operations =
  ignore (Harness.Experiments.fig5 ~records ~operations ())

let run_fig6 records operations =
  ignore (Harness.Experiments.fig6 ~records ~operations ())

let run_recovery () = ignore (Harness.Experiments.recovery ())

let run_crashcheck samples seed nops =
  let reports = Harness.Experiments.crashcheck ~samples ~seed ~nops () in
  if
    List.exists
      (fun (r : Crashcheck.mode_report) -> r.Crashcheck.r_violations <> [])
      reports
  then exit 1
let run_ablations total_mb = ignore (Harness.Experiments.ablations ~total_mb ())
let run_resources () = ignore (Harness.Experiments.resources ())
let run_scaling () = ignore (Harness.Experiments.scaling ())

let total_mb =
  Arg.(value & opt int 16 & info [ "size-mb" ] ~doc:"Total IO volume in MB.")

let records =
  Arg.(value & opt int 3000 & info [ "records" ] ~doc:"YCSB record count.")

let operations =
  Arg.(value & opt int 3000 & info [ "ops" ] ~doc:"Operations per workload.")

let iterations =
  Arg.(value & opt int 200 & info [ "iterations" ] ~doc:"Microbenchmark iterations.")

let samples =
  Arg.(
    value & opt int 200
    & info [ "samples" ] ~doc:"Crash states explored per mode.")

let seed =
  Arg.(value & opt int 0x51ED & info [ "seed" ] ~doc:"Workload/sampler seed.")

let cc_ops =
  Arg.(
    value & opt int 24
    & info [ "ops" ] ~doc:"Operations per crashcheck workload.")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let smoke =
  let run fs_name =
    let spec = Harness.Fs_config.of_name fs_name in
    let stack = Harness.Fs_config.make spec in
    let fs = stack.Harness.Fs_config.fs in
    Fsapi.Fs.write_file fs "/hello.txt" "hello from the PM simulator";
    Printf.printf "wrote and read back on %s: %S\n" fs_name
      (Fsapi.Fs.read_file fs "/hello.txt");
    Printf.printf "simulated time: %.0f ns\nstats: %s\n"
      (Pmem.Env.now stack.Harness.Fs_config.env)
      (Fmt.str "%a" Pmem.Stats.pp stack.Harness.Fs_config.env.Pmem.Env.stats)
  in
  let fs_arg =
    Arg.(
      value
      & opt string "splitfs-strict"
      & info [ "fs" ] ~doc:"File system (e.g. ext4-dax, splitfs-posix, nova-strict).")
  in
  cmd "smoke" "Write and read one file, print simulated cost."
    Term.(const run $ fs_arg)

let all_cmd =
  let run total_mb records operations iterations =
    ignore (Harness.Experiments.table1 ~total_mb ());
    ignore (Harness.Experiments.table2 ());
    ignore (Harness.Experiments.table6 ~iterations ());
    ignore (Harness.Experiments.fig3 ~total_mb ());
    ignore (Harness.Experiments.fig4 ~total_mb ());
    ignore (Harness.Experiments.fig5 ~records ~operations ());
    ignore (Harness.Experiments.fig6 ~records ~operations ());
    ignore (Harness.Experiments.table7 ~records ~operations ());
    ignore (Harness.Experiments.recovery ());
    ignore (Harness.Experiments.resources ());
    ignore (Harness.Experiments.ablations ())
  in
  cmd "all" "Run every experiment of the evaluation."
    Term.(const run $ total_mb $ records $ operations $ iterations)

let () =
  let info = Cmd.info "splitfs_cli" ~doc:"SplitFS reproduction experiments." in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd "table1" "Software overhead of 4K appends."
              Term.(const run_table1 $ total_mb);
            cmd "table2" "PM performance characteristics."
              Term.(const run_table2 $ const ());
            cmd "table6" "System call latencies (varmail)."
              Term.(const run_table6 $ iterations);
            cmd "table7" "Strata vs SplitFS-strict on YCSB."
              Term.(const run_table7 $ records $ operations);
            cmd "fig3" "Technique contribution breakdown."
              Term.(const run_fig3 $ total_mb);
            cmd "fig4" "IO patterns across file systems."
              Term.(const run_fig4 $ total_mb);
            cmd "fig5" "Relative software overhead in applications."
              Term.(const run_fig5 $ records $ operations);
            cmd "fig6" "Application performance."
              Term.(const run_fig6 $ records $ operations);
            cmd "recovery" "Crash-recovery time vs log entries."
              Term.(const run_recovery $ const ());
            cmd "crashcheck"
              "Crash-state exploration with a differential recovery oracle."
              Term.(const run_crashcheck $ samples $ seed $ cc_ops);
            cmd "ablations" "Design-choice ablations (DRAM staging, huge pages, mmap size)."
              Term.(const run_ablations $ total_mb);
            cmd "resources" "U-Split resource consumption."
              Term.(const run_resources $ const ());
            cmd "scaling"
              "Aggregate throughput vs concurrent clients (deterministic)."
              Term.(const run_scaling $ const ());
            smoke;
            all_cmd;
          ]))
