(** Command-line driver: run any experiment of the evaluation
    individually, or poke at a file system interactively via subcommands.

    [dune exec bin/splitfs_cli.exe -- <experiment> [options]] *)

open Cmdliner

let run_table1 total_mb = ignore (Harness.Experiments.table1 ~total_mb ())
let run_table2 () = ignore (Harness.Experiments.table2 ())
let run_table6 iterations = ignore (Harness.Experiments.table6 ~iterations ())

let run_table7 records operations =
  ignore (Harness.Experiments.table7 ~records ~operations ())

let run_fig3 total_mb = ignore (Harness.Experiments.fig3 ~total_mb ())
let run_fig4 total_mb = ignore (Harness.Experiments.fig4 ~total_mb ())

let run_fig5 records operations =
  ignore (Harness.Experiments.fig5 ~records ~operations ())

let run_fig6 records operations =
  ignore (Harness.Experiments.fig6 ~records ~operations ())

let run_recovery () = ignore (Harness.Experiments.recovery ())

let run_crashcheck samples seed nops jobs =
  let reports = Harness.Experiments.crashcheck ~samples ~seed ~nops ?jobs () in
  if
    List.exists
      (fun (r : Crashcheck.mode_report) -> r.Crashcheck.r_violations <> [])
      reports
  then exit 1
let run_faultcheck seed nops jobs =
  let reports = Harness.Experiments.faultcheck ~seed ~nops ?jobs () in
  if not (Faultcheck.clean reports) then exit 1

let run_litmus no_minimize jobs =
  let runs, _verdicts =
    Harness.Experiments.litmus ~minimize:(not no_minimize) ?jobs ()
  in
  (* REQUIRED verdicts are findings, not failures: they are the proof a
     fence is load-bearing. Only a contract violation with every fence
     in place fails the run. *)
  if
    List.exists
      (fun (r : Crashcheck.Litmus.run) ->
        r.Crashcheck.Litmus.r_violations <> [])
      runs
  then exit 1

(** [fams]: the failure-atomic-msync verification leg. Four parts:
    - the two fams-specific litmus patterns (msync-publish, snapshot-cow)
      exhaustively on every stack;
    - the canary: with the commit record disabled the same exploration
      MUST flag a torn msync — a harness that stays green with the
      protocol broken is vouching for nothing;
    - faultcheck on the fams stack (staging starvation must surface an
      honest ENOSPC, never a mangled file);
    - the FAMS-vs-WAL experiment table. *)
let run_fams jobs =
  let pats =
    List.filter
      (fun (p : Crashcheck.Litmus.pattern) ->
        List.mem p.Crashcheck.Litmus.p_name [ "msync-publish"; "snapshot-cow" ])
      Crashcheck.Litmus.corpus
  in
  let combos =
    List.concat_map
      (fun p ->
        List.map (fun s -> (p, s)) Crashcheck.Litmus.all_stacks)
      pats
  in
  let runs =
    Par.map ?jobs
      (fun _ (p, s) -> Crashcheck.Litmus.run_pattern p s)
      combos
  in
  List.iter (fun r -> Fmt.pr "%a@." Crashcheck.Litmus.pp_run r) runs;
  let failed = ref false in
  if
    List.exists
      (fun (r : Crashcheck.Litmus.run) ->
        r.Crashcheck.Litmus.r_violations <> [])
      runs
  then begin
    Printf.eprintf "fams: litmus contract violation\n";
    failed := true
  end;
  if Crashcheck.Litmus.catches_torn_msync () then
    print_endline
      "canary: torn-msync bug (commit record disabled) caught, as it must be"
  else begin
    Printf.eprintf
      "fams: canary FAILED — corpus did not flag the broken publish protocol\n";
    failed := true
  end;
  let report =
    Faultcheck.check_stack ?jobs (Faultcheck.Splitfs Splitfs.Config.Fams)
  in
  Fmt.pr "%a@." Faultcheck.pp_stack_report report;
  if report.Faultcheck.s_violations <> [] then begin
    Printf.eprintf "fams: faultcheck violation on splitfs-fams\n";
    failed := true
  end;
  ignore (Harness.Experiments.fams_vs_wal ());
  if !failed then exit 1

let run_ablations total_mb = ignore (Harness.Experiments.ablations ~total_mb ())
let run_resources () = ignore (Harness.Experiments.resources ())
let run_scaling () = ignore (Harness.Experiments.scaling ())

let run_scale fast dispatch_n jobs =
  let counts =
    if fast then [ 16; 100; 1000 ] else Harness.Experiments.scale_counts
  in
  ignore (Harness.Experiments.scale ~counts ?jobs ());
  let d = Harness.Experiments.dispatch_bench ~nactors:dispatch_n () in
  if d.Harness.Experiments.db_speedup < 10. then begin
    Printf.eprintf "dispatch speedup %.1fx below the 10x floor\n"
      d.Harness.Experiments.db_speedup;
    exit 1
  end
(* [par-bench]: wall-time every verification campaign at 1/2/4/8 worker
   domains. On hosts with at least 4 recommended domains the sweep is
   also a gate: 4 jobs must be at least 2x faster than 1 job on the
   heavyweight campaigns (litmus, minimize). On smaller hosts (CI
   containers pinned to one core) the gate is skipped — there is nothing
   to parallelise onto. *)
let run_par_bench () =
  let rows = Harness.Experiments.par_bench () in
  let wall campaign jobs =
    let r =
      List.find
        (fun (r : Harness.Experiments.par_row) ->
          r.Harness.Experiments.pb_campaign = campaign
          && r.Harness.Experiments.pb_jobs = jobs)
        rows
    in
    r.Harness.Experiments.pb_wall_ns
  in
  if Domain.recommended_domain_count () >= 4 then
    List.iter
      (fun campaign ->
        let speedup = wall campaign 1 /. wall campaign 4 in
        if speedup < 2.0 then begin
          Printf.eprintf "%s: %.2fx speedup at 4 jobs, below the 2x floor\n"
            campaign speedup;
          exit 1
        end)
      [ "litmus"; "minimize" ]
  else
    Printf.printf
      "(speedup gate skipped: only %d recommended domain(s) on this host)\n"
      (Domain.recommended_domain_count ())

let run_profile () = ignore (Harness.Experiments.profile ())
let run_latency () = ignore (Harness.Experiments.latency ())

(** [trace]: run a multi-client workload with span tracing on and write a
    Chrome trace-event JSON (load it at https://ui.perfetto.dev). With
    [--syscalls], also stream strace-style lines to stdout as they
    happen. *)
let run_trace fs_name nclients ops out sample syscalls =
  let spec = Harness.Fs_config.of_name fs_name in
  let params =
    { Harness.Multiclient.default_params with
      Harness.Multiclient.ops_per_client = ops }
  in
  let env_ref = ref None in
  let on_env (env : Pmem.Env.t) =
    env_ref := Some env;
    let obs = env.Pmem.Env.obs in
    Obs.set_tracing ~sample obs true;
    if syscalls then
      Obs.set_on_event obs
        (Some
           (fun s ->
             let n = s.Obs.e_name in
             if String.length n >= 4 && String.sub n 0 4 = "sys:" then
               match s.Obs.e_arg with
               | Some line ->
                   Printf.printf "[%12.0f ns] actor%-2d %s\n" s.Obs.e_t0
                     s.Obs.e_actor line
               | None -> ()))
  in
  let r = Harness.Multiclient.run ~params ~instrument:true ~on_env spec ~nclients in
  let env = Option.get !env_ref in
  let obs = env.Pmem.Env.obs in
  let actors =
    List.map
      (fun a -> (a.Pmem.Simclock.aid, a.Pmem.Simclock.a_name))
      (Pmem.Simclock.actors env.Pmem.Env.clock)
  in
  let oc = open_out out in
  output_string oc (Obs.chrome_json ~actors obs);
  close_out oc;
  Printf.printf
    "wrote %s: %d spans retained (%d overwritten), %d actor tracks, makespan %.0f ns\n"
    out (Obs.span_count obs) (Obs.overwritten obs) (List.length actors)
    r.Harness.Multiclient.makespan_ns

(** [bench-diff]: the perf-regression sentinel. Exit codes: 0 clean,
    1 regression (or non-subset missing keys), 2 a file failed to load or
    the schemas refuse to compare. *)
let run_bench_diff old_path new_path host_tol subset strict_meta =
  match
    try Ok (Harness.Benchdiff.load old_path, Harness.Benchdiff.load new_path)
    with Failure msg -> Error msg
  with
  | Error msg ->
      Printf.eprintf "bench-diff: %s\n" msg;
      exit 2
  | Ok (old_f, new_f) -> (
      match
        Harness.Benchdiff.diff ~host_tol ~subset ~strict_meta old_f new_f
      with
      | Error msg ->
          Printf.eprintf "bench-diff: %s\n" msg;
          exit 2
      | Ok report ->
          Harness.Benchdiff.print_report report;
          if not (Harness.Benchdiff.ok report) then exit 1)

(** [timeline]: one serving-tier run with the virtual-time sampler and
    tail forensics on; print the warmup-vs-steady window table, export
    the series as OpenMetrics text and as Perfetto counter tracks merged
    into the span trace. *)
let run_timeline fs_name nactors out_metrics out_trace =
  let spec = Harness.Fs_config.of_name fs_name in
  let env_ref = ref None in
  let on_env (env : Pmem.Env.t) =
    env_ref := Some env;
    Obs.set_tracing env.Pmem.Env.obs true
  in
  let _windows, r =
    Harness.Experiments.timeline_report ~spec ~nactors ~on_env ()
  in
  let env = Option.get !env_ref in
  let tl = Option.get r.Harness.Multiclient.sr_timeline in
  let oc = open_out out_metrics in
  output_string oc (Obs.Timeline.openmetrics tl);
  close_out oc;
  let actors =
    List.map
      (fun a -> (a.Pmem.Simclock.aid, a.Pmem.Simclock.a_name))
      (Pmem.Simclock.actors env.Pmem.Env.clock)
  in
  let oc = open_out out_trace in
  output_string oc (Obs.chrome_json ~actors env.Pmem.Env.obs);
  close_out oc;
  Printf.printf
    "wrote %s (%d series, %d samples) and %s (%d spans + counter tracks)\n"
    out_metrics
    (List.length (Obs.Timeline.series_names tl))
    (Obs.Timeline.samples_taken tl)
    out_trace
    (Obs.span_count env.Pmem.Env.obs)

let total_mb =
  Arg.(value & opt int 16 & info [ "size-mb" ] ~doc:"Total IO volume in MB.")

let records =
  Arg.(value & opt int 3000 & info [ "records" ] ~doc:"YCSB record count.")

let operations =
  Arg.(value & opt int 3000 & info [ "ops" ] ~doc:"Operations per workload.")

let iterations =
  Arg.(value & opt int 200 & info [ "iterations" ] ~doc:"Microbenchmark iterations.")

let samples =
  Arg.(
    value & opt int 200
    & info [ "samples" ] ~doc:"Crash states explored per mode.")

let seed =
  Arg.(value & opt int 0x51ED & info [ "seed" ] ~doc:"Workload/sampler seed.")

let cc_ops =
  Arg.(
    value & opt int 24
    & info [ "ops" ] ~doc:"Operations per crashcheck workload.")

let fc_seed =
  Arg.(value & opt int 0xFA17 & info [ "seed" ] ~doc:"Fault-campaign workload seed.")

let fc_ops =
  Arg.(
    value & opt int 24
    & info [ "ops" ] ~doc:"Operations per faultcheck workload.")

let lm_no_minimize =
  Arg.(
    value & flag
    & info [ "no-minimize" ]
        ~doc:"Skip the fence-minimization pass (corpus exploration only).")

let trace_fs =
  Arg.(
    value
    & opt string "splitfs-posix"
    & info [ "fs" ] ~doc:"File system stack to trace.")

let trace_clients =
  Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")

let trace_ops =
  Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Appends per client.")

let trace_out =
  Arg.(
    value & opt string "trace.json"
    & info [ "out" ] ~doc:"Output path for the Chrome trace-event JSON.")

let trace_sample =
  Arg.(
    value & opt int 1
    & info [ "sample" ] ~doc:"Keep 1-in-N spans (1 keeps everything).")

let trace_syscalls =
  Arg.(
    value & flag
    & info [ "syscalls" ] ~doc:"Stream strace-style per-syscall lines to stdout.")

let scale_fast =
  Arg.(
    value & flag
    & info [ "fast" ]
        ~doc:"Smoke mode: stop the actor sweep at N=1000 (CI-friendly).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for the campaign's trial fan-out (default: \
           \\$SPLITFS_JOBS, else the host's recommended domain count). \
           Results are identical at every job count; 1 runs the \
           sequential harness on the calling domain.")

let scale_dispatch_n =
  Arg.(
    value & opt int 10_000
    & info [ "dispatch-actors" ]
        ~doc:"Actor count for the dispatch-overhead microbenchmark.")

let bd_old =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"OLD" ~doc:"Baseline trajectory point (BENCH_PR*.json).")

let bd_new =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"NEW" ~doc:"Candidate trajectory point to judge.")

let bd_host_tol =
  Arg.(
    value & opt float 0.5
    & info [ "host-tol" ]
        ~doc:
          "Relative tolerance for host-clock keys (bechamel, wall times, \
           dispatch overhead). Simulated-ns keys are always exact.")

let bd_subset =
  Arg.(
    value & flag
    & info [ "subset" ]
        ~doc:
          "Accept NEW covering only part of OLD's keys (a fast-mode run \
           has no host entries).")

let bd_strict_meta =
  Arg.(
    value & flag
    & info [ "strict-meta" ]
        ~doc:
          "Refuse (exit 2) a trajectory file without a \"meta\" block \
           instead of warning about the legacy snapshot.")

let tl_fs =
  Arg.(
    value
    & opt string "splitfs-posix"
    & info [ "fs" ] ~doc:"File system stack to sample.")

let tl_actors =
  Arg.(value & opt int 1000 & info [ "actors" ] ~doc:"Serving-tier actor count.")

let tl_out_metrics =
  Arg.(
    value & opt string "timeline.prom"
    & info [ "out-metrics" ] ~doc:"Output path for the OpenMetrics text.")

let tl_out_trace =
  Arg.(
    value & opt string "timeline-trace.json"
    & info [ "out-trace" ]
        ~doc:"Output path for the Perfetto trace (spans + counter tracks).")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let smoke =
  let run fs_name =
    let spec = Harness.Fs_config.of_name fs_name in
    let stack = Harness.Fs_config.make spec in
    let fs = stack.Harness.Fs_config.fs in
    Fsapi.Fs.write_file fs "/hello.txt" "hello from the PM simulator";
    Printf.printf "wrote and read back on %s: %S\n" fs_name
      (Fsapi.Fs.read_file fs "/hello.txt");
    Printf.printf "simulated time: %.0f ns\n%s"
      (Pmem.Env.now stack.Harness.Fs_config.env)
      (Fmt.str "%a" Pmem.Stats.pp_table
         stack.Harness.Fs_config.env.Pmem.Env.stats)
  in
  let fs_arg =
    Arg.(
      value
      & opt string "splitfs-strict"
      & info [ "fs" ] ~doc:"File system (e.g. ext4-dax, splitfs-posix, nova-strict).")
  in
  cmd "smoke" "Write and read one file, print simulated cost."
    Term.(const run $ fs_arg)

let all_cmd =
  let run total_mb records operations iterations =
    ignore (Harness.Experiments.table1 ~total_mb ());
    ignore (Harness.Experiments.table2 ());
    ignore (Harness.Experiments.table6 ~iterations ());
    ignore (Harness.Experiments.fig3 ~total_mb ());
    ignore (Harness.Experiments.fig4 ~total_mb ());
    ignore (Harness.Experiments.fig5 ~records ~operations ());
    ignore (Harness.Experiments.fig6 ~records ~operations ());
    ignore (Harness.Experiments.table7 ~records ~operations ());
    ignore (Harness.Experiments.recovery ());
    ignore (Harness.Experiments.resources ());
    ignore (Harness.Experiments.ablations ())
  in
  cmd "all" "Run every experiment of the evaluation."
    Term.(const run $ total_mb $ records $ operations $ iterations)

let () =
  let info = Cmd.info "splitfs_cli" ~doc:"SplitFS reproduction experiments." in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd "table1" "Software overhead of 4K appends."
              Term.(const run_table1 $ total_mb);
            cmd "table2" "PM performance characteristics."
              Term.(const run_table2 $ const ());
            cmd "table6" "System call latencies (varmail)."
              Term.(const run_table6 $ iterations);
            cmd "table7" "Strata vs SplitFS-strict on YCSB."
              Term.(const run_table7 $ records $ operations);
            cmd "fig3" "Technique contribution breakdown."
              Term.(const run_fig3 $ total_mb);
            cmd "fig4" "IO patterns across file systems."
              Term.(const run_fig4 $ total_mb);
            cmd "fig5" "Relative software overhead in applications."
              Term.(const run_fig5 $ records $ operations);
            cmd "fig6" "Application performance."
              Term.(const run_fig6 $ records $ operations);
            cmd "recovery" "Crash-recovery time vs log entries."
              Term.(const run_recovery $ const ());
            cmd "crashcheck"
              "Crash-state exploration with a differential recovery oracle."
              Term.(const run_crashcheck $ samples $ seed $ cc_ops $ jobs_arg);
            cmd "faultcheck"
              "Fault-injection campaign: media errors, resource exhaustion, oracle."
              Term.(const run_faultcheck $ fc_seed $ fc_ops $ jobs_arg);
            cmd "litmus"
              "Exhaustive litmus corpus (Ferrite patterns and more) plus \
               fence minimization."
              Term.(const run_litmus $ lm_no_minimize $ jobs_arg);
            cmd "fams"
              "Failure-atomic msync: litmus legs, torn-msync canary, \
               faultcheck, FAMS-vs-WAL experiment."
              Term.(const run_fams $ jobs_arg);
            cmd "ablations" "Design-choice ablations (DRAM staging, huge pages, mmap size)."
              Term.(const run_ablations $ total_mb);
            cmd "resources" "U-Split resource consumption."
              Term.(const run_resources $ const ());
            cmd "scaling"
              "Aggregate throughput vs concurrent clients (deterministic)."
              Term.(const run_scaling $ const ());
            cmd "scale"
              "Multi-tenant serving tier at up to 10k actors, plus the \
               dispatch-overhead microbenchmark."
              Term.(const run_scale $ scale_fast $ scale_dispatch_n $ jobs_arg);
            cmd "par-bench"
              "Wall-time every verification campaign at 1/2/4/8 worker \
               domains; gate the 4-job speedup on multi-core hosts."
              Term.(const run_par_bench $ const ());
            cmd "profile"
              "Software-overhead attribution: where every simulated ns goes."
              Term.(const run_profile $ const ());
            cmd "latency" "Latency percentiles per (stack x op)."
              Term.(const run_latency $ const ());
            cmd "trace"
              "Run a traced multi-client workload, write Perfetto-loadable JSON."
              Term.(
                const run_trace $ trace_fs $ trace_clients $ trace_ops
                $ trace_out $ trace_sample $ trace_syscalls);
            cmd "timeline"
              "Sample the serving tier over virtual time; export OpenMetrics \
               and Perfetto counter tracks, print warmup vs steady state."
              Term.(
                const run_timeline $ tl_fs $ tl_actors $ tl_out_metrics
                $ tl_out_trace);
            cmd "bench-diff"
              "Compare two perf trajectory points; exit nonzero on regression."
              Term.(
                const run_bench_diff $ bd_old $ bd_new $ bd_host_tol $ bd_subset
                $ bd_strict_meta);
            smoke;
            all_cmd;
          ]))
