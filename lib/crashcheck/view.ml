(** What the differential oracle knows about one file at one instant. *)

type t = {
  cur : Bytes.t;  (** current (volatile) content *)
  stable : Bytes.t;  (** content as of the last fsync *)
  stable_ow : Bytes.t;
      (** [stable] with post-fsync in-place overwrites applied *)
}

let empty = { cur = Bytes.empty; stable = Bytes.empty; stable_ow = Bytes.empty }
