(** Fence minimization over the litmus corpus (DESIGN.md §5i).

    Every [Device.fence]/[flush] call site in the SplitFS user-space
    library, the oplog, and the kernel journal is registered with a
    site id. This module asks, for each site: is that fence load-bearing
    for crash consistency, or is it covered by a later fence on every
    path that matters?

    The method is elision, not reasoning: a site is switched off at the
    device (the fence's persist-order commit, its simulated-time charge
    and its stats all vanish — a faithful model of deleting the call),
    and the entire litmus corpus is re-explored *exhaustively* on every
    configuration where the site fires inside a crash window. A site is

    - REQUIRED if some crash state of some pattern then violates its
      stack's contract — the verdict carries the violating state, shrunk
      to a minimal set of lost lines;
    - REDUNDANT if every crash state of every combination where the
      site fires still recovers correctly. Because the exploration is
      exhaustive (the litmus corpus is built to stay enumerable), this
      is a proof relative to the corpus and the simulator's persist
      semantics, not a sampled impression;
    - UNEXERCISED if the site never fires inside any corpus crash
      window (e.g. mount-time initialisation) — no verdict, the fence
      stays.

    Only REDUNDANT sites are candidates for physical removal; the
    corresponding source deletions and their simulated-time effect are
    recorded in EXPERIMENTS.md. *)

(* ------------------------------------------------------------------ *)
(* Combinations                                                         *)
(* ------------------------------------------------------------------ *)

type combo = {
  c_name : string;  (** "pattern/config" *)
  c_config : string;
  c_builder : Litmus.builder;
  c_pattern : Litmus.pattern;
  c_stack : Litmus.stack_id;
  c_contract : Litmus.contract;
}

(** The full corpus × stack matrix plus the auxiliary coverage
    configurations — everything litmus itself checks. *)
let all_combos () =
  List.concat_map
    (fun (p : Litmus.pattern) ->
      List.map
        (fun s ->
          {
            c_name = p.Litmus.p_name ^ "/" ^ Litmus.stack_name s;
            c_config = Litmus.stack_name s;
            c_builder = Litmus.builder_of s;
            c_pattern = p;
            c_stack = s;
            c_contract = Litmus.contract_of s;
          })
        Litmus.all_stacks)
    Litmus.corpus
  @ List.map
      (fun (x : Litmus.aux) ->
        {
          c_name = x.Litmus.x_pattern.Litmus.p_name ^ "/" ^ x.Litmus.x_name;
          c_config = x.Litmus.x_name;
          c_builder = x.Litmus.x_builder;
          c_pattern = x.Litmus.x_pattern;
          c_stack = x.Litmus.x_stack;
          c_contract = x.Litmus.x_contract;
        })
      Litmus.aux_combos

(** One un-elided profiling pass per combo, returning the set of sites
    that fire inside its crash window. Profiling is deterministic, so a
    single pass serves every site's classification — the alternative
    (re-profiling all combos for each of the registered sites) multiplies
    the costliest loop of the suite by the site count for no information
    gain. *)
let profile_combos ?jobs combos =
  Par.map ?jobs
    (fun _ c ->
      let _, hits = Litmus.profile c.c_builder c.c_pattern in
      (c, List.map fst hits))
    combos

(** Combos in whose crash window [site] fires. [profiled] (from
    {!profile_combos}) shares one profiling pass across all sites; when
    absent each call profiles the combos itself. *)
let firing_combos ?profiled combos site =
  match profiled with
  | Some pcs ->
      List.filter_map
        (fun (c, sites) -> if List.mem site sites then Some c else None)
        pcs
  | None ->
      List.filter
        (fun c ->
          let _, hits = Litmus.profile c.c_builder c.c_pattern in
          List.mem_assoc site hits)
        combos

(* ------------------------------------------------------------------ *)
(* Shrinking a counterexample                                           *)
(* ------------------------------------------------------------------ *)

(** Greedily restore lost lines to fully-persisted while the violation
    survives: what remains is the minimal deviation that breaks
    recovery without the elided fence. Runs with the elision still
    active. *)
let shrink ?(budget = 48) c (v : Litmus.violation) =
  let points, _ = Litmus.profile c.c_builder c.c_pattern in
  match
    List.find_opt
      (fun (p : Explore.point) -> p.Explore.fence = v.Litmus.vl_fence)
      points
  with
  | None -> v
  | Some point ->
      let budget = ref budget in
      let full_keep line =
        match
          Array.to_list point.Explore.pending
          |> List.find_opt (fun (p : Pmem.Device.pending_line) ->
                 p.Pmem.Device.p_line = line)
        with
        | Some p -> p.Pmem.Device.p_versions
        | None -> 0
      in
      let violates svs =
        decr budget;
        (Litmus.run_trial c.c_builder c.c_pattern c.c_contract ~point
           ~survivors:svs)
          .Litmus.t_violations
        <> []
      in
      let current = ref v.Litmus.vl_survivors in
      let progress = ref true in
      while !progress && !budget > 0 do
        progress := false;
        List.iter
          (fun (s : Pmem.Device.survivor) ->
            let n = full_keep s.Pmem.Device.s_line in
            if (s.Pmem.Device.s_keep <> n || s.Pmem.Device.s_tear <> 0)
               && !budget > 0
            then begin
              let cand =
                List.map
                  (fun (s' : Pmem.Device.survivor) ->
                    if s'.Pmem.Device.s_line = s.Pmem.Device.s_line then
                      { s' with Pmem.Device.s_keep = n; s_tear = 0 }
                    else s')
                  !current
              in
              if violates cand then begin
                current := cand;
                progress := true
              end
            end)
          !current
      done;
      {
        v with
        Litmus.vl_survivors =
          List.filter
            (fun (s : Pmem.Device.survivor) ->
              s.Pmem.Device.s_keep <> full_keep s.Pmem.Device.s_line
              || s.Pmem.Device.s_tear <> 0)
            !current;
      }

(* ------------------------------------------------------------------ *)
(* Per-site classification                                              *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Required of {
      q_combo : string;  (** where the counterexample lives *)
      q_violation : Litmus.violation;  (** shrunk *)
    }
  | Redundant of {
      q_combos : int;  (** combinations the site fires in *)
      q_states : int;  (** crash states exhaustively re-checked *)
    }
  | Unexercised  (** never fires inside a corpus crash window *)

type site_report = { s_site : int; s_name : string; s_verdict : verdict }

(** [elided_combo c site] is [c] with every stack its builder mounts
    carrying the elision of [site] on its own device. Elision is
    per-device state (PR 8), so concurrent classifications of different
    sites never observe each other; setting it after the mount is
    faithful because the persist-order journal only opens afterwards —
    mount-time fences are outside every crash window. *)
let elided_combo c site =
  let builder () =
    let b = c.c_builder () in
    Pmem.Device.elide_fence_site b.Litmus.b_env.Pmem.Env.dev site;
    b
  in
  { c with c_builder = builder }

(** Classify one site against [combos] (default: everything). *)
let classify ?combos ?profiled site =
  let combos = match combos with Some c -> c | None -> all_combos () in
  match firing_combos ?profiled combos site with
  | [] -> Unexercised
  | firing ->
      let states = ref 0 in
      let rec go = function
        | [] ->
            Redundant { q_combos = List.length firing; q_states = !states }
        | c :: rest -> (
            let ec = elided_combo c site in
            let r =
              Litmus.run_pattern ~builder:ec.c_builder ~config:ec.c_config
                ~contract:ec.c_contract ec.c_pattern ec.c_stack
            in
            states := !states + r.Litmus.r_states;
            match r.Litmus.r_violations with
            | [] -> go rest
            | v :: _ ->
                (* shrink with the elision still active *)
                Required { q_combo = c.c_name; q_violation = shrink ec v })
      in
      go firing

(** Classify every registered site. Sites are independent — each holds
    its elision on the devices its own builders mount — so the costliest
    loop of the whole verification suite fans over the {!Par} domain
    pool, one task per site, reports merged in registration order. *)
let run ?combos ?jobs () =
  let combos = match combos with Some c -> c | None -> all_combos () in
  let profiled = profile_combos ?jobs combos in
  Par.map ?jobs
    (fun _ (site, name) ->
      { s_site = site; s_name = name; s_verdict = classify ~combos ~profiled site })
    (Pmem.Device.fence_sites ())

let verdict_name = function
  | Required _ -> "REQUIRED"
  | Redundant _ -> "REDUNDANT"
  | Unexercised -> "unexercised"

let pp_verdict ppf = function
  | Required { q_combo; q_violation } ->
      Fmt.pf ppf "REQUIRED    counterexample in %s: %a" q_combo
        Litmus.pp_violation q_violation
  | Redundant { q_combos; q_states } ->
      Fmt.pf ppf "REDUNDANT   %d combos, %d crash states, all recover" q_combos
        q_states
  | Unexercised -> Fmt.string ppf "unexercised (kept)"

let pp_site_report ppf r =
  Fmt.pf ppf "@[<v2>%-26s %a@]" r.s_name pp_verdict r.s_verdict
