(** Crash-state space of the persist-order journal (DESIGN.md §5d).

    Shared by the whole-workload differential runner ({!Crashcheck}), the
    litmus corpus ({!Litmus}) and the fence minimizer ({!Minimize}). *)

(** A crash point: trip at fence [fence] (0-based, counted from
    [journal_begin]); [fence = fence_count] means "end of trace".
    [pending] is the device's summary of lines with uncommitted
    versions at that point. *)
type point = { fence : int; pending : Pmem.Device.pending_line array }

(** Number of distinct legal crash states at one point: each pending
    line independently keeps its base or any of its pending versions
    (tear refinements not counted — they are a sampling-only
    refinement of the line-granular space). Saturates at 2^50: a
    trace with dozens of pending lines overflows 63-bit ints long
    before it becomes enumerable. *)
let count_cap = 1 lsl 50

let state_count (pending : Pmem.Device.pending_line array) =
  Array.fold_left
    (fun acc (p : Pmem.Device.pending_line) ->
      if acc >= count_cap then count_cap else acc * (p.p_versions + 1))
    1 pending

(** All survivor vectors for one point, in odometer order. *)
let enumerate (pending : Pmem.Device.pending_line array) =
  let n = Array.length pending in
  let rec go i =
    if i = n then [ [] ]
    else
      let tails = go (i + 1) in
      List.concat_map
        (fun keep ->
          List.map
            (fun tail ->
              {
                Pmem.Device.s_line = pending.(i).Pmem.Device.p_line;
                s_keep = keep;
                s_tear = 0;
              }
              :: tail)
            tails)
        (List.init (pending.(i).Pmem.Device.p_versions + 1) Fun.id)
  in
  go 0

(** One random survivor vector. Non-temporal frontier versions get a
    random 8-byte tear mask one time in four: x86 only guarantees
    8-byte atomicity for the stores themselves, so an NT line caught
    mid-persist may be half old, half new. *)
let sample rng (pending : Pmem.Device.pending_line array) =
  (* direct recursion over the array instead of [Array.to_list |> map]:
     no intermediate list on the per-trial hot path. The [let s] binding
     forces the draw for line [i] before the recursive call, preserving
     the exact draw order of the list-based implementation. *)
  let n = Array.length pending in
  let survivor_of (p : Pmem.Device.pending_line) =
    let keep = Workloads.Rng.int rng (p.p_versions + 1) in
    let tear =
      if
        keep > 0
        && p.p_nt_mask land (1 lsl (keep - 1)) <> 0
        && Workloads.Rng.int rng 4 = 0
      then 1 + Workloads.Rng.int rng 255
      else 0
    in
    { Pmem.Device.s_line = p.p_line; s_keep = keep; s_tear = tear }
  in
  let rec build i =
    if i = n then []
    else
      let s = survivor_of pending.(i) in
      s :: build (i + 1)
  in
  build 0

(** [sample_indexed ~seed ~index pending] is the deterministic,
    partition-independent sampler for parallel campaigns: draw [index]'s
    survivor vector from a PRNG derived from [(seed, index)] alone
    ({!Workloads.Rng.derive}), never from shared RNG state. A budget of
    [m] samples split over [k] domains — each domain covering its own
    index range — therefore visits exactly the same multiset of crash
    states as one sequential pass over indices [0..m-1]. *)
let sample_indexed ~seed ~index (pending : Pmem.Device.pending_line array) =
  sample (Workloads.Rng.create_derived seed index) pending

(** [sample_point_indexed ~seed ~index points] is {!sample_indexed} for a
    whole campaign trial: both the crash point and its survivor vector
    are drawn from the [(seed, index)]-derived PRNG, so trial [index] is
    the same crash state no matter how the budget is partitioned across
    domains or how many trials precede it. *)
let sample_point_indexed ~seed ~index (points : point array) =
  let rng = Workloads.Rng.create_derived seed index in
  let p = points.(Workloads.Rng.int rng (Array.length points)) in
  (p, sample rng p.pending)
