(** Litmus corpus: small named crash-consistency workloads explored in
    exhaustive reordering mode across seven persistent-memory stacks
    (DESIGN.md §5i).

    Where {!Crashcheck} samples the crash-state space of long random
    workloads, each litmus pattern is a handful of operations chosen so
    that the persist-order journal's state space stays exhaustively
    enumerable — every legal combination of lost cache lines at every
    fence is replayed, recovered and checked. The patterns are the
    classic application idioms from the Ferrite line of work
    (create-then-rename, unfenced double append, the Chrome
    append-and-rename profile, replace-via-truncate) plus four shapes
    specific to this code base: a WAL commit with log rotation, the
    staged-append/relink-publish sequence that SplitFS strict mode lives
    on, the failure-atomic msync publish, and the snapshot
    copy-on-write idiom.

    Enumerability depends on [Pmem.Device.journal_begin ~dedup:true]:
    jbd2 journal blocks and fresh-block zeroing write all-zero content
    over all-zero lines, and deduplicating those stores is what keeps a
    pattern's crash space in the thousands instead of 2^60.

    Each stack is checked against the strongest contract it claims
    (paper Table 3): SplitFS strict is atomic, SplitFS sync and the
    kernel file systems are synchronous-but-tearable, SplitFS POSIX
    promises only fsync'd data, and SplitFS fams promises exactly the
    pre- or post-msync image. On top of the per-file differential
    check every pattern carries a claim — a cross-file safety property
    ("the destination of the rename always exists") evaluated on every
    recovered crash state. *)

(* ------------------------------------------------------------------ *)
(* Stacks and contracts                                                 *)
(* ------------------------------------------------------------------ *)

type stack_id =
  | Ext4_dax
  | Pmfs
  | Nova_relaxed
  | Splitfs_posix
  | Splitfs_sync
  | Splitfs_strict
  | Splitfs_fams

let all_stacks =
  [
    Ext4_dax;
    Pmfs;
    Nova_relaxed;
    Splitfs_posix;
    Splitfs_sync;
    Splitfs_strict;
    Splitfs_fams;
  ]

let stack_name = function
  | Ext4_dax -> "ext4-dax"
  | Pmfs -> "pmfs"
  | Nova_relaxed -> "nova-relaxed"
  | Splitfs_posix -> "splitfs-posix"
  | Splitfs_sync -> "splitfs-sync"
  | Splitfs_strict -> "splitfs-strict"
  | Splitfs_fams -> "splitfs-fams"

(** What a recovered file may legally look like.

    [Sync_dax] is the kernel-file-system contract: sizes are pre- or
    post-op (metadata ops are journalled and the simulator's DRAM
    metadata survives the crash), bytes the pre-op state already covered
    must be explained by the pre- or post-op content, and bytes beyond
    the pre-op size are unconstrained — a freshly allocated block whose
    data stores were lost reads back as zeros (or stale freed content),
    which is exactly the non-atomic ext4-DAX behaviour the paper's
    strict mode exists to fix. *)
type contract = Atomic | Syncd | Posixd | Sync_dax | Fams

let contract_of = function
  | Splitfs_strict -> Atomic
  | Splitfs_sync -> Syncd
  | Splitfs_posix -> Posixd
  | Splitfs_fams -> Fams
  | Ext4_dax | Pmfs | Nova_relaxed -> Sync_dax

let contract_name = function
  | Atomic -> "atomic"
  | Syncd -> "sync"
  | Posixd -> "posix"
  | Sync_dax -> "sync-dax"
  | Fams -> "fams"

(* ------------------------------------------------------------------ *)
(* Patterns                                                             *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of { slot : int; path : string }
  | Write of { slot : int; at : int; len : int; seed : int }
  | Fsync of { slot : int }
  | Truncate of { slot : int; size : int }
  | Rename of { src : string; dst : string }
  | Unlink of { path : string }
  | Checkpoint  (** relink_all on SplitFS, no-op on the kernel stacks *)
  | Snapshot of { src : string; dst : string }
      (** native extent-map clone on SplitFS (publish + reflink, one
          journal transaction); fsync-src + read + write + fsync-dst
          copy fallback on the kernel stacks and the oracle *)

(** Same deterministic content formula as {!Crashcheck.Workload} (the
    modules are siblings inside the wrapped library, so the definition
    is repeated rather than imported). *)
let payload ~seed len =
  Bytes.init len (fun i ->
      Char.chr ((seed * 131 + (i * 7) + (i * i mod 251)) land 0xFF))

type pattern = {
  p_name : string;
  p_doc : string;
  p_initial : (string * int * int) list;
      (** (path, length, payload seed); created and fsync'd before the
          crash window opens, bound to slots 0..n-1 *)
  p_paths : string list;  (** every path checked after recovery *)
  p_ops : op list;
  p_claim : contract -> (string -> Bytes.t option) -> string option;
      (** safety property over the recovered state, [None] = holds *)
}

let no_claim _ _ = None

let must_exist path what lookup =
  match lookup path with
  | Some _ -> None
  | None -> Some (Printf.sprintf "%s: %s" path what)

(** create + write + fsync + rename: the textbook atomic-replace idiom.
    The destination must exist in every crash state, and under the
    atomic contract its content is exactly the old or the new file. *)
let create_rename =
  {
    p_name = "create-rename";
    p_doc = "create tmp, write, fsync, rename over the destination";
    p_initial = [ ("/f", 96, 1) ];
    p_paths = [ "/f"; "/f.tmp" ];
    p_ops =
      [
        Create { slot = 1; path = "/f.tmp" };
        Write { slot = 1; at = 0; len = 96; seed = 2 };
        Fsync { slot = 1 };
        Rename { src = "/f.tmp"; dst = "/f" };
      ];
    p_claim =
      (fun contract lookup ->
        match lookup "/f" with
        | None -> Some "/f lost: no crash state may drop the rename target"
        | Some b when contract = Atomic ->
            if
              Bytes.equal b (payload ~seed:1 96)
              || Bytes.equal b (payload ~seed:2 96)
            then None
            else Some "/f is neither the old nor the new content"
        | Some _ -> None);
  }

(** Two appends with no fsync between them. Under the atomic contract
    the second append must never be durable without the first — the
    Ferrite prefix-append litmus. *)
let two_appends =
  {
    p_name = "two-appends";
    p_doc = "append A then B, no fsync: B must never survive without A";
    p_initial = [ ("/log", 64, 3) ];
    p_paths = [ "/log" ];
    p_ops =
      [
        Write { slot = 0; at = 64; len = 64; seed = 4 };
        Write { slot = 0; at = 128; len = 64; seed = 5 };
      ];
    p_claim =
      (fun contract lookup ->
        match (contract, lookup "/log") with
        | _, None -> Some "/log lost"
        | Atomic, Some b ->
            let init = payload ~seed:3 64 in
            let a = Bytes.cat init (payload ~seed:4 64) in
            let ab = Bytes.cat a (payload ~seed:5 64) in
            if List.exists (Bytes.equal b) [ init; a; ab ] then None
            else Some "/log holds append B without append A (or a tear)"
        | _ -> None);
  }

(** The Chrome profile-save bug shape: append into a temp file and
    rename it over the live one with no fsync. The destination must
    still exist in every crash state; its content is only constrained
    by each stack's own contract (on POSIX-grade stacks it may well be
    empty — that is the documented bug, not a violation). *)
let chrome =
  {
    p_name = "chrome";
    p_doc = "append to tmp, rename over live file, no fsync";
    p_initial = [ ("/prefs", 64, 6) ];
    p_paths = [ "/prefs"; "/prefs.tmp" ];
    p_ops =
      [
        Create { slot = 1; path = "/prefs.tmp" };
        Write { slot = 1; at = 0; len = 128; seed = 7 };
        Rename { src = "/prefs.tmp"; dst = "/prefs" };
      ];
    p_claim = (fun _ lookup -> must_exist "/prefs" "rename target lost" lookup);
  }

(** Replace a file's content in place: truncate to zero, rewrite,
    fsync twice (the second fsync has no new data and exercises the
    kernel fsync fast path). *)
let replace_truncate =
  {
    p_name = "replace-truncate";
    p_doc = "truncate to 0, rewrite, fsync (twice)";
    p_initial = [ ("/cfg", 128, 8) ];
    p_paths = [ "/cfg" ];
    p_ops =
      [
        Truncate { slot = 0; size = 0 };
        Write { slot = 0; at = 0; len = 128; seed = 9 };
        Fsync { slot = 0 };
        Fsync { slot = 0 };
      ];
    p_claim =
      (fun contract lookup ->
        match (contract, lookup "/cfg") with
        | _, None -> Some "/cfg lost"
        | Atomic, Some b ->
            if
              Bytes.length b = 0
              || Bytes.equal b (payload ~seed:8 128)
              || Bytes.equal b (payload ~seed:9 128)
            then None
            else Some "/cfg is neither old, empty, nor the new content"
        | _ -> None);
  }

(** Write-ahead-log commit with rotation: append a record, fsync it,
    drop the previous log generation, checkpoint. Exercises the oplog
    clear path and strict unlink logging. *)
let wal_commit =
  {
    p_name = "wal-commit";
    p_doc = "append record, fsync, unlink old log, checkpoint";
    p_initial = [ ("/wal", 64, 10); ("/wal.old", 64, 11) ];
    p_paths = [ "/wal"; "/wal.old" ];
    p_ops =
      [
        Write { slot = 0; at = 64; len = 64; seed = 12 };
        Fsync { slot = 0 };
        Unlink { path = "/wal.old" };
        Checkpoint;
      ];
    p_claim = (fun _ lookup -> must_exist "/wal" "live log lost" lookup);
  }

(** The SplitFS bread-and-butter sequence: staged appends, a relink at
    fsync (boundary copies, publish entry), more staged appends, then a
    checkpoint clearing the operation log. *)
let relink_publish =
  {
    p_name = "relink-publish";
    p_doc = "staged appends, relink at fsync, more appends, checkpoint";
    p_initial = [ ("/data", 64, 13) ];
    p_paths = [ "/data" ];
    p_ops =
      [
        Write { slot = 0; at = 64; len = 64; seed = 14 };
        Write { slot = 0; at = 128; len = 64; seed = 15 };
        Fsync { slot = 0 };
        Write { slot = 0; at = 192; len = 64; seed = 16 };
        Checkpoint;
      ];
    p_claim = (fun _ lookup -> must_exist "/data" "file lost" lookup);
  }

(** Overlay a write on top of [base], growing it if the write lands past
    the end — the oracle-side image algebra the fams claims are stated
    in. *)
let overlay base ~at ~len ~seed =
  let size = max (Bytes.length base) (at + len) in
  let b = Bytes.make size '\000' in
  Bytes.blit base 0 b 0 (Bytes.length base);
  Bytes.blit (payload ~seed len) 0 b at len;
  b

(** The failure-atomic msync idiom: unfenced stores (overwrite crossing
    EOF, then a pure append), an msync publishing both atomically, an
    in-place overwrite published by a second msync, and a trailing store
    no msync ever publishes. Under the fams contract every crash state
    must recover to exactly one of the three msync images — the trailing
    store must never be visible, a half-published msync never survives. *)
let msync_publish =
  let img0 = payload ~seed:20 96 in
  let img1 =
    overlay (overlay img0 ~at:64 ~len:96 ~seed:21) ~at:160 ~len:64 ~seed:22
  in
  let img2 = overlay img1 ~at:0 ~len:48 ~seed:23 in
  {
    p_name = "msync-publish";
    p_doc = "unfenced fams stores, atomic msync publish, unpublished tail";
    p_initial = [ ("/db", 96, 20) ];
    p_paths = [ "/db" ];
    p_ops =
      [
        Write { slot = 0; at = 64; len = 96; seed = 21 };
        Write { slot = 0; at = 160; len = 64; seed = 22 };
        Fsync { slot = 0 };
        Write { slot = 0; at = 0; len = 48; seed = 23 };
        Fsync { slot = 0 };
        Write { slot = 0; at = 224; len = 32; seed = 24 };
      ];
    p_claim =
      (fun contract lookup ->
        match (contract, lookup "/db") with
        | _, None -> Some "/db lost"
        | Fams, Some b ->
            if List.exists (Bytes.equal b) [ img0; img1; img2 ] then None
            else Some "/db is not one of the three msync images"
        | _ -> None);
  }

(** Snapshot copy-on-write: stage a write, snapshot the file (publish +
    extent-map clone), then overwrite the source over the now-shared
    blocks and publish that too. The snapshot must keep the published
    image it captured — an in-place store through the source that fails
    to break the share corrupts it. *)
let snapshot_cow =
  let img_pub = overlay (payload ~seed:30 160) ~at:64 ~len:64 ~seed:31 in
  {
    p_name = "snapshot-cow";
    p_doc = "write, snapshot (publish + clone), overwrite source, fsync";
    p_initial = [ ("/src", 160, 30) ];
    p_paths = [ "/src"; "/snap" ];
    p_ops =
      [
        Write { slot = 0; at = 64; len = 64; seed = 31 };
        Snapshot { src = "/src"; dst = "/snap" };
        Write { slot = 0; at = 0; len = 96; seed = 32 };
        Fsync { slot = 0 };
      ];
    p_claim =
      (fun contract lookup ->
        match contract with
        | Fams | Atomic -> (
            match lookup "/snap" with
            | None -> None (* crash before the clone committed *)
            | Some b ->
                if Bytes.length b = 0 || Bytes.equal b img_pub then None
                else Some "/snap is neither empty nor the published image")
        | _ -> None);
  }

(** The four Ferrite-style application patterns. *)
let ferrite = [ create_rename; two_appends; chrome; replace_truncate ]

let corpus =
  ferrite @ [ wal_commit; relink_publish; msync_publish; snapshot_cow ]

let find_pattern name = List.find_opt (fun p -> p.p_name = name) corpus

(* ------------------------------------------------------------------ *)
(* Stack builders                                                       *)
(* ------------------------------------------------------------------ *)

(** One mounted stack under test. [b_read] is consulted only after
    [b_recover]; on SplitFS it bypasses U-Split (whose DRAM caches died
    with the process) and reads through the kernel. *)
type built = {
  b_env : Pmem.Env.t;
  b_fs : Fsapi.Fs.t;
  b_checkpoint : unit -> unit;
  b_snapshot : string -> string -> unit;
  b_recover : unit -> unit;
  b_read : unit -> Fsapi.Fs.t;
}

type builder = unit -> built

(** Small and fast: every enumerated crash state rebuilds one of these. *)
let env_capacity = 4 * 1024 * 1024

(** Fallback snapshot for stacks without the native extent-map clone
    (and for the oracle): fsync the source first — the native snapshot
    publishes staged data before cloning — then copy its content into
    [dst] and fsync that. *)
let copy_snapshot (fs : Fsapi.Fs.t) src dst =
  let sfd = fs.Fsapi.Fs.open_ src Fsapi.Flags.rdonly in
  let dfd = fs.Fsapi.Fs.open_ dst Fsapi.Flags.create_rw in
  Fun.protect
    ~finally:(fun () ->
      fs.Fsapi.Fs.close dfd;
      fs.Fsapi.Fs.close sfd)
    (fun () ->
      fs.Fsapi.Fs.fsync sfd;
      let size = (fs.Fsapi.Fs.stat src).Fsapi.Fs.st_size in
      let buf = Bytes.create size in
      let got =
        if size = 0 then 0 else fs.Fsapi.Fs.pread sfd ~buf ~boff:0 ~len:size ~at:0
      in
      fs.Fsapi.Fs.ftruncate dfd 0;
      if got > 0 then ignore (fs.Fsapi.Fs.pwrite dfd ~buf ~boff:0 ~len:got ~at:0);
      fs.Fsapi.Fs.fsync dfd)

let build_splitfs ?(tweak = fun c -> c) ?checks mode () =
  let env = Pmem.Env.create ~capacity:env_capacity ?checks () in
  let kfs = Kernelfs.Ext4.mkfs ~journal_len:(256 * 1024) env in
  let sys = Kernelfs.Syscall.make kfs in
  let cfg =
    tweak
      {
        (Splitfs.Config.with_mode mode) with
        Splitfs.Config.staging_files = 2;
        staging_size = 64 * 1024;
        oplog_size = 8 * 1024;
      }
  in
  let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
  {
    b_env = env;
    b_fs = Splitfs.Usplit.as_fsapi u;
    b_checkpoint = (fun () -> Splitfs.Usplit.relink_all u);
    b_snapshot = (fun src dst -> Splitfs.Usplit.snapshot u src dst);
    b_recover =
      (fun () -> ignore (Splitfs.Recovery.recover ~sys ~env ~instance:0));
    b_read = (fun () -> Kernelfs.Syscall.as_fsapi sys);
  }

let build_ext4 () =
  let env = Pmem.Env.create ~capacity:env_capacity () in
  let kfs = Kernelfs.Ext4.mkfs ~journal_len:(256 * 1024) env in
  let sys = Kernelfs.Syscall.make kfs in
  let fs = Kernelfs.Syscall.as_fsapi sys in
  {
    b_env = env;
    b_fs = fs;
    b_checkpoint = ignore;
    b_snapshot = copy_snapshot fs;
    b_recover = ignore;
    b_read = (fun () -> fs);
  }

let build_pmfs () =
  let env = Pmem.Env.create ~capacity:env_capacity () in
  let p = Baselines.Pmfs.mkfs env in
  let fs = Baselines.Pmfs.as_fsapi p in
  {
    b_env = env;
    b_fs = fs;
    b_checkpoint = ignore;
    b_snapshot = copy_snapshot fs;
    b_recover = ignore;
    b_read = (fun () -> fs);
  }

let build_nova () =
  (* NOVA reserves 4 MiB of per-inode log space up front *)
  let env = Pmem.Env.create ~capacity:(2 * env_capacity) () in
  let n = Baselines.Nova.mkfs env ~mode:Baselines.Nova.Relaxed in
  let fs = Baselines.Nova.as_fsapi n in
  {
    b_env = env;
    b_fs = fs;
    b_checkpoint = ignore;
    b_snapshot = copy_snapshot fs;
    b_recover = ignore;
    b_read = (fun () -> fs);
  }

let builder_of : stack_id -> builder = function
  | Ext4_dax -> build_ext4
  | Pmfs -> build_pmfs
  | Nova_relaxed -> build_nova
  | Splitfs_posix -> build_splitfs Splitfs.Config.Posix
  | Splitfs_sync -> build_splitfs Splitfs.Config.Sync
  | Splitfs_strict -> build_splitfs Splitfs.Config.Strict
  | Splitfs_fams -> build_splitfs Splitfs.Config.Fams

(* ------------------------------------------------------------------ *)
(* Auxiliary configurations (fence-site coverage)                       *)
(* ------------------------------------------------------------------ *)

(** A degraded SplitFS: a sticky staging-preallocation fault forces
    every staged write down the honest kernel-passthrough path, hitting
    the [usplit:degraded-write] fence. The fault is cleared before
    recovery — it models a full device at run time, not a broken one at
    recovery time. *)
let build_degraded mode () =
  (* an empty pool forces every acquire through foreground
     pre-allocation, where the sticky fault fires *)
  let b =
    build_splitfs ~tweak:(fun c -> { c with Splitfs.Config.staging_files = 0 })
      mode ()
  in
  Faults.inject b.b_env.Pmem.Env.faults
    (Faults.rfault ~origin:Faults.Staging_prealloc Faults.Alloc ~from:0
       Faults.Sticky);
  let recover = b.b_recover in
  {
    b with
    b_recover =
      (fun () ->
        Faults.reset b.b_env.Pmem.Env.faults;
        recover ());
  }

type aux = {
  x_name : string;
  x_stack : stack_id;
  x_contract : contract;
      (** both aux configurations route appends through the kernel, so
          they are held to the kernel contract, not SplitFS sync *)
  x_builder : builder;
  x_pattern : pattern;
}

(** Configurations exercising fence sites the seven main stacks never
    reach: the degraded kernel-passthrough write and the Figure-3
    split-without-staging ablation. *)
let aux_combos =
  [
    {
      x_name = "splitfs-sync-degraded";
      x_stack = Splitfs_sync;
      x_contract = Sync_dax;
      x_builder = build_degraded Splitfs.Config.Sync;
      x_pattern = two_appends;
    };
    {
      x_name = "splitfs-sync-nostaging";
      x_stack = Splitfs_sync;
      x_contract = Sync_dax;
      x_builder =
        build_splitfs
          ~tweak:(fun c -> { c with Splitfs.Config.use_staging = false })
          Splitfs.Config.Sync;
      x_pattern = two_appends;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Lockstep trial runner                                                *)
(* ------------------------------------------------------------------ *)

let slot_count p =
  let m =
    List.fold_left
      (fun a op ->
        match op with
        | Create { slot; _ }
        | Write { slot; _ }
        | Fsync { slot }
        | Truncate { slot; _ } ->
            max a slot
        | Rename _ | Unlink _ | Checkpoint | Snapshot _ -> a)
      (List.length p.p_initial - 1)
      p.p_ops
  in
  m + 1

(** Create and fsync the initial files: the crash window opens on a
    fully durable state. *)
let setup p (fs : Fsapi.Fs.t) =
  let slots = Array.make (slot_count p) None in
  List.iteri
    (fun i (path, len, seed) ->
      let fd = fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw in
      if len > 0 then
        ignore (fs.Fsapi.Fs.pwrite fd ~buf:(payload ~seed len) ~boff:0 ~len ~at:0);
      fs.Fsapi.Fs.fsync fd;
      slots.(i) <- Some fd)
    p.p_initial;
  slots

let fdx slots i =
  match slots.(i) with
  | Some fd -> fd
  | None -> invalid_arg "litmus: op on a slot no Create filled"

let apply (fs : Fsapi.Fs.t) ~checkpoint ~snapshot slots op =
  match op with
  | Create { slot; path } ->
      slots.(slot) <- Some (fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw)
  | Write { slot; at; len; seed } ->
      ignore
        (fs.Fsapi.Fs.pwrite (fdx slots slot) ~buf:(payload ~seed len) ~boff:0
           ~len ~at)
  | Fsync { slot } -> fs.Fsapi.Fs.fsync (fdx slots slot)
  | Truncate { slot; size } -> fs.Fsapi.Fs.ftruncate (fdx slots slot) size
  | Rename { src; dst } -> fs.Fsapi.Fs.rename src dst
  | Unlink { path } -> fs.Fsapi.Fs.unlink path
  | Checkpoint -> checkpoint ()
  | Snapshot { src; dst } -> snapshot src dst

(** The oracle has no relink: checkpoint makes everything durable. *)
let oracle_checkpoint (ofs : Fsapi.Fs.t) oslots () =
  Array.iter
    (function Some fd -> ofs.Fsapi.Fs.fsync fd | None -> ())
    oslots

(** Run the pattern once to completion with the persist-order journal
    on (store dedup enabled). Returns every crash point — one per fence
    plus the end of the trace — and the per-site fence hits inside the
    window (the evidence the coverage test and the minimizer work from). *)
let profile (builder : builder) p =
  let b = builder () in
  let slots = setup p b.b_fs in
  let dev = b.b_env.Pmem.Env.dev in
  (* hit counters are per-device (PR 8), so the mount/setup traffic this
     builder already generated is the baseline to diff against *)
  let before =
    List.map
      (fun (i, _) -> (i, Pmem.Device.site_hits dev i))
      (Pmem.Device.fence_sites ())
  in
  Pmem.Device.journal_begin ~dedup:true dev;
  List.iter
    (apply b.b_fs ~checkpoint:b.b_checkpoint ~snapshot:b.b_snapshot slots)
    p.p_ops;
  let nf = Pmem.Device.fence_count dev in
  let points =
    List.init nf (fun i ->
        { Explore.fence = i; pending = Pmem.Device.fence_pending dev i })
    @ [ { Explore.fence = nf; pending = Pmem.Device.pending_now dev } ]
  in
  Pmem.Device.journal_stop dev;
  let hits =
    List.filter_map
      (fun (i, h0) ->
        let d = Pmem.Device.site_hits dev i - h0 in
        if d > 0 then Some (i, d) else None)
      before
  in
  (points, hits)

(** Per-site execution totals over one profiling pass of the whole corpus
    plus the aux configurations, *including* mount/setup-time traffic
    (the in-window [profile] hits miss mount-only sites like
    [oplog:init]). Feeds the coverage test: a site with zero total is one
    no workload reaches and the minimizer cannot vouch for. *)
let site_coverage ?jobs () =
  let combos =
    List.concat_map
      (fun p -> List.map (fun s -> (builder_of s, p)) all_stacks)
      corpus
    @ List.map (fun (x : aux) -> (x.x_builder, x.x_pattern)) aux_combos
  in
  let per_combo =
    Par.map ?jobs
      (fun _ (builder, p) ->
        let b = builder () in
        let slots = setup p b.b_fs in
        let dev = b.b_env.Pmem.Env.dev in
        Pmem.Device.journal_begin ~dedup:true dev;
        List.iter
          (apply b.b_fs ~checkpoint:b.b_checkpoint ~snapshot:b.b_snapshot slots)
          p.p_ops;
        Pmem.Device.journal_stop dev;
        List.map (fun (i, _) -> Pmem.Device.site_hits dev i)
          (Pmem.Device.fence_sites ()))
      combos
  in
  let sites = Pmem.Device.fence_sites () in
  List.mapi
    (fun k (site, name) ->
      ( site,
        name,
        List.fold_left (fun acc hits -> acc + List.nth hits k) 0 per_combo ))
    sites

let snap (oracle : Fsapi.Ref_fs.oracle) paths =
  List.map
    (fun path ->
      ( path,
        match
          (oracle.Fsapi.Ref_fs.dump path, oracle.Fsapi.Ref_fs.dump_stable path)
        with
        | Some cur, Some (stable, stable_ow) -> Some { View.cur; stable; stable_ow }
        | _ -> None ))
    paths

(** Post-recovery file content as the surviving stack serves it;
    [None] = the path no longer exists. *)
let read_back (fs : Fsapi.Fs.t) path =
  match fs.Fsapi.Fs.stat path with
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> None
  | st ->
      let size = st.Fsapi.Fs.st_size in
      let fd = fs.Fsapi.Fs.open_ path Fsapi.Flags.rdonly in
      Fun.protect
        ~finally:(fun () -> fs.Fsapi.Fs.close fd)
        (fun () ->
          let buf = Bytes.create size in
          let got =
            if size = 0 then 0
            else fs.Fsapi.Fs.pread fd ~buf ~boff:0 ~len:size ~at:0
          in
          Some (Bytes.sub buf 0 got))

let check_content contract ~pre ~post recovered =
  match contract with
  | Atomic -> Check.check Splitfs.Config.Strict ~pre ~post recovered
  | Fams -> Check.check Splitfs.Config.Fams ~pre ~post recovered
  | Syncd -> Check.check Splitfs.Config.Sync ~pre ~post recovered
  | Posixd -> Check.check Splitfs.Config.Posix ~pre ~post recovered
  | Sync_dax -> (
      match
        Check.check_size recovered
          [ Bytes.length pre.View.cur; Bytes.length post.View.cur ]
      with
      | Some e -> Some e
      | None ->
          (* bytes the pre state covered must be explained; bytes the
             in-flight op newly exposed are unconstrained (fresh-block
             zeros or stale freed content — non-atomic kernel FS) *)
          Check.check_bytes
            ~upto:(Bytes.length pre.View.cur)
            recovered
            [ pre.View.cur; post.View.cur ])

(** Existence plus content: a path may only appear or disappear if the
    operation in flight could have done it. *)
let check_file contract ~pre ~post recovered =
  match recovered with
  | None ->
      if Option.is_none pre || Option.is_none post then None
      else Some "file lost: present in both the pre- and post-op state"
  | Some b ->
      if Option.is_none pre && Option.is_none post then
        Some "file resurrected: absent in both oracle states"
      else
        check_content contract
          ~pre:(Option.value pre ~default:View.empty)
          ~post:(Option.value post ~default:View.empty)
          b

type trial = {
  t_crashed_at : int option;
      (** index of the op in flight, [None] = end of trace *)
  t_recovered : (string * Bytes.t option) list;
  t_violations : (string option * string) list;
      (** (path, reason); path [None] = the pattern claim failed *)
}

(** One crash state end to end: fresh stack, lockstep replay against
    the {!Fsapi.Ref_fs} oracle, crash injection, recovery, read-back,
    per-file contract check plus the pattern claim. *)
let run_trial (builder : builder) p contract ~(point : Explore.point)
    ~survivors =
  let b = builder () in
  let slots = setup p b.b_fs in
  let ofs, oracle = Fsapi.Ref_fs.make_oracle () in
  let oslots = setup p ofs in
  let dev = b.b_env.Pmem.Env.dev in
  Pmem.Device.journal_begin ~dedup:true dev;
  Pmem.Device.arm_crash dev ~fence:point.Explore.fence ~survivors;
  let ocp = oracle_checkpoint ofs oslots in
  let osnap = copy_snapshot ofs in
  let pre = ref [] and post = ref [] and crashed_at = ref None in
  let rec go k = function
    | [] ->
        (* armed fence past the last one: crash at the end of the trace *)
        pre := snap oracle p.p_paths;
        post := !pre;
        Pmem.Device.crash_partial dev ~survivors
    | op :: rest -> (
        match
          apply b.b_fs ~checkpoint:b.b_checkpoint ~snapshot:b.b_snapshot slots
            op
        with
        | () ->
            apply ofs ~checkpoint:ocp ~snapshot:osnap oslots op;
            go (k + 1) rest
        | exception Pmem.Device.Crashed ->
            crashed_at := Some k;
            pre := snap oracle p.p_paths;
            apply ofs ~checkpoint:ocp ~snapshot:osnap oslots op;
            post := snap oracle p.p_paths)
  in
  go 0 p.p_ops;
  Pmem.Device.resume dev;
  Pmem.Device.journal_stop dev;
  b.b_recover ();
  let rfs = b.b_read () in
  let recovered = List.map (fun path -> (path, read_back rfs path)) p.p_paths in
  let violations = ref [] in
  List.iter
    (fun path ->
      match
        check_file contract
          ~pre:(List.assoc path !pre)
          ~post:(List.assoc path !post)
          (List.assoc path recovered)
      with
      | None -> ()
      | Some reason -> violations := (Some path, reason) :: !violations)
    p.p_paths;
  (match
     p.p_claim contract (fun path ->
         Option.join (List.assoc_opt path recovered))
   with
  | None -> ()
  | Some reason -> violations := (None, reason) :: !violations);
  {
    t_crashed_at = !crashed_at;
    t_recovered = recovered;
    t_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Exhaustive driver                                                    *)
(* ------------------------------------------------------------------ *)

type violation = {
  vl_path : string option;  (** [None] = pattern-claim violation *)
  vl_reason : string;
  vl_fence : int;
  vl_op : int option;
  vl_survivors : Pmem.Device.survivor list;
}

type run = {
  r_pattern : string;
  r_stack : stack_id;
  r_config : string;  (** stack name, or an aux configuration name *)
  r_contract : contract;
  r_points : int;  (** crash points: fences + end of trace *)
  r_states : int;  (** crash states enumerated — all of them *)
  r_violations : violation list;
}

(** Litmus is exhaustive by construction: a pattern whose crash space
    outgrows this per-point cap is a corpus bug, not a sampling
    opportunity. *)
let max_point_states = 4096

let run_pattern ?builder ?config ?contract p stack =
  let builder =
    match builder with Some b -> b | None -> builder_of stack
  in
  let config = Option.value config ~default:(stack_name stack) in
  let contract = Option.value contract ~default:(contract_of stack) in
  let points, _ = profile builder p in
  let states = ref 0 and violations = ref [] in
  List.iter
    (fun (pt : Explore.point) ->
      let n = Explore.state_count pt.Explore.pending in
      if n > max_point_states then
        failwith
          (Printf.sprintf
             "litmus %s on %s: %d crash states at fence %d exceed the \
              exhaustive cap %d"
             p.p_name config n pt.Explore.fence max_point_states);
      states := !states + n;
      List.iter
        (fun svs ->
          let t = run_trial builder p contract ~point:pt ~survivors:svs in
          List.iter
            (fun (path, reason) ->
              violations :=
                {
                  vl_path = path;
                  vl_reason = reason;
                  vl_fence = pt.Explore.fence;
                  vl_op = t.t_crashed_at;
                  vl_survivors = svs;
                }
                :: !violations)
            t.t_violations)
        (Explore.enumerate pt.Explore.pending))
    points;
  {
    r_pattern = p.p_name;
    r_stack = stack;
    r_config = config;
    r_contract = contract;
    r_points = List.length points;
    r_states = !states;
    r_violations = List.rev !violations;
  }

(** The whole corpus across all seven stacks, exhaustively. The 56
    (pattern × stack) combos are independent — each [run_pattern] builds
    its own stacks — so they fan over the {!Par} domain pool; results
    come back in combo order, identical at any job count. Exploration
    inside one combo stays sequential, preserving the pinned per-combo
    state counts exactly. *)
let run_corpus ?jobs () =
  let combos =
    List.concat_map (fun p -> List.map (fun s -> (p, s)) all_stacks) corpus
  in
  Par.map ?jobs (fun _ (p, s) -> run_pattern p s) combos

(** The auxiliary coverage configurations (exhaustive as well — their
    patterns are sized to stay enumerable). *)
let run_aux ?jobs () =
  Par.map ?jobs
    (fun _ x ->
      run_pattern ~builder:x.x_builder ~config:x.x_name ~contract:x.x_contract
        x.x_pattern x.x_stack)
    aux_combos

(** Harness self-test: break the fams publish protocol (no commit record
    before the relink — [Env.checks.fams_commit_record]) and re-explore
    the msync pattern exhaustively. Mid-publish crash states must then
    recover to a torn image and violate the fams contract; returns [true]
    when the corpus caught the injected bug. A harness that stays green
    with the commit record deleted would be vouching for nothing. *)
let catches_torn_msync () =
  let checks =
    {
      (Pmem.Env.default_checks ()) with
      Pmem.Env.fams_commit_record = false;
    }
  in
  let builder = build_splitfs ~checks Splitfs.Config.Fams in
  let r =
    run_pattern ~builder ~config:"splitfs-fams-nocommit" msync_publish
      Splitfs_fams
  in
  r.r_violations <> []

let pp_violation ppf v =
  Fmt.pf ppf "@[<v2>fence %d%a%a: %s@,survivors: @[%a@]@]" v.vl_fence
    (fun ppf -> function
      | Some k -> Fmt.pf ppf " (op %d in flight)" k
      | None -> ())
    v.vl_op
    (fun ppf -> function
      | Some p -> Fmt.pf ppf ", %s" p
      | None -> Fmt.string ppf ", claim")
    v.vl_path v.vl_reason
    Fmt.(
      list ~sep:semi (fun ppf (s : Pmem.Device.survivor) ->
          Fmt.pf ppf "line %d keep %d" s.s_line s.s_keep))
    v.vl_survivors

let pp_run ppf r =
  Fmt.pf ppf
    "@[<v2>%-16s %-22s %-8s %3d points %5d states (exhaustive)  %d \
     violation(s)%a@]"
    r.r_pattern r.r_config
    (contract_name r.r_contract)
    r.r_points r.r_states
    (List.length r.r_violations)
    Fmt.(list ~sep:nop (fun ppf v -> Fmt.pf ppf "@,%a" pp_violation v))
    r.r_violations
