(** Crashcheck: partial-persistence crash-state exploration with a
    differential recovery oracle (DESIGN.md §5d).

    The PM device records a persist-order journal of every store, flush
    and fence. At any fence the durable image is only partially
    determined: each touched cache line independently holds either its
    last fence-committed content or any later version that had reached
    the device (x86-TSO persist semantics with speculative writeback;
    non-temporal frontier versions may additionally tear at 8-byte
    granularity). Crashcheck enumerates those crash states exhaustively
    when the space is small and samples it with a seeded RNG otherwise;
    for every state it re-runs the workload up to the crash point on a
    fresh stack, injects the crash, runs {!Splitfs.Recovery.recover},
    reads the files back through the kernel, and checks them against a
    {!Fsapi.Ref_fs} oracle that tracks the legal post-crash contents per
    SplitFS mode:

    - strict: recovered content is exactly the pre- or post-op state of
      the operation in flight — never a mixture (atomic data ops);
    - sync: the size is the pre- or post-op size and every byte below
      the smaller size is explained by the pre- or post-op content
      (synchronous but not atomic: in-place overwrites may tear);
    - POSIX: only fsync'd data is promised. The size is a stable
      (last-fsync) size and bytes below the smallest stable size are
      explained by a stable view, optionally with post-fsync in-place
      overwrites applied; everything beyond is unconstrained;
    - fams: recovered content is exactly the pre- or post-msync image —
      stores between msyncs must be invisible, a published msync must be
      complete (failure-atomic msync).

    Ferrite-style exhaustive enumeration is kept for small traces (a
    unit test asserts the exact state count on a hand-built trace);
    real workloads overflow that space after a handful of fences, which
    is why the sampler exists. A shrinking reporter minimises the
    surviving-line deviation of any violating state before reporting. *)

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)
(* ------------------------------------------------------------------ *)

module Workload = struct
  type op =
    | Write of { file : int; at : int; len : int; seed : int }
    | Fsync of { file : int }
    | Checkpoint  (** relink_all on SplitFS, fsync-everything on the oracle *)

  type t = {
    mode : Splitfs.Config.mode;
    nfiles : int;
    initial : int array;  (** per-file setup content length, fsync'd *)
    ops : op list;
  }

  (** Deterministic content; must be identical for the system under test
      and the oracle, distinctive across seeds. *)
  let payload ~seed len =
    Bytes.init len (fun i ->
        Char.chr ((seed * 131 + i * 7 + (i * i mod 251)) land 0xFF))

  (** Allocation-free twin of {!payload}: fill [buf]'s first [len] bytes
      with the same content stream. Safe to reuse across ops because
      every [pwrite] in the simulation (U-Split staging, kernel, oracle)
      copies out of the caller's buffer. *)
  let payload_into ~seed buf ~len =
    for i = 0 to len - 1 do
      Bytes.unsafe_set buf i
        (Char.unsafe_chr ((seed * 131 + (i * 7) + (i * i mod 251)) land 0xFF))
    done

  let pp_op ppf = function
    | Write { file; at; len; seed = _ } ->
        Fmt.pf ppf "write f%d [%d,+%d)" file at len
    | Fsync { file } -> Fmt.pf ppf "fsync f%d" file
    | Checkpoint -> Fmt.string ppf "checkpoint"

  (** Random interleaving of appends, overwrites (possibly crossing EOF),
      fsyncs and checkpoints. Sizes stay small so each trial stays cheap
      and the staging files never run out (a mid-op checkpoint would not
      be wrong, merely noisy). [scale] multiplies every length drawn —
      the default 1 keeps crash-state spaces small, while faultcheck
      passes a larger factor so writes cross block boundaries and the
      full-block relink path is exercised under injected faults. *)
  let generate ~mode ~seed ?(scale = 1) ~nops () =
    let rng = Workloads.Rng.create seed in
    let nfiles = 3 in
    let initial = Array.init nfiles (fun i -> scale * (256 + (128 * i))) in
    let sizes = Array.copy initial in
    let ops =
      List.init nops (fun k ->
          let file = Workloads.Rng.int rng nfiles in
          match Workloads.Rng.int rng 10 with
          | 0 | 1 -> Fsync { file }
          | 2 when mode <> Splitfs.Config.Posix -> Checkpoint
          | 2 -> Fsync { file }
          | 3 | 4 | 5 ->
              (* overwrite starting inside the file, may cross EOF *)
              let at = Workloads.Rng.int rng (max 1 sizes.(file)) in
              let len = scale * (1 + Workloads.Rng.int rng 200) in
              if at + len > sizes.(file) then sizes.(file) <- at + len;
              Write { file; at; len; seed = (seed * 7919) + k }
          | _ ->
              (* append *)
              let len = scale * (1 + Workloads.Rng.int rng 700) in
              let at = sizes.(file) in
              sizes.(file) <- at + len;
              Write { file; at; len; seed = (seed * 7919) + k })
    in
    { mode; nfiles; initial; ops }
end

(* ------------------------------------------------------------------ *)
(* Crash-state space                                                    *)
(* ------------------------------------------------------------------ *)

module Explore = Explore

(* ------------------------------------------------------------------ *)
(* Oracle views                                                         *)
(* ------------------------------------------------------------------ *)

module View = View

(* ------------------------------------------------------------------ *)
(* Per-mode differential check                                          *)
(* ------------------------------------------------------------------ *)

module Check = Check

(* ------------------------------------------------------------------ *)
(* Litmus corpus and fence minimization (DESIGN.md §5i)                 *)
(* ------------------------------------------------------------------ *)

module Litmus = Litmus
module Minimize = Minimize

(* ------------------------------------------------------------------ *)
(* Trial runner                                                         *)
(* ------------------------------------------------------------------ *)

module Runner = struct
  type stack = {
    env : Pmem.Env.t;
    sys : Kernelfs.Syscall.t;
    u : Splitfs.Usplit.t;
    fs : Fsapi.Fs.t;
  }

  let file_path i = Printf.sprintf "/f%d" i

  (** A small, fast stack: every crash state re-runs the workload on a
      fresh one of these, so size is latency. [checks] configures the
      environment's oracle/recovery toggles (used by the injected-bug
      regression tests); the default is all checks on. *)
  let build ?checks mode =
    let env = Pmem.Env.create ~capacity:(8 * 1024 * 1024) ?checks () in
    let kfs = Kernelfs.Ext4.mkfs ~journal_len:(1024 * 1024) env in
    let sys = Kernelfs.Syscall.make kfs in
    let cfg =
      {
        (Splitfs.Config.with_mode mode) with
        Splitfs.Config.staging_files = 2;
        staging_size = 256 * 1024;
        oplog_size = 16 * 1024;
      }
    in
    let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
    { env; sys; u; fs = Splitfs.Usplit.as_fsapi u }

  (** Grow-on-demand payload scratch: one buffer per trial replaces a
      [Bytes] allocation per applied op (and each crash state replays the
      whole workload, so the savings multiply by the trial count). *)
  let scratch_payload scratch ~seed len =
    if Bytes.length !scratch < len then
      scratch := Bytes.create (max len (2 * Bytes.length !scratch));
    Workload.payload_into ~seed !scratch ~len;
    !scratch

  (** Create the workload's files with their initial content and fsync
      them: the trace starts from a fully durable state. *)
  let setup ?scratch (w : Workload.t) (fs : Fsapi.Fs.t) =
    Array.init w.Workload.nfiles (fun i ->
        let fd = fs.Fsapi.Fs.open_ (file_path i) Fsapi.Flags.create_rw in
        let len = w.Workload.initial.(i) in
        let buf =
          match scratch with
          | Some s -> scratch_payload s ~seed:(1000 + i) len
          | None -> Workload.payload ~seed:(1000 + i) len
        in
        ignore (fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len ~at:0);
        fs.Fsapi.Fs.fsync fd;
        fd)

  let apply ?scratch ~checkpoint (fs : Fsapi.Fs.t) fds (op : Workload.op) =
    match op with
    | Workload.Write { file; at; len; seed } ->
        let buf =
          match scratch with
          | Some s -> scratch_payload s ~seed len
          | None -> Workload.payload ~seed len
        in
        ignore (fs.Fsapi.Fs.pwrite fds.(file) ~buf ~boff:0 ~len ~at)
    | Workload.Fsync { file } -> fs.Fsapi.Fs.fsync fds.(file)
    | Workload.Checkpoint -> checkpoint ()

  (** Run the workload once to completion with the persist-order journal
      on and collect every crash point: one per fence plus one for the
      end of the trace. *)
  let profile (w : Workload.t) =
    let st = build w.Workload.mode in
    let fds = setup w st.fs in
    let dev = st.env.Pmem.Env.dev in
    Pmem.Device.journal_begin dev;
    List.iter
      (apply ~checkpoint:(fun () -> Splitfs.Usplit.relink_all st.u) st.fs fds)
      w.Workload.ops;
    let nf = Pmem.Device.fence_count dev in
    let points =
      List.init nf (fun i ->
          { Explore.fence = i; pending = Pmem.Device.fence_pending dev i })
      @ [ { Explore.fence = nf; pending = Pmem.Device.pending_now dev } ]
    in
    Pmem.Device.journal_stop dev;
    points

  let snapshot (w : Workload.t) (oracle : Fsapi.Ref_fs.oracle) =
    Array.init w.Workload.nfiles (fun i ->
        let p = file_path i in
        match
          (oracle.Fsapi.Ref_fs.dump p, oracle.Fsapi.Ref_fs.dump_stable p)
        with
        | Some cur, Some (stable, stable_ow) ->
            { View.cur; stable; stable_ow }
        | _ -> View.empty)

  (** Post-crash file content as the kernel serves it. *)
  let read_back_path sys path =
    match Kernelfs.Syscall.stat sys path with
    | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> None
    | st ->
        let size = st.Fsapi.Fs.st_size in
        let fd = Kernelfs.Syscall.open_ sys path Fsapi.Flags.rdonly in
        Fun.protect
          ~finally:(fun () -> Kernelfs.Syscall.close sys fd)
          (fun () ->
            let buf = Bytes.create size in
            let got =
              Kernelfs.Syscall.pread sys fd ~buf ~boff:0 ~len:size ~at:0
            in
            Some (Bytes.sub buf 0 got))

  let read_back sys i = read_back_path sys (file_path i)

  type trial = {
    crashed_at_op : int option;
        (** index of the operation in flight, [None] = end of trace *)
    violations : (int * string) list;  (** (file index, reason) *)
    recovered : Bytes.t array;  (** per-file post-recovery content *)
    recovery : Splitfs.Recovery.report;
  }

  (** One crash state, end to end: rebuild the stack, arm the crash,
      replay the workload against SplitFS and the oracle in lockstep,
      inject the crash, recover, read back, check. *)
  let run_trial ?checks (w : Workload.t) ~(point : Explore.point) ~survivors =
    let scratch = ref Bytes.empty in
    let st = build ?checks w.Workload.mode in
    let fds = setup ~scratch w st.fs in
    let ofs, oracle = Fsapi.Ref_fs.make_oracle () in
    let ofds = setup ~scratch w ofs in
    let dev = st.env.Pmem.Env.dev in
    Pmem.Device.journal_begin dev;
    Pmem.Device.arm_crash dev ~fence:point.Explore.fence ~survivors;
    let real_cp () = Splitfs.Usplit.relink_all st.u in
    let oracle_cp () = Array.iter (fun fd -> ofs.Fsapi.Fs.fsync fd) ofds in
    let pre = ref [||] and post = ref [||] and crashed_at = ref None in
    let rec go k = function
      | [] ->
          (* the armed fence is past the last one: crash at end of trace *)
          pre := snapshot w oracle;
          post := !pre;
          Pmem.Device.crash_partial dev ~survivors
      | op :: rest -> (
          match apply ~scratch ~checkpoint:real_cp st.fs fds op with
          | () ->
              apply ~scratch ~checkpoint:oracle_cp ofs ofds op;
              go (k + 1) rest
          | exception Pmem.Device.Crashed ->
              crashed_at := Some k;
              pre := snapshot w oracle;
              apply ~scratch ~checkpoint:oracle_cp ofs ofds op;
              post := snapshot w oracle)
    in
    go 0 w.Workload.ops;
    Pmem.Device.resume dev;
    Pmem.Device.journal_stop dev;
    let recovery =
      Splitfs.Recovery.recover ~sys:st.sys ~env:st.env ~instance:0
    in
    let recovered =
      Array.init w.Workload.nfiles (fun i ->
          match read_back st.sys i with Some b -> b | None -> Bytes.empty)
    in
    let violations = ref [] in
    for i = w.Workload.nfiles - 1 downto 0 do
      match
        Check.check w.Workload.mode ~pre:(!pre).(i) ~post:(!post).(i)
          recovered.(i)
      with
      | None -> ()
      | Some reason -> violations := (i, reason) :: !violations
    done;
    { crashed_at_op = !crashed_at; violations = !violations; recovered; recovery }
end

(* ------------------------------------------------------------------ *)
(* Shrinking reporter                                                   *)
(* ------------------------------------------------------------------ *)

(** Minimise a violating survivor vector: greedily restore deviating
    lines (those not keeping every pending version, or torn) to the
    fully-persisted default and keep each restoration that still
    violates. What remains is a minimal set of lost/torn lines that
    still breaks recovery — the actual culprit, not the noise the
    sampler drew alongside it. Bounded by [budget] re-runs. *)
let shrink ?(budget = 100) ?checks (w : Workload.t) ~(point : Explore.point)
    ~survivors =
  let budget = ref budget in
  let full_keep line =
    match
      Array.to_list point.Explore.pending
      |> List.find_opt (fun (p : Pmem.Device.pending_line) -> p.p_line = line)
    with
    | Some p -> p.Pmem.Device.p_versions
    | None -> 0
  in
  let violates svs =
    decr budget;
    (Runner.run_trial ?checks w ~point ~survivors:svs).Runner.violations <> []
  in
  let current = ref survivors in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    List.iter
      (fun (s : Pmem.Device.survivor) ->
        let n = full_keep s.s_line in
        if (s.s_keep <> n || s.s_tear <> 0) && !budget > 0 then begin
          let cand =
            List.map
              (fun (s' : Pmem.Device.survivor) ->
                if s'.s_line = s.s_line then
                  { s' with Pmem.Device.s_keep = n; s_tear = 0 }
                else s')
              !current
          in
          if violates cand then begin
            current := cand;
            progress := true
          end
        end)
      !current
  done;
  List.filter
    (fun (s : Pmem.Device.survivor) ->
      s.s_keep <> full_keep s.s_line || s.s_tear <> 0)
    !current

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

type violation = {
  v_fence : int;  (** crash point (fence index) *)
  v_op : int option;  (** operation in flight, if any *)
  v_file : int;
  v_reason : string;
  v_survivors : Pmem.Device.survivor list;  (** as sampled/enumerated *)
  v_shrunk : Pmem.Device.survivor list;  (** minimal deviating subset *)
}

type mode_report = {
  r_mode : Splitfs.Config.mode;
  r_ops : int;
  r_points : int;  (** crash points (fences + end of trace) *)
  r_total_states : int;  (** |legal crash states|, line-granular *)
  r_explored : int;  (** trials actually run *)
  r_exhaustive : bool;
  r_violations : violation list;
}

let pp_survivor ppf (s : Pmem.Device.survivor) =
  if s.s_tear <> 0 then
    Fmt.pf ppf "line %d keep %d tear %#x" s.s_line s.s_keep s.s_tear
  else Fmt.pf ppf "line %d keep %d" s.s_line s.s_keep

let pp_violation ppf v =
  Fmt.pf ppf "@[<v2>fence %d%a, file f%d: %s@,shrunk to: @[%a@]@]" v.v_fence
    (fun ppf -> function
      | Some k -> Fmt.pf ppf " (op %d in flight)" k
      | None -> ())
    v.v_op v.v_file v.v_reason
    Fmt.(list ~sep:semi pp_survivor)
    v.v_shrunk

let pp_mode_report ppf r =
  Fmt.pf ppf "@[<v2>%-6s %3d ops  %4d crash points  %6d/%-6d states %s  %d violation(s)%a@]"
    (Splitfs.Config.mode_to_string r.r_mode)
    r.r_ops r.r_points r.r_explored r.r_total_states
    (if r.r_exhaustive then "(exhaustive)" else "(sampled)")
    (List.length r.r_violations)
    Fmt.(list ~sep:nop (fun ppf v -> Fmt.pf ppf "@,%a" pp_violation v))
    r.r_violations

(** [check_mode ?samples ?seed ?nops ?jobs mode] generates a workload,
    maps its crash-state space, explores it (exhaustively if it fits in
    [samples] trials, by seeded sampling otherwise) and differentially
    checks recovery for every explored state. The first violation is
    shrunk; all are reported.

    Parallel structure (DESIGN.md §5j): the trial list is materialised by
    a cheap sequential prepass — identical RNG draws regardless of job
    count — then the expensive per-trial replays fan over the {!Par}
    domain pool. Results come back in trial order, so the merge (and
    which violation gets the shrinking budget) is byte-identical at any
    job count. *)
let check_mode ?(samples = 200) ?(seed = 0x51ED) ?(nops = 24) ?jobs ?checks
    mode =
  let w = Workload.generate ~mode ~seed ~nops () in
  let points = Runner.profile w in
  let total =
    List.fold_left
      (fun acc (p : Explore.point) -> acc + Explore.state_count p.pending)
      0 points
  in
  let exhaustive = total <= samples in
  let trials =
    if exhaustive then
      List.concat_map
        (fun (p : Explore.point) ->
          List.map (fun svs -> (p, svs)) (Explore.enumerate p.pending))
        points
    else begin
      (* partition-independent sampling: trial [i]'s crash state is a
         function of (seed, i) alone, never of shared RNG state — the
         sampled multiset is identical at any job count or budget split *)
      let parr = Array.of_list points in
      List.init samples (fun i ->
          Explore.sample_point_indexed ~seed:(seed lxor 0x5EED5EED) ~index:i
            parr)
    end
  in
  let results =
    Par.map ?jobs
      (fun _ ((p : Explore.point), svs) ->
        Runner.run_trial ?checks w ~point:p ~survivors:svs)
      trials
  in
  let violations = ref [] in
  List.iter2
    (fun ((p : Explore.point), svs) (t : Runner.trial) ->
      List.iter
        (fun (file, reason) ->
          let shrunk =
            if !violations = [] then shrink ?checks w ~point:p ~survivors:svs
            else svs
          in
          violations :=
            {
              v_fence = p.Explore.fence;
              v_op = t.Runner.crashed_at_op;
              v_file = file;
              v_reason = reason;
              v_survivors = svs;
              v_shrunk = shrunk;
            }
            :: !violations)
        t.Runner.violations)
    trials results;
  {
    r_mode = w.Workload.mode;
    r_ops = nops;
    r_points = List.length points;
    r_total_states = total;
    r_explored = List.length trials;
    r_exhaustive = exhaustive;
    r_violations = List.rev !violations;
  }

(** All four modes with the same budget. *)
let run ?samples ?seed ?nops ?jobs () =
  List.map
    (fun mode -> check_mode ?samples ?seed ?nops ?jobs mode)
    [
      Splitfs.Config.Posix;
      Splitfs.Config.Sync;
      Splitfs.Config.Strict;
      Splitfs.Config.Fams;
    ]

(* ------------------------------------------------------------------ *)
(* Concurrent crashcheck: two interleaved clients (PR 3)                *)
(* ------------------------------------------------------------------ *)

(** Differential crash checking under concurrency: two clients — each a
    scheduler actor with its own U-Split instance and kernel fd table over
    one shared kernel and device — run interleaved workloads on disjoint
    file sets. The persist-order journal records the merged NT/flush/fence
    stream of both clients plus the shared jbd2 journal; every sampled
    crash state is recovered (both instances) and each client's files are
    checked against the per-mode contract exactly as in the single-client
    harness. This is the evidence that the per-actor clock refactor and
    the contention charges did not change what reaches the media, or the
    order it becomes durable in. *)
module Concurrent = struct
  let nclients = 2
  let file_path c i = Printf.sprintf "/c%df%d" c i

  type stack = {
    env : Pmem.Env.t;
    sys : Kernelfs.Syscall.t array;  (** per-client process fd table *)
    u : Splitfs.Usplit.t array;
    fs : Fsapi.Fs.t array;
    actors : Pmem.Simclock.actor array;
  }

  let build mode =
    let env = Pmem.Env.create ~capacity:(16 * 1024 * 1024) () in
    let kfs = Kernelfs.Ext4.mkfs ~journal_len:(1024 * 1024) env in
    let cfg =
      {
        (Splitfs.Config.with_mode mode) with
        Splitfs.Config.staging_files = 2;
        staging_size = 256 * 1024;
        oplog_size = 16 * 1024;
      }
    in
    let sys = Array.init nclients (fun _ -> Kernelfs.Syscall.make kfs) in
    let u =
      Array.init nclients (fun c ->
          Splitfs.Usplit.mount ~cfg ~sys:sys.(c) ~env ~instance:c ())
    in
    let fs = Array.map Splitfs.Usplit.as_fsapi u in
    let actors =
      Array.init nclients (fun c ->
          Pmem.Env.new_actor env ~name:(Printf.sprintf "client%d" c))
    in
    { env; sys; u; fs; actors }

  let setup c (w : Workload.t) (fs : Fsapi.Fs.t) =
    Array.init w.Workload.nfiles (fun i ->
        let fd = fs.Fsapi.Fs.open_ (file_path c i) Fsapi.Flags.create_rw in
        let len = w.Workload.initial.(i) in
        let buf = Workload.payload ~seed:(2000 + (100 * c) + i) len in
        ignore (fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len ~at:0);
        fs.Fsapi.Fs.fsync fd;
        fd)

  (** Round-robin interleaving of the two clients' op streams. *)
  let rec weave l0 l1 =
    match (l0, l1) with
    | [], rest -> List.map (fun op -> (1, op)) rest
    | rest, [] -> List.map (fun op -> (0, op)) rest
    | a :: ra, b :: rb -> (0, a) :: (1, b) :: weave ra rb

  (** Profile the merged trace: one run to completion with the
      persist-order journal on, each client's ops dispatched on its own
      actor. Returns the crash points of the merged stream. *)
  let profile (ws : Workload.t array) =
    let st = build ws.(0).Workload.mode in
    let fds = Array.init nclients (fun c -> setup c ws.(c) st.fs.(c)) in
    let dev = st.env.Pmem.Env.dev in
    Pmem.Device.journal_begin dev;
    List.iter
      (fun (c, op) ->
        Pmem.Env.run_as st.env st.actors.(c) (fun () ->
            Runner.apply
              ~checkpoint:(fun () -> Splitfs.Usplit.relink_all st.u.(c))
              st.fs.(c) fds.(c) op))
      (weave ws.(0).Workload.ops ws.(1).Workload.ops);
    let nf = Pmem.Device.fence_count dev in
    let points =
      List.init nf (fun i ->
          { Explore.fence = i; pending = Pmem.Device.fence_pending dev i })
      @ [ { Explore.fence = nf; pending = Pmem.Device.pending_now dev } ]
    in
    Pmem.Device.journal_stop dev;
    points

  (** One crash state end to end, as {!Runner.run_trial} but with two
      lockstep clients sharing one oracle namespace. The client whose op
      was in flight gets pre/post views around that op; the other client
      crashed between ops, so its pre and post coincide. *)
  let run_trial (ws : Workload.t array) ~(point : Explore.point) ~survivors =
    let st = build ws.(0).Workload.mode in
    let fds = Array.init nclients (fun c -> setup c ws.(c) st.fs.(c)) in
    let ofs, oracle = Fsapi.Ref_fs.make_oracle () in
    let ofds = Array.init nclients (fun c -> setup c ws.(c) ofs) in
    let dev = st.env.Pmem.Env.dev in
    Pmem.Device.journal_begin dev;
    Pmem.Device.arm_crash dev ~fence:point.Explore.fence ~survivors;
    let snapshot_c c =
      Array.init ws.(c).Workload.nfiles (fun i ->
          let p = file_path c i in
          match
            (oracle.Fsapi.Ref_fs.dump p, oracle.Fsapi.Ref_fs.dump_stable p)
          with
          | Some cur, Some (stable, stable_ow) ->
              { View.cur; stable; stable_ow }
          | _ -> View.empty)
    in
    let apply_real c op =
      Pmem.Env.run_as st.env st.actors.(c) (fun () ->
          Runner.apply
            ~checkpoint:(fun () -> Splitfs.Usplit.relink_all st.u.(c))
            st.fs.(c) fds.(c) op)
    in
    let apply_oracle c op =
      Runner.apply
        ~checkpoint:(fun () -> Array.iter (fun fd -> ofs.Fsapi.Fs.fsync fd) ofds.(c))
        ofs ofds.(c) op
    in
    let pre = Array.make nclients [||] in
    let post = Array.make nclients [||] in
    let crashed_at = ref None in
    let rec go k = function
      | [] ->
          for c = 0 to nclients - 1 do
            pre.(c) <- snapshot_c c;
            post.(c) <- pre.(c)
          done;
          Pmem.Device.crash_partial dev ~survivors
      | (c, op) :: rest -> (
          match apply_real c op with
          | () ->
              apply_oracle c op;
              go (k + 1) rest
          | exception Pmem.Device.Crashed ->
              crashed_at := Some (c, k);
              for c' = 0 to nclients - 1 do
                pre.(c') <- snapshot_c c'
              done;
              apply_oracle c op;
              for c' = 0 to nclients - 1 do
                post.(c') <- snapshot_c c'
              done)
    in
    go 0 (weave ws.(0).Workload.ops ws.(1).Workload.ops);
    Pmem.Device.resume dev;
    Pmem.Device.journal_stop dev;
    for c = 0 to nclients - 1 do
      ignore (Splitfs.Recovery.recover ~sys:st.sys.(c) ~env:st.env ~instance:c)
    done;
    let violations = ref [] in
    for c = nclients - 1 downto 0 do
      for i = ws.(c).Workload.nfiles - 1 downto 0 do
        let recovered =
          match Runner.read_back_path st.sys.(c) (file_path c i) with
          | Some b -> b
          | None -> Bytes.empty
        in
        match
          Check.check ws.(c).Workload.mode ~pre:pre.(c).(i) ~post:post.(c).(i)
            recovered
        with
        | None -> ()
        | Some reason -> violations := (c, i, reason) :: !violations
      done
    done;
    (!crashed_at, !violations)

  type report = {
    c_mode : Splitfs.Config.mode;
    c_points : int;
    c_explored : int;
    c_violations : (int * int * string) list;  (** (client, file, reason) *)
  }

  (** Seeded sampling over the merged trace's crash states; client 0 runs
      the seed workload, client 1 an independently generated one. Same
      parallel structure as the single-client campaign: sequential
      sampling prepass, trial fan-out, in-order merge. *)
  let check_mode ?(samples = 100) ?(seed = 0x51ED) ?(nops = 16) ?jobs mode =
    let ws =
      [|
        Workload.generate ~mode ~seed ~nops ();
        Workload.generate ~mode ~seed:(seed lxor 0x2C11E27) ~nops ();
      |]
    in
    let points = profile ws in
    let parr = Array.of_list points in
    let trials =
      List.init samples (fun i ->
          Explore.sample_point_indexed ~seed:(seed lxor 0x5EED5EED) ~index:i
            parr)
    in
    let results =
      Par.map ?jobs
        (fun _ ((p : Explore.point), svs) ->
          snd (run_trial ws ~point:p ~survivors:svs))
        trials
    in
    let violations = List.fold_left (fun acc vs -> vs @ acc) [] results in
    {
      c_mode = mode;
      c_points = Array.length parr;
      c_explored = samples;
      c_violations = violations;
    }
end
