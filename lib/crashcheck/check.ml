(** Per-mode differential check of a recovered file against the oracle's
    pre-/post-op views (DESIGN.md §5d). *)

let check_size recovered allowed =
  if List.mem (Bytes.length recovered) allowed then None
  else
    Some
      (Fmt.str "recovered size %d not in {%a}" (Bytes.length recovered)
         Fmt.(list ~sep:comma int)
         allowed)

(** Every recovered byte (up to [upto]) covered by at least one view
    must be explained by a covering view. *)
let check_bytes ?(upto = max_int) recovered views =
  let limit = min (Bytes.length recovered) upto in
  let bad = ref None in
  (try
     for i = 0 to limit - 1 do
       let b = Bytes.get recovered i in
       let covered = List.exists (fun v -> i < Bytes.length v) views in
       let ok =
         List.exists
           (fun v -> i < Bytes.length v && Bytes.get v i = b)
           views
       in
       if covered && not ok then begin
         bad :=
           Some
             (Fmt.str "byte %d (%#02x) matches no legal view" i
                (Char.code b));
         raise Exit
       end
     done
   with Exit -> ());
  !bad

(** [check mode ~pre ~post recovered] — [pre]/[post] are the oracle
    views immediately before and after the operation in flight at the
    crash (equal when the crash fell between operations). *)
let check mode ~(pre : View.t) ~(post : View.t) recovered =
  match mode with
  | Splitfs.Config.Strict ->
      (* atomic data ops: exactly the old or the new state, no mixing *)
      if Bytes.equal recovered pre.View.cur
         || Bytes.equal recovered post.View.cur
      then None
      else
        Some
          (Fmt.str
             "content is neither the pre- nor the post-op state (pre=%dB \
              post=%dB got=%dB)"
             (Bytes.length pre.View.cur)
             (Bytes.length post.View.cur)
             (Bytes.length recovered))
  | Splitfs.Config.Fams ->
      (* failure-atomic msync: exactly the pre- or the post-msync image —
         unpublished stores must be invisible (no [stable_ow]: fams never
         writes in place), published ones complete; truncate is a
         metadata operation, durable immediately, and the oracle's stable
         views resize with it *)
      if Bytes.equal recovered pre.View.stable
         || Bytes.equal recovered post.View.stable
      then None
      else
        Some
          (Fmt.str
             "content is neither the pre- nor the post-msync image \
              (pre=%dB post=%dB got=%dB)"
             (Bytes.length pre.View.stable)
             (Bytes.length post.View.stable)
             (Bytes.length recovered))
  | Splitfs.Config.Sync -> (
      match
        check_size recovered
          [ Bytes.length pre.View.cur; Bytes.length post.View.cur ]
      with
      | Some e -> Some e
      | None -> check_bytes recovered [ pre.View.cur; post.View.cur ])
  | Splitfs.Config.Posix -> (
      match
        check_size recovered
          [ Bytes.length pre.View.stable; Bytes.length post.View.stable ]
      with
      | Some e -> Some e
      | None ->
          let views =
            [
              pre.View.stable;
              pre.View.stable_ow;
              post.View.stable;
              post.View.stable_ow;
            ]
          in
          (* beyond the smallest stable size nothing is promised *)
          let upto =
            List.fold_left (fun a v -> min a (Bytes.length v)) max_int views
          in
          check_bytes ~upto recovered views)
