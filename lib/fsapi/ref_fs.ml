(** In-memory reference implementation of {!Fs.t}.

    This is the oracle for model-based testing: random operation sequences
    are applied both to a real file system (ext4 sim, SplitFS, NOVA, ...)
    and to this model, and the observable states must agree — the same
    methodology the paper uses to validate SplitFS against ext4 DAX (§5.3).
    It charges no simulated time. *)

type file = {
  ino : int;
  mutable data : Bytes.t;  (** capacity; only [size] bytes are valid *)
  mutable size : int;
  mutable nlink : int;
  (* Crash-oracle views (see {!make_oracle}); exact-length buffers. *)
  mutable stable : Bytes.t;  (** content as of the last fsync *)
  mutable stable_ow : Bytes.t;
      (** [stable] with post-fsync writes below the stable size applied —
          the bytes SplitFS's POSIX/sync modes overwrite in place with
          non-temporal stores, which may (partially) survive a crash *)
}

type node = File of file | Dir of (string, node) Hashtbl.t

type open_file = { file : file; pos : int ref; flags : Flags.t }

type t = {
  root : (string, node) Hashtbl.t;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable next_ino : int;
}

let split_path = Path.split

let create () =
  { root = Hashtbl.create 64; fds = Hashtbl.create 16; next_fd = 3; next_ino = 2 }

let rec lookup_dir dir = function
  | [] -> dir
  | part :: rest -> (
      match Hashtbl.find_opt dir part with
      | Some (Dir d) -> lookup_dir d rest
      | Some (File _) -> Errno.error Errno.ENOTDIR part
      | None -> Errno.error Errno.ENOENT part)

(** Resolve a path to its parent directory table and final component. *)
let resolve_parent t path =
  let parents, name = Path.split_parent path in
  (lookup_dir t.root parents, name)

let find_node t path =
  match split_path path with
  | [] -> Some (Dir t.root)
  | parts -> (
      match List.rev parts with
      | [] -> assert false
      | name :: rev_parents -> (
          match lookup_dir t.root (List.rev rev_parents) with
          | dir -> Hashtbl.find_opt dir name
          | exception Errno.Error _ -> None))

let fd_entry t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some e -> e
  | None -> Errno.error Errno.EBADF (string_of_int fd)

let grow file needed =
  if Bytes.length file.data < needed then begin
    let cap = max needed (max 256 (2 * Bytes.length file.data)) in
    let fresh = Bytes.make cap '\000' in
    Bytes.blit file.data 0 fresh 0 file.size;
    file.data <- fresh
  end

let do_pwrite file ~buf ~boff ~len ~at =
  if len < 0 || at < 0 then Errno.error Errno.EINVAL "pwrite";
  grow file (at + len);
  if at > file.size then Bytes.fill file.data file.size (at - file.size) '\000';
  Bytes.blit buf boff file.data at len;
  if at + len > file.size then file.size <- at + len;
  (* in-place part of the write: below the stable size, these bytes reach
     the media before the next fsync in POSIX/sync modes *)
  let slim = Bytes.length file.stable_ow in
  if at < slim && len > 0 then
    Bytes.blit buf boff file.stable_ow at (min len (slim - at));
  len

let do_pread file ~buf ~boff ~len ~at =
  if len < 0 || at < 0 then Errno.error Errno.EINVAL "pread";
  if at >= file.size then 0
  else begin
    let n = min len (file.size - at) in
    Bytes.blit file.data at buf boff n;
    n
  end

let make_with ~name (t : t) : Fs.t =
  let open_ path (flags : Flags.t) =
    let parent, fname = resolve_parent t path in
    let file =
      match Hashtbl.find_opt parent fname with
      | Some (Dir _) -> Errno.error Errno.EISDIR path
      | Some (File f) ->
          if flags.creat && flags.excl then Errno.error Errno.EEXIST path;
          if flags.trunc && Flags.writable flags then f.size <- 0;
          f
      | None ->
          if not flags.creat then Errno.error Errno.ENOENT path;
          let f =
            {
              ino = t.next_ino;
              data = Bytes.create 0;
              size = 0;
              nlink = 1;
              stable = Bytes.create 0;
              stable_ow = Bytes.create 0;
            }
          in
          t.next_ino <- t.next_ino + 1;
          Hashtbl.replace parent fname (File f);
          f
    in
    let fd = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    Hashtbl.replace t.fds fd { file; pos = ref 0; flags };
    fd
  in
  let close fd =
    let _ = fd_entry t fd in
    Hashtbl.remove t.fds fd
  in
  let dup fd =
    let e = fd_entry t fd in
    let nfd = t.next_fd in
    t.next_fd <- t.next_fd + 1;
    Hashtbl.replace t.fds nfd e;
    nfd
  in
  let pwrite fd ~buf ~boff ~len ~at =
    let e = fd_entry t fd in
    if not (Flags.writable e.flags) then Errno.error Errno.EBADF "not writable";
    do_pwrite e.file ~buf ~boff ~len ~at
  in
  let pread fd ~buf ~boff ~len ~at =
    let e = fd_entry t fd in
    if not (Flags.readable e.flags) then Errno.error Errno.EBADF "not readable";
    do_pread e.file ~buf ~boff ~len ~at
  in
  let write fd ~buf ~boff ~len =
    let e = fd_entry t fd in
    if not (Flags.writable e.flags) then Errno.error Errno.EBADF "not writable";
    let at = if e.flags.append then e.file.size else !(e.pos) in
    let n = do_pwrite e.file ~buf ~boff ~len ~at in
    e.pos := at + n;
    n
  in
  let read fd ~buf ~boff ~len =
    let e = fd_entry t fd in
    if not (Flags.readable e.flags) then Errno.error Errno.EBADF "not readable";
    let n = do_pread e.file ~buf ~boff ~len ~at:!(e.pos) in
    e.pos := !(e.pos) + n;
    n
  in
  let lseek fd off whence =
    let e = fd_entry t fd in
    let base =
      match whence with
      | Flags.Set -> 0
      | Flags.Cur -> !(e.pos)
      | Flags.End -> e.file.size
    in
    let npos = base + off in
    if npos < 0 then Errno.error Errno.EINVAL "lseek";
    e.pos := npos;
    npos
  in
  let fsync fd =
    let e = fd_entry t fd in
    e.file.stable <- Bytes.sub e.file.data 0 e.file.size;
    e.file.stable_ow <- Bytes.copy e.file.stable
  in
  let ftruncate fd size =
    let e = fd_entry t fd in
    if size < 0 then Errno.error Errno.EINVAL "ftruncate";
    grow e.file size;
    if size > e.file.size then
      Bytes.fill e.file.data e.file.size (size - e.file.size) '\000';
    e.file.size <- size;
    (* truncate is a metadata operation, durable immediately: the stable
       views shrink/extend with it *)
    let resize b =
      if Bytes.length b = size then b
      else begin
        let nb = Bytes.make size '\000' in
        Bytes.blit b 0 nb 0 (min (Bytes.length b) size);
        nb
      end
    in
    e.file.stable <- resize e.file.stable;
    e.file.stable_ow <- resize e.file.stable_ow
  in
  let stat_of_node = function
    | File f -> { Fs.st_ino = f.ino; st_kind = Fs.Regular; st_size = f.size; st_nlink = f.nlink }
    | Dir d -> { Fs.st_ino = 1; st_kind = Fs.Directory; st_size = Hashtbl.length d; st_nlink = 2 }
  in
  let stat path =
    match find_node t path with
    | Some n -> stat_of_node n
    | None -> Errno.error Errno.ENOENT path
  in
  let fstat fd =
    let e = fd_entry t fd in
    { Fs.st_ino = e.file.ino; st_kind = Fs.Regular; st_size = e.file.size; st_nlink = e.file.nlink }
  in
  let unlink path =
    let parent, name = resolve_parent t path in
    match Hashtbl.find_opt parent name with
    | Some (File f) ->
        f.nlink <- f.nlink - 1;
        Hashtbl.remove parent name
    | Some (Dir _) -> Errno.error Errno.EISDIR path
    | None -> Errno.error Errno.ENOENT path
  in
  let rename src dst =
    let sparent, sname = resolve_parent t src in
    match Hashtbl.find_opt sparent sname with
    | None -> Errno.error Errno.ENOENT src
    | Some node ->
        let dparent, dname = resolve_parent t dst in
        (match Hashtbl.find_opt dparent dname with
        | Some (Dir d) when Hashtbl.length d > 0 ->
            Errno.error Errno.ENOTEMPTY dst
        | _ -> ());
        Hashtbl.remove sparent sname;
        Hashtbl.replace dparent dname node
  in
  let mkdir path =
    let parent, name = resolve_parent t path in
    if Hashtbl.mem parent name then Errno.error Errno.EEXIST path;
    Hashtbl.replace parent name (Dir (Hashtbl.create 8))
  in
  let rmdir path =
    let parent, name = resolve_parent t path in
    match Hashtbl.find_opt parent name with
    | Some (Dir d) ->
        if Hashtbl.length d > 0 then Errno.error Errno.ENOTEMPTY path;
        Hashtbl.remove parent name
    | Some (File _) -> Errno.error Errno.ENOTDIR path
    | None -> Errno.error Errno.ENOENT path
  in
  let readdir path =
    match find_node t path with
    | Some (Dir d) ->
        List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) d [])
    | Some (File _) -> Errno.error Errno.ENOTDIR path
    | None -> Errno.error Errno.ENOENT path
  in
  {
    Fs.fs_name = name;
    open_;
    close;
    dup;
    pread;
    pwrite;
    read;
    write;
    lseek;
    fsync;
    ftruncate;
    fstat;
    stat;
    unlink;
    rename;
    mkdir;
    rmdir;
    readdir;
  }

let make ?(name = "reffs") () : Fs.t = make_with ~name (create ())

(** {1 Crash oracle}

    Read-only views over the model's files for crashcheck's differential
    checker. For each file the model tracks, besides the current content:

    - [stable]: the content as of the last fsync — everything SplitFS
      guarantees durable in every mode;
    - [stable + overwrites]: the stable view with post-fsync writes below
      the stable size applied — those bytes are written in place with
      non-temporal stores in POSIX/sync modes and may (partially) have
      reached the media before the crash.

    Covered operations: pwrite/write, ftruncate (metadata, durable
    immediately), fsync. *)
type oracle = {
  dump : string -> Bytes.t option;
      (** current content of the file at [path], if it exists *)
  dump_stable : string -> (Bytes.t * Bytes.t) option;
      (** [(stable, stable_with_overwrites)] views *)
  mark_all_stable : unit -> unit;
      (** snapshot every file's current content as its stable view (use
          after setup/mount, which ends with everything durable) *)
}

let make_oracle ?(name = "reffs-oracle") () : Fs.t * oracle =
  let t = create () in
  let fs = make_with ~name t in
  let file_at path =
    match find_node t path with Some (File f) -> Some f | _ -> None
  in
  let rec each_file dir f =
    Hashtbl.iter
      (fun _ node ->
        match node with File fl -> f fl | Dir d -> each_file d f)
      dir
  in
  let oracle =
    {
      dump =
        (fun path ->
          Option.map (fun f -> Bytes.sub f.data 0 f.size) (file_at path));
      dump_stable =
        (fun path ->
          Option.map
            (fun f -> (Bytes.copy f.stable, Bytes.copy f.stable_ow))
            (file_at path));
      mark_all_stable =
        (fun () ->
          each_file t.root (fun f ->
              f.stable <- Bytes.sub f.data 0 f.size;
              f.stable_ow <- Bytes.copy f.stable));
    }
  in
  (fs, oracle)
