(** Shared path-walking helpers.

    Every simulated file system (the reference model, ext4, the PM
    baselines) resolves slash-separated absolute paths the same way; the
    splitting and parent/leaf decomposition live here so each keeps only
    its own directory-walk over its own node representation. *)

(** Split a path into its non-empty components: ["/a//b/"] -> [["a"; "b"]].
    The root path maps to []. *)
let split path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

(** [split_parent path] decomposes a path into the components of its parent
    directory and its final component: ["/a/b/c"] -> [(["a"; "b"], "c")].
    Raises [Errno.Error (EINVAL, path)] for the root path (no final
    component to name). *)
let split_parent path =
  match List.rev (split path) with
  | [] -> Errno.error Errno.EINVAL path
  | name :: rev_parents -> (List.rev rev_parents, name)
