(** POSIX-style error codes raised by every file system in this repository. *)

type t =
  | ENOENT
  | EEXIST
  | EBADF
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | EINVAL
  | ENOSPC
  | EACCES
  | EFBIG
  | EROFS

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EBADF -> "EBADF"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | EACCES -> "EACCES"
  | EFBIG -> "EFBIG"
  | EROFS -> "EROFS"

exception Error of t * string

let error e ctx = raise (Error (e, ctx))

(* Printed the way strace renders an errno — [ENOENT "/path"] — so a
   scheduler or test failure names the code and offending path directly. *)
let () =
  Printexc.register_printer (function
    | Error (e, ctx) -> Some (Printf.sprintf "%s %S" (to_string e) ctx)
    | _ -> None)
