(** POSIX-style error codes raised by every file system in this repository. *)

type t =
  | ENOENT
  | EEXIST
  | EBADF
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | EINVAL
  | ENOSPC
  | EACCES
  | EFBIG
  | EROFS
  | EIO

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EBADF -> "EBADF"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | EACCES -> "EACCES"
  | EFBIG -> "EFBIG"
  | EROFS -> "EROFS"
  | EIO -> "EIO"

exception Error of t * string

let error e ctx = raise (Error (e, ctx))

(* Report rendering for an (errno, context) pair, strace-style:
   [EIO "k-split: swap_extents injected EIO"]. By convention the context
   string names the layer the error originated in ("k-split: ...",
   "u-split: ...", "jbd2: ..."), so fault-campaign violation reports show
   where an errno came from, not just which one it was. *)
let pp ppf (e, ctx) = Format.fprintf ppf "%s %S" (to_string e) ctx

(* Printed the way strace renders an errno — [ENOENT "/path"] — so a
   scheduler or test failure names the code and offending path directly. *)
let () =
  Printexc.register_printer (function
    | Error (e, ctx) -> Some (Printf.sprintf "%s %S" (to_string e) ctx)
    | _ -> None)
