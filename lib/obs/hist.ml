(** Log-bucketed latency histograms.

    256 quarter-log2 buckets cover [1 ns, 2^63.75 ns) with a worst-case
    relative error of 2^0.25 ~ 19% per bucket — enough resolution for
    p50/p90/p99/p999 reporting while keeping [record] a couple of float
    ops and one array increment. Exact [min]/[max]/[sum] are tracked on
    the side so the tails quoted in reports are never off by more than a
    bucket width. *)

let nbuckets = 256
let inv_log2 = 1. /. log 2.

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    n = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let bucket_of ns =
  if ns < 1. then 0
  else min (nbuckets - 1) (int_of_float (4. *. log ns *. inv_log2))

(** Geometric midpoint of bucket [i]. *)
let value_of i = 2. ** ((float_of_int i +. 0.5) /. 4.)

let record t ns =
  let i = bucket_of ns in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. ns;
  if ns < t.vmin then t.vmin <- ns;
  if ns > t.vmax then t.vmax <- ns

let n t = t.n
let sum t = t.sum
let min_v t = if t.n = 0 then 0. else t.vmin
let max_v t = if t.n = 0 then 0. else t.vmax
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

(** [percentile t p] for [p] in [0,100]: the bucket-midpoint estimate of
    the p-th percentile, clamped to the exact observed [min, max]. *)
let percentile t p =
  if t.n = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < nbuckets do
      cum := !cum + t.buckets.(!i);
      incr i
    done;
    let v = value_of (!i - 1) in
    if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v
  end

(** [frac_below t ns]: fraction of recorded values at or below [ns] — the
    SLO-attainment number for a latency objective of [ns]. Bucketed like
    [percentile] (whole buckets count as below when their upper edge is),
    so it inherits the same ~19% worst-case bucket error. 1 when empty:
    no recorded op violated the objective. *)
let frac_below t ns =
  if t.n = 0 then 1.
  else begin
    let cut = bucket_of ns in
    let c = ref 0 in
    for i = 0 to cut do
      c := !c + t.buckets.(i)
    done;
    float_of_int !c /. float_of_int t.n
  end

let merge ~into src =
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let pp ppf t =
  Fmt.pf ppf "n=%d p50=%.0f p90=%.0f p99=%.0f p999=%.0f min=%.0f max=%.0f" t.n
    (percentile t 50.) (percentile t 90.) (percentile t 99.)
    (percentile t 99.9) (min_v t) (max_v t)
