(** Virtual-time telemetry: deterministic time series over the counters.

    A timeline samples a set of registered {e sources} — closures reading
    cumulative counters (category attribution, stats, fault/scrub events,
    allocator steals, per-tenant throughput) — every time the simulated
    clock crosses a period boundary. Because the trigger is purely
    virtual time (the [Simclock.advance] funnel compares the current
    actor's clock against {!next_boundary}), the sample times and values
    are bit-identical across host machines and [--jobs] counts: host
    speed never appears in the inputs.

    Each source becomes one {e series} of fixed capacity holding, per
    sample, the boundary-crossing time, the delta of the counter since
    the previous sample, and the cumulative value. Two full-buffer
    policies:

    - {b newest-window} ([widen = false]): the ring overwrites the oldest
      sample; its delta is folded into a per-series [evicted] accumulator
      so the accounting identity survives the wrap;
    - {b period doubling} ([widen = true], the default): when the buffer
      fills, adjacent sample pairs merge (deltas add, the later time and
      cumulative value win) and the sampling period doubles — the series
      always covers the whole run at a resolution that adapts to its
      length. The compaction depends only on the sample count, so it is
      as deterministic as the samples themselves.

    Either way every series maintains the invariant

      evicted + sum(retained deltas) = last sampled value - value at
                                       registration

    which {!check} verifies at 1e-8 relative tolerance — the timeline leg
    of [Env.check_identity].

    Sources must be charge-free (plain field reads): they run inside the
    clock-advance funnel, so a source that advanced the clock would
    recurse. All timeline work costs host time only. *)

type series = {
  s_name : string;
  s_read : unit -> float;  (** cumulative counter; must not charge time *)
  s_cum0 : float;  (** counter value when the source was registered *)
  mutable s_last : float;  (** counter value at the newest sample *)
  mutable s_evicted : float;  (** deltas lost to ring overwrite *)
  s_delta : float array;  (** per-slot delta since the previous sample *)
  s_cum : float array;  (** per-slot cumulative value *)
}

type t = {
  capacity : int;
  widen : bool;
  period0_ns : float;
  mutable period_ns : float;
  mutable next_ns : float;  (** next boundary; [Simclock.advance] compares *)
  mutable series_rev : series list;  (** newest first; {!series_list} reverses *)
  mutable nseries : int;
  times : float array;  (** shared sample times (clock at the crossing) *)
  mutable len : int;
  mutable pos : int;  (** next write slot; equals [len] in widen mode *)
  mutable taken : int;  (** samples taken, including evicted ones *)
  mutable doublings : int;
}

(* [SPLITFS_TIMELINE=1] enables a default timeline in every environment
   the process creates — the switch behind the "output is bit-identical
   with telemetry on" end-to-end check (diff `bench --fast` with and
   without it), mirroring SPLITFS_TRACE. *)
let timeline_everything =
  match Sys.getenv_opt "SPLITFS_TIMELINE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let create ?(capacity = 512) ?(period_ns = 4096.) ?(widen = true) () =
  let capacity = max 8 capacity in
  (* pair-merging compaction needs an even slot count *)
  let capacity = capacity + (capacity land 1) in
  if period_ns <= 0. then invalid_arg "Timeline.create: period_ns <= 0";
  {
    capacity;
    widen;
    period0_ns = period_ns;
    period_ns;
    next_ns = period_ns;
    series_rev = [];
    nseries = 0;
    times = Array.make capacity 0.;
    len = 0;
    pos = 0;
    taken = 0;
    doublings = 0;
  }

let next_boundary t = t.next_ns
let period_ns t = t.period_ns
let length t = t.len
let samples_taken t = t.taken
let doublings t = t.doublings

(** Registration order (the export order). *)
let series_list t = List.rev t.series_rev

let series_names t = List.map (fun s -> s.s_name) (series_list t)

(** [add_source t ~name read] registers a cumulative counter. Sources may
    be registered after sampling has started (e.g. per-tenant throughput
    once the fleet exists): earlier slots read as delta 0 / cumulative
    [read ()]-at-registration, and the identity holds from registration
    onward. *)
let add_source t ~name read =
  let v = read () in
  let s =
    {
      s_name = name;
      s_read = read;
      s_cum0 = v;
      s_last = v;
      s_evicted = 0.;
      s_delta = Array.make t.capacity 0.;
      s_cum = Array.make t.capacity v;
    }
  in
  t.series_rev <- s :: t.series_rev;
  t.nseries <- t.nseries + 1

(* Merge adjacent sample pairs in place: deltas add, the later time and
   cumulative value survive. Depends only on slot contents, so a given
   sample history always compacts identically. *)
let compact t =
  let half = t.len / 2 in
  for j = 0 to half - 1 do
    t.times.(j) <- t.times.((2 * j) + 1)
  done;
  List.iter
    (fun s ->
      for j = 0 to half - 1 do
        s.s_delta.(j) <- s.s_delta.(2 * j) +. s.s_delta.((2 * j) + 1);
        s.s_cum.(j) <- s.s_cum.((2 * j) + 1)
      done;
      (* the merged-away upper half is dead: zero it so the identity
         check can fold over the whole array without double-counting *)
      for j = half to t.capacity - 1 do
        s.s_delta.(j) <- 0.
      done)
    t.series_rev;
  t.len <- half;
  t.pos <- half;
  t.period_ns <- t.period_ns *. 2.;
  t.doublings <- t.doublings + 1

(** [sample t ~now] records one sample at virtual time [now] and advances
    the boundary. Called from the clock funnel when [now] crosses
    {!next_boundary}; callable directly ({!flush}) to close the books. *)
let sample t ~now =
  let slot = t.pos in
  if (not t.widen) && t.len = t.capacity then begin
    (* overwriting the oldest sample: keep its deltas in the identity *)
    List.iter (fun s -> s.s_evicted <- s.s_evicted +. s.s_delta.(slot)) t.series_rev
  end;
  t.times.(slot) <- now;
  List.iter
    (fun s ->
      let v = s.s_read () in
      s.s_delta.(slot) <- v -. s.s_last;
      s.s_cum.(slot) <- v;
      s.s_last <- v)
    t.series_rev;
  if t.widen then begin
    t.len <- t.len + 1;
    t.pos <- t.len;
    if t.len = t.capacity then compact t
  end
  else begin
    t.pos <- (slot + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1
  end;
  t.taken <- t.taken + 1;
  let next = t.period_ns *. (Float.floor (now /. t.period_ns) +. 1.) in
  (* guard against float-precision stalls at extreme now/period ratios *)
  t.next_ns <- (if next > now then next else now +. t.period_ns)

(** Take a closing sample at [now] (or just past the newest sample if the
    clock has not moved) so the series account for every counter value up
    to the present — used before exports and by the identity check. *)
let flush t ~now =
  let last = if t.len = 0 then neg_infinity else
      t.times.((if t.widen || t.len < t.capacity then t.len - 1
                else (t.pos + t.capacity - 1) mod t.capacity))
  in
  sample t ~now:(Float.max now last)

(** Retained samples of series [name], oldest first, as
    [(time, delta, cumulative)] triples. *)
let samples t name =
  match List.find_opt (fun s -> s.s_name = name) t.series_rev with
  | None -> invalid_arg ("Timeline.samples: unknown series " ^ name)
  | Some s ->
      let first =
        if t.widen || t.len < t.capacity then 0 else t.pos
      in
      Array.init t.len (fun i ->
          let slot = (first + i) mod t.capacity in
          (t.times.(slot), s.s_delta.(slot), s.s_cum.(slot)))

(** Verify, for every series, evicted + sum(retained deltas) =
    last sampled value - value at registration, at 1e-8 relative + 1e-6
    absolute tolerance (float summation order only). Raises [Failure] on
    violation; returns the number of series checked. *)
let check t =
  List.iter
    (fun s ->
      let retained = Array.fold_left ( +. ) 0. s.s_delta in
      let total = s.s_evicted +. retained in
      let expect = s.s_last -. s.s_cum0 in
      let tol = (1e-8 *. Float.max (Float.abs total) (Float.abs expect)) +. 1e-6 in
      if Float.abs (total -. expect) > tol then
        failwith
          (Printf.sprintf
             "timeline identity violated for series %s: evicted %.6f + \
              retained %.6f = %.6f <> final-cum0 %.6f (tol %.6f)"
             s.s_name s.s_evicted retained total expect tol))
    t.series_rev;
  t.nseries

(* --- OpenMetrics / Prometheus text exposition ---------------------- *)

let metric_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

(** OpenMetrics text exposition: one gauge metric per series (sampled
    cumulative values with virtual-time timestamps in seconds), ending
    with the spec's [# EOF] marker. Deterministic byte-for-byte. *)
let openmetrics ?(prefix = "splitfs") t =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      let m = metric_name (prefix ^ "_" ^ s.s_name) in
      Buffer.add_string b
        (Printf.sprintf "# HELP %s cumulative %s sampled at virtual-time boundaries\n"
           m s.s_name);
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" m);
      Array.iter
        (fun (time, _delta, cum) ->
          Buffer.add_string b
            (Printf.sprintf "%s{series=\"%s\"} %.6g %.9f\n" m s.s_name cum
               (time /. 1e9)))
        (samples t s.s_name))
    (series_list t);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
