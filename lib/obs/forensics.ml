(** Tail forensics: top-k slowest-op exemplar capture.

    A ['span t] retains, per operation key ("<stack>/<op>"), the [k]
    slowest operations observed — each with its complete span list (the
    inner trace of that one op), the interval it covered, and the
    per-category attribution delta across it. The result answers "why is
    p999 slow": an outlier decomposes into the same 12 overhead
    categories the profiler uses, with the span tree as the drill-down.

    The type is parametric in the span representation so this module
    stays a leaf (the instrumentation layer instantiates it at
    [Obs.span] and routes [Obs]'s capture hook into {!on_span}).

    Capture relies on the dispatch model being run-to-completion: the
    scheduler runs each client operation to completion on the host
    before dispatching the next, so one in-flight capture buffer
    suffices even for 10k-actor fleets. Nested instrumented ops fold
    into the outermost one (depth counter). Purely host-side: no
    simulated charge ever originates here. *)

type 'a exemplar = {
  ex_key : string;
  ex_lat_ns : float;
  ex_t0 : float;  (** simulated ns, op start *)
  ex_t1 : float;
  ex_actor : int;
  ex_seq : int;  (** global op sequence number — provenance + tie-break *)
  ex_spans : 'a list;  (** emission order; the op's own span is last *)
  ex_cats : float array;  (** per-category attribution delta over the op *)
}

type 'a t = {
  k : int;
  ncats : int;
  mutable seq : int;  (** ops completed through this store *)
  mutable depth : int;  (** >0 while an op capture is open *)
  mutable cur_key : string;
  mutable cur_actor : int;
  mutable cur_t0 : float;
  mutable cur_cats0 : float array;
  mutable cur_spans_rev : 'a list;
  tops : (string, 'a exemplar list) Hashtbl.t;
      (** per key, ascending (latency, seq); length <= k *)
  ops : (string, int) Hashtbl.t;  (** ops observed per key *)
}

let create ?(k = 3) ~ncats () =
  {
    k = max 1 k;
    ncats;
    seq = 0;
    depth = 0;
    cur_key = "";
    cur_actor = 0;
    cur_t0 = 0.;
    cur_cats0 = [||];
    cur_spans_rev = [];
    tops = Hashtbl.create 32;
    ops = Hashtbl.create 32;
  }

let capturing t = t.depth > 0

(** Route for the tracing capture hook: spans emitted during an open op
    belong to that op's exemplar candidate. *)
let on_span t s = if t.depth > 0 then t.cur_spans_rev <- s :: t.cur_spans_rev

(** [op_begin t ~key ~actor ~t0 ~cats] opens a capture; [cats] is a
    snapshot of the cumulative per-category attribution (ownership is
    taken). Nested calls only bump the depth — the outermost op wins. *)
let op_begin t ~key ~actor ~t0 ~cats =
  t.depth <- t.depth + 1;
  if t.depth = 1 then begin
    t.cur_key <- key;
    t.cur_actor <- actor;
    t.cur_t0 <- t0;
    t.cur_cats0 <- cats;
    t.cur_spans_rev <- []
  end

(** Abandon the current capture level (exception unwinding). *)
let op_abort t =
  t.depth <- t.depth - 1;
  if t.depth = 0 then t.cur_spans_rev <- []

(* Insert keeping ascending (latency, seq) order and length <= k; the
   deterministic tie-break makes reports independent of anything but the
   simulated history. *)
let insert t ex =
  let key = ex.ex_key in
  let cur = match Hashtbl.find_opt t.tops key with Some l -> l | None -> [] in
  let lt a b =
    a.ex_lat_ns < b.ex_lat_ns
    || (a.ex_lat_ns = b.ex_lat_ns && a.ex_seq < b.ex_seq)
  in
  let rec ins = function
    | [] -> [ ex ]
    | x :: rest -> if lt ex x then ex :: x :: rest else x :: ins rest
  in
  let merged = ins cur in
  let merged =
    if List.length merged > t.k then List.tl merged else merged
  in
  Hashtbl.replace t.tops key merged

(** [op_end t ~t1 ~cats] closes the innermost capture level; at depth 0
    the candidate is scored and retained if it lands in the key's top-k.
    [cats] is the closing attribution snapshot. *)
let op_end t ~t1 ~cats =
  t.depth <- t.depth - 1;
  if t.depth = 0 then begin
    let lat = t1 -. t.cur_t0 in
    let seq = t.seq in
    t.seq <- seq + 1;
    let key = t.cur_key in
    Hashtbl.replace t.ops key
      (1 + match Hashtbl.find_opt t.ops key with Some n -> n | None -> 0);
    (* on ties with a full list the incumbent (earlier seq) wins *)
    let qualifies =
      match Hashtbl.find_opt t.tops key with
      | Some (smallest :: _ as l) when List.length l >= t.k ->
          lat > smallest.ex_lat_ns
      | _ -> true
    in
    if qualifies then
      insert t
        {
          ex_key = key;
          ex_lat_ns = lat;
          ex_t0 = t.cur_t0;
          ex_t1 = t1;
          ex_actor = t.cur_actor;
          ex_seq = seq;
          ex_spans = List.rev t.cur_spans_rev;
          ex_cats =
            Array.init t.ncats (fun i -> cats.(i) -. t.cur_cats0.(i));
        };
    t.cur_spans_rev <- []
  end

(** Keys with at least one retained exemplar, sorted. *)
let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tops [] |> List.sort compare

(** Retained exemplars for [key], slowest first. *)
let exemplars t key =
  match Hashtbl.find_opt t.tops key with
  | Some l -> List.rev l
  | None -> []

(** Ops observed under [key] (the population the top-k came from). *)
let total_ops t key =
  match Hashtbl.find_opt t.ops key with Some n -> n | None -> 0
