(** Observability: overhead attribution, span tracing, latency histograms.

    One [t] rides along with a simulation environment and observes every
    simulated-nanosecond charge without ever producing one itself — all
    work done here costs host time only, so simulated results are
    bit-identical with observability on or off.

    {2 Attribution}

    Every charge that flows through [Simclock.advance] is attributed to
    the category on top of a host-side category stack ([push]/[pop]
    mark the dynamic extent of an instrumented region). Charges outside
    any region fall to [App] (application think time, baseline op CPU),
    and charges inside [Env.in_background] are forced to [Background]
    regardless of the stack — mirroring exactly the simulated time the
    environment moves off the foreground clock. The categories are
    therefore exhaustive and mutually exclusive:

      sum over categories of attr = total simulated ns across all actors
                                    + background ns

    which the profiler checks as an invariant (see [Env.check_identity]).

    {2 Tracing}

    When enabled, instrumented regions also emit complete spans (name,
    category, actor id, simulated start/end ns) into a fixed-capacity
    ring — oldest spans are overwritten, never blocking and never
    allocating per event beyond the span record itself. A sampling
    factor keeps 1-in-N spans; an [on_event] callback sees every span
    before sampling (used for streaming per-syscall trace lines). Spans
    are not recorded inside background extents: the clock rewind would
    make them overlap foreground spans on the same track. *)

module Hist = Hist
module Timeline = Timeline
module Forensics = Forensics

type cat =
  | Media  (** time the PM media itself is busy with a transfer *)
  | Usplit  (** U-Split library CPU: bookkeeping, mmap lookup, memcpy *)
  | Syscall  (** kernel traps and VFS dispatch *)
  | Kernel  (** in-kernel FS CPU outside the other kernel categories *)
  | Journal  (** jbd2 commit path: journal writes, fences, fsync waits *)
  | Alloc  (** block/extent allocator CPU *)
  | Log_append  (** composing + checksumming U-Split op-log entries *)
  | Relink_copy  (** partial-block copies during relink *)
  | Lock_wait  (** queueing on contended simulated locks *)
  | Bw_wait  (** queueing on shared PM bandwidth *)
  | Background  (** work moved off the foreground clock *)
  | App  (** everything outside instrumented regions: think time *)

let ncats = 12

let cat_index = function
  | Media -> 0
  | Usplit -> 1
  | Syscall -> 2
  | Kernel -> 3
  | Journal -> 4
  | Alloc -> 5
  | Log_append -> 6
  | Relink_copy -> 7
  | Lock_wait -> 8
  | Bw_wait -> 9
  | Background -> 10
  | App -> 11

let all_cats =
  [
    Media;
    Usplit;
    Syscall;
    Kernel;
    Journal;
    Alloc;
    Log_append;
    Relink_copy;
    Lock_wait;
    Bw_wait;
    Background;
    App;
  ]

let cat_name = function
  | Media -> "media"
  | Usplit -> "usplit-cpu"
  | Syscall -> "syscall-trap"
  | Kernel -> "kernel-cpu"
  | Journal -> "journal"
  | Alloc -> "alloc"
  | Log_append -> "log-append"
  | Relink_copy -> "relink-copy"
  | Lock_wait -> "lock-wait"
  | Bw_wait -> "bw-wait"
  | Background -> "background"
  | App -> "app"

type span = {
  e_name : string;
  e_cat : cat;
  e_actor : int;  (** actor id = trace track *)
  e_t0 : float;  (** simulated ns *)
  e_t1 : float;
  e_arg : string option;  (** preformatted detail, e.g. a strace line *)
}

type t = {
  attr : float array;  (** ns attributed per category, indexed by cat *)
  mutable stack : int array;  (** category-index stack *)
  mutable depth : int;
  mutable background : int;  (** nesting depth of background extents *)
  (* --- tracing --- *)
  mutable trace_on : bool;
  mutable sample : int;  (** keep 1-in-N spans *)
  mutable seq : int;  (** spans seen since tracing was enabled *)
  mutable ring : span array;  (** capacity 0 until tracing is enabled *)
  mutable ring_len : int;
  mutable ring_pos : int;  (** next write slot *)
  mutable overwritten : int;  (** sampled-in spans lost to ring wrap *)
  mutable on_event : (span -> unit) option;
  mutable capture : (span -> unit) option;
      (** sees every span regardless of [trace_on]/sampling — the tail-
          forensics hook; [tracing] is true while one is installed *)
  hists : (string, Hist.t) Hashtbl.t;
  (* --- virtual-time telemetry (PR 9) --- *)
  mutable next_sample : float;
      (** next timeline boundary in simulated ns; [infinity] when the
          timeline is off, so the funnel's check is one float compare *)
  mutable tl : Timeline.t option;
}

let empty_span =
  { e_name = ""; e_cat = App; e_actor = 0; e_t0 = 0.; e_t1 = 0.; e_arg = None }

(* [SPLITFS_TRACE=1] turns tracing on in every environment the process
   creates — the switch behind the "output is bit-identical with tracing
   on" end-to-end check (diff `bench --fast` with and without it). *)
let trace_everything =
  match Sys.getenv_opt "SPLITFS_TRACE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let create () =
  {
    attr = Array.make ncats 0.;
    stack = Array.make 32 0;
    depth = 0;
    background = 0;
    trace_on = trace_everything;
    sample = 1;
    seq = 0;
    ring = (if trace_everything then Array.make 4096 empty_span else [||]);
    ring_len = 0;
    ring_pos = 0;
    overwritten = 0;
    on_event = None;
    capture = None;
    hists = Hashtbl.create 16;
    next_sample = infinity;
    tl = None;
  }

(* --- attribution --- *)

let i_background = cat_index Background
let i_app = cat_index App

(** [attribute t ns] charges [ns] simulated ns to the active category.
    Called from [Simclock.advance] — the single funnel every simulated
    charge flows through. *)
let attribute t ns =
  let i =
    if t.background > 0 then i_background
    else if t.depth > 0 then t.stack.(t.depth - 1)
    else i_app
  in
  t.attr.(i) <- t.attr.(i) +. ns

let push t cat =
  let d = t.depth in
  if d = Array.length t.stack then
    t.stack <- Array.append t.stack (Array.make (Array.length t.stack) 0);
  t.stack.(d) <- cat_index cat;
  t.depth <- d + 1

let pop t = t.depth <- t.depth - 1
let enter_background t = t.background <- t.background + 1
let leave_background t = t.background <- t.background - 1

let total t = Array.fold_left ( +. ) 0. t.attr
let attributed t cat = t.attr.(cat_index cat)
let breakdown t = List.map (fun c -> (c, t.attr.(cat_index c))) all_cats
let snapshot t = Array.copy t.attr

(** [breakdown_since t snap] — per-category delta against a [snapshot]. *)
let breakdown_since t snap =
  List.map (fun c -> (c, t.attr.(cat_index c) -. snap.(cat_index c))) all_cats

let reset_attr t = Array.fill t.attr 0 ncats 0.

(* --- tracing --- *)

let set_tracing ?(sample = 1) ?(ring = 65536) t on =
  t.trace_on <- on;
  t.sample <- max 1 sample;
  t.seq <- 0;
  t.ring_len <- 0;
  t.ring_pos <- 0;
  t.overwritten <- 0;
  if on && Array.length t.ring <> ring then t.ring <- Array.make ring empty_span

let tracing t = (t.trace_on || t.capture <> None) && t.background = 0
let set_on_event t f = t.on_event <- f

(** Install/remove the capture hook (tail forensics): sees every span the
    instrumented regions emit, independent of the ring and sampling. *)
let set_capture t f = t.capture <- f
let span_count t = t.ring_len
let overwritten t = t.overwritten

let emit ?arg t ~name ~cat ~actor ~t0 ~t1 =
  if (t.trace_on || t.capture <> None) && t.background = 0 then begin
    let s = { e_name = name; e_cat = cat; e_actor = actor; e_t0 = t0; e_t1 = t1; e_arg = arg } in
    (match t.capture with Some f -> f s | None -> ());
    if t.trace_on then begin
      (match t.on_event with Some f -> f s | None -> ());
      let seq = t.seq in
      t.seq <- seq + 1;
      if seq mod t.sample = 0 then begin
        let cap = Array.length t.ring in
        if cap > 0 then begin
          t.ring.(t.ring_pos) <- s;
          t.ring_pos <- (t.ring_pos + 1) mod cap;
          if t.ring_len < cap then t.ring_len <- t.ring_len + 1
          else t.overwritten <- t.overwritten + 1
        end
      end
    end
  end

(** Retained spans, oldest first. *)
let spans t =
  let cap = Array.length t.ring in
  let first = if t.ring_len < cap then 0 else t.ring_pos in
  List.init t.ring_len (fun i -> t.ring.((first + i) mod cap))

(* --- virtual-time telemetry --- *)

(** Attach a {!Timeline}: from now on, the first clock advance past each
    period boundary takes a sample ([Simclock.advance] compares against
    [next_sample] — one float compare on the disabled path). *)
let set_timeline t tl =
  t.tl <- Some tl;
  t.next_sample <- Timeline.next_boundary tl

let timeline t = t.tl

(** Boundary crossing, called from the clock funnel. Samples are
    suppressed inside background extents: the pending rewind would make
    their times non-monotone and double-count the background interval. *)
let timeline_tick t now =
  match t.tl with
  | None -> ()
  | Some tl ->
      if t.background = 0 then begin
        Timeline.sample tl ~now;
        t.next_sample <- Timeline.next_boundary tl
      end

(* --- latency histograms --- *)

let hist t key =
  match Hashtbl.find_opt t.hists key with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.replace t.hists key h;
      h

let record_latency t key ns = Hist.record (hist t key) ns

let hists t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- Chrome trace-event JSON (Perfetto-loadable) --- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(** [chrome_json ?actors t] renders the retained spans as a Chrome
    trace-event JSON document: one complete ("ph":"X") event per span,
    timestamps in microseconds of simulated time, one track (tid) per
    actor. [actors] supplies (id, name) pairs for thread-name metadata.
    When a {!Timeline} is attached its series are merged in as Perfetto
    counter tracks ("ph":"C" events, cumulative values), so spans and
    counters line up in one UI. *)
let chrome_json ?(actors = []) t =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n  "
  in
  sep ();
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"splitfs-sim\"}}";
  List.iter
    (fun (aid, name) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":" aid);
      add_json_string b name;
      Buffer.add_string b "}}")
    actors;
  List.iter
    (fun s ->
      sep ();
      Buffer.add_string b "{\"name\":";
      add_json_string b s.e_name;
      Buffer.add_string b ",\"cat\":";
      add_json_string b (cat_name s.e_cat);
      Buffer.add_string b
        (Printf.sprintf ",\"ph\":\"X\",\"ts\":%.4f,\"dur\":%.4f,\"pid\":0,\"tid\":%d"
           (s.e_t0 /. 1000.)
           ((s.e_t1 -. s.e_t0) /. 1000.)
           s.e_actor);
      (match s.e_arg with
      | Some a ->
          Buffer.add_string b ",\"args\":{\"detail\":";
          add_json_string b a;
          Buffer.add_string b "}"
      | None -> ());
      Buffer.add_string b "}")
    (spans t);
  (match t.tl with
  | None -> ()
  | Some tl ->
      List.iter
        (fun name ->
          Array.iter
            (fun (time, _delta, cum) ->
              sep ();
              Buffer.add_string b "{\"name\":";
              add_json_string b name;
              Buffer.add_string b
                (Printf.sprintf
                   ",\"ph\":\"C\",\"ts\":%.4f,\"pid\":0,\"args\":{\"value\":%.6g}}"
                   (time /. 1000.) cum))
            (Timeline.samples tl name))
        (Timeline.series_names tl));
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b
