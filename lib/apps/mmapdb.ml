(** Mmap-native page store: the kyotocabinet-style application the
    paper's failure-atomic msync targets.

    Unlike {!Pager}, there is no write-ahead log and no double write:
    pages are updated in place in the database file and a transaction
    commits with a single [msync] (= [fsync] in this simulation — the
    U-Split file *is* the mapped region). On a file system with
    failure-atomic msync the commit is atomic — a crash recovers to the
    last msync image, never a torn mix — so the WAL's write
    amplification and its replay-on-open both disappear. On any other
    stack this layout is only as safe as that stack's msync, which is
    exactly the contrast the FAMS-vs-WAL experiment measures.

    Reads are served from a page cache over pread; the cache never holds
    data the file does not, because every update goes straight to the
    file. Recovery is [open_] itself: no log to scan, just an fstat. *)

let page_size = 4096

type t = {
  fs : Fsapi.Fs.t;
  path : string;
  fd : Fsapi.Fs.fd;
  cache : (int, Bytes.t) Hashtbl.t;
  mutable npages : int;
  mutable commits : int;
}

let open_ (fs : Fsapi.Fs.t) path =
  let fd = fs.open_ path Fsapi.Flags.create_rw in
  {
    fs;
    path;
    fd;
    cache = Hashtbl.create 1024;
    npages = (fs.fstat fd).Fsapi.Fs.st_size / page_size;
    commits = 0;
  }

let npages t = t.npages

(** Grow the file to [n] zero pages and make the size durable — the
    mmap-native equivalent of ftruncate + msync before mapping. *)
let preallocate t n =
  if n > t.npages then begin
    t.fs.ftruncate t.fd (n * page_size);
    t.fs.fsync t.fd;
    t.npages <- n
  end

let read_page t page_id =
  match Hashtbl.find_opt t.cache page_id with
  | Some img -> img
  | None ->
      let img = Bytes.make page_size '\000' in
      if page_id < t.npages then
        ignore
          (t.fs.pread t.fd ~buf:img ~boff:0 ~len:page_size
             ~at:(page_id * page_size));
      Hashtbl.replace t.cache page_id img;
      img

(** In-place store through the map: dirties the page in the file itself.
    Not durable (and on a failure-atomic stack not even visible to
    recovery) until the next {!commit}. *)
let write_page t page_id img =
  if Bytes.length img <> page_size then invalid_arg "mmapdb: page size";
  if page_id >= t.npages then t.npages <- page_id + 1;
  Hashtbl.replace t.cache page_id (Bytes.copy img);
  ignore
    (t.fs.pwrite t.fd ~buf:img ~boff:0 ~len:page_size ~at:(page_id * page_size))

(** msync: one call makes every store since the last commit durable — on
    a failure-atomic stack, atomically. *)
let commit t =
  t.fs.fsync t.fd;
  t.commits <- t.commits + 1

let commits t = t.commits

let close t =
  commit t;
  t.fs.close t.fd
