(** Strata-like cross-media file system (Kwon et al., SOSP '17), restricted
    to its PM layer — the paper's user-space strict-mode comparator.

    Protocol: every update is appended to a per-process *private log* in
    user space (64-byte header + payload, one fence) — fast, no kernel
    trap, immediately durable and atomic. When the log fills past the
    digest threshold, a *digest* coalesces the log and copies live data
    into the shared area — so appends are written to PM twice, the 2×
    write-amplification the paper measures against relink (§2.3, Table 7).
    Updates are private (invisible to other processes) until digested. *)

open Pmem

let block_size = 4096
let header_size = 64

type t = {
  base : Pmbase.t;  (** shared area *)
  env : Env.t;
  log_start : int;
  log_len : int;
  mutable log_cursor : int;
  shadows : (int, Kernelfs.Extent_tree.t) Hashtbl.t;
      (** per-inode byte-granular map: file offset -> private-log offset *)
  digest_threshold : float;
  mutable digests : int;
  header : Bytes.t;
}

let mkfs ?(log_len = 8 * 1024 * 1024) ?(digest_threshold = 0.9) (env : Env.t) =
  let log_len = (log_len + block_size - 1) / block_size * block_size in
  {
    base = Pmbase.create env ~reserved:log_len;
    env;
    log_start = 0;
    log_len;
    log_cursor = 0;
    shadows = Hashtbl.create 64;
    digest_threshold;
    digests = 0;
    header = Bytes.make header_size '\x03';
  }

let cpu t = Env.cpu_cat t.env Obs.Usplit t.env.Env.timing.Timing.strata_op_cpu
let digests t = t.digests

let shadow_of t ino =
  match Hashtbl.find_opt t.shadows ino with
  | Some s -> s
  | None ->
      let s = Kernelfs.Extent_tree.create () in
      Hashtbl.replace t.shadows ino s;
      s

(* --- digest --- *)

let digest_file t ino (file : Pmbase.file) =
  match Hashtbl.find_opt t.shadows ino with
  | None -> ()
  | Some shadow ->
      let tm = t.env.Env.timing in
      Kernelfs.Extent_tree.iter
        (fun e ->
          let len = e.Kernelfs.Extent_tree.len in
          let buf = Bytes.create len in
          Device.load t.env.Env.dev
            ~addr:(t.log_start + e.Kernelfs.Extent_tree.physical)
            buf ~off:0 ~len;
          Env.cpu_cat t.env Obs.Usplit
            (tm.Timing.strata_digest_per_byte *. float_of_int len);
          ignore
            (Pmbase.write_data t.base file
               ~off:e.Kernelfs.Extent_tree.logical buf ~boff:0 ~len ~cow:false))
        shadow;
      Device.fence t.env.Env.dev;
      Hashtbl.remove t.shadows ino

(** Digest every file, then reset the log. Runs in the foreground: a full
    private log back-pressures the application, which is the stall the
    paper observes on append-heavy workloads. *)
let digest_all t =
  let live =
    (* collect (ino, file) pairs for every shadowed inode still reachable *)
    Hashtbl.fold (fun ino _ acc -> ino :: acc) t.shadows []
  in
  let rec find_file node ino =
    match node with
    | Pmbase.File f -> if f.Pmbase.ino = ino then Some f else None
    | Pmbase.Dir d ->
        Hashtbl.fold
          (fun _ child acc ->
            match acc with Some _ -> acc | None -> find_file child ino)
          d None
  in
  List.iter
    (fun ino ->
      match find_file (Pmbase.Dir t.base.Pmbase.root) ino with
      | Some file -> digest_file t ino file
      | None -> Hashtbl.remove t.shadows ino)
    live;
  t.log_cursor <- 0;
  t.digests <- t.digests + 1

(** Force a digest immediately (tests and experiments). *)
let digest_now t = digest_all t

let ensure_log_space t need =
  if
    t.log_cursor + need
    > int_of_float (t.digest_threshold *. float_of_int t.log_len)
  then digest_all t;
  if t.log_cursor + need > t.log_len then
    Fsapi.Errno.(error ENOSPC "strata: private log too small for this write")

(* --- data path (all user-space: no traps) --- *)

let rec do_pwrite t fd ~buf ~boff ~len ~at =
  cpu t;
  let e = Pmbase.fd_entry t.base fd in
  if not (Fsapi.Flags.writable e.Pmbase.oflags) then
    Fsapi.Errno.(error EBADF "pwrite");
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pwrite");
  let file = e.Pmbase.file in
  (* a write larger than the private log is split into log-sized pieces,
     each forcing a digest *)
  let max_piece = (t.log_len / 2) - header_size in
  if len > max_piece then begin
    let first = do_pwrite t fd ~buf ~boff ~len:max_piece ~at in
    let rest =
      do_pwrite t fd ~buf ~boff:(boff + max_piece) ~len:(len - max_piece)
        ~at:(at + max_piece)
    in
    first + rest
  end
  else begin
  ensure_log_space t (header_size + len);
  let dev = t.env.Env.dev in
  Device.store_nt dev ~addr:(t.log_start + t.log_cursor) t.header ~off:0
    ~len:header_size;
  t.log_cursor <- t.log_cursor + header_size;
  let data_off = t.log_cursor in
  Device.store_nt dev ~addr:(t.log_start + data_off) buf ~off:boff ~len;
  t.log_cursor <- t.log_cursor + len;
  Device.fence dev;
  let shadow = shadow_of t file.Pmbase.ino in
  ignore (Kernelfs.Extent_tree.remove_range shadow ~logical:at ~len);
  Kernelfs.Extent_tree.insert shadow ~logical:at ~physical:data_off ~len;
  if at + len > file.Pmbase.size then file.Pmbase.size <- at + len;
  let stats = t.env.Env.stats in
  stats.Stats.log_entries <- stats.Stats.log_entries + 1;
  stats.Stats.staged_bytes <- stats.Stats.staged_bytes + len;
  len
  end

let do_pread t fd ~buf ~boff ~len ~at =
  cpu t;
  let e = Pmbase.fd_entry t.base fd in
  if not (Fsapi.Flags.readable e.Pmbase.oflags) then
    Fsapi.Errno.(error EBADF "pread");
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pread");
  let file = e.Pmbase.file in
  if at >= file.Pmbase.size then 0
  else begin
    let len = min len (file.Pmbase.size - at) in
    let shadow = shadow_of t file.Pmbase.ino in
    let pos = ref at and dst = ref boff and remaining = ref len in
    while !remaining > 0 do
      (match Kernelfs.Extent_tree.find shadow !pos with
      | Some (log_off, run) ->
          let n = min run !remaining in
          Device.load t.env.Env.dev ~addr:(t.log_start + log_off) buf
            ~off:!dst ~len:n;
          pos := !pos + n;
          dst := !dst + n;
          remaining := !remaining - n
      | None ->
          let bound =
            match Kernelfs.Extent_tree.next_mapped shadow !pos with
            | Some next -> min !remaining (next - !pos)
            | None -> !remaining
          in
          let got = Pmbase.read_data t.base file ~off:!pos buf ~boff:!dst ~len:bound in
          let got = if got = 0 then bound else got in
          (* holes (not yet digested gaps) read as zeros *)
          if got < bound then Bytes.fill buf (!dst + got) (bound - got) '\000';
          pos := !pos + bound;
          dst := !dst + bound;
          remaining := !remaining - bound);
    done;
    len
  end

let write t fd ~buf ~boff ~len =
  let e = Pmbase.fd_entry t.base fd in
  let at =
    if e.Pmbase.oflags.Fsapi.Flags.append then e.Pmbase.file.Pmbase.size
    else !(e.Pmbase.pos)
  in
  let n = do_pwrite t fd ~buf ~boff ~len ~at in
  e.Pmbase.pos := at + n;
  n

let read t fd ~buf ~boff ~len =
  let e = Pmbase.fd_entry t.base fd in
  let n = do_pread t fd ~buf ~boff ~len ~at:!(e.Pmbase.pos) in
  e.Pmbase.pos := !(e.Pmbase.pos) + n;
  n

let lseek t fd off whence =
  cpu t;
  let e = Pmbase.fd_entry t.base fd in
  let base =
    match whence with
    | Fsapi.Flags.Set -> 0
    | Fsapi.Flags.Cur -> !(e.Pmbase.pos)
    | Fsapi.Flags.End -> e.Pmbase.file.Pmbase.size
  in
  let npos = base + off in
  if npos < 0 then Fsapi.Errno.(error EINVAL "lseek");
  e.Pmbase.pos := npos;
  npos

(** The private log is durable at write time: fsync is just an ordering
    point. *)
let fsync t fd =
  cpu t;
  ignore (Pmbase.fd_entry t.base fd);
  Device.fence t.env.Env.dev

(* --- metadata ops: logged in the private log, no kernel traps --- *)

let log_meta t =
  ensure_log_space t header_size;
  Device.store_nt t.env.Env.dev ~addr:(t.log_start + t.log_cursor) t.header
    ~off:0 ~len:header_size;
  t.log_cursor <- t.log_cursor + header_size;
  Device.fence t.env.Env.dev;
  let stats = t.env.Env.stats in
  stats.Stats.log_entries <- stats.Stats.log_entries + 1

let open_ t path flags =
  cpu t;
  let fd, _file, created = Pmbase.open_file t.base path flags in
  if created then log_meta t;
  fd

let close t fd =
  cpu t;
  Pmbase.close_fd t.base fd

let dup t fd =
  cpu t;
  Pmbase.dup_fd t.base fd

let ftruncate t fd size =
  cpu t;
  if size < 0 then Fsapi.Errno.(error EINVAL "ftruncate");
  let e = Pmbase.fd_entry t.base fd in
  (* settle the log for this file, then truncate the shared copy *)
  digest_file t e.Pmbase.file.Pmbase.ino e.Pmbase.file;
  Pmbase.truncate_data t.base e.Pmbase.file size;
  log_meta t

let fstat t fd =
  cpu t;
  let e = Pmbase.fd_entry t.base fd in
  Pmbase.stat_node (Pmbase.File e.Pmbase.file)

let stat t path =
  cpu t;
  Pmbase.stat_path t.base path

let unlink t path =
  cpu t;
  let file = Pmbase.unlink_path t.base path in
  Hashtbl.remove t.shadows file.Pmbase.ino;
  log_meta t

let rename t src dst =
  cpu t;
  Pmbase.rename_path t.base src dst;
  log_meta t

let mkdir t path =
  cpu t;
  Pmbase.mkdir_path t.base path;
  log_meta t

let rmdir t path =
  cpu t;
  Pmbase.rmdir_path t.base path;
  log_meta t

let readdir t path =
  cpu t;
  Pmbase.readdir_path t.base path

let as_fsapi t : Fsapi.Fs.t =
  {
    Fsapi.Fs.fs_name = "strata";
    open_ = open_ t;
    close = close t;
    dup = dup t;
    pread = (fun fd ~buf ~boff ~len ~at -> do_pread t fd ~buf ~boff ~len ~at);
    pwrite = (fun fd ~buf ~boff ~len ~at -> do_pwrite t fd ~buf ~boff ~len ~at);
    read = (fun fd ~buf ~boff ~len -> read t fd ~buf ~boff ~len);
    write = (fun fd ~buf ~boff ~len -> write t fd ~buf ~boff ~len);
    lseek = lseek t;
    fsync = fsync t;
    ftruncate = ftruncate t;
    fstat = fstat t;
    stat = stat t;
    unlink = unlink t;
    rename = rename t;
    mkdir = mkdir t;
    rmdir = rmdir t;
    readdir = readdir t;
  }
