(** Shared chassis for the baseline PM file systems (PMFS, NOVA, Strata).

    Provides the mechanics every baseline needs — directory tree, inodes
    with extent maps over a block allocator, fd table, and raw block IO on
    the PM device — without charging any file-system-specific cost. Each
    baseline composes these with its own persistence protocol (in-place
    writes + undo log, per-inode redo logs + COW, private log + digest) and
    its own cost charges, which is where the paper's comparisons come from.

    The extent machinery is deliberately the same {!Kernelfs.Extent_tree}
    and {!Kernelfs.Alloc} used by the ext4 simulation so the baselines
    differ only in protocol, not in data-structure quality. *)

open Pmem

let block_size = 4096

type file = {
  ino : int;
  mutable size : int;
  mutable nlink : int;
  mutable refcount : int;
  extents : Kernelfs.Extent_tree.t;
}

type node = File of file | Dir of (string, node) Hashtbl.t

type open_file = { file : file; pos : int ref; oflags : Fsapi.Flags.t }

type t = {
  env : Env.t;
  alloc : Kernelfs.Alloc.t;
  data_start : int;  (** device address of block 0 of the data area *)
  root : (string, node) Hashtbl.t;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable next_ino : int;
  zero_block : Bytes.t;
}

(** [create env ~reserved] lays the data area after [reserved] bytes that
    the specific file system keeps for its own logs/journal. *)
let create (env : Env.t) ~reserved =
  let capacity = Device.capacity env.Env.dev in
  assert (reserved mod block_size = 0 && reserved < capacity);
  {
    env;
    alloc = Kernelfs.Alloc.create ~nblocks:((capacity - reserved) / block_size) ();
    data_start = reserved;
    root = Hashtbl.create 64;
    fds = Hashtbl.create 32;
    next_fd = 3;
    next_ino = 2;
    zero_block = Bytes.make block_size '\000';
  }

let block_addr t phys = t.data_start + (phys * block_size)

(* --- namespace --- *)

let split_path = Fsapi.Path.split

let rec walk dir = function
  | [] -> Dir dir
  | [ last ] -> (
      match Hashtbl.find_opt dir last with
      | Some n -> n
      | None -> Fsapi.Errno.(error ENOENT last))
  | part :: rest -> (
      match Hashtbl.find_opt dir part with
      | Some (Dir d) -> walk d rest
      | Some (File _) -> Fsapi.Errno.(error ENOTDIR part)
      | None -> Fsapi.Errno.(error ENOENT part))

let find_node t path =
  match split_path path with [] -> Dir t.root | parts -> walk t.root parts

let parent_of t path =
  let parents, name = Fsapi.Path.split_parent path in
  match walk t.root parents with
  | Dir d -> (d, name)
  | File _ -> Fsapi.Errno.(error ENOTDIR path)
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) when parents = [] ->
      (t.root, name)

let fresh_file t =
  let f =
    {
      ino = t.next_ino;
      size = 0;
      nlink = 1;
      refcount = 0;
      extents = Kernelfs.Extent_tree.create ();
    }
  in
  t.next_ino <- t.next_ino + 1;
  f

let free_blocks_of t file =
  Kernelfs.Extent_tree.iter
    (fun e ->
      Kernelfs.Alloc.free_extent t.alloc ~start:e.Kernelfs.Extent_tree.physical
        ~len:e.Kernelfs.Extent_tree.len)
    file.extents;
  Kernelfs.Extent_tree.clear file.extents

let maybe_reap t file =
  if file.nlink = 0 && file.refcount = 0 then free_blocks_of t file

(* --- fd table --- *)

let fd_entry t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some e -> e
  | None -> Fsapi.Errno.(error EBADF (string_of_int fd))

let install_fd t file oflags =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  file.refcount <- file.refcount + 1;
  Hashtbl.replace t.fds fd { file; pos = ref 0; oflags };
  fd

let close_fd t fd =
  let e = fd_entry t fd in
  Hashtbl.remove t.fds fd;
  e.file.refcount <- e.file.refcount - 1;
  maybe_reap t e.file

let dup_fd t fd =
  let e = fd_entry t fd in
  let nfd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  e.file.refcount <- e.file.refcount + 1;
  Hashtbl.replace t.fds nfd e;
  nfd

(* --- block IO --- *)

let get_or_alloc_block t file lblk =
  match Kernelfs.Extent_tree.find file.extents lblk with
  | Some (phys, _) -> (phys, false)
  | None ->
      let goal =
        match Kernelfs.Extent_tree.find file.extents (lblk - 1) with
        | Some (p, _) -> p + 1
        | None -> -1
      in
      let start, _ = Kernelfs.Alloc.alloc_extent t.alloc ~goal ~len:1 in
      Kernelfs.Extent_tree.insert file.extents ~logical:lblk ~physical:start
        ~len:1;
      (start, true)

(** Write file data with non-temporal stores, allocating blocks as needed.
    With [cow:true] every touched block gets a fresh block first (NOVA
    strict); old blocks are freed. Returns the number of freshly allocated
    blocks. *)
let write_data t file ~off buf ~boff ~len ~cow =
  let fresh_count = ref 0 in
  let pos = ref off and src = ref boff and remaining = ref len in
  while !remaining > 0 do
    let lblk = !pos / block_size in
    let in_block = !pos mod block_size in
    let n = min !remaining (block_size - in_block) in
    let phys, fresh =
      if cow then begin
        let old = Kernelfs.Extent_tree.find file.extents lblk in
        let start, _ = Kernelfs.Alloc.alloc_extent t.alloc ~goal:(-1) ~len:1 in
        (* carry over the untouched part of the old block *)
        (match old with
        | Some (old_phys, _) ->
            if n < block_size then begin
              let tmp = Bytes.create block_size in
              Device.load t.env.Env.dev ~addr:(block_addr t old_phys) tmp
                ~off:0 ~len:block_size;
              Device.store_nt t.env.Env.dev ~addr:(block_addr t start) tmp
                ~off:0 ~len:block_size
            end;
            ignore
              (Kernelfs.Extent_tree.remove_range file.extents ~logical:lblk
                 ~len:1);
            Kernelfs.Alloc.free_extent t.alloc ~start:old_phys ~len:1
        | None ->
            if n < block_size then
              Device.store_nt t.env.Env.dev ~addr:(block_addr t start)
                t.zero_block ~off:0 ~len:block_size);
        Kernelfs.Extent_tree.insert file.extents ~logical:lblk ~physical:start
          ~len:1;
        (start, true)
      end
      else begin
        let phys, fresh = get_or_alloc_block t file lblk in
        if fresh && n < block_size then
          Device.store_nt t.env.Env.dev ~addr:(block_addr t phys) t.zero_block
            ~off:0 ~len:block_size;
        (phys, fresh)
      end
    in
    if fresh then incr fresh_count;
    Device.store_nt t.env.Env.dev ~addr:(block_addr t phys + in_block) buf
      ~off:!src ~len:n;
    pos := !pos + n;
    src := !src + n;
    remaining := !remaining - n
  done;
  if off + len > file.size then file.size <- off + len;
  !fresh_count

let read_data t file ~off buf ~boff ~len =
  if off >= file.size then 0
  else begin
    let len = min len (file.size - off) in
    let pos = ref off and dst = ref boff and remaining = ref len in
    while !remaining > 0 do
      let lblk = !pos / block_size in
      let in_block = !pos mod block_size in
      let n = min !remaining (block_size - in_block) in
      (match Kernelfs.Extent_tree.find file.extents lblk with
      | Some (phys, _) ->
          Device.load t.env.Env.dev ~addr:(block_addr t phys + in_block) buf
            ~off:!dst ~len:n
      | None -> Bytes.fill buf !dst n '\000');
      pos := !pos + n;
      dst := !dst + n;
      remaining := !remaining - n
    done;
    len
  end

let truncate_data t file size =
  if size < file.size then begin
    let old_blocks = (file.size + block_size - 1) / block_size in
    let new_blocks = (size + block_size - 1) / block_size in
    if new_blocks < old_blocks then begin
      let removed =
        Kernelfs.Extent_tree.remove_range file.extents ~logical:new_blocks
          ~len:(old_blocks - new_blocks)
      in
      List.iter
        (fun e ->
          Kernelfs.Alloc.free_extent t.alloc
            ~start:e.Kernelfs.Extent_tree.physical
            ~len:e.Kernelfs.Extent_tree.len)
        removed
    end;
    if size mod block_size <> 0 then
      match Kernelfs.Extent_tree.find file.extents (size / block_size) with
      | Some (phys, _) ->
          let in_block = size mod block_size in
          Device.store_nt t.env.Env.dev
            ~addr:(block_addr t phys + in_block)
            t.zero_block ~off:0 ~len:(block_size - in_block)
      | None -> ()
  end;
  file.size <- size

(* --- namespace mutations (no charging; callers charge per protocol) --- *)

let open_file t path (flags : Fsapi.Flags.t) =
  let parent, name = parent_of t path in
  let file, created =
    match Hashtbl.find_opt parent name with
    | Some (Dir _) -> Fsapi.Errno.(error EISDIR path)
    | Some (File f) ->
        if flags.creat && flags.excl then Fsapi.Errno.(error EEXIST path);
        if flags.trunc && Fsapi.Flags.writable flags then truncate_data t f 0;
        (f, false)
    | None ->
        if not flags.creat then Fsapi.Errno.(error ENOENT path);
        let f = fresh_file t in
        Hashtbl.replace parent name (File f);
        (f, true)
  in
  (install_fd t file flags, file, created)

let unlink_path t path =
  let parent, name = parent_of t path in
  match Hashtbl.find_opt parent name with
  | Some (File f) ->
      Hashtbl.remove parent name;
      f.nlink <- f.nlink - 1;
      maybe_reap t f;
      f
  | Some (Dir _) -> Fsapi.Errno.(error EISDIR path)
  | None -> Fsapi.Errno.(error ENOENT path)

let rename_path t src dst =
  let sparent, sname = parent_of t src in
  match Hashtbl.find_opt sparent sname with
  | None -> Fsapi.Errno.(error ENOENT src)
  | Some node ->
      let dparent, dname = parent_of t dst in
      (match Hashtbl.find_opt dparent dname with
      | Some (Dir d) when Hashtbl.length d > 0 -> Fsapi.Errno.(error ENOTEMPTY dst)
      | Some (File f) ->
          f.nlink <- f.nlink - 1;
          maybe_reap t f
      | _ -> ());
      Hashtbl.remove sparent sname;
      Hashtbl.replace dparent dname node

let mkdir_path t path =
  let parent, name = parent_of t path in
  if Hashtbl.mem parent name then Fsapi.Errno.(error EEXIST path);
  Hashtbl.replace parent name (Dir (Hashtbl.create 8))

let rmdir_path t path =
  let parent, name = parent_of t path in
  match Hashtbl.find_opt parent name with
  | Some (Dir d) ->
      if Hashtbl.length d > 0 then Fsapi.Errno.(error ENOTEMPTY path);
      Hashtbl.remove parent name
  | Some (File _) -> Fsapi.Errno.(error ENOTDIR path)
  | None -> Fsapi.Errno.(error ENOENT path)

let readdir_path t path =
  match find_node t path with
  | Dir d -> List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) d [])
  | File _ -> Fsapi.Errno.(error ENOTDIR path)

let stat_node = function
  | File f ->
      { Fsapi.Fs.st_ino = f.ino; st_kind = Fsapi.Fs.Regular; st_size = f.size; st_nlink = f.nlink }
  | Dir d ->
      { Fsapi.Fs.st_ino = 1; st_kind = Fsapi.Fs.Directory; st_size = Hashtbl.length d; st_nlink = 2 }

let stat_path t path = stat_node (find_node t path)
