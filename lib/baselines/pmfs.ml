(** PMFS-like kernel PM file system (Dulloor et al., EuroSys '14) — the
    paper's sync-mode comparator.

    Protocol: synchronous in-place data writes (no data atomicity), with
    fine-grained undo logging for metadata. Every metadata change writes a
    few 64-byte undo-log entries, each flushed and fenced, before the
    in-place update — cheaper than jbd2 block journaling, pricier than
    SplitFS's user-space path. *)

open Pmem

type t = {
  base : Pmbase.t;
  env : Env.t;
  log_start : int;
  log_len : int;
  mutable log_cursor : int;
  entry : Bytes.t;
}

let log_reserved = 2 * 1024 * 1024

let mkfs (env : Env.t) =
  {
    base = Pmbase.create env ~reserved:log_reserved;
    env;
    log_start = 0;
    log_len = log_reserved;
    log_cursor = 0;
    entry = Bytes.make 64 '\x02';
  }

let trap t =
  let tm = t.env.Env.timing in
  Env.cpu_cat t.env Obs.Syscall (tm.Timing.syscall_trap +. tm.Timing.vfs_path);
  t.env.Env.stats.Stats.syscalls <- t.env.Env.stats.Stats.syscalls + 1

let cpu t = Env.cpu_cat t.env Obs.Kernel t.env.Env.timing.Timing.pmfs_op_cpu

(** [undo_log t n] writes [n] 64-byte undo entries, fenced. *)
let undo_log t n =
  Env.with_cat t.env Obs.Journal @@ fun () ->
  let dev = t.env.Env.dev in
  for _ = 1 to n do
    if t.log_cursor + 64 > t.log_len then t.log_cursor <- 0;
    Device.store_nt dev ~addr:(t.log_start + t.log_cursor) t.entry ~off:0 ~len:64;
    t.log_cursor <- t.log_cursor + 64
  done;
  Device.fence dev;
  let stats = t.env.Env.stats in
  stats.Stats.log_entries <- stats.Stats.log_entries + n

let open_ t path flags =
  trap t;
  cpu t;
  let fd, _file, created = Pmbase.open_file t.base path flags in
  if created then undo_log t 3;
  fd

let close t fd =
  trap t;
  Pmbase.close_fd t.base fd

let dup t fd =
  trap t;
  Pmbase.dup_fd t.base fd

let do_pwrite t fd ~buf ~boff ~len ~at =
  trap t;
  cpu t;
  let e = Pmbase.fd_entry t.base fd in
  if not (Fsapi.Flags.writable e.Pmbase.oflags) then
    Fsapi.Errno.(error EBADF "pwrite");
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pwrite");
  let fresh =
    Pmbase.write_data t.base e.Pmbase.file ~off:at buf ~boff ~len ~cow:false
  in
  (* inode + allocator undo entries when the file grew *)
  undo_log t (if fresh > 0 then 2 else 1);
  Device.fence t.env.Env.dev;
  len

let do_pread t fd ~buf ~boff ~len ~at =
  trap t;
  Env.cpu_cat t.env Obs.Kernel t.env.Env.timing.Timing.ext4_read_cpu;
  let e = Pmbase.fd_entry t.base fd in
  if not (Fsapi.Flags.readable e.Pmbase.oflags) then
    Fsapi.Errno.(error EBADF "pread");
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pread");
  Pmbase.read_data t.base e.Pmbase.file ~off:at buf ~boff ~len

let write t fd ~buf ~boff ~len =
  let e = Pmbase.fd_entry t.base fd in
  let at =
    if e.Pmbase.oflags.Fsapi.Flags.append then e.Pmbase.file.Pmbase.size
    else !(e.Pmbase.pos)
  in
  let n = do_pwrite t fd ~buf ~boff ~len ~at in
  e.Pmbase.pos := at + n;
  n

let read t fd ~buf ~boff ~len =
  let e = Pmbase.fd_entry t.base fd in
  let n = do_pread t fd ~buf ~boff ~len ~at:!(e.Pmbase.pos) in
  e.Pmbase.pos := !(e.Pmbase.pos) + n;
  n

let lseek t fd off whence =
  trap t;
  let e = Pmbase.fd_entry t.base fd in
  let base =
    match whence with
    | Fsapi.Flags.Set -> 0
    | Fsapi.Flags.Cur -> !(e.Pmbase.pos)
    | Fsapi.Flags.End -> e.Pmbase.file.Pmbase.size
  in
  let npos = base + off in
  if npos < 0 then Fsapi.Errno.(error EINVAL "lseek");
  e.Pmbase.pos := npos;
  npos

(** PMFS writes are synchronous, so fsync is only a trap. *)
let fsync t fd =
  trap t;
  ignore (Pmbase.fd_entry t.base fd)

let ftruncate t fd size =
  trap t;
  cpu t;
  if size < 0 then Fsapi.Errno.(error EINVAL "ftruncate");
  let e = Pmbase.fd_entry t.base fd in
  Pmbase.truncate_data t.base e.Pmbase.file size;
  undo_log t 2

let fstat t fd =
  trap t;
  let e = Pmbase.fd_entry t.base fd in
  Pmbase.stat_node (Pmbase.File e.Pmbase.file)

let stat t path =
  trap t;
  Pmbase.stat_path t.base path

let unlink t path =
  trap t;
  cpu t;
  ignore (Pmbase.unlink_path t.base path);
  undo_log t 3

let rename t src dst =
  trap t;
  cpu t;
  Pmbase.rename_path t.base src dst;
  undo_log t 4

let mkdir t path =
  trap t;
  cpu t;
  Pmbase.mkdir_path t.base path;
  undo_log t 3

let rmdir t path =
  trap t;
  cpu t;
  Pmbase.rmdir_path t.base path;
  undo_log t 3

let readdir t path =
  trap t;
  Pmbase.readdir_path t.base path

let as_fsapi t : Fsapi.Fs.t =
  {
    Fsapi.Fs.fs_name = "pmfs";
    open_ = open_ t;
    close = close t;
    dup = dup t;
    pread = (fun fd ~buf ~boff ~len ~at -> do_pread t fd ~buf ~boff ~len ~at);
    pwrite = (fun fd ~buf ~boff ~len ~at -> do_pwrite t fd ~buf ~boff ~len ~at);
    read = (fun fd ~buf ~boff ~len -> read t fd ~buf ~boff ~len);
    write = (fun fd ~buf ~boff ~len -> write t fd ~buf ~boff ~len);
    lseek = lseek t;
    fsync = fsync t;
    ftruncate = ftruncate t;
    fstat = fstat t;
    stat = stat t;
    unlink = unlink t;
    rename = rename t;
    mkdir = mkdir t;
    rmdir = rmdir t;
    readdir = readdir t;
  }
