(** NOVA-like log-structured PM file system (Xu & Swanson, FAST '16) —
    the paper's main strict-mode comparator.

    Modelled protocol, per operation: append one log entry to the inode's
    log (one cache-line NT store), then persist the log tail (a second
    cache-line write plus flush), with two fences — the "at least two cache
    lines and two fences" the paper contrasts with SplitFS's single
    checksummed line and single fence (§3.3).

    Two configurations, as defined in paper §3.2:
    - [Strict] — copy-on-write data updates, atomic data operations
      (NOVA-strict);
    - [Relaxed] — in-place data updates, log only for metadata
      (NOVA-relaxed), equivalent to SplitFS-sync guarantees. *)

open Pmem

type mode = Strict | Relaxed

let mode_to_string = function Strict -> "strict" | Relaxed -> "relaxed"

type t = {
  base : Pmbase.t;
  env : Env.t;
  mode : mode;
  log_start : int;
  log_len : int;
  mutable log_cursor : int;
  entry : Bytes.t;  (** scratch 64 B log entry *)
}

let log_reserved = 4 * 1024 * 1024

let mkfs (env : Env.t) ~mode =
  {
    base = Pmbase.create env ~reserved:log_reserved;
    env;
    mode;
    log_start = 0;
    log_len = log_reserved;
    log_cursor = 0;
    entry = Bytes.make 64 '\x01';
  }

let trap t =
  let tm = t.env.Env.timing in
  Env.cpu_cat t.env Obs.Syscall (tm.Timing.syscall_trap +. tm.Timing.vfs_path);
  t.env.Env.stats.Stats.syscalls <- t.env.Env.stats.Stats.syscalls + 1

let cpu t = Env.cpu_cat t.env Obs.Kernel t.env.Env.timing.Timing.nova_op_cpu

(** One logged operation: log entry + persisted tail = two cache lines,
    two fences. *)
let log_op t =
  Env.with_cat t.env Obs.Journal @@ fun () ->
  let dev = t.env.Env.dev in
  if t.log_cursor + 128 > t.log_len then t.log_cursor <- 0;
  Device.store_nt dev ~addr:(t.log_start + t.log_cursor) t.entry ~off:0 ~len:64;
  Device.fence dev;
  (* tail update: temporal store + clflush + fence *)
  Device.store dev ~addr:(t.log_start + t.log_cursor + 64) t.entry ~off:0 ~len:8;
  Device.flush dev ~addr:(t.log_start + t.log_cursor + 64) ~len:8;
  Device.fence dev;
  t.log_cursor <- t.log_cursor + 128;
  let stats = t.env.Env.stats in
  stats.Stats.log_entries <- stats.Stats.log_entries + 1

let alloc_cpu t n =
  Env.cpu_cat t.env Obs.Alloc
    (t.env.Env.timing.Timing.nova_alloc_cpu *. float_of_int (max 1 n))

(* --- operations --- *)

let open_ t path flags =
  trap t;
  cpu t;
  let fd, _file, created = Pmbase.open_file t.base path flags in
  if created then log_op t;
  fd

let close t fd =
  trap t;
  Pmbase.close_fd t.base fd

let dup t fd =
  trap t;
  Pmbase.dup_fd t.base fd

let do_pwrite t fd ~buf ~boff ~len ~at =
  trap t;
  cpu t;
  let e = Pmbase.fd_entry t.base fd in
  if not (Fsapi.Flags.writable e.Pmbase.oflags) then
    Fsapi.Errno.(error EBADF "pwrite");
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pwrite");
  let cow = t.mode = Strict in
  let fresh = Pmbase.write_data t.base e.Pmbase.file ~off:at buf ~boff ~len ~cow in
  alloc_cpu t fresh;
  log_op t;
  len

let do_pread t fd ~buf ~boff ~len ~at =
  trap t;
  Env.cpu_cat t.env Obs.Kernel t.env.Env.timing.Timing.ext4_read_cpu;
  let e = Pmbase.fd_entry t.base fd in
  if not (Fsapi.Flags.readable e.Pmbase.oflags) then
    Fsapi.Errno.(error EBADF "pread");
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pread");
  Pmbase.read_data t.base e.Pmbase.file ~off:at buf ~boff ~len

let write t fd ~buf ~boff ~len =
  let e = Pmbase.fd_entry t.base fd in
  let at =
    if e.Pmbase.oflags.Fsapi.Flags.append then e.Pmbase.file.Pmbase.size
    else !(e.Pmbase.pos)
  in
  let n = do_pwrite t fd ~buf ~boff ~len ~at in
  e.Pmbase.pos := at + n;
  n

let read t fd ~buf ~boff ~len =
  let e = Pmbase.fd_entry t.base fd in
  let n = do_pread t fd ~buf ~boff ~len ~at:!(e.Pmbase.pos) in
  e.Pmbase.pos := !(e.Pmbase.pos) + n;
  n

let lseek t fd off whence =
  trap t;
  let e = Pmbase.fd_entry t.base fd in
  let base =
    match whence with
    | Fsapi.Flags.Set -> 0
    | Fsapi.Flags.Cur -> !(e.Pmbase.pos)
    | Fsapi.Flags.End -> e.Pmbase.file.Pmbase.size
  in
  let npos = base + off in
  if npos < 0 then Fsapi.Errno.(error EINVAL "lseek");
  e.Pmbase.pos := npos;
  npos

(** NOVA operations are synchronous; fsync only needs the kernel trap. *)
let fsync t fd =
  trap t;
  ignore (Pmbase.fd_entry t.base fd)

let ftruncate t fd size =
  trap t;
  cpu t;
  if size < 0 then Fsapi.Errno.(error EINVAL "ftruncate");
  let e = Pmbase.fd_entry t.base fd in
  Pmbase.truncate_data t.base e.Pmbase.file size;
  log_op t

let fstat t fd =
  trap t;
  let e = Pmbase.fd_entry t.base fd in
  Pmbase.stat_node (Pmbase.File e.Pmbase.file)

let stat t path =
  trap t;
  Pmbase.stat_path t.base path

let unlink t path =
  trap t;
  cpu t;
  ignore (Pmbase.unlink_path t.base path);
  log_op t

let rename t src dst =
  trap t;
  cpu t;
  Pmbase.rename_path t.base src dst;
  (* rename journals entries in both directory logs *)
  log_op t;
  log_op t

let mkdir t path =
  trap t;
  cpu t;
  Pmbase.mkdir_path t.base path;
  log_op t

let rmdir t path =
  trap t;
  cpu t;
  Pmbase.rmdir_path t.base path;
  log_op t

let readdir t path =
  trap t;
  Pmbase.readdir_path t.base path

let as_fsapi t : Fsapi.Fs.t =
  {
    Fsapi.Fs.fs_name = Printf.sprintf "nova-%s" (mode_to_string t.mode);
    open_ = open_ t;
    close = close t;
    dup = dup t;
    pread = (fun fd ~buf ~boff ~len ~at -> do_pread t fd ~buf ~boff ~len ~at);
    pwrite = (fun fd ~buf ~boff ~len ~at -> do_pwrite t fd ~buf ~boff ~len ~at);
    read = (fun fd ~buf ~boff ~len -> read t fd ~buf ~boff ~len);
    write = (fun fd ~buf ~boff ~len -> write t fd ~buf ~boff ~len);
    lseek = lseek t;
    fsync = fsync t;
    ftruncate = ftruncate t;
    fstat = fstat t;
    stat = stat t;
    unlink = unlink t;
    rename = rename t;
    mkdir = mkdir t;
    rmdir = rmdir t;
    readdir = readdir t;
  }
