(** Deterministic fault-injection plane (PR 5).

    One [t] rides along with a simulation environment. It is host-side
    state only: with no faults injected, consulting the plane never
    produces a simulated-nanosecond charge, so zero-fault runs are
    bit-identical to a build without the plane (pinned by test).

    Two fault families are modeled:

    - {b media faults} live in [Pmem.Device] (poisoned cache lines, worn
      blocks); the device raises {!Poisoned} on a load that touches a
      poisoned line — the simulator's analogue of a machine-check on a
      PM read. The plane only carries the exception and the outcome
      counters for them.
    - {b resource faults} are injected here and consulted by the layers
      that own the corresponding failure points ({!site}): the block
      allocator (ENOSPC), the jbd2-style journal (EIO on commit) and
      the relink [swap_extents] ioctl (EIO). An epoch counter separates
      {e transient} faults (heal after [k] retry epochs) from {e sticky}
      ones (never heal): retry/degradation loops advance the epoch via
      {!new_epoch}, so a [Transient k] fault stops firing after [k]
      retries while [Sticky] keeps firing forever. *)

(** Machine-check analogue: raised by [Pmem.Device.load] when the loaded
    range covers a poisoned line that would be served from media. The
    payload is the device byte address of the poisoned line. *)
exception Poisoned of int

(** Resource-fault injection sites, named for the layer that consults
    them. *)
type site =
  | Alloc  (** block/extent allocator: fires as ENOSPC *)
  | Journal  (** jbd2 commit path: fires as EIO *)
  | Swap  (** [swap_extents]/relink ioctl: fires as EIO *)

val site_name : site -> string
val all_sites : site list

(** Refines a {!site} by calling context, so a fault can target e.g. only
    the allocations made on behalf of U-Split staging-file
    pre-allocation (leaving foreground allocations healthy — the
    scenario the degraded-write fallback exists for). *)
type origin = Other | Staging_prealloc

type duration =
  | Transient of int
      (** heals after [k >= 1] retry epochs past the epoch it first
          fired in *)
  | Sticky  (** never heals *)

type rfault = {
  rf_site : site;
  rf_origin : origin option;  (** [None] matches any origin *)
  rf_from : int;  (** 0-based call index at the site to start firing at *)
  rf_duration : duration;
}

val rfault : ?origin:origin -> site -> from:int -> duration -> rfault
val pp_rfault : Format.formatter -> rfault -> unit

(** Outcome and bookkeeping counters, all host-side. [injected] counts
    resource-fault firings; [media] counts {!Poisoned} raises. The
    remaining fields classify how the stack absorbed the faults. *)
type counts = {
  mutable injected : int;
  mutable media : int;
  mutable masked : int;
  mutable retried : int;
  mutable errno : int;
  mutable degraded_writes : int;
  mutable relink_retries : int;
  mutable journal_retries : int;
  mutable quarantined_lines : int;
  mutable scrub_migrations : int;
  mutable replay_skipped : int;
}

type t

val create : unit -> t

val enabled : t -> bool

(** Turn the plane on without injecting anything: call counters start
    counting (used by faultcheck's profiling pass). With an empty fault
    set this must not change any simulated result. *)
val arm : t -> unit

val disarm : t -> unit

(** Inject a resource fault (arms the plane). *)
val inject : t -> rfault -> unit

(** Remove all injected faults and reset call/epoch/outcome state; the
    plane stays in its current armed/disarmed state. *)
val reset : t -> unit

(** [check t site] — consult the plane at a fault point. Counts the call
    (when armed) and returns [true] iff an injected fault fires for this
    call. Never charges simulated time. *)
val check : t -> site -> bool

(** Dynamic-extent origin marker (see {!origin}). *)
val with_origin : t -> origin -> (unit -> 'a) -> 'a

val epoch : t -> int

(** Advance the retry epoch — called by retry loops between attempts and
    by degradation fallbacks, so [Transient k] faults heal. *)
val new_epoch : t -> unit

(** Calls seen per site since the plane was armed/reset. *)
val calls : t -> site -> int

(** Capped exponential backoff schedule shared by the retry loops:
    simulated ns to charge before retry [attempt] (1-based). *)
val backoff_ns : attempt:int -> float

val counts : t -> counts
val note_media : t -> unit
val note_masked : t -> unit
val note_retried : t -> unit
val note_errno : t -> unit
val note_degraded_write : t -> unit
val note_relink_retry : t -> unit
val note_journal_retry : t -> unit
val note_quarantined : t -> int -> unit
val note_scrub_migration : t -> unit
val note_replay_skipped : t -> unit

val pp_counts : Format.formatter -> counts -> unit
