(** Deterministic fault-injection plane. See the .mli for the model. *)

exception Poisoned of int

let () =
  Printexc.register_printer (function
    | Poisoned addr -> Some (Printf.sprintf "Faults.Poisoned(0x%x)" addr)
    | _ -> None)

type site = Alloc | Journal | Swap

let site_index = function Alloc -> 0 | Journal -> 1 | Swap -> 2
let nsites = 3
let site_name = function Alloc -> "alloc" | Journal -> "journal" | Swap -> "swap"
let all_sites = [ Alloc; Journal; Swap ]

type origin = Other | Staging_prealloc

let origin_name = function
  | Other -> "any"
  | Staging_prealloc -> "staging-prealloc"

type duration = Transient of int | Sticky

type rfault = {
  rf_site : site;
  rf_origin : origin option;
  rf_from : int;
  rf_duration : duration;
}

let rfault ?origin site ~from duration =
  (match duration with
  | Transient k when k < 1 -> invalid_arg "Faults.rfault: Transient k < 1"
  | _ -> ());
  { rf_site = site; rf_origin = origin; rf_from = from; rf_duration = duration }

let pp_rfault ppf r =
  Fmt.pf ppf "%s@call>=%d %s%s" (site_name r.rf_site) r.rf_from
    (match r.rf_duration with
    | Transient k -> Printf.sprintf "transient(%d)" k
    | Sticky -> "sticky")
    (match r.rf_origin with
    | None -> ""
    | Some o -> Printf.sprintf " origin=%s" (origin_name o))

type counts = {
  mutable injected : int;
  mutable media : int;
  mutable masked : int;
  mutable retried : int;
  mutable errno : int;
  mutable degraded_writes : int;
  mutable relink_retries : int;
  mutable journal_retries : int;
  mutable quarantined_lines : int;
  mutable scrub_migrations : int;
  mutable replay_skipped : int;
}

let zero_counts () =
  {
    injected = 0;
    media = 0;
    masked = 0;
    retried = 0;
    errno = 0;
    degraded_writes = 0;
    relink_retries = 0;
    journal_retries = 0;
    quarantined_lines = 0;
    scrub_migrations = 0;
    replay_skipped = 0;
  }

(* An armed [armed_rfault] remembers the epoch it first fired in so a
   [Transient k] fault can heal k epochs later. *)
type armed_rfault = { spec : rfault; mutable tripped : int (* epoch; -1 *) }

type t = {
  mutable on : bool;
  mutable epoch : int;
  calls : int array;  (** per-site call counters, armed only *)
  mutable faults : armed_rfault list;
  mutable cur_origin : origin;
  c : counts;
}

let create () =
  {
    on = false;
    epoch = 0;
    calls = Array.make nsites 0;
    faults = [];
    cur_origin = Other;
    c = zero_counts ();
  }

let enabled t = t.on
let arm t = t.on <- true
let disarm t = t.on <- false

let inject t r =
  t.faults <- { spec = r; tripped = -1 } :: t.faults;
  t.on <- true

let reset t =
  t.epoch <- 0;
  Array.fill t.calls 0 nsites 0;
  t.faults <- [];
  t.cur_origin <- Other;
  let c = t.c in
  c.injected <- 0;
  c.media <- 0;
  c.masked <- 0;
  c.retried <- 0;
  c.errno <- 0;
  c.degraded_writes <- 0;
  c.relink_retries <- 0;
  c.journal_retries <- 0;
  c.quarantined_lines <- 0;
  c.scrub_migrations <- 0;
  c.replay_skipped <- 0

let check t site =
  if not t.on then false
  else begin
    let i = site_index site in
    let idx = t.calls.(i) in
    t.calls.(i) <- idx + 1;
    let fires a =
      let r = a.spec in
      r.rf_site = site
      && (match r.rf_origin with
         | None -> true
         | Some o -> o = t.cur_origin)
      && idx >= r.rf_from
      &&
      if a.tripped < 0 then begin
        a.tripped <- t.epoch;
        true
      end
      else
        match r.rf_duration with
        | Sticky -> true
        | Transient k -> t.epoch < a.tripped + k
    in
    let fired = List.exists fires t.faults in
    if fired then t.c.injected <- t.c.injected + 1;
    fired
  end

let with_origin t o f =
  let prev = t.cur_origin in
  t.cur_origin <- o;
  Fun.protect ~finally:(fun () -> t.cur_origin <- prev) f

let epoch t = t.epoch
let new_epoch t = t.epoch <- t.epoch + 1
let calls t site = t.calls.(site_index site)

(* 1us, 2us, 4us, 8us, then capped at 16us of simulated backoff. *)
let backoff_ns ~attempt =
  float_of_int (min (1000 * (1 lsl max 0 (attempt - 1))) 16_000)

let counts t = t.c
let note_media t = t.c.media <- t.c.media + 1
let note_masked t = t.c.masked <- t.c.masked + 1
let note_retried t = t.c.retried <- t.c.retried + 1
let note_errno t = t.c.errno <- t.c.errno + 1
let note_degraded_write t = t.c.degraded_writes <- t.c.degraded_writes + 1
let note_relink_retry t = t.c.relink_retries <- t.c.relink_retries + 1
let note_journal_retry t = t.c.journal_retries <- t.c.journal_retries + 1
let note_quarantined t n = t.c.quarantined_lines <- t.c.quarantined_lines + n
let note_scrub_migration t = t.c.scrub_migrations <- t.c.scrub_migrations + 1
let note_replay_skipped t = t.c.replay_skipped <- t.c.replay_skipped + 1

let pp_counts ppf c =
  Fmt.pf ppf
    "injected=%d media=%d masked=%d retried=%d errno=%d degraded=%d \
     relink-retries=%d journal-retries=%d quarantined=%d scrubbed=%d \
     replay-skipped=%d"
    c.injected c.media c.masked c.retried c.errno c.degraded_writes
    c.relink_retries c.journal_retries c.quarantined_lines c.scrub_migrations
    c.replay_skipped
