(** Deterministic splitmix64 PRNG so every workload is reproducible
    independent of global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.logand (next t) 0xFFFFFFFFFFFFFL) /. 4503599627370496.0

let bool t = Int64.logand (next t) 1L = 1L

(** Deterministic printable payload of [len] bytes. *)
let payload t len = String.init len (fun _ -> Char.chr (33 + int t 94))

(** Fill [buf[0..len)] with the printable payload stream — the
    allocation-free twin of {!payload} for trial-setup hot paths that
    reuse a scratch buffer. *)
let fill_payload t buf len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set buf i (Char.unsafe_chr (33 + int t 94))
  done

(** [derive seed index] is a fresh seed for trial [index] of a campaign
    keyed by [seed] — splitmix64's finalizer over the campaign seed XOR a
    golden-ratio-scrambled trial index. It depends only on the pair, not
    on any shared RNG state or partition shape, so a trial draws the same
    stream no matter which domain (or how many) runs it. Kept
    non-negative so derived seeds can be re-derived. *)
let derive seed index =
  let t =
    {
      state =
        Int64.logxor (Int64.of_int seed)
          (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L);
    }
  in
  (* mask after the 63-bit truncation, not before: [Int64.to_int] keeps
     only 63 bits, so an [Int64]-side mask could still go negative *)
  Int64.to_int (next t) land max_int

(** PRNG for trial [index] of campaign [seed]; see {!derive}. *)
let create_derived seed index = create (derive seed index)
