(** Multi-tenant serving-tier workload: the op mix one actor of a scale-out
    tier issues against its tenant's slice of the namespace.

    Each tenant owns a root directory ([/t<k>]) holding one shared,
    preallocated data file (the YCSB-style keyspace: Zipf-skewed point
    reads and in-place updates at record granularity) plus one private
    write-ahead log per actor (the TPC-C-style durability stream:
    appends fsynced every few records). Reads dominate — a serving tier
    with hundreds of actors per tenant cannot serialize every op on the
    tenant's file write lock — and every op charges [think_ns] of
    application CPU (request parsing, hashing, response building), which
    is what bounds a single actor's rate and lets aggregate throughput
    climb with the actor count until the device saturates.

    Everything is deterministic: each actor derives its RNG from
    [seed] and its own index, so a run's dispatch trace is a pure
    function of (spec, nactors, cfg). *)

type cfg = {
  ops_per_actor : int;
  data_records : int;  (** records in the tenant's shared data file *)
  record_size : int;
  wal_record : int;
  wal_fsync_every : int;
  read_fraction : float;  (** Zipf point reads on the shared data file *)
  update_fraction : float;
      (** Zipf in-place updates on it; the remainder of the mix appends to
          the actor's private WAL *)
  zipf_theta : float;
  think_ns : float;  (** application CPU charged per op *)
  seed : int;
}

let default_cfg =
  {
    ops_per_actor = 100;
    data_records = 256;
    record_size = 4096;
    wal_record = 1024;
    wal_fsync_every = 4;
    read_fraction = 0.7;
    update_fraction = 0.1;
    zipf_theta = 0.99;
    think_ns = 200_000.;
    seed = 0x5CA1E;
  }

let data_file_bytes cfg = cfg.data_records * cfg.record_size

(** Per-actor state for one closed-loop serving actor. *)
type actor_state = {
  fs : Fsapi.Fs.t;
  data_path : string;
  wal_path : string;
  rng : Rng.t;
  zipf : Zipf.t;  (** shared per run: immutable after creation *)
  think : unit -> unit;
  mutable data_fd : int;
  mutable wal_fd : int;
  mutable wal_off : int;
  mutable wal_appends : int;
}

let make_actor ~fs ~think ~zipf ~cfg ~tenant ~idx =
  {
    fs;
    data_path = Printf.sprintf "/t%d/data" tenant;
    wal_path = Printf.sprintf "/t%d/wal%d" tenant idx;
    (* splitmix64 decorrelates the dense actor indices *)
    rng = Rng.create (cfg.seed + (idx * 0x9E3779B9) + 1);
    zipf;
    think;
    data_fd = -1;
    wal_fd = -1;
    wal_off = 0;
    wal_appends = 0;
  }

(** One scheduler step of the actor: step 0 opens its files, steps
    [1..ops_per_actor] each run one op of the mix, the final step makes
    the WAL durable and closes. Returns [false] when exhausted. *)
let step cfg st i =
  if i = 0 then begin
    st.data_fd <- st.fs.Fsapi.Fs.open_ st.data_path Fsapi.Flags.rdwr;
    st.wal_fd <- st.fs.Fsapi.Fs.open_ st.wal_path Fsapi.Flags.create_rw;
    true
  end
  else if i <= cfg.ops_per_actor then begin
    st.think ();
    let u = Rng.float st.rng in
    let record () = Zipf.sample st.zipf st.rng in
    if u < cfg.read_fraction then begin
      let buf = Bytes.create cfg.record_size in
      let n =
        st.fs.Fsapi.Fs.pread st.data_fd ~buf ~boff:0 ~len:cfg.record_size
          ~at:(record () * cfg.record_size)
      in
      assert (n = cfg.record_size)
    end
    else if u < cfg.read_fraction +. cfg.update_fraction then begin
      let buf = Bytes.make cfg.record_size 'u' in
      let n =
        st.fs.Fsapi.Fs.pwrite st.data_fd ~buf ~boff:0 ~len:cfg.record_size
          ~at:(record () * cfg.record_size)
      in
      assert (n = cfg.record_size)
    end
    else begin
      let buf = Bytes.make cfg.wal_record 'w' in
      let n =
        st.fs.Fsapi.Fs.pwrite st.wal_fd ~buf ~boff:0 ~len:cfg.wal_record
          ~at:st.wal_off
      in
      assert (n = cfg.wal_record);
      st.wal_off <- st.wal_off + cfg.wal_record;
      st.wal_appends <- st.wal_appends + 1;
      if st.wal_appends mod cfg.wal_fsync_every = 0 then
        st.fs.Fsapi.Fs.fsync st.wal_fd
    end;
    true
  end
  else if i = cfg.ops_per_actor + 1 then begin
    st.fs.Fsapi.Fs.fsync st.wal_fd;
    st.fs.Fsapi.Fs.close st.wal_fd;
    st.fs.Fsapi.Fs.close st.data_fd;
    true
  end
  else false

(** Create the tenant root and its preallocated, fully-mapped data file
    (setup, charged to the caller's clock before any actor spawns). *)
let setup_tenant (fs : Fsapi.Fs.t) ~cfg ~tenant =
  fs.Fsapi.Fs.mkdir (Printf.sprintf "/t%d" tenant);
  let path = Printf.sprintf "/t%d/data" tenant in
  let fd = fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw in
  let chunk = 16 * 4096 in
  let buf = Bytes.make chunk 'd' in
  let total = data_file_bytes cfg in
  let off = ref 0 in
  while !off < total do
    let n = min chunk (total - !off) in
    let w = fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len:n ~at:!off in
    assert (w = n);
    off := !off + n
  done;
  fs.Fsapi.Fs.fsync fd;
  fs.Fsapi.Fs.close fd
