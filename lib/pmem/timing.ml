(** Cost model for the simulation, in nanoseconds.

    Media parameters follow Izraelevitz et al. (paper Table 2); software-path
    parameters are calibrated so that the five append latencies of paper
    Table 1 are reproduced. Tests pin the calibration (test_timing.ml,
    bench target [table1]). *)

type t = {
  (* --- PM media (paper Table 2) --- *)
  pm_read_seq_lat : float;  (** sequential read, first line of a run *)
  pm_read_rand_lat : float;  (** random read, first line of a run *)
  pm_read_bw : float;  (** bytes per ns; 39.4 GB/s *)
  pm_write_per_byte : float;
      (** effective non-temporal write cost per byte; calibrated so a 4 KB
          write costs 671 ns as measured in the paper (§1) *)
  cache_store_per_byte : float;  (** temporal store into the CPU cache *)
  cache_read_per_byte : float;  (** load served by the CPU cache *)
  clwb : float;  (** flush one dirty cache line towards PM *)
  sfence : float;
  (* --- DRAM (used by Strata emulation & staging-in-DRAM ablation) --- *)
  dram_read_lat : float;
  dram_read_bw : float;  (** bytes per ns; 120 GB/s *)
  dram_write_per_byte : float;  (** 80 GB/s *)
  (* --- kernel crossing & VFS --- *)
  syscall_trap : float;  (** user/kernel mode switch, both ways *)
  vfs_path : float;  (** VFS dispatch, fd lookup, permission checks *)
  page_fault : float;  (** minor fault on a 4 KB DAX mapping *)
  page_fault_huge : float;  (** minor fault on a 2 MB DAX mapping *)
  (* --- ext4 DAX software path (calibrated) --- *)
  ext4_alloc_cpu : float;  (** bitmap search + group locking *)
  ext4_extent_cpu : float;  (** extent-tree lookup/insert *)
  ext4_inode_cpu : float;  (** inode update, timestamps *)
  ext4_dir_cpu : float;  (** directory entry manipulation *)
  ext4_append_cpu : float;
      (** residual CPU path length of the ext4 DAX append (delalloc,
          locking, dax iomap); calibrated against Table 1 *)
  ext4_write_cpu : float;  (** same for a non-allocating overwrite *)
  ext4_read_cpu : float;
  journal_block : int;  (** journal IO granularity, bytes *)
  jbd2_fsync_wait : float;
      (** latency of waking jbd2 and waiting for a running transaction to
          commit on fsync; paid only when the fsync has dirty metadata to
          commit (the relink ioctl commits its transaction synchronously,
          so SplitFS fsyncs hit the no-wait fast path) *)
  (* --- PMFS software path (calibrated) --- *)
  pmfs_op_cpu : float;
  (* --- NOVA software path (calibrated) --- *)
  nova_op_cpu : float;
  nova_alloc_cpu : float;
  (* --- Strata --- *)
  strata_op_cpu : float;
      (** libfs operation path including lease validation against the
          kernel file-system process *)
  strata_digest_per_byte : float;  (** coalescing + copy to shared area *)
  (* --- U-Split (SplitFS user-space library) --- *)
  usplit_bookkeeping : float;
      (** fd table, collection-of-mmaps lookup, offset update *)
  usplit_log_cpu : float;  (** compose + checksum one 64 B log entry *)
  usplit_lock_cpu : float;
      (** take/release one fine-grained per-file lock (§3.5); only charged
          in multi-client runs — single-client cost is inside
          [usplit_bookkeeping] *)
  pm_channels : int;
      (** DIMM interleave width: how many concurrent actors' transfers the
          media absorbs before they queue. A single transfer still sees its
          full latency (the per-byte costs above); under concurrency each
          transfer only occupies the shared device for [1/pm_channels] of
          its latency. Only the multi-actor contention model reads this. *)
  memcpy_per_byte : float;  (** user-space memcpy DRAM<->cache *)
  huge_pages_enabled : bool;
      (** when false, every DAX mapping faults at 4 KB granularity — the
          fragmentation failure mode of paper §4 ("huge pages are
          fragile"); used by the huge-page ablation *)
}

(** Default configuration: Intel Optane DC PMM as characterised by the
    paper. *)
let default =
  {
    pm_read_seq_lat = 169.;
    pm_read_rand_lat = 305.;
    pm_read_bw = 39.4;
    pm_write_per_byte = 671. /. 4096.;
    cache_store_per_byte = 0.08;
    cache_read_per_byte = 0.03;
    clwb = 70.;
    sfence = 15.;
    dram_read_lat = 81.;
    dram_read_bw = 120.;
    dram_write_per_byte = 1. /. 80.;
    syscall_trap = 250.;
    vfs_path = 350.;
    page_fault = 1400.;
    page_fault_huge = 2500.;
    ext4_alloc_cpu = 400.;
    ext4_extent_cpu = 300.;
    ext4_inode_cpu = 150.;
    ext4_dir_cpu = 400.;
    ext4_append_cpu = 7000.;
    ext4_write_cpu = 700.;
    ext4_read_cpu = 400.;
    journal_block = 4096;
    jbd2_fsync_wait = 22000.;
    pmfs_op_cpu = 2770.;
    nova_op_cpu = 1300.;
    nova_alloc_cpu = 250.;
    strata_op_cpu = 2200.;
    strata_digest_per_byte = 0.05;
    usplit_bookkeeping = 480.;
    usplit_log_cpu = 40.;
    usplit_lock_cpu = 18.;
    (* the paper's testbed interleaves across the socket's Optane DIMMs *)
    pm_channels = 6;
    memcpy_per_byte = 0.03;
    huge_pages_enabled = true;
  }

(** Cost of one non-temporal write of [len] bytes to PM. *)
let nt_write_cost t len = float_of_int len *. t.pm_write_per_byte

(** Cost of reading [len] bytes from PM media, [random] selects the
    first-access latency. *)
let pm_read_cost t ~random len =
  let lat = if random then t.pm_read_rand_lat else t.pm_read_seq_lat in
  lat +. (float_of_int len /. t.pm_read_bw)
