(** An experiment environment: one PM device plus the clock, timing model
    and statistics shared by every layer of the stack. *)

(** Per-environment verification knobs (formerly process-global refs);
    campaigns flip them per stack so concurrent domains can run different
    configurations. *)
type checks = {
  mutable verify_checksums : bool;
      (** CRC-check op-log entries on decode (default true) *)
  mutable honest_degraded_writes : bool;
      (** degraded kernel-path writes really write (default true) *)
  mutable fams_commit_record : bool;
      (** fams msync appends its commit record before publishing (default
          true); campaigns clear it to prove the crash oracle catches a
          torn msync *)
}

val default_checks : unit -> checks

type t = {
  clock : Simclock.t;
  timing : Timing.t;
  stats : Stats.t;
  dev : Device.t;
  obs : Obs.t;  (** attribution/tracing sink; host time only *)
  faults : Faults.t;
      (** fault-injection plane shared by every layer; disarmed (and
          charge-free) unless a faultcheck campaign arms it *)
  checks : checks;
}

(** Fresh device (default 64 MB) with zeroed stats and clock; [checks]
    default to all-on. [SPLITFS_TIMELINE=1] attaches a default timeline
    (see {!enable_timeline}). *)
val create :
  ?capacity:int -> ?timing:Timing.t -> ?obs:Obs.t -> ?checks:checks -> unit -> t

(** Attach a virtual-time telemetry timeline ({!Obs.Timeline}) and
    register the env-level counter sources (attribution categories,
    contention/journal/staging stats, fault-plane counters). Sampling is
    driven by the clock funnel at deterministic virtual-ns boundaries;
    host time only. Returns the timeline for exports and for harness
    layers to add their own sources. *)
val enable_timeline :
  ?capacity:int -> ?period_ns:float -> ?widen:bool -> t -> Obs.Timeline.t

(** Current simulated time, in nanoseconds. *)
val now : t -> float

val advance : t -> float -> unit

(** Charge pure CPU time (no PM traffic). *)
val cpu : t -> float -> unit

(** [cpu_cat t cat ns] charges CPU time attributed to [cat]. *)
val cpu_cat : t -> Obs.cat -> float -> unit

(** [with_cat t cat f] attributes every charge in [f]'s dynamic extent
    to [cat] (inner regions may override). *)
val with_cat : t -> Obs.cat -> (unit -> 'a) -> 'a

(** [with_span t ~cat ~name f] is [with_cat] that also emits a trace
    span covering [f]'s simulated extent when tracing is enabled. *)
val with_span : t -> cat:Obs.cat -> name:string -> (unit -> 'a) -> 'a

(** Simulated time the profiler must account for: foreground time across
    all actors plus rewound background time. *)
val accountable_ns : t -> float

(** Verify the accounting identity sum(categories) = total simulated ns
    (tolerance 1e-8 relative + 1e-6 ns absolute, float summation order
    only). Returns [(attributed, accountable)]; raises [Failure] on
    violation. *)
val check_identity : t -> float * float

val snapshot_stats : t -> Stats.t

(** [in_background t f] runs [f] on behalf of a background thread: the
    simulated time it consumes is moved off the foreground clock and
    accumulated in [stats.background_ns] (the paper keeps staging-file
    pre-allocation and similar work off the critical path, §4). *)
val in_background : t -> (unit -> 'a) -> 'a

(** Register a fresh actor (simulated client thread); its clock starts at
    the current actor's time. *)
val new_actor : t -> name:string -> Simclock.actor

val current_actor : t -> Simclock.actor

(** [run_as t a f] runs [f ()] with [a] as the current actor — all charges
    land on [a]'s clock — then restores the previous actor. *)
val run_as : t -> Simclock.actor -> (unit -> 'a) -> 'a

(** [with_lock t l f] runs [f] as a critical section of [l], charging any
    contention wait to the current actor. *)
val with_lock : t -> Lock.t -> (unit -> 'a) -> 'a

(** [measure t f] returns [f ()] along with elapsed simulated time and the
    statistics delta. *)
val measure : t -> (unit -> 'a) -> 'a * float * Stats.t
