(** Simulated byte-addressable persistent-memory device.

    The device models the persistence behaviour of Intel Optane DC PMM under
    ADR: non-temporal stores are durable once they reach the memory
    controller, temporal stores live in the (volatile) CPU cache until the
    line is flushed. A crash discards every dirty cache line.

    [persistent] holds the durable image. Dirty cache lines live in a single
    [shadow] buffer (at the same offsets as the durable image) indexed by a
    dense bitmap: bit [l mod 32] of word [l / 32] in [dirty] is set iff line
    [l] holds unflushed cached data, and [dirty_count] counts the set bits.
    When [dirty_count] is zero — the common state right after any
    fsync/relink — [load] and [store_nt] degenerate to a single [Bytes.blit]
    plus cost accounting, with zero per-line work. The slow paths coalesce
    contiguous clean/dirty line spans into batched blits.

    Host-side data-structure choices must never change simulated-time
    results: every code path charges exactly the per-line costs the
    line-at-a-time implementation charged (see test/test_device_diff.ml,
    which checks this against a naive reference model). All accesses charge
    simulated time on the shared clock and update the shared statistics. *)

let line_size = 64
let block_size = 4096

(* One bitmap word covers 32 cache lines (2 KB); OCaml's 63-bit native ints
   keep all mask arithmetic unboxed. *)
let lines_per_word = 32
let word_mask = 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Persist-order journal (crash-state exploration support)              *)
(* ------------------------------------------------------------------ *)

(** One post-commit version of a cache line: its full 64-byte content
    after the store that created it. [nt] marks non-temporal stores (which
    real hardware may tear at 8-byte granularity); [reached] means the
    content has reached the persistence domain (NT store, clwb, or the
    writeback an NT store forces on a covered dirty line) and will be
    committed by the next fence. *)
type jversion = { vdata : Bytes.t; nt : bool; mutable reached : bool }

(** Pending state of one journalled line. [jbase] is the line's durable
    content as of the last fence (the state a crash falls back to when no
    later version survives); [jversions] are the post-commit versions,
    newest first. *)
type jline = { jbase : Bytes.t; mutable jversions : jversion list }

(** Survivor choice for one line in a partial crash: keep the first
    [s_keep] pending versions (0 = revert to the fence-committed base).
    [s_tear] is an 8-bit mask over the kept frontier version's eight
    8-byte chunks; set bits revert that chunk to the previous version —
    modelling a non-temporal store that only partially reached media. *)
type survivor = { s_line : int; s_keep : int; s_tear : int }

(** Pending summary of one line, exposed to the exploration engine:
    [p_versions] pending versions, bit [k] of [p_nt_mask] set iff version
    [k+1] (1-based, oldest first) came from a non-temporal store. *)
type pending_line = { p_line : int; p_versions : int; p_nt_mask : int }

type journal = {
  jlines : (int, jline) Hashtbl.t;
  mutable j_fences : int;  (** fences observed since [journal_begin] *)
  j_fence_pending : (int, pending_line array) Hashtbl.t;
      (** per fence index, the pending summary captured just before that
          fence committed (or would have committed) *)
  mutable j_trip_fence : int;  (** fence index to crash at; -1 = disarmed *)
  mutable j_trip_survivors : survivor list;
  j_dedup : bool;
      (** collapse stores whose post-store line content equals the line's
          current frontier (newest pending version, or the base when none
          is pending). Identical content means identical crash outcome —
          keeping the duplicate only multiplies the survivor space — so
          exhaustive litmus exploration turns this on. Notably it erases
          the all-zero jbd2 journal-block traffic over a zeroed journal
          area, which would otherwise add 64 one-version lines per
          commit. *)
}

exception Crashed

(* ------------------------------------------------------------------ *)
(* Fence-site registry (fence minimization support)                     *)
(*                                                                      *)
(* Every ordering instruction the file-system layers issue registers a   *)
(* named site id at module initialisation and passes it to [fence]/      *)
(* [flush]. The minimizer elides one site at a time — a faithful model   *)
(* of deleting that sfence/clwb from the source: no ordering commit, no  *)
(* simulated-time charge, no stats — and lets exhaustive crash-state     *)
(* exploration either prove the site redundant or exhibit a              *)
(* counterexample. Site *names* are source locations, so the registry is *)
(* global but immutable after module initialisation (every               *)
(* [register_fence_site] call is a top-level binding, executed before    *)
(* any campaign domain spawns); all run state — hit counters and the     *)
(* elision mask — is per-device, so concurrent domains can elide         *)
(* different sites without observing each other.                         *)
(* ------------------------------------------------------------------ *)

let fence_site_names : string array ref = ref [||]

let register_fence_site name =
  let id = Array.length !fence_site_names in
  fence_site_names := Array.append !fence_site_names [| name |];
  id

let fence_sites () =
  Array.to_list (Array.mapi (fun i n -> (i, n)) !fence_site_names)

let fence_site_name i = !fence_site_names.(i)

type t = {
  capacity : int;
  persistent : Bytes.t;
  mutable shadow : Bytes.t;
      (** dirty-line contents at their device offsets; allocated lazily on
          the first temporal store *)
  dirty : int array;  (** dense dirty-line bitmap, one word per 32 lines *)
  mutable dirty_count : int;  (** number of set bits in [dirty] *)
  wear : int array;  (** write count per 4 KB block *)
  clock : Simclock.t;
  timing : Timing.t;
  stats : Stats.t;
  mutable last_read_start : int;  (** to classify sequential vs random reads *)
  mutable last_read_end : int;
  mutable journal : journal option;
      (** persist-order journal; opt-in ([journal_begin]) and purely
          passive — it never changes simulated-time charges *)
  mutable halted : bool;
      (** set when an armed partial crash fired: every device operation is
          ignored until [resume], so unwinding code cannot disturb the
          chosen crash image *)
  mutable media_free_at : float;
      (** virtual time the media finishes its last accepted transfer; the
          shared-bandwidth contention model (multi-actor only) queues a new
          transfer behind it, M/D/1-style in dispatch order *)
  (* --- media faults (PR 5) --- *)
  faults : Faults.t option;
      (** outcome counters for the fault plane; the media-fault state
          itself lives in the tables below *)
  poison : (int, unit) Hashtbl.t;
      (** poisoned cache lines (by line index): a load served from media
          raises {!Faults.Poisoned}; a full-line write clears the poison,
          like a real PM DIMM's full-line-write clear *)
  quarantined : (int, unit) Hashtbl.t;
      (** lines whose content was lost and zeroed by a quarantine — the
          oracle's license for a zeroed range *)
  mutable last_poison : int;
      (** device address of the line behind the most recent
          {!Faults.Poisoned}; lets layers that only see the translated
          EIO find the line to quarantine. -1 = none *)
  (* --- per-device fence-site run state (PR 8) --- *)
  mutable site_hits : int array;
      (** executions per registered fence site on this device; grown on
          demand so a device created before every module registered is
          still safe *)
  mutable elided_fence_site : int;
      (** site id currently elided on this device; -1 = none. Per-device
          so parallel minimizer domains can each elide a different
          site. *)
}

let create ?(capacity = 64 * 1024 * 1024) ?faults ~clock ~timing ~stats () =
  assert (capacity mod block_size = 0);
  {
    capacity;
    persistent = Bytes.make capacity '\000';
    shadow = Bytes.empty;
    dirty = Array.make (capacity / line_size / lines_per_word) 0;
    dirty_count = 0;
    wear = Array.make (capacity / block_size) 0;
    clock;
    timing;
    stats;
    last_read_start = -1;
    last_read_end = -1;
    journal = None;
    halted = false;
    media_free_at = 0.;
    faults;
    poison = Hashtbl.create 16;
    quarantined = Hashtbl.create 16;
    last_poison = -1;
    site_hits = Array.make (Array.length !fence_site_names) 0;
    elided_fence_site = -1;
  }

let site_hits t i = if i < Array.length t.site_hits then t.site_hits.(i) else 0
let reset_site_hits t = Array.fill t.site_hits 0 (Array.length t.site_hits) 0
let elide_fence_site t i = t.elided_fence_site <- i
let clear_fence_elision t = t.elided_fence_site <- -1

let elided_site t =
  if t.elided_fence_site < 0 then None else Some t.elided_fence_site

let capacity t = t.capacity
let check_range t addr len = addr >= 0 && len >= 0 && addr + len <= t.capacity

let charge_media t ns =
  (* Shared-bandwidth contention: with several actors the media is a
     deterministic M/D/1-style server — a transfer dispatched while the
     device is still busy waits for [media_free_at] first, then occupies
     the device for [ns / pm_channels] (DIMM interleave absorbs that much
     parallelism; the issuing actor still experiences the full [ns]
     latency). Single-actor clocks are monotone, so the branch can only
     ever charge a wait when a second actor exists; it stays inert (and
     bit-identical to the pre-actor model) otherwise. *)
  let obs = Simclock.obs t.clock in
  if Simclock.multi t.clock then begin
    let now = Simclock.now t.clock in
    if t.media_free_at > now then begin
      let wait = t.media_free_at -. now in
      Obs.push obs Obs.Bw_wait;
      Simclock.advance t.clock wait;
      Obs.pop obs;
      t.stats.Stats.bw_wait_ns <- t.stats.Stats.bw_wait_ns +. wait;
      let a = Simclock.current t.clock in
      a.Simclock.a_bw_wait_ns <- a.Simclock.a_bw_wait_ns +. wait
    end;
    t.media_free_at <-
      Simclock.now t.clock
      +. (ns /. float_of_int (max 1 t.timing.Timing.pm_channels));
    let a = Simclock.current t.clock in
    a.Simclock.a_media_ns <- a.Simclock.a_media_ns +. ns
  end;
  Obs.push obs Obs.Media;
  Simclock.advance t.clock ns;
  Obs.pop obs;
  t.stats.Stats.media_ns <- t.stats.Stats.media_ns +. ns

let add_wear t addr len =
  let first = addr / block_size and last = (addr + len - 1) / block_size in
  for b = first to last do
    t.wear.(b) <- t.wear.(b) + 1
  done

(* ------------------------------------------------------------------ *)
(* Dirty-line bitmap index                                              *)
(* ------------------------------------------------------------------ *)

let ensure_shadow t =
  if Bytes.length t.shadow = 0 then t.shadow <- Bytes.create t.capacity

let popcount32 n =
  let n = n - ((n lsr 1) land 0x55555555) in
  let n = (n land 0x33333333) + ((n lsr 2) land 0x33333333) in
  let n = (n + (n lsr 4)) land 0x0F0F0F0F in
  (n * 0x01010101) lsr 24 land 0x3F

(* Bits [lo..hi] of a word, inclusive. *)
let range_mask lo hi = ((1 lsl (hi - lo + 1)) - 1) lsl lo

let line_dirty t line =
  t.dirty.(line lsr 5) land (1 lsl (line land 31)) <> 0

let bump_dirty t added =
  t.dirty_count <- t.dirty_count + added;
  if t.dirty_count > t.stats.Stats.dirty_lines_hwm then
    t.stats.Stats.dirty_lines_hwm <- t.dirty_count

(** Seed the shadow copy of a clean line from the durable image and mark it
    dirty; no-op on already-dirty lines (their shadow content is newest). *)
let init_line_if_clean t line =
  let w = line lsr 5 and bit = 1 lsl (line land 31) in
  if t.dirty.(w) land bit = 0 then begin
    Bytes.blit t.persistent (line * line_size) t.shadow (line * line_size)
      line_size;
    t.dirty.(w) <- t.dirty.(w) lor bit;
    bump_dirty t 1
  end

(** Set every bit in [first..last], counting only newly-set bits. *)
let mark_range_dirty t first last =
  let wf = first lsr 5 and wl = last lsr 5 in
  for w = wf to wl do
    let lo = if w = wf then first land 31 else 0 in
    let hi = if w = wl then last land 31 else 31 in
    let mask =
      if lo = 0 && hi = 31 then word_mask else range_mask lo hi
    in
    let added = mask land lnot t.dirty.(w) in
    if added <> 0 then begin
      t.dirty.(w) <- t.dirty.(w) lor mask;
      bump_dirty t (popcount32 added)
    end
  done

(** Write every dirty line in [first..last] back to the durable image
    (coalescing consecutive lines into one blit) and clear its bit. Charges
    nothing — callers account for the operation that triggered it. *)
let writeback_dirty_range t first last =
  let wf = first lsr 5 and wl = last lsr 5 in
  for w = wf to wl do
    let lo = if w = wf then first land 31 else 0 in
    let hi = if w = wl then last land 31 else 31 in
    let mask =
      if lo = 0 && hi = 31 then word_mask else range_mask lo hi
    in
    let bits = t.dirty.(w) land mask in
    if bits <> 0 then begin
      let b = ref lo in
      while !b <= hi do
        if bits land (1 lsl !b) = 0 then incr b
        else begin
          let s = !b in
          while !b <= hi && bits land (1 lsl !b) <> 0 do incr b done;
          let off = ((w lsl 5) + s) * line_size in
          Bytes.blit t.shadow off t.persistent off ((!b - s) * line_size)
        end
      done;
      t.dirty.(w) <- t.dirty.(w) land lnot mask;
      t.dirty_count <- t.dirty_count - popcount32 bits
    end
  done

(** Last line of the maximal run starting at [line] (bounded by [last])
    whose lines all share [line]'s dirtiness [d]; whole bitmap words are
    skipped 32 lines at a time. *)
let span_end t ~d ~line ~last =
  let l = ref line in
  let continue = ref true in
  while !continue && !l < last do
    let next = !l + 1 in
    if next land 31 = 0 && last - next >= 31 then begin
      (* a full word ahead: skip it wholesale when uniform *)
      let w = t.dirty.(next lsr 5) in
      if d && w = word_mask then l := next + 31
      else if (not d) && w = 0 then l := next + 31
      else if line_dirty t next = d then l := next
      else continue := false
    end
    else if line_dirty t next = d then l := next
    else continue := false
  done;
  !l

(* ------------------------------------------------------------------ *)
(* Persist-order journal hooks                                          *)
(*                                                                      *)
(* The journal mirrors, per cache line, the sequence of contents that    *)
(* could be the line's post-crash state: the fence-committed base plus   *)
(* every store since. Under x86-TSO with ADR, a crash leaves each line   *)
(* at its base or at any single later version (caches may evict          *)
(* speculatively; clwb/NT stores may or may not have completed before    *)
(* the power loss), so the per-line choice space is "keep the first k    *)
(* versions" for k in 0..n. A fence commits the newest version that has  *)
(* reached the persistence domain and keeps cached-only newer versions   *)
(* pending. All hooks are passive: they never touch simulated time.      *)
(* ------------------------------------------------------------------ *)

let j_touch j t line =
  match Hashtbl.find_opt j.jlines line with
  | Some jl -> jl
  | None ->
      let jl =
        {
          jbase = Bytes.sub t.persistent (line * line_size) line_size;
          jversions = [];
        }
      in
      Hashtbl.add j.jlines line jl;
      jl

(** The line's newest cached content reached the persistence domain
    (clwb, or the writeback an NT store forces). *)
let j_reached t jl line =
  match jl.jversions with
  | v :: _ -> v.reached <- true
  | [] ->
      (* dirty line whose store predates journal_begin: record its cached
         content as the sole (reached) version *)
      jl.jversions <-
        [
          {
            vdata = Bytes.sub t.shadow (line * line_size) line_size;
            nt = false;
            reached = true;
          };
        ]

(** The line's current frontier content: newest pending version, or the
    fence-committed base when nothing is pending. *)
let j_frontier jl =
  match jl.jversions with v :: _ -> v.vdata | [] -> jl.jbase

(** After a temporal store: push one unreached version per touched line,
    holding the line's full post-store cached content. *)
let j_store t ~addr ~len =
  match t.journal with
  | None -> ()
  | Some j ->
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        let jl = j_touch j t line in
        let vdata = Bytes.sub t.shadow (line * line_size) line_size in
        (* identical content, identical crash outcomes: surviving the
           duplicate is indistinguishable from surviving its predecessor *)
        if not (j.j_dedup && Bytes.equal vdata (j_frontier jl)) then
          jl.jversions <-
            { vdata; nt = false; reached = false } :: jl.jversions
      done

(** Before an NT store's writeback/blit: capture line bases and mark
    cached content of covered dirty lines as reached (the store forces
    their writeback). Must run before [persistent] is modified. *)
let j_store_nt_pre t ~addr ~len =
  match t.journal with
  | None -> ()
  | Some j ->
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        let jl = j_touch j t line in
        if t.dirty_count > 0 && line_dirty t line then j_reached t jl line
      done

(** After an NT store's blit: push one reached NT version per line with
    the line's full post-store durable content. *)
let j_store_nt_post t ~addr ~len =
  match t.journal with
  | None -> ()
  | Some j ->
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        let jl = j_touch j t line in
        let vdata = Bytes.sub t.persistent (line * line_size) line_size in
        if j.j_dedup && Bytes.equal vdata (j_frontier jl) then
          (* content already at the frontier; the NT store still reaches
             the persistence domain, so promote the frontier (a tear
             against identical content is a no-op) *)
          (match jl.jversions with
          | v :: _ -> v.reached <- true
          | [] -> () (* equals the committed base: nothing new pending *))
        else
          jl.jversions <- { vdata; nt = true; reached = true } :: jl.jversions
      done

(** Before a flush writes dirty lines back: mark their newest cached
    versions reached. Must run before [persistent] is modified. *)
let j_flush t ~addr ~len =
  match t.journal with
  | None -> ()
  | Some j ->
      if t.dirty_count > 0 then begin
        let first = addr / line_size and last = (addr + len - 1) / line_size in
        for line = first to last do
          if line_dirty t line then begin
            let jl = j_touch j t line in
            j_reached t jl line
          end
        done
      end

(** Per-line pending summary, sorted by line for determinism. *)
let pending_summary j =
  let acc = ref [] in
  Hashtbl.iter
    (fun line jl ->
      if jl.jversions <> [] then begin
        let n = List.length jl.jversions in
        let mask = ref 0 in
        List.iteri
          (fun i v -> if v.nt then mask := !mask lor (1 lsl (n - 1 - i)))
          jl.jversions;
        acc := { p_line = line; p_versions = n; p_nt_mask = !mask } :: !acc
      end)
    j.jlines;
  let arr = Array.of_list !acc in
  Array.sort (fun a b -> compare a.p_line b.p_line) arr;
  arr

(** Fence commit: for each line, the newest reached version becomes the
    new base; versions older than it can no longer survive a crash and
    are dropped; cached-only newer versions stay pending. *)
let commit_journal j =
  Hashtbl.iter
    (fun _ jl ->
      match jl.jversions with
      | [] -> ()
      | vs -> (
          let rec split kept = function
            | [] -> None
            | v :: rest ->
                if v.reached then Some (List.rev kept, v)
                else split (v :: kept) rest
          in
          match split [] vs with
          | None -> ()
          | Some (newer, r) ->
              Bytes.blit r.vdata 0 jl.jbase 0 line_size;
              jl.jversions <- newer))
    j.jlines

(* Crash-state application --------------------------------------------- *)

(* Common post-crash reset: the cache is gone, read adjacency is
   meaningless, and the fast/slow-path hit counters restart so post-crash
   resource tables describe the cold simulator, not the pre-crash run. *)
let crash_common t =
  if t.dirty_count > 0 then begin
    Array.fill t.dirty 0 (Array.length t.dirty) 0;
    t.dirty_count <- 0
  end;
  t.last_read_start <- -1;
  t.last_read_end <- -1;
  t.stats.Stats.fast_path_hits <- 0;
  t.stats.Stats.slow_path_hits <- 0

(* Write one survivor choice into the durable image. [s_keep] is clamped
   to the line's pending-version count. *)
let apply_survivor t j s =
  match Hashtbl.find_opt j.jlines s.s_line with
  | None -> ()
  | Some jl ->
      let n = List.length jl.jversions in
      let keep = max 0 (min n s.s_keep) in
      (* [jversions] is newest-first; version [k] counts oldest-first *)
      let version k = List.nth jl.jversions (n - k) in
      let content =
        Bytes.copy (if keep = 0 then jl.jbase else (version keep).vdata)
      in
      if keep > 0 && s.s_tear land 0xFF <> 0 then begin
        let prev = if keep = 1 then jl.jbase else (version (keep - 1)).vdata in
        for c = 0 to 7 do
          if s.s_tear land (1 lsl c) <> 0 then
            Bytes.blit prev (c * 8) content (c * 8) 8
        done
      end;
      Bytes.blit content 0 t.persistent (s.s_line * line_size) line_size

(** Crash leaving a chosen subset of pending stores durable. Lines not
    named in [survivors] default to their newest pending content (every
    store to them persisted); a [survivor] entry reverts its line to an
    earlier version — optionally with an 8-byte-granularity tear against
    the version below it. The pending journal state is consumed. *)
let crash_partial t ~survivors =
  match t.journal with
  | None -> invalid_arg "Device.crash_partial: journaling is off"
  | Some j ->
      Hashtbl.iter
        (fun line jl ->
          match jl.jversions with
          | [] -> ()
          | v :: _ ->
              Bytes.blit v.vdata 0 t.persistent (line * line_size) line_size)
        j.jlines;
      List.iter (apply_survivor t j) survivors;
      crash_common t;
      t.stats.Stats.partial_crashes <- t.stats.Stats.partial_crashes + 1;
      Hashtbl.reset j.jlines

(* ------------------------------------------------------------------ *)
(* Stores                                                               *)
(* ------------------------------------------------------------------ *)

(** Temporal store: data lands in the CPU cache and is lost on crash unless
    flushed. *)
let store t ~addr src ~off ~len =
  assert (check_range t addr len);
  if len > 0 && not t.halted then begin
    Simclock.advance t.clock
      (float_of_int len *. t.timing.Timing.cache_store_per_byte);
    ensure_shadow t;
    let first = addr / line_size and last = (addr + len - 1) / line_size in
    (* boundary lines may be partially covered: their bytes outside
       [addr, addr+len) must come from the durable image when clean;
       interior lines are fully overwritten below *)
    init_line_if_clean t first;
    if last <> first then init_line_if_clean t last;
    if last > first + 1 then mark_range_dirty t (first + 1) (last - 1);
    Bytes.blit src off t.shadow addr len;
    j_store t ~addr ~len
  end

(** Non-temporal store: bypasses the cache; durable once a subsequent fence
    orders it (ADR makes it durable on arrival, the fence is ordering). *)
let store_nt t ~addr src ~off ~len =
  assert (check_range t addr len);
  if len > 0 && not t.halted then begin
    let obs = Simclock.obs t.clock in
    let a = Simclock.current t.clock in
    let t0 = a.Simclock.a_now in
    j_store_nt_pre t ~addr ~len;
    if t.dirty_count = 0 then
      t.stats.Stats.fast_path_hits <- t.stats.Stats.fast_path_hits + 1
    else begin
      (* a covered line may hold older cached data; the NT store must
         invalidate it (the cached content reaches the durable image first,
         then the store overwrites its part) *)
      t.stats.Stats.slow_path_hits <- t.stats.Stats.slow_path_hits + 1;
      writeback_dirty_range t (addr / line_size) ((addr + len - 1) / line_size)
    end;
    Bytes.blit src off t.persistent addr len;
    (* a fully-overwritten poisoned line is healed: the write replaces the
       bad ECC word wholesale (partially-covered boundary lines keep their
       poison — the device would have to read-modify-write them) *)
    if Hashtbl.length t.poison > 0 then begin
      let first_full = (addr + line_size - 1) / line_size
      and last_full = ((addr + len) / line_size) - 1 in
      for line = first_full to last_full do
        Hashtbl.remove t.poison line
      done
    end;
    j_store_nt_post t ~addr ~len;
    charge_media t (Timing.nt_write_cost t.timing len);
    t.stats.Stats.nt_stores <- t.stats.Stats.nt_stores + 1;
    t.stats.Stats.pm_write_bytes <- t.stats.Stats.pm_write_bytes + len;
    add_wear t addr len;
    if Obs.tracing obs then
      Obs.emit obs ~name:"pm:w" ~cat:Obs.Media ~actor:a.Simclock.aid ~t0
        ~t1:a.Simclock.a_now
  end

(* ------------------------------------------------------------------ *)
(* Flush / fence                                                        *)
(* ------------------------------------------------------------------ *)

(** An instrumented call site executed (only live devices count: a halted
    device is unwinding out of a chosen crash image). *)
let site_hit site t =
  if site >= 0 && not t.halted then begin
    if site >= Array.length t.site_hits then begin
      let grown = Array.make (Array.length !fence_site_names) 0 in
      Array.blit t.site_hits 0 grown 0 (Array.length t.site_hits);
      t.site_hits <- grown
    end;
    t.site_hits.(site) <- t.site_hits.(site) + 1
  end

let site_elided site t = site >= 0 && site = t.elided_fence_site

(** Flush (clwb) every dirty line intersecting [addr, addr+len): only set
    bits in the range are visited, clean words are skipped wholesale.
    [site]: registered call-site id; an elided site skips the whole flush
    — writebacks, charges and stats — exactly as if the clwb loop were
    deleted from the source. *)
let flush ?(site = -1) t ~addr ~len =
  assert (check_range t addr len);
  site_hit site t;
  if len > 0 && (not t.halted) && not (site_elided site t) then begin
    j_flush t ~addr ~len;
    if t.dirty_count = 0 then
      t.stats.Stats.fast_path_hits <- t.stats.Stats.fast_path_hits + 1
    else begin
      t.stats.Stats.slow_path_hits <- t.stats.Stats.slow_path_hits + 1;
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      let wf = first lsr 5 and wl = last lsr 5 in
      for w = wf to wl do
        let lo = if w = wf then first land 31 else 0 in
        let hi = if w = wl then last land 31 else 31 in
        let mask =
          if lo = 0 && hi = 31 then word_mask else range_mask lo hi
        in
        let bits = t.dirty.(w) land mask in
        if bits <> 0 then begin
          for b = lo to hi do
            if bits land (1 lsl b) <> 0 then begin
              let line = (w lsl 5) + b in
              let off = line * line_size in
              Bytes.blit t.shadow off t.persistent off line_size;
              (* full-line writeback heals a poisoned line, as in store_nt *)
              if Hashtbl.length t.poison > 0 then Hashtbl.remove t.poison line;
              Simclock.advance t.clock t.timing.Timing.clwb;
              charge_media t (Timing.nt_write_cost t.timing line_size);
              t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
              t.stats.Stats.pm_write_bytes <-
                t.stats.Stats.pm_write_bytes + line_size;
              add_wear t off line_size
            end
          done;
          t.dirty.(w) <- t.dirty.(w) land lnot mask;
          t.dirty_count <- t.dirty_count - popcount32 bits
        end
      done
    end
  end

(** [site]: registered call-site id; an elided site skips the whole fence
    — no journal commit, no armed-crash trip, no time charge, no stats —
    exactly as if the sfence were deleted from the source. *)
let fence ?(site = -1) t =
  site_hit site t;
  if (not t.halted) && not (site_elided site t) then begin
    (match t.journal with
    | None -> ()
    | Some j ->
        (* record the choice space a crash at this fence would face, then
           either trip the armed crash or commit reached versions *)
        Hashtbl.replace j.j_fence_pending j.j_fences (pending_summary j);
        let here = j.j_fences in
        j.j_fences <- here + 1;
        if j.j_trip_fence = here then begin
          crash_partial t ~survivors:j.j_trip_survivors;
          t.halted <- true;
          raise Crashed
        end
        else commit_journal j);
    Simclock.advance t.clock t.timing.Timing.sfence;
    t.stats.Stats.fences <- t.stats.Stats.fences + 1
  end

(* ------------------------------------------------------------------ *)
(* Loads                                                                *)
(* ------------------------------------------------------------------ *)

(** Load [len] bytes at [addr] into [dst]. Dirty (cached) lines are served
    from the cache at cache speed; the rest is charged PM media cost, with
    the first-access latency picked by read adjacency — continuing where
    the last load ended, or exactly repeating it, counts as sequential. *)
let load t ~addr dst ~off ~len =
  assert (check_range t addr len);
  if len > 0 && not t.halted then begin
    (* machine-check analogue: a load touching a poisoned line that would
       be served from media (not from a dirty cached copy) faults before
       any time is charged or read-adjacency state is touched *)
    if Hashtbl.length t.poison > 0 then begin
      let first = addr / line_size and last = (addr + len - 1) / line_size in
      for line = first to last do
        if
          Hashtbl.mem t.poison line
          && not (t.dirty_count > 0 && line_dirty t line)
        then begin
          t.last_poison <- line * line_size;
          (match t.faults with Some f -> Faults.note_media f | None -> ());
          raise (Faults.Poisoned (line * line_size))
        end
      done
    end;
    let obs = Simclock.obs t.clock in
    let a = Simclock.current t.clock in
    let t0 = a.Simclock.a_now in
    let random =
      not
        (addr = t.last_read_end
        || (addr = t.last_read_start && addr + len = t.last_read_end))
    in
    t.last_read_start <- addr;
    t.last_read_end <- addr + len;
    if t.dirty_count = 0 then begin
      (* clean device: one blit, all bytes at PM media cost *)
      t.stats.Stats.fast_path_hits <- t.stats.Stats.fast_path_hits + 1;
      Bytes.blit t.persistent addr dst off len;
      charge_media t (Timing.pm_read_cost t.timing ~random len);
      t.stats.Stats.pm_read_bytes <- t.stats.Stats.pm_read_bytes + len
    end
    else begin
      t.stats.Stats.slow_path_hits <- t.stats.Stats.slow_path_hits + 1;
      let last = (addr + len - 1) / line_size in
      let pos = ref addr and doff = ref off and remaining = ref len in
      let cached = ref 0 and uncached = ref 0 in
      while !remaining > 0 do
        let line = !pos / line_size in
        let d = line_dirty t line in
        let stop = span_end t ~d ~line ~last in
        let n = min !remaining (((stop + 1) * line_size) - !pos) in
        if d then begin
          Bytes.blit t.shadow !pos dst !doff n;
          cached := !cached + n
        end
        else begin
          Bytes.blit t.persistent !pos dst !doff n;
          uncached := !uncached + n
        end;
        pos := !pos + n;
        doff := !doff + n;
        remaining := !remaining - n
      done;
      if !cached > 0 then
        Simclock.advance t.clock
          (float_of_int !cached *. t.timing.Timing.cache_read_per_byte);
      if !uncached > 0 then begin
        charge_media t (Timing.pm_read_cost t.timing ~random !uncached);
        t.stats.Stats.pm_read_bytes <- t.stats.Stats.pm_read_bytes + !uncached
      end
    end;
    if Obs.tracing obs then
      Obs.emit obs ~name:"pm:r" ~cat:Obs.Media ~actor:a.Simclock.aid ~t0
        ~t1:a.Simclock.a_now
  end

(** Convenience wrappers over whole buffers. *)
let load_bytes t ~addr ~len =
  let b = Bytes.create len in
  load t ~addr b ~off:0 ~len;
  b

let store_nt_bytes t ~addr b = store_nt t ~addr b ~off:0 ~len:(Bytes.length b)
let store_bytes t ~addr b = store t ~addr b ~off:0 ~len:(Bytes.length b)

(* Shared zero buffer for [zero_nt]: only ever read from. *)
let zeros = Bytes.make 65536 '\000'

(** Write zeros with non-temporal stores (used to initialise log files). *)
let zero_nt t ~addr ~len =
  let pos = ref addr and remaining = ref len in
  while !remaining > 0 do
    let n = min !remaining (Bytes.length zeros) in
    store_nt t ~addr:!pos zeros ~off:0 ~len:n;
    pos := !pos + n;
    remaining := !remaining - n
  done

(** Crash: all cache lines not yet flushed (and not written with NT stores)
    are lost. The durable image is untouched — and so are the wear counters
    and any poisoned/quarantined lines: media damage is physical and
    survives a power cycle (only {!reset_faults} clears it, for tests that
    reuse a device as if it were new). *)
let crash t =
  crash_common t;
  match t.journal with Some j -> Hashtbl.reset j.jlines | None -> ()

(** Number of dirty (would-be-lost) cache lines; exposed for tests. *)
let dirty_lines t = t.dirty_count

let wear_of_block t b = t.wear.(b)
let max_wear t = Array.fold_left max 0 t.wear

let total_wear t = Array.fold_left ( + ) 0 t.wear

(** Peek at the durable image without charging time (test/debug only). *)
let peek_persistent t ~addr ~len = Bytes.sub t.persistent addr len

(** Overwrite the durable image directly, bypassing the cache model and
    all cost accounting — the bit-rot hook tests use to flip single bits
    in durable structures (test/debug only). *)
let poke_persistent t ~addr b ~off ~len =
  assert (check_range t addr len);
  Bytes.blit b off t.persistent addr len

(* ------------------------------------------------------------------ *)
(* Media faults: poisoned lines, worn blocks, quarantine (PR 5)         *)
(* ------------------------------------------------------------------ *)

let poison_line t ~addr =
  assert (check_range t addr 1);
  Hashtbl.replace t.poison (addr / line_size) ()

let is_poisoned t ~addr = Hashtbl.mem t.poison (addr / line_size)
let poisoned_count t = Hashtbl.length t.poison
let is_quarantined t ~addr = Hashtbl.mem t.quarantined (addr / line_size)
let quarantined_count t = Hashtbl.length t.quarantined
let last_poison t = t.last_poison

(** Any poisoned line inside [addr, addr+len)? (Host-side; no charges.) *)
let range_has_poison t ~addr ~len =
  Hashtbl.length t.poison > 0
  && begin
       let first = addr / line_size and last = (addr + len - 1) / line_size in
       let found = ref false in
       for line = first to last do
         if Hashtbl.mem t.poison line then found := true
       done;
       !found
     end

(** Give up on [addr, addr+len): zero it with NT stores (the patrol pays
    the honest media cost of the repair write) and mark every covered
    line quarantined — the differential oracle's license for reading
    zeros where data was lost. Clears the poison as a side effect of the
    full-line writes. *)
let quarantine t ~addr ~len =
  assert (check_range t addr len);
  let first = addr / line_size and last = (addr + len - 1) / line_size in
  zero_nt t ~addr:(first * line_size) ~len:((last - first + 1) * line_size);
  for line = first to last do
    Hashtbl.remove t.poison line;
    Hashtbl.replace t.quarantined line ()
  done;
  match t.faults with
  | Some f -> Faults.note_quarantined f (last - first + 1)
  | None -> ()

(** Blocks (4 KB indices) whose wear has reached [limit], ascending. *)
let worn_blocks t ~limit =
  let acc = ref [] in
  for b = Array.length t.wear - 1 downto 0 do
    if t.wear.(b) >= limit then acc := b :: !acc
  done;
  !acc

(** Does the block at device address [addr] need scrubbing — worn to
    [limit] or holding a poisoned line? *)
let block_needs_scrub t ~addr ~limit =
  t.wear.(addr / block_size) >= limit
  || range_has_poison t ~addr ~len:block_size

(** Scrubber migration: copy one 4 KB block from [src] to [dst] (device
    addresses, block-aligned), charging honest load/NT-store costs.
    Poisoned source lines cannot be read; they are zeroed at the
    destination and the destination line is marked quarantined (an
    existing quarantine marker travels with its line). Returns the
    number of lines whose data was lost. *)
let migrate_block t ~src ~dst =
  assert (src mod block_size = 0 && dst mod block_size = 0);
  let buf = Bytes.create line_size in
  let lost = ref 0 in
  for i = 0 to (block_size / line_size) - 1 do
    let s = src + (i * line_size) and d = dst + (i * line_size) in
    let sline = s / line_size in
    if
      Hashtbl.mem t.poison sline
      && not (t.dirty_count > 0 && line_dirty t sline)
    then begin
      store_nt t ~addr:d zeros ~off:0 ~len:line_size;
      Hashtbl.remove t.poison sline;
      Hashtbl.replace t.quarantined (d / line_size) ();
      incr lost
    end
    else begin
      load t ~addr:s buf ~off:0 ~len:line_size;
      store_nt t ~addr:d buf ~off:0 ~len:line_size;
      if Hashtbl.mem t.quarantined sline then
        Hashtbl.replace t.quarantined (d / line_size) ()
    end
  done;
  (match t.faults with
  | Some f when !lost > 0 -> Faults.note_quarantined f !lost
  | _ -> ());
  !lost

(** Clear all media-fault state — wear counters, poison, quarantine
    markers — as if the DIMM were factory-fresh. [crash] deliberately
    keeps all of it (media damage survives power cycles); this is the
    explicit reset for tests. *)
let reset_faults t =
  Array.fill t.wear 0 (Array.length t.wear) 0;
  Hashtbl.reset t.poison;
  Hashtbl.reset t.quarantined;
  t.last_poison <- -1

(* ------------------------------------------------------------------ *)
(* Persist-order journal API                                            *)
(* ------------------------------------------------------------------ *)

let journal_begin ?(dedup = false) t =
  t.journal <-
    Some
      {
        jlines = Hashtbl.create 256;
        j_fences = 0;
        j_fence_pending = Hashtbl.create 64;
        j_trip_fence = -1;
        j_trip_survivors = [];
        j_dedup = dedup;
      }

let journal_stop t = t.journal <- None
let journaling t = t.journal <> None

(** Fences observed since [journal_begin]; fence index [i] is the
    (i+1)-th fence the journalled run will execute. *)
let fence_count t = match t.journal with Some j -> j.j_fences | None -> 0

(** The pending-line summary captured just before fence [i] committed. *)
let fence_pending t i =
  match t.journal with
  | Some j -> ( try Hashtbl.find j.j_fence_pending i with Not_found -> [||])
  | None -> [||]

(** The pending-line summary right now (the choice space of a crash at
    the current point, e.g. at end of trace). *)
let pending_now t =
  match t.journal with Some j -> pending_summary j | None -> [||]

(** Arm a crash at fence index [fence]: when the journalled run reaches
    it, the device applies [survivors] via [crash_partial], halts (all
    further device operations no-op until [resume]), and raises
    [Crashed]. [fence = -1] disarms. *)
let arm_crash t ~fence ~survivors =
  match t.journal with
  | None -> invalid_arg "Device.arm_crash: journaling is off"
  | Some j ->
      j.j_trip_fence <- fence;
      j.j_trip_survivors <- survivors

(** Reactivate a device halted by an armed crash, so recovery can run
    against the chosen crash image. *)
let resume t = t.halted <- false
