(** Simulated byte-addressable persistent-memory device.

    Models the persistence behaviour of Intel Optane DC PMM under ADR:
    non-temporal stores are durable once they reach the memory controller,
    temporal stores live in the (volatile) CPU cache until the line is
    flushed. A crash discards every dirty cache line. All accesses charge
    simulated time on the shared clock and update the shared statistics. *)

val line_size : int
(** 64 bytes. *)

val block_size : int
(** 4096 bytes (wear-tracking granularity). *)

type t

val create :
  ?capacity:int -> ?faults:Faults.t -> clock:Simclock.t -> timing:Timing.t ->
  stats:Stats.t -> unit -> t
(** [faults] supplies the outcome counters the media-fault paths report
    into; the poison/wear/quarantine state itself lives in the device. *)

val capacity : t -> int

(** Temporal store: data lands in the CPU cache and is lost on crash
    unless flushed. *)
val store : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

(** Non-temporal store: bypasses the cache; durable once a subsequent
    fence orders it. Invalidates stale cached lines it covers. *)
val store_nt : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

(** Flush (clwb) every dirty line intersecting the range. [site] is a
    registered fence-site id (see {!register_fence_site}); an elided site
    skips the whole flush, as if the clwb loop were deleted. *)
val flush : ?site:int -> t -> addr:int -> len:int -> unit

(** Ordering fence (sfence). [site] as for {!flush}; an elided site skips
    the fence entirely — no journal commit, no time charge. *)
val fence : ?site:int -> t -> unit

(** {1 Fence-site registry (fence minimization)}

    Ordering instructions in the file-system layers register a named call
    site once (at module initialisation) and pass the id to [fence] and
    [flush]. The name registry is global but immutable after module
    initialisation — sites are source locations. All run state (hit
    counters, the elision mask) is per-device, so campaign domains
    running concurrently never observe each other. Eliding a site models
    deleting that sfence/clwb from the source; {!Crashcheck} exploration
    then proves the site redundant or exhibits a counterexample crash
    state. *)

val register_fence_site : string -> int
(** Register a named call site; returns its id. Must only be called from
    top-level module initialisers (single-domain program startup). *)

val fence_sites : unit -> (int * string) list
(** All registered sites, in registration order. *)

val fence_site_name : int -> string

val site_hits : t -> int -> int
(** Executions of the site on this device since its creation or the last
    {!reset_site_hits} (halted devices don't count; elided executions
    do). *)

val reset_site_hits : t -> unit

val elide_fence_site : t -> int -> unit
(** Suppress the given site on this device until {!clear_fence_elision}.
    At most one site is elided at a time per device (matching
    one-fence-at-a-time minimization). *)

val clear_fence_elision : t -> unit

val elided_site : t -> int option

(** Load into [dst]; dirty lines are served from the cache at cache speed,
    the rest is charged PM media cost with sequential/random latency
    picked by read adjacency (continuing where the last load ended, or
    exactly repeating it, counts as sequential).

    Raises {!Faults.Poisoned} — before charging any simulated time —
    when the range covers a poisoned line that would be served from
    media (a dirty cached copy masks the poison until writeback). *)
val load : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

val load_bytes : t -> addr:int -> len:int -> Bytes.t
val store_nt_bytes : t -> addr:int -> Bytes.t -> unit
val store_bytes : t -> addr:int -> Bytes.t -> unit

(** Write zeros with non-temporal stores (log-file initialisation). *)
val zero_nt : t -> addr:int -> len:int -> unit

(** Crash: all cache lines not yet flushed (and not written with NT
    stores) are lost; the durable image is untouched. Wear counters and
    poison/quarantine state survive (media damage is physical) — use
    {!reset_faults} to clear them. *)
val crash : t -> unit

(** Number of dirty (would-be-lost) cache lines; exposed for tests. *)
val dirty_lines : t -> int

(** Write-cycle counters per 4 KB block (PM endurance, §2.1). *)
val wear_of_block : t -> int -> int

val max_wear : t -> int
val total_wear : t -> int

(** Peek at the durable image without charging time (test/debug only). *)
val peek_persistent : t -> addr:int -> len:int -> Bytes.t

(** Overwrite the durable image directly, bypassing the cache model and
    all cost accounting (bit-rot test hook; test/debug only). *)
val poke_persistent : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

(** {1 Media faults (fault injection, PR 5)}

    Poisoned cache lines model uncorrectable PM media errors: a load
    that would be served from media raises {!Faults.Poisoned} (the
    machine-check analogue) before charging any time; a full-line write
    (NT store covering the line, or a flush writeback) heals the line.
    Worn blocks model endurance exhaustion via the per-block wear
    counters; they never fault — the scrubber migrates data off them.
    Quarantined lines mark data lost to a poisoned-line repair (zeroed);
    the differential oracle accepts zeros exactly there. *)

val poison_line : t -> addr:int -> unit
(** Poison the cache line containing [addr]. *)

val is_poisoned : t -> addr:int -> bool
val poisoned_count : t -> int

val range_has_poison : t -> addr:int -> len:int -> bool

val last_poison : t -> int
(** Device address of the line behind the most recent
    {!Faults.Poisoned} raise; -1 if none. Lets layers that only see a
    translated EIO find the line to quarantine. *)

val quarantine : t -> addr:int -> len:int -> unit
(** Zero [addr, addr+len) with NT stores (honest media cost) and mark
    every covered line quarantined; clears their poison. *)

val is_quarantined : t -> addr:int -> bool
val quarantined_count : t -> int

val worn_blocks : t -> limit:int -> int list
(** Blocks (4 KB indices) whose wear has reached [limit], ascending. *)

val block_needs_scrub : t -> addr:int -> limit:int -> bool
(** Block at device address [addr] is worn to [limit] or holds poison. *)

val migrate_block : t -> src:int -> dst:int -> int
(** Scrubber migration: copy one block-aligned 4 KB block, charging
    honest load/NT-store costs; poisoned source lines are zeroed at the
    destination and marked quarantined there. Returns lines lost. *)

val reset_faults : t -> unit
(** Clear wear counters, poison and quarantine markers (factory-fresh
    DIMM). [crash] deliberately keeps all of them. *)

(** {1 Persist-order journal (crash-state exploration)}

    When journaling is on, the device records per cache line the sequence
    of contents the line could hold after a crash, under x86-TSO persist
    semantics with ADR: everything committed by the last sfence is
    durable; any later store — flushed, non-temporal, or merely cached
    (caches evict speculatively) — may or may not have reached the
    persistence domain. Per line, the legal post-crash contents are the
    fence-committed base or any single later version; choices across
    lines are independent. Journaling is passive — it never changes
    simulated-time charges. *)

(** Survivor choice for one line in a partial crash: keep the first
    [s_keep] pending versions, counted oldest-first (0 = revert to the
    fence-committed base). [s_tear] is an 8-bit mask over the kept
    frontier version's eight 8-byte chunks; set bits revert that chunk to
    the version below — modelling a non-temporal store that only
    partially reached media (x86 guarantees 8-byte atomicity, nothing
    wider). *)
type survivor = { s_line : int; s_keep : int; s_tear : int }

(** Pending summary of one line: [p_versions] pending versions; bit [k-1]
    of [p_nt_mask] is set iff version [k] (1-based, oldest-first) came
    from a non-temporal store (and may therefore tear sub-line). *)
type pending_line = { p_line : int; p_versions : int; p_nt_mask : int }

exception Crashed
(** Raised by [fence] when an armed crash trips. *)

val journal_begin : ?dedup:bool -> t -> unit
(** Start (or restart) persist-order journaling. Call at a quiescent
    point — ideally with no dirty lines and no armed crash. [dedup]
    (default false) collapses stores whose post-store line content equals
    the line's current frontier (newest pending version, or the base):
    identical content means identical crash outcomes, so the duplicate
    only multiplies the survivor space. Exhaustive litmus exploration
    turns this on; notably it erases all-zero jbd2 journal-block traffic
    over a zeroed journal area. *)

val journal_stop : t -> unit
val journaling : t -> bool

val fence_count : t -> int
(** Fences executed since [journal_begin]. *)

val fence_pending : t -> int -> pending_line array
(** [fence_pending t i] is the pending summary captured just before fence
    index [i] (0-based) committed — the choice space of a crash at that
    fence. Empty if [i] has not been reached. *)

val pending_now : t -> pending_line array
(** The pending summary right now (the choice space of a crash at the
    current point, e.g. at end of trace). *)

val crash_partial : t -> survivors:survivor list -> unit
(** Crash leaving a chosen subset of pending stores durable. Lines not
    named in [survivors] keep their newest pending content. Consumes the
    pending journal state and resets the cache like [crash]. *)

val arm_crash : t -> fence:int -> survivors:survivor list -> unit
(** When the run reaches fence index [fence], apply [crash_partial
    ~survivors], halt the device (every device operation becomes a no-op
    so unwinding code cannot disturb the crash image) and raise
    [Crashed]. [fence = -1] disarms. *)

val resume : t -> unit
(** Reactivate a halted device so recovery can run on the crash image. *)
