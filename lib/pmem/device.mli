(** Simulated byte-addressable persistent-memory device.

    Models the persistence behaviour of Intel Optane DC PMM under ADR:
    non-temporal stores are durable once they reach the memory controller,
    temporal stores live in the (volatile) CPU cache until the line is
    flushed. A crash discards every dirty cache line. All accesses charge
    simulated time on the shared clock and update the shared statistics. *)

val line_size : int
(** 64 bytes. *)

val block_size : int
(** 4096 bytes (wear-tracking granularity). *)

type t

val create :
  ?capacity:int -> clock:Simclock.t -> timing:Timing.t -> stats:Stats.t ->
  unit -> t

val capacity : t -> int

(** Temporal store: data lands in the CPU cache and is lost on crash
    unless flushed. *)
val store : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

(** Non-temporal store: bypasses the cache; durable once a subsequent
    fence orders it. Invalidates stale cached lines it covers. *)
val store_nt : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

(** Flush (clwb) every dirty line intersecting the range. *)
val flush : t -> addr:int -> len:int -> unit

(** Ordering fence (sfence). *)
val fence : t -> unit

(** Load into [dst]; dirty lines are served from the cache at cache speed,
    the rest is charged PM media cost with sequential/random latency
    picked by read adjacency (continuing where the last load ended, or
    exactly repeating it, counts as sequential). *)
val load : t -> addr:int -> Bytes.t -> off:int -> len:int -> unit

val load_bytes : t -> addr:int -> len:int -> Bytes.t
val store_nt_bytes : t -> addr:int -> Bytes.t -> unit
val store_bytes : t -> addr:int -> Bytes.t -> unit

(** Write zeros with non-temporal stores (log-file initialisation). *)
val zero_nt : t -> addr:int -> len:int -> unit

(** Crash: all cache lines not yet flushed (and not written with NT
    stores) are lost; the durable image is untouched. *)
val crash : t -> unit

(** Number of dirty (would-be-lost) cache lines; exposed for tests. *)
val dirty_lines : t -> int

(** Write-cycle counters per 4 KB block (PM endurance, §2.1). *)
val wear_of_block : t -> int -> int

val max_wear : t -> int
val total_wear : t -> int

(** Peek at the durable image without charging time (test/debug only). *)
val peek_persistent : t -> addr:int -> len:int -> Bytes.t
