(** Simulated mutual-exclusion locks for the contention model.

    Execution is host-sequential (one op runs to completion before the
    scheduler dispatches the next), so a lock never blocks the host: it
    only moves virtual time. [free_at] remembers when the last critical
    section ended in virtual time; an actor acquiring earlier than that is
    charged the wait ([free_at - now]) and its clock jumps to [free_at] —
    the deterministic serialization a kernel mutex imposes on overlapping
    critical sections.

    With a single registered actor the lock is inert (its clock is
    monotone, so no window can overlap), keeping single-client results
    bit-identical to the pre-actor model; uncontended acquisition cost is
    part of the calibrated per-op CPU constants. Re-entrant acquisition by
    the holder is harmless: [free_at] is only published at release, so a
    nested acquire sees a past timestamp and charges nothing. *)

type t = {
  l_name : string;
  mutable free_at : float;  (** virtual time the last holder released *)
  mutable contended : int;  (** host-side count of charged waits *)
}

let create name = { l_name = name; free_at = 0.; contended = 0 }
let name t = t.l_name
let contended t = t.contended

(** Charge the current actor for entering the critical section now. *)
let acquire t ~clock ~(stats : Stats.t) =
  if Simclock.multi clock then begin
    let now = Simclock.now clock in
    if t.free_at > now then begin
      let wait = t.free_at -. now in
      let obs = Simclock.obs clock in
      Obs.push obs Obs.Lock_wait;
      Simclock.advance clock wait;
      Obs.pop obs;
      t.contended <- t.contended + 1;
      stats.Stats.lock_wait_ns <- stats.Stats.lock_wait_ns +. wait;
      let a = Simclock.current clock in
      a.Simclock.a_lock_wait_ns <- a.Simclock.a_lock_wait_ns +. wait;
      if Obs.tracing obs then
        Obs.emit obs ~name:("lock:" ^ t.l_name) ~cat:Obs.Lock_wait
          ~actor:a.Simclock.aid ~t0:now ~t1:a.Simclock.a_now
    end
  end

(** Publish the end of the critical section. *)
let release t ~clock =
  if Simclock.multi clock then t.free_at <- Simclock.now clock

(** [with_ t ~clock ~stats f] runs [f] as one critical section. The lock
    is released even if [f] raises (e.g. a simulated crash mid-commit). *)
let with_ t ~clock ~stats f =
  acquire t ~clock ~stats;
  Fun.protect ~finally:(fun () -> release t ~clock) f
