(** Counters for everything the evaluation needs to report: PM traffic,
    ordering instructions, kernel crossings, page faults, journal activity.

    One [t] is shared by the device, the kernel file system and the
    user-space library so that a single snapshot describes a whole
    experiment. *)

type t = {
  mutable pm_read_bytes : int;
  mutable pm_write_bytes : int;  (** bytes that reached the PM media *)
  mutable nt_stores : int;  (** non-temporal store instructions issued *)
  mutable flushes : int;  (** clwb/clflush instructions *)
  mutable fences : int;  (** sfence instructions *)
  mutable syscalls : int;  (** kernel traps *)
  mutable page_faults : int;
  mutable page_faults_huge : int;  (** subset of faults served by 2MB pages *)
  mutable journal_commits : int;
  mutable journal_bytes : int;
  mutable relinks : int;
  mutable relink_copied_bytes : int;  (** partial-block copies during relink *)
  mutable log_entries : int;  (** U-Split operation-log entries written *)
  mutable staged_bytes : int;  (** bytes routed to staging files *)
  mutable mmap_setups : int;  (** new memory-mappings established *)
  mutable media_ns : float;
      (** simulated time spent on the PM media itself; software overhead of
          an experiment = total simulated time - media_ns *)
  mutable background_ns : float;
      (** work done by background threads (staging pre-allocation, deferred
          closes); charged here instead of the foreground clock, and
          reported by the resource-consumption experiment (§5.10) *)
  mutable lock_wait_ns : float;
      (** virtual time actors spent waiting on contended locks (inode,
          journal-commit, per-file); zero in single-actor runs *)
  mutable bw_wait_ns : float;
      (** virtual time actors spent queued behind other actors' transfers
          on the shared PM bandwidth; zero in single-actor runs *)
  (* --- host-side simulator observability (no simulated-time impact) --- *)
  mutable dirty_lines_hwm : int;
      (** high-water mark of simultaneously dirty cache lines on the device *)
  mutable fast_path_hits : int;
      (** device load/store_nt/flush calls served by the clean-range fast
          path (zero dirty lines: one blit, no per-line probes) *)
  mutable slow_path_hits : int;
      (** device calls that had to walk the dirty-line bitmap *)
  mutable partial_crashes : int;
      (** crash states applied via [Device.crash_partial] (crashcheck) *)
}

let create () =
  {
    pm_read_bytes = 0;
    pm_write_bytes = 0;
    nt_stores = 0;
    flushes = 0;
    fences = 0;
    syscalls = 0;
    page_faults = 0;
    page_faults_huge = 0;
    journal_commits = 0;
    journal_bytes = 0;
    relinks = 0;
    relink_copied_bytes = 0;
    log_entries = 0;
    staged_bytes = 0;
    mmap_setups = 0;
    media_ns = 0.;
    background_ns = 0.;
    lock_wait_ns = 0.;
    bw_wait_ns = 0.;
    dirty_lines_hwm = 0;
    fast_path_hits = 0;
    slow_path_hits = 0;
    partial_crashes = 0;
  }

let reset t =
  t.pm_read_bytes <- 0;
  t.pm_write_bytes <- 0;
  t.nt_stores <- 0;
  t.flushes <- 0;
  t.fences <- 0;
  t.syscalls <- 0;
  t.page_faults <- 0;
  t.page_faults_huge <- 0;
  t.journal_commits <- 0;
  t.journal_bytes <- 0;
  t.relinks <- 0;
  t.relink_copied_bytes <- 0;
  t.log_entries <- 0;
  t.staged_bytes <- 0;
  t.mmap_setups <- 0;
  t.media_ns <- 0.;
  t.background_ns <- 0.;
  t.lock_wait_ns <- 0.;
  t.bw_wait_ns <- 0.;
  t.dirty_lines_hwm <- 0;
  t.fast_path_hits <- 0;
  t.slow_path_hits <- 0;
  t.partial_crashes <- 0

let copy t = { t with pm_read_bytes = t.pm_read_bytes }

(** [diff later earlier] gives the counters accumulated between two
    snapshots. *)
let diff a b =
  {
    pm_read_bytes = a.pm_read_bytes - b.pm_read_bytes;
    pm_write_bytes = a.pm_write_bytes - b.pm_write_bytes;
    nt_stores = a.nt_stores - b.nt_stores;
    flushes = a.flushes - b.flushes;
    fences = a.fences - b.fences;
    syscalls = a.syscalls - b.syscalls;
    page_faults = a.page_faults - b.page_faults;
    page_faults_huge = a.page_faults_huge - b.page_faults_huge;
    journal_commits = a.journal_commits - b.journal_commits;
    journal_bytes = a.journal_bytes - b.journal_bytes;
    relinks = a.relinks - b.relinks;
    relink_copied_bytes = a.relink_copied_bytes - b.relink_copied_bytes;
    log_entries = a.log_entries - b.log_entries;
    staged_bytes = a.staged_bytes - b.staged_bytes;
    mmap_setups = a.mmap_setups - b.mmap_setups;
    media_ns = a.media_ns -. b.media_ns;
    background_ns = a.background_ns -. b.background_ns;
    lock_wait_ns = a.lock_wait_ns -. b.lock_wait_ns;
    bw_wait_ns = a.bw_wait_ns -. b.bw_wait_ns;
    (* a high-water mark is not additive: report the later snapshot's *)
    dirty_lines_hwm = a.dirty_lines_hwm;
    fast_path_hits = a.fast_path_hits - b.fast_path_hits;
    slow_path_hits = a.slow_path_hits - b.slow_path_hits;
    partial_crashes = a.partial_crashes - b.partial_crashes;
  }

let pp ppf t =
  Fmt.pf ppf
    "pm_read=%dB pm_write=%dB nt_stores=%d flushes=%d fences=%d syscalls=%d \
     faults=%d(huge %d) jcommits=%d jbytes=%d relinks=%d relink_copy=%dB \
     log_entries=%d staged=%dB mmaps=%d media=%.0fns bg=%.0fns \
     lockw=%.0fns bww=%.0fns dirty_hwm=%d fast=%d slow=%d pcrashes=%d"
    t.pm_read_bytes t.pm_write_bytes t.nt_stores t.flushes t.fences t.syscalls
    t.page_faults t.page_faults_huge t.journal_commits t.journal_bytes
    t.relinks t.relink_copied_bytes t.log_entries t.staged_bytes t.mmap_setups
    t.media_ns t.background_ns t.lock_wait_ns t.bw_wait_ns t.dirty_lines_hwm
    t.fast_path_hits t.slow_path_hits t.partial_crashes

(** Every counter as a (label, rendered value) row — the single source
    both human-readable tables below print from, so no field can be
    forgotten in one of them. *)
let rows t =
  let i = string_of_int and ns v = Printf.sprintf "%.0f ns" v in
  [
    ("pm read bytes", i t.pm_read_bytes);
    ("pm write bytes", i t.pm_write_bytes);
    ("nt stores", i t.nt_stores);
    ("flushes (clwb)", i t.flushes);
    ("fences (sfence)", i t.fences);
    ("syscalls", i t.syscalls);
    ("page faults", i t.page_faults);
    ("page faults (huge)", i t.page_faults_huge);
    ("journal commits", i t.journal_commits);
    ("journal bytes", i t.journal_bytes);
    ("relinks", i t.relinks);
    ("relink copied bytes", i t.relink_copied_bytes);
    ("log entries", i t.log_entries);
    ("staged bytes", i t.staged_bytes);
    ("mmap setups", i t.mmap_setups);
    ("media time", ns t.media_ns);
    ("background time", ns t.background_ns);
    ("lock wait", ns t.lock_wait_ns);
    ("bandwidth wait", ns t.bw_wait_ns);
    ("dirty lines HWM", i t.dirty_lines_hwm);
    ("fast-path hits", i t.fast_path_hits);
    ("slow-path hits", i t.slow_path_hits);
    ("partial crashes", i t.partial_crashes);
  ]

(** Multi-line human-readable dump of every counter (including the PR-3
    contention fields [lock_wait_ns]/[bw_wait_ns] the one-line [pp]
    render is easy to lose in). *)
let pp_table ppf t =
  let rows = rows t in
  let w = List.fold_left (fun w (l, _) -> max w (String.length l)) 0 rows in
  List.iter (fun (l, v) -> Fmt.pf ppf "  %-*s  %s@." w l v) rows

(** [pp_delta ppf (later, earlier)] prints the counters accumulated
    between two snapshots, skipping rows whose delta is zero. *)
let pp_delta ppf (later, earlier) =
  let d = diff later earlier in
  let rows =
    List.filter
      (fun (_, v) -> v <> "0" && v <> "0 ns" && v <> "-0 ns")
      (rows d)
  in
  if rows = [] then Fmt.pf ppf "  (no change)@."
  else
    let w = List.fold_left (fun w (l, _) -> max w (String.length l)) 0 rows in
    List.iter (fun (l, v) -> Fmt.pf ppf "  %-*s  +%s@." w l v) rows
