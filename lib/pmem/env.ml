(** An experiment environment: one PM device plus the clock, timing model and
    statistics shared by every layer of the stack. *)

(** Per-environment verification knobs. These used to be process-global
    [ref]s ([Oplog.verify_checksums], [Usplit.honest_degraded_writes]);
    campaigns running concurrently on separate domains need to flip them
    per stack, so they live on the env every layer already threads. *)
type checks = {
  mutable verify_checksums : bool;
      (** CRC-check op-log entries on decode; campaigns clear it to prove
          the oracle catches torn entries that slip past recovery *)
  mutable honest_degraded_writes : bool;
      (** degraded (kernel-path) writes really write; campaigns clear it
          to prove the fault oracle catches acknowledge-but-drop bugs *)
  mutable fams_commit_record : bool;
      (** fams msync appends its commit record before publishing;
          campaigns clear it to prove the crash oracle catches a torn
          msync (staged data published without the commit barrier) *)
}

let default_checks () =
  { verify_checksums = true; honest_degraded_writes = true;
    fams_commit_record = true }

type t = {
  clock : Simclock.t;
  timing : Timing.t;
  stats : Stats.t;
  dev : Device.t;
  obs : Obs.t;  (** same object [Simclock.advance] attributes into *)
  faults : Faults.t;
      (** fault-injection plane shared by every layer; disarmed (and
          charge-free) unless a faultcheck campaign arms it *)
  checks : checks;
}

(** [enable_timeline t] attaches a virtual-time {!Obs.Timeline} to the
    environment and registers the env-level counter sources: the 12
    attribution categories, the contention/journal/staging stats, and
    the fault-plane outcome counters. Harness layers register their own
    sources on top (allocator steals, journal-stream depth, per-tenant
    throughput). Returns the timeline for exports and further sources.
    Host-side only: sampling never charges simulated time. *)
let enable_timeline ?capacity ?period_ns ?widen t =
  let tl = Obs.Timeline.create ?capacity ?period_ns ?widen () in
  List.iter
    (fun c ->
      let i = Obs.cat_index c in
      Obs.Timeline.add_source tl
        ~name:("cat/" ^ Obs.cat_name c)
        (fun () -> t.obs.Obs.attr.(i)))
    Obs.all_cats;
  let stats = t.stats in
  Obs.Timeline.add_source tl ~name:"stats/media-ns" (fun () ->
      stats.Stats.media_ns);
  Obs.Timeline.add_source tl ~name:"stats/lock-wait-ns" (fun () ->
      stats.Stats.lock_wait_ns);
  Obs.Timeline.add_source tl ~name:"stats/bw-wait-ns" (fun () ->
      stats.Stats.bw_wait_ns);
  Obs.Timeline.add_source tl ~name:"stats/background-ns" (fun () ->
      stats.Stats.background_ns);
  Obs.Timeline.add_source tl ~name:"stats/journal-bytes" (fun () ->
      float_of_int stats.Stats.journal_bytes);
  Obs.Timeline.add_source tl ~name:"stats/staged-bytes" (fun () ->
      float_of_int stats.Stats.staged_bytes);
  let fc = Faults.counts t.faults in
  Obs.Timeline.add_source tl ~name:"faults/injected" (fun () ->
      float_of_int fc.Faults.injected);
  Obs.Timeline.add_source tl ~name:"faults/media" (fun () ->
      float_of_int fc.Faults.media);
  Obs.Timeline.add_source tl ~name:"faults/quarantined-lines" (fun () ->
      float_of_int fc.Faults.quarantined_lines);
  Obs.Timeline.add_source tl ~name:"faults/scrub-migrations" (fun () ->
      float_of_int fc.Faults.scrub_migrations);
  Obs.set_timeline t.obs tl;
  tl

let create ?(capacity = 64 * 1024 * 1024) ?(timing = Timing.default) ?obs
    ?checks () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let checks = match checks with Some c -> c | None -> default_checks () in
  let clock = Simclock.create ~obs () in
  let stats = Stats.create () in
  let faults = Faults.create () in
  let dev = Device.create ~capacity ~faults ~clock ~timing ~stats () in
  let t = { clock; timing; stats; dev; obs; faults; checks } in
  (match (Obs.Timeline.timeline_everything, Obs.timeline obs) with
  | true, None -> ignore (enable_timeline t)
  | _ -> ());
  t

let now t = Simclock.now t.clock
let advance t ns = Simclock.advance t.clock ns

(** Charge pure CPU time (no PM traffic). *)
let cpu t ns = Simclock.advance t.clock ns

(** [cpu_cat t cat ns] charges CPU time attributed to [cat] — the
    closure-free form for hot single charges. *)
let cpu_cat t cat ns =
  Obs.push t.obs cat;
  Simclock.advance t.clock ns;
  Obs.pop t.obs

(** [with_cat t cat f] attributes every charge in [f]'s dynamic extent to
    [cat] (unless an inner region pushes a more specific category). *)
let with_cat t cat f =
  Obs.push t.obs cat;
  match f () with
  | x ->
      Obs.pop t.obs;
      x
  | exception e ->
      Obs.pop t.obs;
      raise e

(** [with_span t ~cat ~name f] is [with_cat] that additionally emits a
    trace span covering [f]'s simulated extent when tracing is on. *)
let with_span t ~cat ~name f =
  Obs.push t.obs cat;
  let a = Simclock.current t.clock in
  let t0 = a.Simclock.a_now in
  match f () with
  | x ->
      Obs.pop t.obs;
      if Obs.tracing t.obs then
        Obs.emit t.obs ~name ~cat ~actor:a.Simclock.aid ~t0
          ~t1:a.Simclock.a_now;
      x
  | exception e ->
      Obs.pop t.obs;
      raise e

let snapshot_stats t = Stats.copy t.stats

(** [in_background t f] runs [f] on behalf of a background thread: the
    simulated time it consumes is moved off the foreground clock and
    accumulated in [stats.background_ns] (the paper keeps staging-file
    pre-allocation and similar work off the critical path, §4). The
    profiler attributes the same interval to [Obs.Background], keeping
    the accounting identity exact. *)
let in_background t f =
  let t0 = Simclock.now t.clock in
  Obs.enter_background t.obs;
  match f () with
  | x ->
      Obs.leave_background t.obs;
      let t1 = Simclock.now t.clock in
      Simclock.set_now t.clock t0;
      t.stats.Stats.background_ns <- t.stats.Stats.background_ns +. (t1 -. t0);
      x
  | exception e ->
      Obs.leave_background t.obs;
      raise e

(* --- attribution identity --- *)

(** Simulated time the profiler must account for: foreground time across
    all actors plus the background time rewound off their clocks. *)
let accountable_ns t =
  List.fold_left
    (fun acc a -> acc +. (a.Simclock.a_now -. a.Simclock.a_start))
    0.
    (Simclock.actors t.clock)
  +. t.stats.Stats.background_ns

(** [check_identity t] verifies sum(categories) = total simulated ns.
    The tolerance (1e-8 relative + 1e-6 ns absolute) covers only float
    summation order; any structural accounting bug is orders of
    magnitude larger. Returns [(attributed, accountable)] on success,
    raises [Failure] otherwise. *)
let check_identity t =
  let attributed = Obs.total t.obs in
  let accountable = accountable_ns t in
  let tol = (1e-8 *. Float.max attributed accountable) +. 1e-6 in
  if Float.abs (attributed -. accountable) > tol then
    failwith
      (Printf.sprintf
         "obs accounting identity violated: attributed %.6f ns <> accountable \
          %.6f ns (delta %.6f, tol %.6f)"
         attributed accountable
         (attributed -. accountable)
         tol);
  (* timeline leg: close the books with a final sample, then verify for
     every series evicted + sum(sampled deltas) = final cumulative value
     minus the value at registration — same 1e-8 relative tolerance *)
  (match Obs.timeline t.obs with
  | None -> ()
  | Some tl ->
      Obs.Timeline.flush tl ~now:(Simclock.now t.clock);
      ignore (Obs.Timeline.check tl));
  (attributed, accountable)

(* --- actors (multi-client support) --- *)

(** Register a fresh actor (simulated client thread); its clock starts at
    the current actor's time, so it cannot contend with work that finished
    before it was spawned. *)
let new_actor t ~name = Simclock.new_actor t.clock ~name

let current_actor t = Simclock.current t.clock

(** [run_as t a f] runs [f ()] with [a] as the current actor — all charges
    (CPU, media, lock waits) land on [a]'s clock — then restores the
    previous actor. *)
let run_as t a f =
  let prev = Simclock.current t.clock in
  Simclock.set_current t.clock a;
  Fun.protect ~finally:(fun () -> Simclock.set_current t.clock prev) f

(** [with_lock t l f] runs [f] as a critical section of [l], charging any
    contention wait to the current actor. *)
let with_lock t l f = Lock.with_ l ~clock:t.clock ~stats:t.stats f

(** [measure t f] returns [f ()] along with elapsed simulated time and the
    statistics delta. *)
let measure t f =
  let s0 = Stats.copy t.stats in
  let t0 = Simclock.now t.clock in
  let x = f () in
  let t1 = Simclock.now t.clock in
  (x, t1 -. t0, Stats.diff t.stats s0)
