(** An experiment environment: one PM device plus the clock, timing model and
    statistics shared by every layer of the stack. *)

type t = {
  clock : Simclock.t;
  timing : Timing.t;
  stats : Stats.t;
  dev : Device.t;
}

let create ?(capacity = 64 * 1024 * 1024) ?(timing = Timing.default) () =
  let clock = Simclock.create () in
  let stats = Stats.create () in
  let dev = Device.create ~capacity ~clock ~timing ~stats () in
  { clock; timing; stats; dev }

let now t = Simclock.now t.clock
let advance t ns = Simclock.advance t.clock ns

(** Charge pure CPU time (no PM traffic). *)
let cpu t ns = Simclock.advance t.clock ns

let snapshot_stats t = Stats.copy t.stats

(** [in_background t f] runs [f] on behalf of a background thread: the
    simulated time it consumes is moved off the foreground clock and
    accumulated in [stats.background_ns] (the paper keeps staging-file
    pre-allocation and similar work off the critical path, §4). *)
let in_background t f =
  let t0 = Simclock.now t.clock in
  let x = f () in
  let t1 = Simclock.now t.clock in
  Simclock.set_now t.clock t0;
  t.stats.Stats.background_ns <- t.stats.Stats.background_ns +. (t1 -. t0);
  x

(* --- actors (multi-client support) --- *)

(** Register a fresh actor (simulated client thread); its clock starts at
    the current actor's time, so it cannot contend with work that finished
    before it was spawned. *)
let new_actor t ~name = Simclock.new_actor t.clock ~name

let current_actor t = Simclock.current t.clock

(** [run_as t a f] runs [f ()] with [a] as the current actor — all charges
    (CPU, media, lock waits) land on [a]'s clock — then restores the
    previous actor. *)
let run_as t a f =
  let prev = Simclock.current t.clock in
  Simclock.set_current t.clock a;
  Fun.protect ~finally:(fun () -> Simclock.set_current t.clock prev) f

(** [with_lock t l f] runs [f] as a critical section of [l], charging any
    contention wait to the current actor. *)
let with_lock t l f = Lock.with_ l ~clock:t.clock ~stats:t.stats f

(** [measure t f] returns [f ()] along with elapsed simulated time and the
    statistics delta. *)
let measure t f =
  let s0 = Stats.copy t.stats in
  let t0 = Simclock.now t.clock in
  let x = f () in
  let t1 = Simclock.now t.clock in
  (x, t1 -. t0, Stats.diff t.stats s0)
