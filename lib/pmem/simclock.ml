(** Simulated time, in nanoseconds — per-actor virtual clocks.

    Every component of the simulation charges time here instead of measuring
    wall-clock time, which makes experiments deterministic and independent of
    the host machine.

    Each {e actor} (a simulated thread of execution: the main experiment
    driver, or one client of a multi-client workload) owns a virtual clock
    plus wait counters. A clock [t] designates one actor as {e current};
    every charge lands on the current actor's clock. Single-actor clocks —
    the default, and everything the single-client experiments use — behave
    exactly like the old global clock: [multi t] is false and the contention
    machinery (locks, shared-bandwidth queueing) stays inert, so those
    results are bit-identical to the pre-actor model. *)

type actor = {
  aid : int;  (** dense id, 0 for the initial actor *)
  a_name : string;
  mutable a_now : float;  (** this actor's virtual time, ns *)
  mutable a_start : float;  (** virtual time when the actor was created *)
  (* --- per-actor breakdowns (host-side observability) --- *)
  mutable a_lock_wait_ns : float;  (** time spent waiting on {!Lock}s *)
  mutable a_bw_wait_ns : float;  (** time queued on shared PM bandwidth *)
  mutable a_media_ns : float;  (** PM media time charged to this actor *)
}

type t = {
  mutable current : actor;
  mutable actors_rev : actor list;
      (** newest first — O(1) registration even for 10k-actor fleets;
          {!actors} reverses back to creation order *)
  mutable nactors : int;
  obs : Obs.t;
      (** attribution/tracing sink shared by the whole environment; sees
          every charge but never produces one (host time only) *)
}

let make_actor ~aid ~name ~at =
  {
    aid;
    a_name = name;
    a_now = at;
    a_start = at;
    a_lock_wait_ns = 0.;
    a_bw_wait_ns = 0.;
    a_media_ns = 0.;
  }

let create ?obs () =
  let a0 = make_actor ~aid:0 ~name:"main" ~at:0. in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  { current = a0; actors_rev = [ a0 ]; nactors = 1; obs }

let now t = t.current.a_now
let obs t = t.obs

(** [advance t ns] charges [ns] nanoseconds to the current actor. Every
    simulated charge in the system funnels through here, so attributing
    at this single point makes the profiler's categories exhaustive —
    and a single float compare against the next timeline boundary is all
    the telemetry costs when it is off ([next_sample] is [infinity]; the
    disabled path allocates nothing beyond the clock update itself,
    pinned by test). *)
let advance t ns =
  assert (ns >= 0.);
  Obs.attribute t.obs ns;
  let a = t.current in
  a.a_now <- a.a_now +. ns;
  if a.a_now >= t.obs.Obs.next_sample then Obs.timeline_tick t.obs a.a_now

(** Rewind/set the current actor's clock (background-work accounting). *)
let set_now t ns = t.current.a_now <- ns

let reset t = List.iter (fun a -> a.a_now <- a.a_start) t.actors_rev

(** [timed t f] runs [f ()] and returns its result together with the
    simulated time it consumed (on the current actor's clock). *)
let timed t f =
  let start = t.current.a_now in
  let x = f () in
  (x, t.current.a_now -. start)

(* --- actors --- *)

(** More than one actor registered: contention modelling is live. *)
let multi t = t.nactors > 1

let current t = t.current
let set_current t a = t.current <- a
(* In creation order (head is actor 0) — float accumulations over this
   list, like [Env.accountable_ns], depend on that order for bit-exact
   reproducibility. *)
let actors t = List.rev t.actors_rev

(** [new_actor t ~name] registers a fresh actor whose clock starts at the
    current actor's time ([?at] overrides), modelling a thread spawned
    now: it cannot contend with work that finished before it existed. *)
let new_actor ?at t ~name =
  let at = match at with Some v -> v | None -> t.current.a_now in
  let a = make_actor ~aid:t.nactors ~name ~at in
  t.actors_rev <- a :: t.actors_rev;
  t.nactors <- t.nactors + 1;
  a
