(** Sharded bitmap block allocator for the data area of the simulated
    ext4 file system.

    The device is divided into [shards] allocation groups (ext4
    block-group style), each with its own next-fit cursor, first-free
    hint, and lock. Actors pick a home group by allocation-group
    affinity (actor id mod shards) and steal from neighbours on
    group-local exhaustion; extents never cross a group boundary. With
    one shard (the default) placement is bit-identical to the original
    unsharded next-fit allocator.

    Allocation is next-fit with an optional goal block, and supports
    alignment requests so that staging files and large mmap regions can be
    backed by 2 MB-aligned physical extents (the huge-page discussion of
    paper §4). *)

type t

(** [create ~nblocks ()] makes an allocator over [nblocks] free blocks.
    [faults] wires in the injected-ENOSPC fault point: when the plane
    fires at the [Alloc] site, [alloc_extent] raises ENOSPC as if the
    device were full. [shards] (default 1) splits the device into that
    many allocation groups; [env] wires in the environment whose current
    actor provides group affinity and whose per-shard locks model
    allocator contention. *)
val create :
  ?faults:Faults.t -> ?env:Pmem.Env.t -> ?shards:int -> nblocks:int -> unit -> t

val nblocks : t -> int
val free_blocks : t -> int
val used_blocks : t -> int

(** Number of allocation groups. *)
val nshards : t -> int

(** Cross-shard allocations served by a neighbour after the home group
    came up empty. *)
val steals : t -> int

(** [alloc_extent t ~goal ~len] allocates up to [len] contiguous blocks,
    preferring to start at [goal]. Returns [(start, n)] with [1 <= n <= len],
    or raises [Errno.Error ENOSPC] if the device is full. The caller loops to
    obtain more extents when [n < len]. *)
val alloc_extent : t -> goal:int -> len:int -> int * int

(** [alloc_aligned t ~align ~len] allocates exactly [len] contiguous blocks
    starting at a multiple of [align] blocks, or returns [None] when no such
    region exists (fragmentation — the huge-page failure mode). The scan
    starts at the home shard's next-fit cursor and wraps, rather than
    walking the whole device from block 0. *)
val alloc_aligned : t -> align:int -> len:int -> int option

(** [alloc_many t ~goal ~len] allocates exactly [len] blocks as a list of
    extents. *)
val alloc_many : t -> goal:int -> len:int -> (int * int) list

val free_extent : t -> start:int -> len:int -> unit
val is_allocated : t -> int -> bool

(** Take blocks out of service permanently (worn out or holding
    unrecoverable lines): retired blocks are never allocated or freed
    again. Used blocks may be retired after their data is migrated. *)
val retire : t -> start:int -> len:int -> unit

val retired_blocks : t -> int

(** Fraction of free space that is in runs shorter than [run] blocks; a
    fragmentation measure used by the huge-page experiments. *)
val fragmentation : t -> run:int -> float
