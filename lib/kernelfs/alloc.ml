(** Sharded bitmap block allocator for the data area of the simulated
    ext4 file system.

    The device is split into [shards] equal allocation groups (ext4
    block-group style). Each shard owns a contiguous block range with its
    own next-fit cursor, first-free hint, and — when an environment is
    wired in — its own {!Pmem.Lock}, so concurrent actors allocating in
    different groups never serialize on a single allocator lock. An
    actor's {e home} shard is picked by allocation-group affinity
    (actor id mod shards); when the home shard has no suitable run the
    allocator steals from the neighbouring shards in ring order.

    Extents never cross a shard boundary (exactly as ext4 extents do not
    cross block groups), so every block's owning shard is a pure function
    of its number and [free_extent]/[retire] route per block without any
    reverse map.

    With [shards = 1] — the default, and what every single-client
    experiment uses — the search chain (goal, then next-fit cursor, then
    the start of the device) is the same chain the unsharded allocator
    ran, so placements and therefore all single-client results are
    bit-identical. The per-shard first-free hint is an exact
    optimisation, not a policy change: it maintains the invariant that
    every block below the hint is non-free, so starting a scan at
    [max start hint] returns precisely what a scan from [start] would
    have. *)

type shard = {
  base : int;  (** first block of this allocation group *)
  limit : int;  (** one past the last block *)
  mutable s_free : int;
  mutable s_next_fit : int;  (** absolute block number in [base, limit) *)
  mutable s_hint : int;
      (** first-free lower bound: every block in [base, s_hint) is
          non-free, so scans never re-walk the packed prefix *)
  s_lock : Pmem.Lock.t;
}

type t = {
  nblocks : int;
  bitmap : Bytes.t;
      (** one byte per block: '\000' free, '\001' used, '\002' retired
          (worn/poisoned block taken out of service — never free again) *)
  mutable free : int;
  mutable retired : int;
  shards : shard array;
  shard_blocks : int;  (** blocks per shard; the last takes the remainder *)
  mutable steals : int;  (** cross-shard allocations after home ENOSPC *)
  faults : Faults.t option;  (** injected-ENOSPC fault point *)
  env : Pmem.Env.t option;
      (** when present, each shard's critical section runs under its lock
          so concurrent actors contend per group, not globally *)
}

let create ?faults ?env ?(shards = 1) ~nblocks () =
  assert (nblocks > 0);
  let shards = max 1 (min shards nblocks) in
  let shard_blocks = nblocks / shards in
  let mk k =
    let base = k * shard_blocks in
    let limit = if k = shards - 1 then nblocks else base + shard_blocks in
    {
      base;
      limit;
      s_free = limit - base;
      s_next_fit = base;
      s_hint = base;
      s_lock = Pmem.Lock.create (Printf.sprintf "alloc-shard-%d" k);
    }
  in
  {
    nblocks;
    bitmap = Bytes.make nblocks '\000';
    free = nblocks;
    retired = 0;
    shards = Array.init shards mk;
    shard_blocks;
    steals = 0;
    faults;
    env;
  }

let nblocks t = t.nblocks
let free_blocks t = t.free
let used_blocks t = t.nblocks - t.free
let nshards t = Array.length t.shards
let steals t = t.steals
let is_free t b = Bytes.get t.bitmap b = '\000'
let is_allocated t b = not (is_free t b)

let shard_of t b =
  let k = min (b / t.shard_blocks) (Array.length t.shards - 1) in
  t.shards.(k)

(** The shard an actor's allocations gravitate to: allocation-group
    affinity by actor id, so a tenant's actors spread across groups and
    keep their files' blocks together without global coordination. *)
let home_shard t =
  match t.env with
  | Some env when Array.length t.shards > 1 ->
      (Pmem.Simclock.current env.Pmem.Env.clock).Pmem.Simclock.aid
      mod Array.length t.shards
  | _ -> 0

let with_shard t s f =
  match t.env with
  | Some env -> Pmem.Env.with_lock env s.s_lock f
  | None -> f ()

let mark_used t s ~start ~len =
  Bytes.fill t.bitmap start len '\001';
  t.free <- t.free - len;
  s.s_free <- s.s_free - len;
  (* the run just became non-free: extend the first-free lower bound when
     it abuts the packed prefix *)
  if start <= s.s_hint then s.s_hint <- max s.s_hint (start + len)

(** Length of the free run starting at [b], capped at [cap] and at the
    owning shard's limit — extents never cross allocation groups. *)
let run_length t s b cap =
  let n = ref 0 in
  while !n < cap && b + !n < s.limit && is_free t (b + !n) do
    incr n
  done;
  !n

(* First free block at or after [start] within shard [s]. Exact under the
   hint invariant: every block below [s_hint] is non-free, so scanning
   from [max start s_hint] visits the same first free block a scan from
   [start] would. Scans that begin at the lower bound also tighten it. *)
let find_free_from t s start =
  let from = max start s.s_hint in
  let b = ref from in
  while !b < s.limit && not (is_free t !b) do
    incr b
  done;
  if !b < s.limit then begin
    if start <= s.s_hint then s.s_hint <- !b;
    Some !b
  end
  else None

(* The unsharded allocator's search chain, run within one shard: prefer
   the goal (extends the previous extent of the same file), then the
   shard's next-fit cursor, then the shard base. With one shard this is
   exactly the original goal / next_fit / block-0 chain. *)
let alloc_in_shard t s ~goal ~len =
  if s.s_free = 0 then None
  else begin
    let try_at start =
      match find_free_from t s start with
      | None -> None
      | Some b ->
          let n = run_length t s b len in
          Some (b, n)
    in
    let goal = if goal >= s.base && goal < s.limit then goal else s.s_next_fit in
    let best =
      match try_at goal with
      | Some (b, n) when b = goal || n = len -> Some (b, n)
      | fallback -> (
          match try_at s.s_next_fit with
          | Some (b, n) when n = len -> Some (b, n)
          | other -> (
              match (fallback, other, try_at s.base) with
              | _, _, Some (b, n) when n = len -> Some (b, n)
              | Some r, _, _ -> Some r
              | _, Some r, _ -> Some r
              | _, _, r -> r))
    in
    match best with
    | None -> None
    | Some (b, n) ->
        mark_used t s ~start:b ~len:n;
        s.s_next_fit <- (if b + n >= s.limit then s.base else b + n);
        Some (b, n)
  end

let alloc_extent t ~goal ~len =
  if len <= 0 then invalid_arg "Alloc.alloc_extent";
  (match t.faults with
  | Some f when Faults.check f Faults.Alloc ->
      Fsapi.Errno.(error ENOSPC "k-split alloc: injected fault")
  | _ -> ());
  if t.free = 0 then Fsapi.Errno.(error ENOSPC "alloc_extent");
  let ns = Array.length t.shards in
  (* an explicit goal overrides affinity: contiguity with the file's
     previous extent matters more than which group serves it *)
  let home =
    if goal >= 0 && goal < t.nblocks then
      min (goal / t.shard_blocks) (ns - 1)
    else home_shard t
  in
  let rec try_shards k =
    if k = ns then Fsapi.Errno.(error ENOSPC "alloc_extent")
    else begin
      let s = t.shards.((home + k) mod ns) in
      match with_shard t s (fun () -> alloc_in_shard t s ~goal ~len) with
      | Some (b, n) ->
          if k > 0 then t.steals <- t.steals + 1;
          (b, n)
      | None -> try_shards (k + 1)
    end
  in
  try_shards 0

(* Aligned scan within one shard, starting at the next-fit cursor rounded
   up to the alignment and wrapping at the shard boundary — O(free runs)
   instead of O(device) from block 0 on every call. *)
let aligned_in_shard t s ~align ~len =
  let round_up b = (b + align - 1) / align * align in
  let first = round_up s.base in
  let start = round_up (max s.s_next_fit s.s_hint) in
  let attempt b =
    if b + len <= s.limit && run_length t s b len = len then begin
      mark_used t s ~start:b ~len;
      s.s_next_fit <- (if b + len >= s.limit then s.base else b + len);
      true
    end
    else false
  in
  let rec scan b stop =
    if b + len > s.limit || b >= stop then None
    else if attempt b then Some b
    else scan (b + align) stop
  in
  match scan start s.limit with
  | Some b -> Some b
  | None -> (
      (* wrap: cover the aligned slots below the cursor *)
      match scan first start with Some b -> Some b | None -> None)

let alloc_aligned t ~align ~len =
  if align <= 0 || len <= 0 then invalid_arg "Alloc.alloc_aligned";
  let ns = Array.length t.shards in
  let home = home_shard t in
  let rec try_shards k =
    if k = ns then None
    else begin
      let s = t.shards.((home + k) mod ns) in
      match with_shard t s (fun () -> aligned_in_shard t s ~align ~len) with
      | Some b ->
          if k > 0 then t.steals <- t.steals + 1;
          Some b
      | None -> try_shards (k + 1)
    end
  in
  try_shards 0

let alloc_many t ~goal ~len =
  let rec go goal remaining acc =
    if remaining = 0 then List.rev acc
    else
      let b, n = alloc_extent t ~goal ~len:remaining in
      go (b + n) (remaining - n) ((b, n) :: acc)
  in
  go goal len []

(* Freeing routes each block to its owning shard (a pure function of the
   block number) and rolls the shard's first-free hint back so the hint
   invariant — no free block below it — survives. *)
let free_extent t ~start ~len =
  if start < 0 || len < 0 || start + len > t.nblocks then
    invalid_arg "Alloc.free_extent";
  for b = start to start + len - 1 do
    if is_free t b then invalid_arg "Alloc.free_extent: double free";
    if Bytes.get t.bitmap b = '\002' then
      invalid_arg "Alloc.free_extent: block is retired"
  done;
  Bytes.fill t.bitmap start len '\000';
  t.free <- t.free + len;
  for b = start to start + len - 1 do
    let s = shard_of t b in
    s.s_free <- s.s_free + 1;
    if b < s.s_hint then s.s_hint <- b
  done

(** Take [start, start+len) out of service permanently (scrubber: the
    blocks are worn out or hold unrecoverable lines). Works on used
    blocks (after their data has been migrated) and on free ones;
    retired blocks are never handed out or freed again. *)
let retire t ~start ~len =
  if start < 0 || len < 0 || start + len > t.nblocks then
    invalid_arg "Alloc.retire";
  for b = start to start + len - 1 do
    let s = shard_of t b in
    (match Bytes.get t.bitmap b with
    | '\000' ->
        t.free <- t.free - 1;
        s.s_free <- s.s_free - 1
    | '\002' -> invalid_arg "Alloc.retire: already retired"
    | _ -> ());
    Bytes.set t.bitmap b '\002';
    t.retired <- t.retired + 1
  done

let retired_blocks t = t.retired

let run_length_any t b cap =
  let n = ref 0 in
  while !n < cap && b + !n < t.nblocks && is_free t (b + !n) do
    incr n
  done;
  !n

let fragmentation t ~run =
  if t.free = 0 then 0.
  else begin
    let short = ref 0 in
    let b = ref 0 in
    while !b < t.nblocks do
      if is_free t !b then begin
        let n = run_length_any t !b t.nblocks in
        if n < run then short := !short + n;
        b := !b + n
      end
      else incr b
    done;
    float_of_int !short /. float_of_int t.free
  end
