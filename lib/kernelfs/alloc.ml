type t = {
  nblocks : int;
  bitmap : Bytes.t;
      (** one byte per block: '\000' free, '\001' used, '\002' retired
          (worn/poisoned block taken out of service — never free again) *)
  mutable free : int;
  mutable next_fit : int;
  mutable retired : int;
  faults : Faults.t option;  (** injected-ENOSPC fault point *)
}

let create ?faults ~nblocks () =
  assert (nblocks > 0);
  {
    nblocks;
    bitmap = Bytes.make nblocks '\000';
    free = nblocks;
    next_fit = 0;
    retired = 0;
    faults;
  }

let nblocks t = t.nblocks
let free_blocks t = t.free
let used_blocks t = t.nblocks - t.free
let is_free t b = Bytes.get t.bitmap b = '\000'
let is_allocated t b = not (is_free t b)

let mark t ~start ~len v =
  Bytes.fill t.bitmap start len v;
  t.free <- (t.free + if v = '\000' then len else -len)

(** Length of the free run starting at [b], capped at [cap]. *)
let run_length t b cap =
  let n = ref 0 in
  while !n < cap && b + !n < t.nblocks && is_free t (b + !n) do
    incr n
  done;
  !n

let find_free_from t start =
  let b = ref start in
  while !b < t.nblocks && not (is_free t !b) do
    incr b
  done;
  if !b < t.nblocks then Some !b else None

let alloc_extent t ~goal ~len =
  if len <= 0 then invalid_arg "Alloc.alloc_extent";
  (match t.faults with
  | Some f when Faults.check f Faults.Alloc ->
      Fsapi.Errno.(error ENOSPC "k-split alloc: injected fault")
  | _ -> ());
  if t.free = 0 then Fsapi.Errno.(error ENOSPC "alloc_extent");
  let goal = if goal >= 0 && goal < t.nblocks then goal else t.next_fit in
  let try_at start =
    match find_free_from t start with
    | None -> None
    | Some b ->
        let n = run_length t b len in
        Some (b, n)
  in
  let best =
    (* Prefer the goal (extends the previous extent of the same file), then
       the next-fit cursor, then the beginning of the device. *)
    match try_at goal with
    | Some (b, n) when b = goal || n = len -> Some (b, n)
    | fallback -> (
        match try_at t.next_fit with
        | Some (b, n) when n = len -> Some (b, n)
        | other -> (
            match (fallback, other, try_at 0) with
            | _, _, Some (b, n) when n = len -> Some (b, n)
            | Some r, _, _ -> Some r
            | _, Some r, _ -> Some r
            | _, _, r -> r))
  in
  match best with
  | None -> Fsapi.Errno.(error ENOSPC "alloc_extent")
  | Some (b, n) ->
      mark t ~start:b ~len:n '\001';
      t.next_fit <- (if b + n >= t.nblocks then 0 else b + n);
      (b, n)

let alloc_aligned t ~align ~len =
  if align <= 0 || len <= 0 then invalid_arg "Alloc.alloc_aligned";
  let rec scan b =
    if b + len > t.nblocks then None
    else if run_length t b len = len then begin
      mark t ~start:b ~len '\001';
      Some b
    end
    else scan (b + align)
  in
  scan 0

let alloc_many t ~goal ~len =
  let rec go goal remaining acc =
    if remaining = 0 then List.rev acc
    else
      let b, n = alloc_extent t ~goal ~len:remaining in
      go (b + n) (remaining - n) ((b, n) :: acc)
  in
  go goal len []

let free_extent t ~start ~len =
  if start < 0 || len < 0 || start + len > t.nblocks then
    invalid_arg "Alloc.free_extent";
  for b = start to start + len - 1 do
    if is_free t b then invalid_arg "Alloc.free_extent: double free";
    if Bytes.get t.bitmap b = '\002' then
      invalid_arg "Alloc.free_extent: block is retired"
  done;
  mark t ~start ~len '\000'

(** Take [start, start+len) out of service permanently (scrubber: the
    blocks are worn out or hold unrecoverable lines). Works on used
    blocks (after their data has been migrated) and on free ones;
    retired blocks are never handed out or freed again. *)
let retire t ~start ~len =
  if start < 0 || len < 0 || start + len > t.nblocks then
    invalid_arg "Alloc.retire";
  for b = start to start + len - 1 do
    (match Bytes.get t.bitmap b with
    | '\000' -> t.free <- t.free - 1
    | '\002' -> invalid_arg "Alloc.retire: already retired"
    | _ -> ());
    Bytes.set t.bitmap b '\002';
    t.retired <- t.retired + 1
  done

let retired_blocks t = t.retired

let fragmentation t ~run =
  if t.free = 0 then 0.
  else begin
    let short = ref 0 in
    let b = ref 0 in
    while !b < t.nblocks do
      if is_free t !b then begin
        let n = run_length t !b t.nblocks in
        if n < run then short := !short + n;
        b := !b + n
      end
      else incr b
    done;
    float_of_int !short /. float_of_int t.free
  end
