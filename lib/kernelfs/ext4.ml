(** Simulated ext4 DAX — the kernel half ("K-Split") of SplitFS.

    File *data* genuinely lives in the simulated PM device at the physical
    blocks chosen by the allocator; metadata (inodes, directories, extent
    trees) lives in heap structures whose durability cost is charged through
    the jbd2-like {!Journal}. Public operations commit their journal
    transaction before returning, giving the metadata-atomicity contract of
    ext4 DAX.

    The [swap_extents] ioctl implements the kernel half of the paper's
    relink primitive: it exchanges logical->physical mappings between two
    files inside one journal transaction, without touching data. *)

open Pmem

let block_size = 4096

(* Registered fence sites (fence minimization, crashcheck litmus). *)
let site_pwrite = Device.register_fence_site "ext4:pwrite"
let site_fsync_fast = Device.register_fence_site "ext4:fsync-fast"
let site_cow_unshare = Device.register_fence_site "ext4:cow-unshare"
let blocks_per_huge = 512 (* 2 MB *)

type inode = {
  ino : int;
  mutable kind : Fsapi.Fs.file_kind;
  mutable size : int;
  mutable nlink : int;
  mutable refcount : int;  (** open file descriptors *)
  extents : Extent_tree.t;
  dir : (string, int) Hashtbl.t option;  (** [Some _] for directories *)
}

type mapping = {
  m_ino : int;
  m_off : int;  (** file offset of the first mapped byte (block aligned) *)
  m_len : int;
  pages : int array;  (** per 4K page: physical block, or -1 for a hole *)
  m_huge : bool;
}

type t = {
  env : Env.t;
  alloc : Alloc.t;
  journal : Journal.t;
  data_start : int;  (** device address of physical block 0; 2 MB aligned *)
  inodes : (int, inode) Hashtbl.t;
  mutable next_ino : int;
  root : inode;
  zero_block : Bytes.t;
  ilocks : Pmem.Lock.t array;
      (** striped inode rwsems: writers to the same inode serialize (VFS
          write path) on stripe [ino land (stripes - 1)]; a fixed-size
          power-of-two table instead of a lock per inode, sized so that
          10k-actor namespaces don't allocate 10k lock records while
          distinct inodes in the N<=stripes experiments never share a
          stripe. Inert outside multi-actor runs *)
  running_meta : int array;
      (** metadata blocks dirtied by data-path operations and not yet
          committed, one cell per journal stream; jbd2 batches these into
          one transaction per stream that commits on fsync or, off the
          critical path, when it grows large *)
  mutable live_maps : mapping list;
      (** every mapping handed out by [mmap]/[mmap_retained]: the scrubber
          re-derives their page arrays after migrating blocks, the way the
          kernel would fix up page tables, so cached user-space mappings
          never point at retired blocks *)
  shared : (int, int) Hashtbl.t;
      (** physical blocks referenced by more than one inode after a
          [clone_extents] snapshot: block -> number of co-owners beyond
          the first. Absent means sole ownership. Owners release a shared
          block by decrementing; only the last release frees it, and any
          in-place store to a shared block breaks the share first
          (copy-on-write) *)
}

(** jbd2 commits a large running transaction from its own thread. *)
let running_meta_limit = 128

let cpu t ns = Env.cpu t.env ns
let cpu_cat t cat ns = Env.cpu_cat t.env cat ns
let timing t = t.env.Env.timing

(* ------------------------------------------------------------------ *)
(* mkfs                                                                 *)
(* ------------------------------------------------------------------ *)

let mkfs ?(journal_len = 8 * 1024 * 1024) ?(alloc_shards = 1)
    ?(journal_streams = 1) ?(lock_stripes = 4096) (env : Env.t) =
  if lock_stripes land (lock_stripes - 1) <> 0 || lock_stripes <= 0 then
    invalid_arg "Ext4.mkfs: lock_stripes must be a power of two";
  let capacity = Device.capacity env.Env.dev in
  let huge = blocks_per_huge * block_size in
  let journal_len = (journal_len + huge - 1) / huge * huge in
  if journal_len >= capacity then invalid_arg "Ext4.mkfs: journal too large";
  let data_len = (capacity - journal_len) / block_size * block_size in
  let journal =
    Journal.create ~streams:journal_streams ~env ~region_start:0
      ~region_len:journal_len ~block_size ()
  in
  let root =
    {
      ino = 2;
      kind = Fsapi.Fs.Directory;
      size = 0;
      nlink = 2;
      refcount = 0;
      extents = Extent_tree.create ();
      dir = Some (Hashtbl.create 64);
    }
  in
  let t =
    {
      env;
      alloc =
        Alloc.create ~faults:env.Env.faults ~env ~shards:alloc_shards
          ~nblocks:(data_len / block_size) ();
      journal;
      data_start = journal_len;
      inodes = Hashtbl.create 1024;
      next_ino = 3;
      root;
      zero_block = Bytes.make block_size '\000';
      ilocks =
        Array.init lock_stripes (fun i ->
            Pmem.Lock.create (Printf.sprintf "inode-stripe:%d" i));
      running_meta = Array.make (Journal.nstreams journal) 0;
      live_maps = [];
      shared = Hashtbl.create 64;
    }
  in
  Hashtbl.replace t.inodes root.ino root;
  t

(** The inode's lock stripe. Distinct inodes share a stripe only when
    their inos collide mod the table size — never in the small-N
    experiments, by construction. *)
let ilock t inode = t.ilocks.(inode.ino land (Array.length t.ilocks - 1))

let with_ilock t inode f = Env.with_lock t.env (ilock t inode) f

let block_addr t phys = t.data_start + (phys * block_size)
let env t = t.env
let allocator t = t.alloc
let journal t = t.journal
let root_inode t = t.root

(* ------------------------------------------------------------------ *)
(* Path resolution                                                      *)
(* ------------------------------------------------------------------ *)

let split_path = Fsapi.Path.split

let inode_of t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some i -> i
  | None -> Fsapi.Errno.(error ENOENT (Printf.sprintf "inode %d" ino))

let dir_table inode =
  match inode.dir with
  | Some d -> d
  | None -> Fsapi.Errno.(error ENOTDIR (string_of_int inode.ino))

let rec walk t inode = function
  | [] -> inode
  | part :: rest ->
      let d = dir_table inode in
      cpu t (timing t).Timing.ext4_dir_cpu;
      (match Hashtbl.find_opt d part with
      | Some ino -> walk t (inode_of t ino) rest
      | None -> Fsapi.Errno.(error ENOENT part))

(** Resolve a full path to its inode. *)
let namei t path = walk t t.root (split_path path)

(** Resolve to the parent directory inode and the final component. *)
let lookup_parent t path =
  let parents, name = Fsapi.Path.split_parent path in
  (walk t t.root parents, name)

(* ------------------------------------------------------------------ *)
(* Inode lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

(** Release [len] physical blocks at [start], honouring snapshot
    sharing: a co-owned block is released by decrementing its share
    count; only the last owner returns it to the allocator. The batch
    fast path keeps the pre-snapshot cost when no clones exist. *)
let free_blocks t ~start ~len =
  if Hashtbl.length t.shared = 0 then Alloc.free_extent t.alloc ~start ~len
  else
    for i = 0 to len - 1 do
      let b = start + i in
      match Hashtbl.find_opt t.shared b with
      | Some n when n > 1 -> Hashtbl.replace t.shared b (n - 1)
      | Some _ -> Hashtbl.remove t.shared b
      | None -> Alloc.free_extent t.alloc ~start:b ~len:1
    done

(** Does any block under the device range [addr, addr+len) carry a
    snapshot share? U-Split asks before storing through its mmaps so an
    in-place write never lands on an aliased block; the [shared]-empty
    fast path keeps the pre-snapshot hot path at one table-length load. *)
let range_shared t ~addr ~len =
  Hashtbl.length t.shared > 0
  && begin
       let first = (addr - t.data_start) / block_size in
       let last = (addr + len - 1 - t.data_start) / block_size in
       let hit = ref false in
       for b = first to last do
         if Hashtbl.mem t.shared b then hit := true
       done;
       !hit
     end

let free_inode_blocks t inode =
  Extent_tree.iter
    (fun e -> free_blocks t ~start:e.Extent_tree.physical ~len:e.Extent_tree.len)
    inode.extents;
  ignore (Extent_tree.remove_range inode.extents ~logical:0 ~len:max_int)

let maybe_reap t inode =
  if inode.nlink = 0 && inode.refcount = 0 && inode.kind = Fsapi.Fs.Regular
  then begin
    free_inode_blocks t inode;
    Hashtbl.remove t.inodes inode.ino
  end

let incref inode = inode.refcount <- inode.refcount + 1

let decref t inode =
  inode.refcount <- inode.refcount - 1;
  maybe_reap t inode

(* ------------------------------------------------------------------ *)
(* Namespace operations (each commits its own journal transaction)      *)
(* ------------------------------------------------------------------ *)

let make_inode t kind =
  let inode =
    {
      ino = t.next_ino;
      kind;
      size = 0;
      nlink = 1;
      refcount = 0;
      extents = Extent_tree.create ();
      dir =
        (match kind with
        | Fsapi.Fs.Directory -> Some (Hashtbl.create 16)
        | Fsapi.Fs.Regular -> None);
    }
  in
  t.next_ino <- t.next_ino + 1;
  Hashtbl.replace t.inodes inode.ino inode;
  inode

(** Index of the current actor's journal stream — the cell its data-path
    metadata batches into. One stream (the default) keeps the single
    global running transaction of stock jbd2. *)
let stream_idx t =
  let n = Array.length t.running_meta in
  if n = 1 then 0
  else (Pmem.Simclock.current t.env.Env.clock).Pmem.Simclock.aid mod n

(** Fold data-path metadata dirtying into the current actor's stream of
    the running transaction; a large transaction is committed by the
    journal thread off the critical path. *)
let stage_meta t blocks =
  let k = stream_idx t in
  t.running_meta.(k) <- t.running_meta.(k) + blocks;
  if t.running_meta.(k) >= running_meta_limit then begin
    let blocks = t.running_meta.(k) in
    t.running_meta.(k) <- 0;
    Env.in_background t.env (fun () ->
        Journal.commit t.journal ~meta_blocks:blocks)
  end

let create t path =
  let parent, name = lookup_parent t path in
  let d = dir_table parent in
  if Hashtbl.mem d name then Fsapi.Errno.(error EEXIST path);
  let inode = make_inode t Fsapi.Fs.Regular in
  Hashtbl.replace d name inode.ino;
  cpu t ((timing t).Timing.ext4_dir_cpu +. (timing t).Timing.ext4_inode_cpu);
  (* inode bitmap + inode table block + directory block join the running
     transaction; jbd2 batches namespace ops until fsync or its timer *)
  stage_meta t 3;
  inode

let mkdir t path =
  let parent, name = lookup_parent t path in
  let d = dir_table parent in
  if Hashtbl.mem d name then Fsapi.Errno.(error EEXIST path);
  let inode = make_inode t Fsapi.Fs.Directory in
  inode.nlink <- 2;
  parent.nlink <- parent.nlink + 1;
  Hashtbl.replace d name inode.ino;
  cpu t ((timing t).Timing.ext4_dir_cpu +. (timing t).Timing.ext4_inode_cpu);
  stage_meta t 4

let unlink t path =
  let parent, name = lookup_parent t path in
  let d = dir_table parent in
  match Hashtbl.find_opt d name with
  | None -> Fsapi.Errno.(error ENOENT path)
  | Some ino ->
      let inode = inode_of t ino in
      if inode.kind = Fsapi.Fs.Directory then Fsapi.Errno.(error EISDIR path);
      Hashtbl.remove d name;
      inode.nlink <- inode.nlink - 1;
      cpu t ((timing t).Timing.ext4_dir_cpu +. (timing t).Timing.ext4_inode_cpu);
      (* dir block + inode + block bitmap + inode bitmap *)
      stage_meta t 4;
      maybe_reap t inode

let rmdir t path =
  let parent, name = lookup_parent t path in
  let d = dir_table parent in
  match Hashtbl.find_opt d name with
  | None -> Fsapi.Errno.(error ENOENT path)
  | Some ino ->
      let inode = inode_of t ino in
      let table = dir_table inode in
      if Hashtbl.length table > 0 then Fsapi.Errno.(error ENOTEMPTY path);
      Hashtbl.remove d name;
      parent.nlink <- parent.nlink - 1;
      Hashtbl.remove t.inodes ino;
      cpu t ((timing t).Timing.ext4_dir_cpu +. (timing t).Timing.ext4_inode_cpu);
      stage_meta t 4

let rename t src dst =
  let sparent, sname = lookup_parent t src in
  let sd = dir_table sparent in
  match Hashtbl.find_opt sd sname with
  | None -> Fsapi.Errno.(error ENOENT src)
  | Some ino ->
      let dparent, dname = lookup_parent t dst in
      let dd = dir_table dparent in
      (match Hashtbl.find_opt dd dname with
      | Some old_ino when old_ino <> ino ->
          let old = inode_of t old_ino in
          (match old.kind with
          | Fsapi.Fs.Directory ->
              if Hashtbl.length (dir_table old) > 0 then
                Fsapi.Errno.(error ENOTEMPTY dst);
              Hashtbl.remove t.inodes old_ino
          | Fsapi.Fs.Regular ->
              old.nlink <- old.nlink - 1;
              maybe_reap t old)
      | _ -> ());
      Hashtbl.remove sd sname;
      Hashtbl.replace dd dname ino;
      cpu t (2. *. (timing t).Timing.ext4_dir_cpu);
      stage_meta t 4

let readdir t path =
  let inode = namei t path in
  let d = dir_table inode in
  cpu t ((timing t).Timing.ext4_dir_cpu *. float_of_int (1 + Hashtbl.length d));
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) d [])

let stat_of_inode inode =
  {
    Fsapi.Fs.st_ino = inode.ino;
    st_kind = inode.kind;
    st_size = inode.size;
    st_nlink = inode.nlink;
  }

let stat t path = stat_of_inode (namei t path)

(* ------------------------------------------------------------------ *)
(* Block mapping and data IO                                            *)
(* ------------------------------------------------------------------ *)

(** Copy-on-write break before an in-place store: if [phys] (backing
    logical block [lblk] of [inode]) is co-owned by a snapshot, move this
    inode onto a fresh block carrying a copy of the old contents and
    release our share of the old one. Returns the block that is now safe
    to store through. *)
let unshare_block t inode ~lblk ~phys =
  if not (Hashtbl.mem t.shared phys) then phys
  else begin
    cpu_cat t Obs.Alloc (timing t).Timing.ext4_alloc_cpu;
    let fresh, _ = Alloc.alloc_extent t.alloc ~goal:(-1) ~len:1 in
    let buf = Bytes.create block_size in
    Device.load t.env.Env.dev ~addr:(block_addr t phys) buf ~off:0
      ~len:block_size;
    Device.store_nt t.env.Env.dev ~addr:(block_addr t fresh) buf ~off:0
      ~len:block_size;
    (* the copy must be durable before the extent switch makes the fresh
       block this inode's truth: a torn copy behind a committed switch
       reads back as zeros after recovery *)
    Device.fence ~site:site_cow_unshare t.env.Env.dev;
    ignore (Extent_tree.remove_range inode.extents ~logical:lblk ~len:1);
    Extent_tree.insert inode.extents ~logical:lblk ~physical:fresh ~len:1;
    cpu t (timing t).Timing.ext4_extent_cpu;
    (match Hashtbl.find_opt t.shared phys with
    | Some n when n > 1 -> Hashtbl.replace t.shared phys (n - 1)
    | Some _ -> Hashtbl.remove t.shared phys
    | None -> ());
    (* fix up live user-space mappings of the moved page, the way the
       kernel would shoot down and refault the PTE *)
    List.iter
      (fun m ->
        if m.m_ino = inode.ino then begin
          let idx = lblk - (m.m_off / block_size) in
          if idx >= 0 && idx < Array.length m.pages && m.pages.(idx) = phys
          then m.pages.(idx) <- fresh
        end)
      t.live_maps;
    fresh
  end

(** Map logical block [lblk], allocating if absent. Returns the physical
    block and whether an allocation happened. In-place writes to a
    snapshot-shared block break the share first (copy-on-write). *)
let get_or_alloc_block t inode lblk =
  match Extent_tree.find inode.extents lblk with
  | Some (phys, _) -> (unshare_block t inode ~lblk ~phys, false)
  | None ->
      cpu_cat t Obs.Alloc (timing t).Timing.ext4_alloc_cpu;
      let goal =
        match Extent_tree.find inode.extents (lblk - 1) with
        | Some (p, _) -> p + 1
        | None -> -1
      in
      let start, _n = Alloc.alloc_extent t.alloc ~goal ~len:1 in
      cpu t (timing t).Timing.ext4_extent_cpu;
      Extent_tree.insert inode.extents ~logical:lblk ~physical:start ~len:1;
      (start, true)

(** Pre-allocate [len] bytes starting at byte [off] (fallocate). Tries to
    grab 2 MB-aligned physical extents so the region can be mapped with
    huge pages. Does not change [size] (KEEP_SIZE semantics). *)
let fallocate t inode ~off ~len =
  if off mod block_size <> 0 then Fsapi.Errno.(error EINVAL "fallocate");
  with_ilock t inode @@ fun () ->
  let first = off / block_size in
  let nblocks = (len + block_size - 1) / block_size in
  let allocated = ref 0 in
  let lblk = ref first in
  let remaining = ref nblocks in
  while !remaining > 0 do
    match Extent_tree.find inode.extents !lblk with
    | Some (_, run) ->
        let n = min run !remaining in
        lblk := !lblk + n;
        remaining := !remaining - n
    | None ->
        cpu_cat t Obs.Alloc (timing t).Timing.ext4_alloc_cpu;
        let chunk = min !remaining blocks_per_huge in
        (* never allocate past the next already-mapped block (the file may
           be fragmented by earlier relinks) *)
        let chunk =
          match Extent_tree.next_mapped inode.extents !lblk with
          | Some next when next - !lblk < chunk -> next - !lblk
          | _ -> chunk
        in
        let start, n =
          match
            (* huge-page friendly path first *)
            if chunk = blocks_per_huge && !lblk mod blocks_per_huge = 0 then
              Alloc.alloc_aligned t.alloc ~align:blocks_per_huge ~len:chunk
            else None
          with
          | Some start -> (start, chunk)
          | None -> Alloc.alloc_extent t.alloc ~goal:(-1) ~len:chunk
        in
        cpu t (timing t).Timing.ext4_extent_cpu;
        Extent_tree.insert inode.extents ~logical:!lblk ~physical:start ~len:n;
        allocated := !allocated + n;
        lblk := !lblk + n;
        remaining := !remaining - n
  done;
  if !allocated > 0 then
    Journal.commit t.journal
      ~meta_blocks:(2 + (!allocated / blocks_per_huge));
  !allocated

(** Kernel data-write path (DAX: non-temporal copy straight to media).
    Returns the number of metadata blocks dirtied, so callers can fold the
    charge into one journal transaction. *)
let write_data t inode ~off buf ~boff ~len =
  let dirtied = ref 0 in
  let pos = ref off and src = ref boff and remaining = ref len in
  while !remaining > 0 do
    let lblk = !pos / block_size in
    let in_block = !pos mod block_size in
    let n = min !remaining (block_size - in_block) in
    let phys, fresh = get_or_alloc_block t inode lblk in
    if fresh then begin
      incr dirtied;
      (* a partially covered fresh block must be zeroed first so reclaimed
         blocks never leak stale bytes (dax_iomap zeroing) *)
      if n < block_size then
        Device.store_nt t.env.Env.dev ~addr:(block_addr t phys) t.zero_block
          ~off:0 ~len:block_size
    end;
    Device.store_nt t.env.Env.dev
      ~addr:(block_addr t phys + in_block)
      buf ~off:!src ~len:n;
    pos := !pos + n;
    src := !src + n;
    remaining := !remaining - n
  done;
  if off + len > inode.size then begin
    inode.size <- off + len;
    incr dirtied
  end;
  (* bitmap + extent blocks, folded: roughly one bitmap + one extent block
     per allocating write plus the inode *)
  if !dirtied > 0 then min 3 (1 + !dirtied) else 0

(** pwrite(2) as ext4 DAX performs it: data copied with NT stores, metadata
    dirtied by allocation or size change joins the running transaction. *)
let pwrite t inode ~off buf ~boff ~len =
  if len < 0 || off < 0 then Fsapi.Errno.(error EINVAL "pwrite");
  with_ilock t inode (fun () ->
      let allocating = off + len > inode.size in
      cpu t
        (if allocating then (timing t).Timing.ext4_append_cpu
         else (timing t).Timing.ext4_write_cpu);
      let meta = write_data t inode ~off buf ~boff ~len in
      stage_meta t meta;
      Device.fence ~site:site_pwrite t.env.Env.dev;
      len)

(** pread(2): DAX read, media cost charged per contiguous extent. *)
let pread t inode ~off buf ~boff ~len =
  if len < 0 || off < 0 then Fsapi.Errno.(error EINVAL "pread");
  cpu t (timing t).Timing.ext4_read_cpu;
  if off >= inode.size then 0
  else begin
    let len = min len (inode.size - off) in
    let pos = ref off and dst = ref boff and remaining = ref len in
    while !remaining > 0 do
      let lblk = !pos / block_size in
      let in_block = !pos mod block_size in
      let n = min !remaining (block_size - in_block) in
      (match Extent_tree.find inode.extents lblk with
      | Some (phys, _) ->
          Device.load t.env.Env.dev
            ~addr:(block_addr t phys + in_block)
            buf ~off:!dst ~len:n
      | None -> Bytes.fill buf !dst n '\000');
      pos := !pos + n;
      dst := !dst + n;
      remaining := !remaining - n
    done;
    len
  end

(** Whether every block of [off, off+len) has a physical mapping. Used by
    recovery to tell staged-but-not-relinked data (fully mapped — staging
    files are preallocated) from a half-relinked staging file (relink
    steals blocks, leaving holes). Charges nothing: pure metadata walk. *)
let range_mapped (_t : t) inode ~off ~len =
  len <= 0
  ||
  let first = off / block_size and last = (off + len - 1) / block_size in
  let ok = ref true and lblk = ref first in
  while !ok && !lblk <= last do
    match Extent_tree.find inode.extents !lblk with
    | Some (_, run) -> lblk := !lblk + run
    | None -> ok := false
  done;
  !ok

let truncate t inode size =
  if size < 0 then Fsapi.Errno.(error EINVAL "truncate");
  with_ilock t inode @@ fun () ->
  cpu t (timing t).Timing.ext4_inode_cpu;
  let old_blocks = (inode.size + block_size - 1) / block_size in
  let new_blocks = (size + block_size - 1) / block_size in
  if size < inode.size then begin
    if new_blocks < old_blocks then begin
      let removed =
        Extent_tree.remove_range inode.extents ~logical:new_blocks
          ~len:(old_blocks - new_blocks)
      in
      List.iter
        (fun e ->
          free_blocks t ~start:e.Extent_tree.physical ~len:e.Extent_tree.len)
        removed
    end;
    (* zero the now-unused tail of the last kept block so a later size
       extension reads zeros, not the truncated bytes *)
    if size mod block_size <> 0 then
      let lblk = size / block_size in
      match Extent_tree.find inode.extents lblk with
      | Some (phys, _) ->
          let phys = unshare_block t inode ~lblk ~phys in
          let in_block = size mod block_size in
          Device.store_nt t.env.Env.dev
            ~addr:(block_addr t phys + in_block)
            t.zero_block ~off:0 ~len:(block_size - in_block)
      | None -> ()
  end
  else if size > inode.size then begin
    (* zero the tail of the last partial block so stale bytes never leak *)
    let last = inode.size in
    if last mod block_size <> 0 then
      let lblk = last / block_size in
      match Extent_tree.find inode.extents lblk with
      | Some (phys, _) ->
          let phys = unshare_block t inode ~lblk ~phys in
          let in_block = last mod block_size in
          let n = min (size - last) (block_size - in_block) in
          Device.store_nt t.env.Env.dev
            ~addr:(block_addr t phys + in_block)
            t.zero_block ~off:0 ~len:n
      | None -> ()
  end;
  inode.size <- size;
  Journal.commit t.journal ~meta_blocks:2

(** fsync(2) on ext4 DAX: force the running transaction to commit. The cost
    grows with the metadata dirtied since the last commit, which is what
    makes ext4 DAX fsync expensive after a burst of appends (paper
    Table 6). *)
let fsync t inode =
  with_ilock t inode @@ fun () ->
  cpu t (timing t).Timing.ext4_inode_cpu;
  let k = stream_idx t in
  if t.running_meta.(k) > 0 then begin
    let blocks = t.running_meta.(k) in
    t.running_meta.(k) <- 0;
    Journal.commit t.journal ~meta_blocks:blocks;
    (* wake jbd2, wait for the commit to land *)
    cpu_cat t Obs.Journal (timing t).Timing.jbd2_fsync_wait
  end
  else
    (* no running transaction: jbd2 fast path *)
    Device.fence ~site:site_fsync_fast t.env.Env.dev

(* ------------------------------------------------------------------ *)
(* swap_extents — the kernel half of relink                             *)
(* ------------------------------------------------------------------ *)

(** [swap_extents t ~src ~src_blk ~dst ~dst_blk ~nblks] atomically exchanges
    the logical→physical mappings of the two block ranges inside one journal
    transaction, without moving, copying or flushing data (the paper's
    modified [EXT4_IOC_MOVE_EXT]). Existing memory-mappings of the physical
    blocks remain valid; U-Split re-points its collection of mmaps. *)
let swap_extents t ~src ~src_blk ~dst ~dst_blk ~nblks =
  if nblks <= 0 then Fsapi.Errno.(error EINVAL "swap_extents");
  if Faults.check t.env.Env.faults Faults.Swap then
    Fsapi.Errno.(error EIO "k-split: swap_extents injected EIO");
  with_ilock t src @@ fun () ->
  with_ilock t dst @@ fun () ->
  let ex_src = Extent_tree.remove_range src.extents ~logical:src_blk ~len:nblks in
  let ex_dst = Extent_tree.remove_range dst.extents ~logical:dst_blk ~len:nblks in
  let shift into delta e =
    Extent_tree.insert into
      ~logical:(e.Extent_tree.logical + delta)
      ~physical:e.Extent_tree.physical ~len:e.Extent_tree.len
  in
  List.iter (shift dst.extents (dst_blk - src_blk)) ex_src;
  List.iter (shift src.extents (src_blk - dst_blk)) ex_dst;
  let touched = List.length ex_src + List.length ex_dst in
  cpu t ((timing t).Timing.ext4_extent_cpu *. float_of_int (2 + touched));
  (* two inodes + two extent blocks in one transaction *)
  Journal.commit t.journal ~meta_blocks:4

(** [relink t ~src ~src_blk ~dst ~dst_blk ~nblks ~dst_size] is the paper's
    new primitive as one kernel operation: logically and atomically move the
    block range of [src] (a staging file) into [dst], de-allocating any
    blocks it replaces, and update [dst]'s size — all inside a single journal
    transaction, with no data movement or flushing. Built from the same
    extent manipulation as {!swap_extents}. *)
let relink t ~src ~src_blk ~dst ~dst_blk ~nblks ~dst_size =
  if nblks <= 0 then Fsapi.Errno.(error EINVAL "relink");
  if Faults.check t.env.Env.faults Faults.Swap then
    Fsapi.Errno.(error EIO "k-split: relink (swap_extents) injected EIO");
  with_ilock t src @@ fun () ->
  with_ilock t dst @@ fun () ->
  let replaced = Extent_tree.remove_range dst.extents ~logical:dst_blk ~len:nblks in
  List.iter
    (fun e ->
      free_blocks t ~start:e.Extent_tree.physical ~len:e.Extent_tree.len)
    replaced;
  let moved = Extent_tree.remove_range src.extents ~logical:src_blk ~len:nblks in
  List.iter
    (fun e ->
      Extent_tree.insert dst.extents
        ~logical:(e.Extent_tree.logical - src_blk + dst_blk)
        ~physical:e.Extent_tree.physical ~len:e.Extent_tree.len)
    moved;
  (match dst_size with
  | Some size -> dst.size <- size
  | None -> ());
  let touched = List.length replaced + List.length moved in
  cpu t ((timing t).Timing.ext4_extent_cpu *. float_of_int (2 + touched));
  (* both inodes' extent updates fit two journal blocks, one transaction *)
  Journal.commit t.journal ~meta_blocks:2;
  let stats = t.env.Env.stats in
  stats.Stats.relinks <- stats.Stats.relinks + 1

(** Free a block range of [inode] (relink uses this to drop the staging
    file's temporarily allocated blocks). Metadata-only. *)
let dealloc_range t inode ~blk ~nblks =
  with_ilock t inode @@ fun () ->
  let removed = Extent_tree.remove_range inode.extents ~logical:blk ~len:nblks in
  List.iter
    (fun e ->
      free_blocks t ~start:e.Extent_tree.physical ~len:e.Extent_tree.len)
    removed;
  cpu t ((timing t).Timing.ext4_extent_cpu *. float_of_int (1 + List.length removed));
  Journal.commit t.journal ~meta_blocks:2

let set_size t inode size =
  with_ilock t inode @@ fun () ->
  cpu t (timing t).Timing.ext4_inode_cpu;
  inode.size <- size;
  Journal.commit t.journal ~meta_blocks:1

(** [clone_extents t ~src ~dst] publishes an instant snapshot: [dst]'s
    mapping becomes a block-for-block alias of [src]'s inside one journal
    transaction — no data moves, no flushes, O(extents) metadata. Every
    cloned block is marked shared; subsequent in-place stores through any
    owner break the share with a copy-on-write, and frees release shares
    instead of blocks until the last owner lets go. *)
let clone_extents t ~src ~dst =
  if src.ino = dst.ino then Fsapi.Errno.(error EINVAL "clone_extents: self");
  if Faults.check t.env.Env.faults Faults.Swap then
    Fsapi.Errno.(error EIO "k-split: clone_extents injected EIO");
  with_ilock t src @@ fun () ->
  with_ilock t dst @@ fun () ->
  let old = Extent_tree.remove_range dst.extents ~logical:0 ~len:max_int in
  List.iter
    (fun e -> free_blocks t ~start:e.Extent_tree.physical ~len:e.Extent_tree.len)
    old;
  let cloned = ref 0 in
  Extent_tree.iter
    (fun e ->
      Extent_tree.insert dst.extents ~logical:e.Extent_tree.logical
        ~physical:e.Extent_tree.physical ~len:e.Extent_tree.len;
      for i = 0 to e.Extent_tree.len - 1 do
        let b = e.Extent_tree.physical + i in
        Hashtbl.replace t.shared b
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.shared b))
      done;
      incr cloned)
    src.extents;
  dst.size <- src.size;
  cpu t
    ((timing t).Timing.ext4_extent_cpu *. float_of_int (2 + !cloned));
  (* both inodes' extent updates in one transaction, like relink *)
  Journal.commit t.journal ~meta_blocks:2;
  let stats = t.env.Env.stats in
  stats.Stats.relinks <- stats.Stats.relinks + 1

(* ------------------------------------------------------------------ *)
(* Media-fault support: address translation and the scrubber (PR 5)     *)
(* ------------------------------------------------------------------ *)

(** Device address backing byte [off] of [inode], if mapped. Pure
    metadata walk, no charges — the fault oracle uses it to map file
    offsets to quarantined device lines. *)
let device_addr t inode ~off =
  match Extent_tree.find inode.extents (off / block_size) with
  | Some (phys, _) -> Some (block_addr t phys + (off mod block_size))
  | None -> None

(* the scrubber patrol lives at the end of the file: after migrating an
   inode's blocks it must re-derive live mappings via [remap_quietly] *)

(* ------------------------------------------------------------------ *)
(* DAX mmap                                                             *)
(* ------------------------------------------------------------------ *)

(** [mmap t inode ~off ~len] maps the byte range with MAP_POPULATE
    semantics: all page faults are taken now, 2 MB faults when the backing
    extent allows it. Returns the mapping used for direct loads/stores. *)
let mmap t inode ~off ~len =
  if off mod block_size <> 0 || len <= 0 then Fsapi.Errno.(error EINVAL "mmap");
  let npages = (len + block_size - 1) / block_size in
  let pages = Array.make npages (-1) in
  let first = off / block_size in
  let covered = ref 0 in
  while !covered < npages do
    match Extent_tree.find inode.extents (first + !covered) with
    | Some (phys, run) ->
        let n = min run (npages - !covered) in
        for i = 0 to n - 1 do
          pages.(!covered + i) <- phys + i
        done;
        covered := !covered + n
    | None -> incr covered
  done;
  (* Huge mapping iff the whole range is one physically-contiguous,
     2 MB-aligned run of 2 MB multiples. *)
  let huge =
    (timing t).Timing.huge_pages_enabled
    && npages mod blocks_per_huge = 0
    && npages > 0
    && pages.(0) >= 0
    && pages.(0) mod blocks_per_huge = 0
    && first mod blocks_per_huge = 0
    &&
    let ok = ref true in
    for i = 1 to npages - 1 do
      if pages.(i) <> pages.(0) + i then ok := false
    done;
    !ok
  in
  let stats = t.env.Env.stats in
  let tm = timing t in
  if huge then begin
    let faults = npages / blocks_per_huge in
    stats.Stats.page_faults <- stats.Stats.page_faults + faults;
    stats.Stats.page_faults_huge <- stats.Stats.page_faults_huge + faults;
    cpu t (float_of_int faults *. tm.Timing.page_fault_huge)
  end
  else begin
    let faults = Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) 0 pages in
    stats.Stats.page_faults <- stats.Stats.page_faults + faults;
    cpu t (float_of_int faults *. tm.Timing.page_fault)
  end;
  stats.Stats.mmap_setups <- stats.Stats.mmap_setups + 1;
  let m = { m_ino = inode.ino; m_off = off; m_len = len; pages; m_huge = huge } in
  t.live_maps <- m :: t.live_maps;
  m

(** [translate m ~file_off] gives the device address backing [file_off] and
    the number of contiguously mapped bytes from there; [None] on a hole or
    outside the mapping. [max] bounds the run-length scan: callers that will
    cap the run at [n] bytes anyway should pass [~max:n], which stops the
    page walk as soon as [n] contiguous bytes are proven — on a fully
    contiguous staging mapping the unbounded walk is O(mapping size). The
    returned run may exceed [max] (it ends on a page boundary) but is only
    guaranteed maximal when it is shorter than [max]. *)
let translate t m ~max ~file_off =
  if file_off < m.m_off || file_off >= m.m_off + m.m_len then None
  else begin
    let rel = file_off - m.m_off in
    let page = rel / block_size in
    let in_page = rel mod block_size in
    if m.pages.(page) < 0 then None
    else begin
      (* extend across physically-contiguous pages *)
      let run = ref (block_size - in_page) in
      let p = ref page in
      while
        !run < max
        && !p + 1 < Array.length m.pages
        && m.pages.(!p + 1) = m.pages.(!p) + 1
        && m.m_off + ((!p + 1) * block_size) < m.m_off + m.m_len
      do
        incr p;
        run := !run + block_size
      done;
      let limit = m.m_len - rel in
      Some (block_addr t m.pages.(page) + in_page, min !run limit)
    end
  end

(** Build a mapping over an already-faulted range without charging traps or
    faults — used by U-Split to retain mappings across relink (the modified
    ioctl keeps existing mappings valid, §3.5). *)
let mmap_retained (t : t) inode ~off ~len =
  if off mod block_size <> 0 || len <= 0 then
    Fsapi.Errno.(error EINVAL "mmap_retained");
  let npages = (len + block_size - 1) / block_size in
  let pages = Array.make npages (-1) in
  let first = off / block_size in
  for i = 0 to npages - 1 do
    pages.(i) <-
      (match Extent_tree.find inode.extents (first + i) with
      | Some (phys, _) -> phys
      | None -> -1)
  done;
  let m = { m_ino = inode.ino; m_off = off; m_len = len; pages; m_huge = false } in
  t.live_maps <- m :: t.live_maps;
  m

(** Re-derive the page array of an existing mapping after [swap_extents]
    re-pointed the file's extents; charges nothing (the paper's modified
    ioctl keeps mappings valid without faults). *)
let remap_quietly t inode m =
  let npages = Array.length m.pages in
  let first = m.m_off / block_size in
  for i = 0 to npages - 1 do
    m.pages.(i) <-
      (match Extent_tree.find inode.extents (first + i) with
      | Some (phys, _) -> phys
      | None -> -1)
  done;
  ignore t

(* ------------------------------------------------------------------ *)
(* Scrubber patrol (PR 5)                                               *)
(* ------------------------------------------------------------------ *)

(** Scrubber patrol: walk every regular file and migrate its data off
    blocks that are worn to [wear_limit] writes or hold poisoned lines,
    then retire the bad blocks so the allocator never hands them out
    again. Unreadable (poisoned) lines are zeroed at the destination and
    marked quarantined by the device — data loss is surfaced, never
    silent. Live mappings of a migrated inode are re-derived, the way the
    kernel would fix up page tables. When the device has no spare blocks
    the bad data stays in place (reads keep faulting and their caller
    quarantines). Returns the number of blocks migrated. *)
let scrub t ~wear_limit =
  Env.with_span t.env ~cat:Obs.Kernel ~name:"k:scrub" @@ fun () ->
  let dev = t.env.Env.dev in
  let faults = t.env.Env.faults in
  let migrated = ref 0 in
  let scrub_inode inode =
    if inode.kind = Fsapi.Fs.Regular then begin
      (* collect first: migration rewrites the extent tree under us *)
      let bad = ref [] in
      Extent_tree.iter
        (fun e ->
          for i = 0 to e.Extent_tree.len - 1 do
            let phys = e.Extent_tree.physical + i in
            if
              Device.block_needs_scrub dev ~addr:(block_addr t phys)
                ~limit:wear_limit
            then bad := (e.Extent_tree.logical + i, phys) :: !bad
          done)
        inode.extents;
      let before = !migrated in
      List.iter
        (fun (lblk, phys) ->
          cpu_cat t Obs.Alloc (timing t).Timing.ext4_alloc_cpu;
          match Alloc.alloc_extent t.alloc ~goal:(-1) ~len:1 with
          | exception Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) -> ()
          | fresh, _ ->
              ignore
                (Device.migrate_block dev ~src:(block_addr t phys)
                   ~dst:(block_addr t fresh));
              ignore
                (Extent_tree.remove_range inode.extents ~logical:lblk ~len:1);
              Extent_tree.insert inode.extents ~logical:lblk ~physical:fresh
                ~len:1;
              cpu t (timing t).Timing.ext4_extent_cpu;
              (* a snapshot-shared bad block is only retired by its last
                 owner; earlier owners just drop their share and move on *)
              (match Hashtbl.find_opt t.shared phys with
              | Some n when n > 1 -> Hashtbl.replace t.shared phys (n - 1)
              | Some _ -> Hashtbl.remove t.shared phys
              | None -> Alloc.retire t.alloc ~start:phys ~len:1);
              Faults.note_scrub_migration faults;
              incr migrated)
        (List.rev !bad);
      if !migrated > before then
        List.iter
          (fun m -> if m.m_ino = inode.ino then remap_quietly t inode m)
          t.live_maps
    end
  in
  (* visit inodes in ino order: the patrol's charges must not depend on
     hash-table iteration order *)
  let inos =
    Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes []
    |> List.sort compare
  in
  List.iter
    (fun ino ->
      match Hashtbl.find_opt t.inodes ino with
      | Some inode -> scrub_inode inode
      | None -> ())
    inos;
  if !migrated > 0 then
    Journal.commit t.journal ~meta_blocks:(min 8 (1 + !migrated));
  !migrated
