(** jbd2-like metadata journal (ordered mode).

    The simulated kernel file system keeps its metadata in heap structures
    that are mutated synchronously, so the journal's job here is (a) to
    charge the PM traffic and ordering instructions a jbd2 commit performs —
    descriptor block, one journal block per dirtied metadata block, commit
    block, fences — and (b) to provide the atomicity contract: every public
    file-system operation completes its commit before returning, so a crash
    observed between operations always sees metadata-consistent state
    (paper Table 3, "atomic metadata ops" for ext4 DAX).

    The journal area can be split into [streams] independent commit
    streams (KucoFS-style partitioned logging): each stream owns a
    contiguous subregion with its own write head and its own lock, and a
    committer is routed to stream [actor id mod streams]. With one stream
    — the default, and what every existing configuration uses — there is
    a single head walking the whole region under the single "jbd2" lock,
    exactly the original behaviour; with more, commits from different
    actors proceed in parallel instead of collapsing onto one running
    transaction (the paper-§2 multi-client ext4 DAX wall).

    Checkpointing (writing journalled blocks back in place) happens off the
    critical path in jbd2 and is not charged, matching how the paper
    attributes software overhead to the foreground operation. *)

(* Registered fence site (fence minimization, crashcheck litmus). *)
let site_commit_record = Pmem.Device.register_fence_site "jbd2:commit-record"

type stream = {
  st_start : int;  (** device address of this stream's subregion *)
  st_len : int;
  mutable head : int;  (** next write offset within the subregion *)
  st_lock : Pmem.Lock.t;
      (** jbd2 has one running transaction per stream: concurrent
          committers of the same stream serialize behind it, which is what
          makes ext4 DAX appends collapse under multi-client load
          (paper §2) — sharding the streams is what breaks that wall *)
}

type t = {
  env : Pmem.Env.t;
  block_size : int;
  streams : stream array;
  mutable commits : int;
  scratch : Bytes.t;
}

let create ?(streams = 1) ~env ~region_start ~region_len ~block_size () =
  assert (region_len mod block_size = 0);
  let streams = max 1 (min streams (region_len / block_size)) in
  let per = region_len / streams / block_size * block_size in
  let mk k =
    let st_start = region_start + (k * per) in
    let st_len = if k = streams - 1 then region_start + region_len - st_start else per in
    {
      st_start;
      st_len;
      head = 0;
      st_lock =
        Pmem.Lock.create
          (if k = 0 then "jbd2" else Printf.sprintf "jbd2-%d" k);
    }
  in
  {
    env;
    block_size;
    streams = Array.init streams mk;
    commits = 0;
    scratch = Bytes.make block_size '\000';
  }

let nstreams t = Array.length t.streams

(** The stream serving the current actor: commit traffic spreads across
    streams by actor id, so tenants journal in parallel. *)
let stream_for t =
  let n = Array.length t.streams in
  if n = 1 then t.streams.(0)
  else
    t.streams.((Pmem.Simclock.current t.env.Pmem.Env.clock).Pmem.Simclock.aid
               mod n)

let write_journal_block t s =
  let dev = t.env.Pmem.Env.dev in
  if s.head + t.block_size > s.st_len then s.head <- 0;
  Pmem.Device.store_nt dev
    ~addr:(s.st_start + s.head)
    t.scratch ~off:0 ~len:t.block_size;
  s.head <- s.head + t.block_size;
  let stats = t.env.Pmem.Env.stats in
  stats.Pmem.Stats.journal_bytes <-
    stats.Pmem.Stats.journal_bytes + t.block_size

(* Injected journal-EIO faults are retried here, inside the commit path,
   so every caller (fsync, metadata ops, background commits) inherits the
   same degradation: transient write failures back off with a capped
   exponential simulated-ns delay and retry; a fault still firing after
   this many attempts is sticky and surfaces as EIO. *)
let max_commit_attempts = 6

(** [commit t ~meta_blocks] charges one transaction that dirtied
    [meta_blocks] metadata blocks, on the current actor's stream. *)
let commit t ~meta_blocks =
  if meta_blocks > 0 then
    Pmem.Env.with_span t.env ~cat:Obs.Journal ~name:"jbd2:commit" @@ fun () ->
    let s = stream_for t in
    Pmem.Env.with_lock t.env s.st_lock (fun () ->
        let faults = t.env.Pmem.Env.faults in
        let attempt = ref 1 in
        while Faults.check faults Faults.Journal do
          if !attempt >= max_commit_attempts then begin
            Faults.note_errno faults;
            Fsapi.Errno.(error EIO "jbd2: journal commit failed (sticky)")
          end;
          Pmem.Env.cpu_cat t.env Obs.Journal
            (Faults.backoff_ns ~attempt:!attempt);
          Faults.new_epoch faults;
          Faults.note_journal_retry faults;
          incr attempt
        done;
        if !attempt > 1 then Faults.note_retried faults;
        let dev = t.env.Pmem.Env.dev in
        (* descriptor block + journalled copies of the metadata blocks,
           then the commit record. One fence commits the whole
           transaction: the simulated journal carries no replayable
           content (metadata is reconstructed from the DRAM structures,
           not the journal), so the separate blocks-before-record fence
           real jbd2 needs is unobservable here — crashcheck's fence
           minimizer proved it redundant over the exhaustive litmus
           corpus (EXPERIMENTS.md, PR 7) and it was removed *)
        for _ = 0 to meta_blocks do
          write_journal_block t s
        done;
        write_journal_block t s;
        Pmem.Device.fence ~site:site_commit_record dev;
        t.commits <- t.commits + 1;
        let stats = t.env.Pmem.Env.stats in
        stats.Pmem.Stats.journal_commits <- stats.Pmem.Stats.journal_commits + 1)

let commits t = t.commits
