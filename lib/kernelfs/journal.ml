(** jbd2-like metadata journal (ordered mode).

    The simulated kernel file system keeps its metadata in heap structures
    that are mutated synchronously, so the journal's job here is (a) to
    charge the PM traffic and ordering instructions a jbd2 commit performs —
    descriptor block, one journal block per dirtied metadata block, commit
    block, fences — and (b) to provide the atomicity contract: every public
    file-system operation completes its commit before returning, so a crash
    observed between operations always sees metadata-consistent state
    (paper Table 3, "atomic metadata ops" for ext4 DAX).

    Checkpointing (writing journalled blocks back in place) happens off the
    critical path in jbd2 and is not charged, matching how the paper
    attributes software overhead to the foreground operation. *)

type t = {
  env : Pmem.Env.t;
  region_start : int;  (** device address of the journal area *)
  region_len : int;
  block_size : int;
  mutable head : int;  (** next write offset within the region *)
  mutable commits : int;
  scratch : Bytes.t;
  jlock : Pmem.Lock.t;
      (** jbd2 has one running transaction: concurrent committers serialize
          behind it, which is what makes ext4 DAX appends collapse under
          multi-client load (paper §2) *)
}

let create ~env ~region_start ~region_len ~block_size =
  assert (region_len mod block_size = 0);
  {
    env;
    region_start;
    region_len;
    block_size;
    head = 0;
    commits = 0;
    scratch = Bytes.make block_size '\000';
    jlock = Pmem.Lock.create "jbd2";
  }

let write_journal_block t =
  let dev = t.env.Pmem.Env.dev in
  if t.head + t.block_size > t.region_len then t.head <- 0;
  Pmem.Device.store_nt dev
    ~addr:(t.region_start + t.head)
    t.scratch ~off:0 ~len:t.block_size;
  t.head <- t.head + t.block_size;
  let stats = t.env.Pmem.Env.stats in
  stats.Pmem.Stats.journal_bytes <-
    stats.Pmem.Stats.journal_bytes + t.block_size

(* Injected journal-EIO faults are retried here, inside the commit path,
   so every caller (fsync, metadata ops, background commits) inherits the
   same degradation: transient write failures back off with a capped
   exponential simulated-ns delay and retry; a fault still firing after
   this many attempts is sticky and surfaces as EIO. *)
let max_commit_attempts = 6

(** [commit t ~meta_blocks] charges one transaction that dirtied
    [meta_blocks] metadata blocks. *)
let commit t ~meta_blocks =
  if meta_blocks > 0 then
    Pmem.Env.with_span t.env ~cat:Obs.Journal ~name:"jbd2:commit" @@ fun () ->
    Pmem.Env.with_lock t.env t.jlock (fun () ->
        let faults = t.env.Pmem.Env.faults in
        let attempt = ref 1 in
        while Faults.check faults Faults.Journal do
          if !attempt >= max_commit_attempts then begin
            Faults.note_errno faults;
            Fsapi.Errno.(error EIO "jbd2: journal commit failed (sticky)")
          end;
          Pmem.Env.cpu_cat t.env Obs.Journal
            (Faults.backoff_ns ~attempt:!attempt);
          Faults.new_epoch faults;
          Faults.note_journal_retry faults;
          incr attempt
        done;
        if !attempt > 1 then Faults.note_retried faults;
        let dev = t.env.Pmem.Env.dev in
        (* descriptor block + journalled copies of the metadata blocks *)
        for _ = 0 to meta_blocks do
          write_journal_block t
        done;
        Pmem.Device.fence dev;
        (* commit record, made durable before the op returns *)
        write_journal_block t;
        Pmem.Device.fence dev;
        t.commits <- t.commits + 1;
        let stats = t.env.Pmem.Env.stats in
        stats.Pmem.Stats.journal_commits <- stats.Pmem.Stats.journal_commits + 1)

let commits t = t.commits
