(** System-call layer over {!Ext4}: file-descriptor table plus the cost of
    crossing into the kernel. Everything an application (or U-Split) asks of
    the kernel goes through here and pays [syscall_trap + vfs_path].

    Each operation runs under the profiler as one [kcall]: the trap charge
    is attributed to [Obs.Syscall], the in-kernel body to [Obs.Kernel]
    (more specific regions — journal, allocator, media — override from
    inside), and when tracing is enabled a span named [sys:<op>] carrying
    an strace-style detail line ([open("/x") = 3], or
    [open("/x") = ENOENT "/x"] on a failed path) is emitted. The detail
    string is only formatted when tracing is on. *)

open Pmem

type open_desc = { inode : Ext4.inode; pos : int ref; flags : Fsapi.Flags.t }

type t = {
  kfs : Ext4.t;
  fds : (int, open_desc) Hashtbl.t;
  mutable next_fd : int;
}

let make kfs = { kfs; fds = Hashtbl.create 64; next_fd = 3 }
let kernel t = t.kfs

let trap t =
  let env = Ext4.env t.kfs in
  let tm = env.Env.timing in
  Env.cpu_cat env Obs.Syscall (tm.Timing.syscall_trap +. tm.Timing.vfs_path);
  env.Env.stats.Stats.syscalls <- env.Env.stats.Stats.syscalls + 1

(** [kcall t name fargs fres f] runs one system call [f] under the
    profiler. [fargs]/[fres] render the strace-style argument list and
    result; both are only invoked when tracing is enabled. *)
let kcall t name fargs fres f =
  let env = Ext4.env t.kfs in
  let obs = env.Env.obs in
  let a = Simclock.current env.Env.clock in
  let t0 = a.Simclock.a_now in
  trap t;
  match Env.with_cat env Obs.Kernel f with
  | x ->
      if Obs.tracing obs then
        Obs.emit obs ~name:("sys:" ^ name) ~cat:Obs.Syscall
          ~actor:a.Simclock.aid ~t0 ~t1:a.Simclock.a_now
          ~arg:(Printf.sprintf "%s(%s) = %s" name (fargs ()) (fres x));
      x
  | exception (Fsapi.Errno.Error (err, ctx) as exn) ->
      if Obs.tracing obs then
        Obs.emit obs ~name:("sys:" ^ name) ~cat:Obs.Syscall
          ~actor:a.Simclock.aid ~t0 ~t1:a.Simclock.a_now
          ~arg:
            (Printf.sprintf "%s(%s) = %s %S" name (fargs ())
               (Fsapi.Errno.to_string err) ctx);
      raise exn
  | exception Faults.Poisoned addr ->
      (* a machine-check on a poisoned PM line inside the kernel surfaces
         to the application as EIO, never as a raw exception *)
      let ctx =
        Printf.sprintf "%s: poisoned PM line @0x%x (media)" name addr
      in
      if Obs.tracing obs then
        Obs.emit obs ~name:("sys:" ^ name) ~cat:Obs.Syscall
          ~actor:a.Simclock.aid ~t0 ~t1:a.Simclock.a_now
          ~arg:(Printf.sprintf "%s(%s) = EIO %S" name (fargs ()) ctx);
      Fsapi.Errno.(error EIO ctx)

let ri = string_of_int
let r0 () = "0"
let rpath p () = Printf.sprintf "%S" p
let rfd fd () = ri fd
let rio fd len at () = Printf.sprintf "%d, %d, @%d" fd len at

let fd_entry t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some e -> e
  | None -> Fsapi.Errno.(error EBADF (string_of_int fd))

let inode_of_fd t fd = (fd_entry t fd).inode

let install t inode flags =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Ext4.incref inode;
  Hashtbl.replace t.fds fd { inode; pos = ref 0; flags };
  fd

let open_ t path (flags : Fsapi.Flags.t) =
  kcall t "open" (rpath path) ri @@ fun () ->
  let inode =
    match Ext4.namei t.kfs path with
    | inode ->
        if inode.Ext4.kind = Fsapi.Fs.Directory && Fsapi.Flags.writable flags
        then Fsapi.Errno.(error EISDIR path);
        if flags.creat && flags.excl then Fsapi.Errno.(error EEXIST path);
        if flags.trunc && Fsapi.Flags.writable flags then
          Ext4.truncate t.kfs inode 0;
        inode
    | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) when flags.creat ->
        Ext4.create t.kfs path
  in
  install t inode flags

let close t fd =
  kcall t "close" (rfd fd) r0 @@ fun () ->
  let e = fd_entry t fd in
  Hashtbl.remove t.fds fd;
  Ext4.decref t.kfs e.inode

let dup t fd =
  kcall t "dup" (rfd fd) ri @@ fun () ->
  let e = fd_entry t fd in
  let nfd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Ext4.incref e.inode;
  Hashtbl.replace t.fds nfd e;
  nfd

let pwrite t fd ~buf ~boff ~len ~at =
  kcall t "pwrite" (rio fd len at) ri @@ fun () ->
  let e = fd_entry t fd in
  if not (Fsapi.Flags.writable e.flags) then Fsapi.Errno.(error EBADF "pwrite");
  Ext4.pwrite t.kfs e.inode ~off:at buf ~boff ~len

let pread t fd ~buf ~boff ~len ~at =
  kcall t "pread" (rio fd len at) ri @@ fun () ->
  let e = fd_entry t fd in
  if not (Fsapi.Flags.readable e.flags) then Fsapi.Errno.(error EBADF "pread");
  Ext4.pread t.kfs e.inode ~off:at buf ~boff ~len

let write t fd ~buf ~boff ~len =
  kcall t "write" (fun () -> Printf.sprintf "%d, %d" fd len) ri @@ fun () ->
  let e = fd_entry t fd in
  if not (Fsapi.Flags.writable e.flags) then Fsapi.Errno.(error EBADF "write");
  let at = if e.flags.append then e.inode.Ext4.size else !(e.pos) in
  let n = Ext4.pwrite t.kfs e.inode ~off:at buf ~boff ~len in
  e.pos := at + n;
  n

let read t fd ~buf ~boff ~len =
  kcall t "read" (fun () -> Printf.sprintf "%d, %d" fd len) ri @@ fun () ->
  let e = fd_entry t fd in
  if not (Fsapi.Flags.readable e.flags) then Fsapi.Errno.(error EBADF "read");
  let n = Ext4.pread t.kfs e.inode ~off:!(e.pos) buf ~boff ~len in
  e.pos := !(e.pos) + n;
  n

let lseek t fd off whence =
  kcall t "lseek" (fun () -> Printf.sprintf "%d, %d" fd off) ri @@ fun () ->
  let e = fd_entry t fd in
  let base =
    match whence with
    | Fsapi.Flags.Set -> 0
    | Fsapi.Flags.Cur -> !(e.pos)
    | Fsapi.Flags.End -> e.inode.Ext4.size
  in
  let npos = base + off in
  if npos < 0 then Fsapi.Errno.(error EINVAL "lseek");
  e.pos := npos;
  npos

let fsync t fd =
  kcall t "fsync" (rfd fd) r0 @@ fun () ->
  let e = fd_entry t fd in
  Ext4.fsync t.kfs e.inode

let ftruncate t fd size =
  kcall t "ftruncate" (fun () -> Printf.sprintf "%d, %d" fd size) r0
  @@ fun () ->
  let e = fd_entry t fd in
  Ext4.truncate t.kfs e.inode size

let fstat t fd =
  kcall t "fstat" (rfd fd) (fun _ -> "0") @@ fun () ->
  Ext4.stat_of_inode (fd_entry t fd).inode

let stat t path =
  kcall t "stat" (rpath path) (fun _ -> "0") @@ fun () -> Ext4.stat t.kfs path

let unlink t path =
  kcall t "unlink" (rpath path) r0 @@ fun () -> Ext4.unlink t.kfs path

let rename t src dst =
  kcall t "rename"
    (fun () -> Printf.sprintf "%S, %S" src dst)
    r0
  @@ fun () -> Ext4.rename t.kfs src dst

let mkdir t path =
  kcall t "mkdir" (rpath path) r0 @@ fun () -> Ext4.mkdir t.kfs path

let rmdir t path =
  kcall t "rmdir" (rpath path) r0 @@ fun () -> Ext4.rmdir t.kfs path

let readdir t path =
  kcall t "readdir" (rpath path)
    (fun l -> Printf.sprintf "[%d entries]" (List.length l))
  @@ fun () -> Ext4.readdir t.kfs path

(* --- kernel services used by U-Split (each is one trap) --- *)

let fallocate t fd ~off ~len =
  kcall t "fallocate" (rio fd len off) ri @@ fun () ->
  Ext4.fallocate t.kfs (inode_of_fd t fd) ~off ~len

(** The relink system call added by SplitFS: one trap, one transaction. *)
let relink t ~src_fd ~src_blk ~dst_fd ~dst_blk ~nblks ~dst_size =
  kcall t "relink"
    (fun () ->
      Printf.sprintf "%d+%d -> %d+%d, %d blks" src_fd src_blk dst_fd dst_blk
        nblks)
    r0
  @@ fun () ->
  Ext4.relink t.kfs
    ~src:(inode_of_fd t src_fd)
    ~src_blk
    ~dst:(inode_of_fd t dst_fd)
    ~dst_blk ~nblks ~dst_size

(** The relink ioctl: swap extents between two open files. *)
let ioctl_swap_extents t ~src_fd ~src_blk ~dst_fd ~dst_blk ~nblks =
  kcall t "ioctl_swap_extents"
    (fun () ->
      Printf.sprintf "%d+%d <-> %d+%d, %d blks" src_fd src_blk dst_fd dst_blk
        nblks)
    r0
  @@ fun () ->
  Ext4.swap_extents t.kfs
    ~src:(inode_of_fd t src_fd)
    ~src_blk
    ~dst:(inode_of_fd t dst_fd)
    ~dst_blk ~nblks

(** The snapshot ioctl: make [dst_fd]'s extent map a copy-on-write alias
    of [src_fd]'s in one trap, one transaction (reflink). *)
let ioctl_clone_extents t ~src_fd ~dst_fd =
  kcall t "ioctl_clone_extents"
    (fun () -> Printf.sprintf "%d -> %d" src_fd dst_fd)
    r0
  @@ fun () ->
  Ext4.clone_extents t.kfs ~src:(inode_of_fd t src_fd)
    ~dst:(inode_of_fd t dst_fd)

let dealloc_range t fd ~blk ~nblks =
  kcall t "dealloc_range"
    (fun () -> Printf.sprintf "%d, %d+%d" fd blk nblks)
    r0
  @@ fun () -> Ext4.dealloc_range t.kfs (inode_of_fd t fd) ~blk ~nblks

let set_size t fd size =
  kcall t "set_size" (fun () -> Printf.sprintf "%d, %d" fd size) r0
  @@ fun () -> Ext4.set_size t.kfs (inode_of_fd t fd) size

let mmap t fd ~off ~len =
  kcall t "mmap" (rio fd len off) (fun _ -> "0") @@ fun () ->
  Ext4.mmap t.kfs (inode_of_fd t fd) ~off ~len

(* ------------------------------------------------------------------ *)

let as_fsapi ?(name = "ext4-dax") t : Fsapi.Fs.t =
  {
    Fsapi.Fs.fs_name = name;
    open_ = open_ t;
    close = close t;
    dup = dup t;
    pread = (fun fd ~buf ~boff ~len ~at -> pread t fd ~buf ~boff ~len ~at);
    pwrite = (fun fd ~buf ~boff ~len ~at -> pwrite t fd ~buf ~boff ~len ~at);
    read = (fun fd ~buf ~boff ~len -> read t fd ~buf ~boff ~len);
    write = (fun fd ~buf ~boff ~len -> write t fd ~buf ~boff ~len);
    lseek = lseek t;
    fsync = fsync t;
    ftruncate = ftruncate t;
    fstat = fstat t;
    stat = stat t;
    unlink = unlink t;
    rename = rename t;
    mkdir = mkdir t;
    rmdir = rmdir t;
    readdir = readdir t;
  }
