(** Faultcheck: deterministic fault-injection campaigns with a
    differential fault oracle (PR 5, DESIGN.md §5g).

    For every (stack × fault point) pair, a trial builds a fresh stack,
    establishes durable initial file content, injects exactly the faults
    of the trial's fault set — resource faults into the {!Faults} plane,
    media poison straight into the device — and runs a seeded workload to
    completion while a host-side model tracks the legal final contents.
    Every fault must land in one of the allowed outcomes:

    - {b masked}: the operation succeeded with correct data (fallbacks,
      scrubber migration, dirty-cache hits over poisoned lines);
    - {b retried}: the operation succeeded after backoff-retry loops
      (transient journal/relink faults);
    - {b errno}: the operation failed with an honest [EIO]/[ENOSPC]
      whose context names the originating layer.

    Anything else — wrong bytes, wrong size, an unexpected errno, a raw
    exception escaping the stack — is a violation. The model forks an
    alternative content view at each failed write (the write may have
    partially applied before the fault), applies successful writes to
    every view, and at the end checks the recovered size against the view
    sizes and every byte against the union of views, additionally
    allowing zeros on quarantined device lines (surfaced media loss).
    Violating fault sets are shrunk greedily to a minimal violating
    subset before reporting. *)

module W = Crashcheck.Workload

type stack_kind = Ext4_dax | Splitfs of Splitfs.Config.mode

let stack_name = function
  | Ext4_dax -> "ext4-dax"
  | Splitfs m -> "splitfs-" ^ Splitfs.Config.mode_to_string m

let all_stacks =
  [
    Ext4_dax;
    Splitfs Splitfs.Config.Posix;
    Splitfs Splitfs.Config.Sync;
    Splitfs Splitfs.Config.Strict;
    Splitfs Splitfs.Config.Fams;
  ]

(* ------------------------------------------------------------------ *)
(* Fault points                                                         *)
(* ------------------------------------------------------------------ *)

type fault_point =
  | Resource of Faults.rfault
  | Poison of int
      (** poison the cache line at this device address once the initial
          content is durable *)
  | Scrub_wear of int
      (** run a scrubber patrol with this wear limit halfway through the
          workload *)

let pp_fault_point ppf = function
  | Resource rf -> Faults.pp_rfault ppf rf
  | Poison addr -> Fmt.pf ppf "poison @0x%x" addr
  | Scrub_wear limit -> Fmt.pf ppf "scrub patrol (wear limit %d)" limit

(* ------------------------------------------------------------------ *)
(* Legal-content model                                                  *)
(* ------------------------------------------------------------------ *)

module Model = struct
  (** Candidate final contents of one file. The head view has every
      acknowledged operation applied; each failed write forks one
      as-if-applied alternative (the fault may have struck after the data
      reached the file but before the errno surfaced). A failed write's
      range is additionally recorded: the fault may equally have struck
      mid-operation — size extended but data not yet copied — so inside
      that range the failed payload, a zero hole, or the pre-image are
      all legal. *)
  type file = {
    mutable views : Bytes.t list;
    mutable failed : (int * Bytes.t) list;  (** (at, payload) of failed writes *)
  }

  let max_views = 5

  let apply_view v ~at data =
    let len = Bytes.length data in
    let n = max (Bytes.length v) (at + len) in
    let nv = Bytes.make n '\000' in
    Bytes.blit v 0 nv 0 (Bytes.length v);
    Bytes.blit data 0 nv at len;
    nv

  (** An acknowledged write is non-negotiable: every legal final content
      has it applied. This is what catches silently dropped writes. *)
  let write_ok f ~at data =
    f.views <- List.map (fun v -> apply_view v ~at data) f.views

  let write_failed f ~at data =
    if List.length f.views < max_views then
      f.views <- f.views @ [ apply_view (List.hd f.views) ~at data ];
    f.failed <- (at, data) :: f.failed

  (** Is byte [b] at [off] explained by the partial application of a
      failed write? Inside a failed range, the payload byte or a zero
      hole is legal (pre-image bytes are covered by the views). *)
  let failed_explains f ~off b =
    List.exists
      (fun (at, data) ->
        off >= at
        && off < at + Bytes.length data
        && (b = '\000' || b = Bytes.get data (off - at)))
      f.failed
end

(* ------------------------------------------------------------------ *)
(* Trial runner                                                         *)
(* ------------------------------------------------------------------ *)

module Runner = struct
  type stack = {
    env : Pmem.Env.t;
    sys : Kernelfs.Syscall.t;
    u : Splitfs.Usplit.t option;
    fs : Fsapi.Fs.t;
  }

  let file_path i = Printf.sprintf "/f%d" i

  (** [tiny_staging] shrinks the staging pool to one nearly-useless file
      so staging pre-allocation runs during the workload — the only way
      an origin-scoped [Staging_prealloc] fault can fire. *)
  let build ?(tiny_staging = false) ?checks kind =
    let env = Pmem.Env.create ~capacity:(8 * 1024 * 1024) ?checks () in
    let kfs = Kernelfs.Ext4.mkfs ~journal_len:(1024 * 1024) env in
    let sys = Kernelfs.Syscall.make kfs in
    match kind with
    | Ext4_dax -> { env; sys; u = None; fs = Kernelfs.Syscall.as_fsapi sys }
    | Splitfs mode ->
        let cfg =
          {
            (Splitfs.Config.with_mode mode) with
            Splitfs.Config.staging_files = (if tiny_staging then 1 else 2);
            staging_size = (if tiny_staging then 4096 else 256 * 1024);
            oplog_size = 16 * 1024;
          }
        in
        let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
        { env; sys; u = Some u; fs = Splitfs.Usplit.as_fsapi u }

  let setup (w : W.t) st =
    Array.init w.W.nfiles (fun i ->
        let fd = st.fs.Fsapi.Fs.open_ (file_path i) Fsapi.Flags.create_rw in
        let len = w.W.initial.(i) in
        let buf = W.payload ~seed:(1000 + i) len in
        (* On the fams stack a whole-file write can overflow a
           [tiny_staging] pool, and fams (correctly) answers ENOSPC
           rather than degrading to an in-place write. Initial content
           is harness setup, not part of the trial — feed it in
           staging-sized bites with a publish in between. Faults are not
           armed yet, so no other stack can fail here. *)
        (try ignore (st.fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len ~at:0)
         with Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) ->
           let pos = ref 0 in
           while !pos < len do
             let n = min 1024 (len - !pos) in
             ignore (st.fs.Fsapi.Fs.pwrite fd ~buf ~boff:!pos ~len:n ~at:!pos);
             st.fs.Fsapi.Fs.fsync fd;
             pos := !pos + n
           done);
        st.fs.Fsapi.Fs.fsync fd;
        fd)

  let checkpoint st =
    match st.u with Some u -> Splitfs.Usplit.relink_all u | None -> ()

  (** Fault-free application of one op — used by the profiling pass. *)
  let apply st fds (op : W.op) =
    match op with
    | W.Write { file; at; len; seed } ->
        let buf = W.payload ~seed len in
        ignore (st.fs.Fsapi.Fs.pwrite fds.(file) ~buf ~boff:0 ~len ~at)
    | W.Fsync { file } -> st.fs.Fsapi.Fs.fsync fds.(file)
    | W.Checkpoint -> checkpoint st

  let allowed_errno = function
    | Fsapi.Errno.EIO | Fsapi.Errno.ENOSPC -> true
    | _ -> false

  type outcome = Untriggered | Masked | Retried | Errno_surfaced

  let outcome_name = function
    | Untriggered -> "untriggered"
    | Masked -> "masked"
    | Retried -> "retried"
    | Errno_surfaced -> "errno"

  type trial = {
    outcome : outcome;
    violations : (int * string) list;  (** (file, reason); file -1 = global *)
    errno : (Fsapi.Errno.t * string) option;  (** last allowed errno seen *)
    tcounts : Faults.counts;  (** snapshot of the plane's counters *)
  }

  let snapshot_counts (c : Faults.counts) = { c with Faults.injected = c.injected }

  let run_trial ?tiny_staging ?checks kind (w : W.t)
      ~(points : fault_point list) =
    let st = build ?tiny_staging ?checks kind in
    let dev = st.env.Pmem.Env.dev in
    let plane = st.env.Pmem.Env.faults in
    let kfs = Kernelfs.Syscall.kernel st.sys in
    let fds = setup w st in
    let model =
      Array.init w.W.nfiles (fun i ->
          {
            Model.views = [ W.payload ~seed:(1000 + i) w.W.initial.(i) ];
            failed = [];
          })
    in
    (* the initial content is durable; now inject *)
    Faults.arm plane;
    let scrub_limit = ref None in
    List.iter
      (function
        | Resource rf -> Faults.inject plane rf
        | Poison addr -> Pmem.Device.poison_line dev ~addr
        | Scrub_wear l -> scrub_limit := Some l)
      points;
    let errno = ref None in
    let unexpected = ref [] in
    let record_fail k e ctx =
      if allowed_errno e then errno := Some (e, ctx)
      else
        unexpected :=
          Fmt.str "op %d: unexpected errno %a" k Fsapi.Errno.pp (e, ctx)
          :: !unexpected
    in
    let run_scrub () =
      match (!scrub_limit, st.u) with
      | None, _ -> ()
      | Some l, Some u -> ignore (Splitfs.Usplit.scrub u ~wear_limit:l)
      | Some l, None -> ignore (Kernelfs.Ext4.scrub kfs ~wear_limit:l)
    in
    let nops = List.length w.W.ops in
    List.iteri
      (fun k op ->
        if k = nops / 2 then run_scrub ();
        match op with
        | W.Write { file; at; len; seed } -> (
            let buf = W.payload ~seed len in
            match st.fs.Fsapi.Fs.pwrite fds.(file) ~buf ~boff:0 ~len ~at with
            | n ->
                if n = len then Model.write_ok model.(file) ~at buf
                else
                  unexpected :=
                    Fmt.str "op %d: short write %d/%d" k n len :: !unexpected
            | exception Fsapi.Errno.Error (e, ctx) ->
                record_fail k e ctx;
                if allowed_errno e then Model.write_failed model.(file) ~at buf
            | exception e ->
                unexpected :=
                  Fmt.str "op %d: escaped exception %s" k (Printexc.to_string e)
                  :: !unexpected)
        | W.Fsync { file } -> (
            match st.fs.Fsapi.Fs.fsync fds.(file) with
            | () -> ()
            | exception Fsapi.Errno.Error (e, ctx) -> record_fail k e ctx
            | exception e ->
                unexpected :=
                  Fmt.str "op %d: escaped exception %s" k (Printexc.to_string e)
                  :: !unexpected)
        | W.Checkpoint -> (
            match checkpoint st with
            | () -> ()
            | exception Fsapi.Errno.Error (e, ctx) -> record_fail k e ctx
            | exception e ->
                unexpected :=
                  Fmt.str "op %d: escaped exception %s" k (Printexc.to_string e)
                  :: !unexpected))
      w.W.ops;
    (* settle: a final fsync per file, failures allowed like any op *)
    Array.iteri
      (fun i fd ->
        match st.fs.Fsapi.Fs.fsync fd with
        | () -> ()
        | exception Fsapi.Errno.Error (e, ctx) -> record_fail (nops + i) e ctx
        | exception e ->
            unexpected :=
              Fmt.str "settle f%d: escaped exception %s" i
                (Printexc.to_string e)
              :: !unexpected)
      fds;
    (* read-back; EIO from a poisoned line retires (quarantines) the line
       and retries, like an application's MCE handler would *)
    let read_back i =
      let fd = fds.(i) in
      let size = (st.fs.Fsapi.Fs.fstat fd).Fsapi.Fs.st_size in
      let buf = Bytes.create size in
      let rec go attempt =
        match st.fs.Fsapi.Fs.pread fd ~buf ~boff:0 ~len:size ~at:0 with
        | n -> Ok (Bytes.sub buf 0 n)
        | exception Fsapi.Errno.Error (Fsapi.Errno.EIO, _)
          when attempt < 64 && Pmem.Device.last_poison dev >= 0 ->
            Pmem.Device.quarantine dev ~addr:(Pmem.Device.last_poison dev)
              ~len:1;
            go (attempt + 1)
        | exception Fsapi.Errno.Error (e, ctx) ->
            Error (Fmt.str "read-back: %a" Fsapi.Errno.pp (e, ctx))
        | exception e ->
            Error (Fmt.str "read-back: escaped exception %s" (Printexc.to_string e))
      in
      go 0
    in
    (* a zero byte is additionally legal when its backing line was
       quarantined: media loss surfaced honestly as zeros *)
    let quarantined_zero path off =
      match Kernelfs.Ext4.namei kfs path with
      | inode -> (
          match Kernelfs.Ext4.device_addr kfs inode ~off with
          | Some a -> Pmem.Device.is_quarantined dev ~addr:a
          | None -> false)
      | exception Fsapi.Errno.Error _ -> false
    in
    let check_file i =
      match read_back i with
      | Error reason -> Some reason
      | Ok got ->
          let views = model.(i).Model.views in
          let sizes = List.sort_uniq compare (List.map Bytes.length views) in
          if not (List.mem (Bytes.length got) sizes) then
            Some
              (Fmt.str "size %d not in {%a}" (Bytes.length got)
                 Fmt.(list ~sep:comma int)
                 sizes)
          else begin
            let bad = ref None in
            (try
               for off = 0 to Bytes.length got - 1 do
                 let b = Bytes.get got off in
                 let ok =
                   List.exists
                     (fun v -> off < Bytes.length v && Bytes.get v off = b)
                     views
                   || Model.failed_explains model.(i) ~off b
                   || (b = '\000' && quarantined_zero (file_path i) off)
                 in
                 if not ok then begin
                   bad :=
                     Some
                       (Fmt.str "byte %d (%#x) matches no legal view" off
                          (Char.code b));
                   raise Exit
                 end
               done
             with Exit -> ());
            !bad
          end
    in
    let violations = ref [] in
    for i = w.W.nfiles - 1 downto 0 do
      match check_file i with
      | Some r -> violations := (i, r) :: !violations
      | None -> ()
    done;
    List.iter (fun r -> violations := (-1, r) :: !violations) !unexpected;
    let c = Faults.counts plane in
    let outcome =
      if c.Faults.injected = 0 && c.Faults.media = 0 && c.Faults.scrub_migrations = 0
      then Untriggered
      else if !errno <> None then Errno_surfaced
      else if c.Faults.retried > 0 then Retried
      else Masked
    in
    {
      outcome;
      violations = !violations;
      errno = !errno;
      tcounts = snapshot_counts c;
    }
end

(* ------------------------------------------------------------------ *)
(* Shrinking                                                            *)
(* ------------------------------------------------------------------ *)

(** Greedily drop fault points from a violating set while the violation
    persists; what remains is a minimal culprit set. Bounded by [budget]
    trial re-runs. *)
let shrink ?(budget = 32) ?tiny_staging kind w ~points =
  let budget = ref budget in
  let violates ps =
    decr budget;
    (Runner.run_trial ?tiny_staging kind w ~points:ps).Runner.violations <> []
  in
  let current = ref points in
  let progress = ref true in
  while !progress && !budget > 0 && List.length !current > 1 do
    progress := false;
    List.iter
      (fun p ->
        if List.length !current > 1 && !budget > 0 then begin
          let cand = List.filter (fun q -> q != p) !current in
          if violates cand then begin
            current := cand;
            progress := true
          end
        end)
      !current
  done;
  !current

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                      *)
(* ------------------------------------------------------------------ *)

type violation = {
  v_stack : string;
  v_points : fault_point list;
  v_file : int;  (** -1 when not file-specific *)
  v_reason : string;
  v_errno : (Fsapi.Errno.t * string) option;
  v_shrunk : fault_point list;
}

type stack_report = {
  s_stack : string;
  s_trials : int;
  s_untriggered : int;
  s_masked : int;
  s_retried : int;
  s_errno : int;
  s_counts : Faults.counts;  (** summed over every trial of the stack *)
  s_violations : violation list;
}

let add_counts (acc : Faults.counts) (c : Faults.counts) =
  acc.Faults.injected <- acc.Faults.injected + c.Faults.injected;
  acc.Faults.media <- acc.Faults.media + c.Faults.media;
  acc.Faults.masked <- acc.Faults.masked + c.Faults.masked;
  acc.Faults.retried <- acc.Faults.retried + c.Faults.retried;
  acc.Faults.errno <- acc.Faults.errno + c.Faults.errno;
  acc.Faults.degraded_writes <- acc.Faults.degraded_writes + c.Faults.degraded_writes;
  acc.Faults.relink_retries <- acc.Faults.relink_retries + c.Faults.relink_retries;
  acc.Faults.journal_retries <- acc.Faults.journal_retries + c.Faults.journal_retries;
  acc.Faults.quarantined_lines <- acc.Faults.quarantined_lines + c.Faults.quarantined_lines;
  acc.Faults.scrub_migrations <- acc.Faults.scrub_migrations + c.Faults.scrub_migrations;
  acc.Faults.replay_skipped <- acc.Faults.replay_skipped + c.Faults.replay_skipped

let pp_violation ppf v =
  Fmt.pf ppf "@[<v2>%s %a: %s%a@,faults: @[%a@]@,shrunk to: @[%a@]@]" v.v_stack
    (fun ppf i -> if i < 0 then Fmt.string ppf "-" else Fmt.pf ppf "f%d" i)
    v.v_file v.v_reason
    (fun ppf -> function
      | Some ec -> Fmt.pf ppf " (last errno %a)" Fsapi.Errno.pp ec
      | None -> ())
    v.v_errno
    Fmt.(list ~sep:semi pp_fault_point)
    v.v_points
    Fmt.(list ~sep:semi pp_fault_point)
    v.v_shrunk

let pp_stack_report ppf r =
  Fmt.pf ppf
    "@[<v2>%-14s %3d trials: %3d untriggered %3d masked %3d retried %3d \
     errno  %d violation(s)@,%a%a@]"
    r.s_stack r.s_trials r.s_untriggered r.s_masked r.s_retried r.s_errno
    (List.length r.s_violations)
    Faults.pp_counts r.s_counts
    Fmt.(list ~sep:nop (fun ppf v -> Fmt.pf ppf "@,%a" pp_violation v))
    r.s_violations

let durations = [ Faults.Transient 1; Faults.Transient 3; Faults.Sticky ]

(** [check_stack kind] — enumerate fault points for one stack and run one
    trial per point (plus one multi-fault trial for the shrinker). The
    fault points come from a profiling pass: an armed-but-empty plane
    counts the calls each injection site sees, and call indices are
    sampled across that range; poison candidates are the device lines
    backing the initial durable file content. *)
let check_stack ?(seed = 0xFA17) ?(nops = 24) ?(max_per_site = 3) ?jobs kind =
  let mode =
    match kind with Ext4_dax -> Splitfs.Config.Posix | Splitfs m -> m
  in
  (* scale 16 pushes writes across block boundaries so full-block relink
     (and therefore the swap_extents fault site) is part of the campaign *)
  let w = W.generate ~mode ~seed ~scale:16 ~nops () in
  (* profiling pass: no faults, count site calls + collect poison lines *)
  let calls, poison_candidates =
    let st = Runner.build kind in
    let plane = st.env.Pmem.Env.faults in
    let kfs = Kernelfs.Syscall.kernel st.sys in
    let fds = Runner.setup w st in
    let poison =
      List.concat
        (List.init w.W.nfiles (fun i ->
             match Kernelfs.Ext4.namei kfs (Runner.file_path i) with
             | inode ->
                 let lines = (w.W.initial.(i) + 63) / 64 in
                 List.filter_map
                   (fun off ->
                     match Kernelfs.Ext4.device_addr kfs inode ~off with
                     | Some a -> Some (a / 64 * 64)
                     | None -> None)
                   [ 0; lines / 2 * 64 ]
             | exception Fsapi.Errno.Error _ -> []))
      |> List.sort_uniq compare
    in
    Faults.arm plane;
    List.iter (Runner.apply st fds) w.W.ops;
    ((fun site -> Faults.calls plane site), poison)
  in
  let site_points =
    List.concat_map
      (fun site ->
        let n = calls site in
        if n = 0 then []
        else
          let idxs =
            List.sort_uniq compare [ 0; n / 2; max 0 (n - 1) ]
            |> List.filteri (fun i _ -> i < max_per_site)
          in
          List.concat_map
            (fun from ->
              List.map
                (fun d -> [ Resource (Faults.rfault site ~from d) ])
                durations)
            idxs)
      Faults.all_sites
  in
  let poison_points = List.map (fun a -> [ Poison a ]) poison_candidates in
  let scrub_points =
    [ [ Scrub_wear 1 ] ]
    @
    match poison_candidates with
    | a :: _ -> [ [ Poison a; Scrub_wear max_int ] ]
    | [] -> []
  in
  let combo =
    (* one multi-fault trial keeps the shrinker honest *)
    let rs =
      List.filter_map
        (fun site ->
          if calls site > 0 then
            Some (Resource (Faults.rfault site ~from:0 (Faults.Transient 1)))
          else None)
        Faults.all_sites
    in
    let ps = match poison_candidates with a :: _ -> [ Poison a ] | [] -> [] in
    match rs @ ps with [] -> [] | l -> [ l ]
  in
  let degraded_points =
    match kind with
    | Splitfs _ ->
        [
          [
            Resource
              (Faults.rfault ~origin:Faults.Staging_prealloc Faults.Alloc
                 ~from:0 Faults.Sticky);
          ];
        ]
    | Ext4_dax -> []
  in
  let trials =
    List.map (fun p -> (p, false)) (site_points @ poison_points @ scrub_points @ combo)
    @ List.map (fun p -> (p, true)) degraded_points
  in
  (* fan the trials over the domain pool (every trial builds its own
     env/stack and fault plane); merge tallies, summed counts and
     violations over the results in trial order, so the report — and
     which violation gets the shrinking budget — is identical at any
     job count *)
  let results =
    Par.map ?jobs
      (fun _ (points, tiny_staging) ->
        Runner.run_trial ~tiny_staging kind w ~points)
      trials
  in
  let totals = Faults.counts (Faults.create ()) in
  let tallies = [| 0; 0; 0; 0 |] in
  let violations = ref [] in
  List.iter2
    (fun (points, tiny_staging) (t : Runner.trial) ->
      add_counts totals t.Runner.tcounts;
      (match t.Runner.outcome with
      | Runner.Untriggered -> tallies.(0) <- tallies.(0) + 1
      | Runner.Masked -> tallies.(1) <- tallies.(1) + 1
      | Runner.Retried -> tallies.(2) <- tallies.(2) + 1
      | Runner.Errno_surfaced -> tallies.(3) <- tallies.(3) + 1);
      List.iter
        (fun (file, reason) ->
          let shrunk =
            if !violations = [] then shrink ~tiny_staging kind w ~points
            else points
          in
          violations :=
            {
              v_stack = stack_name kind;
              v_points = points;
              v_file = file;
              v_reason = reason;
              v_errno = t.Runner.errno;
              v_shrunk = shrunk;
            }
            :: !violations)
        t.Runner.violations)
    trials results;
  {
    s_stack = stack_name kind;
    s_trials = List.length trials;
    s_untriggered = tallies.(0);
    s_masked = tallies.(1);
    s_retried = tallies.(2);
    s_errno = tallies.(3);
    s_counts = totals;
    s_violations = List.rev !violations;
  }

(** The full campaign: every stack with the same budget. Each stack's
    trials already fan over the shared pool, so stacks run sequentially
    here — their reports print incrementally and the pool stays fed. *)
let run ?seed ?nops ?max_per_site ?jobs () =
  List.map
    (fun kind -> check_stack ?seed ?nops ?max_per_site ?jobs kind)
    all_stacks

let clean reports = List.for_all (fun r -> r.s_violations = []) reports

(* ------------------------------------------------------------------ *)
(* Oracle self-test                                                     *)
(* ------------------------------------------------------------------ *)

(** Regression test for the oracle itself: break the degraded-write path
    (writes silently dropped instead of routed through the kernel) and
    check that the campaign's degraded-write trial flags it. Returns
    [true] when the oracle caught the injected bug. The switch is
    per-env ([Env.checks]), so no other trial — concurrent or later —
    can observe it. *)
let oracle_catches_dropped_writes ?(seed = 0xFA17) ?(nops = 24) () =
  let checks =
    { (Pmem.Env.default_checks ()) with Pmem.Env.honest_degraded_writes = false }
  in
  let w = W.generate ~mode:Splitfs.Config.Sync ~seed ~scale:16 ~nops () in
  let t =
    Runner.run_trial ~tiny_staging:true ~checks (Splitfs Splitfs.Config.Sync) w
      ~points:
        [
          Resource
            (Faults.rfault ~origin:Faults.Staging_prealloc Faults.Alloc ~from:0
               Faults.Sticky);
        ]
  in
  t.Runner.violations <> []
