(** Closed-loop multi-client driver: N concurrent clients over one shared
    PM device and kernel, dispatched by {!Sched}.

    Process model per file system:
    - ext4 DAX: one shared kernel instance; each client is a process with
      its own fd table ([Kernelfs.Syscall.make] over the shared [Ext4.t]),
      so all clients contend on the same jbd2 journal, inode locks and PM
      bandwidth.
    - SplitFS: the same shared kernel, plus a private U-Split instance per
      client (its own staging pool and op-log, paper §3.2) — exactly how
      independent applications share a SplitFS mount.
    - PMFS / NOVA: one shared in-kernel file system; clients share it the
      way processes share a mount (their file sets are disjoint).

    The workload is the paper's concurrency stressor: each client appends
    [write_size]-byte records to a private file, fsyncing every
    [fsync_every] appends. Private files mean no lock contention between
    SplitFS clients — what remains shared is the kernel journal (ext4's
    scaling bottleneck) and PM bandwidth, which is the comparison the
    scaling experiment is after. *)

let mb = 1024 * 1024

type params = {
  ops_per_client : int;
  write_size : int;
  fsync_every : int;
}

let default_params = { ops_per_client = 200; write_size = 4096; fsync_every = 10 }

type result = {
  spec : Fs_config.spec;
  nclients : int;
  total_ops : int;  (** scheduler dispatches across all clients *)
  makespan_ns : float;  (** first spawn to last client completion *)
  kops_per_s : float;  (** aggregate throughput in simulated kops/s *)
  lock_wait_ns : float;
  bw_wait_ns : float;
  trace_hash : int;  (** fingerprint of the dispatch interleaving *)
}

(** Small staging footprint so 16 U-Split instances fit one device. *)
let scaling_cfg mode =
  {
    Splitfs.Config.default with
    Splitfs.Config.mode;
    staging_files = 2;
    staging_size = 2 * mb;
    oplog_size = 1 * mb;
  }

(** Build one shared stack and a per-client [Fsapi.Fs.t] view of it. *)
let build spec ~nclients =
  let env = Pmem.Env.create ~capacity:(256 * mb) () in
  let shared_kernel () = Kernelfs.Ext4.mkfs ~journal_len:(8 * mb) env in
  let fss =
    match spec with
    | Fs_config.Ext4_dax ->
        let kfs = shared_kernel () in
        Array.init nclients (fun _ ->
            Kernelfs.Syscall.as_fsapi (Kernelfs.Syscall.make kfs))
    | Fs_config.Splitfs_posix | Fs_config.Splitfs_sync
    | Fs_config.Splitfs_strict ->
        let mode =
          match spec with
          | Fs_config.Splitfs_posix -> Splitfs.Config.Posix
          | Fs_config.Splitfs_sync -> Splitfs.Config.Sync
          | _ -> Splitfs.Config.Strict
        in
        let kfs = shared_kernel () in
        Array.init nclients (fun i ->
            let sys = Kernelfs.Syscall.make kfs in
            let u =
              Splitfs.Usplit.mount ~cfg:(scaling_cfg mode) ~sys ~env
                ~instance:i ()
            in
            Splitfs.Usplit.as_fsapi u)
    | Fs_config.Pmfs ->
        let p = Baselines.Pmfs.mkfs env in
        Array.init nclients (fun _ -> Baselines.Pmfs.as_fsapi p)
    | Fs_config.Nova_relaxed | Fs_config.Nova_strict ->
        let mode =
          if spec = Fs_config.Nova_relaxed then Baselines.Nova.Relaxed
          else Baselines.Nova.Strict
        in
        let n = Baselines.Nova.mkfs env ~mode in
        Array.init nclients (fun _ -> Baselines.Nova.as_fsapi n)
    | _ ->
        invalid_arg
          (Printf.sprintf "Multiclient.build: no multi-client model for %s"
             (Fs_config.name spec))
  in
  (env, fss)

(** One client's closed loop: open a private file, append, fsync
    periodically, close. Step 0 opens, steps 1..ops append, the final step
    fsyncs and closes. *)
let client_step (fs : Fsapi.Fs.t) ~path ~p =
  let fd = ref (-1) in
  let buf = Bytes.make p.write_size 'w' in
  fun (_ : Sched.client) i ->
    if i = 0 then begin
      fd := fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw;
      true
    end
    else if i <= p.ops_per_client then begin
      let at = (i - 1) * p.write_size in
      let n = fs.Fsapi.Fs.pwrite !fd ~buf ~boff:0 ~len:p.write_size ~at in
      assert (n = p.write_size);
      if i mod p.fsync_every = 0 then fs.Fsapi.Fs.fsync !fd;
      true
    end
    else if i = p.ops_per_client + 1 then begin
      fs.Fsapi.Fs.fsync !fd;
      fs.Fsapi.Fs.close !fd;
      true
    end
    else false

(** Run [nclients] concurrent clients of [spec] and report aggregate
    throughput plus the contention breakdown. Fully deterministic.
    [on_env] sees the environment after the stack is built and before any
    client runs (the CLI uses it to enable tracing); [instrument] wraps
    every client's [Fsapi.Fs.t] in {!Instrument.fs} so per-op latency
    histograms and [op:*] spans are collected. *)
let run ?(params = default_params) ?(instrument = false) ?on_env spec ~nclients
    =
  let env, fss = build spec ~nclients in
  (match on_env with Some f -> f env | None -> ());
  let fss =
    if instrument then
      Array.map (Instrument.fs ~key:(Fs_config.name spec) env) fss
    else fss
  in
  let s = Sched.create env in
  for c = 0 to nclients - 1 do
    let path = Printf.sprintf "/client%d" c in
    ignore
      (Sched.spawn s
         ~name:(Printf.sprintf "%s-c%d" (Fs_config.name spec) c)
         ~step:(client_step fss.(c) ~path ~p:params))
  done;
  Sched.run s;
  let makespan_ns = Sched.makespan s in
  let total_ops = Sched.total_ops s in
  let stats = env.Pmem.Env.stats in
  {
    spec;
    nclients;
    total_ops;
    makespan_ns;
    kops_per_s = float_of_int total_ops /. makespan_ns *. 1e6;
    lock_wait_ns = stats.Pmem.Stats.lock_wait_ns;
    bw_wait_ns = stats.Pmem.Stats.bw_wait_ns;
    trace_hash = Sched.trace_hash s;
  }
