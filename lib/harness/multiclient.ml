(** Closed-loop multi-client driver: N concurrent clients over one shared
    PM device and kernel, dispatched by {!Sched}.

    Process model per file system:
    - ext4 DAX: one shared kernel instance; each client is a process with
      its own fd table ([Kernelfs.Syscall.make] over the shared [Ext4.t]),
      so all clients contend on the same jbd2 journal, inode locks and PM
      bandwidth.
    - SplitFS: the same shared kernel, plus a private U-Split instance per
      client (its own staging pool and op-log, paper §3.2) — exactly how
      independent applications share a SplitFS mount.
    - PMFS / NOVA: one shared in-kernel file system; clients share it the
      way processes share a mount (their file sets are disjoint).

    The workload is the paper's concurrency stressor: each client appends
    [write_size]-byte records to a private file, fsyncing every
    [fsync_every] appends. Private files mean no lock contention between
    SplitFS clients — what remains shared is the kernel journal (ext4's
    scaling bottleneck) and PM bandwidth, which is the comparison the
    scaling experiment is after. *)

let mb = 1024 * 1024

type params = {
  ops_per_client : int;
  write_size : int;
  fsync_every : int;
}

let default_params = { ops_per_client = 200; write_size = 4096; fsync_every = 10 }

type result = {
  spec : Fs_config.spec;
  nclients : int;
  total_ops : int;  (** scheduler dispatches across all clients *)
  makespan_ns : float;  (** first spawn to last client completion *)
  kops_per_s : float;  (** aggregate throughput in simulated kops/s *)
  lock_wait_ns : float;
  bw_wait_ns : float;
  trace_hash : int;  (** fingerprint of the dispatch interleaving *)
}

(** Small staging footprint so 16 U-Split instances fit one device. *)
let scaling_cfg mode =
  {
    Splitfs.Config.default with
    Splitfs.Config.mode;
    staging_files = 2;
    staging_size = 2 * mb;
    oplog_size = 1 * mb;
  }

(** Build one shared stack and a per-client [Fsapi.Fs.t] view of it. *)
let build spec ~nclients =
  let env = Pmem.Env.create ~capacity:(256 * mb) () in
  let shared_kernel () = Kernelfs.Ext4.mkfs ~journal_len:(8 * mb) env in
  let fss =
    match spec with
    | Fs_config.Ext4_dax ->
        let kfs = shared_kernel () in
        Array.init nclients (fun _ ->
            Kernelfs.Syscall.as_fsapi (Kernelfs.Syscall.make kfs))
    | Fs_config.Splitfs_posix | Fs_config.Splitfs_sync
    | Fs_config.Splitfs_strict ->
        let mode =
          match spec with
          | Fs_config.Splitfs_posix -> Splitfs.Config.Posix
          | Fs_config.Splitfs_sync -> Splitfs.Config.Sync
          | _ -> Splitfs.Config.Strict
        in
        let kfs = shared_kernel () in
        Array.init nclients (fun i ->
            let sys = Kernelfs.Syscall.make kfs in
            let u =
              Splitfs.Usplit.mount ~cfg:(scaling_cfg mode) ~sys ~env
                ~instance:i ()
            in
            Splitfs.Usplit.as_fsapi u)
    | Fs_config.Pmfs ->
        let p = Baselines.Pmfs.mkfs env in
        Array.init nclients (fun _ -> Baselines.Pmfs.as_fsapi p)
    | Fs_config.Nova_relaxed | Fs_config.Nova_strict ->
        let mode =
          if spec = Fs_config.Nova_relaxed then Baselines.Nova.Relaxed
          else Baselines.Nova.Strict
        in
        let n = Baselines.Nova.mkfs env ~mode in
        Array.init nclients (fun _ -> Baselines.Nova.as_fsapi n)
    | _ ->
        invalid_arg
          (Printf.sprintf "Multiclient.build: no multi-client model for %s"
             (Fs_config.name spec))
  in
  (env, fss)

(** One client's closed loop: open a private file, append, fsync
    periodically, close. Step 0 opens, steps 1..ops append, the final step
    fsyncs and closes. *)
let client_step (fs : Fsapi.Fs.t) ~path ~p =
  let fd = ref (-1) in
  let buf = Bytes.make p.write_size 'w' in
  fun (_ : Sched.client) i ->
    if i = 0 then begin
      fd := fs.Fsapi.Fs.open_ path Fsapi.Flags.create_rw;
      true
    end
    else if i <= p.ops_per_client then begin
      let at = (i - 1) * p.write_size in
      let n = fs.Fsapi.Fs.pwrite !fd ~buf ~boff:0 ~len:p.write_size ~at in
      assert (n = p.write_size);
      if i mod p.fsync_every = 0 then fs.Fsapi.Fs.fsync !fd;
      true
    end
    else if i = p.ops_per_client + 1 then begin
      fs.Fsapi.Fs.fsync !fd;
      fs.Fsapi.Fs.close !fd;
      true
    end
    else false

(** Run [nclients] concurrent clients of [spec] and report aggregate
    throughput plus the contention breakdown. Fully deterministic.
    [on_env] sees the environment after the stack is built and before any
    client runs (the CLI uses it to enable tracing); [instrument] wraps
    every client's [Fsapi.Fs.t] in {!Instrument.fs} so per-op latency
    histograms and [op:*] spans are collected. *)
let run ?(params = default_params) ?(instrument = false) ?on_env spec ~nclients
    =
  let env, fss = build spec ~nclients in
  (match on_env with Some f -> f env | None -> ());
  let fss =
    if instrument then
      Array.map (Instrument.fs ~key:(Fs_config.name spec) env) fss
    else fss
  in
  let s = Sched.create env in
  for c = 0 to nclients - 1 do
    let path = Printf.sprintf "/client%d" c in
    ignore
      (Sched.spawn s
         ~name:(Printf.sprintf "%s-c%d" (Fs_config.name spec) c)
         ~step:(client_step fss.(c) ~path ~p:params))
  done;
  Sched.run s;
  let makespan_ns = Sched.makespan s in
  let total_ops = Sched.total_ops s in
  let stats = env.Pmem.Env.stats in
  {
    spec;
    nclients;
    total_ops;
    makespan_ns;
    kops_per_s = float_of_int total_ops /. makespan_ns *. 1e6;
    lock_wait_ns = stats.Pmem.Stats.lock_wait_ns;
    bw_wait_ns = stats.Pmem.Stats.bw_wait_ns;
    trace_hash = Sched.trace_hash s;
  }

(* ------------------------------------------------------------------ *)
(* Scale-out serving tier: tenant-sharded namespace, 10k actors (PR 6)  *)
(* ------------------------------------------------------------------ *)

(** Result of one multi-tenant scale run. Latency numbers come from the
    merged per-op obs histograms of the run's instrumented file-system
    views (simulated ns); [sr_host_run_s] is host wall time inside
    [Sched.run], the scheduler-overhead side of the experiment. *)
type scale_result = {
  sr_spec : Fs_config.spec;
  sr_nactors : int;
  sr_tenants : int;
  sr_total_ops : int;
  sr_makespan_ns : float;
  sr_kops_per_s : float;
  sr_lock_wait_ns : float;
  sr_bw_wait_ns : float;
  sr_trace_hash : int;
  sr_p50_ns : float;
  sr_p999_ns : float;
  sr_slo_ns : float;  (** the latency objective judged against *)
  sr_slo_attainment : float;  (** fraction of fs ops within [sr_slo_ns] *)
  sr_alloc_steals : int;  (** cross-shard allocator steals (K-Split stacks) *)
  sr_dispatches : int;
  sr_host_run_s : float;
  sr_timeline : Obs.Timeline.t option;
      (** virtual-time telemetry of the run, when [~timeline:true] *)
  sr_forensics : Obs.span Obs.Forensics.t option;
      (** top-k slowest-op exemplars per op, when [~forensics:true] *)
}

(** Tenant count for an actor fleet: one tenant per 8 actors, capped so
    per-tenant state (staging pools, op-logs) fits one device. *)
let tenants_for nactors = max 1 (min 32 (nactors / 8))

(** Per-tenant U-Split footprint sized for fleets: a staging handle is
    held by every actor with unsynced staged bytes, so concurrent staging
    consumption is ~[nactors * staging_size] — small files keep a 10k-actor
    fleet inside the device. The pool is pre-created at mount with one
    handle per tenant actor plus slack: foreground staging-file creation
    (fallocate plus a journal commit each) is exactly the media traffic
    the paper's background pre-allocation thread keeps off the serving
    path, so it belongs in setup, not in the measured window. *)
let scale_cfg mode ~actors_per_tenant =
  {
    Splitfs.Config.default with
    Splitfs.Config.mode;
    staging_files = actors_per_tenant + 4;
    staging_size = 64 * 1024;
    oplog_size = mb / 4;
  }

(** Device capacity for an N-actor run: a fixed floor for tenant data,
    journal and op-logs, plus the per-actor staging/WAL footprint. *)
let scale_capacity nactors =
  max (256 * mb) ((160 * mb) + (nactors * 128 * 1024))

(** Build the tenant-sharded stack: one kernel with [shards] allocator
    groups and journal streams, and one file-system view per tenant
    (per-tenant fd table, plus a per-tenant U-Split instance for SplitFS
    — a tenant's actors share their tenant's staging pool and op-log). *)
let build_scale spec ~nactors ~tenants ~shards env =
  let actors_per_tenant = (nactors + tenants - 1) / tenants in
  let kernel () =
    Kernelfs.Ext4.mkfs ~journal_len:(8 * mb) ~alloc_shards:shards
      ~journal_streams:shards env
  in
  match spec with
  | Fs_config.Ext4_dax ->
      let kfs = kernel () in
      ( Array.init tenants (fun _ ->
            Kernelfs.Syscall.as_fsapi (Kernelfs.Syscall.make kfs)),
        Some kfs )
  | Fs_config.Splitfs_posix | Fs_config.Splitfs_sync | Fs_config.Splitfs_strict
    ->
      let mode =
        match spec with
        | Fs_config.Splitfs_posix -> Splitfs.Config.Posix
        | Fs_config.Splitfs_sync -> Splitfs.Config.Sync
        | _ -> Splitfs.Config.Strict
      in
      let kfs = kernel () in
      ( Array.init tenants (fun i ->
            let sys = Kernelfs.Syscall.make kfs in
            let u =
              Splitfs.Usplit.mount
                ~cfg:(scale_cfg mode ~actors_per_tenant)
                ~sys ~env ~instance:i ()
            in
            Splitfs.Usplit.as_fsapi u),
        Some kfs )
  | Fs_config.Pmfs ->
      let p = Baselines.Pmfs.mkfs env in
      (Array.init tenants (fun _ -> Baselines.Pmfs.as_fsapi p), None)
  | Fs_config.Nova_relaxed | Fs_config.Nova_strict ->
      let mode =
        if spec = Fs_config.Nova_relaxed then Baselines.Nova.Relaxed
        else Baselines.Nova.Strict
      in
      let n = Baselines.Nova.mkfs env ~mode in
      (Array.init tenants (fun _ -> Baselines.Nova.as_fsapi n), None)
  | _ ->
      invalid_arg
        (Printf.sprintf "Multiclient.build_scale: no multi-tenant model for %s"
           (Fs_config.name spec))

(** Run [nactors] multi-tenant serving actors of [spec] — the 10k-actor
    experiment. Tenant roots are set up unmetered-by-histogram before the
    fleet spawns; every actor's file-system view is instrumented so p999
    and SLO attainment come from the same obs histograms the latency
    experiment uses. Fully deterministic in simulated time; host wall
    time inside the scheduler is reported separately. *)
let run_scale ?(cfg = Workloads.Multitenant.default_cfg) ?(slo_ns = 100_000.)
    ?capacity ?tenants ?shards ?on_env ?(timeline = false) ?(forensics = false)
    spec ~nactors =
  let capacity =
    match capacity with Some c -> c | None -> scale_capacity nactors
  in
  let tenants =
    match tenants with Some t -> max 1 t | None -> tenants_for nactors
  in
  let shards = match shards with Some s -> max 1 s | None -> min 16 tenants in
  let env = Pmem.Env.create ~capacity () in
  let tl =
    if timeline then
      match Obs.timeline env.Pmem.Env.obs with
      | Some tl -> Some tl  (* SPLITFS_TIMELINE already attached one *)
      | None -> Some (Pmem.Env.enable_timeline env)
    else Obs.timeline env.Pmem.Env.obs
  in
  let fo =
    if forensics then Some (Obs.Forensics.create ~ncats:Obs.ncats ())
    else None
  in
  (match fo with
  | Some fo ->
      Obs.set_capture env.Pmem.Env.obs
        (Some (fun s -> Obs.Forensics.on_span fo s))
  | None -> ());
  (match on_env with Some f -> f env | None -> ());
  let raw_fss, kfs = build_scale spec ~nactors ~tenants ~shards env in
  (* kernel-side telemetry: cross-shard allocator steals and the fill
     level of every journal stream (the per-shard serialization KucoFS
     warns about is visible as one stream's depth running hot) *)
  (match (tl, kfs) with
  | Some tl, Some kfs ->
      Obs.Timeline.add_source tl ~name:"alloc/steals" (fun () ->
          float_of_int (Kernelfs.Alloc.steals (Kernelfs.Ext4.allocator kfs)));
      Array.iteri
        (fun k (st : Kernelfs.Journal.stream) ->
          Obs.Timeline.add_source tl
            ~name:(Printf.sprintf "journal/stream%d/bytes" k)
            (fun () -> float_of_int st.Kernelfs.Journal.head))
        (Kernelfs.Ext4.journal kfs).Kernelfs.Journal.streams
  | _ -> ());
  (* setup through the raw views: tenant roots and preallocated data files
     must not pollute the serving-path latency histograms *)
  Array.iteri
    (fun k fs -> Workloads.Multitenant.setup_tenant fs ~cfg ~tenant:k)
    raw_fss;
  let fss =
    Array.map (Instrument.fs ~key:(Fs_config.name spec) ?forensics:fo env)
      raw_fss
  in
  let zipf =
    Workloads.Zipf.create ~theta:cfg.Workloads.Multitenant.zipf_theta
      cfg.Workloads.Multitenant.data_records
  in
  let think () = Pmem.Env.cpu env cfg.Workloads.Multitenant.think_ns in
  let s = Sched.create env in
  for a = 0 to nactors - 1 do
    let tenant = a mod tenants in
    let st =
      Workloads.Multitenant.make_actor ~fs:fss.(tenant) ~think ~zipf ~cfg
        ~tenant ~idx:a
    in
    ignore
      (Sched.spawn s
         ~name:(Printf.sprintf "t%d-a%d" tenant a)
         ~step:(fun _ i -> Workloads.Multitenant.step cfg st i))
  done;
  (* per-tenant throughput series: one source per tenant summing its
     actors' completed ops — a (stack x tenant) time series at <= 32
     tenants, readable mid-run without touching the simulated clock *)
  (match tl with
  | Some tl ->
      let all = Sched.clients s in
      for k = 0 to tenants - 1 do
        let mine =
          Array.of_list
            (List.filter (fun (c : Sched.client) -> c.Sched.c_id mod tenants = k) all)
        in
        Obs.Timeline.add_source tl ~name:(Printf.sprintf "tenant%d/ops" k)
          (fun () ->
            Array.fold_left
              (fun acc (c : Sched.client) ->
                acc +. float_of_int c.Sched.ops_done)
              0. mine)
      done
  | None -> ());
  let t0 = Sys.time () in
  Sched.run s;
  let host_run_s = Sys.time () -. t0 in
  (* close the books at the fleet's absolute end time (sample times are
     absolute actor clocks, makespan is relative to the first spawn) *)
  (match tl with
  | Some tl ->
      let end_ns =
        List.fold_left
          (fun acc (c : Sched.client) ->
            Float.max acc c.Sched.actor.Pmem.Simclock.a_now)
          (Pmem.Env.now env) (Sched.clients s)
      in
      Obs.Timeline.flush tl ~now:end_ns
  | None -> ());
  let merged = Obs.Hist.create () in
  let prefix = Fs_config.name spec ^ "/" in
  List.iter
    (fun (key, h) ->
      if String.length key >= String.length prefix
         && String.sub key 0 (String.length prefix) = prefix
      then Obs.Hist.merge ~into:merged h)
    (Obs.hists env.Pmem.Env.obs);
  let makespan_ns = Sched.makespan s in
  let total_ops = Sched.total_ops s in
  let stats = env.Pmem.Env.stats in
  {
    sr_spec = spec;
    sr_nactors = nactors;
    sr_tenants = tenants;
    sr_total_ops = total_ops;
    sr_makespan_ns = makespan_ns;
    sr_kops_per_s = float_of_int total_ops /. makespan_ns *. 1e6;
    sr_lock_wait_ns = stats.Pmem.Stats.lock_wait_ns;
    sr_bw_wait_ns = stats.Pmem.Stats.bw_wait_ns;
    sr_trace_hash = Sched.trace_hash s;
    sr_p50_ns = Obs.Hist.percentile merged 50.;
    sr_p999_ns = Obs.Hist.percentile merged 99.9;
    sr_slo_ns = slo_ns;
    sr_slo_attainment = Obs.Hist.frac_below merged slo_ns;
    sr_alloc_steals =
      (match kfs with
      | Some kfs -> Kernelfs.Alloc.steals (Kernelfs.Ext4.allocator kfs)
      | None -> 0);
    sr_dispatches = Sched.dispatches s;
    sr_host_run_s = host_run_s;
    sr_timeline = tl;
    sr_forensics = fo;
  }
