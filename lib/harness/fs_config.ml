(** Named file-system configurations: everything the evaluation compares.

    Each [make] builds a fresh PM device and the full stack on top of it,
    so experiments are isolated and deterministic. *)

type spec =
  | Ext4_dax
  | Splitfs_posix
  | Splitfs_sync
  | Splitfs_strict
  | Splitfs_fams  (** failure-atomic msync: staged stores, atomic publish *)
  | Splitfs_split_only  (** Fig. 3 ablation: no staging, no relink *)
  | Splitfs_staging_only  (** Fig. 3 ablation: staging but copy on fsync *)
  | Pmfs
  | Nova_relaxed
  | Nova_strict
  | Strata

let all =
  [
    Ext4_dax;
    Splitfs_posix;
    Splitfs_sync;
    Splitfs_strict;
    Splitfs_fams;
    Splitfs_split_only;
    Splitfs_staging_only;
    Pmfs;
    Nova_relaxed;
    Nova_strict;
    Strata;
  ]

let name = function
  | Ext4_dax -> "ext4-dax"
  | Splitfs_posix -> "splitfs-posix"
  | Splitfs_sync -> "splitfs-sync"
  | Splitfs_strict -> "splitfs-strict"
  | Splitfs_fams -> "splitfs-fams"
  | Splitfs_split_only -> "splitfs-split-only"
  | Splitfs_staging_only -> "splitfs-staging-only"
  | Pmfs -> "pmfs"
  | Nova_relaxed -> "nova-relaxed"
  | Nova_strict -> "nova-strict"
  | Strata -> "strata"

let of_name s =
  match List.find_opt (fun spec -> name spec = s) all with
  | Some spec -> spec
  | None -> invalid_arg (Printf.sprintf "unknown file system %S" s)

type stack = {
  spec : spec;
  env : Pmem.Env.t;
  fs : Fsapi.Fs.t;
  sys : Kernelfs.Syscall.t option;  (** the kernel below SplitFS / ext4 *)
  usplit : Splitfs.Usplit.t option;
  strata : Baselines.Strata.t option;
}

let splitfs_experiment_cfg mode =
  {
    Splitfs.Config.default with
    Splitfs.Config.mode;
    staging_files = 4;
    staging_size = 20 * 1024 * 1024;
    oplog_size = 4 * 1024 * 1024;
  }

(** Build a stack. [capacity] sizes the simulated PM device. *)
let make ?(capacity = 256 * 1024 * 1024) ?timing ?splitfs_cfg spec =
  let env = Pmem.Env.create ~capacity ?timing () in
  let kernel () =
    let kfs = Kernelfs.Ext4.mkfs ~journal_len:(8 * 1024 * 1024) env in
    Kernelfs.Syscall.make kfs
  in
  let splitfs cfg =
    let cfg = match splitfs_cfg with Some c -> c | None -> cfg in
    let sys = kernel () in
    let u = Splitfs.Usplit.mount ~cfg ~sys ~env ~instance:0 () in
    {
      spec;
      env;
      fs = Splitfs.Usplit.as_fsapi u;
      sys = Some sys;
      usplit = Some u;
      strata = None;
    }
  in
  match spec with
  | Ext4_dax ->
      let sys = kernel () in
      {
        spec;
        env;
        fs = Kernelfs.Syscall.as_fsapi sys;
        sys = Some sys;
        usplit = None;
        strata = None;
      }
  | Splitfs_posix -> splitfs (splitfs_experiment_cfg Splitfs.Config.Posix)
  | Splitfs_sync -> splitfs (splitfs_experiment_cfg Splitfs.Config.Sync)
  | Splitfs_strict -> splitfs (splitfs_experiment_cfg Splitfs.Config.Strict)
  | Splitfs_fams -> splitfs (splitfs_experiment_cfg Splitfs.Config.Fams)
  | Splitfs_split_only ->
      splitfs
        {
          (splitfs_experiment_cfg Splitfs.Config.Posix) with
          Splitfs.Config.use_staging = false;
          use_relink = false;
        }
  | Splitfs_staging_only ->
      splitfs
        {
          (splitfs_experiment_cfg Splitfs.Config.Posix) with
          Splitfs.Config.use_relink = false;
        }
  | Pmfs ->
      let p = Baselines.Pmfs.mkfs env in
      { spec; env; fs = Baselines.Pmfs.as_fsapi p; sys = None; usplit = None; strata = None }
  | Nova_relaxed ->
      let n = Baselines.Nova.mkfs env ~mode:Baselines.Nova.Relaxed in
      { spec; env; fs = Baselines.Nova.as_fsapi n; sys = None; usplit = None; strata = None }
  | Nova_strict ->
      let n = Baselines.Nova.mkfs env ~mode:Baselines.Nova.Strict in
      { spec; env; fs = Baselines.Nova.as_fsapi n; sys = None; usplit = None; strata = None }
  | Strata ->
      let s = Baselines.Strata.mkfs ~log_len:(4 * 1024 * 1024) env in
      { spec; env; fs = Baselines.Strata.as_fsapi s; sys = None; usplit = None; strata = Some s }
