(** One function per table/figure of the paper's evaluation. Every function
    prints a paper-style table and returns its measurements so tests can
    assert the expected shapes (who wins, by roughly what factor).

    Absolute numbers come from the simulation's cost model (see
    [Pmem.Timing]); the paper's published values are printed alongside
    where the paper gives them. *)

open Fs_config

let mb = 1024 * 1024

(* the paper's media baseline: writing 4 KB to PM takes 671 ns (§1) *)
let media_4k = 671.

(* ------------------------------------------------------------------ *)
(* Table 1: software overhead of a 4 KB append                          *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  t1_fs : string;
  t1_append_ns : float;
  t1_overhead_ns : float;
  t1_overhead_pct : float;
}

let append_bench stack ~total_bytes =
  (* the paper's Table 1 measures the bare append operation: no periodic
     fsync (relink amortises over the whole run via staging turnover) *)
  let cfg =
    {
      Workloads.Iopattern.default_config with
      Workloads.Iopattern.file_size = total_bytes;
      fsync_every = max_int;
    }
  in
  Runner.measure stack "append" (fun () ->
      Workloads.Iopattern.run stack.fs cfg Workloads.Iopattern.Append)

let table1_specs =
  [
    (Ext4_dax, Some (9002., 8331., 1241.));
    (Pmfs, Some (4150., 3479., 518.));
    (Nova_strict, Some (3021., 2350., 350.));
    (Splitfs_strict, Some (1251., 580., 86.));
    (Splitfs_posix, Some (1160., 488., 73.));
  ]

let table1 ?(total_mb = 16) ?(print = true) () =
  let rows =
    List.map
      (fun (spec, _) ->
        let stack = make spec in
        let m = append_bench stack ~total_bytes:(total_mb * mb) in
        let per_op = Runner.ns_per_op m in
        {
          t1_fs = name spec;
          t1_append_ns = per_op;
          t1_overhead_ns = per_op -. media_4k;
          t1_overhead_pct = (per_op -. media_4k) /. media_4k *. 100.;
        })
      table1_specs
  in
  if print then
    Runner.print_table ~title:"Table 1: software overhead of a 4K append"
      [ "file system"; "append (ns)"; "overhead (ns)"; "overhead (%)";
        "paper append"; "paper overhead" ]
      (List.map2
         (fun r (_, paper) ->
           let pa, po =
             match paper with
             | Some (a, o, _) -> (Runner.f0 a, Runner.f0 o)
             | None -> ("-", "-")
           in
           [
             r.t1_fs;
             Runner.f0 r.t1_append_ns;
             Runner.f0 r.t1_overhead_ns;
             Runner.f0 r.t1_overhead_pct ^ "%";
             pa;
             po;
           ])
         rows table1_specs);
  rows

(* ------------------------------------------------------------------ *)
(* Table 2: PM performance characteristics                              *)
(* ------------------------------------------------------------------ *)

let table2 ?(print = true) () =
  let env = Pmem.Env.create ~capacity:(16 * mb) () in
  let dev = env.Pmem.Env.dev in
  let timed f =
    let t0 = Pmem.Env.now env in
    f ();
    Pmem.Env.now env -. t0
  in
  let line = Bytes.make 64 'x' in
  let buf = Bytes.create 64 in
  (* sequential read latency: second of two adjacent line loads *)
  Pmem.Device.load dev ~addr:0 buf ~off:0 ~len:64;
  let seq_read = timed (fun () -> Pmem.Device.load dev ~addr:64 buf ~off:0 ~len:64) in
  (* random read latency: non-adjacent load *)
  let rand_read = timed (fun () -> Pmem.Device.load dev ~addr:524288 buf ~off:0 ~len:64) in
  (* store + flush + fence of one cache line *)
  let sff =
    timed (fun () ->
        Pmem.Device.store dev ~addr:4096 line ~off:0 ~len:64;
        Pmem.Device.flush dev ~addr:4096 ~len:64;
        Pmem.Device.fence dev)
  in
  (* bandwidths over a 4 MB transfer *)
  let big = Bytes.make (4 * mb) 'b' in
  let wr = timed (fun () -> Pmem.Device.store_nt dev ~addr:0 big ~off:0 ~len:(4 * mb)) in
  Pmem.Device.load dev ~addr:(8 * mb) buf ~off:0 ~len:64;
  let rd = timed (fun () -> Pmem.Device.load dev ~addr:0 big ~off:0 ~len:(4 * mb)) in
  let read_bw = float_of_int (4 * mb) /. rd in
  let write_bw = float_of_int (4 * mb) /. wr in
  let rows =
    [
      ("sequential read latency (ns)", seq_read, 169.);
      ("random read latency (ns)", rand_read, 305.);
      ("store + flush + fence (ns)", sff, 91.);
      ("read bandwidth (GB/s)", read_bw, 39.4);
      ("effective 4K write (ns)", Pmem.Timing.nt_write_cost env.Pmem.Env.timing 4096, 671.);
      ("write bandwidth (GB/s)", write_bw, float_of_int (4 * mb) /. (671. /. 4096. *. float_of_int (4 * mb)));
    ]
  in
  if print then
    Runner.print_table ~title:"Table 2: PM performance characteristics"
      [ "property"; "measured"; "paper / target" ]
      (List.map (fun (p, m, t) -> [ p; Runner.f1 m; Runner.f1 t ]) rows);
  rows

(* ------------------------------------------------------------------ *)
(* Table 6: system call latencies (varmail microbenchmark)              *)
(* ------------------------------------------------------------------ *)

let table6 ?(iterations = 200) ?(print = true) () =
  let specs = [ Splitfs_strict; Splitfs_sync; Splitfs_posix; Ext4_dax ] in
  let rows =
    List.map
      (fun spec ->
        let stack = make spec in
        let env = stack.env in
        let lat =
          Workloads.Varmail.run stack.fs
            ~now:(fun () -> Pmem.Env.now env)
            ~iterations
        in
        (name spec, lat))
      specs
  in
  if print then begin
    let us x = Runner.f2 (x /. 1000.) in
    Runner.print_table ~title:"Table 6: system call latency (us), varmail sequence"
      ("syscall" :: List.map fst rows)
      (List.map
         (fun (label, get) ->
           label :: List.map (fun (_, l) -> us (get l)) rows)
         [
           ("open", fun l -> l.Workloads.Varmail.open_ns);
           ("close", fun l -> l.Workloads.Varmail.close_ns);
           ("append", fun l -> l.Workloads.Varmail.append_ns);
           ("fsync", fun l -> l.Workloads.Varmail.fsync_ns);
           ("read", fun l -> l.Workloads.Varmail.read_ns);
           ("unlink", fun l -> l.Workloads.Varmail.unlink_ns);
         ])
  end;
  rows

(* ------------------------------------------------------------------ *)
(* YCSB on the LSM store (Figure 6 data-intensive part, Table 7)        *)
(* ------------------------------------------------------------------ *)

let ycsb_workloads =
  Workloads.Ycsb.[ Load; A; B; C; D; E; F ]

(** Run LoadA then each Run workload on one stack; returns
    (workload, measurement) pairs. *)
let ycsb_series stack ~records ~operations =
  (* per-op application CPU: request handling, memtable walk, comparisons *)
  let think () = Pmem.Env.cpu stack.env 2500. in
  let cfg =
    {
      Workloads.Ycsb.default_config with
      Workloads.Ycsb.records;
      operations;
      value_size = 1024;
    }
  in
  let lsm =
    Apps.Lsm.open_ stack.fs
      ~cfg:{ Apps.Lsm.default_config with Apps.Lsm.memtable_budget = 512 * 1024 }
      "/leveldb"
  in
  let results =
    List.map
      (fun w ->
        let operations =
          (* workload E is scan-heavy; the paper also halves its op count *)
          if w = Workloads.Ycsb.E then { cfg with Workloads.Ycsb.operations = operations / 2 }
          else cfg
        in
        let m =
          Runner.measure stack (Workloads.Ycsb.workload_name w) (fun () ->
              (Workloads.Ycsb.run ~think lsm w operations).Workloads.Ycsb.ops_done)
        in
        (w, m))
      ycsb_workloads
  in
  Apps.Lsm.close lsm;
  results

let table7 ?(records = 4000) ?(operations = 4000) ?(print = true) () =
  let strata_stack = make Strata in
  let split_stack = make Splitfs_strict in
  let strata = ycsb_series strata_stack ~records ~operations in
  let split = ycsb_series split_stack ~records ~operations in
  let rows =
    List.map2
      (fun (w, (ms : Runner.measurement)) (_, mp) ->
        (Workloads.Ycsb.workload_name w, Runner.kops ms, Runner.kops mp))
      strata split
  in
  if print then
    Runner.print_table ~title:"Table 7: Strata vs SplitFS-strict (YCSB on LSM store)"
      [ "workload"; "strata kops/s"; "splitfs kops/s"; "splitfs/strata"; "paper" ]
      (List.map2
         (fun (w, s, p) paper ->
           [ w; Runner.f1 s; Runner.f1 p; Runner.f2 (p /. s) ^ "x"; paper ])
         rows
         [ "1.73x"; "1.76x"; "2.16x"; "2.14x"; "2.25x"; "2.03x"; "2.25x" ]);
  rows

(* ------------------------------------------------------------------ *)
(* Figure 3: contribution of each technique                             *)
(* ------------------------------------------------------------------ *)

let fig3 ?(total_mb = 16) ?(print = true) () =
  let specs =
    [ Ext4_dax; Splitfs_split_only; Splitfs_staging_only; Splitfs_posix ]
  in
  let run spec pattern =
    let stack = make spec in
    let cfg =
      {
        Workloads.Iopattern.default_config with
        Workloads.Iopattern.file_size = total_mb * mb;
      }
    in
    (match pattern with
    | Workloads.Iopattern.Append -> ()
    | _ -> Workloads.Iopattern.prepare stack.fs cfg);
    Runner.measure stack (Workloads.Iopattern.pattern_name pattern) (fun () ->
        Workloads.Iopattern.run stack.fs cfg pattern)
  in
  let rows =
    List.map
      (fun spec ->
        let ow = run spec Workloads.Iopattern.Seq_write in
        let ap = run spec Workloads.Iopattern.Append in
        (name spec, Runner.kops ow, Runner.kops ap))
      specs
  in
  if print then begin
    let base_ow, base_ap =
      match rows with (_, ow, ap) :: _ -> (ow, ap) | [] -> (1., 1.)
    in
    Runner.print_table
      ~title:"Figure 3: technique contributions (4K ops, fsync every 10)"
      [ "configuration"; "seq-overwrite kops/s"; "vs ext4"; "append kops/s"; "vs ext4" ]
      (List.map
         (fun (n, ow, ap) ->
           [
             n;
             Runner.f1 ow;
             Runner.f2 (ow /. base_ow) ^ "x";
             Runner.f1 ap;
             Runner.f2 (ap /. base_ap) ^ "x";
           ])
         rows)
  end;
  rows

(* ------------------------------------------------------------------ *)
(* Figure 4: IO patterns per guarantee group                            *)
(* ------------------------------------------------------------------ *)

let fig4_groups =
  [
    ("POSIX", Ext4_dax, [ Splitfs_posix ]);
    ("sync", Pmfs, [ Splitfs_sync ]);
    ("strict", Nova_strict, [ Strata; Splitfs_strict ]);
  ]

let fig4 ?(total_mb = 16) ?(print = true) () =
  let patterns =
    Workloads.Iopattern.[ Seq_read; Rand_read; Seq_write; Rand_write; Append ]
  in
  let run_all spec =
    let stack = make spec in
    (* §5.6: whole file in 4K ops, no periodic fsync; the timed section is
       the op loop, the final fsync/close are outside it *)
    let cfg =
      {
        Workloads.Iopattern.default_config with
        Workloads.Iopattern.file_size = total_mb * mb;
        fsync_every = max_int;
      }
    in
    Workloads.Iopattern.prepare stack.fs cfg;
    List.map
      (fun p ->
        let fd = Workloads.Iopattern.open_for stack.fs p in
        let m =
          Runner.measure stack (Workloads.Iopattern.pattern_name p) (fun () ->
              Workloads.Iopattern.run_ops stack.fs fd cfg p)
        in
        Workloads.Iopattern.finish stack.fs fd p;
        (p, m))
      patterns
  in
  let results =
    List.map
      (fun (group, baseline, challengers) ->
        (group, (baseline, run_all baseline),
         List.map (fun c -> (c, run_all c)) challengers))
      fig4_groups
  in
  if print then
    List.iter
      (fun (group, (bspec, bruns), cruns) ->
        Runner.print_table
          ~title:(Printf.sprintf "Figure 4 (%s mode): throughput, normalised to %s" group (name bspec))
          ("pattern" :: (name bspec ^ " kops/s")
           :: List.concat_map (fun (c, _) -> [ name c ^ " kops/s"; "vs base" ]) cruns)
          (List.map
             (fun (p, bm) ->
               let base = Runner.kops bm in
               Workloads.Iopattern.pattern_name p :: Runner.f1 base
               :: List.concat_map
                    (fun (_, runs) ->
                      let m = List.assoc p runs in
                      [ Runner.f1 (Runner.kops m); Runner.f2 (Runner.kops m /. base) ^ "x" ])
                    cruns)
             bruns))
      results;
  results

(* ------------------------------------------------------------------ *)
(* Figure 5: relative software overhead on applications                 *)
(* ------------------------------------------------------------------ *)

(** Software overhead = simulated time − ideal media time for the logical
    IO volume (§5.7's definition, with the ideal modelled from the
    workload's logical reads/writes). *)
let software_overhead (m : Runner.measurement) =
  m.Runner.sim_ns -. m.Runner.media_ns

let fig5_groups =
  [
    ("POSIX", [ Ext4_dax ], Splitfs_posix);
    ("sync", [ Pmfs; Nova_relaxed ], Splitfs_sync);
    ("strict", [ Nova_strict ], Splitfs_strict);
  ]

let fig5 ?(records = 3000) ?(operations = 3000) ?(print = true) () =
  let ycsb_load_run spec =
    let stack = make spec in
    let series = ycsb_series stack ~records ~operations in
    let pick w = List.assq w series in
    ignore pick;
    let load = List.assoc Workloads.Ycsb.Load series in
    let runa = List.assoc Workloads.Ycsb.A series in
    (load, runa)
  in
  let tpcc_run spec =
    let stack = make spec in
    let db = Apps.Waldb.open_ stack.fs "/tpcc.db" () in
    let cfg =
      {
        Workloads.Tpcc.default_config with
        Workloads.Tpcc.transactions = operations / 4;
        customers_per_district = 30;
        items = 200;
      }
    in
    Workloads.Tpcc.load db cfg;
    let think () = Pmem.Env.cpu stack.env 30000. in
    let m =
      Runner.measure stack "tpcc" (fun () ->
          Workloads.Tpcc.total (Workloads.Tpcc.run ~think db cfg))
    in
    Apps.Waldb.close db;
    m
  in
  let results =
    List.map
      (fun (group, others, split_spec) ->
        let all = others @ [ split_spec ] in
        let per_fs =
          List.map
            (fun spec ->
              let load, runa = ycsb_load_run spec in
              let tpcc = tpcc_run spec in
              (spec, [ ("LoadA", load); ("RunA", runa); ("TPCC", tpcc) ]))
            all
        in
        (group, per_fs))
      fig5_groups
  in
  if print then
    List.iter
      (fun (group, per_fs) ->
        let split_spec, split_runs = List.nth per_fs (List.length per_fs - 1) in
        Runner.print_table
          ~title:
            (Printf.sprintf
               "Figure 5 (%s mode): software overhead relative to %s" group
               (name split_spec))
          ("workload"
           :: List.concat_map (fun (spec, _) -> [ name spec ]) per_fs)
          (List.map
             (fun wname ->
               let base = software_overhead (List.assoc wname split_runs) in
               wname
               :: List.map
                    (fun (_, runs) ->
                      Runner.f2 (software_overhead (List.assoc wname runs) /. base)
                      ^ "x")
                    per_fs)
             [ "LoadA"; "RunA"; "TPCC" ]))
      results;
  results

(* ------------------------------------------------------------------ *)
(* Figure 6: real applications                                          *)
(* ------------------------------------------------------------------ *)

let redis_run stack ~sets =
  let env = stack.env in
  let kv =
    Apps.Aof.open_ stack.fs ~path:"/redis.aof"
      ~now:(fun () -> Pmem.Env.now env)
      ()
  in
  let rng = Workloads.Rng.create 5 in
  let m =
    Runner.measure stack "redis-set" (fun () ->
        for i = 0 to sets - 1 do
          (* command parsing + hash table work *)
          Pmem.Env.cpu env 10000.;
          Apps.Aof.set kv
            (Printf.sprintf "key:%08d" (Workloads.Rng.int rng sets))
            (Workloads.Rng.payload rng 100)
          |> ignore;
          ignore i
        done;
        sets)
  in
  Apps.Aof.close kv;
  m

let utility_run stack ~files =
  let fs = stack.fs in
  let paths = Workloads.Utility.make_tree fs ~root:"/src" ~files ~seed:2 in
  (* application CPU per byte processed: git hashes and deflates (~3 ns/B),
     tar gzip-compresses (~15 ns/B), rsync checksums (~1 ns/B) *)
  let per_byte rate n = Pmem.Env.cpu stack.env (rate *. float_of_int n) in
  let git =
    Runner.measure stack "git" (fun () ->
        (Workloads.Utility.git fs ~think_bytes:(per_byte 3.) ~root:"/src" ~paths
           ~commits:8 ~seed:3).Workloads.Utility.files)
  in
  let tar =
    Runner.measure stack "tar" (fun () ->
        (Workloads.Utility.tar fs ~think_bytes:(per_byte 15.) ~paths
           ~archive:"/backup.tar").Workloads.Utility.files)
  in
  let rsync =
    Runner.measure stack "rsync" (fun () ->
        (Workloads.Utility.rsync fs ~think_bytes:(per_byte 1.) ~paths
           ~src_root:"/src" ~dst_root:"/dst").Workloads.Utility.files)
  in
  [ ("git", git); ("tar", tar); ("rsync", rsync) ]

let fig6_groups =
  [
    ("POSIX", Ext4_dax, Splitfs_posix);
    ("sync", Pmfs, Splitfs_sync);
    ("strict", Nova_strict, Splitfs_strict);
  ]

let fig6 ?(records = 3000) ?(operations = 3000) ?(print = true) () =
  let app_suite spec =
    let stack = make spec in
    let ycsb = ycsb_series stack ~records ~operations in
    let redis = redis_run stack ~sets:operations in
    let tpcc_stack = make spec in
    let db = Apps.Waldb.open_ tpcc_stack.fs "/tpcc.db" () in
    let tcfg =
      {
        Workloads.Tpcc.default_config with
        Workloads.Tpcc.transactions = operations / 4;
        customers_per_district = 30;
        items = 200;
      }
    in
    Workloads.Tpcc.load db tcfg;
    let think () = Pmem.Env.cpu tpcc_stack.env 30000. in
    let tpcc =
      Runner.measure tpcc_stack "tpcc" (fun () ->
          Workloads.Tpcc.total (Workloads.Tpcc.run ~think db tcfg))
    in
    Apps.Waldb.close db;
    let util_stack = make spec in
    let utils = utility_run util_stack ~files:200 in
    (ycsb, redis, tpcc, utils)
  in
  let results =
    List.map
      (fun (group, base_spec, split_spec) ->
        (group, (base_spec, app_suite base_spec), (split_spec, app_suite split_spec)))
      fig6_groups
  in
  if print then
    List.iter
      (fun (group, (bspec, (bycsb, bredis, btpcc, butils)), (sspec, (sycsb, sredis, stpcc, sutils))) ->
        let row label (bm : Runner.measurement) (sm : Runner.measurement) ~higher_better =
          let b = Runner.kops bm and s = Runner.kops sm in
          let rel = if higher_better then s /. b else b /. s in
          [ label; Runner.f1 b; Runner.f1 s; Runner.f2 rel ^ "x" ]
        in
        Runner.print_table
          ~title:(Printf.sprintf "Figure 6 (%s mode): application performance" group)
          [ "workload"; name bspec ^ " kops/s"; name sspec ^ " kops/s"; "splitfs speedup" ]
          (List.map
             (fun (w, bm) ->
               let sm = List.assoc w sycsb in
               row (Workloads.Ycsb.workload_name w) bm sm ~higher_better:true)
             bycsb
          @ [ row "Redis-SET" bredis sredis ~higher_better:true ]
          @ [ row "TPCC" btpcc stpcc ~higher_better:true ]
          @ List.map
              (fun (n, bm) ->
                let sm = List.assoc n sutils in
                (* utilities are runtime (lower better): report as relative
                   runtime of splitfs vs baseline *)
                [
                  n;
                  Runner.f2 (bm.Runner.sim_ns /. 1e9) ^ "s";
                  Runner.f2 (sm.Runner.sim_ns /. 1e9) ^ "s";
                  Runner.f2 (bm.Runner.sim_ns /. sm.Runner.sim_ns) ^ "x";
                ])
              butils))
      results;
  results

(* ------------------------------------------------------------------ *)
(* §5.3: recovery time vs number of valid log entries                   *)
(* ------------------------------------------------------------------ *)

let recovery ?(print = true) () =
  let entry_counts = [ 1_000; 5_000; 18_000; 50_000 ] in
  let rows =
    List.map
      (fun entries ->
        let stack =
          make Splitfs_strict
            ~splitfs_cfg:
              {
                (splitfs_experiment_cfg Splitfs.Config.Strict) with
                Splitfs.Config.oplog_size = 8 * mb;
                staging_size = 16 * mb;
              }
        in
        let fs = stack.fs in
        let fd = fs.open_ "/victim" Fsapi.Flags.create_rw in
        (* cache-line-sized appends like the paper's worst case (§5.3) *)
        let buf = Bytes.make 64 'r' in
        for _ = 1 to entries do
          ignore (fs.write fd ~buf ~boff:0 ~len:64)
        done;
        Pmem.Device.crash stack.env.Pmem.Env.dev;
        let sys = Option.get stack.sys in
        let report = Splitfs.Recovery.recover ~sys ~env:stack.env ~instance:0 in
        (entries, report))
      entry_counts
  in
  if print then
    Runner.print_table ~title:"Recovery time vs valid log entries (section 5.3)"
      [ "log entries"; "replayed"; "torn"; "files"; "replay time (ms, simulated)" ]
      (List.map
         (fun (entries, (r : Splitfs.Recovery.report)) ->
           [
             string_of_int entries;
             string_of_int r.Splitfs.Recovery.entries_replayed;
             string_of_int r.Splitfs.Recovery.torn_entries;
             string_of_int r.Splitfs.Recovery.files_recovered;
             Runner.f2 (r.Splitfs.Recovery.replay_ns /. 1e6);
           ])
         rows);
  rows

(* ------------------------------------------------------------------ *)
(* Failure-atomic msync vs write-ahead logging                          *)
(* ------------------------------------------------------------------ *)

type fams_row = {
  fw_spec : spec;
  fw_app : string;  (** ["mmapdb-msync"] or ["pager-wal"] *)
  fw_commits : int;
  fw_p50_ns : float;
  fw_p99_ns : float;
  fw_recovery_ms : float;  (** simulated time to a consistent reopen *)
}

(** The workload failure-atomic msync exists for: an mmap-native page
    store ({!Apps.Mmapdb}) that updates pages in place and commits a
    transaction with one msync. On [Splitfs_fams] that commit is atomic,
    so the store needs no write-ahead log. Every other stack runs the
    same transaction stream through {!Apps.Pager}, which must write each
    page twice (WAL frame now, checkpoint later) and scan the log on
    open to get the same guarantee.

    Columns: per-commit simulated latency (p50/p99 over [ntx] commits of
    [pages_per_tx] dirty pages) and the simulated time from crash to a
    consistent reopen — SplitFS oplog replay where the stack has one,
    plus the application's own open (WAL scan-and-settle for the pager,
    a bare fstat for mmapdb). *)
let fams_vs_wal ?(ntx = 200) ?(pages_per_tx = 4) ?(npages = 64)
    ?(print = true) () =
  let percentile sorted p =
    let n = Array.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  in
  let run spec =
    let stack = make spec in
    let fs = stack.fs in
    let rng = Workloads.Rng.create 0xFA35 in
    let page () =
      Bytes.of_string (Workloads.Rng.payload rng Apps.Mmapdb.page_size)
    in
    let lat = Array.make ntx 0. in
    let is_fams = spec = Splitfs_fams in
    (if is_fams then begin
       let db = Apps.Mmapdb.open_ fs "/db" in
       Apps.Mmapdb.preallocate db npages;
       for i = 0 to ntx - 1 do
         let t0 = Pmem.Env.now stack.env in
         for _ = 1 to pages_per_tx do
           Apps.Mmapdb.write_page db (Workloads.Rng.int rng npages) (page ())
         done;
         Apps.Mmapdb.commit db;
         lat.(i) <- Pmem.Env.now stack.env -. t0
       done
     end
     else begin
       let pg = Apps.Pager.open_ fs "/db" ~checkpoint_frames:64 in
       (* same starting point as mmapdb: npages of durable zeros *)
       let zero = Bytes.make Apps.Pager.page_size '\000' in
       Apps.Pager.commit pg (List.init npages (fun i -> (i, zero)));
       Apps.Pager.checkpoint pg;
       for i = 0 to ntx - 1 do
         let t0 = Pmem.Env.now stack.env in
         let dirty =
           List.init pages_per_tx (fun _ ->
               (Workloads.Rng.int rng npages, page ()))
         in
         Apps.Pager.commit pg dirty;
         lat.(i) <- Pmem.Env.now stack.env -. t0
       done
     end);
    Pmem.Device.crash stack.env.Pmem.Env.dev;
    let replay_ns =
      match stack.sys with
      | Some sys when stack.usplit <> None ->
          (Splitfs.Recovery.recover ~sys ~env:stack.env ~instance:0)
            .Splitfs.Recovery.replay_ns
      | _ -> 0.
    in
    (* the surviving U-Split instance is stale after a crash: the app
       reopens through the kernel stack, like a restarted process would *)
    let read_fs =
      match stack.sys with
      | Some sys -> Kernelfs.Syscall.as_fsapi sys
      | None -> fs
    in
    let t0 = Pmem.Env.now stack.env in
    (if is_fams then ignore (Apps.Mmapdb.open_ read_fs "/db")
     else ignore (Apps.Pager.open_ read_fs "/db" ~checkpoint_frames:64));
    let reopen_ns = Pmem.Env.now stack.env -. t0 in
    Array.sort compare lat;
    {
      fw_spec = spec;
      fw_app = (if is_fams then "mmapdb-msync" else "pager-wal");
      fw_commits = ntx;
      fw_p50_ns = percentile lat 50.;
      fw_p99_ns = percentile lat 99.;
      fw_recovery_ms = (replay_ns +. reopen_ns) /. 1e6;
    }
  in
  let rows =
    List.map run
      [ Splitfs_fams; Splitfs_strict; Splitfs_sync; Ext4_dax; Nova_relaxed ]
  in
  if print then
    Runner.print_table
      ~title:"Failure-atomic msync vs WAL (per-commit, simulated)"
      [ "stack"; "app"; "commits"; "p50 (ns)"; "p99 (ns)"; "recovery (ms)" ]
      (List.map
         (fun r ->
           [
             name r.fw_spec;
             r.fw_app;
             string_of_int r.fw_commits;
             Runner.f0 r.fw_p50_ns;
             Runner.f0 r.fw_p99_ns;
             Runner.f2 r.fw_recovery_ms;
           ])
         rows);
  rows

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices discussed in paper sections 4 and 3.6  *)
(* ------------------------------------------------------------------ *)

type ablation_row = { ab_name : string; ab_variant : string; ab_kops : float }

(** Three ablations:
    - staging in DRAM vs PM (the authors tried DRAM staging and found the
      fsync-time copy overshadowed the cheaper staging, section 4);
    - huge pages on vs off (reads drop ~50% without huge pages, section 4);
    - mmap region size sweep (section 3.6 tunable). *)
let ablations ?(total_mb = 8) ?(print = true) () =
  let io_cfg fsync_every =
    {
      Workloads.Iopattern.default_config with
      Workloads.Iopattern.file_size = total_mb * mb;
      fsync_every;
    }
  in
  let staging_row variant ~in_dram =
    let stack =
      make Splitfs_posix
        ~splitfs_cfg:
          {
            (splitfs_experiment_cfg Splitfs.Config.Posix) with
            Splitfs.Config.staging_in_dram = in_dram;
          }
    in
    let m =
      Runner.measure stack "append" (fun () ->
          Workloads.Iopattern.run stack.fs (io_cfg 10) Workloads.Iopattern.Append)
    in
    { ab_name = "staging medium (append+fsync/10)"; ab_variant = variant; ab_kops = Runner.kops m }
  in
  (* huge pages: sequential read of a kernel-written file, so U-Split must
     establish fresh mappings and pay the faults *)
  let huge_row variant ~enabled =
    let timing = { Pmem.Timing.default with Pmem.Timing.huge_pages_enabled = enabled } in
    let stack = make Splitfs_posix ~timing in
    let sys = Option.get stack.sys in
    let kernel_fs = Kernelfs.Syscall.as_fsapi sys in
    Workloads.Iopattern.prepare kernel_fs (io_cfg max_int);
    let m =
      Runner.measure stack "seq-read" (fun () ->
          Workloads.Iopattern.run stack.fs (io_cfg max_int) Workloads.Iopattern.Seq_read)
    in
    { ab_name = "huge pages (seq-read, cold mmaps)"; ab_variant = variant; ab_kops = Runner.kops m }
  in
  let mmap_row size =
    let stack =
      make Splitfs_posix
        ~splitfs_cfg:
          {
            (splitfs_experiment_cfg Splitfs.Config.Posix) with
            Splitfs.Config.mmap_size = size;
          }
    in
    let sys = Option.get stack.sys in
    let kernel_fs = Kernelfs.Syscall.as_fsapi sys in
    Workloads.Iopattern.prepare kernel_fs (io_cfg max_int);
    let m =
      Runner.measure stack "seq-read" (fun () ->
          Workloads.Iopattern.run stack.fs (io_cfg max_int) Workloads.Iopattern.Seq_read)
    in
    {
      ab_name = "mmap region size (seq-read, cold mmaps)";
      ab_variant = Printf.sprintf "%d MB" (size / mb);
      ab_kops = Runner.kops m;
    }
  in
  let rows =
    [
      staging_row "PM staging (relink)" ~in_dram:false;
      staging_row "DRAM staging (copy on fsync)" ~in_dram:true;
      huge_row "huge pages" ~enabled:true;
      huge_row "4K pages only" ~enabled:false;
      mmap_row (2 * mb);
      mmap_row (8 * mb);
      mmap_row (32 * mb);
    ]
  in
  if print then
    Runner.print_table ~title:"Ablations (paper sections 4 and 3.6)"
      [ "ablation"; "variant"; "kops/s" ]
      (List.map (fun r -> [ r.ab_name; r.ab_variant; Runner.f1 r.ab_kops ]) rows);
  rows

(* ------------------------------------------------------------------ *)
(* §5.10: resource consumption                                          *)
(* ------------------------------------------------------------------ *)

let resources ?(files = 500) ?(print = true) () =
  let run mode =
    (* a small staging pool so the background thread has pre-allocation
       work to do, plus a broad working set of files and mappings *)
    let stack =
      make mode
        ~splitfs_cfg:
          {
            (splitfs_experiment_cfg
               (match mode with
               | Splitfs_strict -> Splitfs.Config.Strict
               | _ -> Splitfs.Config.Posix))
            with
            Splitfs.Config.staging_size = 2 * mb;
            staging_files = 2;
          }
    in
    let fs = stack.fs in
    let body = String.make 8192 'm' in
    for i = 0 to files - 1 do
      let p = Printf.sprintf "/res-%04d" i in
      Fsapi.Fs.write_file fs p body;
      ignore (Fsapi.Fs.read_file fs p)
    done;
    (* churn one big appending file through several staging files *)
    let fd = fs.open_ "/res-big" Fsapi.Flags.create_rw in
    let chunk = Bytes.make 65536 'c' in
    for _ = 1 to 128 do
      ignore (fs.write fd ~buf:chunk ~boff:0 ~len:65536)
    done;
    fs.fsync fd;
    fs.close fd;
    let u = Option.get stack.usplit in
    let mem = Splitfs.Usplit.memory_usage u in
    let stats = stack.env.Pmem.Env.stats in
    let bg = stats.Pmem.Stats.background_ns in
    let total = Pmem.Env.now stack.env in
    ( (name mode, mem, bg /. (total +. 1.) *. 100.),
      ( name mode,
        stats.Pmem.Stats.dirty_lines_hwm,
        stats.Pmem.Stats.fast_path_hits,
        stats.Pmem.Stats.slow_path_hits ) )
  in
  let all = List.map run [ Splitfs_posix; Splitfs_strict ] in
  let rows = List.map fst all in
  if print then begin
    Runner.print_table ~title:"Resource consumption (section 5.10)"
      [ "configuration"; "U-Split DRAM (KB)"; "background thread (% of run)" ]
      (List.map
         (fun (n, mem, bg) -> [ n; string_of_int (mem / 1024); Runner.f1 bg ^ "%" ])
         rows);
    (* host-side simulator internals: how often the device served an
       operation with the zero-dirty-lines fast path, and how deep the
       dirty-line set got (these do not affect simulated time) *)
    Runner.print_table ~title:"Simulator fast-path statistics (host-side)"
      [ "configuration"; "dirty-line high-water"; "fast-path ops"; "slow-path ops"; "fast-path share" ]
      (List.map
         (fun (_, (n, hwm, fast, slow)) ->
           [
             n;
             string_of_int hwm;
             string_of_int fast;
             string_of_int slow;
             Runner.f1 (float_of_int fast /. float_of_int (max 1 (fast + slow)) *. 100.) ^ "%";
           ])
         all)
  end;
  rows

(* ------------------------------------------------------------------ *)
(* Crashcheck: crash-state exploration with a recovery oracle (§5d)     *)
(* ------------------------------------------------------------------ *)

(** Per-mode summary of crash states explored by {!Crashcheck}: how many
    legal states the workload's persist-order journal admits, how many
    were visited (exhaustive when the space fits the budget, seeded
    sampling otherwise), and any differential violations found. *)
let crashcheck ?(samples = 200) ?(seed = 0x51ED) ?(nops = 24) ?jobs
    ?(print = true) () =
  let reports = Crashcheck.run ~samples ~seed ~nops ?jobs () in
  if print then begin
    Runner.print_table ~title:"Crashcheck: crash states explored per mode"
      [ "mode"; "ops"; "crash points"; "legal states"; "explored"; "coverage"; "violations" ]
      (List.map
         (fun (r : Crashcheck.mode_report) ->
           [
             Splitfs.Config.mode_to_string r.Crashcheck.r_mode;
             string_of_int r.Crashcheck.r_ops;
             string_of_int r.Crashcheck.r_points;
             string_of_int r.Crashcheck.r_total_states;
             string_of_int r.Crashcheck.r_explored;
             (if r.Crashcheck.r_exhaustive then "exhaustive" else "sampled");
             string_of_int (List.length r.Crashcheck.r_violations);
           ])
         reports);
    List.iter
      (fun (r : Crashcheck.mode_report) ->
        List.iter
          (fun v -> Fmt.pr "%a@." Crashcheck.pp_violation v)
          r.Crashcheck.r_violations)
      reports
  end;
  reports

(* ------------------------------------------------------------------ *)
(* Faultcheck: fault-injection campaign with a differential oracle (§5g) *)
(* ------------------------------------------------------------------ *)

(** Per-stack summary of the {!Faultcheck} campaign: how every injected
    fault was absorbed (masked / retried / honest errno), plus the
    degradation-machinery counters, and any oracle violations found. *)
let faultcheck ?(seed = 0xFA17) ?(nops = 24) ?(max_per_site = 3) ?jobs
    ?(print = true) () =
  let reports = Faultcheck.run ~seed ~nops ~max_per_site ?jobs () in
  if print then begin
    Runner.print_table
      ~title:"Faultcheck: fault-injection outcomes per stack"
      [ "stack"; "trials"; "untriggered"; "masked"; "retried"; "errno"; "violations" ]
      (List.map
         (fun (r : Faultcheck.stack_report) ->
           [
             r.Faultcheck.s_stack;
             string_of_int r.Faultcheck.s_trials;
             string_of_int r.Faultcheck.s_untriggered;
             string_of_int r.Faultcheck.s_masked;
             string_of_int r.Faultcheck.s_retried;
             string_of_int r.Faultcheck.s_errno;
             string_of_int (List.length r.Faultcheck.s_violations);
           ])
         reports);
    Runner.print_table
      ~title:"Faultcheck: degradation machinery exercised (summed counters)"
      [ "stack"; "injected"; "media"; "degraded writes"; "relink retries";
        "journal retries"; "quarantined"; "scrub migrations" ]
      (List.map
         (fun (r : Faultcheck.stack_report) ->
           let c = r.Faultcheck.s_counts in
           [
             r.Faultcheck.s_stack;
             string_of_int c.Faults.injected;
             string_of_int c.Faults.media;
             string_of_int c.Faults.degraded_writes;
             string_of_int c.Faults.relink_retries;
             string_of_int c.Faults.journal_retries;
             string_of_int c.Faults.quarantined_lines;
             string_of_int c.Faults.scrub_migrations;
           ])
         reports);
    List.iter
      (fun (r : Faultcheck.stack_report) ->
        List.iter
          (fun v -> Fmt.pr "%a@." Faultcheck.pp_violation v)
          r.Faultcheck.s_violations)
      reports
  end;
  reports

(* ------------------------------------------------------------------ *)
(* Litmus: named crash patterns, exhaustively, plus fence minimization  *)
(* (§5i)                                                               *)
(* ------------------------------------------------------------------ *)

(** The litmus corpus (Ferrite-style patterns plus SplitFS-specific
    WAL-commit and relink-publish) explored {e exhaustively} on every
    stack × mode combination, followed — unless [minimize:false] — by
    the fence minimizer's per-site verdicts: each registered
    [Device.fence] site elided and the whole corpus re-explored to
    decide whether it is load-bearing (REQUIRED, with a shrunk
    counterexample) or covered by later ordering (REDUNDANT, an
    exhaustive proof relative to the corpus). *)
let litmus ?(minimize = true) ?jobs ?(print = true) () =
  let runs =
    Crashcheck.Litmus.run_corpus ?jobs () @ Crashcheck.Litmus.run_aux ?jobs ()
  in
  if print then begin
    Runner.print_table
      ~title:"Litmus corpus: exhaustive crash-state exploration"
      [ "pattern"; "stack"; "contract"; "crash points"; "states"; "violations" ]
      (List.map
         (fun (r : Crashcheck.Litmus.run) ->
           [
             r.Crashcheck.Litmus.r_pattern;
             r.Crashcheck.Litmus.r_config;
             Crashcheck.Litmus.contract_name r.Crashcheck.Litmus.r_contract;
             string_of_int r.Crashcheck.Litmus.r_points;
             string_of_int r.Crashcheck.Litmus.r_states;
             string_of_int (List.length r.Crashcheck.Litmus.r_violations);
           ])
         runs);
    List.iter
      (fun (r : Crashcheck.Litmus.run) ->
        List.iter
          (fun v ->
            Fmt.pr "%s/%s: %a@." r.Crashcheck.Litmus.r_pattern
              r.Crashcheck.Litmus.r_config Crashcheck.Litmus.pp_violation v)
          r.Crashcheck.Litmus.r_violations)
      runs
  end;
  let verdicts = if minimize then Crashcheck.Minimize.run ?jobs () else [] in
  if print && minimize then begin
    Runner.print_table
      ~title:"Fence minimization: per-site verdicts (exhaustive elision)"
      [ "fence site"; "verdict"; "evidence" ]
      (List.map
         (fun (s : Crashcheck.Minimize.site_report) ->
           [
             s.Crashcheck.Minimize.s_name;
             Crashcheck.Minimize.verdict_name s.Crashcheck.Minimize.s_verdict;
             (match s.Crashcheck.Minimize.s_verdict with
             | Crashcheck.Minimize.Required { q_combo; _ } ->
                 "counterexample in " ^ q_combo
             | Crashcheck.Minimize.Redundant { q_combos; q_states } ->
                 Printf.sprintf "%d combos, %d states, all recover" q_combos
                   q_states
             | Crashcheck.Minimize.Unexercised ->
                 "outside every crash window");
           ])
         verdicts);
    List.iter
      (fun (s : Crashcheck.Minimize.site_report) ->
        match s.Crashcheck.Minimize.s_verdict with
        | Crashcheck.Minimize.Required { q_combo; q_violation } ->
            Fmt.pr "%s @@ %s: %a@." s.Crashcheck.Minimize.s_name q_combo
              Crashcheck.Litmus.pp_violation q_violation
        | _ -> ())
      verdicts
  end;
  (runs, verdicts)

type degraded_row = {
  dg_spec : spec;
  dg_variant : string;  (** ["healthy"] or ["degraded"] *)
  dg_n : int;
  dg_p50 : float;
  dg_p90 : float;
  dg_p99 : float;
}

(** Write latency with the staging pool starved: the same 200-append
    workload on a healthy SplitFS stack and on one where an origin-scoped
    sticky Alloc fault makes every staging pre-allocation fail, so each
    write takes the degraded kernel path instead. The percentile gap is
    the price of graceful degradation — service continues under resource
    exhaustion, at K-Split latency rather than with an ENOSPC. *)
let degraded_latency ?(print = true) () =
  let nops = 200 in
  let modes =
    [
      (Splitfs_posix, Splitfs.Config.Posix);
      (Splitfs_sync, Splitfs.Config.Sync);
      (Splitfs_strict, Splitfs.Config.Strict);
    ]
  in
  let pctl sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else
      sorted.(max 0
                (min (n - 1)
                   (int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5))))
  in
  let run spec mode ~degraded =
    let splitfs_cfg =
      if degraded then
        {
          (splitfs_experiment_cfg mode) with
          Splitfs.Config.staging_files = 1;
          staging_size = 4096;
        }
      else splitfs_experiment_cfg mode
    in
    let stack = make ~splitfs_cfg spec in
    if degraded then
      Faults.inject stack.env.Pmem.Env.faults
        (Faults.rfault ~origin:Faults.Staging_prealloc Faults.Alloc ~from:0
           Faults.Sticky);
    let fs = stack.fs in
    let fd = fs.Fsapi.Fs.open_ "/degraded-lat" Fsapi.Flags.create_rw in
    let buf = Bytes.make 4096 'd' in
    let samples =
      Array.init nops (fun i ->
          if i > 0 && i mod 10 = 0 then fs.Fsapi.Fs.fsync fd;
          let t0 = Pmem.Env.now stack.env in
          ignore (fs.Fsapi.Fs.write fd ~buf ~boff:0 ~len:4096);
          Pmem.Env.now stack.env -. t0)
    in
    fs.Fsapi.Fs.fsync fd;
    Array.sort compare samples;
    {
      dg_spec = spec;
      dg_variant = (if degraded then "degraded" else "healthy");
      dg_n = nops;
      dg_p50 = pctl samples 50.;
      dg_p90 = pctl samples 90.;
      dg_p99 = pctl samples 99.;
    }
  in
  let rows =
    List.concat_map
      (fun (spec, mode) ->
        [ run spec mode ~degraded:false; run spec mode ~degraded:true ])
      modes
  in
  if print then
    Runner.print_table
      ~title:"Degraded-mode write latency (staging starved), simulated ns"
      [ "stack"; "variant"; "n"; "p50"; "p90"; "p99" ]
      (List.map
         (fun r ->
           [
             name r.dg_spec;
             r.dg_variant;
             string_of_int r.dg_n;
             Runner.f0 r.dg_p50;
             Runner.f0 r.dg_p90;
             Runner.f0 r.dg_p99;
           ])
         rows);
  rows

(* ------------------------------------------------------------------ *)
(* Scaling: aggregate throughput vs concurrent clients (§5e)            *)
(* ------------------------------------------------------------------ *)

let scaling_specs =
  [ Ext4_dax; Pmfs; Nova_relaxed; Splitfs_posix; Splitfs_sync; Splitfs_strict ]

let scaling_counts = [ 1; 2; 4; 8; 16 ]

(** Aggregate append throughput for N concurrent clients per file system:
    each client appends 4 KB records to a private file (fsync every 10)
    and the scheduler interleaves them deterministically. ext4 DAX
    serializes every client's metadata behind one jbd2 journal, while each
    SplitFS client appends through its own staging files and op-log — the
    concurrency half of the paper's software-overhead argument. *)
let scaling ?(print = true) () =
  let results =
    List.map
      (fun spec ->
        ( spec,
          List.map
            (fun n -> Multiclient.run spec ~nclients:n)
            scaling_counts ))
      scaling_specs
  in
  if print then begin
    Runner.print_table
      ~title:"Scaling: aggregate append throughput (kops/s) vs clients"
      ("file system"
      :: List.map (fun n -> Printf.sprintf "%d" n) scaling_counts)
      (List.map
         (fun (spec, rs) ->
           name spec
           :: List.map
                (fun (r : Multiclient.result) -> Runner.f1 r.Multiclient.kops_per_s)
                rs)
         results);
    Runner.print_table
      ~title:"Scaling: time blocked on contention at 8 clients (us)"
      [ "file system"; "lock wait"; "bandwidth wait" ]
      (List.map
         (fun (spec, rs) ->
           let r8 =
             List.find (fun (r : Multiclient.result) -> r.Multiclient.nclients = 8) rs
           in
           [
             name spec;
             Runner.f1 (r8.Multiclient.lock_wait_ns /. 1e3);
             Runner.f1 (r8.Multiclient.bw_wait_ns /. 1e3);
           ])
         results)
  end;
  results

(* ------------------------------------------------------------------ *)
(* Profile: software-overhead attribution (paper Fig. 2 analogue, §5f)  *)
(* ------------------------------------------------------------------ *)

(** The canonical profiling workload: 512 4 KB appends with an fsync every
    10 writes, a read-back pass, close — the append+fsync pattern whose
    overhead the paper's Figure 2 decomposes. Returns the op count. *)
let profile_workload (fs : Fsapi.Fs.t) =
  let wsize = 4096 in
  let nwrites = 512 in
  let buf = Bytes.make wsize 'p' in
  let ops = ref 0 in
  let op f =
    f ();
    incr ops
  in
  let fd = fs.Fsapi.Fs.open_ "/profile" Fsapi.Flags.create_rw in
  incr ops;
  for i = 0 to nwrites - 1 do
    op (fun () ->
        let n = fs.Fsapi.Fs.pwrite fd ~buf ~boff:0 ~len:wsize ~at:(i * wsize) in
        assert (n = wsize));
    if (i + 1) mod 10 = 0 then op (fun () -> fs.Fsapi.Fs.fsync fd)
  done;
  op (fun () -> fs.Fsapi.Fs.fsync fd);
  for i = 0 to 127 do
    op (fun () ->
        ignore (fs.Fsapi.Fs.pread fd ~buf ~boff:0 ~len:wsize ~at:(i * 4 * wsize)))
  done;
  op (fun () -> fs.Fsapi.Fs.close fd);
  !ops

type profile_row = {
  pr_spec : spec;
  pr_ops : int;
  pr_breakdown : (Obs.cat * float) list;
      (** measured-section simulated ns per category *)
  pr_identity : float * float;
      (** whole-env (attributed, accountable) — equal up to float rounding *)
  pr_stats : Pmem.Stats.t * Pmem.Stats.t;  (** (after, before) snapshots *)
}

let profile_specs =
  [ Ext4_dax; Pmfs; Nova_relaxed; Splitfs_posix; Splitfs_sync; Splitfs_strict ]

(** Where every simulated nanosecond goes, per stack: run the profiling
    workload on a fresh stack, diff the attribution array around it, and
    check the accounting identity on the whole environment (mount
    included). This is the software-overhead breakdown behind the paper's
    Figure 2: ext4 DAX pays traps + journal, SplitFS-POSIX pays a little
    U-Split CPU and log appends on top of near-bare media time. *)
let profile ?(print = true) () =
  let rows =
    List.map
      (fun spec ->
        let stack = make spec in
        let obs = stack.env.Pmem.Env.obs in
        let snap = Obs.snapshot obs in
        let s0 = Pmem.Stats.copy stack.env.Pmem.Env.stats in
        let ops = profile_workload stack.fs in
        let breakdown = Obs.breakdown_since obs snap in
        let identity = Pmem.Env.check_identity stack.env in
        {
          pr_spec = spec;
          pr_ops = ops;
          pr_breakdown = breakdown;
          pr_identity = identity;
          pr_stats = (Pmem.Stats.copy stack.env.Pmem.Env.stats, s0);
        })
      profile_specs
  in
  let section_total r = List.fold_left (fun a (_, v) -> a +. v) 0. r.pr_breakdown in
  if print then begin
    let per_op r v = v /. float_of_int r.pr_ops in
    let cell r v =
      let t = section_total r in
      let pct = if t > 0. then 100. *. v /. t else 0. in
      if v = 0. then "-" else Printf.sprintf "%s (%s%%)" (Runner.f0 (per_op r v)) (Runner.f1 pct)
    in
    let cat_rows =
      List.filter_map
        (fun c ->
          let vals = List.map (fun r -> List.assoc c r.pr_breakdown) rows in
          if List.for_all (fun v -> v = 0.) vals then None
          else Some (Obs.cat_name c :: List.map2 cell rows vals))
        Obs.all_cats
    in
    let summary label f = label :: List.map (fun r -> Runner.f0 (per_op r (f r))) rows in
    Runner.print_table
      ~title:
        "Overhead attribution: ns/op (% of total), 4K appends + fsync/10 + read-back"
      ("category" :: List.map (fun r -> name r.pr_spec) rows)
      (cat_rows
      @ [
          summary "TOTAL" section_total;
          summary "software overhead" (fun r ->
              section_total r -. List.assoc Obs.Media r.pr_breakdown);
        ]);
    List.iter
      (fun r ->
        let att, acc = r.pr_identity in
        Printf.printf "  identity %-16s attributed %.0f ns = accountable %.0f ns\n"
          (name r.pr_spec) att acc)
      rows;
    print_newline ();
    List.iter
      (fun r ->
        if r.pr_spec = Ext4_dax || r.pr_spec = Splitfs_posix then begin
          Printf.printf "PM activity during workload (%s):\n" (name r.pr_spec);
          Format.printf "%a@." Pmem.Stats.pp_delta r.pr_stats
        end)
      rows
  end;
  rows

(* ------------------------------------------------------------------ *)
(* Latency: per-(stack x op) percentiles from the obs histograms (§5f)  *)
(* ------------------------------------------------------------------ *)

type latency_row = {
  lat_spec : spec;
  lat_op : string;
  lat_n : int;
  lat_p50 : float;
  lat_p90 : float;
  lat_p99 : float;
  lat_p999 : float;
}

(** Tail latency per operation type on the profiling workload: each stack
    runs behind {!Instrument.fs}, which buckets every op's simulated
    latency into a log-scaled histogram keyed ["<stack>/<op>"]. The
    percentile spread shows what averages hide — e.g. ext4's p999 write
    absorbing a jbd2 commit, and SplitFS's flat write profile. *)
let latency ?(print = true) () =
  let rows =
    List.concat_map
      (fun spec ->
        let stack = make spec in
        let fs = Instrument.fs ~key:(name spec) stack.env stack.fs in
        let (_ : int) = profile_workload fs in
        let (_ : float * float) = Pmem.Env.check_identity stack.env in
        List.map
          (fun (key, h) ->
            let op =
              match String.index_opt key '/' with
              | Some i -> String.sub key (i + 1) (String.length key - i - 1)
              | None -> key
            in
            {
              lat_spec = spec;
              lat_op = op;
              lat_n = Obs.Hist.n h;
              lat_p50 = Obs.Hist.percentile h 50.;
              lat_p90 = Obs.Hist.percentile h 90.;
              lat_p99 = Obs.Hist.percentile h 99.;
              lat_p999 = Obs.Hist.percentile h 99.9;
            })
          (Obs.hists stack.env.Pmem.Env.obs))
      profile_specs
  in
  if print then
    Runner.print_table
      ~title:"Latency percentiles per (stack x op), simulated ns"
      [ "stack"; "op"; "n"; "p50"; "p90"; "p99"; "p999" ]
      (List.map
         (fun r ->
           [
             name r.lat_spec;
             r.lat_op;
             string_of_int r.lat_n;
             Runner.f0 r.lat_p50;
             Runner.f0 r.lat_p90;
             Runner.f0 r.lat_p99;
             Runner.f0 r.lat_p999;
           ])
         rows);
  rows

(* ------------------------------------------------------------------ *)
(* Scale-out serving tier: 10k actors, sharded namespace (§5h)          *)
(* ------------------------------------------------------------------ *)

let scale_specs = scaling_specs
let scale_counts = [ 16; 100; 1000; 10000 ]

(** Total fleet work held roughly constant as N grows, so a 10k-actor run
    stays tractable while each actor still runs a full open/serve/close
    lifecycle. *)
let scale_ops_for nactors = max 6 (60_000 / nactors)

let scale_run ?timeline ?forensics spec ~nactors =
  let cfg =
    {
      Workloads.Multitenant.default_cfg with
      Workloads.Multitenant.ops_per_actor = scale_ops_for nactors;
    }
  in
  Multiclient.run_scale ~cfg ?timeline ?forensics spec ~nactors

(** "Why is p999 slow": for each (stack x op) with a captured tail
    exemplar, decompose the single slowest op into the attribution
    categories that paid for it. The rows answer the question a latency
    percentile can't: not {i how} slow the tail is but {i where} the
    nanoseconds of the worst op went. *)
let print_forensics_table ~title stores =
  let rows =
    List.concat_map
      (fun (fo : Obs.span Obs.Forensics.t) ->
        List.filter_map
          (fun key ->
            match Obs.Forensics.exemplars fo key with
            | [] -> None
            | ex :: _ ->
                (* top categories of the worst op, largest share first *)
                let cats =
                  List.mapi (fun i c -> (c, ex.Obs.Forensics.ex_cats.(i))) Obs.all_cats
                  |> List.filter (fun (_, ns) -> ns > 0.)
                  |> List.sort (fun (_, a) (_, b) -> compare b a)
                in
                let total = List.fold_left (fun acc (_, ns) -> acc +. ns) 0. cats in
                let top =
                  List.filteri (fun i _ -> i < 3) cats
                  |> List.map (fun (c, ns) ->
                         Printf.sprintf "%s %.0f%%" (Obs.cat_name c)
                           (100. *. ns /. Float.max total 1e-9))
                  |> String.concat ", "
                in
                Some
                  [
                    key;
                    string_of_int (Obs.Forensics.total_ops fo key);
                    Runner.f0 ex.Obs.Forensics.ex_lat_ns;
                    top;
                  ])
          (Obs.Forensics.keys fo))
      stores
  in
  if rows <> [] then
    Runner.print_table ~title
      [ "stack/op"; "ops"; "worst ns"; "where the ns went" ]
      rows

(** Multi-tenant serving tier at N in {16, 100, 1k, 10k} actors across the
    six stacks: Zipf-skewed YCSB-style reads/updates against per-tenant
    shared data files plus TPC-C-style per-actor WAL appends
    ([Workloads.Multitenant]). Reports aggregate throughput and tail
    latency / SLO attainment per stack — the scale-out half of the
    software-overhead argument: U-Split keeps the data path in userspace
    while the sharded K-Split allocator and per-stream journal keep the
    kernel residue from serializing 10k actors. *)
let scale ?(counts = scale_counts) ?jobs ?(print = true) () =
  (* each (stack, N) cell is a self-contained simulation — own env, own
     fleet — so the grid fans over the domain pool; regrouping by spec in
     declaration order keeps the report independent of job count *)
  let cells =
    List.concat_map
      (fun spec -> List.map (fun n -> (spec, n)) counts)
      scale_specs
  in
  let cell_results =
    Array.of_list
      (Par.map ?jobs
         (fun _ (spec, n) ->
           (* tail forensics at the serving-tier sizes only: the small
              warm-up cells have no interesting tail and capture would
              just add host-side noise to the grid *)
           scale_run ~forensics:(n >= 1000) spec ~nactors:n)
         cells)
  in
  let ncounts = List.length counts in
  let results =
    List.mapi
      (fun si spec ->
        (spec, List.mapi (fun ci _ -> cell_results.((si * ncounts) + ci)) counts))
      scale_specs
  in
  if print then begin
    Runner.print_table
      ~title:"Scale-out: aggregate serving throughput (kops/s) vs actors"
      ("file system" :: List.map (fun n -> Printf.sprintf "%d" n) counts)
      (List.map
         (fun (spec, rs) ->
           name spec
           :: List.map
                (fun (r : Multiclient.scale_result) ->
                  Runner.f1 r.Multiclient.sr_kops_per_s)
                rs)
         results);
    let nmax = List.fold_left max 0 counts in
    Runner.print_table
      ~title:
        (Printf.sprintf
           "Scale-out: tail latency and SLO attainment at %d actors" nmax)
      [ "file system"; "tenants"; "p50 ns"; "p999 ns"; "SLO<100us"; "steals" ]
      (List.map
         (fun (spec, rs) ->
           let r =
             List.find
               (fun (r : Multiclient.scale_result) ->
                 r.Multiclient.sr_nactors = nmax)
               rs
           in
           [
             name spec;
             string_of_int r.Multiclient.sr_tenants;
             Runner.f0 r.Multiclient.sr_p50_ns;
             Runner.f0 r.Multiclient.sr_p999_ns;
             Runner.f2 r.Multiclient.sr_slo_attainment;
             string_of_int r.Multiclient.sr_alloc_steals;
           ])
         results);
    let stores =
      List.filter_map
        (fun (_, rs) ->
          match
            List.find_opt
              (fun (r : Multiclient.scale_result) ->
                r.Multiclient.sr_nactors = nmax)
              rs
          with
          | Some r -> r.Multiclient.sr_forensics
          | None -> None)
        results
    in
    print_forensics_table
      ~title:
        (Printf.sprintf
           "Why is p999 slow: slowest-op decomposition at %d actors" nmax)
      stores
  end;
  results

(* ------------------------------------------------------------------ *)
(* Timeline report: warmup vs steady state over virtual time (§5k)      *)
(* ------------------------------------------------------------------ *)

type timeline_window = {
  tw_lo_ns : float;
  tw_hi_ns : float;
  tw_ops : float;  (** fleet ops completed inside the window *)
  tw_kops_per_s : float;
  tw_top_cats : (Obs.cat * float) list;  (** category ns, largest first *)
}

(** One serving-tier run with the virtual-time sampler on, folded into
    [windows] equal slices of the run: per-window fleet throughput and the
    categories that dominated each slice. This is the question a single
    end-of-run number hides — whether the first slice (cold namespace,
    empty journal, unwarmed allocator groups) behaves like the rest.
    Returns the windows and the underlying [scale_result] (whose
    [sr_timeline]/[sr_forensics] the CLI exports as OpenMetrics/Perfetto). *)
let timeline_report ?spec ?(nactors = 1000) ?(windows = 4) ?on_env
    ?(print = true) () =
  let spec = match spec with Some s -> s | None -> List.hd scale_specs in
  let cfg =
    {
      Workloads.Multitenant.default_cfg with
      Workloads.Multitenant.ops_per_actor = scale_ops_for nactors;
    }
  in
  let r =
    Multiclient.run_scale ~cfg ?on_env ~timeline:true ~forensics:true spec
      ~nactors
  in
  let tl =
    match r.Multiclient.sr_timeline with
    | Some tl -> tl
    | None -> assert false (* ~timeline:true always attaches one *)
  in
  let series name = Obs.Timeline.samples tl name in
  let tenant_series =
    List.filter
      (fun n -> String.length n >= 6 && String.sub n 0 6 = "tenant")
      (Obs.Timeline.series_names tl)
    |> List.map series
  in
  let cat_series = List.map (fun c -> (c, series ("cat/" ^ Obs.cat_name c))) Obs.all_cats in
  (* window bounds span the retained samples; with widening on, that is
     the whole run *)
  let t_lo, t_hi =
    match tenant_series with
    | s :: _ when Array.length s > 0 ->
        let t3 (t, _, _) = t in
        (t3 s.(0), t3 s.(Array.length s - 1))
    | _ -> (0., 0.)
  in
  let span = Float.max (t_hi -. t_lo) 1e-9 in
  let win_of t =
    min (windows - 1)
      (max 0 (int_of_float (float_of_int windows *. (t -. t_lo) /. span)))
  in
  let sum_into acc samples =
    Array.iter (fun (t, delta, _) -> acc.(win_of t) <- acc.(win_of t) +. delta) samples
  in
  let ops_w = Array.make windows 0. in
  List.iter (sum_into ops_w) tenant_series;
  let cats_w = Array.make_matrix windows Obs.ncats 0. in
  List.iter
    (fun (c, samples) ->
      let i = Obs.cat_index c in
      Array.iter
        (fun (t, delta, _) ->
          let w = win_of t in
          cats_w.(w).(i) <- cats_w.(w).(i) +. delta)
        samples)
    cat_series;
  let result =
    List.init windows (fun w ->
        let lo = t_lo +. (span *. float_of_int w /. float_of_int windows) in
        let hi = t_lo +. (span *. float_of_int (w + 1) /. float_of_int windows) in
        let top =
          List.map (fun c -> (c, cats_w.(w).(Obs.cat_index c))) Obs.all_cats
          |> List.filter (fun (_, ns) -> ns > 0.)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        {
          tw_lo_ns = lo;
          tw_hi_ns = hi;
          tw_ops = ops_w.(w);
          tw_kops_per_s = ops_w.(w) /. Float.max (hi -. lo) 1e-9 *. 1e6;
          tw_top_cats = top;
        })
  in
  if print then
    Runner.print_table
      ~title:
        (Printf.sprintf "Timeline: %s at %d actors, %d virtual-time windows"
           (name spec) nactors windows)
      [ "window"; "virtual ns"; "ops"; "kops/s"; "dominant categories" ]
      (List.mapi
         (fun w tw ->
           [
             (if w = 0 then "0 (warmup)" else string_of_int w);
             Printf.sprintf "%.0f-%.0f" tw.tw_lo_ns tw.tw_hi_ns;
             Runner.f0 tw.tw_ops;
             Runner.f1 tw.tw_kops_per_s;
             (List.filteri (fun i _ -> i < 3) tw.tw_top_cats
             |> List.map (fun (c, ns) -> Printf.sprintf "%s %.0f" (Obs.cat_name c) ns)
             |> String.concat ", ");
           ])
         result);
  (result, r)

(* ------------------------------------------------------------------ *)
(* Dispatch overhead: event-heap vs reference min-scan (§5h)            *)
(* ------------------------------------------------------------------ *)

type dispatch_result = {
  db_nactors : int;
  db_dispatches : int;
  db_heap_ns_per_dispatch : float;
  db_scan_ns_per_dispatch : float;
  db_speedup : float;
}

(** Host-side scheduler overhead: time [Sched.run] (binary event heap)
    against [Sched.run_reference] (the retained O(N) min-scan) driving the
    same N-actor pure-CPU fleet, and check the dispatch traces are
    bit-identical while at it. This is host wall time per dispatch — the
    simulator's own software overhead, the quantity the event heap exists
    to shrink. *)
let dispatch_bench ?(nactors = 10_000) ?(ops = 4) ?(print = true) () =
  let run_with runner =
    let env = Pmem.Env.create ~capacity:mb () in
    let s = Sched.create env in
    for i = 0 to nactors - 1 do
      ignore
        (Sched.spawn s
           ~name:(Printf.sprintf "d%d" i)
           ~step:(fun _ j ->
             if j >= ops then false
             else begin
               Pmem.Env.cpu env 100.;
               true
             end))
    done;
    let t0 = Sys.time () in
    runner s;
    let host = Sys.time () -. t0 in
    (host *. 1e9 /. float_of_int (Sched.dispatches s), s)
  in
  let heap_ns, s_heap = run_with Sched.run in
  let scan_ns, s_scan = run_with Sched.run_reference in
  if Sched.trace_hash s_heap <> Sched.trace_hash s_scan then
    failwith "dispatch_bench: heap and min-scan dispatch traces diverge";
  let r =
    {
      db_nactors = nactors;
      db_dispatches = Sched.dispatches s_heap;
      db_heap_ns_per_dispatch = heap_ns;
      db_scan_ns_per_dispatch = scan_ns;
      db_speedup = (if heap_ns > 0. then scan_ns /. heap_ns else infinity);
    }
  in
  if print then
    Runner.print_table
      ~title:
        (Printf.sprintf "Scheduler dispatch overhead, host ns/op (N=%d)"
           nactors)
      [ "dispatcher"; "dispatches"; "ns/dispatch"; "speedup" ]
      [
        [
          "event heap";
          string_of_int r.db_dispatches;
          Runner.f0 r.db_heap_ns_per_dispatch;
          Runner.f1 r.db_speedup;
        ];
        [
          "min-scan (ref)";
          string_of_int r.db_dispatches;
          Runner.f0 r.db_scan_ns_per_dispatch;
          Runner.f1 1.0;
        ];
      ];
  r

(* ------------------------------------------------------------------ *)
(* Parallel campaign speedup: wall time vs worker domains (§5j)         *)
(* ------------------------------------------------------------------ *)

type par_row = {
  pb_campaign : string;
  pb_jobs : int;
  pb_wall_ns : float;  (** host wall-clock for the whole campaign *)
}

(** The four domain-parallel verification campaigns, at reduced budgets
    where the default would dominate the sweep. Each closure is a full
    campaign run at an explicit job count; results are ignored here —
    job-count invariance is pinned by the determinism tests, this sweep
    only measures wall time. *)
let par_campaigns =
  [
    ( "crashcheck",
      fun ~jobs -> ignore (Crashcheck.run ~samples:120 ~nops:24 ~jobs ()) );
    ( "faultcheck",
      fun ~jobs -> ignore (Faultcheck.run ~max_per_site:2 ~jobs ()) );
    ( "litmus",
      fun ~jobs ->
        ignore (Crashcheck.Litmus.run_corpus ~jobs ());
        ignore (Crashcheck.Litmus.run_aux ~jobs ()) );
    ("minimize", fun ~jobs -> ignore (Crashcheck.Minimize.run ~jobs ()));
  ]

(** Host wall time of every verification campaign at each job count in
    [jobs_list]: the headline evidence that fanning trials over domains
    buys real wall-clock, and the input to the BENCH_PR*.json
    [par/<campaign>/walltime-j<N>] trajectory entries. Wall time is
    host-dependent; the speedup columns are what should be compared
    across machines. *)
let par_bench ?(jobs_list = [ 1; 2; 4; 8 ]) ?(print = true) () =
  let rows =
    List.concat_map
      (fun (name, campaign) ->
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            campaign ~jobs;
            let wall = Unix.gettimeofday () -. t0 in
            { pb_campaign = name; pb_jobs = jobs; pb_wall_ns = wall *. 1e9 })
          jobs_list)
      par_campaigns
  in
  if print then begin
    let wall name jobs =
      let r =
        List.find (fun r -> r.pb_campaign = name && r.pb_jobs = jobs) rows
      in
      r.pb_wall_ns
    in
    Runner.print_table
      ~title:
        (Printf.sprintf
           "Campaign wall time (ms) and speedup vs 1 job (%d cores \
            recommended)"
           (Domain.recommended_domain_count ()))
      ("campaign"
      :: List.concat_map
           (fun j -> [ Printf.sprintf "j=%d" j; "speedup" ])
           jobs_list)
      (List.map
         (fun (name, _) ->
           let base = wall name (List.hd jobs_list) in
           name
           :: List.concat_map
                (fun j ->
                  let w = wall name j in
                  [
                    Runner.f1 (w /. 1e6);
                    (if w > 0. then Runner.f2 (base /. w) else "-");
                  ])
                jobs_list)
         par_campaigns)
  end;
  rows
