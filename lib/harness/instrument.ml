(** Opt-in per-operation instrumentation of an [Fsapi.Fs.t].

    [fs env inner] wraps every operation of [inner] so that its simulated
    latency is recorded into the environment's per-(stack x op) latency
    histograms ([Obs.hists], keyed ["<key>/<op>"]) and, when tracing is
    enabled, an [op:<name>] span is emitted on the calling actor's track.
    Purely observational: the wrapper charges no simulated time, so a
    wrapped stack produces bit-identical results. Stacks that are not
    wrapped pay nothing — instrumentation is opt-in by construction.

    With [?forensics], every op additionally opens a tail-forensics
    capture ([Obs.Forensics]): the attribution snapshot is diffed across
    the op, and if the op lands in its key's top-k slowest the complete
    span list (the [op:<name>] span last) is retained as the exemplar
    explaining the outlier. The caller is responsible for routing the
    [Obs.set_capture] hook into the same store. Still host-side only. *)

let fs ?key ?forensics (env : Pmem.Env.t) (inner : Fsapi.Fs.t) : Fsapi.Fs.t =
  let obs = env.Pmem.Env.obs in
  let clock = env.Pmem.Env.clock in
  let prefix =
    (match key with Some k -> k | None -> inner.Fsapi.Fs.fs_name) ^ "/"
  in
  let record : 'a. string -> (unit -> 'a) -> 'a =
   fun op f ->
    let a = Pmem.Simclock.current clock in
    let t0 = a.Pmem.Simclock.a_now in
    (match forensics with
    | Some fo ->
        Obs.Forensics.op_begin fo ~key:(prefix ^ op)
          ~actor:a.Pmem.Simclock.aid ~t0 ~cats:(Obs.snapshot obs)
    | None -> ());
    match f () with
    | x ->
        let t1 = a.Pmem.Simclock.a_now in
        Obs.record_latency obs (prefix ^ op) (t1 -. t0);
        if Obs.tracing obs then
          Obs.emit obs ~name:("op:" ^ op) ~cat:Obs.App
            ~actor:a.Pmem.Simclock.aid ~t0 ~t1;
        (* close after the op span so the exemplar includes it (last) *)
        (match forensics with
        | Some fo -> Obs.Forensics.op_end fo ~t1 ~cats:(Obs.snapshot obs)
        | None -> ());
        x
    | exception e ->
        (match forensics with
        | Some fo -> Obs.Forensics.op_abort fo
        | None -> ());
        raise e
  in
  {
    inner with
    Fsapi.Fs.open_ = (fun p fl -> record "open" (fun () -> inner.Fsapi.Fs.open_ p fl));
    close = (fun fd -> record "close" (fun () -> inner.Fsapi.Fs.close fd));
    dup = (fun fd -> record "dup" (fun () -> inner.Fsapi.Fs.dup fd));
    pread =
      (fun fd ~buf ~boff ~len ~at ->
        record "pread" (fun () -> inner.Fsapi.Fs.pread fd ~buf ~boff ~len ~at));
    pwrite =
      (fun fd ~buf ~boff ~len ~at ->
        record "pwrite" (fun () -> inner.Fsapi.Fs.pwrite fd ~buf ~boff ~len ~at));
    read =
      (fun fd ~buf ~boff ~len ->
        record "read" (fun () -> inner.Fsapi.Fs.read fd ~buf ~boff ~len));
    write =
      (fun fd ~buf ~boff ~len ->
        record "write" (fun () -> inner.Fsapi.Fs.write fd ~buf ~boff ~len));
    lseek = (fun fd off w -> record "lseek" (fun () -> inner.Fsapi.Fs.lseek fd off w));
    fsync = (fun fd -> record "fsync" (fun () -> inner.Fsapi.Fs.fsync fd));
    ftruncate =
      (fun fd size -> record "ftruncate" (fun () -> inner.Fsapi.Fs.ftruncate fd size));
    fstat = (fun fd -> record "fstat" (fun () -> inner.Fsapi.Fs.fstat fd));
    stat = (fun p -> record "stat" (fun () -> inner.Fsapi.Fs.stat p));
    unlink = (fun p -> record "unlink" (fun () -> inner.Fsapi.Fs.unlink p));
    rename = (fun s d -> record "rename" (fun () -> inner.Fsapi.Fs.rename s d));
    mkdir = (fun p -> record "mkdir" (fun () -> inner.Fsapi.Fs.mkdir p));
    rmdir = (fun p -> record "rmdir" (fun () -> inner.Fsapi.Fs.rmdir p));
    readdir = (fun p -> record "readdir" (fun () -> inner.Fsapi.Fs.readdir p));
  }
