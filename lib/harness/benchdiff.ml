(** Perf-regression sentinel: diff two BENCH_PR*.json trajectory points.

    Seven snapshots existed before anything checked them; this module is
    the check. [load] parses a trajectory file (a hand-rolled parser —
    the repo deliberately has no JSON dependency), [diff] classifies
    every key common to both files as improved / regressed / unchanged
    under per-key-class tolerances:

    - {b sim keys} (simulated ns, crash-state counts, fault outcome
      counts, SLO attainment) are deterministic by construction — the
      tolerance is exact. Any drift in an exact-class key (litmus state
      counts, fault outcome counts) is a regression in either direction:
      the enumerated space silently changed. Sim latencies/ns may
      legitimately improve; only increases regress.
    - {b host keys} (bechamel estimates, campaign wall times, dispatch
      overhead) vary with the machine — they get a relative tolerance
      (default +-50%).

    Direction matters: keys ending in [/slo] or containing [/speedup]
    are better when higher.

    Schema honesty: files written since PR 9 carry a [meta] block
    (schema version, mode, seed, jobs, stacks). Two meta-bearing files
    with different schema versions refuse to diff — an honest error
    instead of a misleading table. Pre-PR-9 files have no meta and are
    accepted as legacy (schema 1) with a warning note, so the CI gate
    can compare against the last committed snapshot. *)

(* --- minimal JSON ---------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* trajectory files are ASCII; keep it simple *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* --- trajectory files ------------------------------------------------ *)

type meta = {
  m_schema : int;
  m_mode : string;
  m_seed : int option;
  m_jobs : int option;
  m_stacks : string list;
}

type file = {
  f_path : string;
  f_meta : meta option;  (** [None]: legacy pre-PR-9 snapshot (schema 1) *)
  f_tests : (string * float) list;  (** key -> ns_per_op, file order *)
}

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let j =
    try parse body
    with Parse_error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  in
  let tests =
    match member "tests" j with
    | Some (Obj kvs) ->
        List.map
          (fun (k, v) ->
            match member "ns_per_op" v with
            | Some (Num f) -> (k, f)
            | _ -> failwith (Printf.sprintf "%s: test %S has no ns_per_op" path k))
          kvs
    | _ -> failwith (Printf.sprintf "%s: no \"tests\" object" path)
  in
  let meta =
    match member "meta" j with
    | None -> None
    | Some m ->
        let int_field k =
          match member k m with Some (Num f) -> Some (int_of_float f) | _ -> None
        in
        Some
          {
            m_schema =
              (match int_field "schema" with
              | Some v -> v
              | None -> failwith (Printf.sprintf "%s: meta without schema" path));
            m_mode =
              (match member "mode" m with Some (Str s) -> s | _ -> "full");
            m_seed = int_field "seed";
            m_jobs = int_field "jobs";
            m_stacks =
              (match member "stacks" m with
              | Some (Arr l) ->
                  List.filter_map (function Str s -> Some s | _ -> None) l
              | _ -> []);
          }
  in
  { f_path = path; f_meta = meta; f_tests = tests }

(* --- key classification ---------------------------------------------- *)

let has_prefix p k =
  String.length k >= String.length p && String.sub k 0 (String.length p) = p

let has_suffix suf k =
  let ls = String.length suf and lk = String.length k in
  lk >= ls && String.sub k (lk - ls) ls = suf

let contains sub k =
  let ls = String.length sub and lk = String.length k in
  let rec go i = i + ls <= lk && (String.sub k i ls = sub || go (i + 1)) in
  go 0

(** Host-clock keys: everything bechamel measures, campaign wall times
    and speedups, and the dispatch-overhead microbenchmark. Sim keys are
    the deterministic rest. *)
let is_host key =
  has_prefix "par/" key
  || has_prefix "scale10k/dispatch/" key
  || not
       (List.exists
          (fun p -> has_prefix p key)
          [
            "table1/sim/"; "fig4/sim/"; "table6/sim/"; "scaling/"; "lat/";
            "profile/"; "faults/"; "fams/"; "litmus/"; "scale10k/";
          ])

(** Exact-count keys: deterministic enumerations where a change in
    either direction means behaviour drifted (litmus crash-state counts,
    faultcheck outcome counts — not the degraded-latency percentiles). *)
let is_exact_count key =
  has_prefix "litmus/" key
  || (has_prefix "faults/" key && not (has_prefix "faults/degraded-lat/" key))

let higher_is_better key = has_suffix "/slo" key || contains "/speedup" key

(* --- diff ------------------------------------------------------------ *)

type verdict =
  | Unchanged
  | Improved of float  (** relative delta, new vs old *)
  | Regressed of float

type entry = { e_key : string; e_old : float; e_new : float; e_verdict : verdict }

type report = {
  r_entries : entry list;  (** old-file key order *)
  r_missing : string list;  (** keys in old absent from new *)
  r_added : string list;  (** keys in new absent from old *)
  r_notes : string list;  (** non-fatal meta warnings *)
  r_subset : bool;
}

let rel_delta old_v new_v =
  if old_v = new_v then 0.
  else if old_v = 0. then Float.of_int (compare new_v 0.)
  else (new_v -. old_v) /. Float.abs old_v

let classify ~host_tol key old_v new_v =
  let rel = rel_delta old_v new_v in
  if is_exact_count key then if rel = 0. then Unchanged else Regressed rel
  else begin
    let tol = if is_host key then host_tol else 0. in
    let signed = if higher_is_better key then -.rel else rel in
    if signed > tol then Regressed rel
    else if signed < -.tol then Improved rel
    else Unchanged
  end

(** [diff ?host_tol ?subset ?strict_meta old new_] — [Error] on a schema
    refusal, otherwise the classified report. [subset] accepts a new file
    covering only part of the old keys (the CI gate diffs a fast-mode
    run, which has no host entries, against a full snapshot).
    [strict_meta] upgrades the legacy-snapshot warning to a refusal: a
    file without a [meta] block is an [Error] naming the file, instead
    of a note. Use it once every committed snapshot carries meta. *)
let diff ?(host_tol = 0.5) ?(subset = false) ?(strict_meta = false)
    (old_f : file) (new_f : file) =
  let missing_meta =
    List.filter_map
      (fun f -> if f.f_meta = None then Some f.f_path else None)
      [ old_f; new_f ]
  in
  match (old_f.f_meta, new_f.f_meta) with
  | _ when strict_meta && missing_meta <> [] ->
      Error
        (Printf.sprintf
           "--strict-meta: %s has no \"meta\" block (legacy pre-PR-9 \
            snapshot); regenerate it with the current bench harness"
           (String.concat " and " missing_meta))
  | Some mo, Some mn when mo.m_schema <> mn.m_schema ->
      Error
        (Printf.sprintf
           "schema mismatch: %s is schema %d, %s is schema %d — refusing to \
            diff across schemas (regenerate the old point or compare \
            like-for-like)"
           old_f.f_path mo.m_schema new_f.f_path mn.m_schema)
  | _ ->
      let notes = ref [] in
      let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
      (match (old_f.f_meta, new_f.f_meta) with
      | None, _ -> note "%s has no meta block (legacy pre-PR-9 snapshot)" old_f.f_path
      | _, None -> note "%s has no meta block (legacy pre-PR-9 snapshot)" new_f.f_path
      | Some mo, Some mn ->
          if mo.m_seed <> mn.m_seed then note "seeds differ: sim keys may drift legitimately";
          if mo.m_stacks <> mn.m_stacks && mn.m_stacks <> [] && mo.m_stacks <> []
          then note "stack lists differ";
          if mo.m_mode <> mn.m_mode then
            note "modes differ (%s vs %s): host keys may be absent" mo.m_mode mn.m_mode);
      let new_tbl = Hashtbl.create 256 in
      List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) new_f.f_tests;
      let entries, missing =
        List.fold_left
          (fun (es, ms) (k, old_v) ->
            match Hashtbl.find_opt new_tbl k with
            | Some new_v ->
                Hashtbl.remove new_tbl k;
                ( { e_key = k; e_old = old_v; e_new = new_v;
                    e_verdict = classify ~host_tol k old_v new_v }
                  :: es,
                  ms )
            | None -> (es, k :: ms))
          ([], []) old_f.f_tests
      in
      let added =
        List.filter (fun (k, _) -> Hashtbl.mem new_tbl k) new_f.f_tests
        |> List.map fst
      in
      Ok
        {
          r_entries = List.rev entries;
          r_missing = List.rev missing;
          r_added = added;
          r_notes = List.rev !notes;
          r_subset = subset;
        }

let regressed r =
  List.filter (fun e -> match e.e_verdict with Regressed _ -> true | _ -> false) r.r_entries

let improved r =
  List.filter (fun e -> match e.e_verdict with Improved _ -> true | _ -> false) r.r_entries

let unchanged_count r =
  List.length r.r_entries - List.length (regressed r) - List.length (improved r)

(** The gate: regressions always fail; missing keys fail unless the diff
    was declared a subset comparison. *)
let ok r = regressed r = [] && (r.r_subset || r.r_missing = [])

let print_report r =
  List.iter (fun s -> Printf.printf "note: %s\n" s) r.r_notes;
  let pr tag es =
    List.iter
      (fun e ->
        let rel =
          match e.e_verdict with Improved d | Regressed d -> d | Unchanged -> 0.
        in
        Printf.printf "%-10s %-44s %14.1f -> %14.1f  (%+.1f%%%s)\n" tag e.e_key
          e.e_old e.e_new (100. *. rel)
          (if is_host e.e_key then Printf.sprintf ", host"
           else if is_exact_count e.e_key then ", exact"
           else ""))
      es
  in
  pr "REGRESSED" (regressed r);
  pr "improved" (improved r);
  if r.r_missing <> [] then
    Printf.printf "%s: %d key(s) in old absent from new%s\n"
      (if r.r_subset then "subset" else "MISSING")
      (List.length r.r_missing)
      (if r.r_subset then " (accepted: --subset)" else "");
  if r.r_added <> [] then
    Printf.printf "added: %d new key(s)\n" (List.length r.r_added);
  Printf.printf
    "bench-diff: %d compared — %d regressed, %d improved, %d unchanged%s\n"
    (List.length r.r_entries)
    (List.length (regressed r))
    (List.length (improved r))
    (unchanged_count r)
    (if ok r then " — OK" else " — FAIL")
