(** The U-Split operation log (paper §3.3, "Optimized logging").

    Logical redo log of 64-byte entries; in the common case one operation
    writes exactly one entry with a single non-temporal store, and the
    caller's single sfence covers the staged data and the log entry
    together. A 4-byte CRC32 inside the entry replaces the second fence a
    tail-update-based log (like NOVA's) would need: recovery treats a
    non-zero entry whose checksum verifies as valid, everything else as
    torn. The tail lives only in DRAM as an [Atomic.int]. *)

val entry_size : int
(** 64 bytes. *)

type data_op = {
  target_ino : int;
  file_off : int;
  staging_ino : int;
  staging_off : int;
  len : int;
  data_crc : int;
      (** CRC32 of the staged bytes the entry points to; recovery verifies
          it before replaying the final (possibly data-torn) entry, since
          the entry and its data share one sfence *)
}

type entry =
  | Append of data_op
  | Overwrite of data_op
  | Relinked of { target_ino : int }
      (** all staged data of [target_ino] up to this point has been
          relinked; earlier entries for it are satisfied *)
  | Create of { ino : int }
  | Unlink of { ino : int }
  | Rename of { ino : int }
  | Truncate of { ino : int; size : int }
  | Fams_append of data_op
      (** fams-staged append: invisible to recovery until a later
          [Msync_commit] for the same inode promotes it *)
  | Fams_overwrite of data_op  (** fams-staged overwrite, same contract *)
  | Msync_commit of { target_ino : int }
      (** the msync commit record: every fams-staged entry for
          [target_ino] logged before this point is now published *)
  | Snapshot of { target_ino : int; snap_ino : int }
      (** a snapshot of [target_ino] was published into [snap_ino]
          (kernel-atomic extent clone); a barrier marker like [Create] *)

(** Serialise to a 64-byte slot (checksum filled in). *)
val encode : entry -> Bytes.t

type decoded = Valid of entry | Torn | Empty

(** Classify the 64-byte slot at [off]: all-zero = [Empty], checksum
    mismatch = [Torn]. [verify:false] skips checksum verification — the
    injected bug crashcheck's differential test must catch (campaigns set
    it from [Env.checks.verify_checksums]; default true). *)
val decode : ?verify:bool -> Bytes.t -> off:int -> decoded

type t

(** Create (or adopt) the log file at [path], pre-allocate and
    zero-initialise it, and map it for user-space stores. *)
val create :
  sys:Kernelfs.Syscall.t -> env:Pmem.Env.t -> path:string -> size:int -> t

val path : t -> string
val capacity : t -> int
(** Slots. *)

val entries_written : t -> int
(** Current DRAM tail. *)

(** Append one entry: one NT store, no fence (the caller fences). Raises
    ENOSPC if full — U-Split checkpoints before that can happen. *)
val append : t -> entry -> unit

(** Zero the used prefix and reset the tail (checkpoint reuse, §3.3). *)
val clear : t -> unit

type scan_result = { valid : entry list; torn : int; scanned : int }

(** Recovery-side scan through the kernel: collect valid entries in order
    up to the first torn slot (replay never skips over a bad checksum),
    keep scanning to the first all-zero slot so [scanned] covers the whole
    non-zero prefix; slots at or beyond the first torn one count as
    [torn]. *)
val scan : ?verify:bool -> Kernelfs.Syscall.t -> string -> scan_result
