(** The U-Split operation log (paper §3.3, "Optimized logging").

    Logical redo log; in the common case one operation writes exactly one
    64-byte entry with a single non-temporal store, and the caller issues a
    single sfence covering both the entry and the staged data. A 4-byte
    CRC32 inside the entry replaces the second fence that a
    tail-update-based log (like NOVA's) would need: recovery treats any
    non-zero entry whose checksum verifies as valid and everything else as
    torn.

    The tail lives only in DRAM as an [Atomic.int] — concurrent threads
    advance it with fetch-and-add and write their slots independently. It is
    never persisted; recovery reconstructs validity purely from checksums
    over the zero-initialised log file. *)

open Pmem

let entry_size = 64

(* Registered fence sites (fence minimization, crashcheck litmus). *)
let site_init = Device.register_fence_site "oplog:init"
let site_clear_head = Device.register_fence_site "oplog:clear-head"
let site_clear_rest = Device.register_fence_site "oplog:clear-rest"

type data_op = {
  target_ino : int;
  file_off : int;
  staging_ino : int;
  staging_off : int;
  len : int;
  data_crc : int;
      (** CRC32 of the staged bytes the entry points to. The entry and its
          data share one sfence, so the entry can survive a crash while
          the data is torn; recovery verifies this checksum before
          replaying the final (possibly data-torn) entry. *)
}

type entry =
  | Append of data_op
  | Overwrite of data_op
  | Relinked of { target_ino : int }
      (** all staged data of [target_ino] up to this point has been
          relinked; earlier entries for it are satisfied *)
  | Create of { ino : int }
  | Unlink of { ino : int }
  | Rename of { ino : int }
  | Truncate of { ino : int; size : int }
  | Fams_append of data_op
      (** fams-staged append: invisible to recovery until a later
          [Msync_commit] for the same inode promotes it *)
  | Fams_overwrite of data_op  (** fams-staged overwrite, same contract *)
  | Msync_commit of { target_ino : int }
      (** the msync commit record: every fams-staged entry for
          [target_ino] logged before this point is now published *)
  | Snapshot of { target_ino : int; snap_ino : int }
      (** a snapshot of [target_ino] was published into [snap_ino]
          (kernel-atomic extent clone); a barrier marker like [Create] *)

(* --- codec --- *)

let kind_of_entry = function
  | Append _ -> 1
  | Overwrite _ -> 2
  | Relinked _ -> 3
  | Create _ -> 4
  | Unlink _ -> 5
  | Rename _ -> 6
  | Truncate _ -> 7
  | Fams_append _ -> 8
  | Fams_overwrite _ -> 9
  | Msync_commit _ -> 10
  | Snapshot _ -> 11

let encode entry =
  let b = Bytes.make entry_size '\000' in
  Bytes.set_uint8 b 0 (kind_of_entry entry);
  let set_ino i = Bytes.set_int64_le b 8 (Int64.of_int i) in
  (match entry with
  | Append op | Overwrite op | Fams_append op | Fams_overwrite op ->
      set_ino op.target_ino;
      Bytes.set_int64_le b 16 (Int64.of_int op.file_off);
      Bytes.set_int64_le b 24 (Int64.of_int op.staging_ino);
      Bytes.set_int64_le b 32 (Int64.of_int op.staging_off);
      Bytes.set_int64_le b 40 (Int64.of_int op.len);
      Bytes.set_int32_le b 48 (Int32.of_int op.data_crc)
  | Relinked { target_ino } | Msync_commit { target_ino } -> set_ino target_ino
  | Create { ino } | Unlink { ino } | Rename { ino } -> set_ino ino
  | Truncate { ino; size } ->
      set_ino ino;
      Bytes.set_int64_le b 16 (Int64.of_int size)
  | Snapshot { target_ino; snap_ino } ->
      set_ino target_ino;
      Bytes.set_int64_le b 16 (Int64.of_int snap_ino));
  let crc = Crc32.bytes b in
  Bytes.set_int32_le b 4 (Int32.of_int crc);
  b

type decoded = Valid of entry | Torn | Empty

(* [verify:false] skips checksum verification — the "forgot to verify"
   bug that crashcheck's differential test must catch. Tests only; the
   campaign flag lives in [Env.checks.verify_checksums]. *)
let decode ?(verify = true) b ~off =
  let is_zero = ref true in
  for i = off to off + entry_size - 1 do
    if Bytes.get b i <> '\000' then is_zero := false
  done;
  if !is_zero then Empty
  else begin
    let stored = Int32.to_int (Bytes.get_int32_le b (off + 4)) land 0xFFFFFFFF in
    let copy = Bytes.sub b off entry_size in
    Bytes.set_int32_le copy 4 0l;
    if verify && Crc32.bytes copy <> stored then Torn
    else begin
      let geti pos = Int64.to_int (Bytes.get_int64_le copy pos) in
      let data_op () =
        {
          target_ino = geti 8;
          file_off = geti 16;
          staging_ino = geti 24;
          staging_off = geti 32;
          len = geti 40;
          data_crc =
            Int32.to_int (Bytes.get_int32_le copy 48) land 0xFFFFFFFF;
        }
      in
      match Bytes.get_uint8 copy 0 with
      | 1 -> Valid (Append (data_op ()))
      | 2 -> Valid (Overwrite (data_op ()))
      | 3 -> Valid (Relinked { target_ino = geti 8 })
      | 4 -> Valid (Create { ino = geti 8 })
      | 5 -> Valid (Unlink { ino = geti 8 })
      | 6 -> Valid (Rename { ino = geti 8 })
      | 7 -> Valid (Truncate { ino = geti 8; size = geti 16 })
      | 8 -> Valid (Fams_append (data_op ()))
      | 9 -> Valid (Fams_overwrite (data_op ()))
      | 10 -> Valid (Msync_commit { target_ino = geti 8 })
      | 11 -> Valid (Snapshot { target_ino = geti 8; snap_ino = geti 16 })
      | _ -> Torn
    end
  end

(* --- the log itself --- *)

type t = {
  sys : Kernelfs.Syscall.t;
  env : Env.t;
  path : string;
  kfd : int;
  mapping : Kernelfs.Ext4.mapping;
  capacity : int;  (** entries *)
  tail : int Atomic.t;
}

let dev_addr t ~off =
  match
    Kernelfs.Ext4.translate (Kernelfs.Syscall.kernel t.sys) t.mapping
      ~max:entry_size ~file_off:off
  with
  | Some (addr, run) when run >= entry_size -> addr
  | _ -> Fsapi.Errno.(error EINVAL "oplog: unmapped slot")

let zero_range t ~off ~len =
  let pos = ref off in
  let kfs = Kernelfs.Syscall.kernel t.sys in
  while !pos < off + len do
    match Kernelfs.Ext4.translate kfs t.mapping ~max:(off + len - !pos) ~file_off:!pos with
    | Some (addr, run) ->
        let n = min run (off + len - !pos) in
        Device.zero_nt t.env.Env.dev ~addr ~len:n;
        pos := !pos + n
    | None -> Fsapi.Errno.(error EINVAL "oplog: hole")
  done

let create ~sys ~env ~path ~size =
  let size = size / entry_size * entry_size in
  let kfd = Kernelfs.Syscall.open_ sys path Fsapi.Flags.create_rw in
  let allocated = Kernelfs.Syscall.fallocate sys kfd ~off:0 ~len:size in
  Kernelfs.Syscall.set_size sys kfd size;
  let mapping = Kernelfs.Syscall.mmap sys kfd ~off:0 ~len:size in
  let t =
    {
      sys;
      env;
      path;
      kfd;
      mapping;
      capacity = size / entry_size;
      tail = Atomic.make 0;
    }
  in
  (* Zero-initialise so recovery can treat non-zero slots as potentially
     valid; only needed for freshly allocated blocks. *)
  if allocated > 0 then zero_range t ~off:0 ~len:size;
  Device.fence ~site:site_init env.Env.dev;
  t

let entries_written t = Atomic.get t.tail
let capacity t = t.capacity
let path t = t.path

(** Crash-atomic two-phase clear (checkpoint, §3.3). Zeroing the whole used region under one
    fence is not safe: a crash may persist an arbitrary subset of the
    zero-stores, and if it keeps a stale prefix of entries while dropping
    the slots behind it (including the Relinked markers that cancel them),
    recovery replays stale data over the freshly relinked file. Instead:
    zero slot 0 alone and fence — after this the log is durably either
    untouched (the full entry sequence, whose Relinked entries cancel all
    replay) or empty-at-the-head (scan stops immediately); both are safe —
    then zero the remaining slots under a second fence. *)
let clear t =
  let used = Atomic.get t.tail in
  if used > 0 then begin
    zero_range t ~off:0 ~len:entry_size;
    Device.fence ~site:site_clear_head t.env.Env.dev;
    if used > 1 then begin
      zero_range t ~off:entry_size ~len:((used - 1) * entry_size);
      Device.fence ~site:site_clear_rest t.env.Env.dev
    end;
    Atomic.set t.tail 0
  end

(** Append one entry with a single non-temporal store. No fence is issued
    here: the caller's one sfence covers staged data and the log entry
    together. The caller (U-Split) checkpoints before the log fills; a
    genuinely full log is a protocol bug and raises ENOSPC. *)
let append t entry =
  Env.with_cat t.env Obs.Log_append @@ fun () ->
  let idx = Atomic.fetch_and_add t.tail 1 in
  if idx >= t.capacity then Fsapi.Errno.(error ENOSPC "oplog full");
  let tm = t.env.Env.timing in
  Env.cpu t.env tm.Timing.usplit_log_cpu;
  let b = encode entry in
  Device.store_nt t.env.Env.dev ~addr:(dev_addr t ~off:(idx * entry_size)) b
    ~off:0 ~len:entry_size;
  let stats = t.env.Env.stats in
  stats.Stats.log_entries <- stats.Stats.log_entries + 1

(* --- recovery-side scan --- *)

type scan_result = { valid : entry list; torn : int; scanned : int }

(** Read the log file through the kernel and classify every slot: used at
    mount time by {!Recovery}. Collection stops at the first torn slot —
    replay must never skip over a bad checksum, since everything beyond it
    postdates the tear and cannot be trusted — but scanning continues to
    the first all-zero slot so recovery knows the full non-zero prefix to
    zero (a stale valid-looking entry left beyond a tear must not be
    resurrected when the log is reused). Slots at or beyond the first torn
    one count as torn. *)
let scan ?(verify = true) sys path =
  let fd = Kernelfs.Syscall.open_ sys path Fsapi.Flags.rdonly in
  Fun.protect
    ~finally:(fun () -> Kernelfs.Syscall.close sys fd)
    (fun () ->
      let size = (Kernelfs.Syscall.fstat sys fd).Fsapi.Fs.st_size in
      let chunk = 64 * 1024 in
      let buf = Bytes.create chunk in
      let valid = ref [] and torn = ref 0 and scanned = ref 0 in
      let stop = ref false and trusted = ref true in
      let off = ref 0 in
      while (not !stop) && !off < size do
        let len = min chunk (size - !off) in
        let got = Kernelfs.Syscall.pread sys fd ~buf ~boff:0 ~len ~at:!off in
        let entries = got / entry_size in
        let i = ref 0 in
        while (not !stop) && !i < entries do
          (match decode ~verify buf ~off:(!i * entry_size) with
          | Empty -> stop := true
          | Torn ->
              trusted := false;
              incr torn;
              incr scanned
          | Valid e ->
              if !trusted then valid := e :: !valid else incr torn;
              incr scanned);
          incr i
        done;
        if got < len then stop := true;
        off := !off + got
      done;
      { valid = List.rev !valid; torn = !torn; scanned = !scanned })
