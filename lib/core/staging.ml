(** Staging files (paper §3.3, §3.5).

    A pool of pre-allocated PM files absorbs appends (and, in strict mode,
    overwrites). Pre-allocation happens at startup and, afterwards, from a
    background thread, keeping file creation off the critical path. Each
    staging file is fully memory-mapped once — with 2 MB-aligned extents when
    the allocator can provide them, so its pages are huge and survive for the
    whole run (the collection-of-mmaps answer to huge-page fragility, §4).

    A handle is exclusively owned by one target file from the first staged
    write until relink; afterwards it returns to the pool if enough space
    remains, or is retired and replaced in the background. *)

open Pmem

let block_size = Kernelfs.Ext4.block_size

type pm_file = {
  sfd : int;
  s_ino : int;
  s_path : string;
  mapping : Kernelfs.Ext4.mapping;
}

type backing =
  | Pm_file of pm_file  (** a pre-allocated PM file, relinkable into targets *)
  | Dram of Bytes.t
      (** a volatile DRAM buffer (the §4 alternative design); cheaper to
          write but must be copied to PM on fsync and lost on crash *)

type handle = {
  h_id : int;
  backing : backing;
  s_size : int;
  mutable cursor : int;  (** next unreserved byte *)
}

type t = {
  sys : Kernelfs.Syscall.t;
  env : Env.t;
  file_size : int;
  dir : string;
  in_dram : bool;
  queue : handle Queue.t;
      (** the paper uses a lock-free queue; the simulation is single-domain
          so a plain queue carries the same semantics *)
  mutable created : int;
  mutable live : int;
}

(** Fields of a PM-backed handle; raises on DRAM handles (which cannot be
    relinked). *)
let pm_backing h =
  match h.backing with
  | Pm_file b -> b
  | Dram _ -> Fsapi.Errno.(error EINVAL "staging: DRAM handle has no PM file")

let sfd h = (pm_backing h).sfd
let s_ino h = match h.backing with Pm_file b -> b.s_ino | Dram _ -> -1
let is_dram h = match h.backing with Dram _ -> true | Pm_file _ -> false

let staging_dir_of instance = Printf.sprintf "/.splitfs-%d" instance

let new_handle t =
  t.created <- t.created + 1;
  t.live <- t.live + 1;
  let backing =
    if t.in_dram then Dram (Bytes.make t.file_size '\000')
    else begin
      let path = Printf.sprintf "%s/staging-%d" t.dir (t.created - 1) in
      let sfd = Kernelfs.Syscall.open_ t.sys path Fsapi.Flags.create_rw in
      (* pre-allocation runs under the [Staging_prealloc] origin so a
         fault campaign can starve exactly this path (exercising the
         degraded-write fallback) while foreground allocations stay
         healthy; on ENOSPC the half-made file is torn down so the
         caller sees a clean failure *)
      (try
         Faults.with_origin t.env.Env.faults Faults.Staging_prealloc
           (fun () ->
             ignore (Kernelfs.Syscall.fallocate t.sys sfd ~off:0 ~len:t.file_size))
       with Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) as e ->
         Kernelfs.Syscall.close t.sys sfd;
         Kernelfs.Syscall.unlink t.sys path;
         t.live <- t.live - 1;
         raise e);
      (* the file size covers the whole pre-allocation so that crash
         recovery can read staged bytes through the kernel *)
      Kernelfs.Syscall.set_size t.sys sfd t.file_size;
      let mapping = Kernelfs.Syscall.mmap t.sys sfd ~off:0 ~len:t.file_size in
      Pm_file
        {
          sfd;
          s_ino = (Kernelfs.Syscall.fstat t.sys sfd).Fsapi.Fs.st_ino;
          s_path = path;
          mapping;
        }
    end
  in
  { h_id = t.created - 1; backing; s_size = t.file_size; cursor = 0 }

let create ?(in_dram = false) ~sys ~env ~instance ~count ~file_size () =
  let dir = staging_dir_of instance in
  if not in_dram then (
    match Kernelfs.Syscall.mkdir sys dir with
    | () -> ()
    | exception Fsapi.Errno.Error (Fsapi.Errno.EEXIST, _) -> ());
  let t =
    { sys; env; file_size; dir; in_dram; queue = Queue.create (); created = 0; live = 0 }
  in
  for _ = 1 to count do
    Queue.push (new_handle t) t.queue
  done;
  t

let pool_size t = Queue.length t.queue
let live_files t = t.live
let bytes_reserved t = t.live * t.file_size

(** Pop a staging file; if the pool ran dry (burst), one is created in the
    foreground — the cost the background thread normally hides. *)
let acquire t =
  match Queue.pop t.queue with
  | h -> h
  | exception Queue.Empty -> new_handle t

let retire t h =
  (match h.backing with
  | Pm_file b ->
      Kernelfs.Syscall.close t.sys b.sfd;
      Kernelfs.Syscall.unlink t.sys b.s_path
  | Dram _ -> ());
  t.live <- t.live - 1

(** Return a handle after relink. Mostly-consumed handles are retired and a
    replacement is pre-allocated by the background thread. *)
let release t h =
  let min_useful = max block_size (t.file_size / 8) in
  if h.s_size - h.cursor >= min_useful then Queue.push h t.queue
  else begin
    retire t h;
    Env.in_background t.env (fun () ->
        (* the background thread absorbs pre-allocation ENOSPC silently:
           the pool just stays one file short and the next [acquire]
           retries in the foreground *)
        match new_handle t with
        | h -> Queue.push h t.queue
        | exception Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) -> ())
  end

let remaining h = h.s_size - h.cursor

(** Reserve [len] bytes whose in-block offset equals [align_rem] (so relink
    can swap whole blocks and only copy partial boundary blocks). Distinct
    reservations never share a staging block — relink may move a
    reservation's partial tail block wholesale, so a block must have a
    single owner. Returns the staging offset, or [None] if the handle
    lacks space. *)
let reserve h ~align_rem len =
  assert (align_rem >= 0 && align_rem < block_size);
  let base =
    if h.cursor mod block_size = 0 then h.cursor + align_rem
    else ((h.cursor / block_size) + 1) * block_size + align_rem
  in
  if base + len > h.s_size then None
  else begin
    h.cursor <- base + len;
    Some base
  end

(** Reserve continuing exactly at the previous reservation's end (used to
    coalesce consecutive appends into one staged run). *)
let reserve_contiguous h ~at len =
  if at = h.cursor && at + len <= h.s_size then begin
    h.cursor <- at + len;
    true
  end
  else false

let translate t h ~max ~off =
  Kernelfs.Ext4.translate (Kernelfs.Syscall.kernel t.sys) (pm_backing h).mapping
    ~max ~file_off:off

(** User-space write into the staging area — no kernel involvement.
    PM-backed handles take non-temporal stores through the mapping; DRAM
    handles pay only DRAM bandwidth (§4 ablation). *)
let write t h ~off buf ~boff ~len =
  (match h.backing with
  | Dram b ->
      Bytes.blit buf boff b off len;
      Env.cpu t.env
        (float_of_int len *. t.env.Env.timing.Timing.dram_write_per_byte)
  | Pm_file _ ->
      let pos = ref off and src = ref boff and remaining = ref len in
      while !remaining > 0 do
        match translate t h ~max:!remaining ~off:!pos with
        | Some (addr, run) ->
            let n = min run !remaining in
            Device.store_nt t.env.Env.dev ~addr buf ~off:!src ~len:n;
            pos := !pos + n;
            src := !src + n;
            remaining := !remaining - n
        | None -> Fsapi.Errno.(error EINVAL "staging: hole in mapping")
      done);
  let stats = t.env.Env.stats in
  stats.Stats.staged_bytes <- stats.Stats.staged_bytes + len

(** User-space read of staged bytes. *)
let read t h ~off buf ~boff ~len =
  match h.backing with
  | Dram b ->
      Bytes.blit b off buf boff len;
      Env.cpu t.env
        (t.env.Env.timing.Timing.dram_read_lat
        +. (float_of_int len /. t.env.Env.timing.Timing.dram_read_bw))
  | Pm_file _ ->
      let pos = ref off and dst = ref boff and remaining = ref len in
      while !remaining > 0 do
        match translate t h ~max:!remaining ~off:!pos with
        | Some (addr, run) ->
            let n = min run !remaining in
            Device.load t.env.Env.dev ~addr buf ~off:!dst ~len:n;
            pos := !pos + n;
            dst := !dst + n;
            remaining := !remaining - n
        | None -> Fsapi.Errno.(error EINVAL "staging: hole in mapping")
      done
