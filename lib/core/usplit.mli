(** U-Split: the user-space library file system of SplitFS (paper §3).

    Data operations (read, overwrite, append) are served in user space
    through a collection of memory-mappings and staging files; metadata
    operations pass through to the kernel file system (ext4 DAX). Appends —
    and, in strict mode, overwrites — are staged and then logically moved
    to the target file by the relink primitive on fsync or close.

    Each mounted instance has its own mode (POSIX / sync / strict /
    fams), staging pool and operation log, so concurrent applications can
    pick different guarantees (§3.2). In fams mode every store stages
    with no per-store fence and stays invisible to crash recovery until
    fsync (= msync) publishes it atomically behind an op-log commit
    record. *)

type t

(** Mount a U-Split instance over the kernel file system reachable through
    [sys]. [instance] names the per-process staging directory and
    operation log (a real deployment would use the pid). Pre-allocates the
    staging pool and, in sync/strict/fams modes, the zero-initialised
    operation log. *)
val mount :
  ?cfg:Config.t ->
  sys:Kernelfs.Syscall.t ->
  env:Pmem.Env.t ->
  instance:int ->
  unit ->
  t

(** The POSIX-like view used by applications; every call charges simulated
    time according to the SplitFS protocol for the instance's mode. *)
val as_fsapi : t -> Fsapi.Fs.t

val config : t -> Config.t

(** The instance's operation log ([None] in POSIX mode). *)
val oplog : t -> Oplog.t option

(** Relink every file with staged data and clear the log — the checkpoint
    that runs when the operation log fills (§3.3). Also useful in tests
    and before process handoffs. *)
val relink_all : t -> unit

(** [snapshot t src dst] — instant snapshot of a file or directory tree:
    [src]'s staged data is published first (an msync, commit-record
    protected in fams mode), then its extent map is cloned block-for-block
    into [dst] in one kernel journal transaction — O(metadata), no data
    copied. Cloned blocks are shared copy-on-write: the next in-place
    store through either owner breaks the share. A directory [src]
    snapshots every regular file beneath it (the per-tenant case). *)
val snapshot : t -> string -> string -> unit

(** Approximate DRAM footprint of the instance's bookkeeping (fd table,
    attribute cache, collection of mmaps, shadow maps) — the §5.10
    resource-consumption measurement. *)
val memory_usage : t -> int

(** [scrub t ~wear_limit] runs one background scrubber patrol: file data
    sitting on blocks worn to [wear_limit] writes (or holding poisoned
    lines) is migrated to fresh blocks and the bad blocks are retired.
    Runs on the background thread, off the critical path. Returns the
    number of blocks migrated. *)
val scrub : t -> wear_limit:int -> int

(** [fork t ~instance] models fork() (§3.5): the child inherits every open
    descriptor (kernel fds dup'ed, offsets copied, dup-sharing preserved)
    and gets its own staging pool and log. Staged data is settled first.
    Returns the child and a parent-fd → child-fd map. *)
val fork : t -> instance:int -> t * (int * int) list

(** [execve t] models exec() (§3.5): U-Split's DRAM state dies, kernel fds
    survive. Bookkeeping crosses the boundary through a shared-memory
    handoff file; the fresh instance re-adopts the still-open kernel fds
    (including unlinked files). Returns the new instance and the fd map. *)
val execve : t -> t * (int * int) list
