(** Crash recovery for SplitFS (paper §5.3).

    POSIX and sync modes need nothing beyond ext4 DAX journal recovery
    (which the simulation's kernel provides by construction: metadata
    operations are atomic at journal commit). In strict mode the valid
    entries of the operation log are replayed on top: every staged data
    operation whose relink had not completed is relinked now, using the
    same kernel primitive. Replay is idempotent — an already-relinked range
    has no extents left in the staging file, so those blocks are skipped
    (re-running the swap would de-allocate the target blocks the completed
    relink just delivered), and boundary-block copies rewrite identical
    bytes.

    Recovery works at inode granularity (the log records inode numbers,
    not paths), exactly like the original implementation. *)

open Pmem

let block_size = Kernelfs.Ext4.block_size

type report = {
  entries_scanned : int;
  entries_replayed : int;
  torn_entries : int;
  torn_data_entries : int;
      (** valid-looking entries dropped because their staged data failed
          its checksum (entry persisted, data torn) *)
  files_recovered : int;
  replay_skipped : int;
      (** ops dropped because their staged source bytes were unreadable
          (poisoned PM lines) — the lines are quarantined and the target
          keeps its pre-op content instead of recovery failing outright *)
  replay_ns : float;  (** simulated time spent replaying *)
}

(** Pending staged ops per target inode, reconstructed in log order.

    Fams-staged entries are collected separately: they stay invisible
    until their inode's [Msync_commit] record promotes them to pending —
    everything still uncommitted when the scan ends is dropped, which is
    exactly the failure-atomic msync contract (the pre-msync image
    survives). A commit record is only ever appended after the fence that
    made the staged entries and their data durable, so promoted ops never
    need the torn-data check the per-op-fenced kinds get. *)
let collect entries =
  let pending : (int, Oplog.data_op list ref) Hashtbl.t = Hashtbl.create 64 in
  let uncommitted : (int, Oplog.data_op list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let touch tbl ino =
    match Hashtbl.find_opt tbl ino with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace tbl ino l;
        l
  in
  let trim_ops size ops =
    List.filter_map
      (fun (op : Oplog.data_op) ->
        if op.Oplog.file_off >= size then None
        else if op.Oplog.file_off + op.Oplog.len <= size then Some op
        else Some { op with Oplog.len = size - op.Oplog.file_off })
      ops
  in
  List.iter
    (fun entry ->
      match entry with
      | Oplog.Append op | Oplog.Overwrite op ->
          let l = touch pending op.Oplog.target_ino in
          l := op :: !l
      | Oplog.Fams_append op | Oplog.Fams_overwrite op ->
          let l = touch uncommitted op.Oplog.target_ino in
          l := op :: !l
      | Oplog.Msync_commit { target_ino } -> (
          match Hashtbl.find_opt uncommitted target_ino with
          | Some u ->
              Hashtbl.remove uncommitted target_ino;
              (* promoted ops are newer than anything already pending for
                 the inode; both lists are newest-first *)
              let p = touch pending target_ino in
              p := !u @ !p
          | None -> ())
      | Oplog.Relinked { target_ino } -> Hashtbl.remove pending target_ino
      | Oplog.Unlink { ino } ->
          Hashtbl.remove pending ino;
          Hashtbl.remove uncommitted ino
      | Oplog.Truncate { ino; size } ->
          let l = touch pending ino in
          l := trim_ops size !l;
          (match Hashtbl.find_opt uncommitted ino with
          | Some u -> u := trim_ops size !u
          | None -> ())
      | Oplog.Create _ | Oplog.Rename _ | Oplog.Snapshot _ -> ())
    entries;
  pending

(** Replay one staged op: copy partial boundary blocks, relink full
    blocks — the same protocol U-Split runs on fsync. *)
let replay_op kfs (env : Env.t) ~target ~staging (op : Oplog.data_op) =
  let copy ~t_off ~s_off ~len =
    (* skip ranges whose staging blocks are gone: a completed relink moved
       them into the target wholesale (the tail block reaching EOF is
       relinked, not copied), so "replaying" the copy would read the hole
       as zeros and destroy the very bytes the relink just delivered *)
    if len > 0 && Kernelfs.Ext4.range_mapped kfs staging ~off:s_off ~len
    then begin
      let buf = Bytes.create len in
      let got = Kernelfs.Ext4.pread kfs staging ~off:s_off buf ~boff:0 ~len in
      ignore (Kernelfs.Ext4.pwrite kfs target ~off:t_off buf ~boff:0 ~len:got)
    end
  in
  let t_off = op.Oplog.file_off and s_off = op.Oplog.staging_off in
  let len = op.Oplog.len in
  let head =
    if t_off mod block_size = 0 then 0
    else min len (block_size - (t_off mod block_size))
  in
  copy ~t_off ~s_off ~len:head;
  let t2 = t_off + head and s2 = s_off + head and rem = len - head in
  let nfull = rem / block_size in
  (* relink only the staging blocks that are still mapped: a relink that
     completed before the crash moved them into the target and left holes
     behind, and re-running the swap there would free — not refill — the
     target's fresh blocks. A crash between relink_file's per-extent
     transactions leaves the range partially moved, so test each block. *)
  for b = 0 to nfull - 1 do
    let sb = s2 + (b * block_size) in
    if Kernelfs.Ext4.range_mapped kfs staging ~off:sb ~len:block_size then
      Kernelfs.Ext4.relink kfs ~src:staging ~src_blk:(sb / block_size)
        ~dst:target
        ~dst_blk:((t2 + (b * block_size)) / block_size)
        ~nblks:1 ~dst_size:None
  done;
  let tail = rem - (nfull * block_size) in
  copy
    ~t_off:(t2 + (nfull * block_size))
    ~s_off:(s2 + (nfull * block_size))
    ~len:tail;
  if t_off + len > target.Kernelfs.Ext4.size then begin
    target.Kernelfs.Ext4.size <- t_off + len
  end;
  ignore env

(** [recover ~sys ~env ~instance] scans the instance's operation log,
    replays every pending staged operation, and zeroes the log. *)
let empty_report =
  {
    entries_scanned = 0;
    entries_replayed = 0;
    torn_entries = 0;
    torn_data_entries = 0;
    files_recovered = 0;
    replay_skipped = 0;
    replay_ns = 0.;
  }

(** The final logged data op may have torn staged data: the entry and its
    data share one sfence, so the entry can be durable while some of the
    data is not. Verify its data checksum and drop the entry when the
    bytes do not match. Earlier entries need no check — a later slot is
    only written after the preceding op's fence made its data durable.
    The check is skipped when the staging range is no longer fully mapped:
    relink already moved those blocks, so the op provably completed (and
    its fence with it) and replay of the half-moved range must stay
    idempotent. *)
let verify_final_data ~verify kfs valid =
  match List.rev valid with
  | (Oplog.Append op | Oplog.Overwrite op) :: earlier when verify -> (
      match Kernelfs.Ext4.inode_of kfs op.Oplog.staging_ino with
      | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> (valid, 0)
      | staging ->
          if
            not
              (Kernelfs.Ext4.range_mapped kfs staging
                 ~off:op.Oplog.staging_off ~len:op.Oplog.len)
          then (valid, 0)
          else begin
            let buf = Bytes.create op.Oplog.len in
            let got =
              Kernelfs.Ext4.pread kfs staging ~off:op.Oplog.staging_off buf
                ~boff:0 ~len:op.Oplog.len
            in
            if got = op.Oplog.len && Crc32.bytes buf = op.Oplog.data_crc then
              (valid, 0)
            else (List.rev earlier, 1)
          end)
  | _ -> (valid, 0)

let recover ~sys ~env ~instance =
  Env.with_span env ~cat:Obs.Usplit ~name:"u:recover" @@ fun () ->
  let kfs = Kernelfs.Syscall.kernel sys in
  let dev = env.Env.dev in
  let faults = env.Env.faults in
  let verify = env.Env.checks.Env.verify_checksums in
  let path = Printf.sprintf "/.splitfs-oplog-%d" instance in
  let t0 = Env.now env in
  (* quarantine the PM line behind the most recent machine-check so the
     faulted range reads back as zeros instead of faulting forever *)
  let quarantine_last () =
    let a = Device.last_poison dev in
    if a >= 0 then Device.quarantine dev ~addr:a ~len:1
  in
  (* A poisoned line inside the log region surfaces as EIO from the scan's
     kernel reads. Recovery must not fail on it: quarantine the line (the
     slot then decodes as torn — checksums reject zeros with the entry's
     other bytes — or empty) and rescan. *)
  let max_scan_attempts = 64 in
  let rec scan_log attempt =
    match Oplog.scan ~verify sys path with
    | scan -> Some scan
    | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> None
    | exception Fsapi.Errno.Error (Fsapi.Errno.EIO, _)
      when attempt < max_scan_attempts && Device.last_poison dev >= 0 ->
        quarantine_last ();
        Faults.note_retried faults;
        scan_log (attempt + 1)
  in
  match scan_log 1 with
  | None ->
      (* POSIX-mode instances have no operation log: ext4 journal recovery
         alone suffices (§5.3) *)
      empty_report
  | Some scan ->
  let valid, torn_data =
    match verify_final_data ~verify kfs scan.Oplog.valid with
    | r -> r
    | exception Faults.Poisoned a ->
        (* the final entry's staged data is unreadable: it certainly
           cannot pass its checksum — drop it and move on *)
        Device.quarantine dev ~addr:a ~len:1;
        (match List.rev scan.Oplog.valid with
        | _ :: earlier -> (List.rev earlier, 1)
        | [] -> ([], 0))
  in
  let pending = collect valid in
  let replayed = ref 0 and files = ref 0 and skipped = ref 0 in
  let skip_op () =
    quarantine_last ();
    Faults.note_replay_skipped faults;
    incr skipped
  in
  Hashtbl.iter
    (fun ino ops ->
      match Kernelfs.Ext4.inode_of kfs ino with
      | target ->
          incr files;
          List.iter
            (fun (op : Oplog.data_op) ->
              match Kernelfs.Ext4.inode_of kfs op.Oplog.staging_ino with
              | staging -> (
                  match replay_op kfs env ~target ~staging op with
                  | () -> incr replayed
                  | exception Faults.Poisoned a ->
                      (* staged source bytes are gone to a media fault:
                         quarantine and skip — the target keeps its
                         pre-op content for the unreplayed range *)
                      Device.quarantine dev ~addr:a ~len:1;
                      Faults.note_replay_skipped faults;
                      incr skipped
                  | exception Fsapi.Errno.Error (Fsapi.Errno.EIO, _) ->
                      skip_op ())
              | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> ())
            (List.rev !ops)
      | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> ())
    pending;
  (* make the replayed state durable, then reset the log for reuse *)
  Kernelfs.Ext4.fsync kfs (Kernelfs.Ext4.root_inode kfs);
  (let fd = Kernelfs.Syscall.open_ sys path Fsapi.Flags.rdwr in
   Fun.protect
     ~finally:(fun () -> Kernelfs.Syscall.close sys fd)
     (fun () ->
       let size = (Kernelfs.Syscall.fstat sys fd).Fsapi.Fs.st_size in
       let zeros = Bytes.make 65536 '\000' in
       let pos = ref 0 in
       let used = scan.Oplog.scanned * Oplog.entry_size in
       while !pos < used && !pos < size do
         let n = min (Bytes.length zeros) (min (used - !pos) (size - !pos)) in
         ignore (Kernelfs.Syscall.pwrite sys fd ~buf:zeros ~boff:0 ~len:n ~at:!pos);
         pos := !pos + n
       done));
  {
    entries_scanned = scan.Oplog.scanned;
    entries_replayed = !replayed;
    torn_entries = scan.Oplog.torn;
    torn_data_entries = torn_data;
    files_recovered = !files;
    replay_skipped = !skipped;
    replay_ns = Env.now env -. t0;
  }
