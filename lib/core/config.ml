(** SplitFS modes and tunable parameters (paper §3.2, §3.6).

    Each U-Split instance has its own configuration, so concurrently running
    applications can use different modes without interfering. *)

type mode =
  | Posix  (** metadata consistency, in-place synchronous overwrites,
               atomic (but not synchronous) appends — like ext4 DAX *)
  | Sync  (** + synchronous data and metadata operations — like PMFS /
              NOVA-relaxed *)
  | Strict  (** + atomic data operations — like NOVA-strict / Strata *)
  | Fams
      (** failure-atomic msync: stores stage in shadow extents and stay
          invisible to crash recovery until [fsync]/msync publishes them
          atomically (oplog commit record + relink). A mid-publish crash
          recovers to the pre- or post-msync image, never a torn one. *)

let mode_to_string = function
  | Posix -> "posix"
  | Sync -> "sync"
  | Strict -> "strict"
  | Fams -> "fams"

type t = {
  mode : mode;
  mmap_size : int;
      (** granularity of the collection of memory-mappings; default 2 MB so
          that mappings can use huge pages (§3.6) *)
  staging_files : int;  (** staging files pre-allocated at startup *)
  staging_size : int;  (** size of each staging file *)
  oplog_size : int;  (** operation-log file size; 64 B per entry *)
  (* Feature flags for the Figure 3 ablation. With [use_staging = false]
     appends fall through to the kernel; with [use_relink = false] staged
     data is copied into the target file on fsync instead of relinked. *)
  use_staging : bool;
  use_relink : bool;
  staging_in_dram : bool;
      (** the alternative design of paper §4 ("Staging writes in DRAM"):
          staged data lives in DRAM buffers, so staging is cheaper but
          fsync must copy everything to PM — no relink possible. The paper
          tried and rejected this; the ablation benchmark shows why. *)
}

(** Paper defaults are 10 × 160 MB staging files and a 128 MB log; the
    simulation default scales these down so small experiments stay light.
    Experiments that need the paper's sizing pass them explicitly. *)
let default =
  {
    mode = Posix;
    mmap_size = 2 * 1024 * 1024;
    staging_files = 2;
    staging_size = 16 * 1024 * 1024;
    oplog_size = 1024 * 1024;
    use_staging = true;
    use_relink = true;
    staging_in_dram = false;
  }

let posix = default
let sync = { default with mode = Sync }
let strict = { default with mode = Strict }
let fams = { default with mode = Fams }

let with_mode mode = { default with mode }
