(** Crash recovery for SplitFS (paper §5.3).

    POSIX and sync modes need nothing beyond the kernel's journal
    recovery; in strict (and sync) mode the valid operation-log entries
    are replayed: every staged data operation whose relink had not
    completed is relinked now. Replay is idempotent, and the log is
    zeroed afterwards. *)

type report = {
  entries_scanned : int;
  entries_replayed : int;
  torn_entries : int;
  torn_data_entries : int;
      (** valid-looking entries dropped because their staged data failed
          its checksum (entry persisted before a crash, data torn) *)
  files_recovered : int;
  replay_skipped : int;
      (** ops dropped because their staged source bytes sat on poisoned
          PM lines — the lines are quarantined, the target keeps its
          pre-op content, and recovery completes instead of failing *)
  replay_ns : float;  (** simulated time spent replaying *)
}

val empty_report : report

(** [recover ~sys ~env ~instance] scans instance [instance]'s operation
    log, replays pending staged operations onto the kernel file system,
    zeroes the log, and reports what it did. A missing log file (POSIX
    mode) yields {!empty_report}. *)
val recover :
  sys:Kernelfs.Syscall.t -> env:Pmem.Env.t -> instance:int -> report
