(** SplitFS modes and tunable parameters (paper §3.2, §3.6).

    Each U-Split instance has its own configuration, so concurrently
    running applications can use different modes without interfering. *)

type mode =
  | Posix  (** metadata consistency, in-place synchronous overwrites,
               atomic (but not synchronous) appends — like ext4 DAX *)
  | Sync  (** + synchronous data and metadata operations — like PMFS /
              NOVA-relaxed *)
  | Strict  (** + atomic data operations — like NOVA-strict / Strata *)
  | Fams
      (** failure-atomic msync: stores stage in shadow extents, invisible
          to crash recovery until [fsync]/msync publishes them atomically
          (oplog commit record + relink); a mid-publish crash recovers to
          the pre- or post-msync image, never a torn one *)

val mode_to_string : mode -> string

type t = {
  mode : mode;
  mmap_size : int;
      (** granularity of the collection of memory-mappings; default 2 MB
          so that mappings can use huge pages (§3.6) *)
  staging_files : int;  (** staging files pre-allocated at startup *)
  staging_size : int;  (** size of each staging file *)
  oplog_size : int;  (** operation-log file size; 64 B per entry *)
  use_staging : bool;
      (** Figure 3 ablation: when false, appends fall through to the
          kernel *)
  use_relink : bool;
      (** Figure 3 ablation: when false, staged data is copied into the
          target file on fsync instead of relinked *)
  staging_in_dram : bool;
      (** the alternative design of paper §4 ("Staging writes in DRAM"):
          staged data lives in DRAM buffers, so staging is cheaper but
          fsync must copy everything to PM — no relink possible *)
}

(** Simulation-scaled defaults (the paper's production sizing is 10 ×
    160 MB staging files and a 128 MB log; experiments pass their own). *)
val default : t

val posix : t
val sync : t
val strict : t
val fams : t
val with_mode : mode -> t
