(** U-Split: the user-space library file system of SplitFS (paper §3).

    Data operations (read, overwrite, append) are served in user space
    through a collection of memory-mappings and staging files; metadata
    operations pass through to the kernel file system (ext4 DAX). Appends —
    and, in strict mode, overwrites — are staged and then logically moved to
    the target file by the relink primitive on fsync or close.

    Each mounted instance has its own mode (POSIX / sync / strict), staging
    pool and operation log, so concurrent applications can pick different
    guarantees (§3.2). *)

open Pmem

let block_size = Kernelfs.Ext4.block_size

(* ------------------------------------------------------------------ *)
(* Per-file state                                                       *)
(* ------------------------------------------------------------------ *)

type file_state = {
  f_ino : int;
  mutable f_path : string;
  f_kfd : int;  (** canonical kernel fd, kept open while the state is cached *)
  mutable ksize : int;  (** size according to the kernel file system *)
  mutable usize : int;  (** size including staged appends *)
  shadow : Kernelfs.Extent_tree.t;
      (** byte-granular map: target offset -> staging-file offset, holding
          every staged byte not yet relinked; the newest write wins *)
  mutable staging : Staging.handle option;
  mutable mmaps : Kernelfs.Ext4.mapping list;  (** collection of mmaps *)
  mutable mmap_index : (int * int * Kernelfs.Ext4.mapping) array;
      (** lookup index over [mmaps]: disjoint [start, stop) file-offset
          spans sorted by start, each pointing at the mapping that the
          newest-first list scan would return for offsets in the span *)
  mutable mmap_index_stale : bool;  (** [mmaps] changed since last rebuild *)
  mutable mmap_last : int;  (** last-hit slot in [mmap_index] *)
  mutable open_count : int;
  mutable unlinked : bool;
  f_lock : Pmem.Lock.t;
      (** §3.5 fine-grained per-file lock: concurrent clients of one
          U-Split instance serialize writes to the same file; inert (and
          uncharged) outside multi-actor runs *)
}

type open_desc = {
  st : file_state;
  fpos : int ref;  (** shared between dup'ed descriptors *)
  oflags : Fsapi.Flags.t;
  od_kfd : int;  (** kernel fd backing this open; may equal [st.f_kfd] *)
}

type t = {
  cfg : Config.t;
  sys : Kernelfs.Syscall.t;
  env : Env.t;
  instance : int;
  staging_pool : Staging.t;
  oplog : Oplog.t option;  (** present in sync and strict modes *)
  files_by_ino : (int, file_state) Hashtbl.t;
  files_by_path : (string, file_state) Hashtbl.t;
  fds : (int, open_desc) Hashtbl.t;
  mutable next_fd : int;
  mutable checkpointing : bool;
      (** true while a log-full checkpoint relinks every file; suppresses
          recursive logging *)
  mutable checkpoint : unit -> unit;  (** wired to [relink_all] at mount *)
  mutable scratch : Bytes.t;
      (** reusable bounce buffer for relink boundary copies, grown on
          demand — keeps the staging->target copy path allocation-free *)
}

let bookkeeping t =
  Env.cpu_cat t.env Obs.Usplit t.env.Env.timing.Timing.usplit_bookkeeping

let fence ?site t = Device.fence ?site t.env.Env.dev

(* Registered fence sites (fence minimization, crashcheck litmus): every
   ordering point U-Split issues, by name. Eliding a site models deleting
   that sfence; Crashcheck.Minimize classifies each one. *)
let site_degraded_write = Device.register_fence_site "usplit:degraded-write"
let site_relink_pre = Device.register_fence_site "usplit:relink-pre"
let site_relink_publish = Device.register_fence_site "usplit:relink-publish"
let site_no_staging_write = Device.register_fence_site "usplit:no-staging-write"
let site_strict_write = Device.register_fence_site "usplit:strict-write"
let site_sync_write = Device.register_fence_site "usplit:sync-write"
let site_strict_truncate = Device.register_fence_site "usplit:strict-truncate"
let site_strict_unlink = Device.register_fence_site "usplit:strict-unlink"
let site_msync_pre = Device.register_fence_site "usplit:msync-pre"
let site_msync_publish = Device.register_fence_site "usplit:msync-publish"

(** Run a write-side operation under the §3.5 per-file lock. The take /
    release CPU cost only exists in multi-client runs; the single-client
    cost is part of the calibrated [usplit_bookkeeping] constant. *)
let with_file_lock t st f =
  if Simclock.multi t.env.Env.clock then
    Env.cpu_cat t.env Obs.Usplit t.env.Env.timing.Timing.usplit_lock_cpu;
  Env.with_lock t.env st.f_lock f

(** [uspan t name f] marks one U-Split entry point: charges inside it are
    attributed to [Obs.Usplit] unless a more specific region (media,
    syscall, log append, relink copy...) overrides from within, and a
    [u:<name>] trace span covering the whole operation is emitted when
    tracing. *)
let uspan t name f =
  Env.with_span t.env ~cat:Obs.Usplit ~name @@ fun () ->
  try f ()
  with Faults.Poisoned a ->
    (* a machine-check on a poisoned PM line under one of U-Split's own
       mmap loads — a real deployment takes SIGBUS; the library surfaces
       it as EIO instead of dying *)
    Fsapi.Errno.(
      error EIO
        (Printf.sprintf "u-split: poisoned PM line @0x%x (SIGBUS)" a))

(** Bounce buffer of at least [len] bytes, reused across relink copies so
    the staging->target path allocates nothing per call. *)
let scratch_buf t len =
  if Bytes.length t.scratch < len then
    t.scratch <- Bytes.create (max len (2 * Bytes.length t.scratch));
  t.scratch

let logs_ops t =
  match t.cfg.Config.mode with
  | Config.Posix -> false
  | Config.Sync | Config.Strict | Config.Fams -> true

(** Margin of log slots kept free so the checkpoint itself can finish. *)
let checkpoint_slack = 8

let log_entry t entry =
  match t.oplog with
  | Some log when logs_ops t && not t.checkpointing ->
      if Oplog.entries_written log >= Oplog.capacity log - checkpoint_slack
      then begin
        (* log full: relink every open file's staged data, then zero the
           log and reuse it (paper §3.3) *)
        t.checkpointing <- true;
        Fun.protect
          ~finally:(fun () -> t.checkpointing <- false)
          t.checkpoint
      end;
      Oplog.append log entry
  | _ -> ()

let config t = t.cfg
let oplog t = t.oplog

(* ------------------------------------------------------------------ *)
(* Collection of memory-mappings                                        *)
(* ------------------------------------------------------------------ *)

let kfs t = Kernelfs.Syscall.kernel t.sys

(** The collection of mmaps is consulted on every user-space read and
    write, so lookups must not scan the mapping list. [mmap_index] is a
    sorted array of disjoint file-offset spans, each resolved to the
    mapping a newest-first scan of [mmaps] would pick (mappings may
    overlap after relink retains fresh ones over older regions; the newest
    wins, exactly like the previous [List.find_opt] over the
    newest-first list). It is rebuilt lazily after [mmaps] changes, and a
    last-hit slot makes consecutive accesses to the same span O(1). *)

let invalidate_mmap_index st = st.mmap_index_stale <- true

let rebuild_mmap_index st =
  (* Walk newest-to-oldest, claiming only offsets no newer mapping covers.
     [covered] is kept as a sorted disjoint interval list. *)
  let segs = ref [] and covered = ref [] in
  let rec claim s e m cov =
    match cov with
    | [] -> if s < e then segs := (s, e, m) :: !segs
    | (cs, ce) :: rest ->
        if e <= cs then (if s < e then segs := (s, e, m) :: !segs)
        else if ce <= s then claim s e m rest
        else begin
          if s < cs then segs := (s, cs, m) :: !segs;
          if ce < e then claim ce e m rest
        end
  in
  let rec insert s e cov =
    match cov with
    | [] -> [ (s, e) ]
    | (cs, ce) :: rest ->
        if e < cs then (s, e) :: cov
        else if ce < s then (cs, ce) :: insert s e rest
        else insert (min s cs) (max e ce) rest
  in
  List.iter
    (fun m ->
      let s = m.Kernelfs.Ext4.m_off in
      let e = s + m.Kernelfs.Ext4.m_len in
      claim s e m !covered;
      covered := insert s e !covered)
    st.mmaps;
  let arr = Array.of_list !segs in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) arr;
  st.mmap_index <- arr;
  st.mmap_index_stale <- false;
  st.mmap_last <- 0

(** Cached mapping covering file offset [off], if any. *)
let find_cached_mapping st ~off =
  if st.mmap_index_stale then rebuild_mmap_index st;
  let idx = st.mmap_index in
  let n = Array.length idx in
  if n = 0 then None
  else begin
    let within i =
      let s, e, _ = idx.(i) in
      off >= s && off < e
    in
    if st.mmap_last < n && within st.mmap_last then
      let _, _, m = idx.(st.mmap_last) in
      Some m
    else begin
      (* binary search for the last span starting at or before [off] *)
      let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let s, _, _ = idx.(mid) in
        if s <= off then begin
          found := mid;
          lo := mid + 1
        end
        else hi := mid - 1
      done;
      if !found >= 0 && within !found then begin
        st.mmap_last <- !found;
        let _, _, m = idx.(!found) in
        Some m
      end
      else None
    end
  end

(** Find or establish the mapping covering file offset [off] (within the
    kernel-visible part of the file). Newly created mappings cover the
    surrounding [cfg.mmap_size] region and are cached until unlink. *)
let get_mapping t st ~off =
  match find_cached_mapping st ~off with
  | Some m -> Some m
  | None ->
      let region = t.cfg.Config.mmap_size in
      let rstart = off / region * region in
      let kblocks = (st.ksize + block_size - 1) / block_size in
      let rlen = min region ((kblocks * block_size) - rstart) in
      if rlen <= 0 then None
      else begin
        let m = Kernelfs.Syscall.mmap t.sys st.f_kfd ~off:rstart ~len:rlen in
        st.mmaps <- m :: st.mmaps;
        invalidate_mmap_index st;
        Some m
      end

(** Refresh every cached mapping of [st] after the kernel changed the
    file's block layout underneath them (hole-filling writes, relink
    replacing blocks). Mirrors how the modified ioctl keeps existing
    mappings valid. *)
let refresh_mappings t st =
  let inode = Kernelfs.Syscall.inode_of_fd t.sys st.f_kfd in
  List.iter (fun m -> Kernelfs.Ext4.remap_quietly (kfs t) inode m) st.mmaps

(** Retain a mapping over a freshly relinked range without faults (§3.5). *)
let retain_mapping t st ~off ~len =
  let rstart = off / block_size * block_size in
  let rlen = (off + len + block_size - 1) / block_size * block_size - rstart in
  let inode = Kernelfs.Syscall.inode_of_fd t.sys st.f_kfd in
  let m = Kernelfs.Ext4.mmap_retained (kfs t) inode ~off:rstart ~len:rlen in
  st.mmaps <- m :: st.mmaps;
  invalidate_mmap_index st

(* ------------------------------------------------------------------ *)
(* File-state lookup                                                    *)
(* ------------------------------------------------------------------ *)

let fd_entry t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some od -> od
  | None -> Fsapi.Errno.(error EBADF (string_of_int fd))

let install_fd t od =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd od;
  fd

(* ------------------------------------------------------------------ *)
(* Staging writes                                                       *)
(* ------------------------------------------------------------------ *)

let ensure_staging t st =
  match st.staging with
  | Some h -> h
  | None ->
      let h = Staging.acquire t.staging_pool in
      st.staging <- Some h;
      h

(** Staging end of the shadow extent finishing exactly at [at], if any —
    enables coalescing consecutive appends into one staged run. *)
let staged_end_at st ~at =
  if at = 0 then None
  else
    match Kernelfs.Extent_tree.find st.shadow (at - 1) with
    | Some (s, _) -> Some (s + 1)
    | None -> None

(** In-place overwrite through the collection of mmaps (POSIX/sync modes);
    holes within the file fall back to a kernel pwrite. *)
let write_inplace t st ~at buf ~boff ~len =
  let pos = ref at and src = ref boff and remaining = ref len in
  while !remaining > 0 do
    let continue_at n =
      pos := !pos + n;
      src := !src + n;
      remaining := !remaining - n
    in
    match get_mapping t st ~off:!pos with
    | Some m -> (
        match Kernelfs.Ext4.translate (kfs t) m ~max:!remaining ~file_off:!pos with
        | Some (addr, run) ->
            let n = min run !remaining in
            if Kernelfs.Ext4.range_shared (kfs t) ~addr ~len:n then begin
              (* snapshot-shared blocks: route through the kernel so the
                 write breaks the share (copy-on-write) instead of storing
                 through the alias and corrupting the snapshot *)
              let n =
                Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff:!src ~len:n
                  ~at:!pos
              in
              refresh_mappings t st;
              continue_at n
            end
            else begin
              Device.store_nt t.env.Env.dev ~addr buf ~off:!src ~len:n;
              continue_at n
            end
        | None ->
            (* hole: kernel allocates and writes this block, then the
               cached mappings learn about the fresh block *)
            let n =
              min !remaining (block_size - (!pos mod block_size))
            in
            let n = Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff:!src ~len:n ~at:!pos in
            refresh_mappings t st;
            continue_at n)
    | None ->
        let n = Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff:!src ~len:!remaining ~at:!pos in
        refresh_mappings t st;
        continue_at n
  done


(** Staging pre-allocation failed (no space for a fresh staging file):
    degrade to the plain kernel write path at its honest cost instead of
    surfacing ENOSPC for a write the file system could still serve. The
    epoch advance lets transient allocator faults heal before the
    fallback's own allocations. [Env.checks.honest_degraded_writes] is
    the injected-bug switch for the fault oracle's self-test: when
    cleared, this path drops the data instead of routing it through the
    kernel — faultcheck must flag the resulting corruption. *)
let degraded_write t st ~at buf ~boff ~len =
  uspan t "u:degraded-write" @@ fun () ->
  (* fams cannot degrade to an in-place kernel write: published-before-
     commit data would break msync atomicity, so resource exhaustion
     surfaces as an honest ENOSPC instead of silently weakening the
     contract *)
  if t.cfg.Config.mode = Config.Fams then
    Fsapi.Errno.(
      error ENOSPC "fams: staging exhausted (failure-atomic msync needs staging)");
  let faults = t.env.Env.faults in
  Faults.new_epoch faults;
  Faults.note_degraded_write faults;
  if t.env.Env.checks.Env.honest_degraded_writes then begin
    let n = Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff ~len ~at in
    assert (n = len);
    (* the kernel copy supersedes any staged bytes in the range *)
    ignore (Kernelfs.Extent_tree.remove_range st.shadow ~logical:at ~len);
    st.ksize <- max st.ksize (at + len);
    st.usize <- max st.usize (at + len);
    refresh_mappings t st;
    fence ~site:site_degraded_write t
  end

let rec stage_write t st ~at buf ~boff ~len =
  let h =
    match ensure_staging t st with
    | h -> Some h
    | exception Fsapi.Errno.Error (Fsapi.Errno.ENOSPC, _) -> None
  in
  match h with
  | None -> degraded_write t st ~at buf ~boff ~len
  | Some h ->
  let staged_off =
    let coalesced =
      match staged_end_at st ~at with
      | Some s when Staging.reserve_contiguous h ~at:s len -> Some s
      | _ -> None
    in
    match coalesced with
    | Some s -> Some s
    | None -> Staging.reserve h ~align_rem:(at mod block_size) len
  in
  match staged_off with
  | None when len >= t.staging_pool.Staging.file_size ->
      (* larger than any staging file could ever hold (degraded
         configurations with a shrunken pool): route straight through
         the kernel instead of relinking forever *)
      degraded_write t st ~at buf ~boff ~len
  | None when t.cfg.Config.mode = Config.Fams ->
      (* relinking here would publish staged data mid-window; surface the
         full staging file as an honest ENOSPC instead of silently
         weakening the msync granularity *)
      Fsapi.Errno.(error ENOSPC "fams: staging file full before msync")
  | None ->
      (* staging file exhausted: relink now to free it, then retry on a
         fresh handle *)
      relink_file t st;
      stage_write t st ~at buf ~boff ~len
  | Some s ->
      Staging.write t.staging_pool h ~off:s buf ~boff ~len;
      ignore (Kernelfs.Extent_tree.remove_range st.shadow ~logical:at ~len);
      Kernelfs.Extent_tree.insert st.shadow ~logical:at ~physical:s ~len;
      let grew = at + len > st.usize in
      if grew then st.usize <- at + len;
      if logs_ops t then begin
        let op =
          {
            Oplog.target_ino = st.f_ino;
            file_off = at;
            staging_ino = Staging.s_ino h;
            staging_off = s;
            len;
            data_crc = Crc32.bytes buf ~off:boff ~len;
          }
        in
        log_entry t
          (match t.cfg.Config.mode with
          | Config.Fams ->
              (* fams kinds: invisible to recovery until the inode's
                 msync commit record promotes them *)
              if grew then Oplog.Fams_append op else Oplog.Fams_overwrite op
          | _ -> if grew then Oplog.Append op else Oplog.Overwrite op)
      end

(* ------------------------------------------------------------------ *)
(* Relink (user-space half)                                             *)
(* ------------------------------------------------------------------ *)

and relink_extent t st h (e : Kernelfs.Extent_tree.extent) ~dst_size =
  let stats = t.env.Env.stats in
  (* Boundary bytes are copied in user space: read staged bytes through the
     staging mapping, store them through the target's mapping (kernel
     pwrite only as a fallback for unmapped holes). *)
  let copy ~t_off ~s_off ~len =
    if len > 0 then
      Env.with_cat t.env Obs.Relink_copy @@ fun () ->
      let buf = scratch_buf t len in
      Staging.read t.staging_pool h ~off:s_off buf ~boff:0 ~len;
      write_inplace t st ~at:t_off buf ~boff:0 ~len;
      stats.Stats.relink_copied_bytes <- stats.Stats.relink_copied_bytes + len
  in
  let t_off = e.Kernelfs.Extent_tree.logical in
  let s_off = e.Kernelfs.Extent_tree.physical in
  let len = e.Kernelfs.Extent_tree.len in
  if (not t.cfg.Config.use_relink) || Staging.is_dram h then begin
    (* Figure 3 ablation (staging without relink) and the §4 DRAM-staging
       design: fsync copies the staged data into the target file through
       the kernel *)
    Env.with_cat t.env Obs.Relink_copy @@ fun () ->
    let buf = scratch_buf t len in
    Staging.read t.staging_pool h ~off:s_off buf ~boff:0 ~len;
    let n = Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff:0 ~len ~at:t_off in
    assert (n = len);
    stats.Stats.relink_copied_bytes <- stats.Stats.relink_copied_bytes + len
  end
  else begin
    (* partial head block: the target's block already exists (it is the old
       end of file, or an overwritten block); copy just those bytes *)
    let head =
      if t_off mod block_size = 0 then 0
      else min len (block_size - (t_off mod block_size))
    in
    copy ~t_off ~s_off ~len:head;
    let t2 = t_off + head and s2 = s_off + head and rem = len - head in
    let nfull = rem / block_size in
    let tail = rem - (nfull * block_size) in
    (* A partial tail block that reaches the (new) end of file is relinked
       whole: the file size caps reads, so the slack never becomes visible
       — but it is zeroed first so a later size extension reads zeros. *)
    let tail_reaches_eof = tail > 0 && t2 + rem >= st.usize in
    let relink_blocks = nfull + (if tail_reaches_eof then 1 else 0) in
    if tail_reaches_eof then begin
      let slack_off = s2 + rem in
      let slack = block_size - (slack_off mod block_size) in
      if slack < block_size then begin
        let zeros = Bytes.make slack '\000' in
        Staging.write t.staging_pool h ~off:slack_off zeros ~boff:0 ~len:slack
      end
    end;
    if relink_blocks > 0 then begin
      (* Transient relink EIO is retried with capped exponential backoff;
         a fault still firing after [max_relink_attempts] is sticky and
         degrades to copying the staged bytes through the kernel — the
         fault is masked, only performance suffers. *)
      let faults = t.env.Env.faults in
      let max_relink_attempts = 6 in
      let copy_fallback () =
        Faults.note_masked faults;
        let clen = if tail_reaches_eof then rem else nfull * block_size in
        Env.with_cat t.env Obs.Relink_copy @@ fun () ->
        let buf = scratch_buf t clen in
        Staging.read t.staging_pool h ~off:s2 buf ~boff:0 ~len:clen;
        let n =
          Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff:0 ~len:clen ~at:t2
        in
        assert (n = clen);
        stats.Stats.relink_copied_bytes <-
          stats.Stats.relink_copied_bytes + clen
      in
      let rec attempt n =
        match
          Kernelfs.Syscall.relink t.sys ~src_fd:(Staging.sfd h)
            ~src_blk:(s2 / block_size) ~dst_fd:st.f_kfd
            ~dst_blk:(t2 / block_size) ~nblks:relink_blocks ~dst_size
        with
        | () -> if n > 1 then Faults.note_retried faults
        | exception Fsapi.Errno.Error (Fsapi.Errno.EIO, _)
          when n < max_relink_attempts ->
            Env.with_span t.env ~cat:Obs.Usplit ~name:"u:relink-retry"
              (fun () ->
                Env.cpu_cat t.env Obs.Usplit (Faults.backoff_ns ~attempt:n));
            Faults.new_epoch faults;
            Faults.note_relink_retry faults;
            attempt (n + 1)
        | exception Fsapi.Errno.Error (Fsapi.Errno.EIO, _) -> copy_fallback ()
      in
      attempt 1
    end;
    if (not tail_reaches_eof) && tail > 0 then
      copy
        ~t_off:(t2 + (nfull * block_size))
        ~s_off:(s2 + (nfull * block_size))
        ~len:tail
  end

(** Relink all staged data of [st] into its file: called on fsync, close and
    log checkpoint. Afterwards the staged ranges are part of the file, the
    mappings are retained, and the staging handle returns to the pool. *)
and relink_file t st =
  uspan t "u:relink" @@ fun () ->
  (match st.staging with
  | None -> ()
  | Some h ->
      let extents = Kernelfs.Extent_tree.to_list st.shadow in
      let last = List.length extents - 1 in
      List.iteri
        (fun i e ->
          (* the size update rides inside the last relink transaction *)
          let dst_size = if i = last then Some st.usize else None in
          relink_extent t st h e ~dst_size;
          (* this extent is now in the file: drop its shadow entry and
             retain a mapping over it immediately, so a fault while a
             LATER extent relinks never hides data that already moved —
             the shadow must only ever cover bytes still in staging *)
          ignore
            (Kernelfs.Extent_tree.remove_range st.shadow
               ~logical:e.Kernelfs.Extent_tree.logical
               ~len:e.Kernelfs.Extent_tree.len);
          retain_mapping t st ~off:e.Kernelfs.Extent_tree.logical
            ~len:e.Kernelfs.Extent_tree.len)
        extents;
      (* if the last extent had no full blocks (boundary copies only), the
         size still needs one metadata update *)
      let inode = Kernelfs.Syscall.inode_of_fd t.sys st.f_kfd in
      if inode.Kernelfs.Ext4.size <> st.usize then begin
        try Kernelfs.Syscall.set_size t.sys st.f_kfd st.usize
        with Fsapi.Errno.Error (Fsapi.Errno.EIO, _) as exn ->
          (* the in-DRAM inode size advanced before the journal commit
             failed; adopt whatever the kernel now reports so reads keep
             seeing every relinked byte, and surface the EIO honestly *)
          st.ksize <- inode.Kernelfs.Ext4.size;
          raise exn
      end;
      st.ksize <- st.usize;
      st.staging <- None;
      Staging.release t.staging_pool h;
      refresh_mappings t st;
      if logs_ops t && extents <> [] then begin
        (* the boundary copies must be durable before the Relinked entry:
           the entry cancels replay of this file's logged data ops, so if
           it persisted while a copy was still in flight (and tore),
           recovery would have nothing left to heal the file with *)
        fence ~site:site_relink_pre t;
        log_entry t (Oplog.Relinked { target_ino = st.f_ino });
        fence ~site:site_relink_publish t
      end)

(** The failure-atomic msync publish. In fams mode the staged bytes and
    their log entries are made durable first, then the msync commit
    record is appended and made durable before the target mutates via
    relink: recovery replays fams-staged entries only when their commit
    record made it, so a crash anywhere in here resolves to the pre- or
    post-msync image, never a torn one. Other modes publish via plain
    [relink_file]. [Env.checks.fams_commit_record] is the injected-bug
    switch for the crash oracle's self-test: when cleared, the relink
    publishes without the commit barrier and a mid-publish crash can tear
    the file — crashcheck must flag it. *)
let publish_file t st =
  if
    t.cfg.Config.mode = Config.Fams
    && (not (Kernelfs.Extent_tree.is_empty st.shadow))
    && t.env.Env.checks.Env.fams_commit_record
  then begin
    (* staged data and fams entries before the record, the record before
       any relink mutation of the target: two orderings, two fences *)
    fence ~site:site_msync_pre t;
    log_entry t (Oplog.Msync_commit { target_ino = st.f_ino });
    fence ~site:site_msync_publish t
  end;
  relink_file t st

(** Checkpoint: publish every file with staged data, then clear the log
    (runs when the operation log fills up, §3.3). In fams mode each file
    goes through the commit-record protocol, so the checkpoint stays
    failure-atomic per file — it publishes earlier than the application's
    msync asked for, but never tears (experiments size the log so this
    backstop does not fire mid-window). *)
let relink_all t =
  Hashtbl.iter
    (fun _ st ->
      if not (Kernelfs.Extent_tree.is_empty st.shadow) then publish_file t st)
    t.files_by_ino;
  match t.oplog with Some log -> Oplog.clear log | None -> ()

(* ------------------------------------------------------------------ *)
(* Data path: writes                                                    *)
(* ------------------------------------------------------------------ *)

let do_pwrite t od ~buf ~boff ~len ~at =
  uspan t "u:write" @@ fun () ->
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pwrite");
  if not (Fsapi.Flags.writable od.oflags) then Fsapi.Errno.(error EBADF "pwrite");
  bookkeeping t;
  let st = od.st in
  if len = 0 then 0
  else
    with_file_lock t st @@ fun () ->
    (if at > st.usize && t.cfg.Config.mode <> Config.Fams then begin
       (* write beyond EOF creating a hole: settle staged state first, then
          let the kernel produce the sparse file (not in fams — settling
          would publish staged data mid-window; the shadow tree handles
          the sparse layout and reads zero-fill the hole instead) *)
       relink_file t st;
       let n = Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf ~boff ~len ~at in
       assert (n = len);
       st.ksize <- max st.ksize (at + len);
       st.usize <- st.ksize;
       refresh_mappings t st
     end
     else if not t.cfg.Config.use_staging then begin
       (* Figure 3 ablation: split architecture without staging files —
          overwrites stay in user space, appends trap into the kernel *)
       let overwrite_len = max 0 (min len (st.ksize - at)) in
       if overwrite_len > 0 then
         write_inplace t st ~at buf ~boff ~len:overwrite_len;
       if len - overwrite_len > 0 then begin
         let n =
           Kernelfs.Syscall.pwrite t.sys st.f_kfd ~buf
             ~boff:(boff + overwrite_len) ~len:(len - overwrite_len)
             ~at:(at + overwrite_len)
         in
         assert (n = len - overwrite_len);
         st.ksize <- max st.ksize (at + len);
         st.usize <- max st.usize st.ksize;
         refresh_mappings t st
       end;
       fence ~site:site_no_staging_write t
     end
     else
       match t.cfg.Config.mode with
       | Config.Strict ->
           (* atomic data ops: everything is staged and logged *)
           stage_write t st ~at buf ~boff ~len;
           fence ~site:site_strict_write t
       | Config.Fams ->
           (* failure-atomic msync: every store — append, overwrite, even
              beyond EOF — stages in shadow extents, invisible to
              recovery until msync publishes it; no per-store fence, the
              ordering cost moves entirely to msync *)
           stage_write t st ~at buf ~boff ~len
       | Config.Posix | Config.Sync ->
           let overwrite_len = max 0 (min len (st.ksize - at)) in
           (* in-place part, below the kernel size and not shadowed *)
           if overwrite_len > 0 then
             write_inplace t st ~at buf ~boff ~len:overwrite_len;
           (* appends (and writes over staged appends) are staged *)
           if len - overwrite_len > 0 then
             stage_write t st ~at:(at + overwrite_len) buf
               ~boff:(boff + overwrite_len) ~len:(len - overwrite_len);
           let synchronous =
             t.cfg.Config.mode = Config.Sync || overwrite_len > 0
           in
           if synchronous then fence ~site:site_sync_write t);
    len

(* ------------------------------------------------------------------ *)
(* Data path: reads                                                     *)
(* ------------------------------------------------------------------ *)

(** Read via the collection of mmaps; zero-fills holes. *)
let read_mapped t st ~at buf ~boff ~len =
  let pos = ref at and dst = ref boff and remaining = ref len in
  while !remaining > 0 do
    let fill_zero n =
      Bytes.fill buf !dst n '\000';
      pos := !pos + n;
      dst := !dst + n;
      remaining := !remaining - n
    in
    match get_mapping t st ~off:!pos with
    | Some m -> (
        match Kernelfs.Ext4.translate (kfs t) m ~max:!remaining ~file_off:!pos with
        | Some (addr, run) ->
            let n = min run !remaining in
            Device.load t.env.Env.dev ~addr buf ~off:!dst ~len:n;
            pos := !pos + n;
            dst := !dst + n;
            remaining := !remaining - n
        | None -> fill_zero (min !remaining (block_size - (!pos mod block_size))))
    | None -> fill_zero !remaining
  done

let do_pread t od ~buf ~boff ~len ~at =
  uspan t "u:read" @@ fun () ->
  if len < 0 || at < 0 then Fsapi.Errno.(error EINVAL "pread");
  if not (Fsapi.Flags.readable od.oflags) then Fsapi.Errno.(error EBADF "pread");
  bookkeeping t;
  let st = od.st in
  if at >= st.usize then 0
  else begin
    let len = min len (st.usize - at) in
    let pos = ref at and dst = ref boff and remaining = ref len in
    while !remaining > 0 do
      (match Kernelfs.Extent_tree.find st.shadow !pos with
      | Some (s_off, run) ->
          (* staged data: newest bytes live in the staging file *)
          let n = min run !remaining in
          let h =
            match st.staging with
            | Some h -> h
            | None -> Fsapi.Errno.(error EINVAL "shadow without staging")
          in
          Staging.read t.staging_pool h ~off:s_off buf ~boff:!dst ~len:n;
          pos := !pos + n;
          dst := !dst + n;
          remaining := !remaining - n
      | None ->
          (* plain file data up to the next shadowed byte *)
          let bound =
            match Kernelfs.Extent_tree.next_mapped st.shadow !pos with
            | Some next -> min !remaining (next - !pos)
            | None -> !remaining
          in
          let n = min bound (max 1 bound) in
          if !pos < st.ksize then begin
            let n = min n (st.ksize - !pos) in
            read_mapped t st ~at:!pos buf ~boff:!dst ~len:n;
            pos := !pos + n;
            dst := !dst + n;
            remaining := !remaining - n
          end
          else begin
            (* hole beyond the kernel size (sparse ftruncate growth) *)
            Bytes.fill buf !dst n '\000';
            pos := !pos + n;
            dst := !dst + n;
            remaining := !remaining - n
          end);
    done;
    len
  end

(* ------------------------------------------------------------------ *)
(* Metadata operations (routed to the kernel, with U-Split bookkeeping) *)
(* ------------------------------------------------------------------ *)

let make_state t path kfd =
  let kstat = Kernelfs.Syscall.fstat t.sys kfd in
  let st =
    {
      f_ino = kstat.Fsapi.Fs.st_ino;
      f_path = path;
      f_kfd = kfd;
      ksize = kstat.Fsapi.Fs.st_size;
      usize = kstat.Fsapi.Fs.st_size;
      shadow = Kernelfs.Extent_tree.create ();
      staging = None;
      mmaps = [];
      mmap_index = [||];
      mmap_index_stale = false;
      mmap_last = 0;
      open_count = 0;
      unlinked = false;
      f_lock = Pmem.Lock.create (Printf.sprintf "ufile:%d" kstat.Fsapi.Fs.st_ino);
    }
  in
  Hashtbl.replace t.files_by_ino st.f_ino st;
  Hashtbl.replace t.files_by_path path st;
  st

let reset_after_truncate st size =
  ignore (Kernelfs.Extent_tree.remove_range st.shadow ~logical:size ~len:max_int);
  st.mmaps <- [];
  invalidate_mmap_index st

let open_ t path (flags : Fsapi.Flags.t) =
  uspan t "u:open" @@ fun () ->
  bookkeeping t;
  let st, od_kfd, created =
    match Hashtbl.find_opt t.files_by_path path with
    | Some st when not st.unlinked ->
        (* attribute-cache hit: the open still passes through the kernel *)
        let kfd = Kernelfs.Syscall.open_ t.sys path flags in
        if flags.trunc && Fsapi.Flags.writable flags then begin
          reset_after_truncate st 0;
          st.ksize <- 0;
          st.usize <- 0
        end
        else if Kernelfs.Extent_tree.is_empty st.shadow then begin
          (* nothing staged locally: refresh cached attributes so changes
             made by other processes (fsync'ed appends) become visible *)
          let kstat = Kernelfs.Syscall.fstat t.sys kfd in
          if kstat.Fsapi.Fs.st_size <> st.ksize then begin
            st.ksize <- kstat.Fsapi.Fs.st_size;
            st.usize <- kstat.Fsapi.Fs.st_size;
            refresh_mappings t st
          end
        end;
        (st, kfd, false)
    | _ ->
        let existed =
          match Kernelfs.Syscall.stat t.sys path with
          | (_ : Fsapi.Fs.stat) -> true
          | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) -> false
        in
        let kfd = Kernelfs.Syscall.open_ t.sys path flags in
        let st = make_state t path kfd in
        (st, kfd, not existed)
  in
  if created && logs_ops t then
    (* no fence, even in strict mode: replay of a Create entry is a
       no-op in recovery (the kernel create was journalled by K-Split),
       so the entry needs no durability of its own — proven redundant by
       exhaustive crash-state enumeration (EXPERIMENTS.md, PR 7) *)
    log_entry t (Oplog.Create { ino = st.f_ino });
  st.open_count <- st.open_count + 1;
  install_fd t { st; fpos = ref 0; oflags = flags; od_kfd }

let cleanup_state t st =
  (match st.staging with
  | Some h ->
      st.staging <- None;
      Staging.release t.staging_pool h
  | None -> ());
  Kernelfs.Extent_tree.clear st.shadow;
  st.mmaps <- [];
  invalidate_mmap_index st;
  Hashtbl.remove t.files_by_ino st.f_ino;
  Kernelfs.Syscall.close t.sys st.f_kfd

let close t fd =
  uspan t "u:close" @@ fun () ->
  bookkeeping t;
  let od = fd_entry t fd in
  let st = od.st in
  Hashtbl.remove t.fds fd;
  st.open_count <- st.open_count - 1;
  if
    (not st.unlinked)
    && (not (Kernelfs.Extent_tree.is_empty st.shadow))
    && t.cfg.Config.mode <> Config.Fams
  then
    (* paper §3.4: staged data is relinked on fsync or close — except in
       fams, where close is not an msync: unpublished stores stay staged
       (readable through this instance, gone after a crash) until the
       application publishes them *)
    relink_file t st;
  if od.od_kfd <> st.f_kfd then Kernelfs.Syscall.close t.sys od.od_kfd;
  if st.unlinked && st.open_count = 0 then cleanup_state t st

let dup t fd =
  bookkeeping t;
  let od = fd_entry t fd in
  od.st.open_count <- od.st.open_count + 1;
  (* the new descriptor shares the offset reference, like the kernel's
     struct file (§3.5), but owns its own kernel fd *)
  let od_kfd = Kernelfs.Syscall.dup t.sys od.od_kfd in
  install_fd t { od with od_kfd }

let fsync t fd =
  uspan t "u:fsync" @@ fun () ->
  bookkeeping t;
  let od = fd_entry t fd in
  with_file_lock t od.st @@ fun () ->
  (* in fams mode fsync IS msync: the atomic publication point *)
  publish_file t od.st;
  Kernelfs.Syscall.fsync t.sys od.st.f_kfd

let ftruncate t fd size =
  if size < 0 then Fsapi.Errno.(error EINVAL "ftruncate");
  bookkeeping t;
  let od = fd_entry t fd in
  let st = od.st in
  with_file_lock t st @@ fun () ->
  if size < st.ksize then begin
    reset_after_truncate st size;
    Kernelfs.Syscall.ftruncate t.sys st.f_kfd size;
    st.ksize <- size;
    st.usize <- size
  end
  else begin
    if size <= st.usize then
      ignore
        (Kernelfs.Extent_tree.remove_range st.shadow ~logical:size ~len:max_int);
    st.usize <- size;
    (* the new size is a metadata change and must be durable in the kernel
       (truncate is a metadata operation, routed to K-Split); the staged
       bytes below it are still served from the shadow until relink *)
    Kernelfs.Syscall.set_size t.sys st.f_kfd size
  end;
  if logs_ops t then begin
    log_entry t (Oplog.Truncate { ino = st.f_ino; size });
    if t.cfg.Config.mode = Config.Strict || t.cfg.Config.mode = Config.Fams
    then fence ~site:site_strict_truncate t
  end

let stat_of_state st =
  {
    Fsapi.Fs.st_ino = st.f_ino;
    st_kind = Fsapi.Fs.Regular;
    st_size = st.usize;
    st_nlink = if st.unlinked then 0 else 1;
  }

let fstat t fd =
  bookkeeping t;
  (* served from the U-Split attribute cache, no kernel trap (§3.5) *)
  stat_of_state (fd_entry t fd).st

let stat t path =
  bookkeeping t;
  match Hashtbl.find_opt t.files_by_path path with
  | Some st when not st.unlinked -> stat_of_state st
  | _ -> Kernelfs.Syscall.stat t.sys path

let unlink t path =
  bookkeeping t;
  (match Hashtbl.find_opt t.files_by_path path with
  | Some st when not st.unlinked ->
      (* the expensive part of unlink on SplitFS: dropping mappings and
         cached state (§5.4) *)
      Hashtbl.remove t.files_by_path path;
      st.unlinked <- true;
      Kernelfs.Syscall.unlink t.sys path;
      if logs_ops t then begin
        log_entry t (Oplog.Unlink { ino = st.f_ino });
        if t.cfg.Config.mode = Config.Strict || t.cfg.Config.mode = Config.Fams
        then fence ~site:site_strict_unlink t
      end;
      if st.open_count = 0 then cleanup_state t st
  | _ -> Kernelfs.Syscall.unlink t.sys path)

let rename t src dst =
  bookkeeping t;
  Kernelfs.Syscall.rename t.sys src dst;
  (* only after the kernel succeeded: the destination's cached identity
     dies with the rename *)
  (match Hashtbl.find_opt t.files_by_path dst with
  | Some st when not st.unlinked ->
      Hashtbl.remove t.files_by_path dst;
      st.unlinked <- true;
      if st.open_count = 0 then cleanup_state t st
  | _ -> ());
  (match Hashtbl.find_opt t.files_by_path src with
  | Some st ->
      Hashtbl.remove t.files_by_path src;
      st.f_path <- dst;
      Hashtbl.replace t.files_by_path dst st;
      if logs_ops t then
        (* no fence, even in strict mode: like Create, a Rename entry
           replays to nothing (the namespace change is K-Split's,
           journalled there), so its durability is irrelevant — proven
           redundant by exhaustive enumeration (EXPERIMENTS.md, PR 7) *)
        log_entry t (Oplog.Rename { ino = st.f_ino })
  | None -> ())

let mkdir t path =
  bookkeeping t;
  Kernelfs.Syscall.mkdir t.sys path

let rmdir t path =
  bookkeeping t;
  Kernelfs.Syscall.rmdir t.sys path

let readdir t path =
  bookkeeping t;
  Kernelfs.Syscall.readdir t.sys path

(* ------------------------------------------------------------------ *)
(* Instant snapshots                                                    *)
(* ------------------------------------------------------------------ *)

(** Snapshot one file: publish its staged data (an msync, commit-record
    protected in fams mode), then clone its extent map block-for-block
    into [snap_path] in a single kernel journal transaction — O(extents),
    no data copied. The shared blocks break copy-on-write on the next
    in-place store through either owner. *)
let snapshot_file t src_path snap_path =
  uspan t "u:snapshot" @@ fun () ->
  (* the snapshot captures the published image: staged-but-unpublished
     stores stay invisible to it, exactly as they are to a crash *)
  (match Hashtbl.find_opt t.files_by_path src_path with
  | Some st when not st.unlinked ->
      with_file_lock t st @@ fun () -> publish_file t st
  | _ -> ());
  let src_kfd, close_src =
    match Hashtbl.find_opt t.files_by_path src_path with
    | Some st when not st.unlinked -> (st.f_kfd, false)
    | _ -> (Kernelfs.Syscall.open_ t.sys src_path Fsapi.Flags.rdonly, true)
  in
  let dst_kfd = Kernelfs.Syscall.open_ t.sys snap_path Fsapi.Flags.create_rw in
  Fun.protect ~finally:(fun () ->
      Kernelfs.Syscall.close t.sys dst_kfd;
      if close_src then Kernelfs.Syscall.close t.sys src_kfd)
  @@ fun () ->
  Kernelfs.Syscall.ioctl_clone_extents t.sys ~src_fd:src_kfd ~dst_fd:dst_kfd;
  (* a cached state for the snapshot path (re-snapshot over an earlier
     one) is stale in every dimension: drop its staged data and mappings,
     re-learn the size from the kernel *)
  (match Hashtbl.find_opt t.files_by_path snap_path with
  | Some dst when not dst.unlinked ->
      (match dst.staging with
      | Some h ->
          dst.staging <- None;
          Staging.release t.staging_pool h
      | None -> ());
      Kernelfs.Extent_tree.clear dst.shadow;
      dst.mmaps <- [];
      invalidate_mmap_index dst;
      let kstat = Kernelfs.Syscall.fstat t.sys dst.f_kfd in
      dst.ksize <- kstat.Fsapi.Fs.st_size;
      dst.usize <- kstat.Fsapi.Fs.st_size
  | _ -> ());
  if logs_ops t then begin
    (* a barrier marker like [Create]: replays to nothing (the clone was
       journalled by K-Split), so it needs no fence of its own *)
    let src_ino = (Kernelfs.Syscall.fstat t.sys src_kfd).Fsapi.Fs.st_ino in
    let snap_ino = (Kernelfs.Syscall.fstat t.sys dst_kfd).Fsapi.Fs.st_ino in
    log_entry t (Oplog.Snapshot { target_ino = src_ino; snap_ino })
  end

(** Snapshot a directory tree (the per-tenant case: [snapshot /t3 /snap]):
    every regular file is published and cloned, subdirectories recurse.
    The destination tree is skipped if it lives inside the source. *)
let rec snapshot_dir t src_dir snap_dir =
  (match Kernelfs.Syscall.stat t.sys snap_dir with
  | (_ : Fsapi.Fs.stat) -> ()
  | exception Fsapi.Errno.Error (Fsapi.Errno.ENOENT, _) ->
      Kernelfs.Syscall.mkdir t.sys snap_dir);
  List.iter
    (fun name ->
      let s = Filename.concat src_dir name in
      let d = Filename.concat snap_dir name in
      if s <> snap_dir then
        match (stat t s).Fsapi.Fs.st_kind with
        | Fsapi.Fs.Directory -> snapshot_dir t s d
        | Fsapi.Fs.Regular -> snapshot_file t s d)
    (Kernelfs.Syscall.readdir t.sys src_dir)

(** [snapshot t src dst] — instant snapshot of a file or a directory
    tree: publication is O(metadata) (one extent-map clone per file), the
    data is shared copy-on-write. *)
let snapshot t src dst =
  bookkeeping t;
  match (stat t src).Fsapi.Fs.st_kind with
  | Fsapi.Fs.Directory -> snapshot_dir t src dst
  | Fsapi.Fs.Regular -> snapshot_file t src dst

(* ------------------------------------------------------------------ *)
(* fd-offset wrappers                                                   *)
(* ------------------------------------------------------------------ *)

let pwrite t fd ~buf ~boff ~len ~at = do_pwrite t (fd_entry t fd) ~buf ~boff ~len ~at

let pread t fd ~buf ~boff ~len ~at = do_pread t (fd_entry t fd) ~buf ~boff ~len ~at

let write t fd ~buf ~boff ~len =
  let od = fd_entry t fd in
  let at = if od.oflags.Fsapi.Flags.append then od.st.usize else !(od.fpos) in
  let n = do_pwrite t od ~buf ~boff ~len ~at in
  od.fpos := at + n;
  n

let read t fd ~buf ~boff ~len =
  let od = fd_entry t fd in
  let n = do_pread t od ~buf ~boff ~len ~at:!(od.fpos) in
  od.fpos := !(od.fpos) + n;
  n

let lseek t fd off whence =
  bookkeeping t;
  let od = fd_entry t fd in
  let base =
    match whence with
    | Fsapi.Flags.Set -> 0
    | Fsapi.Flags.Cur -> !(od.fpos)
    | Fsapi.Flags.End -> od.st.usize
  in
  let npos = base + off in
  if npos < 0 then Fsapi.Errno.(error EINVAL "lseek");
  od.fpos := npos;
  npos

(* ------------------------------------------------------------------ *)
(* Mount, resource accounting, Fsapi view                               *)
(* ------------------------------------------------------------------ *)

let oplog_path instance = Printf.sprintf "/.splitfs-oplog-%d" instance

let mount ?(cfg = Config.default) ~sys ~env ~instance () =
  let staging_pool =
    Staging.create ~in_dram:cfg.Config.staging_in_dram ~sys ~env ~instance
      ~count:cfg.Config.staging_files ~file_size:cfg.Config.staging_size ()
  in
  let oplog =
    match cfg.Config.mode with
    | Config.Posix -> None
    | Config.Sync | Config.Strict | Config.Fams ->
        Some
          (Oplog.create ~sys ~env ~path:(oplog_path instance)
             ~size:cfg.Config.oplog_size)
  in
  let t =
    {
      cfg;
      sys;
      env;
      instance;
      staging_pool;
      oplog;
      files_by_ino = Hashtbl.create 256;
      files_by_path = Hashtbl.create 256;
      fds = Hashtbl.create 64;
      next_fd = 3;
      checkpointing = false;
      checkpoint = (fun () -> ());
      scratch = Bytes.empty;
    }
  in
  t.checkpoint <- (fun () -> relink_all t);
  t

(** Background scrubber patrol: ask the kernel to migrate file data off
    worn or poisoned blocks and retire them (runs off the critical path,
    like staging replenishment). Returns the number of blocks migrated. *)
let scrub t ~wear_limit =
  Env.in_background t.env (fun () -> Kernelfs.Ext4.scrub (kfs t) ~wear_limit)

(** Approximate DRAM footprint of U-Split metadata, for the §5.10
    resource-consumption experiment. *)
let memory_usage t =
  let mapping_bytes (m : Kernelfs.Ext4.mapping) =
    64 + (8 * Array.length m.Kernelfs.Ext4.pages)
  in
  let per_file _ st acc =
    acc + 224
    + (48 * Kernelfs.Extent_tree.count st.shadow)
    + List.fold_left (fun a m -> a + mapping_bytes m) 0 st.mmaps
  in
  let files = Hashtbl.fold per_file t.files_by_ino 0 in
  let fds = 64 * Hashtbl.length t.fds in
  let staging = 256 * Staging.live_files t.staging_pool in
  files + fds + staging

(* ------------------------------------------------------------------ *)
(* fork / execve (paper section 3.5)                                    *)
(* ------------------------------------------------------------------ *)

(** Rebuild a file-state (and fd entry) in [t'] from a still-open kernel
    fd, preserving the shared offset structure of dup'ed descriptors. *)
let adopt_fd t' ~od_kfd ~fpos ~oflags =
  let kstat = Kernelfs.Syscall.fstat t'.sys od_kfd in
  let ino = kstat.Fsapi.Fs.st_ino in
  let st =
    match Hashtbl.find_opt t'.files_by_ino ino with
    | Some st -> st
    | None ->
        let st =
          {
            f_ino = ino;
            f_path = "";  (* re-learned on the next open by path *)
            f_kfd = od_kfd;
            ksize = kstat.Fsapi.Fs.st_size;
            usize = kstat.Fsapi.Fs.st_size;
            shadow = Kernelfs.Extent_tree.create ();
            staging = None;
            mmaps = [];
            mmap_index = [||];
            mmap_index_stale = false;
            mmap_last = 0;
            open_count = 0;
            unlinked = kstat.Fsapi.Fs.st_nlink = 0;
            f_lock = Pmem.Lock.create (Printf.sprintf "ufile:%d" ino);
          }
        in
        Hashtbl.replace t'.files_by_ino ino st;
        st
  in
  st.open_count <- st.open_count + 1;
  install_fd t' { st; fpos; oflags; od_kfd }

(** [fork t ~instance] models fork(): the U-Split library is copied into
    the child's address space with the parent's descriptor table, while
    kernel state (open files) is shared. Staged data is settled first so
    parent and child do not race on the parent's staging cursors; the
    child gets its own staging pool and operation log. Returns the child
    instance and a map from parent fds to child fds. *)
let fork t ~instance =
  relink_all t;
  let child = mount ~cfg:t.cfg ~sys:t.sys ~env:t.env ~instance () in
  (* duplicate every open descriptor into the child, preserving shared
     offsets across dup'ed fds *)
  let shared : (int ref, int ref) Hashtbl.t = Hashtbl.create 8 in
  let fd_map =
    Hashtbl.fold
      (fun fd od acc ->
        let fpos =
          match Hashtbl.find_opt shared od.fpos with
          | Some r -> r
          | None ->
              let r = ref !(od.fpos) in
              Hashtbl.replace shared od.fpos r;
              r
        in
        let od_kfd = Kernelfs.Syscall.dup t.sys od.od_kfd in
        (fd, adopt_fd child ~od_kfd ~fpos ~oflags:od.oflags) :: acc)
      t.fds []
  in
  (child, fd_map)

let exec_handoff_path instance = Printf.sprintf "/.splitfs-exec-%d" instance

(** [execve t] models exec(): the address space (all U-Split DRAM state)
    is destroyed but kernel file descriptors survive. Before the exec,
    U-Split settles staged data and writes its descriptor bookkeeping to a
    shared-memory file named after the process; the fresh library instance
    in the new image reads it back and re-adopts the still-open kernel
    fds. Returns the new instance and the old-fd -> new-fd mapping. *)
let execve t =
  relink_all t;
  (* serialize fd bookkeeping: fd, kernel fd, offset-group, offset, flags *)
  let groups : (int ref, int) Hashtbl.t = Hashtbl.create 8 in
  let next_group = ref 0 in
  let lines =
    Hashtbl.fold
      (fun fd od acc ->
        let group =
          match Hashtbl.find_opt groups od.fpos with
          | Some g -> g
          | None ->
              let g = !next_group in
              incr next_group;
              Hashtbl.replace groups od.fpos g;
              g
        in
        let access =
          match od.oflags.Fsapi.Flags.access with
          | Fsapi.Flags.Rdonly -> "r"
          | Fsapi.Flags.Wronly -> "w"
          | Fsapi.Flags.Rdwr -> "rw"
        in
        Printf.sprintf "%d %d %d %d %s%s" fd od.od_kfd group !(od.fpos) access
          (if od.oflags.Fsapi.Flags.append then "a" else "")
        :: acc)
      t.fds []
  in
  let handoff = exec_handoff_path t.instance in
  let kfd = Kernelfs.Syscall.open_ t.sys handoff Fsapi.Flags.create_trunc in
  let payload = String.concat "\n" lines in
  let buf = Bytes.of_string payload in
  if Bytes.length buf > 0 then
    ignore
      (Kernelfs.Syscall.pwrite t.sys kfd ~buf ~boff:0 ~len:(Bytes.length buf)
         ~at:0);
  Kernelfs.Syscall.close t.sys kfd;
  (* --- the exec boundary: all DRAM state of [t] is now dead --- *)
  let fresh = mount ~cfg:t.cfg ~sys:t.sys ~env:t.env ~instance:t.instance () in
  (* the new image reads the handoff file and re-adopts its kernel fds *)
  let kfd = Kernelfs.Syscall.open_ fresh.sys handoff Fsapi.Flags.rdonly in
  let size = (Kernelfs.Syscall.fstat fresh.sys kfd).Fsapi.Fs.st_size in
  let data = Bytes.create size in
  ignore (Kernelfs.Syscall.pread fresh.sys kfd ~buf:data ~boff:0 ~len:size ~at:0);
  Kernelfs.Syscall.close fresh.sys kfd;
  Kernelfs.Syscall.unlink fresh.sys handoff;
  let group_refs : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let fd_map =
    Bytes.to_string data |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | [ fd; od_kfd; group; pos; flags ] ->
               let group = int_of_string group in
               let fpos =
                 match Hashtbl.find_opt group_refs group with
                 | Some r -> r
                 | None ->
                     let r = ref (int_of_string pos) in
                     Hashtbl.replace group_refs group r;
                     r
               in
               let oflags =
                 let base =
                   if flags = "r" then Fsapi.Flags.rdonly
                   else if String.length flags > 0 && flags.[0] = 'w' then
                     Fsapi.Flags.wronly
                   else Fsapi.Flags.rdwr
                 in
                 if String.length flags > 0 && flags.[String.length flags - 1] = 'a'
                 then Fsapi.Flags.append base
                 else base
               in
               Some
                 ( int_of_string fd,
                   adopt_fd fresh ~od_kfd:(int_of_string od_kfd) ~fpos ~oflags )
           | _ -> None)
  in
  (fresh, fd_map)

let as_fsapi t : Fsapi.Fs.t =
  let name =
    Printf.sprintf "splitfs-%s" (Config.mode_to_string t.cfg.Config.mode)
  in
  {
    Fsapi.Fs.fs_name = name;
    open_ = open_ t;
    close = close t;
    dup = dup t;
    pread = (fun fd ~buf ~boff ~len ~at -> pread t fd ~buf ~boff ~len ~at);
    pwrite = (fun fd ~buf ~boff ~len ~at -> pwrite t fd ~buf ~boff ~len ~at);
    read = (fun fd ~buf ~boff ~len -> read t fd ~buf ~boff ~len);
    write = (fun fd ~buf ~boff ~len -> write t fd ~buf ~boff ~len);
    lseek = lseek t;
    fsync = fsync t;
    ftruncate = ftruncate t;
    fstat = fstat t;
    stat = stat t;
    unlink = unlink t;
    rename = rename t;
    mkdir = mkdir t;
    rmdir = rmdir t;
    readdir = readdir t;
  }
