(** Deterministic event-driven scheduler for multi-client workloads.

    Each client is a closed-loop actor: it issues its next operation as
    soon as its previous one completes (no think time). Operations run to
    completion on the host; concurrency exists only in virtual time, so
    the scheduler is a discrete-event loop at operation granularity: it
    always dispatches the client whose virtual clock is furthest behind
    (ties broken by client id). That order is a pure function of the
    workload, which makes every run at a fixed seed bit-identical —
    including the contention charges (locks, shared PM bandwidth) the
    dispatched operation picks up from the windows other clients
    published.

    Dispatch-order determinism is also what makes the contention model
    well-defined: [Pmem.Lock] and the device's bandwidth queue resolve
    overlapping windows in dispatch order, and dispatch order is
    min-clock order.

    Dispatch is a binary min-heap keyed on (virtual clock, client id), so
    selecting the next client is O(log N) instead of the O(N) min-scan
    the scheduler shipped with — the difference between 16 closed-loop
    clients and a 10,000-actor serving tier. Only the dispatched client's
    clock moves between dispatches (charges land on the current actor
    only), so re-sifting just that one key preserves the exact
    min-clock-with-id-tiebreak order of the scan; {!run_reference} keeps
    the original min-scan as an executable specification, and the
    equivalence test pins [trace_hash]/[makespan] of the two against each
    other at every client count. *)

type client = {
  c_id : int;
  c_name : string;
  actor : Pmem.Simclock.actor;
  step : client -> int -> bool;
      (** [step c i] runs the client's [i]-th operation on [c]'s clock;
          [false] means the workload is exhausted ([i] was not run) *)
  mutable ops_done : int;
  mutable finished : bool;
}

type t = {
  env : Pmem.Env.t;
  mutable clients : client array;  (** spawn order; first [nclients] live *)
  mutable nclients : int;
  mutable spawned_at : float;  (** virtual time of the first spawn *)
  mutable trace_hash : int;  (** FNV-1a over the dispatch sequence *)
  mutable dispatches : int;
}

let create env =
  {
    env;
    clients = [||];
    nclients = 0;
    spawned_at = 0.;
    (* FNV-1a 64-bit offset basis, truncated to OCaml's 63-bit int *)
    trace_hash = 0xbf29ce484222325;
    dispatches = 0;
  }

(** [spawn t ~name ~step] registers a client whose virtual clock starts at
    the current actor's time — all clients spawned back-to-back start
    together, after whatever setup the driver already charged. Amortized
    O(1): the client table doubles, it is never rebuilt per spawn. *)
let spawn t ~name ~step =
  if t.nclients = 0 then t.spawned_at <- Pmem.Env.now t.env;
  let actor = Pmem.Env.new_actor t.env ~name in
  let c =
    { c_id = t.nclients; c_name = name; actor; step; ops_done = 0; finished = false }
  in
  let cap = Array.length t.clients in
  if t.nclients = cap then begin
    let grown = Array.make (max 8 (2 * cap)) c in
    Array.blit t.clients 0 grown 0 cap;
    t.clients <- grown
  end;
  t.clients.(t.nclients) <- c;
  t.nclients <- t.nclients + 1;
  c

let fnv_prime = 0x100000001b3

let record t c =
  (* FNV-1a over (client id, op index): a compact fingerprint of the
     interleaving, compared across runs by the determinism test *)
  let mix h x = (h lxor x) * fnv_prime land max_int in
  t.trace_hash <- mix (mix t.trace_hash c.c_id) c.ops_done;
  t.dispatches <- t.dispatches + 1

let dispatch t c =
  record t c;
  let more = Pmem.Env.run_as t.env c.actor (fun () -> c.step c c.ops_done) in
  if more then c.ops_done <- c.ops_done + 1 else c.finished <- true

(* --- event heap ----------------------------------------------------- *)

(* Strictly-less on (virtual clock, client id): the same lexicographic
   order the min-scan reference induces, so the heap's minimum is always
   exactly the client the scan would have picked. *)
let precedes a b =
  let ta = a.actor.Pmem.Simclock.a_now and tb = b.actor.Pmem.Simclock.a_now in
  ta < tb || (ta = tb && a.c_id < b.c_id)

let sift_up heap i =
  let c = heap.(i) in
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    precedes c heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    heap.(!i) <- heap.(parent);
    i := parent
  done;
  heap.(!i) <- c

let sift_down heap n i =
  let c = heap.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let smallest = if r < n && precedes heap.(r) heap.(l) then r else l in
      if precedes heap.(smallest) c then begin
        heap.(!i) <- heap.(smallest);
        i := smallest
      end
      else continue := false
    end
  done;
  heap.(!i) <- c

(** Run every client to completion, always dispatching the one whose
    virtual clock is furthest behind (ties: lowest client id). O(log N)
    per dispatch. *)
let run t =
  if t.nclients > 0 then begin
    let heap = Array.sub t.clients 0 t.nclients in
    (* spawn order is id order, and all clocks start together, so the
       array is heap-ordered for equal clocks; heapify handles drivers
       that charged time between spawns *)
    for i = (t.nclients / 2) - 1 downto 0 do
      sift_down heap t.nclients i
    done;
    let n = ref t.nclients in
    while !n > 0 do
      let c = heap.(0) in
      dispatch t c;
      if c.finished then begin
        decr n;
        heap.(0) <- heap.(!n);
        if !n > 0 then sift_down heap !n 0
      end
      else
        (* only the dispatched client's clock moved: re-sift its key *)
        sift_down heap !n 0
    done
  end

(** The original O(N)-per-dispatch min-scan, retained as the executable
    specification of dispatch order: the equivalence test pins the heap
    scheduler's [trace_hash], [makespan] and per-client op counts against
    this, and the scale experiment measures its host cost as the
    baseline the heap beats. *)
let run_reference t =
  let next_runnable () =
    let best = ref None in
    for i = 0 to t.nclients - 1 do
      let c = t.clients.(i) in
      if not c.finished then
        match !best with
        | Some b when b.actor.Pmem.Simclock.a_now <= c.actor.Pmem.Simclock.a_now
          ->
            ()
        | _ -> best := Some c
    done;
    !best
  in
  let rec loop () =
    match next_runnable () with
    | None -> ()
    | Some c ->
        dispatch t c;
        loop ()
  in
  loop ()

(** Live clients in spawn order — the telemetry layer reads [ops_done]
    through this to build per-tenant throughput series. *)
let clients t = Array.to_list (Array.sub t.clients 0 t.nclients)

let trace_hash t = t.trace_hash
let dispatches t = t.dispatches

(** Total operations completed across all clients. *)
let total_ops t =
  let n = ref 0 in
  for i = 0 to t.nclients - 1 do
    n := !n + t.clients.(i).ops_done
  done;
  !n

(** Makespan: first spawn to the last client's completion, in virtual ns.
    Aggregate throughput = [total_ops / makespan]. *)
let makespan t =
  let m = ref 0. in
  for i = 0 to t.nclients - 1 do
    m := Float.max !m (t.clients.(i).actor.Pmem.Simclock.a_now -. t.spawned_at)
  done;
  !m

let pp_client ppf c =
  Fmt.pf ppf "%s: %d ops, ended %.0fns (lock %.0fns, bw %.0fns)" c.c_name
    c.ops_done c.actor.Pmem.Simclock.a_now
    c.actor.Pmem.Simclock.a_lock_wait_ns c.actor.Pmem.Simclock.a_bw_wait_ns
