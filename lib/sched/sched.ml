(** Deterministic event-driven scheduler for multi-client workloads.

    Each client is a closed-loop actor: it issues its next operation as
    soon as its previous one completes (no think time). Operations run to
    completion on the host; concurrency exists only in virtual time, so
    the scheduler is a discrete-event loop at operation granularity: it
    always dispatches the client whose virtual clock is furthest behind
    (ties broken by client id). That order is a pure function of the
    workload, which makes every run at a fixed seed bit-identical —
    including the contention charges (locks, shared PM bandwidth) the
    dispatched operation picks up from the windows other clients
    published.

    Dispatch-order determinism is also what makes the contention model
    well-defined: [Pmem.Lock] and the device's bandwidth queue resolve
    overlapping windows in dispatch order, and dispatch order is
    min-clock order. *)

type client = {
  c_id : int;
  c_name : string;
  actor : Pmem.Simclock.actor;
  step : client -> int -> bool;
      (** [step c i] runs the client's [i]-th operation on [c]'s clock;
          [false] means the workload is exhausted ([i] was not run) *)
  mutable ops_done : int;
  mutable finished : bool;
}

type t = {
  env : Pmem.Env.t;
  mutable clients : client list;  (** in spawn order *)
  mutable nclients : int;
  mutable spawned_at : float;  (** virtual time of the first spawn *)
  mutable trace_hash : int;  (** FNV-1a over the dispatch sequence *)
  mutable dispatches : int;
}

let create env =
  {
    env;
    clients = [];
    nclients = 0;
    spawned_at = 0.;
    (* FNV-1a 64-bit offset basis, truncated to OCaml's 63-bit int *)
    trace_hash = 0xbf29ce484222325;
    dispatches = 0;
  }

(** [spawn t ~name ~step] registers a client whose virtual clock starts at
    the current actor's time — all clients spawned back-to-back start
    together, after whatever setup the driver already charged. *)
let spawn t ~name ~step =
  if t.nclients = 0 then t.spawned_at <- Pmem.Env.now t.env;
  let actor = Pmem.Env.new_actor t.env ~name in
  let c =
    { c_id = t.nclients; c_name = name; actor; step; ops_done = 0; finished = false }
  in
  t.clients <- t.clients @ [ c ];
  t.nclients <- t.nclients + 1;
  c

let fnv_prime = 0x100000001b3

let record t c =
  (* FNV-1a over (client id, op index): a compact fingerprint of the
     interleaving, compared across runs by the determinism test *)
  let mix h x = (h lxor x) * fnv_prime land max_int in
  t.trace_hash <- mix (mix t.trace_hash c.c_id) c.ops_done;
  t.dispatches <- t.dispatches + 1

(** Run every client to completion, always dispatching the one whose
    virtual clock is furthest behind (ties: lowest client id). *)
let run t =
  let rec next_runnable best = function
    | [] -> best
    | c :: rest ->
        let best =
          if c.finished then best
          else
            match best with
            | Some b when b.actor.Pmem.Simclock.a_now <= c.actor.Pmem.Simclock.a_now
              ->
                best
            | _ -> Some c
        in
        next_runnable best rest
  in
  let rec loop () =
    match next_runnable None t.clients with
    | None -> ()
    | Some c ->
        record t c;
        let more =
          Pmem.Env.run_as t.env c.actor (fun () -> c.step c c.ops_done)
        in
        if more then c.ops_done <- c.ops_done + 1 else c.finished <- true;
        loop ()
  in
  loop ()

let clients t = t.clients
let trace_hash t = t.trace_hash
let dispatches t = t.dispatches

(** Total operations completed across all clients. *)
let total_ops t = List.fold_left (fun n c -> n + c.ops_done) 0 t.clients

(** Makespan: first spawn to the last client's completion, in virtual ns.
    Aggregate throughput = [total_ops / makespan]. *)
let makespan t =
  List.fold_left
    (fun m c -> Float.max m (c.actor.Pmem.Simclock.a_now -. t.spawned_at))
    0. t.clients

let pp_client ppf c =
  Fmt.pf ppf "%s: %d ops, ended %.0fns (lock %.0fns, bw %.0fns)" c.c_name
    c.ops_done c.actor.Pmem.Simclock.a_now
    c.actor.Pmem.Simclock.a_lock_wait_ns c.actor.Pmem.Simclock.a_bw_wait_ns
