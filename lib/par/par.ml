(** Bounded domain-pool campaign runner (DESIGN.md §5j).

    Verification campaigns (crashcheck, faultcheck, litmus, minimize) are
    embarrassingly parallel across trials, and after the PR-8 global-state
    purge every trial builds its own [Pmem.Env] — no two trials share any
    mutable state. [map] fans an indexed list of independent trials over a
    bounded pool of OCaml 5 domains and returns results in input order, so
    a merge over the result list is identical at any job count: the *work*
    is parallel, the *report* is sequential.

    Determinism contract:
    - work items are claimed from an [Atomic] counter (dynamic
      load-balancing), but the result slot is the item's index — which
      domain ran a trial is unobservable in the output;
    - trials must derive any randomness from their own index
      ([Workloads.Rng.derive (campaign_seed, index)]), never from shared
      RNG state;
    - the first exception (by item index, not by wall-clock) is re-raised
      after every domain joins, so failure reporting is deterministic too.

    This lives in its own leaf library (referenced from the harness as
    [Harness.Par]'s implementation) because the campaign libraries sit
    *below* harness in the dependency graph. *)

let env_jobs = "SPLITFS_JOBS"

(** Job count resolution: explicit [jobs] argument, else [SPLITFS_JOBS],
    else [Domain.recommended_domain_count ()]. Clamped to [1, 64]. *)
let resolve_jobs ?jobs () =
  let requested =
    match jobs with
    | Some j -> j
    | None -> (
        match Sys.getenv_opt env_jobs with
        | Some s -> ( match int_of_string_opt (String.trim s) with
                      | Some j -> j
                      | None -> Domain.recommended_domain_count ())
        | None -> Domain.recommended_domain_count ())
  in
  max 1 (min 64 requested)

type 'b slot = Pending | Done of 'b | Failed of exn

(** [map ~jobs f items] = [List.map f items], fanned over up to [jobs]
    domains ([resolve_jobs] defaults). Results are in input order; the
    lowest-index exception is re-raised after all domains join. With one
    job (or one item) everything runs on the calling domain — no spawn,
    bit-identical to a plain [List.map]. *)
let map ?jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = min (resolve_jobs ?jobs ()) n in
  if jobs <= 1 then
    Array.to_list
      (Array.mapi (fun i x -> f i x) items)
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            (match f i items.(i) with x -> Done x | exception e -> Failed e)
      done
    in
    let domains =
      Array.init (jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Done x -> x
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end

(** [run ~jobs thunks] runs index-labelled thunks; convenience over
    [map]. *)
let run ?jobs thunks = map ?jobs (fun _ thunk -> thunk ()) thunks
